#include "src/sock/socket.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"

namespace tcplat {

void SockBuf::Append(MbufPool* pool, MbufPtr m) {
  TCPLAT_CHECK(m != nullptr);
  Cpu& cpu = pool->cpu();
  const size_t added = ChainLength(m.get());
  cpu.Charge(cpu.profile().sbappend, 0, ChainCount(m.get()));
  ChainAppend(&chain_, std::move(m));
  cc_ += added;
}

void SockBuf::Drop(MbufPool* pool, size_t n) {
  TCPLAT_CHECK_LE(n, cc_);
  ChainAdjHead(pool, &chain_, n);
  cc_ -= n;
}

size_t SockBuf::CopyOutAndDrop(MbufPool* pool, std::span<uint8_t> out) {
  Cpu& cpu = pool->cpu();
  size_t taken = 0;
  while (taken < out.size() && chain_ != nullptr) {
    Mbuf* m = chain_.get();
    const size_t chunk = std::min(out.size() - taken, m->len());
    std::memcpy(out.data() + taken, m->data(), chunk);
    cpu.Charge(m->is_cluster() ? cpu.profile().copyout_cluster : cpu.profile().copyout_small,
               chunk);
    taken += chunk;
    if (chunk == m->len()) {
      MbufPtr rest = m->TakeNext();
      MbufPtr dead = std::move(chain_);
      chain_ = std::move(rest);
      pool->FreeChain(std::move(dead));
    } else {
      m->TrimFront(chunk);
    }
  }
  cc_ -= taken;
  return taken;
}

Socket::Socket(Host* host, size_t sndbuf, size_t rcvbuf)
    : host_(host), snd_(sndbuf), rcv_(rcvbuf) {
  TCPLAT_CHECK(host != nullptr);
}

size_t Socket::Write(std::span<const uint8_t> data) {
  TCPLAT_CHECK(ops_ != nullptr) << "socket has no protocol bound";
  Cpu& cpu = host_->cpu();
  MbufPool& pool = host_->pool();
  if (snd_.space() == 0 || data.empty() ||
      (state_ != SocketState::kConnected && state_ != SocketState::kConnecting)) {
    // Caller will sleep in sosend; that entry cost overlaps the wait and is
    // off the latency path.
    return 0;
  }
  ++stats_.writes;

  {
    ScopedSpan user(&host_->tracker(), SpanId::kTxUser);
    cpu.Charge(cpu.profile().syscall_entry);
    cpu.Charge(cpu.profile().sosend_fixed);
  }

  size_t written = 0;
  while (written < data.size() && snd_.space() > 0 &&
         (state_ == SocketState::kConnected || state_ == SocketState::kConnecting)) {
    {
      ScopedSpan user(&host_->tracker(), SpanId::kTxUser);
      // One mbuf chain per protocol send, capped at a cluster's worth
      // (4 KB): the ULTRIX sosend fills at most one page per pass, which is
      // why an 8000-byte write leaves as two segments. The remaining
      // residual picks the mbuf flavor — clusters above 1 KB (§2.2.1).
      size_t chain_budget = std::min({data.size() - written, snd_.space(), kClusterBytes});
      const bool use_clusters = data.size() - written > cluster_threshold_;
      MbufPtr chain;
      while (chain_budget > 0) {
        MbufPtr m = use_clusters ? pool.GetCluster() : pool.Get();
        const size_t take = std::min(chain_budget, m->capacity());
        std::span<uint8_t> dst = m->Append(take);
        std::span<const uint8_t> src = data.subspan(written, take);
        if (integrated_copyin_) {
          // §4.1.1 transmit side: checksum each chunk as it is copied in
          // and stash the partial sum in the mbuf.
          cpu.Charge(m->is_cluster() ? cpu.profile().copyin_cluster_cksum
                                     : cpu.profile().copyin_small_cksum,
                     take);
          m->set_partial_cksum(IntegratedCopyPartial(dst, src));
        } else {
          cpu.Charge(m->is_cluster() ? cpu.profile().copyin_cluster
                                     : cpu.profile().copyin_small,
                     take);
          std::memcpy(dst.data(), src.data(), take);
        }
        ChainAppend(&chain, std::move(m));
        written += take;
        chain_budget -= take;
      }
      cpu.Charge(cpu.profile().sosend_per_chunk);
      snd_.Append(&pool, std::move(chain));
    }
    // PRU_SEND: once per chain (outside the User span; the paper measures
    // User only up to the start of TCP processing).
    ops_->UsrSend();
  }
  stats_.bytes_written += written;
  host_->TracePacket(TraceLayer::kSock, TraceEventKind::kUserWrite, trace_flow_, stats_.writes,
                     written);

  {
    ScopedSpan other(&host_->tracker(), SpanId::kOther);
    cpu.Charge(cpu.profile().syscall_exit);
  }
  return written;
}

size_t Socket::Read(std::span<uint8_t> out) {
  TCPLAT_CHECK(ops_ != nullptr) << "socket has no protocol bound";
  Cpu& cpu = host_->cpu();
  if (rcv_.cc() == 0 || out.empty()) {
    // Blocking entry into soreceive: the syscall cost before the sleep
    // overlaps the wait for data, so it is not charged to the round trip.
    return 0;
  }
  ++stats_.reads;

  size_t taken;
  {
    ScopedSpan user(&host_->tracker(), SpanId::kRxUser);
    cpu.Charge(cpu.profile().syscall_entry);
    cpu.Charge(cpu.profile().soreceive_fixed);
    taken = rcv_.CopyOutAndDrop(&host_->pool(), out);
    cpu.Charge(cpu.profile().syscall_exit);
  }
  stats_.bytes_read += taken;
  host_->TracePacket(TraceLayer::kSock, TraceEventKind::kUserRead, trace_flow_, stats_.reads,
                     taken);
  if (taken > 0) {
    // PRU_RCVD: give the protocol a chance to announce the opened window.
    ops_->UsrRcvd();
  }
  return taken;
}

void Socket::Close() {
  if (state_ == SocketState::kClosed) {
    return;
  }
  if (ops_ != nullptr) {
    ops_->UsrClose();
  }
}

Socket* Socket::Accept() {
  if (accept_queue_.empty()) {
    return nullptr;
  }
  Socket* s = accept_queue_.front();
  accept_queue_.pop_front();
  return s;
}

void Socket::MarkConnected() {
  state_ = SocketState::kConnected;
  host_->Wakeup(state_chan_);
  host_->Wakeup(snd_.channel());
}

void Socket::MarkEof() {
  eof_ = true;
  host_->Wakeup(rcv_.channel());
}

void Socket::MarkError() {
  error_ = true;
  host_->Wakeup(state_chan_);
  host_->Wakeup(rcv_.channel());
  host_->Wakeup(snd_.channel());
}

void Socket::MarkClosed() {
  state_ = SocketState::kClosed;
  host_->Wakeup(state_chan_);
  host_->Wakeup(rcv_.channel());
  host_->Wakeup(snd_.channel());
}

void Socket::EnqueueAccepted(Socket* s) {
  accept_queue_.push_back(s);
  host_->Wakeup(state_chan_);
}

void Socket::ReadWakeup() {
  Cpu& cpu = host_->cpu();
  cpu.Charge(cpu.profile().sorwakeup);
  host_->TracePacket(TraceLayer::kSock, TraceEventKind::kWakeup, trace_flow_, 0, rcv_.cc());
  host_->Wakeup(rcv_.channel());
}

void Socket::WriteWakeup() {
  if (!snd_.channel().empty()) {
    Cpu& cpu = host_->cpu();
    cpu.Charge(cpu.profile().sorwakeup);
    host_->Wakeup(snd_.channel());
  }
}

}  // namespace tcplat
