# Empty dependencies file for table4_header_prediction.
# This may be replaced when dependencies are built.
