#include "src/sim/time.h"

#include <cstdio>

namespace tcplat {
namespace {

std::string FormatNs(int64_t ns) {
  char buf[64];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

std::string SimTime::ToString() const { return FormatNs(ns_); }
std::string SimDuration::ToString() const { return FormatNs(ns_); }

}  // namespace tcplat
