# Empty dependencies file for segment_tap_test.
# This may be replaced when dependencies are built.
