#include "src/tcp/segment_tap.h"

#include <cstdio>

namespace tcplat {

std::string SegmentTap::Format(const Record& r) {
  char buf[256];
  std::string flags = "[" + r.header.flags.ToString() + "]";
  int n = std::snprintf(buf, sizeof(buf), "%.6f %s %s > %s: Flags %s, seq %u",
                        r.time.seconds(), r.outbound ? "OUT" : "IN ",
                        r.src.ToString().c_str(), r.dst.ToString().c_str(), flags.c_str(),
                        r.header.seq);
  std::string out(buf, static_cast<size_t>(n));
  if (r.header.flags.ack) {
    std::snprintf(buf, sizeof(buf), ", ack %u", r.header.ack);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ", win %u", r.header.window);
  out += buf;
  if (r.header.options.mss.has_value() || r.header.options.alt_checksum.has_value()) {
    out += ", options [";
    bool first = true;
    if (r.header.options.mss.has_value()) {
      std::snprintf(buf, sizeof(buf), "mss %u", *r.header.options.mss);
      out += buf;
      first = false;
    }
    if (r.header.options.alt_checksum.has_value()) {
      std::snprintf(buf, sizeof(buf), "%saltcksum %u", first ? "" : ",",
                    *r.header.options.alt_checksum);
      out += buf;
    }
    out += "]";
  }
  std::snprintf(buf, sizeof(buf), ", length %zu", r.payload_len);
  out += buf;
  return out;
}

std::string SegmentTap::Dump() const {
  std::string out;
  for (const Record& r : records_) {
    out += Format(r);
    out += '\n';
  }
  return out;
}

}  // namespace tcplat
