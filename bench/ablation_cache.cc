// Ablation A6: cache effects on the data-touching costs.
//
// §1.2: "One disadvantage of this approach, however, is that our
// measurements include cache effects" — the paper's 40000-iteration loops
// ran warm. This ablation scales only the per-byte (data-touching) costs —
// checksums and copies — to ask how the headline results shift if the
// caches had been colder or warmer, leaving per-packet bookkeeping alone.

#include <array>
#include <cstdio>
#include <vector>

#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"

namespace tcplat {
namespace {

double Rtt(double cache_factor, ChecksumMode mode, size_t size) {
  TestbedConfig cfg;
  cfg.profile = CostProfile::Decstation5000_200().WithCacheFactor(cache_factor);
  cfg.tcp.checksum = mode;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 100;
  return RunRpcBenchmark(tb, opt).MeanRtt().micros();
}

void Run() {
  std::printf("Ablation A6: cache factor on data-touching costs (calibrated = 1.0x, warm)\n\n");
  TextTable t({"Cache factor", "4B RTT", "1400B RTT", "8000B RTT", "8000B cksum-elim saving"});
  const std::array<double, 5> factors = {0.5, 1.0, 1.5, 2.0, 3.0};
  struct Row {
    double r4;
    double r1400;
    double r8000;
    double n8000;
  };
  const std::vector<Row> rows = ParallelMap<Row>(factors.size(), [&factors](size_t i) {
    const double f = factors[i];
    return Row{Rtt(f, ChecksumMode::kStandard, 4), Rtt(f, ChecksumMode::kStandard, 1400),
               Rtt(f, ChecksumMode::kStandard, 8000), Rtt(f, ChecksumMode::kNone, 8000)};
  });
  for (size_t i = 0; i < factors.size(); ++i) {
    const auto& [r4, r1400, r8000, n8000] = rows[i];
    t.AddRow({TextTable::Num(factors[i], 1) + "x", TextTable::Us(r4), TextTable::Us(r1400),
              TextTable::Us(r8000), TextTable::Pct(100.0 * (r8000 - n8000) / r8000, 1)});
  }
  t.Print();
  std::printf("\nReadings: small-message latency is nearly cache-insensitive (per-packet\n"
              "bookkeeping dominates), while the large-transfer rows and the checksum-\n"
              "elimination saving both scale with memory-system speed — colder caches\n"
              "would have *strengthened* the paper's §4 argument. The calibrated 1.0x\n"
              "profile embeds the warm-loop behavior the paper measured.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
