// Determinism matrix: impaired scenarios must be pure functions of their
// config. The same seed has to produce byte-identical results — report rows,
// trace CSV, metrics JSON — whether the grid runs on one worker or four
// (the TCPLAT_JOBS axis), and run-to-run within a process. Different seeds
// must produce different drop schedules.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/fault/scenario.h"

namespace tcplat {
namespace {

std::vector<LossScenarioConfig> Grid() {
  std::vector<LossScenarioConfig> grid;
  for (uint64_t seed : {1, 2, 3}) {
    for (size_t size : {512, 4096}) {
      LossScenarioConfig cfg;
      cfg.network = NetworkKind::kAtm;
      cfg.size = size;
      cfg.iterations = 20;
      cfg.warmup = 2;
      cfg.seed = seed;
      cfg.impairment.drop_prob = 1e-3;
      cfg.impairment.duplicate_prob = 0.002;
      cfg.impairment.jitter_max = SimDuration::FromMicros(2);
      cfg.capture_observability = true;
      grid.push_back(cfg);
    }
  }
  return grid;
}

// Everything observable about one scenario, as one string.
std::string Serialize(const LossScenarioConfig& cfg, const LossScenarioResult& r) {
  std::string out = LossScenarioRow(cfg, r, 0.0);
  out += "\nduplicated=" + std::to_string(r.link.duplicated);
  out += " jittered=" + std::to_string(r.link.jittered);
  out += "\n--- trace ---\n" + r.trace_csv;
  out += "--- metrics ---\n" + r.metrics_json;
  return out;
}

std::vector<std::string> RunGridOn(Executor& exec) {
  const std::vector<LossScenarioConfig> grid = Grid();
  std::vector<std::function<std::string()>> thunks;
  thunks.reserve(grid.size());
  for (const LossScenarioConfig& cfg : grid) {
    thunks.emplace_back([cfg] { return Serialize(cfg, RunLossScenario(cfg)); });
  }
  std::vector<std::string> out;
  for (auto& outcome : exec.Run<std::string>(thunks)) {
    EXPECT_TRUE(outcome.ok()) << outcome.error;
    out.push_back(outcome.ok() ? *outcome.value : outcome.error);
  }
  return out;
}

TEST(DeterminismMatrix, SerialAndParallelRunsAreByteIdentical) {
  Executor serial(1);
  Executor parallel(4);
  const std::vector<std::string> a = RunGridOn(serial);
  const std::vector<std::string> b = RunGridOn(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "grid cell " << i << " diverged between 1 and 4 workers";
  }
}

TEST(DeterminismMatrix, RepeatedRunsAreByteIdentical) {
  const LossScenarioConfig cfg = Grid()[0];
  const std::string first = Serialize(cfg, RunLossScenario(cfg));
  const std::string second = Serialize(cfg, RunLossScenario(cfg));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("--- trace ---"), std::string::npos);
}

TEST(DeterminismMatrix, DifferentSeedsDifferentDropSchedules) {
  LossScenarioConfig cfg = Grid()[1];  // 4096-byte cells: plenty of draws
  cfg.seed = 100;
  const LossScenarioResult a = RunLossScenario(cfg);
  cfg.seed = 101;
  const LossScenarioResult b = RunLossScenario(cfg);
  // The schedules must differ; the trace records every impairment decision,
  // so identical traces would mean the seed is being ignored.
  EXPECT_NE(a.trace_csv, b.trace_csv);
  EXPECT_TRUE(a.link.dropped != b.link.dropped || a.link.duplicated != b.link.duplicated ||
              a.rpc.rtt.sum().nanos() != b.rpc.rtt.sum().nanos());
}

}  // namespace
}  // namespace tcplat
