#include "src/core/table.h"

#include <algorithm>
#include <cstdio>

#include "src/base/check.h"

namespace tcplat {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  TCPLAT_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      const size_t pad = widths[c] - row[c].size();
      line.append(pad, ' ');
      line += row[c];
      if (c + 1 != row.size()) {
        line += "  ";
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TextTable::ToCsv() const {
  auto render_cell = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') {
        quoted += '"';
      }
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  auto render_row = [&render_cell](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        line += ',';
      }
      line += render_cell(row[i]);
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string TextTable::Us(double microseconds, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, microseconds);
  return buf;
}

std::string TextTable::Pct(double percent, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, percent);
  return buf;
}

std::string TextTable::Num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace tcplat
