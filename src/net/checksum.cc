#include "src/net/checksum.h"

#include <bit>
#include <cstring>

#include "src/base/check.h"

namespace tcplat {
namespace {

// Folds a wide ones'-complement accumulator to 16 bits with end-around carry.
uint16_t Fold(uint64_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(sum);
}

uint16_t Swap16(uint16_t v) { return static_cast<uint16_t>((v << 8) | (v >> 8)); }

// Loads a 32-bit big-endian word from a possibly unaligned pointer.
inline uint32_t LoadWordBe(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap32(v);
  }
  return v;
}

// Raw (uncomplemented) big-endian word sum of `data`, odd trailing byte
// padded with zero, computed with the fast unrolled loop.
uint64_t FastRawSum(std::span<const uint8_t> data) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t sum = 0;

  // Main loop: 64 bytes (sixteen 32-bit words) per iteration. The 64-bit
  // accumulator absorbs carries; folding is deferred to the end.
  while (n >= 64) {
    // Promote to 64 bits before adding: four 32-bit words can overflow a
    // 32-bit intermediate and silently drop carries.
    sum += static_cast<uint64_t>(LoadWordBe(p)) + LoadWordBe(p + 4) + LoadWordBe(p + 8) +
           LoadWordBe(p + 12);
    sum += static_cast<uint64_t>(LoadWordBe(p + 16)) + LoadWordBe(p + 20) + LoadWordBe(p + 24) +
           LoadWordBe(p + 28);
    sum += static_cast<uint64_t>(LoadWordBe(p + 32)) + LoadWordBe(p + 36) + LoadWordBe(p + 40) +
           LoadWordBe(p + 44);
    sum += static_cast<uint64_t>(LoadWordBe(p + 48)) + LoadWordBe(p + 52) + LoadWordBe(p + 56) +
           LoadWordBe(p + 60);
    p += 64;
    n -= 64;
  }
  while (n >= 4) {
    sum += LoadWordBe(p);
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    sum += static_cast<uint64_t>((static_cast<uint32_t>(p[0]) << 8) | p[1]);
    p += 2;
    n -= 2;
  }
  if (n == 1) {
    sum += static_cast<uint64_t>(p[0]) << 8;
  }
  return sum;
}

}  // namespace

PartialChecksum PartialChecksum::Combine(const PartialChecksum& next) const {
  uint16_t next_folded = Fold(next.sum);
  if (length % 2 == 1) {
    // `next` really starts at an odd byte offset; a one-byte shift of a
    // chunk byte-swaps its ones'-complement sum.
    next_folded = Swap16(next_folded);
  }
  PartialChecksum out;
  out.sum = static_cast<uint32_t>(Fold(static_cast<uint64_t>(Fold(sum)) + next_folded));
  out.length = length + next.length;
  return out;
}

uint16_t PartialChecksum::Finalize() const {
  return static_cast<uint16_t>(~Fold(sum));
}

void ChecksumAccumulator::Add(std::span<const uint8_t> data) {
  AddPartial(ComputePartial(data));
}

void ChecksumAccumulator::AddPartial(const PartialChecksum& partial) {
  partial_ = partial_.Combine(partial);
}

PartialChecksum ComputePartial(std::span<const uint8_t> data) {
  PartialChecksum out;
  out.sum = static_cast<uint32_t>(Fold(FastRawSum(data)));
  out.length = data.size();
  return out;
}

uint16_t ReferenceChecksum(std::span<const uint8_t> data) {
  // Textbook RFC 1071: accumulate one 16-bit big-endian word at a time into
  // a wide register, fold, complement.
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint64_t>((static_cast<uint32_t>(data[i]) << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<uint64_t>(data[i]) << 8;
  }
  return static_cast<uint16_t>(~Fold(sum));
}

uint16_t UltrixChecksum(std::span<const uint8_t> data) {
  // Models the ULTRIX 4.2A in_cksum style the paper criticizes: one halfword
  // access per iteration with the carry folded back every step — no
  // unrolling, no word accesses.
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>((static_cast<uint32_t>(data[i]) << 8) | data[i + 1]);
    sum = (sum & 0xFFFF) + (sum >> 16);  // immediate end-around carry
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~Fold(sum));
}

uint16_t OptimizedChecksum(std::span<const uint8_t> data) {
  // The paper's §4.1 optimization: word accesses + loop unrolling, carries
  // absorbed by a wide accumulator.
  return static_cast<uint16_t>(~Fold(FastRawSum(data)));
}

uint16_t IntegratedCopyChecksum(std::span<uint8_t> dst, std::span<const uint8_t> src) {
  return static_cast<uint16_t>(~Fold(IntegratedCopyPartial(dst, src).sum));
}

PartialChecksum IntegratedCopyPartial(std::span<uint8_t> dst, std::span<const uint8_t> src) {
  TCPLAT_CHECK_EQ(dst.size(), src.size());
  const uint8_t* s = src.data();
  uint8_t* d = dst.data();
  size_t n = src.size();
  uint64_t sum = 0;

  // One pass: each 32-bit word is loaded once, stored to the destination,
  // and added to the running sum — the data crosses the memory bus once
  // instead of twice (the point of Clark et al.'s combined loop).
  while (n >= 32) {
    for (int k = 0; k < 32; k += 4) {
      uint32_t w;
      std::memcpy(&w, s + k, sizeof(w));
      std::memcpy(d + k, &w, sizeof(w));
      if constexpr (std::endian::native == std::endian::little) {
        w = __builtin_bswap32(w);
      }
      sum += w;
    }
    s += 32;
    d += 32;
    n -= 32;
  }
  while (n >= 4) {
    uint32_t w;
    std::memcpy(&w, s, sizeof(w));
    std::memcpy(d, &w, sizeof(w));
    if constexpr (std::endian::native == std::endian::little) {
      w = __builtin_bswap32(w);
    }
    sum += w;
    s += 4;
    d += 4;
    n -= 4;
  }
  if (n >= 2) {
    d[0] = s[0];
    d[1] = s[1];
    sum += static_cast<uint64_t>((static_cast<uint32_t>(s[0]) << 8) | s[1]);
    s += 2;
    d += 2;
    n -= 2;
  }
  if (n == 1) {
    d[0] = s[0];
    sum += static_cast<uint64_t>(s[0]) << 8;
  }

  PartialChecksum out;
  out.sum = static_cast<uint32_t>(Fold(sum));
  out.length = src.size();
  return out;
}

}  // namespace tcplat
