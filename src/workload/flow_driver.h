// Runs many concurrent echo flows over a StarTestbed's socket layer.
//
// Each flow is the paper's measurement workload (src/core/rpc_benchmark):
// a client process writes `size` bytes, waits for `size` bytes back, and
// times each round trip. The driver generalizes it to F flows spread over
// the star's host pairs, with optional per-flow start offsets (open-loop
// arrivals) and think times (closed-loop load). A single flow between the
// star's one client and one server reproduces RunRpcBenchmark byte-for-byte.
//
// Every flow gets a dedicated server port (listener), so a listener always
// knows its flow's message size — the echo protocol is read-exactly-then-
// write, as in the original benchmark.

#ifndef SRC_WORKLOAD_FLOW_DRIVER_H_
#define SRC_WORKLOAD_FLOW_DRIVER_H_

#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "src/trace/latency_stats.h"
#include "src/workload/star_testbed.h"

namespace tcplat {

struct FlowSpec {
  int client = 0;  // client host index in [0, K)
  int server = 0;  // server host index in [0, M)
  size_t size = 4;
  int iterations = 200;  // measured round trips
  int warmup = 32;       // untimed round trips first
  // Listener port; 0 auto-assigns kEchoPort + flow index, so flow 0 lands
  // on the classic echo port.
  uint16_t port = 0;
  SimDuration start_delay;  // open-loop arrival offset before connecting
  SimDuration think_time;   // closed-loop pause after each round trip
  bool verify_data = true;
  bool tolerate_errors = false;

  // --- interactive request/response extensions (all default-off; leaving
  // them alone keeps the legacy echo path byte-identical) ---
  // Request written as these chunks, each a separate write syscall — the
  // small-write shape that arms the Nagle × delayed-ACK pathology. Empty =
  // one `size`-byte write.
  std::vector<size_t> request_chunks;
  // Server reply per request; 0 = echo the request size.
  size_t response_size = 0;
  // Requests the client keeps in flight before waiting for a response.
  int pipeline_depth = 1;
  // Streaming mode: the client appends `size` bytes every `stream_interval`
  // (jittertrap-style steady small appends) and the server only sinks them;
  // per-message latency is send-entry to sink-side delivery.
  bool streaming = false;
  SimDuration stream_interval;
  // Per-flow socket options: TCP_NODELAY on the client socket, delayed-ACK
  // enable/timer on the server's accepted connection. Unset = stack config.
  std::optional<bool> client_nodelay;
  std::optional<bool> server_delack;
  std::optional<SimDuration> server_delack_timeout;

  // --- congestion-era extensions (all default-off) ---
  // Congestion-control variant for this flow's connection: set on the client
  // socket before the active open and on the server's listener (accepted
  // connections inherit it). Unset = the stack config's variant.
  std::optional<CongestionVariant> congestion;
  // Bulk-transfer mode: the client pushes `bulk_bytes` one way as fast as
  // the windows allow; the server sinks them and answers with a 1-byte
  // completion token. Goodput is bulk_bytes over first-write to token
  // arrival. `size`/`iterations`/`warmup` are ignored.
  uint64_t bulk_bytes = 0;
  // Keystroke mode: the client sends `keystrokes` 1-byte writes, one every
  // `keystroke_interval` (open loop — the next keystroke is not gated on the
  // previous echo), against an echo server; each echo's latency lands in
  // `rtt`. The telnet shape: pure Nagle/delayed-ACK territory.
  int keystrokes = 0;
  SimDuration keystroke_interval = SimDuration::FromMillis(200);

  size_t request_bytes() const {
    return request_chunks.empty()
               ? size
               : std::accumulate(request_chunks.begin(), request_chunks.end(), size_t{0});
  }
  size_t response_bytes() const { return response_size != 0 ? response_size : request_bytes(); }
  bool interactive() const {
    return !request_chunks.empty() || response_size != 0 || pipeline_depth > 1 ||
           client_nodelay.has_value() || server_delack.has_value() ||
           server_delack_timeout.has_value();
  }
};

struct BulkStats {
  uint64_t bytes = 0;        // payload delivered (the spec's bulk_bytes)
  int64_t start_ns = -1;     // client's first write entry
  int64_t done_ns = -1;      // completion token arrival at the client
  double goodput_bps() const {
    return done_ns > start_ns ? static_cast<double>(bytes) * 8e9 /
                                    static_cast<double>(done_ns - start_ns)
                              : 0.0;
  }
};

struct FlowResult {
  LatencyStats rtt;
  uint64_t iterations = 0;
  bool completed = false;  // every iteration finished and the flow closed
  bool aborted = false;    // connection died first (tolerate_errors runs)
  uint64_t data_mismatches = 0;
  BulkStats bulk;  // populated only in bulk-transfer mode
};

struct WorkloadOptions {
  // Flow 0 clears the span trackers when it crosses its warmup boundary
  // (the single-flow measured-region convention). Disable for mixes where
  // no single flow owns the measured region.
  bool reset_trackers_at_warmup = true;
};

struct WorkloadResult {
  std::vector<FlowResult> flows;
  LatencyStats rtt;  // all flows' measured round trips merged
  std::vector<LatencyStats> per_client;  // merged by client host index
  uint64_t completed = 0;
  uint64_t aborted = 0;
  uint64_t data_mismatches = 0;
  // Peak number of flows simultaneously inside an echo round trip; a
  // closed-loop run can never exceed its flow count (concurrency invariant).
  size_t max_concurrent = 0;
};

// Runs every flow to completion on the testbed's simulator. The testbed can
// be reused for further runs.
WorkloadResult RunWorkload(StarTestbed& testbed, const std::vector<FlowSpec>& specs,
                           const WorkloadOptions& options = {});

}  // namespace tcplat

#endif  // SRC_WORKLOAD_FLOW_DRIVER_H_
