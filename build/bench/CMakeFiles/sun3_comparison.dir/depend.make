# Empty dependencies file for sun3_comparison.
# This may be replaced when dependencies are built.
