# Empty compiler generated dependencies file for tcp_conformance_test.
# This may be replaced when dependencies are built.
