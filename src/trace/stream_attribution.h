// Streaming causal-graph + RTT attribution.
//
// CausalGraph::Build + AttributeRtts hold the whole trace and every Journey
// in memory — O(trace) — which is fine for an 8-flow cell and fatal for the
// roadmap's 10^5-flow fabrics. This module fuses the two passes into one
// incremental consumer: feed it the merged trace stream one event at a time
// (e.g. straight from a BinaryTraceReader) and it
//
//  * runs the same per-host chain state machines as CausalGraph::Build,
//    allocating Journey slots from a recycling arena,
//  * closes an RttWindow the moment the client read crossing a message
//    boundary is seen, decomposing it with the shared DecomposeWindow()
//    (bit-identical stage math to the batch path), and
//  * retires Journey slots as soon as nothing can reference them again —
//    the slot is freed when it is off every host's open-chain pointer, out
//    of the in-flight datagram map, and pruned from its flow's candidate
//    window (everything at or before the last closed window's end).
//    Datagrams lost in flight never see their kPktRx, so each window close
//    also retires the flow's in-flight entries transmitted at or before the
//    flow's previous close — a one-way traversal cannot outlast a full
//    round-trip window — keeping lossy runs at O(in-flight), not O(drops).
//
// Live memory is O(in-flight packets + open windows), not O(trace);
// peak_live_journeys() reports the high-water mark (the
// `streaming_graph_peak_nodes` gate metric).
//
// Equivalence to the batch path (pinned by attribution_test and
// bench/observability_selfcheck): on a clean closed-loop cell the two
// produce identical window sets. The one semantic difference: the batch
// path can anchor a window to a journey whose delivery the trace records
// only *after* the window's closing read; the streaming path — which must
// decide at close time — treats such a journey as undelivered. On
// loss-free echo cells the situation cannot arise (the response delivery
// is what unblocks the closing read).

#ifndef SRC_TRACE_STREAM_ATTRIBUTION_H_
#define SRC_TRACE_STREAM_ATTRIBUTION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/trace/attribution.h"
#include "src/trace/causal_graph.h"
#include "src/trace/tracer.h"

namespace tcplat {

class StreamingAttribution {
 public:
  explicit StreamingAttribution(const AttributionOptions& options);

  // Consumes the next event of the merged stream (global timestamp order,
  // per-host chains contiguous — what Tracer/MergeBinaryShards produce).
  void OnEvent(const TraceEvent& ev);

  // Closed windows, in close order (sort by (flow, start_ns) to compare
  // against the batch path's (flow, index) order).
  const std::vector<RttWindow>& windows() const { return windows_; }

  size_t live_journeys() const { return live_; }
  size_t peak_live_journeys() const { return peak_live_; }

 private:
  struct HostState {
    size_t tx_open = kNone;
    bool retransmit_pending = false;
    int64_t pending_link_rx = -1;
    std::deque<std::pair<int64_t, int64_t>> ipq;  // (link_rx_ns, enqueue_ns)
    int64_t cur_link_rx = -1;
    int64_t cur_enqueue = -1;
    int64_t cur_dequeue = -1;
    int64_t cur_ipq_wait = 0;
    size_t rx_open = kNone;
    int64_t pending_begin = -1;  // first kTxUser span begin since last write
  };

  struct FlowState {
    int client_host = -1;
    int server_host = -1;
    uint64_t cum_client_write = 0;
    uint64_t cum_server_write = 0;
    uint64_t cum_client_read = 0;
    // Message-boundary write entries not yet consumed by a window close;
    // entry k corresponds to absolute window index base + k.
    std::deque<int64_t> starts;
    uint64_t starts_base = 0;
    std::deque<int64_t> srv_starts;
    uint64_t srv_starts_base = 0;
    uint64_t windows_closed = 0;
    // End of this flow's previously closed window; in-flight datagrams of
    // the flow transmitted at or before it are declared lost at the next
    // close (pkt_tx_ns is never negative, so -1 disables the first prune).
    int64_t prev_close_end_ns = -1;
    // Data-journey slots in seg_tx order, pruned at each close.
    std::deque<size_t> candidates;
    std::deque<int64_t> retransmit_ts;
    std::deque<int64_t> delack_ts;
    std::deque<int64_t> client_hold_ts;  // kNagleHold on the client sender
    std::deque<int64_t> server_hold_ts;  // kNagleHold on the server sender
  };

  static constexpr size_t kNone = static_cast<size_t>(-1);

  size_t AllocJourney();
  void AddRef(size_t idx) { ++refs_[idx]; }
  void Release(size_t idx);
  HostState& HostAt(size_t host);

  void OnClientRead(FlowState* flow, const TraceEvent& ev);
  void CloseWindow(uint64_t canonical_flow, FlowState* flow, int64_t end_ns);

  AttributionOptions options_;
  std::vector<RttWindow> windows_;

  std::vector<Journey> arena_;
  std::vector<uint32_t> refs_;
  std::vector<size_t> free_list_;
  size_t live_ = 0;
  size_t peak_live_ = 0;

  std::vector<HostState> hosts_;
  std::map<std::pair<uint64_t, uint64_t>, std::deque<size_t>> in_flight_;
  std::map<uint64_t, FlowState> flows_;
};

}  // namespace tcplat

#endif  // SRC_TRACE_STREAM_ATTRIBUTION_H_
