// Self-check for the observability subsystem: runs the standard 1400-byte
// ATM echo with the packet-lifecycle tracer attached and verifies, end to
// end, the properties the trace is allowed to be trusted for:
//
//   1. the trace is populated at every layer it claims to cover;
//   2. per-layer span sums recovered from the trace equal the SpanTracker
//      aggregate totals to the nanosecond (the trace is lossless);
//   3. metrics-registry views read back exactly the stats-struct fields
//      they alias;
//   4. a fixed seed produces a byte-identical Perfetto JSON trace, run to
//      run AND when the runs execute on the src/exec/ parallel executor.
//
// Writes the reference trace to BENCH_trace.json (override with --out) so
// it can be eyeballed at ui.perfetto.dev. Exits nonzero on any failure.

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_flags.h"

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"
#include "src/trace/tracer.h"

namespace tcplat {
namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
  }
  std::printf("%s %s\n", ok ? "PASS" : "FAIL", what.c_str());
}

struct TracedRun {
  std::string json;
  size_t events = 0;
  int64_t max_span_delta_ns = 0;
  bool metrics_match = true;
  bool layers_covered = true;
};

TracedRun RunOnce(size_t size) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  Tracer tracer;
  tb.AttachTracer(&tracer);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 50;
  opt.warmup = 16;
  RunRpcBenchmark(tb, opt);

  TracedRun out;
  out.events = tracer.events().size();
  out.json = tracer.ToPerfettoJson();

  // (2) lossless: trace-recovered span sums == tracker totals.
  for (Host* host : {&tb.client_host(), &tb.server_host()}) {
    const auto from_trace = tracer.SpanSelfTotalsNanos(host->trace_id());
    for (size_t i = 0; i < from_trace.size(); ++i) {
      const int64_t tracker_ns = host->tracker().total(static_cast<SpanId>(i)).nanos();
      out.max_span_delta_ns =
          std::max(out.max_span_delta_ns, std::abs(from_trace[i] - tracker_ns));
    }
  }

  // (3) registry views alias the live structs.
  const TcpStats& tcp = tb.client_tcp().stats();
  const IpStats& ip = tb.client_ip().stats();
  MetricsRegistry& m = tb.client_host().metrics();
  out.metrics_match =
      m.contains("tcp.segs_sent") && m.contains("ip.ipq_wait_ns") &&
      [&] {
        for (const MetricsRegistry::Sample& s : m.Snapshot()) {
          if (s.name == "tcp.segs_sent" && s.value != static_cast<int64_t>(tcp.segs_sent)) {
            return false;
          }
          if (s.name == "ip.packets_sent" &&
              s.value != static_cast<int64_t>(ip.packets_sent)) {
            return false;
          }
          if (s.name == "mbuf.small_allocs" &&
              s.value !=
                  static_cast<int64_t>(tb.client_host().pool().stats().small_allocs)) {
            return false;
          }
        }
        return true;
      }();

  // (1) every layer an ATM echo exercises shows up in the event stream.
  bool saw_sock = false, saw_tcp = false, saw_ip = false, saw_atm = false, saw_sched = false;
  for (const TraceEvent& ev : tracer.events()) {
    switch (ev.layer) {
      case TraceLayer::kSock:
        saw_sock = true;
        break;
      case TraceLayer::kTcp:
        saw_tcp = true;
        break;
      case TraceLayer::kIp:
        saw_ip = true;
        break;
      case TraceLayer::kAtm:
        saw_atm = true;
        break;
      case TraceLayer::kSched:
        saw_sched = true;
        break;
      default:
        break;
    }
  }
  out.layers_covered = saw_sock && saw_tcp && saw_ip && saw_atm && saw_sched;
  return out;
}

int Run(const std::string& out_path) {
  std::printf("observability_selfcheck\n\n");

  const TracedRun a = RunOnce(1400);
  std::printf("1400-byte echo: %zu events, max span delta %lld ns\n\n", a.events,
              static_cast<long long>(a.max_span_delta_ns));
  Check(a.events > 0, "trace is non-empty");
  Check(a.layers_covered, "sock/tcp/ip/atm/sched layers all present in the trace");
  Check(a.max_span_delta_ns <= 1, "trace span sums match tracker totals within 1 ns");
  Check(a.metrics_match, "metrics-registry views read back the live struct fields");

  // (4a) run-to-run determinism with a fixed seed.
  const TracedRun b = RunOnce(1400);
  Check(a.json == b.json, "same seed reproduces a byte-identical trace");

  // (4b) serial vs parallel-executor determinism across a size grid.
  const std::vector<size_t> sizes = {4, 536, 1400, 8000};
  std::vector<std::string> serial;
  for (size_t size : sizes) {
    serial.push_back(RunOnce(size).json);
  }
  Executor ex(4);
  std::vector<std::function<std::string()>> thunks;
  for (size_t size : sizes) {
    thunks.emplace_back([size] { return RunOnce(size).json; });
  }
  const auto outcomes = ex.Run<std::string>(thunks);
  bool identical = outcomes.size() == serial.size();
  for (size_t i = 0; identical && i < outcomes.size(); ++i) {
    identical = outcomes[i].ok() && *outcomes[i].value == serial[i];
  }
  Check(identical, "4-size grid traces are byte-identical serial vs 4-job parallel");

  Check(WriteTextFile(out_path, a.json), "reference trace written to " + out_path);
  std::printf("\n%s\n", g_failures == 0 ? "all checks passed" : "FAILURES");
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tcplat

int main(int argc, char** argv) {
  tcplat::BenchFlags flags;
  flags.out_path = "BENCH_trace.json";
  if (!tcplat::ParseBenchFlags(argc, argv, &flags, "[--out PATH]")) {
    return 2;
  }
  return tcplat::Run(flags.out_path);
}
