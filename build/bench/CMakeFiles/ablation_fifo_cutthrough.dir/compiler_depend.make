# Empty compiler generated dependencies file for ablation_fifo_cutthrough.
# This may be replaced when dependencies are built.
