// Protocol-conformance tests: hand-crafted segments injected below IP
// against a live server stack, with the server's responses observed through
// a SegmentTap — the simulated equivalent of a conformance tester on the
// wire.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/net/byte_order.h"
#include "src/net/checksum.h"
#include "src/os/task.h"
#include "src/tcp/segment_tap.h"

namespace tcplat {
namespace {

// Builds a full IP packet carrying one TCP segment with a valid checksum.
std::vector<uint8_t> BuildSegment(Ipv4Addr src, Ipv4Addr dst, const TcpHeader& th_in,
                                  std::span<const uint8_t> payload) {
  TcpHeader th = th_in;
  const size_t hdrlen = th.HeaderLength();
  std::vector<uint8_t> tcp_bytes(hdrlen + payload.size());
  th.checksum = 0;
  th.Serialize(tcp_bytes);
  std::memcpy(tcp_bytes.data() + hdrlen, payload.data(), payload.size());

  TcpPseudoHeader ph;
  ph.src = src;
  ph.dst = dst;
  ph.tcp_length = static_cast<uint16_t>(tcp_bytes.size());
  ChecksumAccumulator acc;
  acc.Add(ph.Serialize());
  acc.Add(tcp_bytes);
  StoreBe16(&tcp_bytes[16], acc.Finalize());

  std::vector<uint8_t> pkt(kIpv4HeaderBytes + tcp_bytes.size());
  Ipv4Header iph;
  iph.total_length = static_cast<uint16_t>(pkt.size());
  iph.protocol = kIpProtoTcp;
  iph.src = src;
  iph.dst = dst;
  iph.FillChecksum();
  iph.Serialize(pkt);
  std::memcpy(pkt.data() + kIpv4HeaderBytes, tcp_bytes.data(), tcp_bytes.size());
  return pkt;
}

// Injects raw packet bytes at the server's driver/IP boundary.
void Inject(Testbed& tb, const std::vector<uint8_t>& bytes) {
  Host& h = tb.server_host();
  CpuRun run(h.cpu(), tb.sim().Now());
  MbufPtr head = h.pool().GetHeader();
  const size_t first = std::min<size_t>(kIpv4HeaderBytes, bytes.size());
  std::memcpy(head->Append(first).data(), bytes.data(), first);
  size_t off = first;
  while (off < bytes.size()) {
    MbufPtr m = bytes.size() - off > kClusterThreshold ? h.pool().GetCluster() : h.pool().Get();
    const size_t take = std::min(bytes.size() - off, m->capacity());
    std::memcpy(m->Append(take).data(), bytes.data() + off, take);
    off += take;
    ChainAppend(&head, std::move(m));
  }
  tb.server_ip().InputFromDriver(std::move(head));
}

// The server's outbound segments since the last call.
std::vector<SegmentTap::Record> TakeOutbound(SegmentTap& tap) {
  std::vector<SegmentTap::Record> out;
  for (const auto& r : tap.records()) {
    if (r.outbound) {
      out.push_back(r);
    }
  }
  tap.Clear();
  return out;
}

class Conformance : public ::testing::Test {
 protected:
  // The forged client address must not belong to the real client stack:
  // its replies land on the client host's IP layer and are dropped as
  // not-for-us instead of drawing RSTs from a live TCP.
  static constexpr Ipv4Addr kFakeClient = MakeAddr(10, 0, 0, 77);

  Conformance() : tb_(TestbedConfig{}) {
    tb_.server_tcp().set_tap(&tap_);
    tb_.server_tcp().Listen(kEchoPort);
  }

  // Advances bounded virtual time (the injected peer never ACKs, so running
  // to completion would spin through retransmission exhaustion).
  void Step(double ms) { tb_.sim().RunUntil(tb_.sim().Now() + SimDuration::FromMillis(ms)); }

  TcpHeader Syn(uint32_t iss) {
    TcpHeader th;
    th.src_port = 33333;
    th.dst_port = kEchoPort;
    th.seq = iss;
    th.flags.syn = true;
    th.window = 8192;
    th.options.mss = 1460;
    return th;
  }

  // Completes a handshake as a fake client; returns the server's ISS.
  uint32_t Handshake(uint32_t iss) {
    Inject(tb_, BuildSegment(kFakeClient, kServerAddr, Syn(iss), {}));
    Step(50);
    auto out = TakeOutbound(tap_);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].header.flags.syn);
    EXPECT_TRUE(out[0].header.flags.ack);
    EXPECT_EQ(out[0].header.ack, iss + 1);
    const uint32_t server_iss = out[0].header.seq;

    TcpHeader ack;
    ack.src_port = 33333;
    ack.dst_port = kEchoPort;
    ack.seq = iss + 1;
    ack.ack = server_iss + 1;
    ack.flags.ack = true;
    ack.window = 8192;
    Inject(tb_, BuildSegment(kFakeClient, kServerAddr, ack, {}));
    Step(50);
    TakeOutbound(tap_);
    return server_iss;
  }

  Testbed tb_;
  SegmentTap tap_;
};

TEST_F(Conformance, SynGetsSynAckWithMssOption) {
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, Syn(1000), {}));
  tb_.sim().RunUntil(tb_.sim().Now() + SimDuration::FromMillis(10));
  auto out = TakeOutbound(tap_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].header.flags.syn);
  EXPECT_TRUE(out[0].header.flags.ack);
  EXPECT_EQ(out[0].header.ack, 1001u);
  ASSERT_TRUE(out[0].header.options.mss.has_value());
  EXPECT_EQ(*out[0].header.options.mss, kAtmMtu - kIpv4HeaderBytes - kTcpMinHeaderBytes);
}

TEST_F(Conformance, AckToListenerDrawsRst) {
  TcpHeader stray;
  stray.src_port = 44444;
  stray.dst_port = 9999;  // nothing listens here
  stray.seq = 5;
  stray.ack = 77;
  stray.flags.ack = true;
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, stray, {}));
  Step(10);
  auto out = TakeOutbound(tap_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].header.flags.rst);
  EXPECT_EQ(out[0].header.seq, 77u) << "RST takes its seq from the offending ACK";
}

TEST_F(Conformance, LostSynAckIsRetransmittedByServer) {
  // Drop the first SYN|ACK on the wire: the embryonic connection's
  // retransmission timer must resend it and the handshake completes.
  TestbedConfig cfg;
  cfg.tcp.rexmt_min = SimDuration::FromMillis(50);
  Testbed tb(cfg);
  int kill = 1;
  tb.atm_link()->dir(1).set_corrupt_hook([&kill](std::vector<uint8_t>& cell) {
    if (kill > 0) {
      cell[10] ^= 0xFF;
      --kill;
    }
  });
  RpcOptions opt;
  opt.size = 100;
  opt.iterations = 3;
  opt.warmup = 0;
  const RpcResult r = RunRpcBenchmark(tb, opt);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GE(tb.server_tcp().stats().rexmt_timeouts, 1u);
}

TEST_F(Conformance, InWindowDataAcceptedAndAckedOnTimer) {
  const uint32_t iss = 50000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  const std::vector<uint8_t> data = {'h', 'e', 'l', 'l', 'o'};
  TcpHeader th;
  th.src_port = 33333;
  th.dst_port = kEchoPort;
  th.seq = iss + 1;
  th.ack = server_iss + 1;
  th.flags.ack = true;
  th.window = 8192;
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, th, data));
  Step(250);  // the 200 ms delayed ACK fires
  auto out = TakeOutbound(tap_);
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(out.back().header.ack, iss + 1 + data.size());
}

TEST_F(Conformance, StaleSegmentReAcked) {
  const uint32_t iss = 60000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  // A segment entirely below rcv_nxt (e.g. a spurious retransmission).
  TcpHeader th;
  th.src_port = 33333;
  th.dst_port = kEchoPort;
  th.seq = iss - 300;
  th.ack = server_iss + 1;
  th.flags.ack = true;
  th.window = 8192;
  const std::vector<uint8_t> stale(100, 0xAA);
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, th, stale));
  Step(10);
  auto out = TakeOutbound(tap_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.ack, iss + 1) << "immediate re-ACK with the true rcv_nxt";
  EXPECT_EQ(out[0].payload_len, 0u);
}

TEST_F(Conformance, BeyondWindowFloodDoesNotGrowState) {
  const uint32_t iss = 70000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  const int64_t mbufs_before = tb_.server_host().pool().stats().in_use;
  // 50 segments far beyond the 8 KB window.
  for (int i = 0; i < 50; ++i) {
    TcpHeader th;
    th.src_port = 33333;
    th.dst_port = kEchoPort;
    th.seq = iss + 1 + 100000 + static_cast<uint32_t>(i) * 1000;
    th.ack = server_iss + 1;
    th.flags.ack = true;
    th.window = 8192;
    const std::vector<uint8_t> junk(500, 0x55);
    Inject(tb_, BuildSegment(kFakeClient, kServerAddr, th, junk));
    Step(5);
  }
  // Dropped, not stashed: the reassembly queue holds no mbufs for them.
  EXPECT_LE(tb_.server_host().pool().stats().in_use, mbufs_before);
}

TEST_F(Conformance, RstTearsDownEstablishedConnection) {
  const uint32_t iss = 80000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  EXPECT_EQ(tb_.server_tcp().stats().conns_established, 1u);
  TcpHeader rst;
  rst.src_port = 33333;
  rst.dst_port = kEchoPort;
  rst.seq = iss + 1;
  rst.ack = server_iss + 1;
  rst.flags.rst = true;
  rst.flags.ack = true;
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, rst, {}));
  Step(10);
  EXPECT_EQ(tb_.server_tcp().stats().rst_received, 1u);
  EXPECT_EQ(tb_.server_tcp().stats().conns_dropped, 1u);
}

TEST_F(Conformance, BadChecksumSegmentIgnoredSilently) {
  const uint32_t iss = 90000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  TcpHeader th;
  th.src_port = 33333;
  th.dst_port = kEchoPort;
  th.seq = iss + 1;
  th.ack = server_iss + 1;
  th.flags.ack = true;
  th.window = 8192;
  auto pkt = BuildSegment(kFakeClient, kServerAddr, th, std::vector<uint8_t>(32, 1));
  pkt[45] ^= 0xFF;  // damage the TCP payload; checksum now wrong
  Inject(tb_, pkt);
  Step(10);
  EXPECT_EQ(tb_.server_tcp().stats().checksum_errors, 1u);
  EXPECT_TRUE(TakeOutbound(tap_).empty()) << "corrupt segments draw no response";
}

// --- Nagle / delayed-ACK cadence conformance ---

// Completes a fake-client handshake against `tb`'s server listener, with
// the tap already attached; returns the server's ISS. (The fixture's
// Handshake() bound to tb_; this one works on any testbed, so tests can
// reconfigure the stack under test.)
uint32_t HandshakeOn(Testbed& tb, SegmentTap& tap, uint32_t iss) {
  constexpr Ipv4Addr kFake = MakeAddr(10, 0, 0, 77);
  TcpHeader syn;
  syn.src_port = 33333;
  syn.dst_port = kEchoPort;
  syn.seq = iss;
  syn.flags.syn = true;
  syn.window = 8192;
  syn.options.mss = 1460;
  Inject(tb, BuildSegment(kFake, kServerAddr, syn, {}));
  tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(50));
  auto out = TakeOutbound(tap);
  EXPECT_EQ(out.size(), 1u);
  const uint32_t server_iss = out.empty() ? 0 : out[0].header.seq;

  TcpHeader ack;
  ack.src_port = 33333;
  ack.dst_port = kEchoPort;
  ack.seq = iss + 1;
  ack.ack = server_iss + 1;
  ack.flags.ack = true;
  ack.window = 8192;
  Inject(tb, BuildSegment(kFake, kServerAddr, ack, {}));
  tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(50));
  TakeOutbound(tap);
  return server_iss;
}

TcpHeader DataHeader(uint32_t seq, uint32_t ack) {
  TcpHeader th;
  th.src_port = 33333;
  th.dst_port = kEchoPort;
  th.seq = seq;
  th.ack = ack;
  th.flags.ack = true;
  th.window = 8192;
  return th;
}

// The 4.3BSD receiver acks every *other* in-sequence data segment: the
// first arms the delayed-ACK timer, the second forces the ACK out
// immediately — long before the 200 ms timer.
TEST_F(Conformance, DelackAcksEveryOtherSegmentImmediately) {
  const uint32_t iss = 110000;
  const uint32_t server_iss = Handshake(iss);
  const std::vector<uint8_t> data(500, 0x33);
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, DataHeader(iss + 1, server_iss + 1), data));
  Step(2);
  EXPECT_TRUE(TakeOutbound(tap_).empty()) << "first segment only arms the timer";
  Inject(tb_,
         BuildSegment(kFakeClient, kServerAddr, DataHeader(iss + 501, server_iss + 1), data));
  Step(2);
  auto out = TakeOutbound(tap_);
  ASSERT_EQ(out.size(), 1u) << "second segment forces the ACK";
  EXPECT_EQ(out[0].header.ack, iss + 1001);
  EXPECT_EQ(out[0].payload_len, 0u);
  EXPECT_EQ(tb_.server_tcp().stats().delayed_acks_fired, 0u);
}

// The delayed-ACK timer honors the configured value: with a 50 ms timer a
// lone segment is still unacked at 40 ms and acked by 60 ms.
TEST_F(Conformance, DelackTimerHonorsConfiguredValue) {
  TestbedConfig cfg;
  cfg.tcp.delack_timeout = SimDuration::FromMillis(50);
  Testbed tb(cfg);
  SegmentTap tap;
  tb.server_tcp().set_tap(&tap);
  tb.server_tcp().Listen(kEchoPort);
  const uint32_t iss = 120000;
  const uint32_t server_iss = HandshakeOn(tb, tap, iss);
  const std::vector<uint8_t> data(500, 0x44);
  Inject(tb, BuildSegment(MakeAddr(10, 0, 0, 77), kServerAddr,
                          DataHeader(iss + 1, server_iss + 1), data));
  tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(40));
  EXPECT_TRUE(TakeOutbound(tap).empty()) << "no ACK before the configured timer";
  tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(20));
  auto out = TakeOutbound(tap);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.ack, iss + 501);
  EXPECT_EQ(tb.server_tcp().stats().delayed_acks_fired, 1u);
}

// With delayed ACKs disabled, every in-sequence data segment draws an
// immediate ACK and the timer never fires.
TEST_F(Conformance, DelackDisabledAcksEverySegmentImmediately) {
  TestbedConfig cfg;
  cfg.tcp.delack = false;
  Testbed tb(cfg);
  SegmentTap tap;
  tb.server_tcp().set_tap(&tap);
  tb.server_tcp().Listen(kEchoPort);
  const uint32_t iss = 130000;
  const uint32_t server_iss = HandshakeOn(tb, tap, iss);
  const std::vector<uint8_t> data(500, 0x55);
  for (int i = 0; i < 2; ++i) {
    Inject(tb, BuildSegment(MakeAddr(10, 0, 0, 77), kServerAddr,
                            DataHeader(iss + 1 + static_cast<uint32_t>(i) * 500, server_iss + 1),
                            data));
    tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(2));
    auto out = TakeOutbound(tap);
    ASSERT_EQ(out.size(), 1u) << "segment " << i << " must be acked at once";
    EXPECT_EQ(out[0].header.ack, iss + 1 + static_cast<uint32_t>(i + 1) * 500);
  }
  EXPECT_EQ(tb.server_tcp().stats().delayed_acks_fired, 0u);
}

// Sender-side Nagle rule: at most one small segment may be outstanding.
// Three back-to-back small writes must leave as the first chunk alone plus
// one coalesced remainder, and no small data segment may depart while a
// previous one is still unacknowledged.
TEST_F(Conformance, NagleAllowsOneOutstandingSmallSegment) {
  Testbed tb{TestbedConfig{}};
  SegmentTap tap;
  tb.client_tcp().set_tap(&tap);
  tb.server_tcp().Listen(kEchoPort);
  struct Writer {
    static SimTask Run(Testbed* t) {
      Socket* s = t->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
      while (!s->connected()) {
        co_await s->WaitConnected();
      }
      const std::vector<uint8_t> msg(300, 0x5A);
      s->Write(msg);
      s->Write(msg);
      s->Write(msg);
    }
  };
  tb.client_host().Spawn("writer", Writer::Run(&tb));
  tb.sim().RunUntil(SimTime::FromMillis(500));

  int data_segments = 0;
  bool small_outstanding = false;
  for (const auto& r : tap.records()) {
    if (r.outbound && r.payload_len > 0) {
      EXPECT_FALSE(small_outstanding)
          << "second small segment sent before the first was acked";
      small_outstanding = true;
      ++data_segments;
    } else if (!r.outbound && r.header.flags.ack) {
      small_outstanding = false;
    }
  }
  EXPECT_EQ(data_segments, 2) << "chunk 1 alone, chunks 2+3 coalesced";
  EXPECT_GE(tb.client_tcp().stats().nagle_holds, 1u);
}

}  // namespace
}  // namespace tcplat
