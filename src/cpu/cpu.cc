#include "src/cpu/cpu.h"

#include <utility>

#include "src/base/check.h"

namespace tcplat {

Cpu::Cpu(Simulator* sim, CostProfile profile) : sim_(sim), profile_(std::move(profile)) {
  TCPLAT_CHECK(sim != nullptr);
}

SimTime Cpu::BeginRun(SimTime request_time) {
  TCPLAT_CHECK(!running_) << "CPU runs must not nest";
  running_ = true;
  cursor_ = request_time > busy_until_ ? request_time : busy_until_;
  return cursor_;
}

SimTime Cpu::EndRun() {
  TCPLAT_CHECK(running_);
  running_ = false;
  busy_until_ = cursor_;
  return cursor_;
}

SimTime Cpu::cursor() const {
  TCPLAT_CHECK(running_) << "cursor is only meaningful during a run";
  return cursor_;
}

void Cpu::Charge(const CostParams& params, size_t bytes, size_t chunks) {
  ChargeDuration(params.Eval(bytes, chunks));
}

void Cpu::ChargeDuration(SimDuration amount) {
  TCPLAT_CHECK(running_) << "charges require an active run";
  TCPLAT_CHECK_GE(amount.nanos(), 0);
  cursor_ = cursor_ + amount;
  total_charged_ += amount;
  if (listener_ != nullptr) {
    listener_->OnCharge(amount);
  }
}

void Cpu::StallUntil(SimTime when) {
  TCPLAT_CHECK(running_);
  if (when > cursor_) {
    total_stalled_ += when - cursor_;
    cursor_ = when;
  }
}

}  // namespace tcplat
