// Per-host TCP: socket/connection factory, segment demultiplexing, and the
// stack-wide configuration knobs the paper's experiments toggle.

#ifndef SRC_TCP_TCP_STACK_H_
#define SRC_TCP_TCP_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ip/ip_stack.h"
#include "src/tcp/pcb.h"
#include "src/trace/metrics.h"
#include "src/tcp/segment_tap.h"
#include "src/tcp/tcp_connection.h"

namespace tcplat {

struct TcpStats {
  uint64_t segs_sent = 0;
  uint64_t segs_received = 0;
  uint64_t data_segs_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t predict_ack_hits = 0;   // fast path: pure ACK for outstanding data
  uint64_t predict_data_hits = 0;  // fast path: pure in-sequence data
  uint64_t predict_misses = 0;     // predicate evaluated but failed
  uint64_t checksum_errors = 0;
  uint64_t checksum_fallbacks = 0;  // combined mode had to recompute fully
  uint64_t retransmits = 0;
  uint64_t rexmt_timeouts = 0;
  // Simulated time spent waiting for retransmission timers that actually
  // fired (each firing contributes the interval it was armed with). This is
  // the "timeout stall" stage the congestion tail-blame report charges a
  // slow flow's completion deficit to.
  uint64_t rexmt_stall_ns = 0;
  uint64_t dup_acks_received = 0;
  uint64_t fast_retransmits = 0;    // triggered by the third duplicate ACK
  uint64_t fast_recovery_episodes = 0;  // Reno-era recovery entries
  uint64_t newreno_partial_acks = 0;    // partial-ACK hole repairs in recovery
  uint64_t sack_blocks_received = 0;    // kind-5 blocks fed to the scoreboard
  uint64_t sack_retransmits = 0;        // scoreboard-driven retransmissions
  uint64_t zero_window_probes = 0;  // rexmt timer fired against a closed window
  uint64_t delayed_acks_fired = 0;
  uint64_t nagle_holds = 0;  // tcp_output held small data behind unacked data
  uint64_t sws_holds = 0;    // held because the peer's window made it small
  uint64_t keepalive_probes_sent = 0;
  uint64_t keepalive_drops = 0;
  uint64_t out_of_order_segs = 0;
  uint64_t dropped_no_pcb = 0;
  uint64_t listen_overflows = 0;  // SYN dropped: accept backlog full
  uint64_t rst_sent = 0;
  uint64_t rst_received = 0;
  uint64_t conns_established = 0;
  uint64_t conns_dropped = 0;
};

class TcpStack : public IpProtocolHandler {
 public:
  TcpStack(IpStack* ip, TcpConfig config);
  ~TcpStack() override;

  Host& host() { return ip_->host(); }
  IpStack& ip() { return *ip_; }
  TcpConfig& config() { return config_; }
  PcbTable& pcbs() { return pcbs_; }
  TcpStats& stats() { return stats_; }

  // Creates a socket with a fresh (closed) connection bound to it. The
  // stack owns both; pointers stay valid for the stack's lifetime.
  Socket* CreateSocket();

  // Passive open: listen on `port` at this host's address. `backlog` bounds
  // queued-plus-embryonic connections; further SYNs are dropped (and the
  // client retransmits), as in BSD sonewconn.
  Socket* Listen(uint16_t port, size_t backlog = kDefaultAcceptBacklog);

  // Active open toward `remote`; complete with `co_await s->WaitConnected()`.
  Socket* Connect(SockAddr remote);
  // Active open with a per-connection congestion-control variant, set on the
  // socket before the SYN is built so the variant drives SACK negotiation.
  Socket* Connect(SockAddr remote, CongestionVariant congestion);

  // Populates the PCB list with `n` inert "daemon" PCBs so that lookup cost
  // is realistic (the paper's machines ran the standard ULTRIX daemons).
  void AddBackgroundPcbs(size_t n);

  // Optional tcpdump-style observer of every segment in and out. Costs no
  // simulated time.
  void set_tap(SegmentTap* tap) { tap_ = tap; }
  SegmentTap* tap() { return tap_; }

  // IpProtocolHandler.
  void IpInput(MbufPtr packet, const Ipv4Header& hdr) override;

  // Internal services for TcpConnection.
  uint32_t NextIss() { return iss_ += 64000; }
  // Next free ephemeral port, skipping ports with a live binding and
  // wrapping within [20000, 65535].
  uint16_t NextEphemeralPort();
  // Creates the socket + connection pair for a passive open.
  TcpConnection* SpawnPassive();
  // Registry-owned distribution of transmitted payload sizes (null when a
  // second stack on the host lost the registration race).
  Histogram* tx_bytes_histogram() { return tx_bytes_hist_; }
  // Records the most recent congestion-window transition (exported as the
  // tcp.cwnd_last / tcp.ssthresh_last gauges).
  void NoteCwnd(uint32_t cwnd, uint32_t ssthresh) {
    cwnd_last_ = cwnd;
    ssthresh_last_ = ssthresh;
  }

 private:
  // Answers a segment that reached no connection (RFC 793 RESET rules).
  void SendRst(const TcpHeader& th, const Ipv4Header& iph, size_t data_len);

  IpStack* ip_;
  TcpConfig config_;
  SegmentTap* tap_ = nullptr;
  PcbTable pcbs_;
  TcpStats stats_;
  Histogram* tx_bytes_hist_ = nullptr;
  int64_t cwnd_last_ = 0;
  int64_t ssthresh_last_ = 0;
  uint32_t iss_ = 1;
  uint16_t next_port_ = 20000;
  std::vector<std::unique_ptr<Socket>> sockets_;
  std::vector<std::unique_ptr<TcpConnection>> conns_;
  std::vector<std::unique_ptr<Pcb>> background_pcbs_;
};

}  // namespace tcplat

#endif  // SRC_TCP_TCP_STACK_H_
