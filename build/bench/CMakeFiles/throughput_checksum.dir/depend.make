# Empty dependencies file for throughput_checksum.
# This may be replaced when dependencies are built.
