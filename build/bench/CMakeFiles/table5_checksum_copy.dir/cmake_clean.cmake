file(REMOVE_RECURSE
  "CMakeFiles/table5_checksum_copy.dir/table5_checksum_copy.cc.o"
  "CMakeFiles/table5_checksum_copy.dir/table5_checksum_copy.cc.o.d"
  "table5_checksum_copy"
  "table5_checksum_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_checksum_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
