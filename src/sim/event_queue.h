// The simulator's pending-event set.
//
// A binary heap ordered by (time, sequence number). The sequence number makes
// the order of same-timestamp events deterministic (FIFO in scheduling
// order), which keeps whole-simulation runs byte-for-byte reproducible.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace tcplat {

// Token identifying a scheduled event so it can be cancelled.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when`. `when` may equal the
  // current dispatch time (the event runs after all earlier-scheduled events
  // at that time) but must never be in the past.
  EventId ScheduleAt(SimTime when, Callback fn);

  // Cancels a pending event. Returns true if the event was still pending.
  // Cancelling an already-run or already-cancelled event returns false.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event. Requires !empty().
  SimTime NextTime() const;

  // Removes and returns the earliest pending event. Requires !empty().
  struct Dispatched {
    SimTime time;
    Callback fn;
  };
  Dispatched PopNext();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventId id;
    Callback fn;
    bool cancelled = false;
  };
  struct EntryPtrGreater {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->time != b->time) {
        return a->time > b->time;
      }
      return a->seq > b->seq;
    }
  };

  void DropDeadHead() const;

  // Heap of owning pointers; cancellation marks entries dead in place and
  // they are skipped lazily at pop time.
  mutable std::priority_queue<Entry*, std::vector<Entry*>, EntryPtrGreater> heap_;
  mutable std::vector<Entry*> graveyard_;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  size_t live_count_ = 0;

  // Map from live id -> entry for cancellation. Kept small: entries are
  // removed as they run.
  std::vector<std::pair<EventId, Entry*>> live_;

  Entry* FindLive(EventId id);
  void EraseLive(EventId id);

 public:
  ~EventQueue();
};

}  // namespace tcplat

#endif  // SRC_SIM_EVENT_QUEUE_H_
