file(REMOVE_RECURSE
  "CMakeFiles/lat_tcp.dir/pcb.cc.o"
  "CMakeFiles/lat_tcp.dir/pcb.cc.o.d"
  "CMakeFiles/lat_tcp.dir/segment_tap.cc.o"
  "CMakeFiles/lat_tcp.dir/segment_tap.cc.o.d"
  "CMakeFiles/lat_tcp.dir/tcp_connection.cc.o"
  "CMakeFiles/lat_tcp.dir/tcp_connection.cc.o.d"
  "CMakeFiles/lat_tcp.dir/tcp_stack.cc.o"
  "CMakeFiles/lat_tcp.dir/tcp_stack.cc.o.d"
  "liblat_tcp.a"
  "liblat_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
