// TCP behavior tests over the full simulated testbed: handshake, data
// integrity, Nagle/delayed-ACK dynamics, header prediction, checksum
// negotiation, loss recovery, teardown, and resource hygiene.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/random.h"
#include "src/core/testbed.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

std::vector<uint8_t> RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> buf(n);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return buf;
}

// --- reusable process bodies ---

struct Endpoint {
  Socket* sock = nullptr;
  std::vector<uint8_t> received;
  bool done = false;
  bool error = false;
};

SimTask ConnectSendRecv(Testbed* tb, Endpoint* ep, std::vector<uint8_t> to_send,
                        size_t expect_bytes, bool close_when_done) {
  Socket* s = tb->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
  ep->sock = s;
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  if (s->has_error()) {
    ep->error = true;
    ep->done = true;
    co_return;
  }
  size_t sent = 0;
  while (sent < to_send.size()) {
    const size_t n = s->Write({to_send.data() + sent, to_send.size() - sent});
    sent += n;
    if (n == 0) {
      if (s->has_error()) {
        ep->error = true;
        ep->done = true;
        co_return;
      }
      co_await s->WaitWritable();
    }
  }
  std::vector<uint8_t> buf(4096);
  while (ep->received.size() < expect_bytes) {
    const size_t n = s->Read({buf.data(), buf.size()});
    if (n > 0) {
      ep->received.insert(ep->received.end(), buf.begin(), buf.begin() + n);
    } else {
      if (s->eof() || s->has_error()) {
        break;
      }
      co_await s->WaitReadable();
    }
  }
  if (close_when_done) {
    s->Close();
  }
  ep->done = true;
}

SimTask AcceptEchoAll(Testbed* tb, Endpoint* ep, size_t expect_bytes) {
  Socket* listener = tb->server_tcp().Listen(kEchoPort);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  ep->sock = s;
  std::vector<uint8_t> buf(4096);
  while (ep->received.size() < expect_bytes) {
    const size_t n = s->Read({buf.data(), buf.size()});
    if (n > 0) {
      size_t echoed = 0;
      while (echoed < n) {
        const size_t w = s->Write({buf.data() + echoed, n - echoed});
        echoed += w;
        if (w == 0) {
          co_await s->WaitWritable();
        }
      }
      ep->received.insert(ep->received.end(), buf.begin(), buf.begin() + n);
    } else {
      if (s->eof() || s->has_error()) {
        break;
      }
      co_await s->WaitReadable();
    }
  }
  s->Close();
  ep->done = true;
}

// Receives without echoing.
SimTask AcceptSinkAll(Testbed* tb, Endpoint* ep, size_t expect_bytes, SimDuration initial_delay) {
  Socket* listener = tb->server_tcp().Listen(kEchoPort);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  ep->sock = s;
  if (initial_delay.nanos() > 0) {
    co_await tb->server_host().SleepFor(initial_delay);
  }
  std::vector<uint8_t> buf(4096);
  while (ep->received.size() < expect_bytes) {
    const size_t n = s->Read({buf.data(), buf.size()});
    if (n > 0) {
      ep->received.insert(ep->received.end(), buf.begin(), buf.begin() + n);
    } else {
      if (s->eof() || s->has_error()) {
        break;
      }
      co_await s->WaitReadable();
    }
  }
  ep->done = true;
}

class TcpTest : public ::testing::Test {
 protected:
  void RunEcho(Testbed& tb, size_t bytes, uint64_t seed = 1) {
    const auto data = RandomData(bytes, seed);
    client_ = {};
    server_ = {};
    tb.server_host().Spawn("server", AcceptEchoAll(&tb, &server_, bytes));
    tb.client_host().Spawn("client",
                           ConnectSendRecv(&tb, &client_, data, bytes, /*close=*/true));
    tb.sim().RunToCompletion();
    ASSERT_TRUE(client_.done);
    ASSERT_TRUE(server_.done);
    EXPECT_FALSE(client_.error);
    EXPECT_EQ(server_.received, data) << "request direction corrupted";
    EXPECT_EQ(client_.received, data) << "reply direction corrupted";
  }

  Endpoint client_;
  Endpoint server_;
};

TEST_F(TcpTest, HandshakeNegotiatesAtmMss) {
  Testbed tb{TestbedConfig{}};
  RunEcho(tb, 16);
  EXPECT_EQ(tb.client_tcp().stats().conns_established, 1u);
  EXPECT_EQ(tb.server_tcp().stats().conns_established, 1u);
}

TEST_F(TcpTest, EthernetSegmentsByMss) {
  TestbedConfig cfg;
  cfg.network = NetworkKind::kEthernet;
  Testbed tb(cfg);
  RunEcho(tb, 6000);
  // 6000 bytes each way with MSS 1460 needs at least 5 data segments.
  EXPECT_GE(tb.client_tcp().stats().data_segs_sent, 5u);
  EXPECT_EQ(tb.client_tcp().stats().bytes_sent, 6000u);
}

class TcpEchoSizeTest : public TcpTest, public ::testing::WithParamInterface<size_t> {};

TEST_P(TcpEchoSizeTest, DataIntegrityOverAtm) {
  Testbed tb{TestbedConfig{}};
  RunEcho(tb, GetParam(), GetParam() * 31 + 5);
}

TEST_P(TcpEchoSizeTest, DataIntegrityOverEthernet) {
  TestbedConfig cfg;
  cfg.network = NetworkKind::kEthernet;
  Testbed tb(cfg);
  RunEcho(tb, GetParam(), GetParam() * 17 + 3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpEchoSizeTest,
                         ::testing::Values(1, 4, 20, 107, 108, 109, 1023, 1024, 1025, 4095,
                                           4096, 4097, 8000, 8192, 20000),
                         [](const auto& inst) { return "n" + std::to_string(inst.param); });

TEST_F(TcpTest, UnidirectionalBulkDeliversInOrder) {
  Testbed tb{TestbedConfig{}};
  const size_t kBytes = 64 * 1024;
  const auto data = RandomData(kBytes, 77);
  tb.server_host().Spawn("sink", AcceptSinkAll(&tb, &server_, kBytes, SimDuration()));
  tb.client_host().Spawn("sender", ConnectSendRecv(&tb, &client_, data, 0, /*close=*/true));
  tb.sim().RunToCompletion();
  ASSERT_TRUE(server_.done);
  EXPECT_EQ(server_.received, data);
}

TEST_F(TcpTest, HeaderPredictionHitsOnBulkTransfer) {
  // The fast path was "optimized for a single sender, high throughput style
  // of communication" — a one-way stream must hit both prediction cases.
  Testbed tb{TestbedConfig{}};
  const size_t kBytes = 128 * 1024;
  tb.server_host().Spawn("sink", AcceptSinkAll(&tb, &server_, kBytes, SimDuration()));
  tb.client_host().Spawn("sender",
                         ConnectSendRecv(&tb, &client_, RandomData(kBytes, 3), 0, true));
  tb.sim().RunToCompletion();
  EXPECT_GT(tb.server_tcp().stats().predict_data_hits, 10u)
      << "receiver-side pure-data fast path";
  EXPECT_GT(tb.client_tcp().stats().predict_ack_hits, 5u) << "sender-side pure-ACK fast path";
}

TEST_F(TcpTest, PredictionDisabledNeverHits) {
  TestbedConfig cfg;
  cfg.tcp.header_prediction = false;
  Testbed tb(cfg);
  RunEcho(tb, 8000);
  EXPECT_EQ(tb.client_tcp().stats().predict_ack_hits, 0u);
  EXPECT_EQ(tb.client_tcp().stats().predict_data_hits, 0u);
  EXPECT_EQ(tb.server_tcp().stats().predict_data_hits, 0u);
  EXPECT_EQ(tb.client_tcp().pcbs().stats().cache_hits, 0u);
}

TEST_F(TcpTest, DelayedAckFiresWithoutReverseTraffic) {
  Testbed tb{TestbedConfig{}};
  tb.server_host().Spawn("sink", AcceptSinkAll(&tb, &server_, 100, SimDuration()));
  tb.client_host().Spawn("sender",
                         ConnectSendRecv(&tb, &client_, RandomData(100, 4), 0, false));
  tb.sim().RunUntil(SimTime::FromSeconds(1));
  EXPECT_EQ(server_.received.size(), 100u);
  // No reply data, no second segment: the ACK came from the delack timer.
  EXPECT_GE(tb.server_tcp().stats().delayed_acks_fired, 1u);
}

TEST_F(TcpTest, EchoPiggybacksAcks) {
  Testbed tb{TestbedConfig{}};
  RunEcho(tb, 500);
  // The request is acked by the reply data itself.
  EXPECT_EQ(tb.server_tcp().stats().delayed_acks_fired, 0u);
}

TEST_F(TcpTest, NagleHoldsSecondSmallWrite) {
  // Two back-to-back small writes with no read in between: the second must
  // wait for the first's ACK (no NODELAY), so only after ~one RTT.
  Testbed tb{TestbedConfig{}};
  const auto data = RandomData(2000, 9);  // two 1000-byte writes below
  struct TwoWrites {
    static SimTask Run(Testbed* tb, const std::vector<uint8_t>* data, Endpoint* ep) {
      Socket* s = tb->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
      ep->sock = s;
      while (!s->connected()) {
        co_await s->WaitConnected();
      }
      s->Write({data->data(), 1000});
      s->Write({data->data() + 1000, 1000});
      ep->done = true;
    }
  };
  tb.server_host().Spawn("sink", AcceptSinkAll(&tb, &server_, 2000, SimDuration()));
  tb.client_host().Spawn("writer", TwoWrites::Run(&tb, &data, &client_));
  tb.sim().RunToCompletion();
  EXPECT_EQ(server_.received, data);
  // First write goes out alone; the second was Nagle-held and coalesced.
  EXPECT_EQ(tb.client_tcp().stats().data_segs_sent, 2u);
}

TEST_F(TcpTest, PerSocketNodelayOverridesStackDefault) {
  // Stack default Nagle ON, but this one socket asks for TCP_NODELAY: its
  // second small write must go out immediately instead of coalescing.
  Testbed tb{TestbedConfig{}};
  struct TwoWrites {
    static SimTask Run(Testbed* t, Endpoint* ep) {
      Socket* s = t->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
      s->SetNodelay(true);
      ep->sock = s;
      while (!s->connected()) {
        co_await s->WaitConnected();
      }
      std::vector<uint8_t> msg(400, 0x44);
      s->Write(msg);
      s->Write(msg);
      ep->done = true;
    }
  };
  client_ = {};
  server_ = {};
  tb.server_host().Spawn("sink", AcceptSinkAll(&tb, &server_, 800, SimDuration()));
  tb.client_host().Spawn("writer", TwoWrites::Run(&tb, &client_));
  // Well before any ACK round trip completes, both writes are on the wire.
  tb.sim().RunUntil(SimTime::FromMicros(900));
  EXPECT_EQ(tb.client_tcp().stats().data_segs_sent, 2u)
      << "NODELAY socket must not Nagle-hold the second write";
  tb.sim().RunToCompletion();
  EXPECT_EQ(server_.received.size(), 800u);
}

TEST_F(TcpTest, NodelaySendsImmediately) {
  TestbedConfig cfg;
  cfg.tcp.nodelay = true;
  Testbed tb(cfg);
  RunEcho(tb, 8000);  // with NODELAY the 3904-byte remainder isn't held
  EXPECT_FALSE(client_.error);
}

TEST_F(TcpTest, ChecksumEliminationNegotiatedWhenBothAgree) {
  TestbedConfig cfg;
  cfg.tcp.checksum = ChecksumMode::kNone;
  Testbed tb(cfg);
  RunEcho(tb, 4000);
  // Data segments were sent with checksum 0 and accepted.
  EXPECT_EQ(tb.client_tcp().stats().checksum_errors, 0u);
  EXPECT_EQ(tb.server_tcp().stats().checksum_errors, 0u);
}

TEST_F(TcpTest, CombinedChecksumModePreservesIntegrity) {
  TestbedConfig cfg;
  cfg.tcp.checksum = ChecksumMode::kCombined;
  Testbed tb(cfg);
  RunEcho(tb, 8000);
  EXPECT_EQ(tb.client_tcp().stats().checksum_errors, 0u);
}

TEST_F(TcpTest, CombinedModeFallsBackForHeaderMbufData) {
  TestbedConfig cfg;
  cfg.tcp.checksum = ChecksumMode::kCombined;
  Testbed tb(cfg);
  RunEcho(tb, 4);  // 4 bytes ride in the header mbuf: partials unusable
  EXPECT_GT(tb.client_tcp().stats().checksum_fallbacks, 0u);
}

TEST_F(TcpTest, CellCorruptionRecoveredByRetransmission) {
  Testbed tb{TestbedConfig{}};
  // Corrupt exactly one cell mid-run on the request direction.
  int countdown = 40;
  tb.atm_link()->dir(0).set_corrupt_hook([&countdown](std::vector<uint8_t>& cell) {
    if (--countdown == 0) {
      cell[30] ^= 0x40;
    }
  });
  RunEcho(tb, 1400);
  EXPECT_GE(tb.client_tcp().stats().rexmt_timeouts +
                tb.server_tcp().stats().rexmt_timeouts,
            1u);
  const auto& sar = tb.server_atm()->sar_stats();
  EXPECT_EQ(sar.crc_errors + tb.client_atm()->sar_stats().crc_errors, 1u);
}

TEST_F(TcpTest, LostSegmentMidStreamUsesReassemblyQueue) {
  // Ethernet bulk with a window of several segments: dropping one frame
  // makes its successors arrive out of order.
  TestbedConfig cfg;
  cfg.network = NetworkKind::kEthernet;
  Testbed tb(cfg);
  int countdown = 20;
  tb.ether_segment()->set_corrupt_hook([&countdown](std::vector<uint8_t>& frame) {
    if (--countdown == 0) {
      frame[frame.size() / 2] ^= 0x01;
    }
  });
  const size_t kBytes = 64 * 1024;
  const auto data = RandomData(kBytes, 5);
  tb.server_host().Spawn("sink", AcceptSinkAll(&tb, &server_, kBytes, SimDuration()));
  tb.client_host().Spawn("sender", ConnectSendRecv(&tb, &client_, data, 0, true));
  tb.sim().RunToCompletion();
  EXPECT_EQ(server_.received, data) << "stream must survive the loss intact";
  EXPECT_GE(tb.server_tcp().stats().out_of_order_segs, 1u);
  EXPECT_GE(tb.client_tcp().stats().retransmits, 1u);
}

TEST_F(TcpTest, ZeroWindowThenProbeRecovers) {
  // Tiny receive buffer and a sleepy reader: the sender fills the window,
  // then a zero-window probe (or the reader's window update) reopens flow.
  TestbedConfig cfg;
  cfg.tcp.rcvbuf = 2048;
  Testbed tb(cfg);
  const size_t kBytes = 16 * 1024;
  const auto data = RandomData(kBytes, 6);
  tb.server_host().Spawn(
      "sleepy", AcceptSinkAll(&tb, &server_, kBytes, SimDuration::FromSeconds(2)));
  tb.client_host().Spawn("sender", ConnectSendRecv(&tb, &client_, data, 0, true));
  tb.sim().RunToCompletion();
  EXPECT_EQ(server_.received, data);
}

TEST_F(TcpTest, CloseSequenceReachesClosedAndFreesBuffers) {
  Testbed tb{TestbedConfig{}};
  RunEcho(tb, 1000);
  // TIME_WAIT timers have drained (RunToCompletion); everything is closed
  // and no mbufs leak.
  EXPECT_EQ(tb.client_host().pool().stats().in_use, 0)
      << "client leaked mbufs after close";
  EXPECT_EQ(tb.server_host().pool().stats().in_use, 0)
      << "server leaked mbufs after close";
  ASSERT_NE(client_.sock, nullptr);
  EXPECT_TRUE(client_.sock->eof() || client_.sock->state() == SocketState::kClosed);
}

TEST_F(TcpTest, ConnectToClosedPortIsRefusedByRst) {
  Testbed tb{TestbedConfig{}};
  // No listener: the server stack answers the SYN with a RESET.
  client_ = {};
  tb.client_host().Spawn("client", ConnectSendRecv(&tb, &client_, RandomData(10, 1), 0, false));
  tb.sim().RunToCompletion();
  EXPECT_TRUE(client_.done);
  EXPECT_TRUE(client_.error);
  EXPECT_EQ(tb.server_tcp().stats().rst_sent, 1u);
  EXPECT_EQ(tb.client_tcp().stats().rst_received, 1u);
  EXPECT_EQ(tb.client_tcp().stats().rexmt_timeouts, 0u) << "refusal is instant, not a timeout";
}

TEST_F(TcpTest, ConnectOverDeadLinkFailsAfterRetries) {
  TestbedConfig cfg;
  cfg.tcp.max_rexmt = 2;
  cfg.tcp.rexmt_min = SimDuration::FromMillis(50);
  Testbed tb(cfg);
  // Black-hole the request direction: every cell is destroyed in flight.
  tb.atm_link()->dir(0).set_corrupt_hook(
      [](std::vector<uint8_t>& cell) { cell[10] ^= 0xFF; });
  client_ = {};
  tb.client_host().Spawn("client", ConnectSendRecv(&tb, &client_, RandomData(10, 1), 0, false));
  tb.sim().RunToCompletion();
  EXPECT_TRUE(client_.done);
  EXPECT_TRUE(client_.error);
  EXPECT_GE(tb.client_tcp().stats().rexmt_timeouts, 2u);
  EXPECT_GE(tb.client_tcp().stats().conns_dropped, 1u);
}

TEST_F(TcpTest, BackgroundPcbsMakeLookupRealistic) {
  TestbedConfig cfg;
  cfg.background_pcbs = 20;
  Testbed tb(cfg);
  EXPECT_EQ(tb.client_tcp().pcbs().size(), 20u);
  tb.client_tcp().Listen(9999);
  EXPECT_EQ(tb.client_tcp().pcbs().size(), 21u);  // new PCBs go to the head
  RunEcho(tb, 100);
  // Closed benchmark connections were removed again.
  EXPECT_EQ(tb.server_tcp().pcbs().size(), 21u);  // 20 daemons + the listener
}

TEST_F(TcpTest, StateNamesAreHuman) {
  EXPECT_STREQ(TcpStateName(TcpState::kEstablished), "ESTABLISHED");
  EXPECT_STREQ(TcpStateName(TcpState::kTimeWait), "TIME_WAIT");
}

}  // namespace
}  // namespace tcplat
