file(REMOVE_RECURSE
  "CMakeFiles/lat_sim.dir/event_queue.cc.o"
  "CMakeFiles/lat_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/lat_sim.dir/simulator.cc.o"
  "CMakeFiles/lat_sim.dir/simulator.cc.o.d"
  "CMakeFiles/lat_sim.dir/time.cc.o"
  "CMakeFiles/lat_sim.dir/time.cc.o.d"
  "liblat_sim.a"
  "liblat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
