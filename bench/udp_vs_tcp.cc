// UDP vs TCP round-trip latency — the comparison behind the paper's §1
// framing (its baselines, Kay & Pasquale [8][9] and the DEC OSF/1 study
// [3], are UDP/IP measurements on the same class of hardware) and behind
// §4.2's observation that local NFS traffic already ran UDP without
// checksums. Quantifies what TCP's reliability machinery costs per round
// trip on the same stack, and what the checksum costs each protocol.

#include <cstdio>
#include <vector>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"
#include "src/os/task.h"
#include "src/udp/udp.h"

namespace tcplat {
namespace {

struct UdpRun {
  LatencyStats rtt;
  bool done = false;
};

SimTask UdpEchoServer(Testbed* tb, bool checksum, int total) {
  UdpSocket* s = tb->server_udp().CreateSocket(kEchoPort);
  s->set_checksum_enabled(checksum);
  std::vector<uint8_t> buf(65536);
  for (int i = 0; i < total; ++i) {
    size_t n = 0;
    SockAddr from;
    while ((n = s->RecvFrom(buf, &from)) == 0) {
      co_await s->WaitReadable();
    }
    s->SendTo({buf.data(), n}, from);
  }
}

SimTask UdpEchoClient(Testbed* tb, bool checksum, size_t size, int warmup, int iters,
                      UdpRun* out) {
  UdpSocket* s = tb->client_udp().CreateSocket();
  s->set_checksum_enabled(checksum);
  std::vector<uint8_t> msg(size, 0x5A);
  std::vector<uint8_t> buf(65536);
  for (int i = 0; i < warmup + iters; ++i) {
    const SimTime t0 = tb->client_host().CurrentTime();
    s->SendTo(msg, SockAddr{kServerAddr, kEchoPort});
    size_t n = 0;
    while ((n = s->RecvFrom(buf)) == 0) {
      co_await s->WaitReadable();
    }
    const SimTime t1 = tb->client_host().CurrentTime();
    if (i >= warmup) {
      out->rtt.Add(t1.QuantizeToClockTick() - t0.QuantizeToClockTick());
    }
  }
  out->done = true;
}

double UdpRtt(size_t size, bool checksum) {
  Testbed tb{TestbedConfig{}};
  UdpRun run;
  constexpr int kWarmup = 8;
  constexpr int kIters = 150;
  tb.server_host().Spawn("udp-s", UdpEchoServer(&tb, checksum, kWarmup + kIters));
  tb.client_host().Spawn("udp-c",
                         UdpEchoClient(&tb, checksum, size, kWarmup, kIters, &run));
  tb.sim().RunToCompletion();
  return run.done ? run.rtt.Mean().micros() : -1.0;
}

double TcpRtt(size_t size, ChecksumMode mode) {
  TestbedConfig cfg;
  cfg.tcp.checksum = mode;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 150;
  return RunRpcBenchmark(tb, opt).MeanRtt().micros();
}

struct Row {
  double udp;
  double udp_nock;
  double tcp;
  double tcp_nock;
};

void Run() {
  std::printf("UDP vs TCP round-trip latency over ATM (us); 'nock' = checksum off\n\n");
  const std::vector<Row> rows = ParallelMap<Row>(paper::kSizes.size(), [](size_t i) {
    const size_t size = paper::kSizes[i];
    return Row{UdpRtt(size, true), UdpRtt(size, false), TcpRtt(size, ChecksumMode::kStandard),
               TcpRtt(size, ChecksumMode::kNone)};
  });
  TextTable t({"Size", "UDP", "UDP nock", "TCP", "TCP nock", "TCP tax (%)",
               "UDP cksum cost", "TCP cksum cost"});
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    const auto& [udp, udp_nock, tcp, tcp_nock] = rows[i];
    t.AddRow({std::to_string(paper::kSizes[i]), TextTable::Us(udp), TextTable::Us(udp_nock),
              TextTable::Us(tcp), TextTable::Us(tcp_nock),
              TextTable::Pct(100.0 * (tcp - udp) / udp),
              TextTable::Us(udp - udp_nock), TextTable::Us(tcp - tcp_nock)});
  }
  t.Print();
  std::printf("\nReadings: TCP's reliability machinery costs ~15-25%% over UDP for the\n"
              "RPC pattern (the §1 'is TCP viable for RPC' question — yes, the gap is\n"
              "protocol processing, not a different order of magnitude), and the\n"
              "checksum's absolute cost is protocol-independent: the same data is\n"
              "summed either way, which is why the NFS practice §4.2 cites carried\n"
              "over to the TCP option the paper proposes.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
