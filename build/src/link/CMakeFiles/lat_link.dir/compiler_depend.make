# Empty compiler generated dependencies file for lat_link.
# This may be replaced when dependencies are built.
