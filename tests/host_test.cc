// Tests for the OS model: coroutine processes, sleep/wakeup with the
// calibrated context-switch cost, software interrupts, callouts, and
// run-to-completion serialization.

#include <gtest/gtest.h>

#include <vector>

#include "src/os/host.h"
#include "src/os/task.h"
#include "src/sim/simulator.h"

namespace tcplat {
namespace {

class HostTest : public ::testing::Test {
 protected:
  HostTest() : host_(&sim_, "h0", CostProfile::Decstation5000_200()) {}
  Simulator sim_;
  Host host_;
};

namespace coroutines {

SimTask RecordTime(Host* host, std::vector<SimTime>* out) {
  out->push_back(host->CurrentTime());
  co_return;
}

SimTask SleepTwice(Host* host, std::vector<SimTime>* out) {
  out->push_back(host->CurrentTime());
  co_await host->SleepFor(SimDuration::FromMicros(100));
  out->push_back(host->CurrentTime());
  co_await host->SleepFor(SimDuration::FromMicros(50));
  out->push_back(host->CurrentTime());
}

SimTask BlockOn(Host* host, WaitChannel* chan, std::vector<SimTime>* out) {
  co_await host->Block(*chan);
  out->push_back(host->CurrentTime());
}

SimTask ChargeAndExit(Host* host, double us) {
  host->cpu().ChargeDuration(SimDuration::FromMicros(us));
  co_return;
}

}  // namespace coroutines

TEST_F(HostTest, SpawnRunsProcess) {
  std::vector<SimTime> times;
  Process* p = host_.Spawn("t", coroutines::RecordTime(&host_, &times));
  EXPECT_EQ(p->state(), ProcessState::kRunnable);
  sim_.RunToCompletion();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(p->state(), ProcessState::kDone);
}

TEST_F(HostTest, SleepForAdvancesVirtualTime) {
  std::vector<SimTime> times;
  host_.Spawn("t", coroutines::SleepTwice(&host_, &times));
  sim_.RunToCompletion();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ((times[1] - times[0]).micros(), 100);
  EXPECT_EQ((times[2] - times[1]).micros(), 50);
}

TEST_F(HostTest, WakeupChargesContextSwitch) {
  std::vector<SimTime> times;
  WaitChannel chan;
  host_.Spawn("sleeper", coroutines::BlockOn(&host_, &chan, &times));
  sim_.RunToCompletion();
  EXPECT_TRUE(times.empty());  // still blocked

  const SimTime wake_at = SimTime::FromMicros(500);
  sim_.ScheduleAt(wake_at, [&] { host_.Wakeup(chan); });
  sim_.RunToCompletion();
  ASSERT_EQ(times.size(), 1u);
  // Process runs after the wakeup_ctx_switch cost (the paper's Wakeup row).
  const double delta = (times[0] - wake_at).micros();
  EXPECT_NEAR(delta, host_.cpu().profile().wakeup_ctx_switch.fixed_us, 0.01);
  // ...and the tracker recorded the interval.
  EXPECT_EQ(host_.tracker().count(SpanId::kRxWakeup), 1u);
  EXPECT_NEAR(host_.tracker().total(SpanId::kRxWakeup).micros(), delta, 0.01);
}

TEST_F(HostTest, WakeupWithNoWaitersIsANoop) {
  WaitChannel chan;
  host_.Wakeup(chan);
  EXPECT_EQ(sim_.pending_events(), 0u);
}

TEST_F(HostTest, WakeupWakesAllWaiters) {
  std::vector<SimTime> times;
  WaitChannel chan;
  host_.Spawn("a", coroutines::BlockOn(&host_, &chan, &times));
  host_.Spawn("b", coroutines::BlockOn(&host_, &chan, &times));
  sim_.RunToCompletion();
  sim_.Schedule(SimDuration::FromMicros(10), [&] { host_.Wakeup(chan); });
  sim_.RunToCompletion();
  EXPECT_EQ(times.size(), 2u);
  // Serialized on one CPU: the second waiter runs after the first.
  EXPECT_GT(times[1], times[0]);
}

TEST_F(HostTest, RunToCompletionSerializesActivities) {
  // A process that charges 100 us, then an interrupt requested mid-run:
  // the interrupt must wait for the CPU.
  host_.Spawn("busy", coroutines::ChargeAndExit(&host_, 100));
  SimTime intr_ran;
  sim_.ScheduleAt(SimTime::FromMicros(30),
                  [&] { host_.RunAsInterrupt([&] { intr_ran = host_.cpu().cursor(); }); });
  sim_.RunToCompletion();
  // Interrupt entry starts at 100 us (after the busy run), plus intr cost.
  EXPECT_NEAR(intr_ran.micros(), 100 + host_.cpu().profile().intr_entry.fixed_us, 0.01);
}

TEST_F(HostTest, NetisrDispatchesOnceWhilePending) {
  int runs = 0;
  host_.RegisterNetisr([&] { ++runs; });
  sim_.Schedule(SimDuration::FromMicros(1), [&] {
    host_.RaiseNetisr();
    host_.RaiseNetisr();  // coalesced with the pending one
    host_.RaiseNetisr();
  });
  sim_.RunToCompletion();
  EXPECT_EQ(runs, 1);
  // A later raise dispatches again.
  sim_.Schedule(SimDuration::FromMicros(1), [&] { host_.RaiseNetisr(); });
  sim_.RunToCompletion();
  EXPECT_EQ(runs, 2);
}

TEST_F(HostTest, NetisrPaysDispatchCost) {
  SimTime ran;
  host_.RegisterNetisr([&] { ran = host_.cpu().cursor(); });
  const SimTime raise_at = SimTime::FromMicros(10);
  sim_.ScheduleAt(raise_at, [&] { host_.RaiseNetisr(); });
  sim_.RunToCompletion();
  EXPECT_NEAR((ran - raise_at).micros(), host_.cpu().profile().softint_dispatch.fixed_us, 0.01);
}

TEST_F(HostTest, CalloutRunsAndCancels) {
  int fired = 0;
  host_.After(SimDuration::FromMicros(10), [&] { ++fired; });
  const EventId id = host_.After(SimDuration::FromMicros(20), [&] { ++fired; });
  EXPECT_TRUE(host_.CancelCallout(id));
  sim_.RunToCompletion();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(host_.CancelCallout(id));
}

TEST_F(HostTest, CurrentTimeFollowsCpuDuringRuns) {
  EXPECT_EQ(host_.CurrentTime(), sim_.Now());
  host_.cpu().BeginRun(SimTime::FromMicros(5));
  host_.cpu().ChargeDuration(SimDuration::FromMicros(2));
  EXPECT_EQ(host_.CurrentTime(), SimTime::FromMicros(7));
  host_.cpu().EndRun();
}

}  // namespace
}  // namespace tcplat
