file(REMOVE_RECURSE
  "CMakeFiles/lat_fault.dir/error_experiment.cc.o"
  "CMakeFiles/lat_fault.dir/error_experiment.cc.o.d"
  "CMakeFiles/lat_fault.dir/injector.cc.o"
  "CMakeFiles/lat_fault.dir/injector.cc.o.d"
  "liblat_fault.a"
  "liblat_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
