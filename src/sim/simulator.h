// The discrete-event simulator driving a whole experiment.
//
// A Simulator owns the virtual clock and the pending-event set. All other
// components (hosts, links, device models) schedule callbacks against it.
// Execution is strictly single-threaded and deterministic.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>

#include "src/base/random.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace tcplat {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` at Now() + delay (delay >= 0).
  EventId Schedule(SimDuration delay, EventQueue::Callback fn);

  // Schedules `fn` at the absolute time `when` (>= Now()).
  EventId ScheduleAt(SimTime when, EventQueue::Callback fn);

  bool Cancel(EventId id) { return events_.Cancel(id); }

  // Runs events until the queue is empty or `deadline` is passed. Events
  // scheduled exactly at the deadline still run. Returns the number of
  // events dispatched.
  uint64_t RunUntil(SimTime deadline);

  // Timestamp of the earliest pending event, or SimTime::Max() if the queue
  // is empty. Used by the shard engine to compute the next window base.
  SimTime NextEventTime();

  // Dispatches every event strictly before `limit` and stops, leaving Now()
  // at the last dispatched event (it does NOT advance to `limit`, so a
  // later cross-shard message at Now()+lookahead can still land inside
  // [Now(), limit)). Returns the number of events dispatched.
  uint64_t RunWhileBefore(SimTime limit);

  // Runs until the queue drains completely.
  uint64_t RunToCompletion();

  // Runs a single event if one is pending; returns false if the queue was
  // empty.
  bool Step();

  uint64_t events_dispatched() const { return dispatched_; }
  size_t pending_events() const { return events_.size(); }

 private:
  SimTime now_;
  EventQueue events_;
  Rng rng_;
  uint64_t dispatched_ = 0;
};

}  // namespace tcplat

#endif  // SRC_SIM_SIMULATOR_H_
