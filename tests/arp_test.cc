// Tests for ARP: packet framing, cold-start resolution (broadcast who-has,
// unicast reply, pending-queue flush), learning from requests, timeouts for
// silent addresses, and TCP running over a completely cold cache.

#include <gtest/gtest.h>

#include <cstring>

#include "src/base/random.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/ether/arp.h"
#include "src/ether/ether_netif.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

TEST(ArpPacket, SerializeParseRoundTrip) {
  ArpPacket p;
  p.op = ArpOp::kRequest;
  p.sender_mac = {1, 2, 3, 4, 5, 6};
  p.sender_ip = MakeAddr(10, 0, 0, 1);
  p.target_mac = {};
  p.target_ip = MakeAddr(10, 0, 0, 2);
  const auto wire = p.Serialize();
  ASSERT_EQ(wire.size(), kArpPacketBytes);
  auto q = ArpPacket::Parse(wire);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->op, ArpOp::kRequest);
  EXPECT_EQ(q->sender_mac, p.sender_mac);
  EXPECT_EQ(q->sender_ip, p.sender_ip);
  EXPECT_EQ(q->target_ip, p.target_ip);
}

TEST(ArpPacket, RejectsNonEthernetIpv4) {
  ArpPacket p;
  auto wire = p.Serialize();
  wire[1] = 9;  // htype
  EXPECT_FALSE(ArpPacket::Parse(wire).has_value());
  EXPECT_FALSE(ArpPacket::Parse(std::vector<uint8_t>(10, 0)).has_value());
}

TEST(ArpCache, PendingQueueBoundsAndFlush) {
  ArpCache cache;
  const Ipv4Addr ip = MakeAddr(1, 1, 1, 1);
  for (size_t i = 0; i < ArpCache::kMaxPendingPerAddr; ++i) {
    EXPECT_TRUE(cache.Enqueue(ip, std::vector<uint8_t>{static_cast<uint8_t>(i)}));
  }
  EXPECT_FALSE(cache.Enqueue(ip, {0xFF})) << "queue is bounded";
  EXPECT_EQ(cache.PendingCount(ip), ArpCache::kMaxPendingPerAddr);
  const auto flushed = cache.TakePending(ip);
  EXPECT_EQ(flushed.size(), ArpCache::kMaxPendingPerAddr);
  EXPECT_EQ(flushed[0][0], 0);
  EXPECT_FALSE(cache.HasPending(ip));
}

// A two-host Ethernet segment with *no* static bindings.
struct ColdEthernet {
  ColdEthernet()
      : sim(1),
        a_host(&sim, "a", CostProfile::Decstation5000_200()),
        b_host(&sim, "b", CostProfile::Decstation5000_200()),
        a_ip(&a_host, MakeAddr(10, 0, 0, 1)),
        b_ip(&b_host, MakeAddr(10, 0, 0, 2)),
        segment(&sim, SimDuration::FromNanos(300)),
        a_if(&a_ip, &a_host, &segment, MacAddr{2, 0, 0, 0, 0, 1}),
        b_if(&b_ip, &b_host, &segment, MacAddr{2, 0, 0, 0, 0, 2}),
        a_tcp(&a_ip, TcpConfig{}),
        b_tcp(&b_ip, TcpConfig{}) {}

  Simulator sim;
  Host a_host;
  Host b_host;
  IpStack a_ip;
  IpStack b_ip;
  EtherSegment segment;
  EtherNetIf a_if;
  EtherNetIf b_if;
  TcpStack a_tcp;
  TcpStack b_tcp;
};

SimTask ColdEcho(ColdEthernet* net, std::vector<uint8_t>* got, bool* done) {
  Socket* s = net->a_tcp.Connect(SockAddr{MakeAddr(10, 0, 0, 2), 5001});
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  if (s->has_error()) {
    *done = true;
    co_return;
  }
  std::vector<uint8_t> msg(300, 0x6B);
  size_t sent = 0;
  while (sent < msg.size()) {
    sent += s->Write({msg.data() + sent, msg.size() - sent});
  }
  std::vector<uint8_t> buf(1024);
  while (got->size() < msg.size()) {
    const size_t n = s->Read(buf);
    if (n > 0) {
      got->insert(got->end(), buf.begin(), buf.begin() + n);
    } else {
      if (s->eof() || s->has_error()) {
        break;
      }
      co_await s->WaitReadable();
    }
  }
  *done = true;
}

SimTask ColdEchoServer(ColdEthernet* net) {
  Socket* listener = net->b_tcp.Listen(5001);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  std::vector<uint8_t> buf(1024);
  size_t echoed = 0;
  while (echoed < 300) {
    const size_t n = s->Read(buf);
    if (n > 0) {
      size_t sent = 0;
      while (sent < n) {
        sent += s->Write({buf.data() + sent, n - sent});
      }
      echoed += n;
    } else {
      co_await s->WaitReadable();
    }
  }
}

TEST(Arp, ColdStartResolutionThenTcpWorks) {
  ColdEthernet net;
  std::vector<uint8_t> got;
  bool done = false;
  net.b_host.Spawn("server", ColdEchoServer(&net));
  net.a_host.Spawn("client", ColdEcho(&net, &got, &done));
  net.sim.RunToCompletion();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.size(), 300u);

  // The SYN triggered exactly one who-has broadcast from A; B answered and
  // also learned A's address from the request (so B never had to ask).
  EXPECT_EQ(net.a_if.arp_stats().requests_sent, 1u);
  EXPECT_EQ(net.a_if.arp_stats().replies_received, 1u);
  EXPECT_EQ(net.a_if.arp_stats().resolutions, 1u);
  EXPECT_EQ(net.b_if.arp_stats().requests_received, 1u);
  EXPECT_EQ(net.b_if.arp_stats().replies_sent, 1u);
  EXPECT_EQ(net.b_if.arp_stats().requests_sent, 0u) << "B learned A from the request";
  EXPECT_EQ(net.a_if.arp_stats().timeouts, 0u);
}

TEST(Arp, SilentAddressTimesOutAndDropsQueue) {
  ColdEthernet net;
  bool done = false;
  net.a_host.Spawn("talker", [](ColdEthernet* n, bool* flag) -> SimTask {
    // Three packets to an address nobody owns.
    for (int i = 0; i < 3; ++i) {
      MbufPtr m = n->a_host.pool().GetHeader(40);
      std::memset(m->Append(20).data(), 0xCC, 20);
      n->a_ip.Output(std::move(m), MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 0, 99), 250);
    }
    *flag = true;
    co_return;
  }(&net, &done));
  net.sim.RunToCompletion();
  ASSERT_TRUE(done);
  EXPECT_EQ(net.a_if.arp_stats().requests_sent, 1u) << "one who-has per unresolved burst";
  EXPECT_EQ(net.a_if.arp_stats().timeouts, 3u);
  EXPECT_EQ(net.a_host.pool().stats().in_use, 0) << "queued packets must not leak mbufs";
}

TEST(Arp, PreseededCacheNeverAsks) {
  // The standard Testbed seeds both ends (the paper's fixed pair).
  TestbedConfig cfg;
  cfg.network = NetworkKind::kEthernet;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = 200;
  opt.iterations = 20;
  const RpcResult r = RunRpcBenchmark(tb, opt);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_EQ(tb.client_ether()->arp_stats().requests_sent, 0u);
  EXPECT_EQ(tb.server_ether()->arp_stats().requests_sent, 0u);
}

}  // namespace
}  // namespace tcplat
