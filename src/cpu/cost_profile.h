// Machine cost profiles.
//
// A CostProfile holds the calibrated CostParams for every primitive the
// simulated stack charges. The default profile models the paper's testbed —
// a DECstation 5000/200 (25 MHz MIPS R3000) running ULTRIX 4.2A with the BSD
// 4.4 alpha TCP — with constants fitted to the paper's own component
// measurements (Tables 2, 3, 5; §2.2.1; §3). A Sun-3 profile reproduces the
// Clark et al. comparison in §4.1 of the paper.
//
// Fit provenance is documented constant-by-constant in cost_profile.cc.

#ifndef SRC_CPU_COST_PROFILE_H_
#define SRC_CPU_COST_PROFILE_H_

#include <string>

#include "src/cpu/cost_params.h"

namespace tcplat {

struct CostProfile {
  std::string name;

  // --- User-level copy / checksum primitives (paper Table 5) ---
  CostParams ultrix_cksum;          // halfword-access ULTRIX 4.2A checksum
  CostParams opt_cksum;             // word-access, unrolled checksum
  CostParams user_bcopy;            // user-level bcopy
  CostParams integrated_copy_cksum; // single-pass copy + checksum

  // --- Kernel data movement ---
  CostParams in_cksum;          // in_cksum() over an mbuf chain (bytes, mbufs)
  CostParams kernel_bcopy;      // kernel memory-to-memory copy
  CostParams copyin_small;      // user -> small-mbuf chain copy (bytes)
  CostParams copyin_cluster;    // user -> cluster mbuf copy (bytes)
  CostParams copyout_small;     // small-mbuf chain -> user copy (bytes)
  CostParams copyout_cluster;   // cluster mbuf -> user copy (bytes)

  // --- Mbuf subsystem (paper §2.2.1) ---
  CostParams mbuf_alloc;        // MGET or MCLGET
  CostParams mbuf_free;         // m_free
  CostParams cluster_ref;       // reference-count "copy" of a cluster
  CostParams m_copym_fixed;     // chain-copy loop setup
  CostParams m_copym_per_mbuf;  // per-mbuf overhead inside m_copym

  // --- Syscall / socket layer ---
  CostParams syscall_entry;
  CostParams syscall_exit;
  CostParams sosend_fixed;        // per sosend() invocation
  CostParams sosend_per_chunk;    // per mbuf chunk handed to the protocol
  CostParams soreceive_fixed;     // per soreceive() invocation
  CostParams sbappend;            // socket-buffer append (per mbuf)

  // --- TCP ---
  CostParams tcp_output_fixed;    // per-segment output processing (non-data)
  CostParams tcp_copydata_small;  // data copied directly into header mbuf
  CostParams tcp_input_slow;      // general-path input processing
  CostParams tcp_input_fast;      // header-prediction fast path
  CostParams tcp_ack_proc;        // processing a new cumulative ACK
  CostParams pcb_lookup;          // in_pcblookup (chunks = entries searched)
  CostParams pcb_cache_check;     // single-entry PCB cache probe
  CostParams sorwakeup;           // marking reader runnable
  CostParams pseudo_hdr_cksum;    // checksumming the 40-byte pseudo header
                                  // when payload checksum is precomputed

  // --- UDP (substrate for the paper's Kay & Pasquale baselines) ---
  CostParams udp_output;          // per datagram protocol processing
  CostParams udp_input;           // per datagram input + demux

  // --- IP ---
  CostParams ip_output;           // per packet
  CostParams ip_input;            // per packet
  CostParams ipq_enqueue;         // put packet on ipintrq + schednetisr

  // --- OS / scheduling (paper §2.2.4) ---
  CostParams softint_dispatch;    // raise -> netisr running (IPQ row floor)
  CostParams wakeup_ctx_switch;   // wakeup() -> process running (Wakeup row)
  CostParams intr_entry;          // hardware interrupt entry/exit

  // --- ATM driver + FORE TCA-100 (paper §1.1, Tables 2/3 ATM rows) ---
  CostParams atm_tx_fixed;        // per-PDU driver send setup
  CostParams atm_tx_per_cell;     // build + copy one cell into the TX FIFO
  CostParams atm_rx_fixed;        // per-PDU receive dispatch
  CostParams atm_rx_per_cell;     // drain + SAR one cell from the RX FIFO
  // Hypothetical DMA adapter (§2.2.3/§4.2: "a network adapter that supports
  // DMA" + "a snoopy cache ... allows data to be moved at near bus
  // bandwidth"): per-PDU descriptor setup replaces the per-cell/per-byte
  // programmed-I/O copies.
  CostParams dma_setup;

  // --- Combined copy + checksum kernel (§4.1.1, Table 6) ---
  CostParams copyin_small_cksum;    // integrated user->mbuf copy + partial sum
  CostParams copyin_cluster_cksum;  // integrated user->cluster copy + sum
  CostParams atm_rx_per_cell_cksum; // RX FIFO drain with integrated checksum
  CostParams cksum_combine;         // folding one mbuf's partial into the total
  CostParams combined_cksum_tx_overhead;  // per-segment bookkeeping, tx side
  CostParams combined_cksum_rx_overhead;  // per-packet bookkeeping, rx side

  // --- Ethernet (LANCE) driver ---
  CostParams ether_tx;            // per frame (bytes = frame length)
  CostParams ether_rx;            // per frame (bytes = frame length)
  CostParams arp_proc;            // ARP packet handling (cache ops, reply)

  // Returns a copy with every *data-touching* primitive (checksums and
  // copies) scaled by `factor` — the §1.2 cache-effect knob ("our
  // measurements include cache effects"): >1 models colder caches than the
  // paper's warm 40000-iteration loops, <1 warmer ones. Bookkeeping and
  // scheduling costs are untouched (contrast with whole-CPU scaling in
  // bench/ablation_cpu_speed).
  CostProfile WithCacheFactor(double factor) const;

  // Returns the paper's testbed machine.
  static CostProfile Decstation5000_200();
  // Returns the Sun-3 model used for the Clark et al. §4.1 comparison.
  // Only the user-level copy/checksum primitives are calibrated.
  static CostProfile Sun3();
};

}  // namespace tcplat

#endif  // SRC_CPU_COST_PROFILE_H_
