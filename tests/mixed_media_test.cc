// The 1994 deployment topology: an ATM-attached host reaching an Ethernet
// host through a dual-homed gateway. Exercises MSS negotiation across
// unequal MTUs, gateway fragmentation of large datagrams (9188-byte ATM
// MTU down to 1500 on Ethernet), the DF bit, and end-to-end TCP across
// mixed media.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/atm/atm_netif.h"
#include "src/atm/tca100.h"
#include "src/base/random.h"
#include "src/core/testbed.h"
#include "src/ether/ether_netif.h"
#include "src/icmp/icmp.h"
#include "src/os/task.h"
#include "src/tcp/tcp_stack.h"
#include "src/udp/udp.h"

namespace tcplat {
namespace {

constexpr Ipv4Addr kAtmHostIp = MakeAddr(10, 0, 1, 1);
constexpr Ipv4Addr kGwAtmIp = MakeAddr(10, 0, 1, 254);
constexpr Ipv4Addr kGwEthIp = MakeAddr(10, 0, 2, 254);
constexpr Ipv4Addr kEthHostIp = MakeAddr(10, 0, 2, 1);
constexpr Ipv4Addr kMask24 = MakeAddr(255, 255, 255, 0);

// atm_host ==ATM fiber== gateway ==Ethernet== eth_host
struct MixedNet {
  MixedNet()
      : sim(1),
        atm_host(&sim, "atm-host", CostProfile::Decstation5000_200()),
        gw_host(&sim, "gateway", CostProfile::Decstation5000_200()),
        eth_host(&sim, "eth-host", CostProfile::Decstation5000_200()),
        atm_ip(&atm_host, kAtmHostIp),
        gw_ip(&gw_host, kGwAtmIp),
        eth_ip(&eth_host, kEthHostIp),
        fiber(&sim, kTaxiBitsPerSecond, SimDuration::FromNanos(300)),
        atm_adapter(&atm_host, &fiber.dir(0)),
        gw_adapter(&gw_host, &fiber.dir(1)),
        atm_if(&atm_ip, &atm_adapter, 42),
        gw_atm_if(&gw_ip, &gw_adapter, 42),
        segment(&sim, SimDuration::FromNanos(300)),
        gw_eth_if(&gw_ip, &gw_host, &segment, MacAddr{2, 0, 0, 0, 2, 0xFE}),
        eth_if(&eth_ip, &eth_host, &segment, MacAddr{2, 0, 0, 0, 2, 1}),
        atm_tcp(&atm_ip, TcpConfig{}),
        eth_tcp(&eth_ip, TcpConfig{}),
        atm_udp(&atm_ip),
        eth_udp(&eth_ip) {
    atm_adapter.ConnectPeer(&gw_adapter);
    gw_adapter.ConnectPeer(&atm_adapter);
    gw_eth_if.AddRoute(kEthHostIp, MacAddr{2, 0, 0, 0, 2, 1});
    eth_if.AddRoute(kGwEthIp, MacAddr{2, 0, 0, 0, 2, 0xFE});

    atm_ip.AddRoute(MakeAddr(10, 0, 1, 0), kMask24, &atm_if);
    atm_ip.AddRoute(0, 0, &atm_if, kGwAtmIp);
    eth_ip.AddRoute(MakeAddr(10, 0, 2, 0), kMask24, &eth_if);
    eth_ip.AddRoute(0, 0, &eth_if, kGwEthIp);
    gw_ip.AddRoute(MakeAddr(10, 0, 1, 0), kMask24, &gw_atm_if);
    gw_ip.AddRoute(MakeAddr(10, 0, 2, 0), kMask24, &gw_eth_if);
    gw_ip.set_forwarding(true);
  }

  Simulator sim;
  Host atm_host;
  Host gw_host;
  Host eth_host;
  IpStack atm_ip;
  IpStack gw_ip;
  IpStack eth_ip;
  DuplexLink fiber;
  Tca100 atm_adapter;
  Tca100 gw_adapter;
  AtmNetIf atm_if;
  AtmNetIf gw_atm_if;
  EtherSegment segment;
  EtherNetIf gw_eth_if;
  EtherNetIf eth_if;
  TcpStack atm_tcp;
  TcpStack eth_tcp;
  UdpStack atm_udp;
  UdpStack eth_udp;
};

SimTask UdpSink(MixedNet* net, std::vector<uint8_t>* got, bool* done) {
  UdpSocket* s = net->eth_udp.CreateSocket(7777);
  std::vector<uint8_t> buf(65536);
  size_t n = 0;
  while ((n = s->RecvFrom(buf)) == 0) {
    co_await s->WaitReadable();
  }
  got->assign(buf.begin(), buf.begin() + n);
  *done = true;
}

TEST(MixedMedia, GatewayFragmentsLargeDatagramForEthernet) {
  MixedNet net;
  std::vector<uint8_t> got;
  bool done = false;
  bool sent = false;
  net.eth_host.Spawn("sink", UdpSink(&net, &got, &done));
  net.atm_host.Spawn("sender", [](MixedNet* n, bool* flag) -> SimTask {
    // 4000 bytes fits the 9188-byte ATM MTU in one packet but not the
    // 1500-byte Ethernet MTU: the gateway must fragment.
    UdpSocket* s = n->atm_udp.CreateSocket();
    Rng rng(3);
    std::vector<uint8_t> msg(4000);
    for (auto& b : msg) {
      b = static_cast<uint8_t>(rng.Next());
    }
    s->SendTo(msg, SockAddr{kEthHostIp, 7777});
    *flag = true;
    co_return;
  }(&net, &sent));
  net.sim.RunToCompletion();
  ASSERT_TRUE(sent);
  ASSERT_TRUE(done);
  EXPECT_EQ(got.size(), 4000u);
  Rng rng(3);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], static_cast<uint8_t>(rng.Next())) << "byte " << i;
  }
  EXPECT_EQ(net.atm_ip.stats().fragments_sent, 0u) << "the source sent one packet";
  EXPECT_GE(net.gw_ip.stats().fragments_sent, 3u) << "the gateway fragmented";
  EXPECT_EQ(net.eth_ip.stats().reassembled, 1u);
}

TEST(MixedMedia, TcpNegotiatesTheSmallerMss) {
  MixedNet net;
  struct State {
    std::vector<uint8_t> echoed;
    bool done = false;
  } state;
  net.eth_host.Spawn("server", [](MixedNet* n) -> SimTask {
    Socket* listener = n->eth_tcp.Listen(5001);
    Socket* s = nullptr;
    while (s == nullptr) {
      s = listener->Accept();
      if (s == nullptr) {
        co_await listener->WaitAcceptable();
      }
    }
    std::vector<uint8_t> buf(8192);
    size_t echoed = 0;
    while (echoed < 6000) {
      const size_t n_read = s->Read(buf);
      if (n_read > 0) {
        size_t sent = 0;
        while (sent < n_read) {
          sent += s->Write({buf.data() + sent, n_read - sent});
        }
        echoed += n_read;
      } else {
        co_await s->WaitReadable();
      }
    }
  }(&net));
  net.atm_host.Spawn("client", [](MixedNet* n, State* st) -> SimTask {
    Socket* s = n->atm_tcp.Connect(SockAddr{kEthHostIp, 5001});
    while (!s->connected() && !s->has_error()) {
      co_await s->WaitConnected();
    }
    std::vector<uint8_t> msg(6000, 0x3C);
    size_t sent = 0;
    while (sent < msg.size()) {
      const size_t w = s->Write({msg.data() + sent, msg.size() - sent});
      sent += w;
      if (w == 0) {
        co_await s->WaitWritable();
      }
    }
    std::vector<uint8_t> buf(8192);
    while (st->echoed.size() < msg.size()) {
      const size_t n_read = s->Read(buf);
      if (n_read > 0) {
        st->echoed.insert(st->echoed.end(), buf.begin(), buf.begin() + n_read);
      } else {
        if (s->eof() || s->has_error()) {
          break;
        }
        co_await s->WaitReadable();
      }
    }
    st->done = true;
  }(&net, &state));
  net.sim.RunToCompletion();
  ASSERT_TRUE(state.done);
  EXPECT_EQ(state.echoed.size(), 6000u);
  // MSS 1460 won the negotiation: no IP fragmentation anywhere, and the
  // ATM host sent multiple sub-MTU segments despite its 9 KB MTU.
  EXPECT_EQ(net.gw_ip.stats().fragments_sent, 0u);
  EXPECT_GE(net.atm_tcp.stats().data_segs_sent, 5u);
}

TEST(MixedMedia, DontFragmentDrawsIcmpFragNeeded) {
  MixedNet net;
  IcmpStack atm_icmp(&net.atm_ip);
  IcmpStack gw_icmp(&net.gw_ip);
  bool sent = false;
  net.atm_host.Spawn("df-sender", [](MixedNet* n, bool* flag) -> SimTask {
    // A hand-built 3000-byte DF packet: too big for the Ethernet leg.
    MbufPtr head = n->atm_host.pool().GetHeader(40);
    MbufPtr body = n->atm_host.pool().GetCluster();
    std::memset(body->Append(3000).data(), 0xDD, 3000);
    head->SetNext(std::move(body));
    Ipv4Header hdr;
    hdr.total_length = static_cast<uint16_t>(3000 + kIpv4HeaderBytes);
    hdr.protocol = 250;
    hdr.dont_fragment = true;
    hdr.src = kAtmHostIp;
    hdr.dst = kEthHostIp;
    // Use the raw interface: Output would fragment at the source only if
    // the first hop needed it (ATM does not).
    hdr.FillChecksum();
    MbufPtr pkt = std::move(head);
    hdr.Serialize(pkt->Prepend(kIpv4HeaderBytes));
    n->atm_if.Output(std::move(pkt), kGwAtmIp);
    *flag = true;
    co_return;
  }(&net, &sent));
  net.sim.RunToCompletion();
  ASSERT_TRUE(sent);
  EXPECT_EQ(net.eth_ip.stats().packets_received, 0u);
  EXPECT_EQ(gw_icmp.stats().errors_sent, 1u);
  // The sender heard about it (path-MTU discovery's raw material).
  IcmpStack::Event ev;
  ASSERT_TRUE(atm_icmp.PollEvent(&ev));
  EXPECT_EQ(ev.message.type, IcmpType::kDestUnreachable);
  EXPECT_EQ(ev.message.code, 4);  // fragmentation needed and DF set
  EXPECT_EQ(ev.from, kGwAtmIp);
}

}  // namespace
}  // namespace tcplat
