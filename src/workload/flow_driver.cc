#include "src/workload/flow_driver.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

// Deterministic per-iteration payload, identical to the single-flow
// benchmark's pattern so the 1-flow star run is byte-for-byte the same.
void FillPattern(std::vector<uint8_t>& buf, int iteration) {
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>((i * 131 + iteration * 17 + 7) & 0xFF);
  }
}

struct RunState {
  StarTestbed* tb = nullptr;
  const WorkloadOptions* options = nullptr;
  std::vector<FlowResult> results;
  // uint8_t, not bool: in a sharded run flows on different hosts finish on
  // different worker threads, and vector<bool>'s bit packing would turn
  // per-flow writes into read-modify-write races on shared words.
  std::vector<uint8_t> server_done;
  std::vector<uint8_t> client_done;
  // Per-flow [enter, leave] round-trip intervals (nanos; leave = -1 while
  // open). Each flow's vector is written only by its own client coroutine,
  // so recording is shard-safe; max_concurrent is swept from these after
  // the run instead of bumping a shared counter mid-simulation.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> intervals;
};

void BeginInterval(RunState* state, size_t flow, SimTime t0) {
  state->intervals[flow].push_back({t0.nanos(), -1});
}

void EndInterval(RunState* state, size_t flow, SimTime t1) {
  state->intervals[flow].back().second = t1.nanos();
}

// Peak number of simultaneously open intervals. Endpoints are ordered by
// (time, leaves-before-enters, flow) so a flow whose next round trip starts
// at the exact instant the previous one ended never double-counts, keeping
// the closed-loop invariant max <= population.
size_t SweepMaxConcurrent(const RunState& state) {
  struct Endpoint {
    int64_t t;
    int kind;  // 0 = leave, 1 = enter
    size_t flow;
  };
  std::vector<Endpoint> points;
  for (size_t f = 0; f < state.intervals.size(); ++f) {
    for (const auto& [enter, leave] : state.intervals[f]) {
      points.push_back({enter, 1, f});
      if (leave >= 0) {
        points.push_back({leave, 0, f});
      }
    }
  }
  std::sort(points.begin(), points.end(), [](const Endpoint& a, const Endpoint& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.flow < b.flow;
  });
  size_t current = 0;
  size_t peak = 0;
  for (const Endpoint& p : points) {
    if (p.kind == 1) {
      peak = std::max(peak, ++current);
    } else {
      --current;
    }
  }
  return peak;
}

SimTask ServerProc(RunState* state, const FlowSpec* spec, size_t flow, uint16_t port) {
  Socket* listener = state->tb->server_tcp(spec->server).Listen(port);
  while (true) {
    Socket* conn = listener->Accept();
    if (conn != nullptr) {
      std::vector<uint8_t> buf(spec->size);
      const int total = spec->warmup + spec->iterations;
      for (int iter = 0; iter < total; ++iter) {
        size_t got = 0;
        while (got < buf.size()) {
          const size_t n = conn->Read({buf.data() + got, buf.size() - got});
          got += n;
          if (n == 0) {
            if (conn->eof() || conn->has_error()) {
              state->server_done[flow] = true;
              co_return;
            }
            co_await conn->WaitReadable();
          }
        }
        size_t sent = 0;
        while (sent < buf.size()) {
          const size_t n = conn->Write({buf.data() + sent, buf.size() - sent});
          sent += n;
          if (n == 0) {
            if (conn->has_error()) {
              state->server_done[flow] = true;
              co_return;
            }
            co_await conn->WaitWritable();
          }
        }
      }
      conn->Close();
      state->server_done[flow] = true;
      co_return;
    }
    co_await listener->WaitAcceptable();
  }
}

SimTask ClientProc(RunState* state, const FlowSpec* spec, size_t flow, uint16_t port) {
  Host& host = state->tb->client_host(spec->client);
  FlowResult& result = state->results[flow];
  if (spec->start_delay.nanos() > 0) {
    co_await host.SleepFor(spec->start_delay);
  }
  const Ipv4Addr server_addr = StarServerAddr(spec->server);
  Socket* sock = state->tb->client_tcp(spec->client).Connect(SockAddr{server_addr, port});
  while (!sock->connected() && !sock->has_error()) {
    co_await sock->WaitConnected();
  }
  if (sock->has_error() && spec->tolerate_errors) {
    result.aborted = true;
    state->client_done[flow] = true;
    co_return;
  }
  TCPLAT_CHECK(!sock->has_error()) << "flow " << flow << " failed to connect";

  std::vector<uint8_t> out(spec->size);
  std::vector<uint8_t> in(spec->size);
  const int total = spec->warmup + spec->iterations;
  for (int iter = 0; iter < total; ++iter) {
    if (iter == spec->warmup && flow == 0 && state->options->reset_trackers_at_warmup &&
        !state->tb->sharded()) {
      // Start of the measured region: clear the layer accumulators, the
      // way the single-flow benchmark re-initializes its kernel counters.
      // Skipped when sharded: the trackers belong to hosts on other shards
      // that may be mid-window on other threads (sharded runs measure whole
      // runs, not a warmup-trimmed region).
      state->tb->ResetTrackers();
    }
    FillPattern(out, iter);
    const SimTime t0 = host.CurrentTime();
    BeginInterval(state, flow, t0);

    size_t sent = 0;
    while (sent < out.size()) {
      const size_t n = sock->Write({out.data() + sent, out.size() - sent});
      sent += n;
      if (n == 0) {
        if (sock->has_error() && spec->tolerate_errors) {
          result.aborted = true;
          state->client_done[flow] = true;
          EndInterval(state, flow, host.CurrentTime());
          co_return;
        }
        TCPLAT_CHECK(!sock->has_error()) << "flow " << flow << " error during send";
        co_await sock->WaitWritable();
      }
    }
    size_t got = 0;
    while (got < in.size()) {
      const size_t n = sock->Read({in.data() + got, in.size() - got});
      got += n;
      if (n == 0) {
        if ((sock->eof() || sock->has_error()) && spec->tolerate_errors) {
          result.aborted = true;
          state->client_done[flow] = true;
          EndInterval(state, flow, host.CurrentTime());
          co_return;
        }
        TCPLAT_CHECK(!sock->eof() && !sock->has_error())
            << "flow " << flow << " died mid-echo";
        co_await sock->WaitReadable();
      }
    }

    const SimTime t1 = host.CurrentTime();
    EndInterval(state, flow, t1);
    if (iter >= spec->warmup) {
      result.rtt.Add(t1.QuantizeToClockTick() - t0.QuantizeToClockTick());
      if (spec->verify_data && std::memcmp(in.data(), out.data(), out.size()) != 0) {
        ++result.data_mismatches;
      }
    }
    if (spec->think_time.nanos() > 0 && iter + 1 < total) {
      co_await host.SleepFor(spec->think_time);
    }
  }
  sock->Close();
  result.completed = true;
  state->client_done[flow] = true;
  co_return;
}

}  // namespace

WorkloadResult RunWorkload(StarTestbed& testbed, const std::vector<FlowSpec>& specs,
                           const WorkloadOptions& options) {
  TCPLAT_CHECK(!specs.empty());
  for (const FlowSpec& spec : specs) {
    TCPLAT_CHECK_GT(spec.size, 0u);
    TCPLAT_CHECK_GT(spec.iterations, 0);
    TCPLAT_CHECK_GE(spec.client, 0);
    TCPLAT_CHECK_LT(spec.client, testbed.clients());
    TCPLAT_CHECK_GE(spec.server, 0);
    TCPLAT_CHECK_LT(spec.server, testbed.servers());
  }

  RunState state;
  state.tb = &testbed;
  state.options = &options;
  state.results.resize(specs.size());
  state.server_done.assign(specs.size(), 0);
  state.client_done.assign(specs.size(), 0);
  state.intervals.resize(specs.size());
  for (size_t f = 0; f < specs.size(); ++f) {
    state.results[f].iterations = static_cast<uint64_t>(specs[f].iterations);
  }

  // Reset protocol statistics so each run reports its own numbers.
  for (int idx = 0; idx < testbed.host_count(); ++idx) {
    testbed.tcp(idx).stats() = TcpStats{};
  }
  testbed.ResetTrackers();

  // All servers first, then all clients, extending the single-flow spawn
  // order (the listener must exist before its SYN can arrive).
  for (size_t f = 0; f < specs.size(); ++f) {
    const uint16_t port =
        specs[f].port != 0 ? specs[f].port : static_cast<uint16_t>(kEchoPort + f);
    testbed.server_host(specs[f].server)
        .Spawn("echo-server", ServerProc(&state, &specs[f], f, port));
  }
  for (size_t f = 0; f < specs.size(); ++f) {
    const uint16_t port =
        specs[f].port != 0 ? specs[f].port : static_cast<uint16_t>(kEchoPort + f);
    testbed.client_host(specs[f].client)
        .Spawn("echo-client", ClientProc(&state, &specs[f], f, port));
  }

  testbed.RunToCompletion();

  WorkloadResult result;
  result.flows = std::move(state.results);
  result.per_client.resize(static_cast<size_t>(testbed.clients()));
  for (size_t f = 0; f < specs.size(); ++f) {
    FlowResult& flow = result.flows[f];
    if (specs[f].tolerate_errors) {
      // A one-sided death can leave the peer parked on a wait channel with
      // no events pending; that is an aborted flow, not a harness bug.
      flow.aborted = flow.aborted || !state.client_done[f] || !state.server_done[f];
      if (flow.aborted) {
        flow.completed = false;
      }
    } else {
      TCPLAT_CHECK(state.client_done[f]) << "flow " << f << " client did not finish";
      TCPLAT_CHECK(state.server_done[f]) << "flow " << f << " server did not finish";
    }
    result.rtt.Merge(flow.rtt);
    result.per_client[static_cast<size_t>(specs[f].client)].Merge(flow.rtt);
    result.completed += flow.completed ? 1 : 0;
    result.aborted += flow.aborted ? 1 : 0;
    result.data_mismatches += flow.data_mismatches;
  }
  result.max_concurrent = SweepMaxConcurrent(state);
  return result;
}

}  // namespace tcplat
