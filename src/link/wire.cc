#include "src/link/wire.h"

#include <utility>

#include "src/base/check.h"

namespace tcplat {

Wire::Wire(Simulator* sim, double bits_per_second, SimDuration propagation, size_t gap_bytes)
    : sim_(sim), bits_per_second_(bits_per_second), propagation_(propagation),
      gap_bytes_(gap_bytes) {
  TCPLAT_CHECK(sim != nullptr);
  TCPLAT_CHECK_GT(bits_per_second, 0.0);
}

SimDuration Wire::SerializationDelay(size_t bytes) const {
  return SimDuration::FromSeconds(static_cast<double>(bytes) * 8.0 / bits_per_second_);
}

SimTime Wire::Transmit(SimTime earliest, std::vector<uint8_t> data, DeliverFn deliver) {
  TCPLAT_CHECK(!data.empty());
  const SimTime start = earliest > busy_until_ ? earliest : busy_until_;
  const SimTime last_bit_out = start + SerializationDelay(data.size() + gap_bytes_);
  busy_until_ = last_bit_out;
  ++units_sent_;
  bytes_sent_ += data.size();

  // Fate hooks compose corrupt-then-drop: a corrupted unit can still be
  // discarded, and either way the sender already paid serialization — loss
  // happens in flight, never refunding wire time.
  if (corrupt_) {
    corrupt_(data);
  }
  if (drop_ && drop_(data)) {
    ++units_dropped_;
    return last_bit_out;
  }
  LinkImpairment::Verdict verdict;
  if (impairment_ != nullptr) {
    verdict = impairment_->OnTransmit(last_bit_out, data);
    if (verdict.drop) {
      ++units_dropped_;
      return last_bit_out;
    }
  }
  const SimTime arrival = last_bit_out + propagation_ + verdict.extra_delay;
  if (verdict.duplicate) {
    // The original is scheduled first so it is also delivered first when the
    // duplicate lag is zero (event order at equal times is insertion order;
    // on a sharded wire the channel's per-post sequence preserves the same
    // rule across the barrier).
    const SimTime dup_arrival = arrival + verdict.duplicate_lag;
    ScheduleDelivery(arrival, data, deliver);
    ScheduleDelivery(dup_arrival, std::move(data), std::move(deliver));
    return last_bit_out;
  }
  ScheduleDelivery(arrival, std::move(data), std::move(deliver));
  return last_bit_out;
}

void Wire::ScheduleDelivery(SimTime arrival, std::vector<uint8_t> data, DeliverFn deliver) {
  auto fn = [arrival, data = std::move(data), deliver = std::move(deliver)]() mutable {
    deliver(arrival, std::move(data));
  };
  if (shard_channel_ != nullptr) {
    shard_channel_->Post(arrival, std::move(fn));
    return;
  }
  sim_->ScheduleAt(arrival, std::move(fn));
}

SharedBus::SharedBus(Simulator* sim, double bits_per_second, SimDuration propagation,
                     size_t gap_bytes)
    : wire_(sim, bits_per_second, propagation, gap_bytes) {}

SimTime SharedBus::Transmit(SimTime earliest, std::vector<uint8_t> data, DeliverFn deliver) {
  return wire_.Transmit(earliest, std::move(data), std::move(deliver));
}

}  // namespace tcplat
