// Device model of the FORE TCA-100 TURBOchannel ATM interface.
//
// The characteristics the paper calls out (§1.1, §4.1.1) are modeled
// explicitly:
//
//  * A memory-mapped transmit FIFO holding 36 cells. "The transmit engine
//    starts reading from the transmit FIFO as soon as there is one complete
//    cell in the FIFO" — cut-through: each cell begins serializing onto the
//    fiber the moment the driver finishes writing it (if the line is free).
//    When the FIFO is full the driver's copy loop stalls until the oldest
//    cell drains. This is exactly why the checksum cannot be deferred to
//    the driver-level copy on transmit (§4.1.1).
//  * A receive FIFO holding 292 cells; cells overflowing it are dropped.
//    The adapter checks the per-cell AAL3/4 CRC-10 in hardware (no host CPU
//    cost) and interrupts the host when the last cell of a PDU (EOM/SSM)
//    arrives — the paper's "arrival of the last group of ATM cells".
//  * The 140 Mbit/s TAXI fiber is the attached Wire.

#ifndef SRC_ATM_TCA100_H_
#define SRC_ATM_TCA100_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/atm/aal34.h"
#include "src/link/wire.h"
#include "src/os/host.h"

namespace tcplat {

inline constexpr size_t kTca100TxFifoCells = 36;
inline constexpr size_t kTca100RxFifoCells = 292;
inline constexpr double kTaxiBitsPerSecond = 140e6;

// Anything that can accept ATM cells off a fiber: an adapter's receive
// FIFO, or a switch input port.
class CellSink {
 public:
  virtual ~CellSink() = default;
  virtual void DeliverCell(SimTime arrival, std::vector<uint8_t> wire_bytes) = 0;
};

struct Tca100Stats {
  uint64_t cells_sent = 0;
  uint64_t cells_received = 0;
  uint64_t rx_fifo_drops = 0;
  uint64_t tx_fifo_stalls = 0;
  SimDuration tx_stall_time;
};

class Tca100 : public CellSink {
 public:
  struct RxEntry {
    AtmCell cell;
    bool crc_ok = false;
    SimTime arrival;
  };

  Tca100(Host* host, Wire* tx_wire);

  // Wires the receive side: cells this adapter transmits arrive at `sink`
  // (the peer adapter when the fiber is point-to-point, or a switch port).
  void ConnectSink(CellSink* sink);
  void ConnectPeer(Tca100* peer) { ConnectSink(peer); }

  // CellSink: a cell arrives at this adapter's receive FIFO.
  void DeliverCell(SimTime arrival, std::vector<uint8_t> wire_bytes) override;

  // Cut-through (the real TCA-100 behavior, default) starts serializing a
  // cell onto the fiber the moment the driver writes it. Store-and-forward
  // — a hypothetical ablation (A2) — holds cells until FlushTx(), as an
  // adapter that DMA-completes whole PDUs would. In that mode the FIFO
  // depth limit is not enforced (the hypothetical adapter buffers a PDU).
  void set_cut_through(bool enabled) { cut_through_ = enabled; }
  bool cut_through() const { return cut_through_; }

  // Releases store-and-forward staged cells to the fiber. No-op when
  // cut-through is enabled.
  void FlushTx();

  // Installed by the driver; invoked (as a hardware interrupt) when an
  // EOM/SSM cell lands in the receive FIFO.
  void set_rx_interrupt(std::function<void()> handler) { rx_interrupt_ = std::move(handler); }

  // Driver transmit path: waits for FIFO space (stalling the CPU), charges
  // the per-cell copy cost, and hands the 53-byte image to the fiber.
  // Must be called during a CPU run on the owning host.
  void TxCell(const AtmCell& cell);

  // Hypothetical DMA transmit (§2.2.3): the adapter fetches the cell from
  // host memory itself — no CPU copy charge, no FIFO stall (the DMA engine
  // is paced by the wire). The caller charges one descriptor setup per PDU.
  void TxCellDma(const AtmCell& cell);

  // Driver receive path: pops the oldest cell out of the receive FIFO.
  // Returns false when the FIFO is empty. No cost charged (the driver
  // charges its own per-cell drain cost).
  bool PopRxCell(RxEntry* out);

  size_t rx_fifo_depth() const { return rx_fifo_.size(); }
  const Tca100Stats& stats() const { return stats_; }
  Host& host() { return *host_; }

 private:
  Host* host_;
  Wire* tx_wire_;
  CellSink* sink_ = nullptr;
  std::function<void()> rx_interrupt_;

  // Completion (serialization-finished) times of cells occupying the TX
  // FIFO; entries older than the CPU cursor have drained.
  std::deque<SimTime> tx_fifo_drain_;
  std::deque<RxEntry> rx_fifo_;
  bool cut_through_ = true;
  std::vector<std::vector<uint8_t>> staged_tx_;  // store-and-forward mode
  Tca100Stats stats_;
};

}  // namespace tcplat

#endif  // SRC_ATM_TCA100_H_
