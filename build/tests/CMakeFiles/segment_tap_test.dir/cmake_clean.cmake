file(REMOVE_RECURSE
  "CMakeFiles/segment_tap_test.dir/segment_tap_test.cc.o"
  "CMakeFiles/segment_tap_test.dir/segment_tap_test.cc.o.d"
  "segment_tap_test"
  "segment_tap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_tap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
