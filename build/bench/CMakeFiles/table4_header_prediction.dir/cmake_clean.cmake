file(REMOVE_RECURSE
  "CMakeFiles/table4_header_prediction.dir/table4_header_prediction.cc.o"
  "CMakeFiles/table4_header_prediction.dir/table4_header_prediction.cc.o.d"
  "table4_header_prediction"
  "table4_header_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_header_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
