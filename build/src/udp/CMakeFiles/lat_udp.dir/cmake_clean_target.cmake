file(REMOVE_RECURSE
  "liblat_udp.a"
)
