# Empty compiler generated dependencies file for future_dma.
# This may be replaced when dependencies are built.
