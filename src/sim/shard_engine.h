// Conservative-lookahead parallel discrete-event engine.
//
// A ShardEngine partitions one simulation into N shards, each owning a full
// Simulator (its own EventQueue, clock, and rng). Shards interact only
// through DeliveryChannels, each declaring a positive *lookahead*: a lower
// bound on how far in the future any message posted on that channel arrives,
// relative to the source shard's current time. For this codebase the natural
// channels are Wires, whose lookahead is propagation delay plus the
// serialization time of the smallest unit on the link (an ATM cell) — a
// cell transmitted "now" cannot reach the far end sooner than that.
//
// Synchronization is a synchronous window barrier (null-message-free):
//
//   L := min over all channels of their lookahead
//   repeat:
//     deliver all buffered cross-shard messages into their target queues
//     T := min over shards of next-event time        (done when T = +inf)
//     run every shard independently over [T, T + L)  (possibly in parallel)
//
// Safety: an event executing at time t in the window satisfies t < T + L,
// and any message it posts arrives at >= t + lookahead(channel) >= T + L —
// strictly after the window. So no in-window event can be invalidated by a
// message from another shard, and shards never need to see each other's
// state mid-window. Both inequalities are CHECKed at Post time.
//
// Determinism: each shard's intra-window execution is a serial Simulator
// run, deterministic by construction. At the barrier, buffered messages are
// sorted by (arrival time, source shard id, channel id, post sequence) and
// inserted into the destination queues in that order; EventQueue breaks
// same-timestamp ties by insertion order, so the merged schedule — and hence
// every trace, stat, and BENCH byte — is a pure function of the seed,
// independent of how many worker threads executed the windows.
//
// Threading: with `threads` > 1 the engine keeps a pool of persistent
// workers; each window, worker threads (and the caller's thread) claim
// shards from a shared counter and run them to the window edge. With
// `threads` <= 1 or a single shard the loop runs inline with zero
// synchronization cost.

#ifndef SRC_SIM_SHARD_ENGINE_H_
#define SRC_SIM_SHARD_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace tcplat {

class ShardEngine {
 public:
  // `shards` simulators seeded seed, seed+1, ...; `threads` caps the number
  // of OS threads used per window (effective parallelism is additionally
  // capped at `shards`).
  ShardEngine(uint64_t seed, int shards, unsigned threads);
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;
  ~ShardEngine();

  // A directed cross-shard edge. Post() may only be called from the source
  // shard's execution context (or before Run(), from the setup thread).
  class Channel : public DeliveryChannel {
   public:
    void Post(SimTime arrival, EventQueue::Callback fn) override;

    int src_shard() const { return src_; }
    int dst_shard() const { return dst_; }
    uint64_t id() const { return id_; }
    SimDuration lookahead() const { return lookahead_; }

   private:
    friend class ShardEngine;
    Channel(ShardEngine* engine, int src, int dst, uint64_t id,
            SimDuration lookahead)
        : engine_(engine), src_(src), dst_(dst), id_(id), lookahead_(lookahead) {}

    struct Message {
      SimTime arrival;
      uint64_t seq = 0;  // per-channel post order
      EventQueue::Callback fn;
    };

    ShardEngine* engine_;
    int src_;
    int dst_;
    uint64_t id_;
    SimDuration lookahead_;
    uint64_t next_seq_ = 0;
    std::vector<Message> outbox_;  // drained at each barrier
  };

  // Creates a channel from `src_shard` to `dst_shard`. `lookahead` must be
  // strictly positive — a zero-lookahead edge would force zero-width windows.
  // Channel ids are assigned in creation order (that order is part of the
  // deterministic tie-break, so create channels in a fixed order).
  Channel* CreateChannel(int src_shard, int dst_shard, SimDuration lookahead);

  // Runs every shard to completion. Returns total events dispatched.
  uint64_t Run();

  Simulator& sim(int shard) { return *sims_.at(static_cast<size_t>(shard)); }
  int shard_count() const { return static_cast<int>(sims_.size()); }
  unsigned threads() const { return threads_; }

  // min over channels, or SimDuration::Max()-like sentinel (whole run is one
  // window) when no channels exist.
  SimDuration lookahead() const { return lookahead_; }
  uint64_t windows_run() const { return windows_run_; }
  uint64_t events_dispatched() const;
  // max shard clock — the simulation end time after Run().
  SimTime EndTime() const;

  // The barrier's message order, exposed for tests: sort key is
  // (arrival, src shard, channel id, per-channel sequence).
  struct MessageKey {
    SimTime arrival;
    int src_shard = 0;
    uint64_t channel_id = 0;
    uint64_t seq = 0;
  };
  static bool MessageOrderLess(const MessageKey& a, const MessageKey& b);

 private:
  struct FlushItem {
    MessageKey key;
    int dst_shard = 0;
    EventQueue::Callback fn;
  };

  // Moves every channel outbox into the destination queues in deterministic
  // order. Returns the number of messages delivered.
  size_t FlushChannels();
  // Each shard runs [its clock, window_end) serially.
  void RunWindowSerial(SimTime window_end);
  void RunWindowParallel(SimTime window_end);
  void ClaimAndRunShards();
  void WorkerLoop();

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<Channel>> channels_;
  SimDuration lookahead_;  // min over channels
  unsigned threads_;
  uint64_t windows_run_ = 0;
  std::vector<FlushItem> flush_scratch_;

  // Window barrier state. window_end_ns_ is the exclusive upper edge of the
  // window currently (or most recently) executing; Post CHECKs against it.
  std::atomic<int64_t> window_end_ns_;
  std::atomic<uint64_t> round_gen_{0};
  std::atomic<int> next_shard_{0};
  std::atomic<int> shards_done_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace tcplat

#endif  // SRC_SIM_SHARD_ENGINE_H_
