file(REMOVE_RECURSE
  "liblat_buf.a"
)
