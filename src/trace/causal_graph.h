// Causal packet graphs: reconstructing each datagram's cross-host lifecycle
// from a Tracer event stream.
//
// The Tracer records flat per-host event sequences. This module links them
// back into per-packet causal chains — user write → TCP segment → IP
// datagram → AAL3/4 PDU (or Ethernet frame) → reassembly → ipintrq wait →
// tcp_input → socket wakeup → user read — producing one Journey per IP
// datagram with both its transmit-side and receive-side timestamps.
//
// Two linking mechanisms, both exact for this simulator:
//
//  * Within a host, the simulated kernel is single-CPU and runs every
//    synchronous call chain to completion, so the events of one chain are
//    adjacent in trace order. A per-host state machine therefore links
//    kSegTx → kPktTx → kPduTx on the way down and kPduRx → kEnqueue,
//    kDequeue → kPktRx → kSegRx → kWakeup on the way up without ambiguity.
//  * Across hosts, kPktTx and kPktRx share the key
//    (flow = (src<<32)|dst, packet = IP header id); per-key FIFO matching
//    marries each transmit chain to its receive chain (IP never reorders
//    within a key in-simulator; impairment-reordered packets still match
//    because ids within one (src,dst) pair are unique).

#ifndef SRC_TRACE_CAUSAL_GRAPH_H_
#define SRC_TRACE_CAUSAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/trace/tracer.h"

namespace tcplat {

// One IP datagram's reconstructed life. Timestamps are -1 where the
// corresponding stage was never observed (drops, RST-only packets, non-TCP
// payloads, runs that ended mid-flight).
struct Journey {
  int tx_host = -1;
  int rx_host = -1;
  uint64_t ip_key = 0;  // (src<<32)|dst of the datagram; 0 if unknown
  uint64_t ip_id = 0;

  // Transmit side.
  int64_t seg_tx_ns = -1;   // TCP handed the segment to IP (kSegTx)
  uint64_t seg_flow = 0;    // sender's (local<<16)|remote port pair
  uint64_t seg_seq = 0;     // sender-relative sequence number
  uint64_t seg_bytes = 0;   // TCP payload bytes (0 for bare ACKs)
  bool retransmit = false;  // a kRetransmit preceded this kSegTx
  int64_t pkt_tx_ns = -1;   // ip_output handed it to the driver (kPktTx)
  int64_t link_tx_ns = -1;  // driver finished segmentation (kPduTx/kFrameTx)
  int64_t tx_stall_ns = 0;  // summed adapter FIFO stalls inside the tx chain

  // Receive side.
  int64_t link_rx_ns = -1;  // reassembly completed (kPduRx/kFrameRx)
  int64_t enqueue_ns = -1;  // driver appended to the ipintrq (kEnqueue)
  int64_t dequeue_ns = -1;  // softint picked it up (kDequeue)
  int64_t ipq_wait_ns = 0;  // the kDequeue-reported queue wait
  int64_t pkt_rx_ns = -1;   // ip_input delivered it (kPktRx)
  int64_t seg_rx_ns = -1;   // tcp_input saw the segment (kSegRx)
  uint64_t rx_seg_flow = 0; // receiver's (local<<16)|remote port pair
  int64_t wakeup_ns = -1;   // first socket wakeup in the same input chain

  bool delivered() const { return seg_rx_ns >= 0; }
  bool data() const { return seg_bytes > 0; }
};

// Port-order-independent id shared by both ends of a TCP connection:
// (min<<16)|max of the two ports.
inline uint64_t CanonicalFlow(uint64_t raw_flow) {
  const uint64_t a = (raw_flow >> 16) & 0xFFFF;
  const uint64_t b = raw_flow & 0xFFFF;
  return a < b ? (a << 16) | b : (b << 16) | a;
}

class CausalGraph {
 public:
  // Single pass over tracer.events(). The tracer must have recorded in full
  // (not flight-recorder) mode.
  static CausalGraph Build(const Tracer& tracer);

  // All journeys, in order of creation (first transmit-side event).
  const std::vector<Journey>& journeys() const { return journeys_; }

  // Journeys whose sender-side connection matches `canonical_flow`, in
  // kSegTx order (their natural order).
  std::vector<const Journey*> FlowJourneys(uint64_t canonical_flow) const;

  // Journeys with both a transmit and a receive side observed.
  size_t linked_count() const;

 private:
  std::vector<Journey> journeys_;
};

}  // namespace tcplat

#endif  // SRC_TRACE_CAUSAL_GRAPH_H_
