// Critical-path latency attribution over causal packet graphs.
//
// The paper decomposes one round trip into per-layer microseconds (Tables
// 2/3) with aggregate probes. This module derives the same decomposition
// from a recorded trace — per round trip, per flow, per percentile:
//
//  * AttributeRtts() finds every request/response round trip a flow's
//    client performed (write-syscall entry to the read that returned the
//    last byte) and splits it into twelve telescoping stages along the
//    critical path: the journey of the last request segment client→server,
//    the server's turnaround, and the journey of the last response segment
//    back. Stages are consecutive gaps between chain anchors, so they sum
//    to the measured RTT *exactly* — any time the chain cannot anchor is
//    reported as kUnattributed, never silently dropped.
//  * PartitionSpans() splits a host's per-span (Table 2/3 row) self-time
//    totals across those windows. It is a partition of the same events
//    Tracer::SpanSelfTotalsNanos() sums, so per span:
//    residual + Σ windows == SpanSelfTotalsNanos to the nanosecond.
//  * BuildBlame() picks the p_lo and p_hi round trips (same nearest-rank
//    rule as LatencyStats::Percentile) and reports the stage-by-stage
//    difference: which layer the p99−p50 gap lives in.

#ifndef SRC_TRACE_ATTRIBUTION_H_
#define SRC_TRACE_ATTRIBUTION_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/trace/causal_graph.h"
#include "src/trace/span.h"
#include "src/trace/tracer.h"

namespace tcplat {

// Stages of one round trip, in causal order. "cli"/"srv" = the host acting
// as client/server for the flow; "net" = cells in flight plus switch
// queueing plus adapter segmentation/reassembly.
enum class BlameStage : int {
  kCliSend = 0,    // write() entry -> data ready in tcp_output (or seg tx)
  kCliAckWait,     // Nagle/SWS hold -> the held segment finally leaves
                   // (waiting on the peer's ACK or the delack timer)
  kCliTxDrive,     // ip_output + driver segmentation + FIFO stalls (request)
  kNetRequest,     // wire + switch + reassembly, client -> server
  kSrvIpqWait,     // reassembled PDU -> softint dequeue (ipintrq)
  kSrvTcpInput,    // ip_input + tcp_input up to the socket wakeup
  kSrvWakeupRead,  // wakeup -> server write() entry (scheduling + read)
  kSrvSend,        // server write() entry -> response ready in tcp_output
  kSrvAckWait,     // server-side Nagle/SWS hold -> response segment leaves
  kSrvTxDrive,
  kNetResponse,
  kCliIpqWait,
  kCliTcpInput,
  kCliWakeupRead,  // wakeup -> client read() returns the last byte
  kUnattributed,   // window time no causal chain could be anchored to
  kCount,
};
inline constexpr size_t kBlameStageCount = static_cast<size_t>(BlameStage::kCount);

std::string_view BlameStageName(BlameStage stage);

// One attributed round trip.
struct RttWindow {
  uint64_t flow = 0;  // canonical (port-order-independent) flow id
  int client_host = -1;
  int server_host = -1;
  int64_t start_ns = 0;  // client write-syscall entry (kTxUser span begin)
  int64_t end_ns = 0;    // client kUserRead that completed the message
  std::array<int64_t, kBlameStageCount> stage_ns{};
  // Event annotations for the blame report (counted within the window).
  int retransmits = 0;
  int delayed_acks = 0;
  int64_t tx_stall_ns = 0;  // FIFO stalls on the two critical journeys

  int64_t rtt_ns() const { return end_ns - start_ns; }
};

struct AttributionOptions {
  uint64_t message_bytes = 0;  // request/response payload per round trip
  int warmup_windows = 0;      // initial windows to drop, per flow
};

struct AttributionResult {
  std::vector<RttWindow> windows;  // all flows, by (flow, window index)
};

// Reconstructs and decomposes every round trip in the trace. The client
// side of a flow is the end with the higher port number (ephemeral ports
// sit above the listen ports in this simulator).
AttributionResult AttributeRtts(const Tracer& tracer, const CausalGraph& graph,
                                const AttributionOptions& options);

// Fills w->stage_ns and w->tx_stall_ns from the window's two critical
// journeys (either may be null), the server write-entry anchor
// (`srv_begin`, -1 when unobserved), and the first sender-side hold
// (kNagleHold) timestamps on each side (`cli_hold`/`srv_hold`, -1 when no
// hold was observed — the ACK-wait stage is then zero); w->start_ns/end_ns
// must already be set. Factored out of AttributeRtts so the batch and
// streaming reconstructors produce bit-identical decompositions.
void DecomposeWindow(const Journey* req, const Journey* rsp, int64_t srv_begin,
                     int64_t cli_hold, int64_t srv_hold, RttWindow* w);

// Per-span totals for `host` partitioned into the given windows (bucketed
// by each span event's end timestamp) plus a residual bucket for time
// outside every window. Counts the same post-kSpanReset events as
// Tracer::SpanSelfTotalsNanos, so per span the buckets sum to it exactly.
struct SpanWindowPartition {
  std::vector<std::array<int64_t, static_cast<size_t>(SpanId::kCount)>> per_window;
  std::array<int64_t, static_cast<size_t>(SpanId::kCount)> residual{};
};
SpanWindowPartition PartitionSpans(const Tracer& tracer, uint8_t host,
                                   const std::vector<RttWindow>& windows);

// Stage-by-stage comparison of the p_lo and p_hi round trips (nearest-rank
// percentile selection over rtt_ns, ties broken by end_ns then flow —
// identical to LatencyStats::Percentile on the same samples).
struct BlameReport {
  double p_lo = 0;
  double p_hi = 0;
  int64_t lo_rtt_ns = 0;
  int64_t hi_rtt_ns = 0;
  std::array<int64_t, kBlameStageCount> lo_stage_ns{};
  std::array<int64_t, kBlameStageCount> hi_stage_ns{};
  int lo_retransmits = 0, hi_retransmits = 0;
  int lo_delayed_acks = 0, hi_delayed_acks = 0;
  int64_t lo_tx_stall_ns = 0, hi_tx_stall_ns = 0;
  // Share of the gap the named stages explain:
  // 100 * (1 - |Δ kUnattributed| / (hi_rtt - lo_rtt)); 100 when gap == 0.
  double explained_pct = 100.0;

  int64_t gap_ns() const { return hi_rtt_ns - lo_rtt_ns; }
};
BlameReport BuildBlame(const std::vector<RttWindow>& windows, double p_lo, double p_hi);

}  // namespace tcplat

#endif  // SRC_TRACE_ATTRIBUTION_H_
