#include "src/sim/shard_engine.h"

#include <algorithm>
#include <limits>

#include "src/base/check.h"

namespace tcplat {
namespace {

// Spin this many times on the barrier before falling back to yield(). Window
// bodies are short (tens of microseconds of real work), so a brief spin
// usually catches the release without a context switch.
constexpr int kBarrierSpins = 1 << 14;

}  // namespace

ShardEngine::ShardEngine(uint64_t seed, int shards, unsigned threads)
    : lookahead_(SimDuration::FromNanos(std::numeric_limits<int64_t>::max())),
      window_end_ns_(std::numeric_limits<int64_t>::min()) {
  TCPLAT_CHECK_GE(shards, 1) << "a sharded engine needs at least one shard";
  sims_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>(seed + static_cast<uint64_t>(i)));
  }
  threads_ = std::min<unsigned>(std::max(1u, threads), static_cast<unsigned>(shards));
  if (threads_ > 1) {
    // The caller's thread participates in every window, so spawn one fewer
    // persistent worker than the requested width.
    workers_.reserve(threads_ - 1);
    for (unsigned i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ShardEngine::~ShardEngine() {
  if (!workers_.empty()) {
    stop_.store(true);
    round_gen_.fetch_add(1);  // release anyone parked on the barrier
    for (std::thread& w : workers_) {
      w.join();
    }
  }
}

ShardEngine::Channel* ShardEngine::CreateChannel(int src_shard, int dst_shard,
                                                 SimDuration lookahead) {
  TCPLAT_CHECK_GE(src_shard, 0);
  TCPLAT_CHECK_LT(src_shard, shard_count());
  TCPLAT_CHECK_GE(dst_shard, 0);
  TCPLAT_CHECK_LT(dst_shard, shard_count());
  TCPLAT_CHECK_GT(lookahead.nanos(), 0)
      << "zero-lookahead channel would force zero-width windows";
  auto ch = std::unique_ptr<Channel>(new Channel(
      this, src_shard, dst_shard, static_cast<uint64_t>(channels_.size()), lookahead));
  lookahead_ = std::min(lookahead_, lookahead);
  channels_.push_back(std::move(ch));
  return channels_.back().get();
}

void ShardEngine::Channel::Post(SimTime arrival, EventQueue::Callback fn) {
  // Conservative-lookahead invariants. The first is the channel's honesty
  // contract (messages really are at least `lookahead_` out); the second is
  // what makes in-window execution safe (nothing lands inside the window
  // being executed).
  TCPLAT_CHECK_GE(arrival.nanos(),
                  engine_->sims_[static_cast<size_t>(src_)]->Now().nanos() +
                      lookahead_.nanos())
      << "cross-shard message violates channel lookahead";
  TCPLAT_CHECK_GE(arrival.nanos(), engine_->window_end_ns_.load())
      << "cross-shard message lands inside the executing window";
  Message m;
  m.arrival = arrival;
  m.seq = next_seq_++;
  m.fn = std::move(fn);
  outbox_.push_back(std::move(m));
}

bool ShardEngine::MessageOrderLess(const MessageKey& a, const MessageKey& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
  if (a.channel_id != b.channel_id) return a.channel_id < b.channel_id;
  return a.seq < b.seq;
}

size_t ShardEngine::FlushChannels() {
  flush_scratch_.clear();
  for (const std::unique_ptr<Channel>& ch : channels_) {
    for (Channel::Message& m : ch->outbox_) {
      FlushItem item;
      item.key.arrival = m.arrival;
      item.key.src_shard = ch->src_;
      item.key.channel_id = ch->id_;
      item.key.seq = m.seq;
      item.dst_shard = ch->dst_;
      item.fn = std::move(m.fn);
      flush_scratch_.push_back(std::move(item));
    }
    ch->outbox_.clear();
  }
  // Insertion order at equal arrival times decides the EventQueue tie-break,
  // so this sort *is* the cross-shard determinism rule.
  std::sort(flush_scratch_.begin(), flush_scratch_.end(),
            [](const FlushItem& a, const FlushItem& b) {
              return MessageOrderLess(a.key, b.key);
            });
  for (FlushItem& item : flush_scratch_) {
    sims_[static_cast<size_t>(item.dst_shard)]->ScheduleAt(item.key.arrival,
                                                           std::move(item.fn));
  }
  const size_t delivered = flush_scratch_.size();
  flush_scratch_.clear();
  return delivered;
}

uint64_t ShardEngine::Run() {
  const uint64_t before = events_dispatched();
  const int64_t max_ns = std::numeric_limits<int64_t>::max();
  for (;;) {
    FlushChannels();
    int64_t base_ns = max_ns;
    for (const std::unique_ptr<Simulator>& sim : sims_) {
      base_ns = std::min(base_ns, sim->NextEventTime().nanos());
    }
    if (base_ns == max_ns) {
      break;  // every queue empty and every outbox drained
    }
    const int64_t ahead = lookahead_.nanos();
    const int64_t end_ns = (base_ns > max_ns - ahead) ? max_ns : base_ns + ahead;
    const SimTime window_end = SimTime::FromNanos(end_ns);
    window_end_ns_.store(end_ns);
    if (workers_.empty()) {
      RunWindowSerial(window_end);
    } else {
      RunWindowParallel(window_end);
    }
    ++windows_run_;
  }
  return events_dispatched() - before;
}

void ShardEngine::RunWindowSerial(SimTime window_end) {
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    sim->RunWhileBefore(window_end);
  }
}

void ShardEngine::RunWindowParallel(SimTime window_end) {
  (void)window_end;  // workers read window_end_ns_
  // Reset order matters. A straggler still inside the previous window's
  // ClaimAndRunShards loop can claim into this round the moment next_shard_
  // resets; wiping shards_done_ first guarantees any such claim's
  // done-increment lands after the wipe instead of being erased by it,
  // which would leave the barrier below permanently one short.
  shards_done_.store(0);
  next_shard_.store(0);
  round_gen_.fetch_add(1);  // release the workers into this window
  ClaimAndRunShards();      // the caller's thread pulls its weight too
  int spins = 0;
  while (shards_done_.load() < shard_count()) {
    if (++spins > kBarrierSpins) {
      std::this_thread::yield();
    }
  }
}

void ShardEngine::ClaimAndRunShards() {
  for (;;) {
    const int s = next_shard_.fetch_add(1);
    if (s >= shard_count()) {
      return;
    }
    // Load the window edge after the claim, not at loop entry: a straggler
    // from the previous window can claim into the next round, and must run
    // the shard against that round's window. (Claims into a round are only
    // possible after its next_shard_ reset, which happens after Run() stores
    // the round's window_end_ns_.)
    const SimTime window_end = SimTime::FromNanos(window_end_ns_.load());
    sims_[static_cast<size_t>(s)]->RunWhileBefore(window_end);
    shards_done_.fetch_add(1);
  }
}

void ShardEngine::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    int spins = 0;
    while (round_gen_.load() == seen) {
      // stop_ must be rechecked while parked: the destructor's release bump
      // can otherwise be absorbed by the `seen` re-load below (worker passes
      // the post-wait stop_ check, destructor sets stop_ and bumps, worker
      // loads the bumped generation), parking the worker here forever.
      if (stop_.load()) {
        return;
      }
      if (++spins > kBarrierSpins) {
        std::this_thread::yield();
      }
    }
    if (stop_.load()) {
      return;
    }
    seen = round_gen_.load();
    ClaimAndRunShards();
  }
}

uint64_t ShardEngine::events_dispatched() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    total += sim->events_dispatched();
  }
  return total;
}

SimTime ShardEngine::EndTime() const {
  SimTime end;
  for (const std::unique_ptr<Simulator>& sim : sims_) {
    end = std::max(end, sim->Now());
  }
  return end;
}

}  // namespace tcplat
