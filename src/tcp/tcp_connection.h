// One TCP connection: the tcpcb, the input state machine (with the BSD 4.4
// header-prediction fast path), and tcp_output (with the three checksum
// strategies the paper studies).

#ifndef SRC_TCP_TCP_CONNECTION_H_
#define SRC_TCP_TCP_CONNECTION_H_

#include <cstdint>
#include <list>
#include <vector>

#include "src/buf/mbuf.h"
#include "src/net/wire.h"
#include "src/sock/socket.h"
#include "src/tcp/congestion.h"
#include "src/tcp/pcb.h"
#include "src/tcp/tcp_seq.h"

namespace tcplat {

class TcpStack;

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* TcpStateName(TcpState s);

// How the TCP payload checksum is produced/verified on this stack (§4).
enum class ChecksumMode {
  kStandard,  // in_cksum over the assembled segment (baseline kernel)
  kCombined,  // per-mbuf partial sums computed during data copies (§4.1.1)
  kNone,      // negotiated off via the alternate-checksum option (§4.2)
};

struct TcpConfig {
  bool header_prediction = true;  // PCB cache + input fast path
  bool nodelay = false;           // TCP_NODELAY (disable Nagle)
  ChecksumMode checksum = ChecksumMode::kStandard;
  // The BSD 4.4 defaults (tcp_sendspace/tcp_recvspace = 8192). These are
  // load-bearing for reproducing the paper: an 8000-byte write leaves as a
  // 4096-byte segment (sosend passes one cluster per PRU_SEND) plus a
  // Nagle-held 3904-byte remainder that is released by the window-update
  // ACK the receiver emits when its first read drains half of an 8 KB
  // buffer — which is exactly why header prediction succeeds only for the
  // *second* packet of the 8000-byte case (§3).
  size_t sndbuf = 8192;
  size_t rcvbuf = 8192;
  // sosend switches from small mbufs to clusters above this write size
  // (§2.2.1; ablation A1 sweeps it).
  size_t cluster_threshold = kClusterThreshold;
  // Delayed ACKs (§2.3): when enabled, data arrival arms a timer instead of
  // acking immediately, and the fast path acks only every other full
  // segment. Disabling it acks every data segment immediately — one half of
  // the Nagle × delayed-ACK interactive pathology ablation.
  bool delack = true;
  SimDuration delack_timeout = SimDuration::FromMillis(200);
  // Artificial cap on the window this end advertises (0 = off). Used by the
  // silly-window-syndrome scenario to force tiny window advertisements and
  // exercise the sender-side SWS avoidance rule.
  size_t rcv_window_clamp = 0;
  // Loss-recovery era (overridable per socket). kLegacy reproduces the
  // seed's fast-retransmit-without-recovery behavior exactly.
  CongestionVariant congestion = CongestionVariant::kLegacy;
  // Clamp on the MSS this end derives/advertises (0 = off). The congestion
  // benchmarks use it to get Ethernet-era segments over the 9180-byte ATM
  // MTU so a window holds many segments.
  size_t mss_clamp = 0;
  SimDuration rexmt_min = SimDuration::FromMillis(300);
  SimDuration rexmt_max = SimDuration::FromSeconds(64);
  SimDuration msl = SimDuration::FromMillis(500);  // shortened 2MSL basis
  int max_rexmt = 12;
  // Keepalive (SO_KEEPALIVE): probe an idle connection and drop it when the
  // peer stops answering. Intervals are simulation-scaled (BSD used 2 h +
  // 75 s granularity; nothing in the model depends on the absolute values).
  bool keepalive = false;
  SimDuration keepalive_idle = SimDuration::FromSeconds(30);
  SimDuration keepalive_interval = SimDuration::FromSeconds(5);
  int keepalive_probes = 4;
};

class TcpConnection : public ProtocolOps {
 public:
  TcpConnection(TcpStack* stack, Socket* socket);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- opens ---
  void Listen(SockAddr local);
  void Connect(SockAddr local, SockAddr remote);
  // Initializes a passive connection from a SYN that hit a listener, and
  // responds with SYN|ACK.
  void AcceptSyn(SockAddr local, SockAddr remote, Socket* listener_socket, const TcpHeader& syn);

  // --- input: called by the stack after demux; `chain` is the full IP
  // packet, `th` the parsed TCP header, `iph` the parsed IP header. ---
  void Input(MbufPtr chain, const TcpHeader& th, const Ipv4Header& iph);

  // tcp_output: sends whatever the send rules allow.
  void Output();

  // ProtocolOps (socket layer entry points).
  void UsrSend() override { Output(); }
  void UsrRcvd() override { Output(); }
  void UsrClose() override;

  TcpState state() const { return state_; }
  Socket* socket() { return socket_; }
  Pcb& pcb() { return pcb_; }
  bool checksum_disabled() const { return no_checksum_; }
  size_t maxseg() const { return t_maxseg_; }
  TcpSeq snd_una() const { return snd_una_; }
  TcpSeq snd_nxt() const { return snd_nxt_; }
  TcpSeq rcv_nxt() const { return rcv_nxt_; }
  uint32_t cwnd() const { return cc_.cwnd(); }
  uint32_t ssthresh() const { return cc_.ssthresh(); }
  CongestionVariant congestion_variant() const { return cc_.variant(); }
  bool sack_enabled() const { return sack_enabled_; }

 private:
  // Flow id carried on this connection's trace events.
  uint64_t TraceFlow() const {
    return (static_cast<uint64_t>(pcb_.local.port) << 16) | pcb_.remote.port;
  }

  // Input helpers.
  bool VerifyChecksum(const Mbuf* chain, const TcpHeader& th, const Ipv4Header& iph);
  bool TryHeaderPrediction(MbufPtr& data, const TcpHeader& th, size_t data_len);
  void InputSynSent(const TcpHeader& th);
  void ProcessAck(const TcpHeader& th, size_t data_len);
  // The congestion variant this connection should run: socket option if set,
  // else the stack-wide config default.
  CongestionVariant ResolveVariant(const Socket* option_source) const;
  // Feeds received SACK blocks into the sender scoreboard (traces them).
  void IngestSackBlocks(const TcpHeader& th);
  // Receiver side: reports the reassembly queue as SACK blocks on an ACK.
  void AttachSackBlocks(TcpOptions* options) const;
  // BSD's "rewind" retransmission: temporarily point snd_nxt at `seq`, emit
  // one clamped segment, then restore. Used by fast retransmit and by
  // NewReno/SACK hole repair.
  void RewindRetransmit(TcpSeq seq);
  // Executes the side effects a CongestionControl action asks for.
  void ApplyLossAction(const CongestionControl::LossAction& action);
  void ApplyAckAction(const CongestionControl::AckAction& action);
  void TraceCwnd();
  // Timeline-only cwnd sample for growth paths (slow start / congestion
  // avoidance) that emit no kCwndChange packet event; keeps the exact-peak
  // tracking behind the loss-enter edge fresh between recovery episodes.
  void SampleCwnd();
  void ProcessData(MbufPtr data, TcpSeq seq, size_t len, bool fin);
  void AppendInOrder(MbufPtr data);
  bool DrainReassembly();  // returns true if a queued FIN was consumed
  void ProcessFin();
  void CompleteEstablishment();
  bool fin_needed_for_state() const;

  // Output helpers.
  struct SegmentPlan {
    size_t len = 0;
    TcpFlags flags;
    bool send = false;
    bool sendalot = false;
    // True when the peer's window (not the send buffer) limited `len` —
    // distinguishes silly-window holds from Nagle holds when !send.
    bool window_limited = false;
  };
  SegmentPlan PlanSegment();
  void EmitSegment(const SegmentPlan& plan);
  // Emits kNagleHold (and counts nagle_holds/sws_holds) when tcp_output
  // decided to leave ready data unsent.
  void TraceHeldData(const SegmentPlan& plan);
  // Effective per-connection option values (socket override, else config).
  bool DelackEnabled() const;
  SimDuration DelackDelay() const;
  // Window this end advertises: receive-buffer space, clamped by the
  // rcv_window_clamp scenario knob and the 16-bit field.
  uint32_t AnnounceWindow() const;

  // Timers.
  void ArmRexmt();
  void CancelRexmt();
  void RexmtTimeout();
  void ArmDelack();
  void CancelDelack();
  void DelackTimeout();
  void ArmKeepalive(SimDuration delay);
  void CancelKeepalive();
  void KeepaliveTimeout();
  void SendKeepaliveProbe();
  void EnterTimeWait();
  void DropConnection(bool error);
  SimDuration CurrentRto() const;

  TcpStack* stack_;
  Socket* socket_;
  Socket* listener_socket_ = nullptr;  // for passive opens
  bool embryonic_ = false;  // counted against the listener's backlog
  Pcb pcb_;
  TcpState state_ = TcpState::kClosed;

  // Send sequence state.
  TcpSeq iss_ = 0;
  TcpSeq snd_una_ = 0;
  TcpSeq snd_nxt_ = 0;
  TcpSeq snd_max_ = 0;
  uint32_t snd_wnd_ = 0;
  TcpSeq snd_wl1_ = 0;
  TcpSeq snd_wl2_ = 0;
  CongestionControl cc_;      // cwnd / ssthresh / dup-ACK / recovery state
  uint32_t max_sndwnd_ = 0;  // largest window the peer has offered

  // Receive sequence state.
  TcpSeq irs_ = 0;
  TcpSeq rcv_nxt_ = 0;
  TcpSeq rcv_adv_ = 0;
  TcpSeq last_ack_sent_ = 0;

  size_t t_maxseg_ = 512;
  bool ack_now_ = false;
  bool delack_pending_ = false;
  bool fin_sent_ = false;
  bool no_checksum_ = false;       // negotiated for this connection
  bool request_no_checksum_ = false;
  bool request_sack_ = false;      // offer SACK-permitted on our SYN
  bool sack_enabled_ = false;      // both ends agreed (RFC 2018)
  bool force_probe_ = false;       // zero-window probe forced by the timer
  bool force_rexmt_ = false;       // RewindRetransmit forcing one segment out
  int rexmt_shift_ = 0;
  // Receiver side of SACK: the most recently arrived out-of-order block,
  // reported first in the option (RFC 2018 section 4).
  TcpSeq recent_sack_start_ = 0;
  TcpSeq recent_sack_end_ = 0;

  // Round-trip timing (coarse BSD-style smoothing).
  bool rtt_timing_ = false;
  TcpSeq rtt_seq_ = 0;
  SimTime rtt_started_;
  SimDuration srtt_;

  // Timeseries state (src/trace/timeseries.h): the last cwnd value pushed
  // and whether it was pushed inside a recovery episode, so TraceCwnd can
  // emit exact peak/valley edge pairs at the sawtooth corners.
  int64_t last_traced_cwnd_ = 0;
  bool traced_recovery_ = false;

  EventId rexmt_timer_ = kInvalidEventId;
  EventId delack_timer_ = kInvalidEventId;
  EventId timewait_timer_ = kInvalidEventId;
  EventId keepalive_timer_ = kInvalidEventId;
  int keepalive_unanswered_ = 0;

  // Out-of-order segments awaiting the gap fill.
  struct ReasmSegment {
    TcpSeq seq;
    size_t len;
    bool fin;
    MbufPtr data;
  };
  std::list<ReasmSegment> reassembly_;
};

}  // namespace tcplat

#endif  // SRC_TCP_TCP_CONNECTION_H_
