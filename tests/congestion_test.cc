// Structural contract of the congested-bottleneck cells (src/workload/
// congestion.h): every flow completes, the reduced aggregates stay inside
// their physical bounds, small per-VC buffers actually drop and force
// retransmissions, EPD discards whole AAL frames rather than poisoning
// them cell-by-cell, SACK flows negotiate the option and repair from the
// scoreboard, and every cell is byte-identical across repeated runs, shard
// counts and worker threads at a fixed seed. The *comparative* results
// (SACK+EPD beating Reno+tail drop, the gap shrinking with buffer size)
// live in bench/congestion where the full grid runs; these tests pin the
// invariants each grid cell relies on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/workload/congestion.h"

namespace tcplat {
namespace {

// Small enough to keep the suite fast, congested enough that the 6 Mb/s
// trunk — not the hosts — is the bottleneck.
CongestionCell QuickCell() {
  CongestionCell cell;
  cell.flows = 4;
  cell.bulk_bytes = 48 * 1024;
  cell.buffer_cells = 256;
  return cell;
}

TEST(CongestionCell, AllFlowsCompleteWithSaneAggregates) {
  CongestionCell cell = QuickCell();
  cell.variant = CongestionVariant::kReno;
  cell.policy = DropPolicy::kTailDrop;
  const CongestionOutcome out = RunCongestionCell(cell);
  EXPECT_EQ(out.completed, static_cast<uint64_t>(cell.flows));
  EXPECT_EQ(out.aborted, 0u);
  ASSERT_EQ(out.goodput_bps.size(), static_cast<size_t>(cell.flows));
  for (int f = 0; f < cell.flows; ++f) {
    EXPECT_GT(out.goodput_bps[static_cast<size_t>(f)], 0.0) << "flow " << f;
    EXPECT_GE(out.flow_stats[static_cast<size_t>(f)].elapsed_ns, 0) << "flow " << f;
  }
  // The aggregate cannot exceed the trunk feeding the server.
  EXPECT_GT(out.aggregate_goodput_mbps, 0.0);
  EXPECT_LT(out.aggregate_goodput_mbps * 1e6, cell.trunk_bps);
  EXPECT_GT(out.efficiency, 0.0);
  EXPECT_LE(out.efficiency, 1.0);
  EXPECT_GT(out.fairness, 0.0);
  EXPECT_LE(out.fairness, 1.0 + 1e-9);
  EXPECT_GT(out.cells_forwarded, 0u);
}

TEST(CongestionCell, SmallBuffersDropCellsAndForceRetransmits) {
  CongestionCell cell = QuickCell();
  cell.variant = CongestionVariant::kReno;
  cell.policy = DropPolicy::kTailDrop;
  cell.buffer_cells = 128;
  const CongestionOutcome out = RunCongestionCell(cell);
  EXPECT_EQ(out.completed, static_cast<uint64_t>(cell.flows));
  EXPECT_GT(out.cells_dropped_tail, 0u);
  EXPECT_GT(out.retransmits, 0u);
  // Occupancy can never exceed the configured per-VC buffer.
  EXPECT_GT(out.occupancy_hiwat, 0);
  EXPECT_LE(out.occupancy_hiwat, static_cast<int64_t>(cell.buffer_cells));
}

TEST(CongestionCell, EpdDiscardsWholeFramesAtTheThreshold) {
  CongestionCell cell = QuickCell();
  cell.variant = CongestionVariant::kReno;
  cell.policy = DropPolicy::kEpd;
  cell.buffer_cells = 128;
  const CongestionOutcome out = RunCongestionCell(cell);
  EXPECT_EQ(out.completed, static_cast<uint64_t>(cell.flows));
  EXPECT_GT(out.cells_dropped_epd, 0u);
  EXPECT_GT(out.frames_discarded, 0u);
  // EPD refuses frames before the queue is full; each discarded frame is
  // several cells, so the per-frame average must exceed one cell.
  EXPECT_GT(out.cells_dropped_epd, out.frames_discarded);
}

TEST(CongestionCell, SackFlowsNegotiateAndRepairFromTheScoreboard) {
  // The canonical grid cell (8 flows x 96 KiB, 256-cell buffers): enough
  // queue pressure that whole segments go missing while later ones
  // survive — the hole pattern scoreboard-driven retransmission needs —
  // yet enough buffer that recovery completes without the timer.
  CongestionCell cell;
  cell.variant = CongestionVariant::kSack;
  cell.policy = DropPolicy::kEpd;
  cell.buffer_cells = 256;
  const CongestionOutcome out = RunCongestionCell(cell);
  EXPECT_EQ(out.completed, static_cast<uint64_t>(cell.flows));
  EXPECT_GT(out.sack_blocks_received, 0u);
  EXPECT_GT(out.sack_retransmits, 0u);
  // SACK's point is repairing without the retransmission timer; with
  // frame-level discard it must recover at least some losses fast.
  EXPECT_GT(out.fast_recovery_episodes, 0u);
}

// One canonical cell, rendered through CongestionRow (simulated quantities
// only): repeated runs, sharded runs and threaded-shard runs must agree to
// the byte. This is the same property bench/congestion's CI determinism
// step checks end-to-end over the whole grid.
TEST(CongestionCell, RowsAreByteIdenticalAcrossShardsAndRepeats) {
  CongestionCell cell = QuickCell();
  cell.variant = CongestionVariant::kSack;
  cell.policy = DropPolicy::kEpd;
  const std::vector<std::string> serial = CongestionRow(cell, RunCongestionCell(cell));
  const std::vector<std::string> again = CongestionRow(cell, RunCongestionCell(cell));
  EXPECT_EQ(serial, again) << "repeat run diverged";

  CongestionCell sharded = cell;
  sharded.shards = 2;
  const std::vector<std::string> two_shards =
      CongestionRow(sharded, RunCongestionCell(sharded));
  EXPECT_EQ(serial, two_shards) << "2-shard run diverged";

  sharded.shard_threads = 2;
  const std::vector<std::string> threaded =
      CongestionRow(sharded, RunCongestionCell(sharded));
  EXPECT_EQ(serial, threaded) << "threaded 2-shard run diverged";
}

TEST(CongestionCell, SeedsAreIndividuallyDeterministic) {
  for (const uint64_t seed : {uint64_t{1}, uint64_t{7}}) {
    CongestionCell cell = QuickCell();
    cell.variant = CongestionVariant::kNewReno;
    cell.policy = DropPolicy::kPpd;
    cell.buffer_cells = 128;
    cell.seed = seed;
    const std::vector<std::string> first = CongestionRow(cell, RunCongestionCell(cell));
    const std::vector<std::string> second = CongestionRow(cell, RunCongestionCell(cell));
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tcplat
