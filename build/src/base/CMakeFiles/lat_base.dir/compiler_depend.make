# Empty compiler generated dependencies file for lat_base.
# This may be replaced when dependencies are built.
