// Driver for the §4.2.1 error-detection analysis: inject errors from one of
// the paper's sources while the echo workload runs, then attribute every
// corruption to the layer that caught it.

#ifndef SRC_FAULT_ERROR_EXPERIMENT_H_
#define SRC_FAULT_ERROR_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"

namespace tcplat {

enum class ErrorSource {
  kLinkBitFlip,       // random fiber noise: caught by the per-cell CRC-10
  kLinkCrcDefeating,  // source (4): bit pattern invisible to the CRC-10
  kControllerCopy,    // source (2): corruption in the device->host copy
  kSwitchFabric,      // source (1): corruption inside a switch's fabric
};

std::string ErrorSourceName(ErrorSource source);

struct ErrorExperimentConfig {
  ErrorSource source = ErrorSource::kLinkBitFlip;
  ChecksumMode checksum = ChecksumMode::kStandard;
  double probability = 0.01;  // per cell (link sources) or per PDU (controller)
  size_t size = 1400;
  int iterations = 300;
  uint64_t seed = 7;
};

struct ErrorExperimentResult {
  uint64_t injected = 0;
  uint64_t caught_cell_crc = 0;     // PDUs dropped by the AAL3/4 CRC-10
  uint64_t caught_sar = 0;          // sequence/CPCS-level drops
  uint64_t caught_tcp_checksum = 0; // segments dropped by the TCP checksum
  uint64_t app_mismatches = 0;      // escaped everything below the app
  uint64_t retransmits = 0;
  double mean_rtt_us = 0;
  bool completed = false;  // the workload survived the error rate
};

ErrorExperimentResult RunErrorExperiment(const ErrorExperimentConfig& config);

}  // namespace tcplat

#endif  // SRC_FAULT_ERROR_EXPERIMENT_H_
