// On-the-wire packet formats.
//
// Headers are plain structs with explicit Serialize/Parse methods; the stack
// moves real serialized bytes through mbufs, cells, and frames, so every
// checksum and CRC in the simulation is computed over genuine wire data.

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tcplat {

// IPv4 address in host byte order.
using Ipv4Addr = uint32_t;

constexpr Ipv4Addr MakeAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | d;
}

std::string AddrToString(Ipv4Addr addr);

// A transport endpoint.
struct SockAddr {
  Ipv4Addr addr = 0;
  uint16_t port = 0;

  friend bool operator==(const SockAddr&, const SockAddr&) = default;
  std::string ToString() const;
};

inline constexpr uint8_t kIpProtoTcp = 6;

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

inline constexpr size_t kIpv4HeaderBytes = 20;

struct Ipv4Header {
  uint8_t tos = 0;
  uint16_t total_length = 0;  // header + payload
  uint16_t id = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  uint16_t frag_offset = 0;  // in 8-byte units
  uint8_t ttl = 64;
  uint8_t protocol = kIpProtoTcp;
  uint16_t header_checksum = 0;
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;

  // Serializes into exactly kIpv4HeaderBytes at `out` with the stored
  // header_checksum field (call FillChecksum first to make it valid).
  void Serialize(std::span<uint8_t> out) const;

  // Computes and stores the correct header checksum.
  void FillChecksum();

  // Recomputes the header checksum over serialized bytes; true if valid.
  static bool VerifyChecksum(std::span<const uint8_t> header_bytes);

  // Parses a header from `in`; nullopt if the buffer is too short or the
  // version/IHL fields are unsupported.
  static std::optional<Ipv4Header> Parse(std::span<const uint8_t> in);
};

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

inline constexpr size_t kTcpMinHeaderBytes = 20;

struct TcpFlags {
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;
  bool urg = false;

  uint8_t Pack() const;
  static TcpFlags Unpack(uint8_t bits);
  std::string ToString() const;
  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

// TCP options the implementation understands. Following Kay & Pasquale, the
// checksum-elimination experiment negotiates via the Alternate Checksum
// Request option (RFC 1146, kind 14) carried on SYN segments, with
// "checksum number" kTcpAltChecksumNone meaning the payload checksum is not
// computed.
inline constexpr uint8_t kTcpOptEnd = 0;
inline constexpr uint8_t kTcpOptNop = 1;
inline constexpr uint8_t kTcpOptMss = 2;
inline constexpr uint8_t kTcpOptSackPermitted = 4;  // RFC 2018, SYN only
inline constexpr uint8_t kTcpOptSack = 5;           // RFC 2018, on ACKs
inline constexpr uint8_t kTcpOptAltChecksumRequest = 14;
inline constexpr uint8_t kTcpAltChecksumStandard = 0;
inline constexpr uint8_t kTcpAltChecksumNone = 101;  // private number

// RFC 2018 caps a SACK option at 4 blocks (40-byte option space); we carry
// at most 3 so the option always fits alongside padding.
inline constexpr size_t kTcpMaxSackBlocks = 3;

// One SACK block: [start, end) in sequence space.
struct TcpSackBlock {
  uint32_t start = 0;
  uint32_t end = 0;
  friend bool operator==(const TcpSackBlock&, const TcpSackBlock&) = default;
};

struct TcpOptions {
  std::optional<uint16_t> mss;             // SYN only
  std::optional<uint8_t> alt_checksum;     // SYN only
  bool sack_permitted = false;             // SYN only (RFC 2018 negotiation)
  std::vector<TcpSackBlock> sack;          // received-data blocks on ACKs

  // Serialized length, padded to a multiple of 4.
  size_t WireLength() const;
  void Serialize(std::span<uint8_t> out) const;
  static TcpOptions Parse(std::span<const uint8_t> in);
  friend bool operator==(const TcpOptions&, const TcpOptions&) = default;
};

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  TcpFlags flags;
  uint16_t window = 0;
  uint16_t checksum = 0;
  uint16_t urgent = 0;
  TcpOptions options;

  size_t HeaderLength() const { return kTcpMinHeaderBytes + options.WireLength(); }

  void Serialize(std::span<uint8_t> out) const;
  static std::optional<TcpHeader> Parse(std::span<const uint8_t> in);
};

// The 12-byte TCP pseudo header prepended for checksumming.
struct TcpPseudoHeader {
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;
  uint16_t tcp_length = 0;  // header + payload

  std::array<uint8_t, 12> Serialize() const;
};

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

using MacAddr = std::array<uint8_t, 6>;

inline constexpr size_t kEtherHeaderBytes = 14;
inline constexpr size_t kEtherCrcBytes = 4;
inline constexpr size_t kEtherMtu = 1500;
inline constexpr size_t kEtherMinPayload = 46;
// Preamble + SFD + interframe gap, charged as wire time only.
inline constexpr size_t kEtherPreambleBytes = 8;
inline constexpr size_t kEtherIfgBytes = 12;
inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;

struct EtherHeader {
  MacAddr dst{};
  MacAddr src{};
  uint16_t ethertype = kEtherTypeIpv4;

  void Serialize(std::span<uint8_t> out) const;
  static std::optional<EtherHeader> Parse(std::span<const uint8_t> in);
};

}  // namespace tcplat

#endif  // SRC_NET_WIRE_H_
