file(REMOVE_RECURSE
  "CMakeFiles/aal34_test.dir/aal34_test.cc.o"
  "CMakeFiles/aal34_test.dir/aal34_test.cc.o.d"
  "aal34_test"
  "aal34_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aal34_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
