file(REMOVE_RECURSE
  "CMakeFiles/table7_no_checksum.dir/table7_no_checksum.cc.o"
  "CMakeFiles/table7_no_checksum.dir/table7_no_checksum.cc.o.d"
  "table7_no_checksum"
  "table7_no_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_no_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
