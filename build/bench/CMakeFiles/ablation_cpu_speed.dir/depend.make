# Empty dependencies file for ablation_cpu_speed.
# This may be replaced when dependencies are built.
