file(REMOVE_RECURSE
  "liblat_net.a"
)
