// Cyclic redundancy checks used by the link layers.
//
//  * CRC-10 — the AAL3/4 per-cell payload CRC (ITU I.363: generator
//    x^10 + x^9 + x^5 + x^4 + x + 1). The FORE TCA-100 computes this in
//    hardware per received cell; our device model computes it in (host)
//    software but charges no simulated CPU time for it, matching the
//    hardware implementation.
//  * CRC-32 — IEEE 802.3 frame check sequence for the Ethernet baseline
//    (reflected, polynomial 0xEDB88320, init/final 0xFFFFFFFF).
//
// Both are table-driven with the tables generated at first use; tests verify
// them against bit-serial reference implementations and known vectors.

#ifndef SRC_NET_CRC_H_
#define SRC_NET_CRC_H_

#include <cstdint>
#include <span>

namespace tcplat {

// Returns the 10-bit CRC of `data` (in the low 10 bits).
uint16_t Crc10(std::span<const uint8_t> data);

// Bit-serial CRC-10, used as the test oracle.
uint16_t Crc10Reference(std::span<const uint8_t> data);

// IEEE 802.3 CRC-32 of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

// Bit-serial CRC-32, used as the test oracle.
uint32_t Crc32Reference(std::span<const uint8_t> data);

}  // namespace tcplat

#endif  // SRC_NET_CRC_H_
