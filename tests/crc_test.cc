// Tests for the CRC-10 (AAL3/4) and CRC-32 (Ethernet FCS) implementations:
// table-driven vs bit-serial agreement, known vectors, and the detection
// properties §4.2.1 leans on.

#include <gtest/gtest.h>

#include <vector>

#include "src/base/random.h"
#include "src/net/crc.h"

namespace tcplat {
namespace {

std::vector<uint8_t> RandomBuffer(Rng& rng, size_t n) {
  std::vector<uint8_t> buf(n);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return buf;
}

TEST(Crc32, KnownVector) {
  // The canonical IEEE 802.3 check value.
  const std::vector<uint8_t> data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(Crc32({}), 0u);
  EXPECT_EQ(Crc32Reference({}), 0u);
}

class CrcLengthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CrcLengthTest, TableMatchesBitSerialCrc10) {
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto buf = RandomBuffer(rng, GetParam());
    EXPECT_EQ(Crc10(buf), Crc10Reference(buf));
  }
}

TEST_P(CrcLengthTest, TableMatchesBitSerialCrc32) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 20; ++trial) {
    const auto buf = RandomBuffer(rng, GetParam());
    EXPECT_EQ(Crc32(buf), Crc32Reference(buf));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CrcLengthTest,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 44, 48, 53, 64, 100, 1500),
                         [](const auto& inst) { return "n" + std::to_string(inst.param); });

TEST(Crc10, TenBitRange) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto buf = RandomBuffer(rng, 48);
    EXPECT_LE(Crc10(buf), 0x3FFu);
  }
}

TEST(Crc10, DetectsEverySingleBitFlipInACell) {
  Rng rng(6);
  auto buf = RandomBuffer(rng, 48);
  const uint16_t want = Crc10(buf);
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] = static_cast<uint8_t>(buf[byte] ^ (1u << bit));
      EXPECT_NE(Crc10(buf), want) << "byte " << byte << " bit " << bit;
      buf[byte] = static_cast<uint8_t>(buf[byte] ^ (1u << bit));
    }
  }
}

TEST(Crc10, DetectsBurstsUpToTenBits) {
  // A CRC of degree 10 detects every burst of length <= 10.
  Rng rng(7);
  auto buf = RandomBuffer(rng, 48);
  const uint16_t want = Crc10(buf);
  for (int burst_len = 2; burst_len <= 10; ++burst_len) {
    for (int start_bit = 0; start_bit + burst_len <= 48 * 8; start_bit += 37) {
      auto corrupted = buf;
      // A burst starts and ends with flipped bits.
      for (int i : {0, burst_len - 1}) {
        const int bit = start_bit + i;
        corrupted[bit / 8] = static_cast<uint8_t>(corrupted[bit / 8] ^ (0x80u >> (bit % 8)));
      }
      EXPECT_NE(Crc10(corrupted), want) << "burst " << burst_len << " at " << start_bit;
    }
  }
}

TEST(Crc10, MissesGeneratorMultiple) {
  // XORing the generator polynomial's bit pattern into the message adds a
  // multiple of g(x), which the CRC cannot detect — the §4.2.1 source-(4)
  // error our fault injector synthesizes.
  constexpr uint32_t kGeneratorBits = 0x633;
  Rng rng(8);
  auto buf = RandomBuffer(rng, 48);
  const uint16_t want = Crc10(buf);
  for (size_t bit_off = 0; bit_off + 11 <= 48 * 8 - 10; bit_off += 53) {
    auto corrupted = buf;
    for (int i = 0; i < 11; ++i) {
      if ((kGeneratorBits >> (10 - i)) & 1) {
        const size_t bit = bit_off + static_cast<size_t>(i);
        corrupted[bit / 8] = static_cast<uint8_t>(corrupted[bit / 8] ^ (0x80u >> (bit % 8)));
      }
    }
    EXPECT_NE(corrupted, buf);
    EXPECT_EQ(Crc10(corrupted), want) << "offset " << bit_off;
  }
}

TEST(Crc32, DetectsRandomMultiBitDamage) {
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    auto buf = RandomBuffer(rng, 200);
    const uint32_t want = Crc32(buf);
    const int flips = 1 + static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < flips; ++i) {
      const size_t byte = rng.NextBelow(buf.size());
      buf[byte] = static_cast<uint8_t>(buf[byte] ^ (1u << rng.NextBelow(8)));
    }
    if (Crc32(buf) == want) {
      // Only acceptable if the flips happened to cancel out exactly.
      EXPECT_EQ(Crc32Reference(buf), want);
    }
  }
}

}  // namespace
}  // namespace tcplat
