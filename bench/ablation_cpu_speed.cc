// Ablation A4 — the paper's own opening question (§1): "How have the
// changes in technology affected the results of earlier studies?" Scales
// the host CPU (every calibrated software cost divided by a speedup factor)
// while the network stays 1994-fast, and re-asks the paper's headline
// questions at each point: what does the checksum cost, does header
// prediction matter, how big is the scheduling share?

#include <array>
#include <cstdio>
#include <vector>

#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"

namespace tcplat {
namespace {

CostParams Scale(const CostParams& p, double f) {
  return CostParams{p.fixed_us / f, p.per_byte_us / f, p.per_chunk_us / f};
}

CostProfile ScaledProfile(double f) {
  CostProfile p = CostProfile::Decstation5000_200();
  for (CostParams* param :
       {&p.ultrix_cksum, &p.opt_cksum, &p.user_bcopy, &p.integrated_copy_cksum, &p.in_cksum,
        &p.kernel_bcopy, &p.copyin_small, &p.copyin_cluster, &p.copyout_small,
        &p.copyout_cluster, &p.mbuf_alloc, &p.mbuf_free, &p.cluster_ref, &p.m_copym_fixed,
        &p.m_copym_per_mbuf, &p.syscall_entry, &p.syscall_exit, &p.sosend_fixed,
        &p.sosend_per_chunk, &p.soreceive_fixed, &p.sbappend, &p.tcp_output_fixed,
        &p.tcp_copydata_small, &p.tcp_input_slow, &p.tcp_input_fast, &p.tcp_ack_proc,
        &p.pcb_lookup, &p.pcb_cache_check, &p.sorwakeup, &p.pseudo_hdr_cksum, &p.udp_output,
        &p.udp_input, &p.ip_output, &p.ip_input, &p.ipq_enqueue, &p.softint_dispatch,
        &p.wakeup_ctx_switch, &p.intr_entry, &p.atm_tx_fixed, &p.atm_tx_per_cell,
        &p.atm_rx_fixed, &p.atm_rx_per_cell, &p.copyin_small_cksum, &p.copyin_cluster_cksum,
        &p.atm_rx_per_cell_cksum, &p.cksum_combine, &p.combined_cksum_tx_overhead,
        &p.combined_cksum_rx_overhead, &p.ether_tx, &p.ether_rx}) {
    *param = Scale(*param, f);
  }
  return p;
}

double Rtt(const CostProfile& prof, ChecksumMode mode, size_t size) {
  TestbedConfig cfg;
  cfg.profile = prof;
  cfg.tcp.checksum = mode;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 100;
  return RunRpcBenchmark(tb, opt).MeanRtt().micros();
}

void Run() {
  std::printf("Ablation A4: scale the CPU, keep the 1994 network (8000-byte echoes)\n\n");
  TextTable t({"CPU speedup", "RTT (us)", "Checksum-elim saving", "4B RTT (us)",
               "4B wire+sched floor (%)"});
  const std::array<double, 5> factors = {1.0, 2.0, 4.0, 10.0, 100.0};
  struct Row {
    double rtt;
    double rtt_none;
    double rtt4;
    double floor4;
  };
  const std::vector<Row> rows = ParallelMap<Row>(factors.size(), [&factors](size_t i) {
    const CostProfile prof = ScaledProfile(factors[i]);
    // The irreducible part of a 4-byte RTT: wire time + propagation, which
    // the CPU speedup cannot touch. Approximate it with an infinitely fast
    // CPU's RTT.
    return Row{Rtt(prof, ChecksumMode::kStandard, 8000), Rtt(prof, ChecksumMode::kNone, 8000),
               Rtt(prof, ChecksumMode::kStandard, 4),
               Rtt(ScaledProfile(1e6), ChecksumMode::kStandard, 4)};
  });
  for (size_t i = 0; i < factors.size(); ++i) {
    const auto& [rtt, rtt_none, rtt4, floor4] = rows[i];
    t.AddRow({TextTable::Num(factors[i], 0) + "x", TextTable::Us(rtt),
              TextTable::Pct(100.0 * (rtt - rtt_none) / rtt, 1), TextTable::Us(rtt4),
              TextTable::Pct(100.0 * floor4 / rtt4, 1)});
  }
  t.Print();
  std::printf(
      "\nReadings: the checksum-elimination saving *shrinks* as CPUs outpace the\n"
      "network (the data-touching share of the RTT falls), while the 4-byte\n"
      "round trip converges on the wire+propagation floor — software\n"
      "optimizations of the kind the paper studies mattered most exactly when\n"
      "it was written, and a 100x-faster CPU on the same fiber leaves latency\n"
      "dominated by the network itself.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
