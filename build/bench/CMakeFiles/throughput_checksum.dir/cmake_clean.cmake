file(REMOVE_RECURSE
  "CMakeFiles/throughput_checksum.dir/throughput_checksum.cc.o"
  "CMakeFiles/throughput_checksum.dir/throughput_checksum.cc.o.d"
  "throughput_checksum"
  "throughput_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
