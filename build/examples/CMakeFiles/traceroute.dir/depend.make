# Empty dependencies file for traceroute.
# This may be replaced when dependencies are built.
