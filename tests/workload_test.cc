// The workload engine's contract: a 1x1 star with one closed-loop flow IS
// the switched two-host testbed (byte-identical RTTs); generators are pure
// functions of their config (seeded arrivals); the closed-loop concurrency
// invariant holds; every flow completes or aborts exactly once, impaired or
// not; and bench/capacity's rows are byte-identical across executor widths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"
#include "src/fault/impairment.h"
#include "src/workload/capacity.h"
#include "src/workload/flow_driver.h"
#include "src/workload/generator.h"
#include "src/workload/star_testbed.h"

namespace tcplat {
namespace {

// K=1, M=1, one closed-loop flow: the star must reproduce the switched
// two-host testbed's round trips byte-for-byte. Any drift here means the
// star's wiring (fiber parameters, spawn order, VC setup) perturbed event
// ordering relative to the reference path.
TEST(StarTestbed, OneFlowReproducesSwitchedTestbedByteForByte) {
  for (size_t size : {size_t{4}, size_t{1400}}) {
    TestbedConfig ref_cfg;
    ref_cfg.switched = true;
    Testbed ref(ref_cfg);
    RpcOptions opt;
    opt.size = size;
    opt.iterations = 120;
    opt.warmup = 32;
    const RpcResult expected = RunRpcBenchmark(ref, opt);

    StarTestbedConfig star_cfg;  // defaults: 1 client, 1 server, ATM
    StarTestbed star(star_cfg);
    FlowSpec spec;
    spec.size = size;
    spec.iterations = 120;
    spec.warmup = 32;
    const WorkloadResult got = RunWorkload(star, {spec});

    ASSERT_EQ(got.flows.size(), 1u);
    EXPECT_TRUE(got.flows[0].completed);
    EXPECT_EQ(got.rtt.count(), expected.rtt.count()) << "size " << size;
    EXPECT_EQ(got.rtt.sum().nanos(), expected.rtt.sum().nanos()) << "size " << size;
    EXPECT_EQ(got.rtt.Mean().nanos(), expected.MeanRtt().nanos()) << "size " << size;
    EXPECT_EQ(got.rtt.Percentile(99).nanos(), expected.rtt.Percentile(99).nanos())
        << "size " << size;
  }
}

TEST(StarTestbed, EthernetOneFlowMatchesEthernetTestbed) {
  TestbedConfig ref_cfg;
  ref_cfg.network = NetworkKind::kEthernet;
  Testbed ref(ref_cfg);
  RpcOptions opt;
  opt.size = 200;
  opt.iterations = 60;
  opt.warmup = 16;
  const RpcResult expected = RunRpcBenchmark(ref, opt);

  StarTestbedConfig star_cfg;
  star_cfg.network = NetworkKind::kEthernet;
  StarTestbed star(star_cfg);
  FlowSpec spec;
  spec.size = 200;
  spec.iterations = 60;
  spec.warmup = 16;
  const WorkloadResult got = RunWorkload(star, {spec});

  EXPECT_EQ(got.rtt.count(), expected.rtt.count());
  EXPECT_EQ(got.rtt.sum().nanos(), expected.rtt.sum().nanos());
}

// Open-loop arrivals are a pure function of the generator config: the same
// seed yields the same Poisson schedule, a different seed a different one.
TEST(Generators, OpenLoopArrivalsDeterministicPerSeed) {
  OpenLoopConfig cfg;
  cfg.flows = 32;
  cfg.clients = 4;
  cfg.servers = 2;
  cfg.seed = 7;
  const std::vector<FlowSpec> a = BuildOpenLoop(cfg);
  const std::vector<FlowSpec> b = BuildOpenLoop(cfg);
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_delay.nanos(), b[i].start_delay.nanos()) << "flow " << i;
    if (i > 0) {
      // Cumulative interarrivals: the schedule is nondecreasing.
      EXPECT_GE(a[i].start_delay.nanos(), a[i - 1].start_delay.nanos());
    }
  }

  cfg.seed = 8;
  const std::vector<FlowSpec> c = BuildOpenLoop(cfg);
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_differs |= a[i].start_delay.nanos() != c[i].start_delay.nanos();
  }
  EXPECT_TRUE(any_differs) << "seed is being ignored by the arrival process";
}

TEST(Generators, ClosedLoopRoundRobinsHostsAndPorts) {
  ClosedLoopConfig cfg;
  cfg.flows = 6;
  cfg.clients = 4;
  cfg.servers = 2;
  const std::vector<FlowSpec> specs = BuildClosedLoop(cfg);
  ASSERT_EQ(specs.size(), 6u);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].client, static_cast<int>(i) % 4);
    EXPECT_EQ(specs[i].server, static_cast<int>(i) % 2);
    EXPECT_EQ(specs[i].start_delay.nanos(), 0);
  }
  const std::vector<FlowSpec> incast = BuildIncast(5, 3, 64, 10, 2);
  for (const FlowSpec& s : incast) {
    EXPECT_EQ(s.server, 0);
  }
}

// Closed loop: a fixed population can never have more flows inside a round
// trip than it has members, and on a clean fabric every member completes.
TEST(FlowDriver, ClosedLoopConcurrencyInvariant) {
  StarTestbedConfig star_cfg;
  star_cfg.clients = 2;
  star_cfg.servers = 2;
  StarTestbed star(star_cfg);

  ClosedLoopConfig cfg;
  cfg.flows = 8;
  cfg.clients = 2;
  cfg.servers = 2;
  cfg.size = 64;
  cfg.iterations = 10;
  cfg.warmup = 2;
  const WorkloadResult result = RunWorkload(star, BuildClosedLoop(cfg));

  EXPECT_EQ(result.completed, 8u);
  EXPECT_EQ(result.aborted, 0u);
  EXPECT_EQ(result.data_mismatches, 0u);
  EXPECT_GE(result.max_concurrent, 1u);
  EXPECT_LE(result.max_concurrent, 8u);
  // Each flow contributes exactly its measured iterations.
  EXPECT_EQ(result.rtt.count(), 8u * 10u);
  for (const FlowResult& flow : result.flows) {
    EXPECT_TRUE(flow.completed != flow.aborted);  // exactly one outcome
    EXPECT_EQ(flow.iterations, 10u);
  }
}

// Exactly-once completion under link impairment: with tolerate_errors set,
// every flow ends in exactly one of {completed, aborted} even when the
// switch fabric is dropping cells, and the totals reconcile.
TEST(FlowDriver, ExactlyOnceCompletionUnderImpairment) {
  StarTestbedConfig star_cfg;
  star_cfg.clients = 2;
  star_cfg.servers = 1;
  StarTestbed star(star_cfg);

  ImpairmentConfig imp;
  imp.drop_prob = 2e-3;
  imp.seed = 11;
  ImpairmentPolicy policy(imp);
  star.atm_switch()->set_output_impairment(&policy);

  ClosedLoopConfig cfg;
  cfg.flows = 6;
  cfg.clients = 2;
  cfg.servers = 1;
  cfg.size = 512;
  cfg.iterations = 8;
  cfg.warmup = 1;
  std::vector<FlowSpec> specs = BuildClosedLoop(cfg);
  for (FlowSpec& s : specs) {
    s.tolerate_errors = true;
  }
  const WorkloadResult result = RunWorkload(star, specs);
  star.atm_switch()->set_output_impairment(nullptr);

  EXPECT_GT(policy.stats().offered, 0u);
  EXPECT_EQ(result.completed + result.aborted, 6u);
  for (const FlowResult& flow : result.flows) {
    EXPECT_TRUE(flow.completed != flow.aborted);
  }
  // Every measured sample came from a flow that got that far; no sample is
  // double counted by the merge.
  uint64_t per_flow_samples = 0;
  for (const FlowResult& flow : result.flows) {
    per_flow_samples += flow.rtt.count();
  }
  EXPECT_EQ(result.rtt.count(), per_flow_samples);
}

// --- bench/capacity determinism matrix -------------------------------------

std::vector<CapacityCell> CapacityGrid() {
  std::vector<CapacityCell> grid;
  for (uint64_t seed : {1, 2}) {
    for (int flows : {1, 4}) {
      CapacityCell cell;
      cell.clients = 2;
      cell.servers = 2;
      cell.flows = flows;
      cell.size = 200;
      cell.iterations = 10;
      cell.warmup = 2;
      cell.seed = seed;
      grid.push_back(cell);
    }
    CapacityCell open;
    open.clients = 2;
    open.servers = 2;
    open.flows = 6;
    open.size = 200;
    open.iterations = 6;
    open.warmup = 1;
    open.discipline = LoadDiscipline::kOpenLoop;
    open.seed = seed;
    grid.push_back(open);
  }
  return grid;
}

std::string SerializeCell(const CapacityCell& cell, const CapacityOutcome& out) {
  std::string row;
  for (const std::string& field : CapacityRow(cell, out)) {
    row += field;
    row += '|';
  }
  row += "samples=" + std::to_string(out.samples);
  row += " events=" + std::to_string(out.sim_events);
  row += " elapsed=" + std::to_string(out.sim_elapsed.nanos());
  return row;
}

std::vector<std::string> RunCapacityGridOn(Executor& exec) {
  const std::vector<CapacityCell> grid = CapacityGrid();
  std::vector<std::function<std::string()>> thunks;
  thunks.reserve(grid.size());
  for (const CapacityCell& cell : grid) {
    thunks.emplace_back([cell] { return SerializeCell(cell, RunCapacityCell(cell)); });
  }
  std::vector<std::string> out;
  for (auto& outcome : exec.Run<std::string>(thunks)) {
    EXPECT_TRUE(outcome.ok()) << outcome.error;
    out.push_back(outcome.ok() ? *outcome.value : outcome.error);
  }
  return out;
}

// TCPLAT_JOBS=1 and TCPLAT_JOBS=4 must produce byte-identical capacity rows
// (submission-order merge), and repeated runs must agree with themselves.
TEST(CapacityDeterminism, SerialAndParallelRowsAreByteIdentical) {
  Executor serial(1);
  Executor parallel(4);
  const std::vector<std::string> a = RunCapacityGridOn(serial);
  const std::vector<std::string> b = RunCapacityGridOn(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "capacity cell " << i << " diverged between 1 and 4 workers";
  }
}

TEST(CapacityDeterminism, RepeatedCellsAreByteIdentical) {
  const CapacityCell cell = CapacityGrid()[1];  // 4 closed-loop flows
  const std::string first = SerializeCell(cell, RunCapacityCell(cell));
  const std::string second = SerializeCell(cell, RunCapacityCell(cell));
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tcplat
