file(REMOVE_RECURSE
  "CMakeFiles/tca100_test.dir/tca100_test.cc.o"
  "CMakeFiles/tca100_test.dir/tca100_test.cc.o.d"
  "tca100_test"
  "tca100_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca100_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
