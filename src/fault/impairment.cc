#include "src/fault/impairment.h"

#include "src/base/check.h"

namespace tcplat {

ImpairmentStats& ImpairmentStats::operator+=(const ImpairmentStats& o) {
  offered += o.offered;
  delivered += o.delivered;
  dropped += o.dropped;
  duplicated += o.duplicated;
  reordered += o.reordered;
  jittered += o.jittered;
  ge_bursts += o.ge_bursts;
  bytes_offered += o.bytes_offered;
  bytes_dropped += o.bytes_dropped;
  return *this;
}

ImpairmentPolicy::ImpairmentPolicy(const ImpairmentConfig& config)
    : config_(config), rng_(config.seed) {
  TCPLAT_CHECK_GE(config.drop_prob, 0.0);
  TCPLAT_CHECK_LE(config.drop_prob, 1.0);
  TCPLAT_CHECK_GE(config.ge_bad_to_good, 0.0);
  TCPLAT_CHECK_GE(config.reorder_hold.nanos(), 0);
  TCPLAT_CHECK_GE(config.duplicate_lag.nanos(), 0);
  TCPLAT_CHECK_GE(config.jitter_max.nanos(), 0);
}

LinkImpairment::Verdict ImpairmentPolicy::OnTransmit(SimTime departure,
                                                     const std::vector<uint8_t>& data) {
  ++stats_.offered;
  stats_.bytes_offered += data.size();

  Verdict verdict;

  // Each feature draws from the stream only when configured, so one policy's
  // schedule is a pure function of (seed, offered sequence) for its config.
  bool drop = false;
  if (config_.ge_bad_loss > 0.0) {
    if (ge_bad_) {
      if (rng_.NextBool(config_.ge_bad_to_good)) {
        ge_bad_ = false;
      }
    } else if (rng_.NextBool(config_.ge_good_to_bad)) {
      ge_bad_ = true;
      ++stats_.ge_bursts;
    }
    drop = rng_.NextBool(ge_bad_ ? config_.ge_bad_loss : config_.ge_good_loss);
  }
  if (!drop && config_.drop_prob > 0.0) {
    drop = rng_.NextBool(config_.drop_prob);
  }
  if (drop) {
    ++stats_.dropped;
    stats_.bytes_dropped += data.size();
    if (tracer_ != nullptr) {
      tracer_->RecordPacket(trace_id_, TraceLayer::kLink, TraceEventKind::kImpairDrop,
                            departure, 0, stats_.offered, data.size());
    }
    verdict.drop = true;
    return verdict;
  }

  if (config_.duplicate_prob > 0.0 && rng_.NextBool(config_.duplicate_prob)) {
    verdict.duplicate = true;
    verdict.duplicate_lag = config_.duplicate_lag;
    ++stats_.duplicated;
    if (tracer_ != nullptr) {
      tracer_->RecordPacket(trace_id_, TraceLayer::kLink, TraceEventKind::kImpairDup,
                            departure, 0, stats_.offered, data.size(), config_.duplicate_lag);
    }
  }
  if (config_.reorder_prob > 0.0 && rng_.NextBool(config_.reorder_prob)) {
    verdict.extra_delay += config_.reorder_hold;
    ++stats_.reordered;
  }
  if (config_.jitter_max.nanos() > 0) {
    const SimDuration jitter =
        SimDuration::FromNanos(static_cast<int64_t>(
            rng_.NextBelow(static_cast<uint64_t>(config_.jitter_max.nanos()))));
    verdict.extra_delay += jitter;
    if (jitter.nanos() > 0) {
      ++stats_.jittered;
    }
  }
  if (verdict.extra_delay.nanos() > 0 && tracer_ != nullptr) {
    tracer_->RecordPacket(trace_id_, TraceLayer::kLink, TraceEventKind::kImpairDelay,
                          departure, 0, stats_.offered, data.size(), verdict.extra_delay);
  }

  ++stats_.delivered;
  return verdict;
}

void ImpairmentPolicy::RegisterMetrics(MetricsRegistry& metrics, std::string_view prefix) {
  const std::string base = "link." + std::string(prefix) + ".";
  if (metrics.contains(base + "offered")) {
    return;
  }
  metrics.AddCounterView(base + "offered", &stats_.offered);
  metrics.AddCounterView(base + "delivered", &stats_.delivered);
  metrics.AddCounterView(base + "dropped", &stats_.dropped);
  metrics.AddCounterView(base + "duplicated", &stats_.duplicated);
  metrics.AddCounterView(base + "reordered", &stats_.reordered);
  metrics.AddCounterView(base + "jittered", &stats_.jittered);
  metrics.AddCounterView(base + "ge_bursts", &stats_.ge_bursts);
  metrics.AddCounterView(base + "bytes_offered", &stats_.bytes_offered);
  metrics.AddCounterView(base + "bytes_dropped", &stats_.bytes_dropped);
}

}  // namespace tcplat
