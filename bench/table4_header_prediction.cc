// Regenerates Table 4 / Figure 1: round-trip latency with header prediction
// (PCB cache + TCP input fast path) enabled vs. disabled.

#include <cstdio>
#include <vector>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"

namespace tcplat {
namespace {

RpcResult Measure(bool prediction, size_t size) {
  TestbedConfig cfg;
  cfg.tcp.header_prediction = prediction;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  return RunRpcBenchmark(tb, opt);
}

struct Pair {
  RpcResult off;
  RpcResult on;
};

void Run() {
  std::printf("Table 4 / Figure 1: Effects of Header Prediction (round-trip us)\n\n");
  // One executor pass over the size grid; the table and the ASCII figure
  // below both render from the same merged results (the serial version
  // re-measured for the figure — same numbers, twice the work).
  const std::vector<Pair> grid = ParallelMap<Pair>(paper::kSizes.size(), [](size_t i) {
    return Pair{Measure(false, paper::kSizes[i]), Measure(true, paper::kSizes[i])};
  });
  TextTable t({"Size (bytes)", "No Prediction", "Prediction", "Decrease (%)", "paper NoPred",
               "paper Pred", "paper Decr (%)", "fast-path hits/iter"});
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    const size_t size = paper::kSizes[i];
    const RpcResult& off = grid[i].off;
    const RpcResult& on = grid[i].on;
    const double off_us = off.MeanRtt().micros();
    const double on_us = on.MeanRtt().micros();
    const double hits_per_iter =
        static_cast<double>(on.client_tcp.predict_ack_hits + on.client_tcp.predict_data_hits +
                            on.server_tcp.predict_ack_hits + on.server_tcp.predict_data_hits) /
        static_cast<double>(on.iterations);
    t.AddRow({std::to_string(size), TextTable::Us(off_us), TextTable::Us(on_us),
              TextTable::Pct(100.0 * (off_us - on_us) / off_us),
              TextTable::Us(paper::kTable4NoPrediction[i]),
              TextTable::Us(paper::kTable4Prediction[i]),
              TextTable::Pct(100.0 *
                             (paper::kTable4NoPrediction[i] - paper::kTable4Prediction[i]) /
                             paper::kTable4NoPrediction[i]),
              TextTable::Num(hits_per_iter, 1)});
  }
  t.Print();
  std::printf(
      "\nASCII Figure 1 (round-trip time vs size; P = prediction, N = no prediction):\n");
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    const int n_cols = static_cast<int>(grid[i].off.MeanRtt().micros() / 150.0);
    const int p_cols = static_cast<int>(grid[i].on.MeanRtt().micros() / 150.0);
    std::printf("%5zu N |%.*s\n", paper::kSizes[i], n_cols,
                "############################################################################"
                "####################");
    std::printf("      P |%.*s\n", p_cols,
                "............................................................................"
                "....................");
  }
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
