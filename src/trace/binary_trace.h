// Compact binary trace format (the "TLBT" stream).
//
// The Perfetto-JSON text tracer costs ~90 bytes per event and a 64-byte
// in-memory struct; neither survives the roadmap's 10^5-flow fabrics at
// millions of events per second. This module defines a compact append-only
// record stream that a Tracer (one per shard — shard confinement means no
// cross-shard synchronization on the hot path) encodes into directly, plus
// a deterministic post-hoc merge and a streaming reader, so the existing
// Perfetto/CSV exporters and the causal-graph/attribution consumers are a
// lossless round trip away.
//
// Stream layout (all integers little-endian):
//
//   header:  magic "TLBT" (4 bytes)
//            u16   version (currently 1)
//            varint host_count, then per host: varint name_len + name bytes
//            varint record_count
//   records: record_count encoded TraceEvents, each:
//            varint zigzag(ts_ns - previous record's ts_ns)
//            u8 kind, u8 layer, u8 span, u8 host   (fixed-width tag block)
//            varint flow
//            varint packet
//            varint bytes
//            varint zigzag(dur_ns)
//            varint zigzag(self_ns)
//
// Timestamps are delta-encoded against the previous record in the same
// stream (the first record's delta is against 0). Deltas are zigzag-encoded
// because a sampled stream may legitimately emit a deferred event after a
// later-timestamped one. Everything else is plain LEB128 varint; the
// four enum/host bytes stay fixed-width so corrupt streams fail fast on
// range checks rather than desynchronizing.
//
// Determinism: encoding is a pure function of the event sequence, and
// MergeBinaryShards consumes per-shard streams head-to-head in
// (timestamp, shard index, per-shard sequence) order — the same order the
// sharded engine's stable timestamp sort produced — so the merged bytes are
// identical for any TCPLAT_JOBS value.

#ifndef SRC_TRACE_BINARY_TRACE_H_
#define SRC_TRACE_BINARY_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/tracer.h"

namespace tcplat {

inline constexpr char kBinaryTraceMagic[4] = {'T', 'L', 'B', 'T'};
inline constexpr uint16_t kBinaryTraceVersion = 1;

// Append-only encoder for the record section (no header). One lives inside
// each recording Tracer; the full stream is assembled by SealBinaryTrace.
//
// Mid-run disk spill: EnableSpill bounds the resident buffer. Whenever the
// buffer reaches the segment threshold, the full segment is appended to the
// spill file and the buffer is freed. The timestamp-delta chain runs across
// the segment boundary untouched (prev_ts_ survives the spill), so
// spilled-segments + resident-bytes re-concatenate to the exact byte stream
// an unspilled writer would have produced — readers and the shard merge see
// no difference, and memory stays O(segment) for arbitrarily long captures.
class BinaryTraceWriter {
 public:
  BinaryTraceWriter() = default;
  ~BinaryTraceWriter();
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void Append(const TraceEvent& ev);
  void Clear();

  // Spills full segments to `path` once the resident buffer reaches
  // `segment_bytes`. Returns false if the file cannot be created. Must be
  // enabled at most once per writer.
  bool EnableSpill(const std::string& path, size_t segment_bytes);
  bool spilling() const { return spill_file_ != nullptr; }
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  uint64_t spill_segments() const { return spill_segments_; }

  // Resident (not yet spilled) record bytes.
  const std::string& data() const { return data_; }
  // The full record section: spilled segments read back from disk, followed
  // by the resident bytes. Identical to data() when spill is off. CHECKs on
  // spill-file I/O errors (the file is this writer's own output).
  std::string ConsolidatedRecords() const;
  uint64_t count() const { return count_; }
  // Resident-buffer footprint by content size (not capacity), so the number
  // is identical across platforms/allocators and can be gated exactly.
  // Spilled bytes are deliberately excluded: they no longer occupy memory.
  size_t SizeBytes() const { return data_.size(); }
  // Total encoded bytes, spilled + resident.
  size_t TotalBytes() const { return spilled_bytes_ + data_.size(); }

 private:
  void MaybeSpill();

  std::string data_;
  int64_t prev_ts_ = 0;
  uint64_t count_ = 0;

  std::FILE* spill_file_ = nullptr;
  std::string spill_path_;
  size_t spill_segment_bytes_ = 0;
  uint64_t spilled_bytes_ = 0;
  uint64_t spill_segments_ = 0;
};

// Full stream = header(hosts, records.count()) + the full record section
// (spilled segments + resident bytes — identical to the unspilled bytes).
std::string SealBinaryTrace(const std::vector<std::string>& host_names,
                            const BinaryTraceWriter& records);

// Streaming decoder for a record section (no header); used by the reader,
// the shard merge, and tests. `count` bounds how many records to decode.
class BinaryRecordCursor {
 public:
  BinaryRecordCursor(std::string_view records, uint64_t count)
      : data_(records), remaining_(count) {}

  // Decodes the next record into *ev. Returns false at end-of-stream or on
  // a malformed record (distinguish with error()).
  bool Next(TraceEvent* ev);

  bool error() const { return error_ != nullptr; }
  const char* error_message() const { return error_ == nullptr ? "" : error_; }
  uint64_t remaining() const { return remaining_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  int64_t prev_ts_ = 0;
  uint64_t remaining_ = 0;
  const char* error_ = nullptr;
};

// Streaming decoder for a full sealed stream. Parses the header eagerly;
// ok() is false on a bad magic/version/truncated header. Next() then yields
// records until the advertised count is exhausted, flagging error() if the
// stream is truncated or a field is out of range.
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(std::string_view blob);

  bool ok() const { return ok_; }
  const char* error_message() const;
  const std::vector<std::string>& host_names() const { return host_names_; }
  uint64_t record_count() const { return record_count_; }

  bool Next(TraceEvent* ev);
  bool error() const { return !ok_ || cursor_.error(); }

 private:
  bool ok_ = false;
  const char* header_error_ = nullptr;
  std::vector<std::string> host_names_;
  uint64_t record_count_ = 0;
  BinaryRecordCursor cursor_{std::string_view(), 0};
};

// One shard's contribution to a merge: its record stream plus the
// local-host-id -> canonical-host-id table (tracer host registration is
// per shard, the merged stream uses the canonical serial-order ids).
struct BinaryShardStream {
  const BinaryTraceWriter* records = nullptr;
  const std::vector<uint8_t>* host_remap = nullptr;  // nullptr = identity
};

// Deterministically merges per-shard record streams into `out` (appending)
// in (timestamp, shard index, per-shard sequence) order, remapping host
// ids. With timestamp-monotonic inputs this is an exact global timestamp
// sort with the same tie-break the serial stable-sort merge used; the
// output is a pure function of the inputs, never of thread scheduling.
// Returns false (leaving a partial append) if any input stream is corrupt.
bool MergeBinaryShards(const std::vector<BinaryShardStream>& shards, BinaryTraceWriter* out);

// Decodes a full sealed stream back into `out` (which must be an empty,
// full-recording Tracer): registers the host table and appends every
// record, making the legacy exporters (ToPerfettoJson/ToCsv) and the batch
// causal-graph path available for binary captures. Returns false on a
// corrupt or truncated stream.
bool DecodeBinaryTrace(std::string_view blob, Tracer* out);

}  // namespace tcplat

#endif  // SRC_TRACE_BINARY_TRACE_H_
