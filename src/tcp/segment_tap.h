// A tcpdump-style segment tap.
//
// Attach one to a TcpStack to record every segment the stack sends or
// receives, with a text formatter for golden-output debugging — the
// simulated stack's equivalent of watching the wire. Used by tests and
// available to examples; recording costs no simulated time (the observer
// is not part of the machine).

#ifndef SRC_TCP_SEGMENT_TAP_H_
#define SRC_TCP_SEGMENT_TAP_H_

#include <deque>
#include <string>
#include <vector>

#include "src/net/wire.h"
#include "src/sim/time.h"

namespace tcplat {

class SegmentTap {
 public:
  struct Record {
    SimTime time;
    bool outbound = false;
    SockAddr src;
    SockAddr dst;
    TcpHeader header;
    size_t payload_len = 0;
  };

  explicit SegmentTap(size_t capacity = 4096) : capacity_(capacity) {}

  void OnSegment(Record record) {
    if (records_.size() == capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(std::move(record));
  }

  const std::deque<Record>& records() const { return records_; }
  uint64_t dropped() const { return dropped_; }
  void Clear() { records_.clear(); }

  // "1.234567 OUT 10.0.0.1:20000 > 10.0.0.2:5001: Flags [S], seq 64001,
  //  win 8192, options [mss 9148], length 0"
  static std::string Format(const Record& record);

  // The whole capture, one line per segment.
  std::string Dump() const;

 private:
  size_t capacity_;
  std::deque<Record> records_;
  uint64_t dropped_ = 0;
};

}  // namespace tcplat

#endif  // SRC_TCP_SEGMENT_TAP_H_
