file(REMOVE_RECURSE
  "CMakeFiles/native_checksum.dir/native_checksum.cc.o"
  "CMakeFiles/native_checksum.dir/native_checksum.cc.o.d"
  "native_checksum"
  "native_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
