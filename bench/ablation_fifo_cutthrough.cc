// Ablation A2: the TCA-100's cut-through transmit FIFO vs a hypothetical
// store-and-forward adapter that releases a PDU to the fiber only once the
// driver finishes writing it. Cut-through overlaps the driver's copy loop
// with wire time — the §4.1.1 design constraint that makes a driver-level
// combined copy+checksum impossible on transmit is also what makes the
// adapter fast.

#include <cstdio>
#include <vector>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"

namespace tcplat {
namespace {

RpcResult Measure(bool cut_through, size_t size) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  tb.client_adapter()->set_cut_through(cut_through);
  tb.server_adapter()->set_cut_through(cut_through);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 100;
  return RunRpcBenchmark(tb, opt);
}

void Run() {
  std::printf("Ablation A2: TX FIFO cut-through vs store-and-forward (round-trip us)\n\n");
  TextTable t({"Size (bytes)", "Cut-through", "Store-and-forward", "Penalty (%)"});
  struct Pair {
    double ct;
    double sf;
  };
  const std::vector<Pair> rows = ParallelMap<Pair>(paper::kSizes.size(), [](size_t i) {
    return Pair{Measure(true, paper::kSizes[i]).MeanRtt().micros(),
                Measure(false, paper::kSizes[i]).MeanRtt().micros()};
  });
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    const auto& [ct, sf] = rows[i];
    t.AddRow({std::to_string(paper::kSizes[i]), TextTable::Us(ct), TextTable::Us(sf),
              TextTable::Pct(100.0 * (sf - ct) / ct, 1)});
  }
  t.Print();
  std::printf("\nThe penalty grows with size: store-and-forward serializes the driver's\n"
              "per-cell copy loop with the wire instead of overlapping them.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
