// Deterministic error injectors for the §4.2.1 error-source analysis.
//
// The paper enumerates four sources of errors a TCP checksum layered over a
// link CRC could catch: (1) switch transfer errors, (2) host/controller copy
// errors, (3) corrupt data from external gateways, and (4) link errors whose
// bit pattern defeats the CRC. These injectors synthesize sources 2 and 4
// (and generic link noise); the experiment driver attributes each corruption
// to the layer that caught it — or to the application check if none did.

#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/random.h"
#include "src/link/wire.h"

namespace tcplat {

// Shared count of corruptions actually applied.
struct InjectionCounter {
  uint64_t injected = 0;
};

// Flips `bits` random bits inside the AAL3/4 SAR payload region of an ATM
// cell (bytes 5..52; the cell-header HEC protects the first five bytes)
// with probability `prob` per cell.
CorruptFn MakeCellBitFlipper(std::shared_ptr<Rng> rng, std::shared_ptr<InjectionCounter> counter,
                             double prob, int bits = 1);

// Flips `bits` random bits anywhere in an Ethernet frame with probability
// `prob` per frame.
CorruptFn MakeFrameBitFlipper(std::shared_ptr<Rng> rng,
                              std::shared_ptr<InjectionCounter> counter, double prob,
                              int bits = 1);

// §4.2.1 source (4): XORs the CRC-10 generator polynomial's bit pattern into
// a random position of the cell's SAR payload. The resulting message differs
// from the original by a multiple of the generator, so the per-cell CRC-10
// cannot detect it — only an end-to-end check (the TCP checksum, or the
// application) can.
CorruptFn MakeCrc10DefeatingCorruptor(std::shared_ptr<Rng> rng,
                                      std::shared_ptr<InjectionCounter> counter, double prob);

// §4.2.1 source (2): corrupts a reassembled PDU during the device-to-host
// copy (one flipped bit in the transport payload region) with probability
// `prob` per PDU. Attach via AtmNetIf::set_controller_fault_hook.
std::function<void(std::vector<uint8_t>&)> MakeControllerCorruptor(
    std::shared_ptr<Rng> rng, std::shared_ptr<InjectionCounter> counter, double prob);

// Drops each unit with probability `prob`. Attach via Wire::set_drop_hook
// (runs after the corruption hook, so corrupt-then-drop composes without
// extra plumbing). For the richer loss models (bursty loss, duplication,
// reordering, jitter) use ImpairmentPolicy from src/fault/impairment.h.
DropFn MakeUniformDropper(std::shared_ptr<Rng> rng, std::shared_ptr<InjectionCounter> counter,
                          double prob);

}  // namespace tcplat

#endif  // SRC_FAULT_INJECTOR_H_
