#include "src/ip/ip_stack.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"

namespace tcplat {
namespace {

// Trace flow id for IP-layer packet events: (src<<32)|dst. Header ids are
// per-stack counters, so (this flow, hdr.id) is what identifies one datagram
// network-wide — it lets trace consumers match a kPktTx to the kPktRx on the
// destination host.
uint64_t IpTraceFlow(const Ipv4Header& hdr) {
  return (static_cast<uint64_t>(hdr.src) << 32) | hdr.dst;
}

}  // namespace

IpStack::IpStack(Host* host, Ipv4Addr addr) : host_(host), addr_(addr) {
  TCPLAT_CHECK(host != nullptr);
  host_->RegisterNetisr([this] { IpIntr(); });

  MetricsRegistry& m = host_->metrics();
  if (!m.contains("ip.packets_sent")) {
    m.AddCounterView("ip.packets_sent", &stats_.packets_sent);
    m.AddCounterView("ip.packets_received", &stats_.packets_received);
    m.AddCounterView("ip.fragments_sent", &stats_.fragments_sent);
    m.AddCounterView("ip.fragments_received", &stats_.fragments_received);
    m.AddCounterView("ip.reassembled", &stats_.reassembled);
    m.AddCounterView("ip.header_checksum_errors", &stats_.header_checksum_errors);
    m.AddCounterView("ip.no_protocol", &stats_.no_protocol);
    m.AddCounterView("ip.bad_length", &stats_.bad_length);
    m.AddCounterView("ip.not_for_us", &stats_.not_for_us);
    m.AddCounterView("ip.forwarded", &stats_.forwarded);
    m.AddCounterView("ip.no_route", &stats_.no_route);
    m.AddCounterView("ip.ttl_expired", &stats_.ttl_expired);
  }
  ipq_wait_hist_ = &m.histogram("ip.ipq_wait_ns");
}

void IpStack::AttachNetIf(NetIf* nif) {
  TCPLAT_CHECK(nif != nullptr);
  interfaces_.push_back(nif);
}

void IpStack::AddRoute(Ipv4Addr network, Ipv4Addr mask, NetIf* nif, Ipv4Addr next_hop) {
  TCPLAT_CHECK(nif != nullptr);
  routes_.push_back(Route{network & mask, mask, nif, next_hop});
}

NetIf* IpStack::LookupRoute(Ipv4Addr dst, Ipv4Addr* next_hop) {
  TCPLAT_CHECK(next_hop != nullptr);
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    if ((dst & r.mask) == r.network && (best == nullptr || r.mask > best->mask)) {
      best = &r;
    }
  }
  if (best != nullptr) {
    *next_hop = best->next_hop != 0 ? best->next_hop : dst;
    return best->nif;
  }
  if (interfaces_.size() == 1) {
    // Single-homed default: everything is directly reachable on the wire.
    *next_hop = dst;
    return interfaces_.front();
  }
  return nullptr;
}

void IpStack::RegisterProtocol(uint8_t proto, IpProtocolHandler* handler) {
  TCPLAT_CHECK(handler != nullptr);
  TCPLAT_CHECK(protocols_.find(proto) == protocols_.end()) << "protocol already registered";
  protocols_[proto] = handler;
}

void IpStack::SendOnePacket(MbufPtr packet, Ipv4Header hdr, Ipv4Addr dst) {
  hdr.FillChecksum();
  Mbuf* first = packet.get();
  if (first->leading_space() >= kIpv4HeaderBytes) {
    hdr.Serialize(first->Prepend(kIpv4HeaderBytes));
  } else {
    // No room in front: prepend a fresh header mbuf (M_PREPEND slow path).
    MbufPtr hm = host_->pool().GetHeader();
    hdr.Serialize(hm->Append(kIpv4HeaderBytes));
    hm->SetNext(std::move(packet));
    packet = std::move(hm);
  }
  ++stats_.packets_sent;
  host_->TracePacket(TraceLayer::kIp, TraceEventKind::kPktTx, IpTraceFlow(hdr), hdr.id,
                     hdr.total_length);
  Ipv4Addr next_hop = 0;
  NetIf* nif = LookupRoute(dst, &next_hop);
  if (nif == nullptr) {
    ++stats_.no_route;
    host_->TracePacket(TraceLayer::kIp, TraceEventKind::kDrop, IpTraceFlow(hdr), hdr.id,
                       hdr.total_length);
    host_->pool().FreeChain(std::move(packet));
    return;
  }
  nif->Output(std::move(packet), next_hop);
}

void IpStack::Output(MbufPtr payload, Ipv4Addr src, Ipv4Addr dst, uint8_t proto, uint8_t ttl) {
  TCPLAT_CHECK(!interfaces_.empty()) << "no interface attached";
  TCPLAT_CHECK(payload != nullptr);
  const size_t payload_len = ChainLength(payload.get());
  Ipv4Addr route_hop = 0;
  NetIf* route_nif = LookupRoute(dst, &route_hop);
  const size_t mtu = route_nif != nullptr ? route_nif->mtu() : interfaces_.front()->mtu();

  Ipv4Header hdr;
  hdr.id = next_id_++;
  hdr.ttl = ttl;
  hdr.protocol = proto;
  hdr.src = src;
  hdr.dst = dst;

  if (payload_len + kIpv4HeaderBytes <= mtu) {
    {
      ScopedSpan span(&host_->tracker(), SpanId::kTxIp);
      host_->cpu().Charge(host_->cpu().profile().ip_output);
      hdr.total_length = static_cast<uint16_t>(payload_len + kIpv4HeaderBytes);
    }
    SendOnePacket(std::move(payload), hdr, dst);
    return;
  }

  // Fragmentation path. The transports in this stack pick their MSS from the
  // interface MTU, so only tests and raw senders exercise this.
  const size_t max_frag_payload = ((mtu - kIpv4HeaderBytes) / 8) * 8;
  TCPLAT_CHECK_GT(max_frag_payload, 0u);
  std::vector<uint8_t> flat = ChainToVector(payload.get());
  host_->pool().FreeChain(std::move(payload));

  size_t off = 0;
  while (off < flat.size()) {
    const size_t take = std::min(max_frag_payload, flat.size() - off);
    MbufPtr frag;
    {
      ScopedSpan span(&host_->tracker(), SpanId::kTxIp);
      host_->cpu().Charge(host_->cpu().profile().ip_output);
      ++stats_.fragments_sent;
      // Copy the fragment's bytes into fresh buffers.
      MbufPtr head;
      size_t copied = 0;
      while (copied < take) {
        MbufPtr m = take - copied > kMbufDataBytes ? host_->pool().GetCluster()
                                                   : host_->pool().Get();
        const size_t chunk = std::min(take - copied, m->capacity());
        std::memcpy(m->Append(chunk).data(), flat.data() + off + copied, chunk);
        host_->cpu().Charge(host_->cpu().profile().kernel_bcopy, chunk);
        copied += chunk;
        ChainAppend(&head, std::move(m));
      }
      frag = std::move(head);
    }
    Ipv4Header fh = hdr;
    fh.total_length = static_cast<uint16_t>(take + kIpv4HeaderBytes);
    fh.frag_offset = static_cast<uint16_t>(off / 8);
    fh.more_fragments = off + take < flat.size();
    SendOnePacket(std::move(frag), fh, dst);
    off += take;
  }
}

void IpStack::InputFromDriver(MbufPtr packet) {
  TCPLAT_CHECK(packet != nullptr);
  host_->cpu().Charge(host_->cpu().profile().ipq_enqueue);
  ipintrq_.push_back(Queued{std::move(packet), host_->CurrentTime()});
  host_->TracePacket(TraceLayer::kIp, TraceEventKind::kEnqueue, 0, ipintrq_.size());
  host_->RaiseNetisr();
}

void IpStack::IpIntr() {
  while (!ipintrq_.empty()) {
    Queued q = std::move(ipintrq_.front());
    ipintrq_.pop_front();
    // The paper's "IPQ" row: time from driver enqueue + softint request to
    // the packet being pulled off the queue at softint level.
    const SimDuration wait = host_->CurrentTime() - q.enqueued_at;
    host_->tracker().AddInterval(SpanId::kRxIpq, wait);
    ipq_wait_hist_->Add(wait.nanos());
    host_->TracePacket(TraceLayer::kIp, TraceEventKind::kDequeue, 0, ipintrq_.size(), 0, wait);
    HandlePacket(std::move(q.packet));
  }
}

void IpStack::HandlePacket(MbufPtr packet) {
  Ipv4Header hdr;
  IpProtocolHandler* handler = nullptr;
  {
    ScopedSpan span(&host_->tracker(), SpanId::kRxIp);
    host_->cpu().Charge(host_->cpu().profile().ip_input);

    Mbuf* first = packet.get();
    TCPLAT_CHECK_GE(first->len(), kIpv4HeaderBytes) << "driver must deliver contiguous IP header";
    auto parsed = Ipv4Header::Parse(first->bytes());
    if (!parsed.has_value()) {
      ++stats_.bad_length;
      host_->TracePacket(TraceLayer::kIp, TraceEventKind::kDrop);
      host_->pool().FreeChain(std::move(packet));
      return;
    }
    hdr = *parsed;
    if (!Ipv4Header::VerifyChecksum(first->bytes())) {
      ++stats_.header_checksum_errors;
      host_->TracePacket(TraceLayer::kIp, TraceEventKind::kChecksumError, IpTraceFlow(hdr), hdr.id,
                         hdr.total_length);
      host_->pool().FreeChain(std::move(packet));
      return;
    }
    if (hdr.dst != addr_) {
      if (forwarding_) {
        ForwardPacket(std::move(packet), hdr);
      } else {
        ++stats_.not_for_us;
        host_->TracePacket(TraceLayer::kIp, TraceEventKind::kDrop, IpTraceFlow(hdr), hdr.id,
                           hdr.total_length);
        host_->pool().FreeChain(std::move(packet));
      }
      return;
    }
    const size_t chain_len = ChainLength(packet.get());
    if (chain_len < hdr.total_length) {
      ++stats_.bad_length;
      host_->TracePacket(TraceLayer::kIp, TraceEventKind::kDrop, IpTraceFlow(hdr), hdr.id,
                         hdr.total_length);
      host_->pool().FreeChain(std::move(packet));
      return;
    }
    if (chain_len > hdr.total_length) {
      // Link-layer padding (e.g. Ethernet minimum frame): trim the tail.
      size_t excess = chain_len - hdr.total_length;
      while (excess > 0) {
        Mbuf* m = packet.get();
        Mbuf* prev = nullptr;
        while (m->next() != nullptr) {
          prev = m;
          m = m->next();
        }
        const size_t cut = std::min(excess, m->len());
        m->TrimBack(cut);
        excess -= cut;
        if (m->len() == 0 && prev != nullptr) {
          host_->pool().FreeChain(prev->TakeNext());
        }
      }
    }

    if (hdr.more_fragments || hdr.frag_offset != 0) {
      ++stats_.fragments_received;
      packet = AddFragment(hdr, std::move(packet));
      if (packet == nullptr) {
        return;  // datagram not yet complete
      }
      ++stats_.reassembled;
      auto reparsed = Ipv4Header::Parse(packet->bytes());
      TCPLAT_CHECK(reparsed.has_value());
      hdr = *reparsed;
    }

    auto it = protocols_.find(hdr.protocol);
    if (it == protocols_.end()) {
      ++stats_.no_protocol;
      host_->TracePacket(TraceLayer::kIp, TraceEventKind::kDrop, IpTraceFlow(hdr), hdr.id,
                         hdr.total_length);
      host_->pool().FreeChain(std::move(packet));
      return;
    }
    handler = it->second;
    ++stats_.packets_received;
    host_->TracePacket(TraceLayer::kIp, TraceEventKind::kPktRx, IpTraceFlow(hdr), hdr.id,
                       hdr.total_length);
  }
  handler->IpInput(std::move(packet), hdr);
}

void IpStack::ForwardPacket(MbufPtr packet, const Ipv4Header& hdr) {
  MbufPool& pool = host_->pool();
  Cpu& cpu = host_->cpu();
  // ip_forward: re-route, decrement TTL, fix the header checksum, resend.
  // Cost-wise this is an input already charged plus an output's worth of
  // work on the gateway's CPU.
  cpu.Charge(cpu.profile().ip_output);

  if (hdr.ttl <= 1) {
    ++stats_.ttl_expired;
    const std::vector<uint8_t> original = ChainToVector(packet.get());
    pool.FreeChain(std::move(packet));
    if (icmp_error_sender_) {
      icmp_error_sender_(11, 0, original);  // ICMP time exceeded in transit
    }
    return;
  }
  Ipv4Addr next_hop = 0;
  NetIf* nif = LookupRoute(hdr.dst, &next_hop);
  if (nif == nullptr) {
    ++stats_.no_route;
    const std::vector<uint8_t> original = ChainToVector(packet.get());
    pool.FreeChain(std::move(packet));
    if (icmp_error_sender_) {
      icmp_error_sender_(3, 0, original);  // ICMP destination unreachable
    }
    return;
  }

  // The packet dwells in gateway memory between the two links: the §4.2.1
  // source-(3) corruption window. Rebuild the packet from (possibly
  // corrupted) flat bytes with the updated TTL.
  std::vector<uint8_t> flat = ChainToVector(packet.get());
  pool.FreeChain(std::move(packet));
  // Link padding from the inbound media must not be forwarded.
  flat.resize(hdr.total_length);
  if (forward_corrupt_) {
    forward_corrupt_(flat);
  }
  Ipv4Header out_hdr = *Ipv4Header::Parse(flat);
  out_hdr.ttl = static_cast<uint8_t>(out_hdr.ttl - 1);

  // Builds one outbound packet from header fields + payload bytes and
  // hands it to the egress interface.
  auto emit = [this, &pool, &cpu, nif, next_hop](Ipv4Header h,
                                                 std::span<const uint8_t> payload) {
    h.FillChecksum();
    MbufPtr head = pool.GetHeader();
    h.Serialize(head->Append(kIpv4HeaderBytes));
    size_t off = 0;
    const bool clusters = payload.size() > kClusterThreshold;
    while (off < payload.size()) {
      MbufPtr m = clusters ? pool.GetCluster() : pool.Get();
      const size_t take = std::min(payload.size() - off, m->capacity());
      std::memcpy(m->Append(take).data(), payload.data() + off, take);
      cpu.Charge(cpu.profile().kernel_bcopy, take);
      off += take;
      ChainAppend(&head, std::move(m));
    }
    nif->Output(std::move(head), next_hop);
  };

  const std::span<const uint8_t> payload(flat.data() + kIpv4HeaderBytes,
                                         flat.size() - kIpv4HeaderBytes);
  if (flat.size() <= nif->mtu()) {
    emit(out_hdr, payload);
    ++stats_.forwarded;
    return;
  }

  // The egress link has a smaller MTU (an ATM-to-Ethernet gateway, say):
  // fragment — or drop, per the DF bit.
  if (out_hdr.dont_fragment) {
    ++stats_.no_route;  // counted as undeliverable
    if (icmp_error_sender_) {
      icmp_error_sender_(3, 4, flat);  // fragmentation needed and DF set
    }
    return;
  }
  const size_t max_frag = ((nif->mtu() - kIpv4HeaderBytes) / 8) * 8;
  size_t off = 0;
  while (off < payload.size()) {
    const size_t take = std::min(max_frag, payload.size() - off);
    Ipv4Header fh = out_hdr;
    fh.total_length = static_cast<uint16_t>(take + kIpv4HeaderBytes);
    // Preserve any original fragment offset (fragments of fragments).
    fh.frag_offset = static_cast<uint16_t>(out_hdr.frag_offset + off / 8);
    fh.more_fragments = out_hdr.more_fragments || off + take < payload.size();
    cpu.Charge(cpu.profile().ip_output);
    ++stats_.fragments_sent;
    emit(fh, payload.subspan(off, take));
    off += take;
  }
  ++stats_.forwarded;
}

MbufPtr IpStack::AddFragment(const Ipv4Header& hdr, MbufPtr packet) {
  const ReassemblyKey key{hdr.src, hdr.dst, hdr.id, hdr.protocol};
  auto& frags = reassembly_[key];

  Fragment f;
  f.offset_bytes = static_cast<uint16_t>(hdr.frag_offset * 8);
  f.last = !hdr.more_fragments;
  const size_t data_len = hdr.total_length - kIpv4HeaderBytes;
  f.data.resize(data_len);
  ChainCopyOut(packet.get(), kIpv4HeaderBytes, f.data);
  host_->pool().FreeChain(std::move(packet));
  frags.push_back(std::move(f));

  // Complete iff the offsets tile [0, end) and the last fragment arrived.
  std::sort(frags.begin(), frags.end(),
            [](const Fragment& a, const Fragment& b) { return a.offset_bytes < b.offset_bytes; });
  size_t expect = 0;
  bool saw_last = false;
  for (const Fragment& frag : frags) {
    if (frag.offset_bytes != expect) {
      return nullptr;
    }
    expect += frag.data.size();
    saw_last = frag.last;
  }
  if (!saw_last) {
    return nullptr;
  }

  // Rebuild one datagram: header mbuf + payload in clusters.
  host_->cpu().Charge(host_->cpu().profile().kernel_bcopy, expect);
  Ipv4Header full = hdr;
  full.more_fragments = false;
  full.frag_offset = 0;
  full.total_length = static_cast<uint16_t>(expect + kIpv4HeaderBytes);
  full.FillChecksum();

  MbufPtr head = host_->pool().GetHeader();
  full.Serialize(head->Append(kIpv4HeaderBytes));
  size_t copied = 0;
  for (const Fragment& frag : frags) {
    size_t frag_off = 0;
    while (frag_off < frag.data.size()) {
      Mbuf* tail = head.get();
      while (tail->next() != nullptr) {
        tail = tail->next();
      }
      if (tail->trailing_space() == 0) {
        MbufPtr m = expect - copied > kMbufDataBytes ? host_->pool().GetCluster()
                                                     : host_->pool().Get();
        ChainAppend(&head, std::move(m));
        continue;
      }
      const size_t chunk = std::min(frag.data.size() - frag_off, tail->trailing_space());
      std::memcpy(tail->Append(chunk).data(), frag.data.data() + frag_off, chunk);
      frag_off += chunk;
      copied += chunk;
    }
  }
  reassembly_.erase(key);
  return head;
}

}  // namespace tcplat
