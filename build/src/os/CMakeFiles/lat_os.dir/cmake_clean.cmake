file(REMOVE_RECURSE
  "CMakeFiles/lat_os.dir/host.cc.o"
  "CMakeFiles/lat_os.dir/host.cc.o.d"
  "liblat_os.a"
  "liblat_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
