#include "src/trace/latency_stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace tcplat {

void LatencyStats::Add(SimDuration sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

SimDuration LatencyStats::Mean() const {
  if (samples_.empty()) {
    return SimDuration();
  }
  return SimDuration::FromNanos(sum_.nanos() / static_cast<int64_t>(samples_.size()));
}

SimDuration LatencyStats::Min() const {
  TCPLAT_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

SimDuration LatencyStats::Max() const {
  TCPLAT_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

SimDuration LatencyStats::Percentile(double p) const {
  TCPLAT_CHECK(!samples_.empty());
  TCPLAT_CHECK_GE(p, 0.0);
  TCPLAT_CHECK_LE(p, 100.0);
  if (!sorted_) {
    sorted_samples_ = samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
    sorted_ = true;
  }
  const size_t n = sorted_samples_.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank > 0) {
    --rank;
  }
  return sorted_samples_[std::min(rank, n - 1)];
}

void LatencyStats::Reset() {
  samples_.clear();
  sorted_samples_.clear();
  sum_ = SimDuration();
  sorted_ = true;
}

}  // namespace tcplat
