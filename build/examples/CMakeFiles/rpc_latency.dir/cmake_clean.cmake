file(REMOVE_RECURSE
  "CMakeFiles/rpc_latency.dir/rpc_latency.cpp.o"
  "CMakeFiles/rpc_latency.dir/rpc_latency.cpp.o.d"
  "rpc_latency"
  "rpc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
