#include "src/fault/error_experiment.h"

#include "src/fault/injector.h"

namespace tcplat {

std::string ErrorSourceName(ErrorSource source) {
  switch (source) {
    case ErrorSource::kLinkBitFlip:
      return "link bit flip";
    case ErrorSource::kLinkCrcDefeating:
      return "CRC-defeating link error";
    case ErrorSource::kControllerCopy:
      return "controller copy error";
    case ErrorSource::kSwitchFabric:
      return "switch fabric error";
  }
  return "?";
}

ErrorExperimentResult RunErrorExperiment(const ErrorExperimentConfig& config) {
  TestbedConfig tb_cfg;
  tb_cfg.network = NetworkKind::kAtm;
  tb_cfg.switched = config.source == ErrorSource::kSwitchFabric;
  tb_cfg.tcp.checksum = config.checksum;
  tb_cfg.seed = config.seed;
  Testbed tb(tb_cfg);

  auto rng = std::make_shared<Rng>(config.seed * 7919 + 13);
  auto counter = std::make_shared<InjectionCounter>();

  switch (config.source) {
    case ErrorSource::kLinkBitFlip:
      tb.atm_link()->dir(0).set_corrupt_hook(
          MakeCellBitFlipper(rng, counter, config.probability));
      tb.atm_link()->dir(1).set_corrupt_hook(
          MakeCellBitFlipper(rng, counter, config.probability));
      break;
    case ErrorSource::kLinkCrcDefeating:
      tb.atm_link()->dir(0).set_corrupt_hook(
          MakeCrc10DefeatingCorruptor(rng, counter, config.probability));
      tb.atm_link()->dir(1).set_corrupt_hook(
          MakeCrc10DefeatingCorruptor(rng, counter, config.probability));
      break;
    case ErrorSource::kControllerCopy:
      tb.client_atm()->set_controller_fault_hook(
          MakeControllerCorruptor(rng, counter, config.probability));
      tb.server_atm()->set_controller_fault_hook(
          MakeControllerCorruptor(rng, counter, config.probability));
      break;
    case ErrorSource::kSwitchFabric:
      tb.atm_switch()->set_fabric_corrupt_hook(
          MakeCellBitFlipper(rng, counter, config.probability));
      break;
  }

  RpcOptions rpc;
  rpc.size = config.size;
  rpc.iterations = config.iterations;
  rpc.warmup = 8;
  rpc.verify_data = true;
  const RpcResult run = RunRpcBenchmark(tb, rpc);

  ErrorExperimentResult out;
  out.injected = counter->injected;
  const SarReassemblerStats& sar_c = tb.client_atm()->sar_stats();
  const SarReassemblerStats& sar_s = tb.server_atm()->sar_stats();
  out.caught_cell_crc = sar_c.crc_errors + sar_s.crc_errors;
  out.caught_sar = sar_c.sequence_errors + sar_s.sequence_errors + sar_c.cpcs_errors +
                   sar_s.cpcs_errors + sar_c.protocol_errors + sar_s.protocol_errors;
  out.caught_tcp_checksum =
      run.client_tcp.checksum_errors + run.server_tcp.checksum_errors;
  out.app_mismatches = run.data_mismatches;
  out.retransmits = run.client_tcp.rexmt_timeouts + run.server_tcp.rexmt_timeouts;
  out.mean_rtt_us = run.MeanRtt().micros();
  out.completed = true;
  return out;
}

}  // namespace tcplat
