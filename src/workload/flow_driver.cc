#include "src/workload/flow_driver.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

// Deterministic per-iteration payload, identical to the single-flow
// benchmark's pattern so the 1-flow star run is byte-for-byte the same.
void FillPattern(std::vector<uint8_t>& buf, int iteration) {
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>((i * 131 + iteration * 17 + 7) & 0xFF);
  }
}

struct RunState {
  StarTestbed* tb = nullptr;
  const WorkloadOptions* options = nullptr;
  std::vector<FlowResult> results;
  std::vector<bool> server_done;
  std::vector<bool> client_done;
  int in_flight = 0;       // flows currently inside an echo round trip
  size_t max_in_flight = 0;
};

SimTask ServerProc(RunState* state, const FlowSpec* spec, size_t flow, uint16_t port) {
  Socket* listener = state->tb->server_tcp(spec->server).Listen(port);
  while (true) {
    Socket* conn = listener->Accept();
    if (conn != nullptr) {
      std::vector<uint8_t> buf(spec->size);
      const int total = spec->warmup + spec->iterations;
      for (int iter = 0; iter < total; ++iter) {
        size_t got = 0;
        while (got < buf.size()) {
          const size_t n = conn->Read({buf.data() + got, buf.size() - got});
          got += n;
          if (n == 0) {
            if (conn->eof() || conn->has_error()) {
              state->server_done[flow] = true;
              co_return;
            }
            co_await conn->WaitReadable();
          }
        }
        size_t sent = 0;
        while (sent < buf.size()) {
          const size_t n = conn->Write({buf.data() + sent, buf.size() - sent});
          sent += n;
          if (n == 0) {
            if (conn->has_error()) {
              state->server_done[flow] = true;
              co_return;
            }
            co_await conn->WaitWritable();
          }
        }
      }
      conn->Close();
      state->server_done[flow] = true;
      co_return;
    }
    co_await listener->WaitAcceptable();
  }
}

SimTask ClientProc(RunState* state, const FlowSpec* spec, size_t flow, uint16_t port) {
  Host& host = state->tb->client_host(spec->client);
  FlowResult& result = state->results[flow];
  if (spec->start_delay.nanos() > 0) {
    co_await host.SleepFor(spec->start_delay);
  }
  const Ipv4Addr server_addr = StarServerAddr(spec->server);
  Socket* sock = state->tb->client_tcp(spec->client).Connect(SockAddr{server_addr, port});
  while (!sock->connected() && !sock->has_error()) {
    co_await sock->WaitConnected();
  }
  if (sock->has_error() && spec->tolerate_errors) {
    result.aborted = true;
    state->client_done[flow] = true;
    co_return;
  }
  TCPLAT_CHECK(!sock->has_error()) << "flow " << flow << " failed to connect";

  std::vector<uint8_t> out(spec->size);
  std::vector<uint8_t> in(spec->size);
  const int total = spec->warmup + spec->iterations;
  for (int iter = 0; iter < total; ++iter) {
    if (iter == spec->warmup && flow == 0 && state->options->reset_trackers_at_warmup) {
      // Start of the measured region: clear the layer accumulators, the
      // way the single-flow benchmark re-initializes its kernel counters.
      state->tb->ResetTrackers();
    }
    FillPattern(out, iter);
    ++state->in_flight;
    state->max_in_flight =
        std::max(state->max_in_flight, static_cast<size_t>(state->in_flight));
    const SimTime t0 = host.CurrentTime();

    size_t sent = 0;
    while (sent < out.size()) {
      const size_t n = sock->Write({out.data() + sent, out.size() - sent});
      sent += n;
      if (n == 0) {
        if (sock->has_error() && spec->tolerate_errors) {
          result.aborted = true;
          state->client_done[flow] = true;
          --state->in_flight;
          co_return;
        }
        TCPLAT_CHECK(!sock->has_error()) << "flow " << flow << " error during send";
        co_await sock->WaitWritable();
      }
    }
    size_t got = 0;
    while (got < in.size()) {
      const size_t n = sock->Read({in.data() + got, in.size() - got});
      got += n;
      if (n == 0) {
        if ((sock->eof() || sock->has_error()) && spec->tolerate_errors) {
          result.aborted = true;
          state->client_done[flow] = true;
          --state->in_flight;
          co_return;
        }
        TCPLAT_CHECK(!sock->eof() && !sock->has_error())
            << "flow " << flow << " died mid-echo";
        co_await sock->WaitReadable();
      }
    }

    const SimTime t1 = host.CurrentTime();
    --state->in_flight;
    if (iter >= spec->warmup) {
      result.rtt.Add(t1.QuantizeToClockTick() - t0.QuantizeToClockTick());
      if (spec->verify_data && std::memcmp(in.data(), out.data(), out.size()) != 0) {
        ++result.data_mismatches;
      }
    }
    if (spec->think_time.nanos() > 0 && iter + 1 < total) {
      co_await host.SleepFor(spec->think_time);
    }
  }
  sock->Close();
  result.completed = true;
  state->client_done[flow] = true;
  co_return;
}

}  // namespace

WorkloadResult RunWorkload(StarTestbed& testbed, const std::vector<FlowSpec>& specs,
                           const WorkloadOptions& options) {
  TCPLAT_CHECK(!specs.empty());
  for (const FlowSpec& spec : specs) {
    TCPLAT_CHECK_GT(spec.size, 0u);
    TCPLAT_CHECK_GT(spec.iterations, 0);
    TCPLAT_CHECK_GE(spec.client, 0);
    TCPLAT_CHECK_LT(spec.client, testbed.clients());
    TCPLAT_CHECK_GE(spec.server, 0);
    TCPLAT_CHECK_LT(spec.server, testbed.servers());
  }

  RunState state;
  state.tb = &testbed;
  state.options = &options;
  state.results.resize(specs.size());
  state.server_done.assign(specs.size(), false);
  state.client_done.assign(specs.size(), false);
  for (size_t f = 0; f < specs.size(); ++f) {
    state.results[f].iterations = static_cast<uint64_t>(specs[f].iterations);
  }

  // Reset protocol statistics so each run reports its own numbers.
  for (int idx = 0; idx < testbed.host_count(); ++idx) {
    testbed.tcp(idx).stats() = TcpStats{};
  }
  testbed.ResetTrackers();

  // All servers first, then all clients, extending the single-flow spawn
  // order (the listener must exist before its SYN can arrive).
  for (size_t f = 0; f < specs.size(); ++f) {
    const uint16_t port =
        specs[f].port != 0 ? specs[f].port : static_cast<uint16_t>(kEchoPort + f);
    testbed.server_host(specs[f].server)
        .Spawn("echo-server", ServerProc(&state, &specs[f], f, port));
  }
  for (size_t f = 0; f < specs.size(); ++f) {
    const uint16_t port =
        specs[f].port != 0 ? specs[f].port : static_cast<uint16_t>(kEchoPort + f);
    testbed.client_host(specs[f].client)
        .Spawn("echo-client", ClientProc(&state, &specs[f], f, port));
  }

  testbed.sim().RunToCompletion();

  WorkloadResult result;
  result.flows = std::move(state.results);
  result.per_client.resize(static_cast<size_t>(testbed.clients()));
  for (size_t f = 0; f < specs.size(); ++f) {
    FlowResult& flow = result.flows[f];
    if (specs[f].tolerate_errors) {
      // A one-sided death can leave the peer parked on a wait channel with
      // no events pending; that is an aborted flow, not a harness bug.
      flow.aborted = flow.aborted || !state.client_done[f] || !state.server_done[f];
      if (flow.aborted) {
        flow.completed = false;
      }
    } else {
      TCPLAT_CHECK(state.client_done[f]) << "flow " << f << " client did not finish";
      TCPLAT_CHECK(state.server_done[f]) << "flow " << f << " server did not finish";
    }
    result.rtt.Merge(flow.rtt);
    result.per_client[static_cast<size_t>(specs[f].client)].Merge(flow.rtt);
    result.completed += flow.completed ? 1 : 0;
    result.aborted += flow.aborted ? 1 : 0;
    result.data_mismatches += flow.data_mismatches;
  }
  result.max_concurrent = state.max_in_flight;
  return result;
}

}  // namespace tcplat
