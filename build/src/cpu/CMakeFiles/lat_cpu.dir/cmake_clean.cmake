file(REMOVE_RECURSE
  "CMakeFiles/lat_cpu.dir/cost_profile.cc.o"
  "CMakeFiles/lat_cpu.dir/cost_profile.cc.o.d"
  "CMakeFiles/lat_cpu.dir/cpu.cc.o"
  "CMakeFiles/lat_cpu.dir/cpu.cc.o.d"
  "liblat_cpu.a"
  "liblat_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
