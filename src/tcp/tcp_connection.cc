#include "src/tcp/tcp_connection.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"
#include "src/net/byte_order.h"
#include "src/net/checksum.h"
#include "src/tcp/tcp_stack.h"

#include <cstdio>
#include <cstdlib>

namespace tcplat {
namespace {

bool TraceEnabled() {
  static const bool enabled = std::getenv("TCPLAT_TRACE") != nullptr;
  return enabled;
}

constexpr uint32_t kMaxWindow = 65535;

// Drops `n` bytes from the back of a chain (freeing emptied mbufs).
void ChainTrimTail(MbufPool* pool, MbufPtr* head, size_t n) {
  while (n > 0 && *head != nullptr) {
    Mbuf* m = head->get();
    Mbuf* prev = nullptr;
    while (m->next() != nullptr) {
      prev = m;
      m = m->next();
    }
    const size_t cut = std::min(n, m->len());
    m->TrimBack(cut);
    n -= cut;
    if (m->len() == 0) {
      if (prev == nullptr) {
        pool->FreeChain(std::move(*head));
        break;
      }
      pool->FreeChain(prev->TakeNext());
    }
  }
}

}  // namespace

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(TcpStack* stack, Socket* socket)
    : stack_(stack), socket_(socket) {
  TCPLAT_CHECK(stack != nullptr);
  TCPLAT_CHECK(socket != nullptr);
  pcb_.conn = this;
}

TcpConnection::~TcpConnection() {
  CancelRexmt();
  CancelDelack();
  CancelKeepalive();
  if (timewait_timer_ != kInvalidEventId) {
    stack_->host().CancelCallout(timewait_timer_);
    timewait_timer_ = kInvalidEventId;
  }
}

// ---------------------------------------------------------------------------
// Opens / close
// ---------------------------------------------------------------------------

void TcpConnection::Listen(SockAddr local) {
  TCPLAT_CHECK(state_ == TcpState::kClosed);
  pcb_.local = local;
  pcb_.remote = SockAddr{};
  state_ = TcpState::kListen;
  stack_->pcbs().Insert(&pcb_);
  socket_->MarkListening();
}

void TcpConnection::Connect(SockAddr local, SockAddr remote) {
  TCPLAT_CHECK(state_ == TcpState::kClosed);
  pcb_.local = local;
  pcb_.remote = remote;
  stack_->pcbs().Insert(&pcb_);

  iss_ = stack_->NextIss();
  snd_una_ = snd_nxt_ = snd_max_ = iss_;
  t_maxseg_ = stack_->ip().netif()->mtu() - kIpv4HeaderBytes - kTcpMinHeaderBytes;
  if (stack_->config().mss_clamp > 0) {
    t_maxseg_ = std::min(t_maxseg_, stack_->config().mss_clamp);
  }
  cc_.Reset(ResolveVariant(socket_), static_cast<uint32_t>(t_maxseg_));
  request_sack_ = cc_.variant() == CongestionVariant::kSack;
  request_no_checksum_ = stack_->config().checksum == ChecksumMode::kNone;
  state_ = TcpState::kSynSent;
  socket_->set_trace_flow(TraceFlow());
  socket_->MarkConnecting();
  Output();
}

void TcpConnection::AcceptSyn(SockAddr local, SockAddr remote, Socket* listener_socket,
                              const TcpHeader& syn) {
  TCPLAT_CHECK(state_ == TcpState::kClosed);
  pcb_.local = local;
  pcb_.remote = remote;
  listener_socket_ = listener_socket;
  embryonic_ = true;
  listener_socket_->EmbryonicStarted();
  stack_->pcbs().Insert(&pcb_);
  socket_->set_trace_flow(TraceFlow());

  irs_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  rcv_adv_ = rcv_nxt_;
  last_ack_sent_ = rcv_nxt_;
  snd_wnd_ = syn.window;
  max_sndwnd_ = std::max(max_sndwnd_, snd_wnd_);
  snd_wl1_ = syn.seq;
  snd_wl2_ = 0;

  iss_ = stack_->NextIss();
  snd_una_ = snd_nxt_ = snd_max_ = iss_;
  size_t our_mss = stack_->ip().netif()->mtu() - kIpv4HeaderBytes - kTcpMinHeaderBytes;
  if (stack_->config().mss_clamp > 0) {
    our_mss = std::min(our_mss, stack_->config().mss_clamp);
  }
  t_maxseg_ = std::min(our_mss, static_cast<size_t>(syn.options.mss.value_or(536)));
  cc_.Reset(ResolveVariant(listener_socket), static_cast<uint32_t>(t_maxseg_));

  // SACK negotiation (RFC 2018): on only when the SYN offered it and this
  // side runs the SACK variant; the SYN|ACK echoes the option.
  sack_enabled_ = syn.options.sack_permitted && cc_.variant() == CongestionVariant::kSack;
  request_sack_ = sack_enabled_;

  // Alternate-checksum negotiation (§4.2): disabled only when both ends ask.
  const bool peer_wants = syn.options.alt_checksum == kTcpAltChecksumNone;
  const bool we_want = stack_->config().checksum == ChecksumMode::kNone;
  no_checksum_ = peer_wants && we_want;
  request_no_checksum_ = no_checksum_;  // echo the option in the SYN|ACK

  state_ = TcpState::kSynReceived;
  Output();  // emits SYN|ACK
}

void TcpConnection::UsrClose() {
  switch (state_) {
    case TcpState::kClosed:
      break;
    case TcpState::kListen:
    case TcpState::kSynSent:
      DropConnection(/*error=*/false);
      break;
    case TcpState::kSynReceived:
    case TcpState::kEstablished:
      state_ = TcpState::kFinWait1;
      Output();
      break;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      Output();
      break;
    default:
      break;  // close already in progress
  }
}

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

bool TcpConnection::VerifyChecksum(const Mbuf* chain, const TcpHeader& th,
                                   const Ipv4Header& iph) {
  Host& host = stack_->host();
  Cpu& cpu = host.cpu();
  const size_t tcp_len = iph.total_length - kIpv4HeaderBytes;
  ScopedSpan cs(&host.tracker(), SpanId::kRxTcpChecksum);

  TcpPseudoHeader ph;
  ph.src = iph.src;
  ph.dst = iph.dst;
  ph.tcp_length = static_cast<uint16_t>(tcp_len);
  const auto pseudo = ph.Serialize();

  if (stack_->config().checksum == ChecksumMode::kCombined) {
    // §4.1.1 receive side: the driver computed per-mbuf partial sums during
    // the device-to-kernel copy; combining them replaces the full in_cksum
    // pass. Requires the canonical driver layout: 20-byte IP header mbuf
    // followed by data mbufs that all carry partials.
    bool usable = chain->len() == kIpv4HeaderBytes;
    size_t covered = 0;
    for (const Mbuf* m = chain->next(); usable && m != nullptr; m = m->next()) {
      if (!m->partial_cksum().has_value() || m->partial_cksum()->length != m->len()) {
        usable = false;
      } else {
        covered += m->len();
      }
    }
    if (usable && covered == tcp_len) {
      cpu.Charge(cpu.profile().combined_cksum_rx_overhead);
      cpu.Charge(cpu.profile().pseudo_hdr_cksum);
      ChecksumAccumulator acc;
      acc.Add(pseudo);
      for (const Mbuf* m = chain->next(); m != nullptr; m = m->next()) {
        cpu.Charge(cpu.profile().cksum_combine);
        acc.AddPartial(*m->partial_cksum());
      }
      return acc.Finalize() == 0;
    }
    ++stack_->stats().checksum_fallbacks;
  }

  // Full pass over the real bytes. The paper accounts the checksummed size
  // as data + 40 header bytes (20 TCP header + 20 "IP overlay"); the walk
  // covers pseudo header + TCP segment.
  cpu.Charge(cpu.profile().in_cksum, tcp_len - th.HeaderLength() + 40, ChainCount(chain));
  ChecksumAccumulator acc;
  acc.Add(pseudo);
  size_t skip = kIpv4HeaderBytes;
  for (const Mbuf* m = chain; m != nullptr; m = m->next()) {
    if (skip >= m->len()) {
      skip -= m->len();
      continue;
    }
    acc.Add(m->bytes().subspan(skip));
    skip = 0;
  }
  if (acc.Finalize() != 0 && TraceEnabled()) {
    std::fprintf(stderr, "  verify fail: tcp_len=%zu chain_len=%zu acc_len=%zu fold=%04x\n",
                 tcp_len, ChainLength(chain), (size_t)acc.length(), acc.Finalize());
    size_t dumped = 0;
    for (const Mbuf* m = chain; m != nullptr; m = m->next()) {
      std::fprintf(stderr, "  mbuf len=%zu:", m->len());
      for (size_t i = 0; i < m->len() && i < 64; ++i) {
        std::fprintf(stderr, " %02x", m->data()[i]);
      }
      std::fprintf(stderr, "\n");
      dumped += m->len();
    }
  }
  return acc.Finalize() == 0;
}

bool TcpConnection::TryHeaderPrediction(MbufPtr& data, const TcpHeader& th, size_t data_len) {
  Host& host = stack_->host();
  Cpu& cpu = host.cpu();
  TcpStats& stats = stack_->stats();
  const TcpFlags& f = th.flags;

  // The BSD 4.4 alpha predicate: established connection, nothing but ACK
  // set, next expected sequence number, unchanged non-zero window, and no
  // retransmission in progress.
  const bool flags_pure = f.ack && !f.syn && !f.fin && !f.rst && !f.urg;
  if (state_ != TcpState::kEstablished || !flags_pure || th.seq != rcv_nxt_ ||
      th.window == 0 || th.window != snd_wnd_ || snd_nxt_ != snd_max_) {
    return false;
  }

  if (data_len == 0) {
    // Case 1: "As the sender in a unidirectional transfer, header prediction
    // succeeds when receiving an in-sequence acknowledgment with no data."
    // The recovery-capable variants must fall to the slow path while dup-ACK
    // or recovery state is live (the fast path skips all of it); kLegacy
    // keeps the seed predicate untouched.
    const bool recovery_clear =
        cc_.variant() == CongestionVariant::kLegacy ||
        (cc_.dup_acks() == 0 && !cc_.in_recovery() && !sack_enabled_);
    if (SeqGt(th.ack, snd_una_) && SeqLeq(th.ack, snd_max_) && cc_.cwnd() >= snd_wnd_ &&
        recovery_clear) {
      ++stats.predict_ack_hits;
      cpu.Charge(cpu.profile().tcp_input_fast);
      if (rtt_timing_ && SeqGt(th.ack, rtt_seq_)) {
        const SimDuration sample = host.CurrentTime() - rtt_started_;
        srtt_ = srtt_.nanos() == 0 ? sample
                                   : SimDuration::FromNanos((7 * srtt_.nanos() + sample.nanos()) / 8);
        rtt_timing_ = false;
        host.TraceSample(TsMetric::kTcpSrttUs, TraceFlow(), srtt_.nanos() / 1000);
        host.TraceSample(TsMetric::kTcpRtoUs, TraceFlow(), CurrentRto().nanos() / 1000);
      }
      const uint32_t acked = th.ack - snd_una_;
      host.TracePacket(TraceLayer::kTcp, TraceEventKind::kAck, TraceFlow(), th.ack - iss_,
                       acked);
      socket_->snd().Drop(&host.pool(), std::min<size_t>(acked, socket_->snd().cc()));
      snd_una_ = th.ack;
      rexmt_shift_ = 0;
      if (snd_una_ == snd_max_) {
        CancelRexmt();
      } else {
        ArmRexmt();
      }
      socket_->WriteWakeup();
      if (data != nullptr) {
        host.pool().FreeChain(std::move(data));
      }
      if (socket_->snd().cc() > snd_nxt_ - snd_una_) {
        Output();
      }
      return true;
    }
  } else if (th.ack == snd_una_ && reassembly_.empty() &&
             data_len <= socket_->rcv().space()) {
    // Case 2: "As the receiver in a unidirectional transfer, header
    // prediction succeeds when receiving an in-sequence data segment with
    // no acknowledgment."
    ++stats.predict_data_hits;
    cpu.Charge(cpu.profile().tcp_input_fast);
    rcv_nxt_ += static_cast<uint32_t>(data_len);
    AppendInOrder(std::move(data));
    socket_->ReadWakeup();
    if (delack_pending_ || !DelackEnabled()) {
      // 4.4 acks every other full segment on the fast path (or every
      // segment immediately when delayed ACKs are disabled).
      ack_now_ = true;
      Output();
    } else {
      delack_pending_ = true;
      ArmDelack();
    }
    return true;
  }
  ++stats.predict_misses;
  return false;
}

void TcpConnection::Input(MbufPtr chain, const TcpHeader& th, const Ipv4Header& iph) {
  Host& host = stack_->host();
  Cpu& cpu = host.cpu();
  MbufPool& pool = host.pool();
  TCPLAT_CHECK(state_ != TcpState::kListen) << "listeners are handled by the stack";

  const size_t hdrlen = th.HeaderLength();
  const size_t tcp_len = iph.total_length - kIpv4HeaderBytes;
  TCPLAT_CHECK_GE(tcp_len, hdrlen);
  size_t len = tcp_len - hdrlen;

  if (TraceEnabled()) {
    std::fprintf(stderr, "[%s %8ld] IN  %s seq=%u ack=%u len=%zu win=%u state=%s una=%u nxt=%u max=%u rcv=%u\n",
                 host.name().c_str(), (long)host.CurrentTime().nanos() / 1000,
                 th.flags.ToString().c_str(), th.seq - irs_, th.ack - iss_, len, th.window,
                 TcpStateName(state_), snd_una_ - iss_, snd_nxt_ - iss_, snd_max_ - iss_,
                 rcv_nxt_ - irs_);
  }

  if (state_ == TcpState::kClosed) {
    pool.FreeChain(std::move(chain));
    return;
  }

  // The alternate-checksum agreement covers only post-handshake segments:
  // SYNs always carry a real checksum (the option rides on them).
  const bool checksum_exempt = no_checksum_ && !th.flags.syn;
  if (!checksum_exempt && !VerifyChecksum(chain.get(), th, iph)) {
    ++stack_->stats().checksum_errors;
    host.TracePacket(TraceLayer::kTcp, TraceEventKind::kChecksumError, TraceFlow(),
                     th.seq - irs_, len);
    if (TraceEnabled()) {
      std::fprintf(stderr, "[%s] DROP bad checksum seq=%u len=%zu\n", host.name().c_str(),
                   th.seq - irs_, len);
    }
    pool.FreeChain(std::move(chain));
    return;
  }

  // Strip the IP and TCP headers; what remains is payload.
  ChainAdjHead(&pool, &chain, kIpv4HeaderBytes + hdrlen);
  if (chain != nullptr && ChainLength(chain.get()) == 0) {
    pool.FreeChain(std::move(chain));
  }

  if (state_ == TcpState::kSynSent) {
    InputSynSent(th);
    if (chain != nullptr) {
      pool.FreeChain(std::move(chain));
    }
    return;
  }

  // Any traffic from the peer proves liveness.
  keepalive_unanswered_ = 0;
  if (stack_->config().keepalive && state_ == TcpState::kEstablished) {
    ArmKeepalive(stack_->config().keepalive_idle);
  }

  if (stack_->config().header_prediction && TryHeaderPrediction(chain, th, len)) {
    return;
  }

  cpu.Charge(cpu.profile().tcp_input_slow);

  TcpSeq seq = th.seq;
  bool fin = th.flags.fin;

  if (th.flags.rst) {
    ++stack_->stats().rst_received;
    if (chain != nullptr) {
      pool.FreeChain(std::move(chain));
    }
    DropConnection(/*error=*/true);
    return;
  }

  // Trim any duplicate prefix.
  if (SeqLt(seq, rcv_nxt_)) {
    const size_t dup = rcv_nxt_ - seq;
    if (dup >= len) {
      // Entirely old data (or a pure duplicate): re-ACK to resynchronize.
      if (chain != nullptr) {
        pool.FreeChain(std::move(chain));
      }
      // Entirely old or out-of-window (including keepalive probes):
      // re-ACK to resynchronize the peer.
      ack_now_ = true;
      len = 0;
      fin = false;
      seq = rcv_nxt_;
    } else {
      ChainAdjHead(&pool, &chain, dup);
      len -= dup;
      seq = rcv_nxt_;
    }
  }

  // Trim data beyond our receive buffer.
  const size_t space = socket_->rcv().space();
  if (len > space) {
    if (chain != nullptr) {
      ChainTrimTail(&pool, &chain, len - space);
    }
    len = space;
    fin = false;
    ack_now_ = true;
  }

  if (!th.flags.ack) {
    if (chain != nullptr) {
      pool.FreeChain(std::move(chain));
    }
    return;
  }

  if (state_ == TcpState::kSynReceived) {
    if (SeqLeq(th.ack, snd_una_) || SeqGt(th.ack, snd_max_)) {
      if (chain != nullptr) {
        pool.FreeChain(std::move(chain));
      }
      return;
    }
    CompleteEstablishment();
  }

  ProcessAck(th, len);

  // Window update (BSD wl1/wl2 rules).
  if (SeqLt(snd_wl1_, seq) || (snd_wl1_ == seq && SeqLeq(snd_wl2_, th.ack)) ||
      (snd_wl2_ == th.ack && th.window > snd_wnd_)) {
    snd_wnd_ = th.window;
    max_sndwnd_ = std::max(max_sndwnd_, snd_wnd_);
    snd_wl1_ = seq;
    snd_wl2_ = th.ack;
  }

  if (len > 0 || fin) {
    ProcessData(std::move(chain), seq, len, fin);
  } else if (chain != nullptr) {
    pool.FreeChain(std::move(chain));
  }

  if (ack_now_) {
    Output();
  } else if (socket_->snd().cc() > snd_nxt_ - snd_una_ ||
             (fin_needed_for_state() && !fin_sent_)) {
    Output();
  }
}

bool TcpConnection::fin_needed_for_state() const {
  return state_ == TcpState::kFinWait1 || state_ == TcpState::kLastAck ||
         state_ == TcpState::kClosing;
}

void TcpConnection::InputSynSent(const TcpHeader& th) {
  if (!th.flags.ack || SeqLeq(th.ack, iss_) || SeqGt(th.ack, snd_max_)) {
    return;  // unacceptable ACK; a full implementation would RST
  }
  if (th.flags.rst) {
    ++stack_->stats().rst_received;  // connection refused
    DropConnection(/*error=*/true);
    return;
  }
  if (!th.flags.syn) {
    return;
  }

  irs_ = th.seq;
  rcv_nxt_ = th.seq + 1;
  rcv_adv_ = rcv_nxt_;
  last_ack_sent_ = rcv_nxt_;
  snd_una_ = th.ack;
  rexmt_shift_ = 0;
  CancelRexmt();

  if (th.options.mss.has_value()) {
    t_maxseg_ = std::min(t_maxseg_, static_cast<size_t>(*th.options.mss));
  }
  cc_.SetMss(static_cast<uint32_t>(t_maxseg_));
  no_checksum_ = request_no_checksum_ && th.options.alt_checksum == kTcpAltChecksumNone;
  sack_enabled_ = request_sack_ && th.options.sack_permitted;

  snd_wnd_ = th.window;
  max_sndwnd_ = std::max(max_sndwnd_, snd_wnd_);
  snd_wl1_ = th.seq;
  snd_wl2_ = th.ack;

  state_ = TcpState::kEstablished;
  ++stack_->stats().conns_established;
  if (stack_->config().keepalive) {
    ArmKeepalive(stack_->config().keepalive_idle);
  }
  ack_now_ = true;
  socket_->MarkConnected();
  Output();
}

void TcpConnection::CompleteEstablishment() {
  state_ = TcpState::kEstablished;
  ++stack_->stats().conns_established;
  if (stack_->config().keepalive) {
    ArmKeepalive(stack_->config().keepalive_idle);
  }
  socket_->MarkConnected();
  if (listener_socket_ != nullptr) {
    if (embryonic_) {
      embryonic_ = false;
      listener_socket_->EmbryonicEnded();
    }
    listener_socket_->EnqueueAccepted(socket_);
  }
}

void TcpConnection::ProcessAck(const TcpHeader& th, size_t data_len) {
  Host& host = stack_->host();
  Cpu& cpu = host.cpu();
  const TcpSeq ack = th.ack;

  if (sack_enabled_ && !th.options.sack.empty()) {
    IngestSackBlocks(th);
  }

  if (SeqLeq(ack, snd_una_)) {
    // Duplicate ACK; three in a row trigger fast retransmit. What happens
    // next is the congestion variant's call: kLegacy deflates and rewinds,
    // Reno-era variants enter (or continue) fast recovery.
    if (ack == snd_una_ && snd_una_ != snd_max_) {
      // kLegacy keeps the seed's loose predicate bit-for-bit. The RFC 5681
      // variants require a *pure* duplicate — no payload, no window change —
      // so receiver window updates cannot masquerade as loss signals.
      const bool pure_dup = data_len == 0 && th.window == snd_wnd_;
      if (cc_.variant() == CongestionVariant::kLegacy || pure_dup) {
        ++stack_->stats().dup_acks_received;
        ApplyLossAction(cc_.OnDupAck(snd_una_, snd_max_, snd_wnd_));
      }
    }
    return;
  }
  if (SeqGt(ack, snd_max_)) {
    ack_now_ = true;
    return;
  }

  host.TracePacket(TraceLayer::kTcp, TraceEventKind::kAck, TraceFlow(), ack - iss_,
                   ack - snd_una_);
  cpu.Charge(cpu.profile().tcp_ack_proc);

  if (rtt_timing_ && SeqGt(ack, rtt_seq_)) {
    const SimDuration sample = host.CurrentTime() - rtt_started_;
    srtt_ = srtt_.nanos() == 0 ? sample
                               : SimDuration::FromNanos((7 * srtt_.nanos() + sample.nanos()) / 8);
    rtt_timing_ = false;
    host.TraceSample(TsMetric::kTcpSrttUs, TraceFlow(), srtt_.nanos() / 1000);
    host.TraceSample(TsMetric::kTcpRtoUs, TraceFlow(), CurrentRto().nanos() / 1000);
  }

  // Congestion window opening / recovery bookkeeping.
  const CongestionControl::AckAction ack_action =
      cc_.OnNewAck(snd_una_, ack, snd_max_, snd_wnd_);

  const uint32_t acked = ack - snd_una_;
  const size_t sb_drop = std::min<size_t>(acked, socket_->snd().cc());
  if (sb_drop > 0) {
    socket_->snd().Drop(&host.pool(), sb_drop);
  }
  const bool fin_acked = fin_sent_ && SeqGeq(ack, snd_max_);
  snd_una_ = ack;
  if (SeqLt(snd_nxt_, snd_una_)) {
    snd_nxt_ = snd_una_;
  }
  rexmt_shift_ = 0;
  if (snd_una_ == snd_max_) {
    CancelRexmt();
  } else {
    ArmRexmt();
  }
  socket_->WriteWakeup();
  ApplyAckAction(ack_action);

  switch (state_) {
    case TcpState::kFinWait1:
      if (fin_acked) {
        state_ = TcpState::kFinWait2;
      }
      break;
    case TcpState::kClosing:
      if (fin_acked) {
        EnterTimeWait();
      }
      break;
    case TcpState::kLastAck:
      if (fin_acked) {
        DropConnection(/*error=*/false);
      }
      break;
    default:
      break;
  }
}

CongestionVariant TcpConnection::ResolveVariant(const Socket* option_source) const {
  if (option_source != nullptr && option_source->congestion_option().has_value()) {
    return *option_source->congestion_option();
  }
  return stack_->config().congestion;
}

void TcpConnection::IngestSackBlocks(const TcpHeader& th) {
  SackScoreboard& board = cc_.scoreboard();
  const uint64_t before = board.sacked_bytes();
  for (const TcpSackBlock& b : th.options.sack) {
    board.Add(snd_una_, b.start, b.end);
  }
  stack_->stats().sack_blocks_received += th.options.sack.size();
  stack_->host().TracePacket(TraceLayer::kTcp, TraceEventKind::kSackBlock, TraceFlow(),
                             th.options.sack.front().start - iss_,
                             board.sacked_bytes() - before);
}

void TcpConnection::TraceCwnd() {
  Host& host = stack_->host();
  host.TracePacket(TraceLayer::kTcp, TraceEventKind::kCwndChange, TraceFlow(),
                   cc_.cwnd(), cc_.ssthresh());
  stack_->NoteCwnd(cc_.cwnd(), cc_.ssthresh());

  const uint64_t flow = TraceFlow();
  const auto cwnd = static_cast<int64_t>(cc_.cwnd());
  const bool recovery = cc_.in_recovery();
  if (recovery && !traced_recovery_) {
    // Loss-episode entry: pin the sawtooth corner exactly — the peak the
    // window fell from and the value it was cut to, at the same instant.
    host.TraceSampleEdge(TsMetric::kTcpLossEnter, flow, last_traced_cwnd_);
    host.TraceSampleEdge(TsMetric::kTcpCwnd, flow, last_traced_cwnd_);
    host.TraceSampleEdge(TsMetric::kTcpCwnd, flow, cwnd);
  } else if (!recovery && traced_recovery_) {
    host.TraceSampleEdge(TsMetric::kTcpLossExit, flow, cwnd);
    host.TraceSampleEdge(TsMetric::kTcpCwnd, flow, cwnd);
  } else {
    host.TraceSample(TsMetric::kTcpCwnd, flow, cwnd);
  }
  host.TraceSample(TsMetric::kTcpSsthresh, flow, static_cast<int64_t>(cc_.ssthresh()));
  host.TraceSample(TsMetric::kTcpPipe, flow, static_cast<int64_t>(snd_max_ - snd_una_));
  traced_recovery_ = recovery;
  last_traced_cwnd_ = cwnd;
}

void TcpConnection::SampleCwnd() {
  const auto cwnd = static_cast<int64_t>(cc_.cwnd());
  stack_->host().TraceSample(TsMetric::kTcpCwnd, TraceFlow(), cwnd);
  last_traced_cwnd_ = cwnd;
}

void TcpConnection::RewindRetransmit(TcpSeq seq) {
  if (SeqGeq(seq, snd_max_)) {
    return;  // nothing outstanding at or above the requested hole
  }
  // BSD's `onxt` trick: point snd_nxt at the hole, force one segment out
  // (EmitSegment counts it as a retransmission), then resume where we were.
  const TcpSeq onxt = snd_nxt_;
  snd_nxt_ = seq;
  force_rexmt_ = true;
  Output();
  force_rexmt_ = false;
  if (SeqGt(onxt, snd_nxt_)) {
    snd_nxt_ = onxt;
  }
}

void TcpConnection::ApplyLossAction(const CongestionControl::LossAction& action) {
  Host& host = stack_->host();
  TcpStats& stats = stack_->stats();
  if (cc_.variant() == CongestionVariant::kLegacy) {
    // Seed side effects, in the seed's order (note the double retransmit
    // count: once here, once when EmitSegment sees snd_nxt < snd_max).
    if (action.fast_retransmit) {
      snd_nxt_ = snd_una_;
      ++stats.retransmits;
      ++stats.fast_retransmits;
      host.TracePacket(TraceLayer::kTcp, TraceEventKind::kRetransmit, TraceFlow(),
                       snd_una_ - iss_);
      Output();
    }
    return;
  }
  if (action.cwnd_changed) {
    // Entering fast recovery.
    ++stats.fast_retransmits;
    ++stats.fast_recovery_episodes;
    host.TracePacket(TraceLayer::kTcp, TraceEventKind::kFastRetransmit, TraceFlow(),
                     action.rexmt_seq - iss_);
    TraceCwnd();
  } else if (action.fast_retransmit && cc_.variant() == CongestionVariant::kSack) {
    ++stats.sack_retransmits;  // in-recovery hole repair
  }
  if (action.fast_retransmit) {
    RewindRetransmit(action.rexmt_seq);
  }
  if (action.send_more) {
    Output();  // window inflation may let new data out
  }
}

void TcpConnection::ApplyAckAction(const CongestionControl::AckAction& action) {
  if (cc_.variant() == CongestionVariant::kLegacy) {
    SampleCwnd();
    return;
  }
  if (action.cwnd_changed) {
    TraceCwnd();
  } else {
    SampleCwnd();  // slow start / congestion avoidance growth
  }
  if (action.partial_retransmit) {
    ++stack_->stats().newreno_partial_acks;
    if (cc_.variant() == CongestionVariant::kSack) {
      ++stack_->stats().sack_retransmits;
    }
    stack_->host().TracePacket(TraceLayer::kTcp, TraceEventKind::kFastRetransmit, TraceFlow(),
                               action.rexmt_seq - iss_);
    RewindRetransmit(action.rexmt_seq);
  }
}

void TcpConnection::AppendInOrder(MbufPtr data) {
  if (data == nullptr) {
    return;
  }
  socket_->rcv().Append(&stack_->host().pool(), std::move(data));
}

void TcpConnection::ProcessData(MbufPtr data, TcpSeq seq, size_t len, bool fin) {
  Host& host = stack_->host();
  MbufPool& pool = host.pool();

  if (state_ == TcpState::kCloseWait || state_ == TcpState::kClosing ||
      state_ == TcpState::kLastAck || state_ == TcpState::kTimeWait ||
      state_ == TcpState::kClosed) {
    // Peer already sent FIN; anything further is bogus.
    if (data != nullptr) {
      pool.FreeChain(std::move(data));
    }
    return;
  }

  if (seq != rcv_nxt_) {
    // Out of order: stash for later, duplicate-ACK immediately. Segments
    // entirely beyond the advertised window are dropped, not stashed —
    // the queue must stay bounded by the receive buffer.
    ++stack_->stats().out_of_order_segs;
    const bool in_window =
        SeqLt(seq, rcv_nxt_ + static_cast<uint32_t>(socket_->rcv().space()));
    if (in_window && (len > 0 || fin)) {
      auto it = reassembly_.begin();
      while (it != reassembly_.end() && SeqLt(it->seq, seq)) {
        ++it;
      }
      if (it == reassembly_.end() || it->seq != seq) {
        reassembly_.insert(it, ReasmSegment{seq, len, fin, std::move(data)});
        data = nullptr;
        recent_sack_start_ = seq;
        recent_sack_end_ = seq + static_cast<uint32_t>(len);
      }
    }
    if (data != nullptr) {
      pool.FreeChain(std::move(data));
    }
    ack_now_ = true;
    return;
  }

  bool got_fin = fin;
  if (len > 0) {
    rcv_nxt_ += static_cast<uint32_t>(len);
    AppendInOrder(std::move(data));
  } else if (data != nullptr) {
    pool.FreeChain(std::move(data));
  }

  const bool had_reassembly = !reassembly_.empty();
  if (had_reassembly) {
    got_fin = DrainReassembly() || got_fin;
    ack_now_ = true;  // BSD acks immediately after a gap fills
  }

  if (len > 0) {
    if (DelackEnabled()) {
      delack_pending_ = true;
      ArmDelack();
    } else {
      ack_now_ = true;  // delayed ACKs disabled: ack every data segment
    }
    socket_->ReadWakeup();
  }
  if (got_fin) {
    ProcessFin();
  }
}

bool TcpConnection::DrainReassembly() {
  bool fin = false;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = reassembly_.begin(); it != reassembly_.end(); ++it) {
      if (it->seq == rcv_nxt_) {
        rcv_nxt_ += static_cast<uint32_t>(it->len);
        AppendInOrder(std::move(it->data));
        fin = fin || it->fin;
        reassembly_.erase(it);
        progressed = true;
        socket_->ReadWakeup();
        break;
      }
      if (SeqLt(it->seq, rcv_nxt_)) {
        // Overlapped by data that arrived in order meanwhile; drop it.
        stack_->host().pool().FreeChain(std::move(it->data));
        reassembly_.erase(it);
        progressed = true;
        break;
      }
    }
  }
  return fin;
}

void TcpConnection::ProcessFin() {
  rcv_nxt_ += 1;
  ack_now_ = true;
  socket_->MarkEof();
  switch (state_) {
    case TcpState::kEstablished:
    case TcpState::kSynReceived:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      EnterTimeWait();
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

TcpConnection::SegmentPlan TcpConnection::PlanSegment() {
  SegmentPlan p;
  if (state_ == TcpState::kClosed || state_ == TcpState::kListen) {
    return p;
  }

  // Flags by state (tcp_outflags).
  switch (state_) {
    case TcpState::kSynSent:
      p.flags.syn = true;
      break;
    case TcpState::kSynReceived:
      p.flags.syn = true;
      p.flags.ack = true;
      break;
    default:
      p.flags.ack = true;
      break;
  }
  // Our SYN is already out and unacknowledged: don't repeat it in new
  // segments (only a retransmit, with snd_nxt reset, resends it).
  if (p.flags.syn && SeqGt(snd_nxt_, snd_una_)) {
    p.flags.syn = false;
  }

  const size_t avail = socket_->snd().cc();
  const uint32_t win = std::min(snd_wnd_, cc_.cwnd());

  size_t len = 0;
  const size_t usable = std::min<size_t>(avail, win);
  // Data offset within the send buffer (the SYN sequence slot is excluded).
  size_t data_off = snd_nxt_ - snd_una_;
  if (SeqLt(snd_una_, iss_ + 1)) {
    data_off = SeqGt(snd_nxt_, iss_ + 1) ? snd_nxt_ - (iss_ + 1) : 0;
  }

  if (force_rexmt_) {
    // RewindRetransmit: one segment at snd_nxt, regardless of what the
    // congestion/peer window would otherwise allow — the variant asking for
    // it already accounted the segment against the pipe.
    if (avail > data_off) {
      p.len = std::min(avail - data_off, t_maxseg_);
      p.send = p.len > 0;
    }
    return p;
  }
  if (usable > data_off) {
    len = usable - data_off;
  }
  p.window_limited = snd_wnd_ < avail && snd_wnd_ <= win;
  if (len > t_maxseg_) {
    len = t_maxseg_;
    p.sendalot = true;
  }
  if (p.flags.syn) {
    len = 0;
    p.sendalot = false;
  }

  // FIN once all data is queued out.
  const bool closing_state = state_ == TcpState::kFinWait1 || state_ == TcpState::kLastAck ||
                             state_ == TcpState::kClosing;
  if (closing_state && data_off + len == avail && !p.flags.syn) {
    p.flags.fin = true;
  }
  // Don't re-emit an already-sent FIN unless retransmitting.
  if (p.flags.fin && fin_sent_ && SeqGt(snd_nxt_, snd_una_) && snd_nxt_ == snd_max_) {
    p.flags.fin = false;
  }

  p.len = len;

  // --- send decision ---
  const bool idle = snd_max_ == snd_una_;
  if (force_probe_ && len == 0 && avail > data_off && win == 0) {
    p.len = 1;
    p.send = true;
    return p;
  }
  if (len > 0) {
    if (len == t_maxseg_) {
      p.send = true;
    } else if (idle && data_off + len == avail) {
      p.send = true;  // everything we have, nothing outstanding
    } else if (socket_->nodelay_option().value_or(stack_->config().nodelay)) {
      p.send = true;  // TCP_NODELAY defeats the Nagle algorithm
    } else if (SeqLt(snd_nxt_, snd_max_)) {
      p.send = true;  // retransmission: Nagle never blocks resending
    } else if (max_sndwnd_ > 0 && len >= max_sndwnd_ / 2) {
      // The BSD clause that keeps window-limited senders moving: send once
      // we can fill half of the largest window the peer ever offered.
      p.send = true;
    }
  }
  if (p.flags.syn || p.flags.fin) {
    p.send = true;
  }
  if (ack_now_) {
    p.send = true;
  }
  if (!p.send && p.flags.ack && state_ != TcpState::kSynSent) {
    // Window update: announce when the window opens by 2 segments or half
    // the receive buffer.
    const uint32_t announce = AnnounceWindow();
    const int64_t adv = static_cast<int64_t>(rcv_nxt_ + announce) -
                        static_cast<int64_t>(rcv_adv_);
    if (adv >= static_cast<int64_t>(2 * t_maxseg_) ||
        2 * adv >= static_cast<int64_t>(socket_->rcv().hiwat())) {
      p.send = true;
    }
  }
  return p;
}

void TcpConnection::Output() {
  Host& host = stack_->host();
  ScopedSpan seg(&host.tracker(), SpanId::kTxTcpSegment);
  while (true) {
    const SegmentPlan plan = PlanSegment();
    if (!plan.send) {
      TraceHeldData(plan);
      return;
    }
    EmitSegment(plan);
    if (!plan.sendalot) {
      return;
    }
  }
}

void TcpConnection::TraceHeldData(const SegmentPlan& plan) {
  // tcp_output had sendable data but the send rules held it back. Count and
  // trace the hold so attribution can blame sender-side ACK-wait time, and
  // split Nagle holds (peer window is open; we are waiting for our own
  // outstanding data to be acked) from silly-window holds (the peer's tiny
  // window is what makes the segment small).
  if (plan.len == 0 ||
      (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait)) {
    return;
  }
  TcpStats& stats = stack_->stats();
  if (plan.window_limited && plan.len < t_maxseg_) {
    ++stats.sws_holds;
  } else {
    ++stats.nagle_holds;
  }
  stack_->host().TracePacket(TraceLayer::kTcp, TraceEventKind::kNagleHold, TraceFlow(),
                             snd_nxt_ - iss_, plan.len);
}

bool TcpConnection::DelackEnabled() const {
  return socket_->delack_option().value_or(stack_->config().delack);
}

SimDuration TcpConnection::DelackDelay() const {
  return socket_->delack_timeout_option().value_or(stack_->config().delack_timeout);
}

uint32_t TcpConnection::AnnounceWindow() const {
  size_t announce = std::min<size_t>(socket_->rcv().space(), kMaxWindow);
  const size_t clamp = stack_->config().rcv_window_clamp;
  if (clamp > 0) {
    announce = std::min(announce, clamp);
  }
  return static_cast<uint32_t>(announce);
}

void TcpConnection::AttachSackBlocks(TcpOptions* options) const {
  // Coalesce the reassembly queue (kept sorted by sequence) into contiguous
  // blocks, then report the block holding the most recent arrival first
  // (RFC 2018 section 4) and the rest in ascending order.
  std::vector<TcpSackBlock> blocks;
  for (const ReasmSegment& seg : reassembly_) {
    const uint32_t start = seg.seq;
    const uint32_t end = seg.seq + static_cast<uint32_t>(seg.len);
    if (!blocks.empty() && blocks.back().end == start) {
      blocks.back().end = end;
    } else {
      blocks.push_back({start, end});
    }
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    const bool recent = SeqLeq(blocks[i].start, recent_sack_start_) &&
                        SeqGeq(blocks[i].end, recent_sack_end_);
    if (recent && i != 0) {
      std::rotate(blocks.begin(), blocks.begin() + i, blocks.begin() + i + 1);
      break;
    }
  }
  if (blocks.size() > kTcpMaxSackBlocks) {
    blocks.resize(kTcpMaxSackBlocks);
  }
  options->sack = std::move(blocks);
}

void TcpConnection::EmitSegment(const SegmentPlan& plan) {
  Host& host = stack_->host();
  Cpu& cpu = host.cpu();
  MbufPool& pool = host.pool();
  const CostProfile& prof = cpu.profile();
  TcpStats& stats = stack_->stats();

  cpu.Charge(prof.tcp_output_fixed);
  force_probe_ = false;

  TcpHeader th;
  th.src_port = pcb_.local.port;
  th.dst_port = pcb_.remote.port;
  th.seq = snd_nxt_;
  th.flags = plan.flags;
  if (plan.flags.ack) {
    th.ack = rcv_nxt_;
  }
  const uint32_t announce = AnnounceWindow();
  th.window = static_cast<uint16_t>(announce);
  if (plan.flags.syn) {
    size_t adv_mss = stack_->ip().netif()->mtu() - kIpv4HeaderBytes - kTcpMinHeaderBytes;
    if (stack_->config().mss_clamp > 0) {
      adv_mss = std::min(adv_mss, stack_->config().mss_clamp);
    }
    th.options.mss = static_cast<uint16_t>(adv_mss);
    if (request_no_checksum_) {
      th.options.alt_checksum = kTcpAltChecksumNone;
    }
    if (request_sack_) {
      th.options.sack_permitted = true;
    }
  } else if (sack_enabled_ && plan.flags.ack && !reassembly_.empty()) {
    AttachSackBlocks(&th.options);
  }
  if (plan.len > 0 && plan.flags.ack) {
    th.flags.psh = true;
  }
  const size_t hdrlen = th.HeaderLength();

  // Header mbuf with room in front for the IP and link headers.
  MbufPtr hm = pool.GetHeader(kMaxLinkHeader + kIpv4HeaderBytes);

  // Data offset within the send buffer.
  size_t data_off = snd_nxt_ - snd_una_;
  if (SeqLt(snd_una_, iss_ + 1)) {
    // SYN still unacknowledged; buffered data starts at sequence iss+1.
    data_off = SeqGt(snd_nxt_, iss_ + 1) ? snd_nxt_ - (iss_ + 1) : 0;
  }

  // Attach the payload: small amounts are copied straight into the header
  // mbuf (the cheap path visible in the paper's 4/20-byte mcopy rows);
  // larger ones get an m_copym'd chain kept for retransmission.
  MbufPtr data_chain;
  bool data_in_header = false;
  if (plan.len > 0) {
    ScopedSpan mcopy(&host.tracker(), SpanId::kTxTcpMcopy);
    if (plan.len <= hm->trailing_space() - hdrlen) {
      data_in_header = true;
      cpu.Charge(prof.tcp_copydata_small, plan.len);
    } else {
      data_chain = pool.CopyRange(socket_->snd().chain(), data_off, plan.len);
    }
  }

  // Serialize the header (checksum zero for now).
  th.checksum = 0;
  std::span<uint8_t> hdr_space = hm->Append(hdrlen);
  th.Serialize(hdr_space);
  if (data_in_header) {
    ChainCopyOut(socket_->snd().chain(), data_off, hm->Append(plan.len));
  }

  // --- checksum (§4) --- SYN segments are always checksummed; the
  // negotiated elimination applies only once the connection is up.
  uint16_t cksum = 0;
  if (!no_checksum_ || plan.flags.syn) {
    ScopedSpan cs(&host.tracker(), SpanId::kTxTcpChecksum);
    TcpPseudoHeader ph;
    ph.src = pcb_.local.addr;
    ph.dst = pcb_.remote.addr;
    ph.tcp_length = static_cast<uint16_t>(hdrlen + plan.len);
    const auto pseudo = ph.Serialize();

    const bool combined = stack_->config().checksum == ChecksumMode::kCombined;
    bool partials_usable = combined && data_chain != nullptr;
    for (const Mbuf* m = data_chain.get(); partials_usable && m != nullptr; m = m->next()) {
      if (!m->partial_cksum().has_value() || m->partial_cksum()->length != m->len()) {
        partials_usable = false;
      }
    }
    if (combined) {
      // The bookkeeping the paper's initial implementation pays on every
      // send in this mode — the source of the small-packet regression in
      // Table 6.
      cpu.Charge(prof.combined_cksum_tx_overhead);
    }

    ChecksumAccumulator acc;
    acc.Add(pseudo);
    acc.Add(std::span<const uint8_t>(hm->data(), hm->len()));
    if (partials_usable) {
      cpu.Charge(prof.pseudo_hdr_cksum);
      for (const Mbuf* m = data_chain.get(); m != nullptr; m = m->next()) {
        cpu.Charge(prof.cksum_combine);
        acc.AddPartial(*m->partial_cksum());
      }
    } else {
      if (combined) {
        ++stats.checksum_fallbacks;
      }
      cpu.Charge(prof.in_cksum, plan.len + 40,
                 1 + (data_chain ? ChainCount(data_chain.get()) : 0));
      for (const Mbuf* m = data_chain.get(); m != nullptr; m = m->next()) {
        acc.Add(m->bytes());
      }
    }
    cksum = acc.Finalize();
  }
  StoreBe16(hm->data() + 16, cksum);  // checksum field at offset 16

  if (data_chain != nullptr) {
    hm->SetNext(std::move(data_chain));
  }

  // --- sequence bookkeeping ---
  if (plan.flags.syn) {
    snd_nxt_ += 1;
  }
  snd_nxt_ += static_cast<uint32_t>(plan.len);
  if (plan.flags.fin) {
    fin_sent_ = true;
    snd_nxt_ += 1;  // the FIN occupies one sequence slot (also on rexmt)
  }
  if (SeqGt(snd_nxt_, snd_max_)) {
    if (!rtt_timing_) {
      rtt_timing_ = true;
      rtt_seq_ = snd_max_;
      rtt_started_ = host.CurrentTime();
    }
    snd_max_ = snd_nxt_;
  } else if (plan.len > 0) {
    ++stats.retransmits;
    host.TracePacket(TraceLayer::kTcp, TraceEventKind::kRetransmit, TraceFlow(),
                     th.seq - iss_, plan.len);
  }
  if (snd_nxt_ != snd_una_ && rexmt_timer_ == kInvalidEventId) {
    ArmRexmt();
  }

  if (SeqGt(rcv_nxt_ + announce, rcv_adv_)) {
    rcv_adv_ = rcv_nxt_ + announce;
  }
  last_ack_sent_ = rcv_nxt_;
  ack_now_ = false;
  if (delack_pending_) {
    delack_pending_ = false;
    CancelDelack();
  }

  ++stats.segs_sent;
  if (plan.len > 0) {
    ++stats.data_segs_sent;
    stats.bytes_sent += plan.len;
    if (Histogram* hist = stack_->tx_bytes_histogram(); hist != nullptr) {
      hist->Add(static_cast<int64_t>(plan.len));
    }
  }
  host.TracePacket(TraceLayer::kTcp, TraceEventKind::kSegTx, TraceFlow(), th.seq - iss_,
                   plan.len);
  if (stack_->tap() != nullptr) {
    stack_->tap()->OnSegment({host.CurrentTime(), /*outbound=*/true, pcb_.local, pcb_.remote,
                              th, plan.len});
  }

  if (TraceEnabled() && !no_checksum_) {
    // Sender self-verify: recompute the checksum the way the receiver will.
    TcpPseudoHeader vph;
    vph.src = pcb_.local.addr;
    vph.dst = pcb_.remote.addr;
    vph.tcp_length = static_cast<uint16_t>(hdrlen + plan.len);
    ChecksumAccumulator vacc;
    vacc.Add(vph.Serialize());
    for (const Mbuf* m = hm.get(); m != nullptr; m = m->next()) {
      vacc.Add(m->bytes());
    }
    if (vacc.Finalize() != 0) {
      std::fprintf(stderr, "[%s] SELF-CHECK FAIL fold=%04x len=%zu hdrlen=%zu\n",
                   host.name().c_str(), vacc.Finalize(), plan.len, hdrlen);
    }
  }
  if (TraceEnabled()) {
    std::fprintf(stderr, "[%s %8ld] OUT %s seq=%u ack=%u len=%zu win=%u state=%s una=%u nxt=%u max=%u\n",
                 host.name().c_str(), (long)host.CurrentTime().nanos() / 1000,
                 th.flags.ToString().c_str(), th.seq - iss_, th.ack - irs_, plan.len, th.window,
                 TcpStateName(state_), snd_una_ - iss_, snd_nxt_ - iss_, snd_max_ - iss_);
  }

  stack_->ip().Output(std::move(hm), pcb_.local.addr, pcb_.remote.addr, kIpProtoTcp);
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

SimDuration TcpConnection::CurrentRto() const {
  const TcpConfig& cfg = stack_->config();
  int64_t base = std::max(cfg.rexmt_min.nanos(), 2 * srtt_.nanos());
  base <<= std::min(rexmt_shift_, 10);
  return SimDuration::FromNanos(std::min(base, cfg.rexmt_max.nanos()));
}

void TcpConnection::ArmRexmt() {
  CancelRexmt();
  const SimDuration rto = CurrentRto();
  rexmt_timer_ = stack_->host().After(rto, [this, rto] {
    rexmt_timer_ = kInvalidEventId;
    // The interval that just elapsed is dead air: the ACK clock stopped when
    // this timer was (re)armed and only the timeout restarts transmission.
    stack_->stats().rexmt_stall_ns += static_cast<uint64_t>(rto.nanos());
    // The edge value is the dead-air length, so a timeline can reconstruct
    // rexmt_stall_ns exactly by summing kTcpRtoFire edges.
    stack_->host().TraceSampleEdge(TsMetric::kTcpRtoFire, TraceFlow(), rto.nanos());
    RexmtTimeout();
  });
}

void TcpConnection::CancelRexmt() {
  if (rexmt_timer_ != kInvalidEventId) {
    stack_->host().CancelCallout(rexmt_timer_);
    rexmt_timer_ = kInvalidEventId;
  }
}

void TcpConnection::RexmtTimeout() {
  TcpStats& stats = stack_->stats();
  ++stats.rexmt_timeouts;
  if (++rexmt_shift_ > stack_->config().max_rexmt) {
    DropConnection(/*error=*/true);
    return;
  }
  // Slow-start restart.
  cc_.OnTimeout(snd_wnd_);
  if (cc_.variant() != CongestionVariant::kLegacy) {
    TraceCwnd();
  }
  snd_nxt_ = snd_una_;
  rtt_timing_ = false;
  if (snd_wnd_ == 0 && socket_->snd().cc() > 0) {
    force_probe_ = true;  // zero-window probe
    ++stats.zero_window_probes;
  }
  Output();
  if (snd_una_ != snd_max_ || snd_nxt_ != snd_una_ || state_ == TcpState::kSynSent ||
      state_ == TcpState::kSynReceived) {
    ArmRexmt();
  }
}

void TcpConnection::ArmDelack() {
  if (delack_timer_ != kInvalidEventId) {
    return;
  }
  delack_timer_ = stack_->host().After(DelackDelay(), [this] {
    delack_timer_ = kInvalidEventId;
    DelackTimeout();
  });
}

void TcpConnection::CancelDelack() {
  if (delack_timer_ != kInvalidEventId) {
    stack_->host().CancelCallout(delack_timer_);
    delack_timer_ = kInvalidEventId;
  }
}

void TcpConnection::DelackTimeout() {
  if (!delack_pending_) {
    return;
  }
  delack_pending_ = false;
  ack_now_ = true;
  ++stack_->stats().delayed_acks_fired;
  stack_->host().TracePacket(TraceLayer::kTcp, TraceEventKind::kDelayedAck, TraceFlow(),
                             rcv_nxt_ - irs_, 0);
  Output();
}

void TcpConnection::ArmKeepalive(SimDuration delay) {
  CancelKeepalive();
  keepalive_timer_ = stack_->host().After(delay, [this] {
    keepalive_timer_ = kInvalidEventId;
    KeepaliveTimeout();
  });
}

void TcpConnection::CancelKeepalive() {
  if (keepalive_timer_ != kInvalidEventId) {
    stack_->host().CancelCallout(keepalive_timer_);
    keepalive_timer_ = kInvalidEventId;
  }
}

void TcpConnection::KeepaliveTimeout() {
  if (state_ != TcpState::kEstablished) {
    return;
  }
  if (keepalive_unanswered_ >= stack_->config().keepalive_probes) {
    ++stack_->stats().keepalive_drops;
    DropConnection(/*error=*/true);
    return;
  }
  ++keepalive_unanswered_;
  SendKeepaliveProbe();
  ArmKeepalive(stack_->config().keepalive_interval);
}

void TcpConnection::SendKeepaliveProbe() {
  // BSD-style probe: an otherwise-empty segment whose sequence number is
  // one below the window, forcing the peer to answer with a bare ACK.
  Host& host = stack_->host();
  Cpu& cpu = host.cpu();
  const CostProfile& prof = cpu.profile();
  ScopedSpan other(&host.tracker(), SpanId::kOther);
  cpu.Charge(prof.tcp_output_fixed);

  TcpHeader th;
  th.src_port = pcb_.local.port;
  th.dst_port = pcb_.remote.port;
  th.seq = snd_una_ - 1;
  th.ack = rcv_nxt_;
  th.flags.ack = true;
  th.window = static_cast<uint16_t>(AnnounceWindow());

  MbufPtr hm = host.pool().GetHeader(kMaxLinkHeader + kIpv4HeaderBytes);
  th.checksum = 0;
  th.Serialize(hm->Append(th.HeaderLength()));
  if (!no_checksum_) {
    TcpPseudoHeader ph;
    ph.src = pcb_.local.addr;
    ph.dst = pcb_.remote.addr;
    ph.tcp_length = static_cast<uint16_t>(th.HeaderLength());
    ChecksumAccumulator acc;
    acc.Add(ph.Serialize());
    acc.Add(hm->bytes());
    StoreBe16(hm->data() + 16, acc.Finalize());
  }
  ++stack_->stats().keepalive_probes_sent;
  ++stack_->stats().segs_sent;
  if (stack_->tap() != nullptr) {
    stack_->tap()->OnSegment({host.CurrentTime(), /*outbound=*/true, pcb_.local, pcb_.remote,
                              th, 0});
  }
  stack_->ip().Output(std::move(hm), pcb_.local.addr, pcb_.remote.addr, kIpProtoTcp);
}

void TcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  CancelRexmt();
  if (timewait_timer_ == kInvalidEventId) {
    timewait_timer_ = stack_->host().After(2 * stack_->config().msl, [this] {
      timewait_timer_ = kInvalidEventId;
      DropConnection(/*error=*/false);
    });
  }
}

void TcpConnection::DropConnection(bool error) {
  if (state_ == TcpState::kClosed) {
    return;
  }
  state_ = TcpState::kClosed;
  CancelRexmt();
  CancelDelack();
  CancelKeepalive();
  if (timewait_timer_ != kInvalidEventId) {
    stack_->host().CancelCallout(timewait_timer_);
    timewait_timer_ = kInvalidEventId;
  }
  stack_->pcbs().Remove(&pcb_);
  if (embryonic_) {
    // A passive open that died before establishing frees its backlog slot.
    embryonic_ = false;
    listener_socket_->EmbryonicEnded();
  }
  if (error) {
    ++stack_->stats().conns_dropped;
    socket_->MarkError();
  } else {
    socket_->MarkClosed();
  }
}

}  // namespace tcplat
