// Interactive-workload cells: the pathological Nagle × delayed-ACK
// scenarios from the paper's interactive-traffic discussion, packaged the
// same way as capacity.h so bench/ablation_delack, bench/tail_blame and the
// interactive tests all run byte-identical cells.
//
// The canonical pathology: a client writes each request as two small
// chunks. Chunk 1 leaves immediately (sender idle), chunk 2 is held by the
// Nagle rule behind it, and the server — which needs the whole request
// before it can reply — only releases the ACK that frees chunk 2 when its
// delayed-ACK timer fires. Round-trip latency collapses to the delack
// timer. Setting TCP_NODELAY on the client, or disabling the delayed-ACK
// timer on the server, makes the mode vanish; that appear/vanish pair is
// what the self-verifying blame tests pin.
//
// Two scripted variants ride along:
//  * Silly-window scenario: the server's announced window is artificially
//    clamped so chunk 2 is held *window-limited* (tcp.sws_holds) rather
//    than Nagle-limited; the control cell (clamp off) must count zero.
//  * Retransmit storm: Gilbert-Elliott burst loss on every switch output
//    under many small flows; the run must complete with a bounded
//    retransmit count (no ACK-clock collapse).

#ifndef SRC_WORKLOAD_INTERACTIVE_H_
#define SRC_WORKLOAD_INTERACTIVE_H_

#include <string>
#include <vector>

#include "src/fault/impairment.h"
#include "src/workload/flow_driver.h"
#include "src/workload/star_testbed.h"

namespace tcplat {

// Which knob the cell turns. kPathological leaves both defaults on (Nagle +
// delayed ACK), the other two each remove one leg of the interaction.
enum class InteractiveKnob { kPathological, kNodelay, kDelackOff };

const char* InteractiveKnobName(InteractiveKnob knob);

struct InteractiveCell {
  NetworkKind network = NetworkKind::kAtm;
  int clients = 1;
  int servers = 1;
  int flows = 1;
  // Request shape: one write per chunk. {100, 100} is the canonical
  // two-chunk small write that arms the pathology.
  std::vector<size_t> request_chunks = {100, 100};
  size_t response_size = 200;
  int iterations = 24;
  int warmup = 4;
  int pipeline_depth = 1;
  SimDuration think_time = SimDuration::FromMicros(500);
  InteractiveKnob knob = InteractiveKnob::kPathological;
  // Mixed-population cells (bench/tail_blame): the first clean_flows flows
  // run well-behaved — one write per request and TCP_NODELAY — so they own
  // the p50 while the remaining (knob-shaped) flows own the p99, and the
  // p99-p50 gap *is* the pathology.
  int clean_flows = 0;
  // Delayed-ACK timer for every stack; zero keeps the config default
  // (200 ms, the 4.3BSD fast-timeout bound).
  SimDuration delack_timeout;
  // Silly-window scenario: clamp the *server* stacks' announced receive
  // window to this many bytes (0 = off). With a clamp below the request
  // size, chunk 2's hold is window-limited and counts as tcp.sws_holds.
  size_t server_rcv_clamp = 0;
  // Retransmit-storm scenario: applied to every switch output port when
  // active() (burst loss via the Gilbert-Elliott knobs). Flows run with
  // tolerate_errors so a connection death is an aborted flow, not a crash.
  ImpairmentConfig impairment;
  // Streaming variant (jittertrap-style): each flow appends
  // request_chunks[0] bytes every stream_interval instead of running
  // request/response; latency is send-entry to sink-side delivery.
  bool streaming = false;
  SimDuration stream_interval;
  // Keystroke variant (telnet shape): each flow types this many 1-byte
  // writes on an open loop, one every keystroke_interval, against a
  // per-byte echo server; latency is keystroke entry to echo arrival.
  // Overrides the request/response and streaming shapes when > 0.
  int keystrokes = 0;
  SimDuration keystroke_interval = SimDuration::FromMillis(150);
  uint64_t seed = 1;
  int shards = 0;
  unsigned shard_threads = 0;
};

struct InteractiveOutcome {
  uint64_t samples = 0;
  SimDuration mean;
  SimDuration p50;
  SimDuration p99;
  uint64_t completed = 0;
  uint64_t aborted = 0;
  // Summed over every stack in the testbed after the run.
  uint64_t nagle_holds = 0;
  uint64_t sws_holds = 0;
  uint64_t delayed_acks_fired = 0;
  uint64_t retransmits = 0;
  uint64_t rexmt_timeouts = 0;
  uint64_t fast_retransmits = 0;
  // Drops the impairment policy injected (storm scenario; 0 otherwise).
  uint64_t drops_injected = 0;
  SimDuration sim_elapsed;
  uint64_t sim_events = 0;
};

// Flow specs for the cell, exported so bench/tail_blame can mix
// pathological and clean flows inside one testbed.
std::vector<FlowSpec> BuildInteractiveFlows(const InteractiveCell& cell, int clients,
                                            int servers);

// Builds a fresh star testbed, applies the cell's knobs (per-flow socket
// options, delack timer, window clamp, impairment), runs every flow to
// completion and reduces the stats. The tracer overload attaches `tracer`
// to every host and the switch first.
InteractiveOutcome RunInteractiveCell(const InteractiveCell& cell);
InteractiveOutcome RunInteractiveCell(const InteractiveCell& cell, Tracer* tracer);

// Table formatting (simulated quantities only — byte-identical across job
// counts, like CapacityHeader/CapacityRow).
std::vector<std::string> InteractiveHeader();
std::vector<std::string> InteractiveRow(const InteractiveCell& cell,
                                        const InteractiveOutcome& out);

}  // namespace tcplat

#endif  // SRC_WORKLOAD_INTERACTIVE_H_
