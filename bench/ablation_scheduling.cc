// Ablation A3: the share of round-trip latency spent on scheduling — the
// paper's §2.2.4 observation that IPQ + Wakeup cost 68 us of the 1021 us
// 4-byte round trip (6.7%) but wash out for large transfers. Also reports
// the hypothetical RTT with free scheduling (softint dispatch and context
// switch costs zeroed), the bound on what a scheduling-free OS could save.

#include <cstdio>
#include <vector>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"

namespace tcplat {
namespace {

void Run() {
  std::printf("Ablation A3: scheduling's share of round-trip latency\n\n");
  TextTable t({"Size (bytes)", "RTT (us)", "IPQ+Wakeup per transfer (us)", "Share (%)",
               "RTT, free scheduling (us)", "Saving (%)"});
  struct Row {
    double rtt;
    double sched;
    double free_rtt;
  };
  const std::vector<Row> rows = ParallelMap<Row>(paper::kSizes.size(), [](size_t i) {
    RpcOptions opt;
    opt.size = paper::kSizes[i];
    opt.iterations = 100;

    TestbedConfig cfg;
    Testbed tb(cfg);
    const RpcResult base = RunRpcBenchmark(tb, opt);

    TestbedConfig free_cfg;
    free_cfg.profile.softint_dispatch = {0.0, 0.0, 0.0};
    free_cfg.profile.wakeup_ctx_switch = {0.0, 0.0, 0.0};
    Testbed free_tb(free_cfg);
    const RpcResult free_sched = RunRpcBenchmark(free_tb, opt);

    // One transfer's scheduling cost over the whole round trip — the
    // paper's own arithmetic (68 us / 1021 us at 4 bytes).
    return Row{base.MeanRtt().micros(),
               base.SpanMean(SpanId::kRxIpq).micros() + base.SpanMean(SpanId::kRxWakeup).micros(),
               free_sched.MeanRtt().micros()};
  });
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    const auto& [rtt, sched, free_rtt] = rows[i];
    t.AddRow({std::to_string(paper::kSizes[i]), TextTable::Us(rtt), TextTable::Us(sched),
              TextTable::Pct(100.0 * sched / rtt, 1), TextTable::Us(free_rtt),
              TextTable::Pct(100.0 * (rtt - free_rtt) / rtt, 1)});
  }
  t.Print();
  std::printf("\nPaper reference point: 68 us of the 1021 us 4-byte round trip (6.7%%).\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
