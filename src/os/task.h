// Coroutine type for simulated user processes.
//
// A process body is a C++20 coroutine returning SimTask. It starts
// suspended; the Host scheduler resumes it, and blocking operations
// (co_await host.Block(chan), co_await host.SleepFor(d)) suspend it until a
// wakeup. The coroutine frame is owned by the SimTask and destroyed with it.

#ifndef SRC_OS_TASK_H_
#define SRC_OS_TASK_H_

#include <coroutine>
#include <exception>
#include <utility>

namespace tcplat {

class SimTask {
 public:
  struct promise_type {
    SimTask get_return_object() {
      return SimTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  SimTask() = default;
  explicit SimTask(Handle h) : handle_(h) {}
  SimTask(SimTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { Destroy(); }

  Handle handle() const { return handle_; }
  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_;
};

}  // namespace tcplat

#endif  // SRC_OS_TASK_H_
