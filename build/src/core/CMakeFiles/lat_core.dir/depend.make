# Empty dependencies file for lat_core.
# This may be replaced when dependencies are built.
