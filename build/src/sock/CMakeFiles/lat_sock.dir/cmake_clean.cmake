file(REMOVE_RECURSE
  "CMakeFiles/lat_sock.dir/socket.cc.o"
  "CMakeFiles/lat_sock.dir/socket.cc.o.d"
  "liblat_sock.a"
  "liblat_sock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_sock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
