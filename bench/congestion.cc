// Congested-bottleneck goodput grid: the congestion-control era measured on
// the paper's testbed. Many bulk flows funnel through one switch output
// trunk with finite per-VC buffers; the grid crosses {congestion variant x
// drop policy x buffer size} (plus a flow-count axis in full mode) and
// reports per-flow goodput, bottleneck efficiency (useful payload over
// cell-slots carried), and Jain's fairness.
//
// The orderings this reproduces, asserted as exit-code checks:
//   * SACK + EPD beats Reno + tail drop on both goodput and efficiency at
//     every common buffer size — frame-level discard stops single-cell
//     losses from poisoning whole AAL frames, and the scoreboard repairs
//     multi-segment losses without timeout stalls.
//   * The gap shrinks as buffers grow: with enough buffer nothing drops and
//     every variant converges on the trunk rate.
//   * The tail-blame section attributes the slow flows' completion deficit
//     (p99 vs p50 flow) to retransmission-timeout dead air (rexmt_stall_ns),
//     pinning the losers' gap on the timeout stage rather than leaving it
//     as one opaque number.
//
// Every printed quantity is simulated, so output is byte-identical across
// TCPLAT_JOBS settings and repeated runs at a fixed --seed. --out writes a
// flat BENCH_congestion.json for the regression gate; --csv dumps the
// per-flow table.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "src/core/table.h"
#include "src/exec/executor.h"
#include "src/trace/timeseries.h"
#include "src/trace/tracer.h"
#include "src/workload/congestion.h"

namespace tcplat {
namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) {
    ++g_failures;
  }
}

struct CellResult {
  CongestionCell cell;
  CongestionOutcome outcome;
  // Tail blame over per-flow completion times: the p50 (median) flow vs the
  // p99 (slowest) flow, and how much of the deficit the slow flow spent
  // parked on fired retransmission timers.
  int64_t p50_elapsed_ns = 0;
  int64_t p99_elapsed_ns = 0;
  int64_t stall_delta_ns = 0;  // slow flow's RTO dead air minus median's
  int64_t rexmt_delta_ns = 0;  // extra retransmit serialization at the trunk
  double blame_share = 0.0;    // (stall + rexmt deltas) / (p99 - p50), in [0,1]
};

// Trunk time to carry one retransmitted segment: MSS payload + 40 bytes of
// TCP/IP header, AAL3/4-framed (8 bytes CPCS overhead, 44 payload bytes per
// 53-byte cell) at the trunk rate. A retransmission the median flow did not
// need costs the loser this much extra wire time.
int64_t SegmentTrunkNs(const CongestionCell& cell) {
  const uint64_t cpcs_bytes = cell.mss_clamp + 40 + 8;
  const uint64_t cells = (cpcs_bytes + 43) / 44;
  return static_cast<int64_t>(static_cast<double>(cells * 53 * 8) * 1e9 / cell.trunk_bps);
}

CellResult RunCell(const CongestionCell& cell) {
  CellResult r;
  r.cell = cell;
  r.outcome = RunCongestionCell(cell);

  // Order flows by completion time (aborted flows sort last via INT64_MAX).
  std::vector<size_t> order(r.outcome.flow_stats.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  auto elapsed = [&](size_t f) {
    const int64_t e = r.outcome.flow_stats[f].elapsed_ns;
    return e < 0 ? INT64_MAX : e;
  };
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return elapsed(a) < elapsed(b); });
  if (!order.empty()) {
    const size_t med = order[order.size() / 2];
    const size_t slow = order.back();
    r.p50_elapsed_ns = elapsed(med);
    r.p99_elapsed_ns = elapsed(slow);
    const int64_t gap = r.p99_elapsed_ns - r.p50_elapsed_ns;
    r.stall_delta_ns = static_cast<int64_t>(r.outcome.flow_stats[slow].rexmt_stall_ns) -
                       static_cast<int64_t>(r.outcome.flow_stats[med].rexmt_stall_ns);
    r.rexmt_delta_ns =
        (static_cast<int64_t>(r.outcome.flow_stats[slow].retransmits) -
         static_cast<int64_t>(r.outcome.flow_stats[med].retransmits)) *
        SegmentTrunkNs(cell);
    if (gap > 0) {
      r.blame_share = std::clamp(
          static_cast<double>(std::max<int64_t>(r.stall_delta_ns, 0) +
                              std::max<int64_t>(r.rexmt_delta_ns, 0)) /
              static_cast<double>(gap),
          0.0, 1.0);
    }
  }
  return r;
}

const CellResult* Find(const std::vector<CellResult>& results, CongestionVariant v,
                       DropPolicy p, size_t buf, int flows) {
  for (const CellResult& r : results) {
    if (r.cell.variant == v && r.cell.policy == p && r.cell.buffer_cells == buf &&
        r.cell.flows == flows) {
      return &r;
    }
  }
  return nullptr;
}

void PrintGrid(const std::vector<CellResult>& results) {
  TextTable table(CongestionHeader());
  for (const CellResult& r : results) {
    table.AddRow(CongestionRow(r.cell, r.outcome));
  }
  table.Print();
}

void PrintTailBlame(const std::vector<CellResult>& results) {
  std::printf("\nTail blame (per-flow completion, p99 = slowest flow vs p50 = median):\n");
  TextTable table({"variant", "policy", "buf", "p50 done", "p99 done", "gap",
                   "RTO stall", "rexmt tx", "share"});
  for (const CellResult& r : results) {
    const int64_t gap = r.p99_elapsed_ns - r.p50_elapsed_ns;
    table.AddRow({CongestionVariantName(r.cell.variant), DropPolicyName(r.cell.policy),
                  std::to_string(r.cell.buffer_cells),
                  TextTable::Num(static_cast<double>(r.p50_elapsed_ns) / 1e6, 1) + " ms",
                  TextTable::Num(static_cast<double>(r.p99_elapsed_ns) / 1e6, 1) + " ms",
                  TextTable::Num(static_cast<double>(gap) / 1e6, 1) + " ms",
                  TextTable::Num(static_cast<double>(r.stall_delta_ns) / 1e6, 1) + " ms",
                  TextTable::Num(static_cast<double>(r.rexmt_delta_ns) / 1e6, 1) + " ms",
                  TextTable::Num(100.0 * r.blame_share, 1) + "%"});
  }
  table.Print();
}

void AppendFlowCsv(std::string* out, const CellResult& r) {
  char buf[256];
  for (size_t f = 0; f < r.outcome.flow_stats.size(); ++f) {
    const CongestionFlowStats& fs = r.outcome.flow_stats[f];
    std::snprintf(buf, sizeof(buf),
                  "%s,%s,%zu,%d,%zu,%.0f,%" PRId64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%" PRIu64 "\n",
                  CongestionVariantName(r.cell.variant), DropPolicyName(r.cell.policy),
                  r.cell.buffer_cells, r.cell.flows, f, fs.goodput_bps, fs.elapsed_ns,
                  fs.retransmits, fs.rexmt_timeouts, fs.fast_retransmits, fs.rexmt_stall_ns);
    *out += buf;
  }
}

std::string ToCsv(const std::vector<CellResult>& results) {
  std::string out =
      "variant,policy,buffer_cells,flows,flow,goodput_bps,elapsed_ns,"
      "retransmits,rexmt_timeouts,fast_retransmits,rexmt_stall_ns\n";
  for (const CellResult& r : results) {
    AppendFlowCsv(&out, r);
  }
  return out;
}

// Flat one-level JSON for the regression gate: per-cell goodput/efficiency/
// fairness (gated on a 0.90x floor) plus deterministic counters and the
// acceptance booleans (gated exactly).
std::string ToJson(const std::vector<CellResult>& results, const BenchFlags& flags,
                   bool orderings_hold, bool gap_shrinks, bool all_completed,
                   bool sawtooth, bool plateau, bool dead_air) {
  std::string out = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf), "  \"quick\": %s,\n  \"flows\": %d,\n  \"seed\": %" PRIu64
                                  ",\n",
                flags.quick ? "true" : "false", flags.flows, flags.seed);
  out += buf;
  for (const CellResult& r : results) {
    std::string prefix = std::string("congestion_") + CongestionVariantName(r.cell.variant) +
                         "_" + DropPolicyName(r.cell.policy) + "_" +
                         std::to_string(r.cell.buffer_cells);
    if (r.cell.flows != flags.flows) {
      prefix += "_f" + std::to_string(r.cell.flows);
    }
    std::snprintf(buf, sizeof(buf),
                  "  \"%s_goodput_mbps\": %.3f,\n  \"%s_efficiency\": %.4f,\n"
                  "  \"%s_fairness\": %.4f,\n  \"%s_retransmits\": %" PRIu64
                  ",\n  \"%s_timeouts\": %" PRIu64 ",\n",
                  prefix.c_str(), r.outcome.aggregate_goodput_mbps, prefix.c_str(),
                  r.outcome.efficiency, prefix.c_str(), r.outcome.fairness, prefix.c_str(),
                  r.outcome.retransmits, prefix.c_str(), r.outcome.rexmt_timeouts);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  \"congestion_sack_epd_beats_reno_tail\": %s,\n"
                "  \"congestion_gap_shrinks_with_buffer\": %s,\n"
                "  \"congestion_all_flows_completed\": %s,\n"
                "  \"congestion_timeline_sawtooth\": %s,\n"
                "  \"congestion_timeline_epd_plateau\": %s,\n"
                "  \"congestion_timeline_dead_air_within_5pct\": %s\n}\n",
                orderings_hold ? "true" : "false", gap_shrinks ? "true" : "false",
                all_completed ? "true" : "false", sawtooth ? "true" : "false",
                plateau ? "true" : "false", dead_air ? "true" : "false");
  out += buf;
  return out;
}

// ---- Dynamics timelines -----------------------------------------------------
//
// Two extra loss-heavy cells run with the timeseries telemetry plane
// attached (src/trace/timeseries.h); the resulting cwnd / queue-occupancy
// timelines must show the congestion era's signatures, not just the right
// end-of-run aggregates:
//   * Reno + tail drop: >=3 cwnd sawteeth, each pinned exactly by the
//     loss-enter edge and its (peak, valley) cwnd edge pair.
//   * Tail-drop occupancy rides the buffer ceiling; EPD occupancy plateaus
//     strictly below it (the threshold plus at most one max-size frame).
//   * RTO dead air: summing the kTcpRtoFire edges reproduces the clients'
//     rexmt_stall_ns within 5%, and cwnd is flat inside every fired window.

struct TimelineResult {
  CongestionCell cell;
  CongestionOutcome outcome;
  std::vector<TimeseriesPoint> points;  // sorted on (ts, host)
  std::vector<std::string> host_names;
  std::string csv;
};

TimelineResult RunTimelineCell(const CongestionCell& cell) {
  TimelineResult r;
  r.cell = cell;
  Tracer tracer;
  tracer.EnableTimeseries(TimeseriesConfig{});
  r.outcome = RunCongestionCell(cell, &tracer);
  r.points = tracer.SortedTimeseriesPoints();
  r.host_names = tracer.host_names();
  r.csv = tracer.TimelineCsv();
  return r;
}

bool IsClientHost(const TimelineResult& r, uint8_t host) {
  return host < r.host_names.size() &&
         r.host_names[host].compare(0, 6, "client") == 0;
}

// Counts exact sawtooth corners. A loss-enter edge carries the peak cwnd the
// window fell from; the matching loss-exit edge (same flow, next in time)
// carries the deflated post-recovery window — ssthresh, i.e. half the
// effective window at the loss (4.3BSD's max(2*mss, min(snd_wnd, cwnd)/2)).
// A corner counts as a halving when the exit valley really is at most half
// the entry peak (one MSS of integer-division slack), strictly below it.
int CountHalvings(const TimelineResult& r) {
  const auto mss = static_cast<int64_t>(r.cell.mss_clamp);
  int halvings = 0;
  for (size_t i = 0; i < r.points.size(); ++i) {
    const TimeseriesPoint& p = r.points[i];
    if (p.metric != static_cast<uint8_t>(TsMetric::kTcpLossEnter) || !p.edge) {
      continue;
    }
    const int64_t peak = p.value;
    for (size_t j = i + 1; j < r.points.size(); ++j) {
      const TimeseriesPoint& q = r.points[j];
      if (q.host != p.host || q.key != p.key || !q.edge) {
        continue;
      }
      if (q.metric == static_cast<uint8_t>(TsMetric::kTcpLossEnter)) {
        break;  // next episode began without a traced exit
      }
      if (q.metric == static_cast<uint8_t>(TsMetric::kTcpLossExit)) {
        if (q.value < peak && 2 * q.value <= peak + 2 * mss) {
          ++halvings;
        }
        break;
      }
    }
  }
  return halvings;
}

int64_t MaxOccupancy(const TimelineResult& r) {
  int64_t max_occ = 0;
  for (const TimeseriesPoint& p : r.points) {
    if (p.metric == static_cast<uint8_t>(TsMetric::kVcOccupancy) ||
        p.metric == static_cast<uint8_t>(TsMetric::kVcHiwat)) {
      max_occ = std::max(max_occ, p.value);
    }
  }
  return max_occ;
}

// Sum of fired-RTO dead air visible in the timeline (client hosts only, to
// match the per-flow stack counters), plus the flat-cwnd verification: no
// cwnd movement for the flow inside any fired window. The window opens when
// the retransmit timer was armed, but the arming ACK's own processing tail
// (wakeup + ACK bookkeeping CPU charges) lands a few microseconds past that
// instant, so a 1 ms boundary guard — against windows that are >=300 ms by
// construction — separates the arming event from genuine ACK-clock progress.
void DeadAirFromTimeline(const TimelineResult& r, int64_t* rto_sum_ns, bool* cwnd_flat) {
  constexpr int64_t kArmGuardNs = 1'000'000;
  *rto_sum_ns = 0;
  *cwnd_flat = true;
  for (const TimeseriesPoint& p : r.points) {
    if (p.metric != static_cast<uint8_t>(TsMetric::kTcpRtoFire) || !p.edge) {
      continue;
    }
    if (IsClientHost(r, p.host)) {
      *rto_sum_ns += p.value;
    }
    const int64_t window_start = p.ts_ns - p.value;
    for (const TimeseriesPoint& q : r.points) {
      if (q.ts_ns >= p.ts_ns) {
        break;  // points are ts-sorted
      }
      if (q.ts_ns > window_start + kArmGuardNs && q.host == p.host && q.key == p.key &&
          q.metric == static_cast<uint8_t>(TsMetric::kTcpCwnd)) {
        *cwnd_flat = false;
      }
    }
  }
}

size_t EpdThresholdCells(const CongestionCell& cell) {
  if (cell.epd_threshold != 0) {
    return cell.epd_threshold;
  }
  constexpr size_t kFrameHeadroomCells = 36;
  const size_t cap = cell.buffer_cells;
  return std::max(cap / 2, cap > kFrameHeadroomCells ? cap - kFrameHeadroomCells : 0);
}

// Runs the timeline cells, applies the era-signature checks, and reports
// the acceptance booleans for the regression-gate JSON. Writes the
// tail-drop cell's timeline CSV to `csv_path` when non-empty.
bool RunTimelineSection(const BenchFlags& flags, bool* sawtooth, bool* plateau,
                        bool* dead_air_ok, const std::string& csv_path) {
  CongestionCell tail_cell;
  tail_cell.variant = CongestionVariant::kReno;
  tail_cell.policy = DropPolicy::kTailDrop;
  tail_cell.buffer_cells = 128;  // congested enough that losses recur
  tail_cell.flows = flags.flows;
  tail_cell.seed = flags.seed;
  CongestionCell epd_cell = tail_cell;
  epd_cell.policy = DropPolicy::kEpd;

  std::vector<CongestionCell> cells = {tail_cell, epd_cell};
  const std::vector<TimelineResult> tl = ParallelMap<TimelineResult>(
      cells.size(), [&](size_t i) { return RunTimelineCell(cells[i]); });
  const TimelineResult& tail = tl[0];
  const TimelineResult& epd = tl[1];

  std::printf("\ntimeline checks (reno, buf=%zu, %d flows; %zu tail / %zu epd points):\n",
              tail_cell.buffer_cells, tail_cell.flows, tail.points.size(),
              epd.points.size());
  char what[220];

  const int halvings = CountHalvings(tail);
  std::snprintf(what, sizeof(what),
                "reno+tail cwnd shows >=3 exact halving sawteeth (%d loss-enter corners)",
                halvings);
  *sawtooth = halvings >= 3;
  Check(*sawtooth, what);

  const int64_t tail_max = MaxOccupancy(tail);
  const int64_t epd_max = MaxOccupancy(epd);
  const auto threshold = static_cast<int64_t>(EpdThresholdCells(epd_cell));
  constexpr int64_t kFrameCells = 36;  // one max-size AAL frame past the BOM test
  const bool rides = tail_max == static_cast<int64_t>(tail_cell.buffer_cells);
  const bool plateaus = epd_max < tail_max && epd_max <= threshold + kFrameCells;
  std::snprintf(what, sizeof(what),
                "tail occupancy rides the %zu-cell ceiling (max %" PRId64
                "); epd plateaus at its threshold (max %" PRId64 " <= %" PRId64 "+%" PRId64
                ")",
                tail_cell.buffer_cells, tail_max, epd_max, threshold, kFrameCells);
  *plateau = rides && plateaus;
  Check(*plateau, what);

  int64_t rto_sum_ns = 0;
  bool cwnd_flat = true;
  DeadAirFromTimeline(tail, &rto_sum_ns, &cwnd_flat);
  int64_t stall_ns = 0;
  for (const CongestionFlowStats& fs : tail.outcome.flow_stats) {
    stall_ns += static_cast<int64_t>(fs.rexmt_stall_ns);
  }
  const int64_t err = std::abs(rto_sum_ns - stall_ns);
  const bool within =
      stall_ns > 0 && err * 20 <= stall_ns;  // within 5% of rexmt_stall_ns
  std::snprintf(what, sizeof(what),
                "timeline RTO dead air matches rexmt_stall_ns within 5%% "
                "(%.2f ms vs %.2f ms) with flat cwnd inside every fired window",
                static_cast<double>(rto_sum_ns) / 1e6, static_cast<double>(stall_ns) / 1e6);
  *dead_air_ok = within && cwnd_flat;
  Check(*dead_air_ok, what);

  if (!csv_path.empty()) {
    if (!WriteTextFile(csv_path, tail.csv)) {
      return false;
    }
    std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
  }
  return true;
}

int Run(const BenchFlags& flags) {
  std::printf("Congested-bottleneck goodput grid (seed %llu, %s mode)\n"
              "%d bulk flows x 96 KiB into one 6 Mb/s trunk through the cell switch,\n"
              "finite per-VC buffers. All quantities simulated; byte-identical across\n"
              "TCPLAT_JOBS at a fixed --seed.\n\n",
              static_cast<unsigned long long>(flags.seed), flags.quick ? "quick" : "full",
              flags.flows);

  const std::vector<CongestionVariant> kVariants = {
      CongestionVariant::kLegacy, CongestionVariant::kReno, CongestionVariant::kNewReno,
      CongestionVariant::kSack};
  const std::vector<DropPolicy> kPolicies = {DropPolicy::kTailDrop, DropPolicy::kEpd,
                                             DropPolicy::kPpd};
  // buffers[0] is congested enough that drop policy dominates; buffers[2] is
  // nearly drop-free, where the variants must converge.
  const std::vector<size_t> kBuffers = {128, 256, 768};

  std::vector<CongestionCell> cells;
  auto add_cell = [&](CongestionVariant v, DropPolicy p, size_t buf, int flows) {
    for (const CongestionCell& c : cells) {
      if (c.variant == v && c.policy == p && c.buffer_cells == buf && c.flows == flows) {
        return;
      }
    }
    CongestionCell cell;
    cell.variant = v;
    cell.policy = p;
    cell.buffer_cells = buf;
    cell.flows = flows;
    cell.seed = flags.seed;
    cells.push_back(cell);
  };

  // Core cross (both modes): every variant x policy at the middle buffer,
  // plus the headline comparison pair swept across all buffer sizes. The
  // acceptance checks only reference these cells, so quick and full modes
  // gate identically.
  for (CongestionVariant v : kVariants) {
    for (DropPolicy p : kPolicies) {
      add_cell(v, p, 256, flags.flows);
    }
  }
  for (size_t buf : kBuffers) {
    add_cell(CongestionVariant::kReno, DropPolicy::kTailDrop, buf, flags.flows);
    add_cell(CongestionVariant::kSack, DropPolicy::kEpd, buf, flags.flows);
  }
  if (!flags.quick) {
    // Full cross at the outer buffer sizes, and a flow-count axis on the
    // headline pair.
    for (CongestionVariant v : kVariants) {
      for (DropPolicy p : kPolicies) {
        add_cell(v, p, 128, flags.flows);
        add_cell(v, p, 768, flags.flows);
      }
    }
    for (int flows : {4, 16}) {
      add_cell(CongestionVariant::kReno, DropPolicy::kTailDrop, 256, flows);
      add_cell(CongestionVariant::kSack, DropPolicy::kEpd, 256, flows);
    }
  }

  const std::vector<CellResult> results =
      ParallelMap<CellResult>(cells.size(), [&](size_t i) { return RunCell(cells[i]); });

  PrintGrid(results);
  PrintTailBlame(results);

  std::printf("\nchecks:\n");
  bool orderings_hold = true;
  bool gap_shrinks = true;
  bool all_completed = true;
  char what[200];

  for (const CellResult& r : results) {
    if (r.outcome.aborted != 0 ||
        r.outcome.completed != static_cast<uint64_t>(r.cell.flows)) {
      all_completed = false;
    }
  }
  std::snprintf(what, sizeof(what), "every flow in every cell ran to completion");
  Check(all_completed, what);

  const CellResult* reno_tail_lo =
      Find(results, CongestionVariant::kReno, DropPolicy::kTailDrop, kBuffers.front(),
           flags.flows);
  const CellResult* sack_epd_lo = Find(results, CongestionVariant::kSack, DropPolicy::kEpd,
                                       kBuffers.front(), flags.flows);
  const CellResult* reno_tail_hi =
      Find(results, CongestionVariant::kReno, DropPolicy::kTailDrop, kBuffers.back(),
           flags.flows);
  const CellResult* sack_epd_hi = Find(results, CongestionVariant::kSack, DropPolicy::kEpd,
                                       kBuffers.back(), flags.flows);

  for (size_t buf : kBuffers) {
    const CellResult* rt =
        Find(results, CongestionVariant::kReno, DropPolicy::kTailDrop, buf, flags.flows);
    const CellResult* se =
        Find(results, CongestionVariant::kSack, DropPolicy::kEpd, buf, flags.flows);
    if (rt == nullptr || se == nullptr) {
      continue;
    }
    std::snprintf(what, sizeof(what),
                  "buf=%zu: sack+epd goodput beats reno+tail (%.2f > %.2f Mb/s)", buf,
                  se->outcome.aggregate_goodput_mbps, rt->outcome.aggregate_goodput_mbps);
    const bool g = se->outcome.aggregate_goodput_mbps > rt->outcome.aggregate_goodput_mbps;
    Check(g, what);
    std::snprintf(what, sizeof(what),
                  "buf=%zu: sack+epd efficiency beats reno+tail (%.3f > %.3f)", buf,
                  se->outcome.efficiency, rt->outcome.efficiency);
    const bool e = se->outcome.efficiency > rt->outcome.efficiency;
    Check(e, what);
    orderings_hold = orderings_hold && g && e;
  }

  if (reno_tail_lo != nullptr && sack_epd_lo != nullptr && reno_tail_hi != nullptr &&
      sack_epd_hi != nullptr) {
    const double gap_lo = sack_epd_lo->outcome.aggregate_goodput_mbps -
                          reno_tail_lo->outcome.aggregate_goodput_mbps;
    const double gap_hi = sack_epd_hi->outcome.aggregate_goodput_mbps -
                          reno_tail_hi->outcome.aggregate_goodput_mbps;
    std::snprintf(what, sizeof(what),
                  "goodput gap shrinks as buffers grow (%.2f Mb/s at %zu -> %.2f at %zu)",
                  gap_lo, kBuffers.front(), gap_hi, kBuffers.back());
    gap_shrinks = gap_hi < gap_lo;
    Check(gap_shrinks, what);
  } else {
    gap_shrinks = false;
    Check(false, "gap-shrink endpoints present");
  }

  // The protocol machinery must actually engage: SACK cells feed the
  // scoreboard and repair from it; NewReno cells take partial ACKs.
  uint64_t sack_rx = 0;
  uint64_t sack_rexmt = 0;
  uint64_t partial_acks = 0;
  for (const CellResult& r : results) {
    if (r.cell.variant == CongestionVariant::kSack) {
      sack_rx += r.outcome.sack_blocks_received;
      sack_rexmt += r.outcome.sack_retransmits;
    }
    if (r.cell.variant == CongestionVariant::kNewReno) {
      partial_acks += r.outcome.newreno_partial_acks;
    }
  }
  std::snprintf(what, sizeof(what),
                "SACK cells exercised the scoreboard (%" PRIu64 " blocks, %" PRIu64
                " scoreboard retransmits)",
                sack_rx, sack_rexmt);
  Check(sack_rx > 0 && sack_rexmt > 0, what);
  std::snprintf(what, sizeof(what), "NewReno cells repaired partial ACKs (%" PRIu64 ")",
                partial_acks);
  Check(partial_acks > 0, what);

  // Tail blame: Reno has no way to repair a multi-segment loss without the
  // retransmission timer, so its losers' completion deficit must be
  // substantially RTO dead air — and the attribution must pin at least one
  // timeout-ridden cell's tail mostly (>=50%) on the retransmit/timeout
  // stages rather than leaving the gap opaque.
  double reno_share_min = 1.0;
  bool reno_cell_seen = false;
  const CellResult* worst = nullptr;
  for (const CellResult& r : results) {
    if (r.cell.variant == CongestionVariant::kReno && r.cell.buffer_cells == 256 &&
        r.cell.flows == flags.flows && r.outcome.rexmt_timeouts > 0) {
      reno_cell_seen = true;
      reno_share_min = std::min(reno_share_min, r.blame_share);
    }
    if (r.outcome.rexmt_timeouts > 0 &&
        (worst == nullptr || r.blame_share > worst->blame_share)) {
      worst = &r;
    }
  }
  std::snprintf(what, sizeof(what),
                "tail blame: every timeout-ridden reno cell at buf=256 charges >=40%% of "
                "the p99-p50 deficit to RTO stalls (min %.1f%%)",
                reno_cell_seen ? 100.0 * reno_share_min : 0.0);
  Check(reno_cell_seen && reno_share_min >= 0.4, what);
  if (worst != nullptr) {
    std::snprintf(what, sizeof(what),
                  "tail blame: %s/%s buf=%zu pins >=50%% of its deficit on "
                  "retransmit/timeout stages (%.1f%%)",
                  CongestionVariantName(worst->cell.variant),
                  DropPolicyName(worst->cell.policy), worst->cell.buffer_cells,
                  100.0 * worst->blame_share);
    Check(worst->blame_share >= 0.5, what);
  } else {
    Check(false, "at least one cell saw a retransmission timeout");
  }

  bool sawtooth = false;
  bool plateau = false;
  bool dead_air = false;
  if (!RunTimelineSection(flags, &sawtooth, &plateau, &dead_air, flags.timeline_csv_path)) {
    return 1;
  }

  if (!flags.csv_path.empty()) {
    if (!WriteTextFile(flags.csv_path, ToCsv(results))) {
      return 1;
    }
    // stderr, so stdout stays byte-identical whatever path was asked for
    // (the CI determinism step cmp's stdout across TCPLAT_JOBS runs whose
    // --out targets necessarily differ).
    std::fprintf(stderr, "wrote %s\n", flags.csv_path.c_str());
  }
  if (!flags.out_path.empty()) {
    if (!WriteTextFile(flags.out_path,
                       ToJson(results, flags, orderings_hold, gap_shrinks, all_completed,
                              sawtooth, plateau, dead_air))) {
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", flags.out_path.c_str());
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tcplat

int main(int argc, char** argv) {
  tcplat::BenchFlags flags;
  flags.flows = 8;
  if (!tcplat::ParseBenchFlags(argc, argv, &flags,
                               "[--seed N] [--jobs N] [--quick] [--flows N] [--csv PATH] "
                               "[--out PATH] [--timeline-csv PATH]")) {
    return 2;
  }
  return tcplat::Run(flags);
}
