# Empty dependencies file for native_checksum.
# This may be replaced when dependencies are built.
