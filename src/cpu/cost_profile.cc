#include "src/cpu/cost_profile.h"

namespace tcplat {

// All constants in microseconds. Each is annotated with the paper data it was
// fitted against. "Fit" means a least-squares / endpoint affine fit over the
// eight transfer sizes {4, 20, 80, 200, 500, 1400, 4000, 8000}.
CostProfile CostProfile::Decstation5000_200() {
  CostProfile p;
  p.name = "DECstation 5000/200 (25 MHz R3000, ULTRIX 4.2A, BSD 4.4 alpha TCP)";

  // Table 5 column "ULTRIX Checksum": 4 B -> 5 us ... 8000 B -> 1605 us.
  // Slope (1605-5)/7996 = 0.200 us/B; intercept 4.2. Fits all rows within 2%.
  p.ultrix_cksum = {4.2, 0.200, 0.0};
  // Table 5 column "Optimized Checksum": 4 B -> 3 us ... 8000 B -> 754 us.
  p.opt_cksum = {2.6, 0.0939, 0.0};
  // Table 5 column "ULTRIX bcopy": 4 B -> 4 us ... 8000 B -> 698 us.
  p.user_bcopy = {3.6, 0.0868, 0.0};
  // Table 5 column "Integrated Copy and Checksum": 4 B -> 3 us ... 864 us.
  p.integrated_copy_cksum = {2.6, 0.1077, 0.0};

  // Tables 2/3 "checksum" rows cover data + 40 header bytes. The kernel
  // in_cksum is word-based (faster than the ULTRIX user routine, slower than
  // the fully unrolled one) and walks the mbuf chain. Fit over len+40 with
  // a small per-mbuf term: e.g. 8000 B (8040 B, 3 mbufs) -> ~1149 us.
  p.in_cksum = {3.0, 0.1405, 1.5};
  p.kernel_bcopy = {1.5, 0.0868, 0.0};

  // Table 2 "User" row. Small transfers use 108-byte mbufs: 500 B -> 121 us
  // total User time; with syscall+sosend fixed costs below, the copy term
  // fits ~0.096 us/B. Above the 1 KB cluster threshold the copy is a
  // page-aligned word copy: (400-45-7)/8000 ~ 0.040 us/B (8000 B -> 400 us,
  // 1400 B -> 99 us).
  p.copyin_small = {2.0, 0.096, 0.0};
  p.copyin_cluster = {2.0, 0.040, 0.0};
  // Table 3 "User" row: 500 B -> 102 us (small mbuf chain walk), 8000 B ->
  // 468 us (clusters).
  p.copyout_small = {2.0, 0.076, 0.0};
  p.copyout_cluster = {2.0, 0.046, 0.0};

  // §2.2.1: "time to allocate and free an mbuf ... just over 7 us" — split
  // evenly between the two halves of the pair.
  p.mbuf_alloc = {3.6, 0.0, 0.0};
  p.mbuf_free = {3.6, 0.0, 0.0};
  // §2.2.1: cluster mbufs "use reference counts for copying; no storage is
  // allocated or data copied". Table 2 mcopy row, cluster sizes: 1400/4000 B
  // -> ~30 us, 8000 B -> 41 us. With m_copym_fixed ~20 us the per-cluster
  // reference is ~5 us.
  p.cluster_ref = {5.0, 0.0, 0.0};
  // Table 2 mcopy row, small-mbuf sizes (80 -> 26 us, 200 -> 41, 500 -> 80):
  // fixed ~10 plus per-mbuf alloc+bcopy charged by the mbuf code itself.
  p.m_copym_fixed = {10.0, 0.0, 0.0};
  p.m_copym_per_mbuf = {1.5, 0.0, 0.0};

  // Table 2 "User" row at 4 B is 45 us with a ~4 us copy/alloc component:
  // the rest is the write() syscall path and sosend bookkeeping.
  p.syscall_entry = {14.0, 0.0, 0.0};
  p.syscall_exit = {9.0, 0.0, 0.0};
  p.sosend_fixed = {19.0, 0.0, 0.0};
  p.sosend_per_chunk = {3.0, 0.0, 0.0};
  p.soreceive_fixed = {28.0, 0.0, 0.0};
  p.sbappend = {2.0, 0.0, 0.0};

  // Table 2 "segment" row: flat 62-72 us across sizes. Decomposed into the
  // per-segment output processing plus the small-data copy below.
  p.tcp_output_fixed = {56.0, 0.0, 0.0};
  // tcp_output copies data that fits in the header mbuf with m_copydata
  // (mcopy row: 4 B -> 5.1 us, 20 B -> 5.7 us).
  p.tcp_copydata_small = {4.9, 0.05, 0.0};
  // Table 3 "segment" row: ~135-158 us on the general path...
  p.tcp_input_slow = {95.0, 0.0, 0.0};
  // ...and 59 us when header prediction takes the fast path (8000 B case).
  p.tcp_input_fast = {38.0, 0.0, 0.0};
  p.tcp_ack_proc = {12.0, 0.0, 0.0};
  // §3: linear PCB list search costs "just less than 1.3 us" per element;
  // 20 entries measured at 26 us.
  p.pcb_lookup = {4.0, 0.0, 1.3};
  p.pcb_cache_check = {2.0, 0.0, 0.0};
  p.sorwakeup = {14.0, 0.0, 0.0};
  p.pseudo_hdr_cksum = {3.0, 0.012, 0.0};

  // UDP protocol processing is far lighter than TCP's (no sequence state,
  // no timers): Kay & Pasquale's DECstation 5000 measurements put it at a
  // few tens of microseconds per datagram each way.
  p.udp_output = {28.0, 0.0, 0.0};
  p.udp_input = {34.0, 0.0, 0.0};

  // Table 2 "IP" row: flat 34-38 us.
  p.ip_output = {35.0, 0.0, 0.0};
  // Table 3 "IP" row: 40-62 us; modeled flat at the mid value.
  p.ip_input = {48.0, 0.0, 0.0};
  p.ipq_enqueue = {4.0, 0.0, 0.0};

  // Table 3 "IPQ" row floor: 22 us from schednetisr to ipintr when idle.
  p.softint_dispatch = {21.0, 0.0, 0.0};
  // Table 3 "Wakeup" row: 46-67 us from wakeup() to the process running.
  p.wakeup_ctx_switch = {46.0, 0.0, 0.0};
  p.intr_entry = {12.0, 0.0, 0.0};

  // Table 2 "ATM" row: 4 B -> 23 us, 8000 B -> 498 us. Per-cell cost of
  // building the AAL3/4 envelope and copying 56 payload bytes into the
  // memory-mapped TX FIFO. (FIFO back-pressure is modeled, not charged.)
  p.atm_tx_fixed = {18.0, 0.0, 0.0};
  p.atm_tx_per_cell = {2.55, 0.0, 0.0};
  // Table 3 "ATM" row: 4 B -> 46 us with per-cell drain+reassemble+copy
  // ~9.3 us (500 B/13 cells -> 164 us, 4000 B/92 cells -> 920 us).
  p.atm_rx_fixed = {8.0, 0.0, 0.0};
  p.atm_rx_per_cell = {9.3, 0.0, 0.0};
  // Descriptor ring setup for the hypothetical DMA adapter: a handful of
  // register writes per PDU instead of per-cell copies.
  p.dma_setup = {8.0, 0.0, 0.0};

  // §4.1.1 / Table 6. Integrating the checksum into a copy costs the delta
  // between the integrated and plain per-byte rates from Table 5
  // (0.1077 - 0.0868 ~ 0.021 us/B), and the paper's *initial* kernel
  // implementation carries substantial per-packet bookkeeping — Table 6
  // shows the 4-byte RTT regressing 22% (228 us), i.e. ~110 us per
  // direction split across send and receive.
  p.copyin_small_cksum = {2.0, 0.117, 0.0};
  p.copyin_cluster_cksum = {2.0, 0.061, 0.0};
  p.atm_rx_per_cell_cksum = {10.2, 0.0, 0.0};
  p.cksum_combine = {1.3, 0.0, 0.0};
  p.combined_cksum_tx_overhead = {52.0, 0.0, 0.0};
  p.combined_cksum_rx_overhead = {52.0, 0.0, 0.0};

  // Table 1: the 4-byte Ethernet RTT exceeds ATM by 919 us; after the wire
  // time difference (~55 us one way) this implies ~200 us of extra driver +
  // adapter overhead per host per packet, split between send and receive.
  // The LANCE on the DECstation copies packets through a dedicated buffer.
  p.ether_tx = {185.0, 0.055, 0.0};
  p.ether_rx = {215.0, 0.055, 0.0};
  p.arp_proc = {18.0, 0.0, 0.0};

  return p;
}

CostProfile CostProfile::WithCacheFactor(double factor) const {
  CostProfile p = *this;
  auto scale = [factor](CostParams* c) {
    c->per_byte_us *= factor;
    c->per_chunk_us *= factor;
  };
  for (CostParams* c :
       {&p.ultrix_cksum, &p.opt_cksum, &p.user_bcopy, &p.integrated_copy_cksum, &p.in_cksum,
        &p.kernel_bcopy, &p.copyin_small, &p.copyin_cluster, &p.copyout_small,
        &p.copyout_cluster, &p.copyin_small_cksum, &p.copyin_cluster_cksum,
        &p.tcp_copydata_small, &p.ether_tx, &p.ether_rx}) {
    scale(c);
  }
  // The ATM per-cell costs are dominated by the 44/56-byte copies.
  p.atm_tx_per_cell.fixed_us *= factor;
  p.atm_rx_per_cell.fixed_us *= factor;
  p.atm_rx_per_cell_cksum.fixed_us *= factor;
  p.name += " (cache factor " + std::to_string(factor) + ")";
  return p;
}

// §4.1: Clark et al. report, for 1 KB on a Sun-3: checksum 130 us, copy
// 140 us, combined copy+checksum 200 us. Affine models through those points
// with small fixed costs; only the user-level primitives are meaningful.
CostProfile CostProfile::Sun3() {
  CostProfile p = Decstation5000_200();
  p.name = "Sun-3 (Clark et al. 1989 user-level measurements)";
  p.opt_cksum = {3.0, 0.1240, 0.0};             // 1024 B -> 130 us
  p.ultrix_cksum = {3.0, 0.1240, 0.0};          // no separate naive variant
  p.user_bcopy = {3.0, 0.1338, 0.0};            // 1024 B -> 140 us
  p.integrated_copy_cksum = {3.0, 0.1924, 0.0}; // 1024 B -> 200 us
  return p;
}

}  // namespace tcplat
