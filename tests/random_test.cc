// Unit tests for the deterministic PRNG.

#include <gtest/gtest.h>

#include "src/base/random.h"

namespace tcplat {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleIsUniformish) {
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, NextBoolEdges) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.NextExponential(10.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.5);
}

}  // namespace
}  // namespace tcplat
