#include "src/workload/star_testbed.h"

#include <string>

#include "src/base/check.h"

namespace tcplat {
namespace {

// Ordered-pair virtual circuits: src host i sending to dst host j uses VCI
// 64 + i*N + j. The block below 64 stays clear of the two-host testbed's
// 42/43 and any well-known VCs.
uint16_t PairVci(int src, int dst, int n) {
  return static_cast<uint16_t>(64 + src * n + dst);
}

}  // namespace

StarTestbed::StarTestbed(StarTestbedConfig config)
    : config_(std::move(config)), sim_(config_.seed) {
  TCPLAT_CHECK_GT(config_.clients, 0);
  TCPLAT_CHECK_GT(config_.servers, 0);
  const int n = host_count();
  TCPLAT_CHECK_LE(n, 250) << "star exceeds the address/VCI plan";

  for (int idx = 0; idx < n; ++idx) {
    const bool is_client = idx < config_.clients;
    const std::string name = (is_client ? "client" : "server") +
                             std::to_string(is_client ? idx : idx - config_.clients);
    hosts_.push_back(std::make_unique<Host>(&sim_, name, config_.profile));
    const Ipv4Addr addr =
        is_client ? StarClientAddr(idx) : StarServerAddr(idx - config_.clients);
    ips_.push_back(std::make_unique<IpStack>(hosts_.back().get(), addr));
  }

  if (config_.network == NetworkKind::kAtm) {
    atm_switch_ = std::make_unique<AtmSwitch>(&sim_, kTaxiBitsPerSecond, config_.propagation,
                                              config_.switch_latency);
    const bool integrated = config_.tcp.checksum == ChecksumMode::kCombined;
    for (int idx = 0; idx < n; ++idx) {
      // Each host owns a private fiber into the switch; the switch creates
      // the return fiber in AttachOutput. Port number = host index.
      fibers_.push_back(
          std::make_unique<Wire>(&sim_, kTaxiBitsPerSecond, config_.propagation));
      adapters_.push_back(std::make_unique<Tca100>(hosts_[static_cast<size_t>(idx)].get(),
                                                   fibers_.back().get()));
      atm_switch_->AttachOutput(idx, adapters_.back().get());
      adapters_.back()->ConnectSink(atm_switch_->input(idx));
      atm_ifs_.push_back(std::make_unique<AtmNetIf>(ips_[static_cast<size_t>(idx)].get(),
                                                    adapters_.back().get(),
                                                    PairVci(idx, idx, n)));
      atm_ifs_.back()->set_rx_integrated_checksum(integrated);
    }
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        if (src == dst) {
          continue;
        }
        const uint16_t vci = PairVci(src, dst, n);
        const Ipv4Addr dst_addr = dst < config_.clients
                                      ? StarClientAddr(dst)
                                      : StarServerAddr(dst - config_.clients);
        atm_ifs_[static_cast<size_t>(src)]->AddVc(dst_addr, vci);
        atm_switch_->AddRoute(vci, dst);
      }
    }
  } else {
    ether_segment_ = std::make_unique<EtherSegment>(&sim_, config_.propagation);
    for (int idx = 0; idx < n; ++idx) {
      const MacAddr mac{0x02, 0, 0, 0, 0, static_cast<uint8_t>(idx + 1)};
      ether_ifs_.push_back(std::make_unique<EtherNetIf>(ips_[static_cast<size_t>(idx)].get(),
                                                        hosts_[static_cast<size_t>(idx)].get(),
                                                        ether_segment_.get(), mac));
    }
    // Static all-to-all ARP, as the paper's warm two-host cache generalizes.
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a == b) {
          continue;
        }
        const Ipv4Addr b_addr =
            b < config_.clients ? StarClientAddr(b) : StarServerAddr(b - config_.clients);
        ether_ifs_[static_cast<size_t>(a)]->AddRoute(b_addr, ether_ifs_[static_cast<size_t>(b)]->mac());
      }
    }
  }

  for (int idx = 0; idx < n; ++idx) {
    tcps_.push_back(std::make_unique<TcpStack>(ips_[static_cast<size_t>(idx)].get(), config_.tcp));
    tcps_.back()->AddBackgroundPcbs(config_.background_pcbs);
  }
}

void StarTestbed::AttachTracer(Tracer* tracer) {
  for (auto& host : hosts_) {
    host->AttachTracer(tracer);
  }
  if (atm_switch_ != nullptr) {
    if (tracer != nullptr) {
      atm_switch_->AttachTracer(tracer, tracer->RegisterHost("switch"));
    } else {
      atm_switch_->AttachTracer(nullptr, 0);
    }
  }
}

void StarTestbed::ResetTrackers() {
  for (auto& host : hosts_) {
    host->tracker().Reset();
  }
}

SimDuration StarTestbed::SpanTotal(SpanId id) const {
  SimDuration total;
  for (const auto& host : hosts_) {
    total += host->tracker().total(id);
  }
  return total;
}

}  // namespace tcplat
