#include "src/trace/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"

namespace tcplat {

int Histogram::BucketIndex(int64_t v) {
  TCPLAT_CHECK_GE(v, 0) << "histogram samples must be non-negative";
  if (v == 0) {
    return 0;
  }
  return 64 - std::countl_zero(static_cast<uint64_t>(v));
}

int64_t Histogram::BucketLowerBound(int i) {
  TCPLAT_CHECK_GE(i, 0);
  TCPLAT_CHECK_LT(i, kBuckets);
  if (i == 0) {
    return 0;
  }
  return int64_t{1} << (i - 1);
}

void Histogram::Add(int64_t v) {
  ++buckets_[static_cast<size_t>(BucketIndex(v))];
  if (count_ == 0 || v < min_) {
    min_ = v;
  }
  if (count_ == 0 || v > max_) {
    max_ = v;
  }
  ++count_;
  sum_ += v;
}

int64_t Histogram::PercentileUpperBound(double p) const {
  TCPLAT_CHECK_GE(p, 0.0);
  TCPLAT_CHECK_LE(p, 100.0);
  if (count_ == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  if (rank > 0) {
    --rank;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen > rank) {
      return i + 1 >= kBuckets ? max_ : BucketLowerBound(i + 1);
    }
  }
  return max_;
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
  buckets_.fill(0);
}

MetricsRegistry::Entry& MetricsRegistry::NewEntry(std::string_view name) {
  auto [it, inserted] = entries_.emplace(std::string(name), Entry{});
  TCPLAT_CHECK(inserted) << "duplicate metric: " << std::string(name);
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    TCPLAT_CHECK(it->second.counter != nullptr) << "metric type mismatch: " << std::string(name);
    return *it->second.counter;
  }
  Entry& e = NewEntry(name);
  e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    TCPLAT_CHECK(it->second.gauge != nullptr) << "metric type mismatch: " << std::string(name);
    return *it->second.gauge;
  }
  Entry& e = NewEntry(name);
  e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    TCPLAT_CHECK(it->second.histogram != nullptr)
        << "metric type mismatch: " << std::string(name);
    return *it->second.histogram;
  }
  Entry& e = NewEntry(name);
  e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

void MetricsRegistry::AddCounterView(std::string_view name, const uint64_t* value) {
  TCPLAT_CHECK(value != nullptr);
  NewEntry(name).counter_view = value;
}

void MetricsRegistry::AddGaugeView(std::string_view name, const int64_t* value) {
  TCPLAT_CHECK(value != nullptr);
  NewEntry(name).gauge_view = value;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    Sample s;
    s.name = name;
    if (e.counter != nullptr) {
      s.type = "counter";
      s.value = static_cast<int64_t>(e.counter->value());
    } else if (e.counter_view != nullptr) {
      s.type = "counter";
      s.value = static_cast<int64_t>(*e.counter_view);
    } else if (e.gauge != nullptr) {
      s.type = "gauge";
      s.value = e.gauge->value();
    } else if (e.gauge_view != nullptr) {
      s.type = "gauge";
      s.value = *e.gauge_view;
    } else {
      s.type = "histogram";
      s.value = static_cast<int64_t>(e.histogram->count());
      s.hist = e.histogram.get();
    }
    out.push_back(s);
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n";
  char buf[160];
  bool first = true;
  for (const Sample& s : Snapshot()) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    if (s.hist != nullptr) {
      std::snprintf(buf, sizeof(buf),
                    "  \"%.*s\": {\"count\": %" PRIu64 ", \"sum\": %" PRId64 ", \"min\": %" PRId64
                    ", \"max\": %" PRId64 ", \"p50\": %" PRId64 ", \"p99\": %" PRId64 "}",
                    static_cast<int>(s.name.size()), s.name.data(), s.hist->count(),
                    s.hist->sum(), s.hist->min(), s.hist->max(),
                    s.hist->PercentileUpperBound(50), s.hist->PercentileUpperBound(99));
    } else {
      std::snprintf(buf, sizeof(buf), "  \"%.*s\": %" PRId64,
                    static_cast<int>(s.name.size()), s.name.data(), s.value);
    }
    out += buf;
  }
  out += "\n}\n";
  return out;
}

std::string MetricsRegistry::ToCsv() const {
  std::string out = "name,type,value\n";
  char buf[160];
  for (const Sample& s : Snapshot()) {
    std::snprintf(buf, sizeof(buf), "%.*s,%.*s,%" PRId64 "\n", static_cast<int>(s.name.size()),
                  s.name.data(), static_cast<int>(s.type.size()), s.type.data(), s.value);
    out += buf;
  }
  return out;
}

}  // namespace tcplat
