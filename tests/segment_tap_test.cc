// Tests for the tcpdump-style segment tap: capture, formatting, and that
// the observed handshake/data/teardown sequence is the canonical one.

#include <gtest/gtest.h>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/tcp/segment_tap.h"

namespace tcplat {
namespace {

TEST(SegmentTap, FormatsLikeTcpdump) {
  SegmentTap::Record r;
  r.time = SimTime::FromMicros(1500);
  r.outbound = true;
  r.src = SockAddr{MakeAddr(10, 0, 0, 1), 20000};
  r.dst = SockAddr{MakeAddr(10, 0, 0, 2), 5001};
  r.header.seq = 64001;
  r.header.flags.syn = true;
  r.header.window = 8192;
  r.header.options.mss = 9148;
  r.payload_len = 0;
  const std::string line = SegmentTap::Format(r);
  EXPECT_EQ(line,
            "0.001500 OUT 10.0.0.1:20000 > 10.0.0.2:5001: Flags [S], seq 64001, win 8192, "
            "options [mss 9148], length 0");

  r.header.flags.syn = false;
  r.header.flags.psh = true;
  r.header.flags.ack = true;
  r.header.ack = 128003;
  r.header.options.mss.reset();
  r.payload_len = 200;
  EXPECT_EQ(SegmentTap::Format(r),
            "0.001500 OUT 10.0.0.1:20000 > 10.0.0.2:5001: Flags [PA], seq 64001, ack 128003, "
            "win 8192, length 200");
}

TEST(SegmentTap, CapturesCanonicalEchoSequence) {
  Testbed tb{TestbedConfig{}};
  SegmentTap client_tap;
  tb.client_tcp().set_tap(&client_tap);

  RpcOptions opt;
  opt.size = 200;
  opt.iterations = 3;
  opt.warmup = 0;
  const RpcResult result = RunRpcBenchmark(tb, opt);
  ASSERT_EQ(result.data_mismatches, 0u);

  const auto& recs = client_tap.records();
  ASSERT_GE(recs.size(), 8u);
  // Handshake: SYN out, SYN|ACK in, ACK out.
  EXPECT_TRUE(recs[0].outbound);
  EXPECT_TRUE(recs[0].header.flags.syn);
  EXPECT_FALSE(recs[0].header.flags.ack);
  EXPECT_TRUE(recs[0].header.options.mss.has_value());
  EXPECT_FALSE(recs[1].outbound);
  EXPECT_TRUE(recs[1].header.flags.syn);
  EXPECT_TRUE(recs[1].header.flags.ack);
  EXPECT_TRUE(recs[2].outbound);
  EXPECT_FALSE(recs[2].header.flags.syn);
  EXPECT_TRUE(recs[2].header.flags.ack);
  // First request: 200 bytes out; first reply: 200 bytes in, piggybacked.
  EXPECT_TRUE(recs[3].outbound);
  EXPECT_EQ(recs[3].payload_len, 200u);
  EXPECT_FALSE(recs[4].outbound);
  EXPECT_EQ(recs[4].payload_len, 200u);
  EXPECT_TRUE(recs[4].header.flags.ack);
  // Timestamps never go backwards.
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i].time.nanos(), recs[i - 1].time.nanos());
  }
  // FIN teardown shows up at the end.
  bool saw_fin_out = false;
  bool saw_fin_in = false;
  for (const auto& r : recs) {
    saw_fin_out = saw_fin_out || (r.outbound && r.header.flags.fin);
    saw_fin_in = saw_fin_in || (!r.outbound && r.header.flags.fin);
  }
  EXPECT_TRUE(saw_fin_out);
  EXPECT_TRUE(saw_fin_in);
}

TEST(SegmentTap, SeesRstForRefusedConnection) {
  Testbed tb{TestbedConfig{}};
  SegmentTap server_tap;
  tb.server_tcp().set_tap(&server_tap);
  // Client connects to a port nobody listens on.
  struct P {
    static SimTask Run(Testbed* t, bool* done) {
      Socket* s = t->client_tcp().Connect(SockAddr{kServerAddr, 4242});
      while (!s->connected() && !s->has_error()) {
        co_await s->WaitConnected();
      }
      *done = true;
    }
  };
  bool done = false;
  tb.client_host().Spawn("c", P::Run(&tb, &done));
  tb.sim().RunToCompletion();
  ASSERT_TRUE(done);
  ASSERT_EQ(server_tap.records().size(), 2u);
  EXPECT_TRUE(server_tap.records()[0].header.flags.syn);
  EXPECT_TRUE(server_tap.records()[1].outbound);
  EXPECT_TRUE(server_tap.records()[1].header.flags.rst);
}

TEST(SegmentTap, BoundedCapacityDropsOldest) {
  SegmentTap tap(/*capacity=*/4);
  for (uint32_t i = 0; i < 10; ++i) {
    SegmentTap::Record r;
    r.header.seq = i;
    tap.OnSegment(r);
  }
  EXPECT_EQ(tap.records().size(), 4u);
  EXPECT_EQ(tap.dropped(), 6u);
  EXPECT_EQ(tap.records().front().header.seq, 6u);
  tap.Clear();
  EXPECT_TRUE(tap.records().empty());
}

TEST(SegmentTap, DumpHasOneLinePerSegment) {
  Testbed tb{TestbedConfig{}};
  SegmentTap tap;
  tb.client_tcp().set_tap(&tap);
  RpcOptions opt;
  opt.size = 4;
  opt.iterations = 1;
  opt.warmup = 0;
  RunRpcBenchmark(tb, opt);
  const std::string dump = tap.Dump();
  size_t lines = 0;
  for (char c : dump) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, tap.records().size());
  EXPECT_NE(dump.find("Flags [S]"), std::string::npos);
}

}  // namespace
}  // namespace tcplat
