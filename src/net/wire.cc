#include "src/net/wire.h"

#include <algorithm>
#include <cstdio>

#include "src/base/check.h"
#include "src/net/byte_order.h"
#include "src/net/checksum.h"

namespace tcplat {

std::string AddrToString(Ipv4Addr addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xFF, (addr >> 16) & 0xFF,
                (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

std::string SockAddr::ToString() const {
  return AddrToString(addr) + ":" + std::to_string(port);
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

void Ipv4Header::Serialize(std::span<uint8_t> out) const {
  TCPLAT_CHECK_GE(out.size(), kIpv4HeaderBytes);
  out[0] = 0x45;  // version 4, IHL 5 (no options)
  out[1] = tos;
  StoreBe16(&out[2], total_length);
  StoreBe16(&out[4], id);
  uint16_t frag = frag_offset & 0x1FFF;
  if (dont_fragment) {
    frag |= 0x4000;
  }
  if (more_fragments) {
    frag |= 0x2000;
  }
  StoreBe16(&out[6], frag);
  out[8] = ttl;
  out[9] = protocol;
  StoreBe16(&out[10], header_checksum);
  StoreBe32(&out[12], src);
  StoreBe32(&out[16], dst);
}

void Ipv4Header::FillChecksum() {
  uint8_t bytes[kIpv4HeaderBytes];
  header_checksum = 0;
  Serialize(bytes);
  header_checksum = ReferenceChecksum(std::span<const uint8_t>(bytes, kIpv4HeaderBytes));
}

bool Ipv4Header::VerifyChecksum(std::span<const uint8_t> header_bytes) {
  if (header_bytes.size() < kIpv4HeaderBytes) {
    return false;
  }
  // The ones'-complement sum of a header whose checksum field is valid
  // complements to zero.
  return ReferenceChecksum(header_bytes.first(kIpv4HeaderBytes)) == 0;
}

std::optional<Ipv4Header> Ipv4Header::Parse(std::span<const uint8_t> in) {
  if (in.size() < kIpv4HeaderBytes) {
    return std::nullopt;
  }
  if (in[0] != 0x45) {  // only version 4 / 20-byte headers are generated
    return std::nullopt;
  }
  Ipv4Header h;
  h.tos = in[1];
  h.total_length = LoadBe16(&in[2]);
  h.id = LoadBe16(&in[4]);
  const uint16_t frag = LoadBe16(&in[6]);
  h.dont_fragment = (frag & 0x4000) != 0;
  h.more_fragments = (frag & 0x2000) != 0;
  h.frag_offset = frag & 0x1FFF;
  h.ttl = in[8];
  h.protocol = in[9];
  h.header_checksum = LoadBe16(&in[10]);
  h.src = LoadBe32(&in[12]);
  h.dst = LoadBe32(&in[16]);
  return h;
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

uint8_t TcpFlags::Pack() const {
  uint8_t bits = 0;
  bits |= fin ? 0x01 : 0;
  bits |= syn ? 0x02 : 0;
  bits |= rst ? 0x04 : 0;
  bits |= psh ? 0x08 : 0;
  bits |= ack ? 0x10 : 0;
  bits |= urg ? 0x20 : 0;
  return bits;
}

TcpFlags TcpFlags::Unpack(uint8_t bits) {
  TcpFlags f;
  f.fin = (bits & 0x01) != 0;
  f.syn = (bits & 0x02) != 0;
  f.rst = (bits & 0x04) != 0;
  f.psh = (bits & 0x08) != 0;
  f.ack = (bits & 0x10) != 0;
  f.urg = (bits & 0x20) != 0;
  return f;
}

std::string TcpFlags::ToString() const {
  std::string s;
  if (syn) s += 'S';
  if (fin) s += 'F';
  if (rst) s += 'R';
  if (psh) s += 'P';
  if (ack) s += 'A';
  if (urg) s += 'U';
  return s.empty() ? "." : s;
}

size_t TcpOptions::WireLength() const {
  size_t len = 0;
  if (mss.has_value()) {
    len += 4;
  }
  if (alt_checksum.has_value()) {
    len += 3;
  }
  if (sack_permitted) {
    len += 2;
  }
  if (!sack.empty()) {
    len += 2 + 8 * std::min(sack.size(), kTcpMaxSackBlocks);
  }
  return (len + 3) & ~size_t{3};  // pad to 4-byte multiple
}

void TcpOptions::Serialize(std::span<uint8_t> out) const {
  const size_t wire = WireLength();
  TCPLAT_CHECK_GE(out.size(), wire);
  size_t i = 0;
  if (mss.has_value()) {
    out[i++] = kTcpOptMss;
    out[i++] = 4;
    StoreBe16(&out[i], *mss);
    i += 2;
  }
  if (alt_checksum.has_value()) {
    out[i++] = kTcpOptAltChecksumRequest;
    out[i++] = 3;
    out[i++] = *alt_checksum;
  }
  if (sack_permitted) {
    out[i++] = kTcpOptSackPermitted;
    out[i++] = 2;
  }
  if (!sack.empty()) {
    const size_t n = std::min(sack.size(), kTcpMaxSackBlocks);
    out[i++] = kTcpOptSack;
    out[i++] = static_cast<uint8_t>(2 + 8 * n);
    for (size_t b = 0; b < n; ++b) {
      StoreBe32(&out[i], sack[b].start);
      StoreBe32(&out[i + 4], sack[b].end);
      i += 8;
    }
  }
  while (i < wire) {
    out[i++] = kTcpOptEnd;
  }
}

TcpOptions TcpOptions::Parse(std::span<const uint8_t> in) {
  TcpOptions opts;
  size_t i = 0;
  while (i < in.size()) {
    const uint8_t kind = in[i];
    if (kind == kTcpOptEnd) {
      break;
    }
    if (kind == kTcpOptNop) {
      ++i;
      continue;
    }
    if (i + 1 >= in.size()) {
      break;  // truncated option
    }
    const uint8_t len = in[i + 1];
    if (len < 2 || i + len > in.size()) {
      break;  // malformed
    }
    if (kind == kTcpOptMss && len == 4) {
      opts.mss = LoadBe16(&in[i + 2]);
    } else if (kind == kTcpOptAltChecksumRequest && len == 3) {
      opts.alt_checksum = in[i + 2];
    } else if (kind == kTcpOptSackPermitted && len == 2) {
      opts.sack_permitted = true;
    } else if (kind == kTcpOptSack && len >= 10 && (len - 2) % 8 == 0) {
      for (size_t b = i + 2; b + 8 <= i + len; b += 8) {
        opts.sack.push_back({LoadBe32(&in[b]), LoadBe32(&in[b + 4])});
      }
    }
    i += len;
  }
  return opts;
}

void TcpHeader::Serialize(std::span<uint8_t> out) const {
  const size_t hdr_len = HeaderLength();
  TCPLAT_CHECK_GE(out.size(), hdr_len);
  TCPLAT_CHECK_EQ(hdr_len % 4, 0u);
  StoreBe16(&out[0], src_port);
  StoreBe16(&out[2], dst_port);
  StoreBe32(&out[4], seq);
  StoreBe32(&out[8], ack);
  out[12] = static_cast<uint8_t>((hdr_len / 4) << 4);
  out[13] = flags.Pack();
  StoreBe16(&out[14], window);
  StoreBe16(&out[16], checksum);
  StoreBe16(&out[18], urgent);
  options.Serialize(out.subspan(kTcpMinHeaderBytes, hdr_len - kTcpMinHeaderBytes));
}

std::optional<TcpHeader> TcpHeader::Parse(std::span<const uint8_t> in) {
  if (in.size() < kTcpMinHeaderBytes) {
    return std::nullopt;
  }
  const size_t hdr_len = static_cast<size_t>(in[12] >> 4) * 4;
  if (hdr_len < kTcpMinHeaderBytes || hdr_len > in.size()) {
    return std::nullopt;
  }
  TcpHeader h;
  h.src_port = LoadBe16(&in[0]);
  h.dst_port = LoadBe16(&in[2]);
  h.seq = LoadBe32(&in[4]);
  h.ack = LoadBe32(&in[8]);
  h.flags = TcpFlags::Unpack(in[13]);
  h.window = LoadBe16(&in[14]);
  h.checksum = LoadBe16(&in[16]);
  h.urgent = LoadBe16(&in[18]);
  h.options = TcpOptions::Parse(in.subspan(kTcpMinHeaderBytes, hdr_len - kTcpMinHeaderBytes));
  return h;
}

std::array<uint8_t, 12> TcpPseudoHeader::Serialize() const {
  std::array<uint8_t, 12> out{};
  StoreBe32(&out[0], src);
  StoreBe32(&out[4], dst);
  out[8] = 0;
  out[9] = kIpProtoTcp;
  StoreBe16(&out[10], tcp_length);
  return out;
}

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

void EtherHeader::Serialize(std::span<uint8_t> out) const {
  TCPLAT_CHECK_GE(out.size(), kEtherHeaderBytes);
  for (size_t i = 0; i < 6; ++i) {
    out[i] = dst[i];
    out[6 + i] = src[i];
  }
  StoreBe16(&out[12], ethertype);
}

std::optional<EtherHeader> EtherHeader::Parse(std::span<const uint8_t> in) {
  if (in.size() < kEtherHeaderBytes) {
    return std::nullopt;
  }
  EtherHeader h;
  for (size_t i = 0; i < 6; ++i) {
    h.dst[i] = in[i];
    h.src[i] = in[6 + i];
  }
  h.ethertype = LoadBe16(&in[12]);
  return h;
}

}  // namespace tcplat
