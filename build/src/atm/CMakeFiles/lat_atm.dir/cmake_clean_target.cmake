file(REMOVE_RECURSE
  "liblat_atm.a"
)
