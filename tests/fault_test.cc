// Tests for the fault-injection module and the §4.2.1 error-detection
// attribution.

#include <gtest/gtest.h>

#include "src/atm/aal34.h"
#include "src/fault/error_experiment.h"
#include "src/fault/injector.h"
#include "src/net/crc.h"

namespace tcplat {
namespace {

std::vector<uint8_t> MakeCellBytes(uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> payload(100);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const auto cpcs = BuildCpcsPdu(payload, 1);
  uint8_t sn = 0;
  return SerializeCell(SegmentCpcsPdu(cpcs, 42, 1, &sn)[0]);
}

TEST(Injector, CellBitFlipperRespectsProbability) {
  auto rng = std::make_shared<Rng>(1);
  auto counter = std::make_shared<InjectionCounter>();
  auto corrupt = MakeCellBitFlipper(rng, counter, 0.5);
  int changed = 0;
  for (int i = 0; i < 1000; ++i) {
    auto cell = MakeCellBytes(i);
    const auto orig = cell;
    corrupt(cell);
    changed += cell != orig ? 1 : 0;
  }
  EXPECT_EQ(counter->injected, static_cast<uint64_t>(changed));
  EXPECT_NEAR(changed / 1000.0, 0.5, 0.06);
}

TEST(Injector, CellBitFlipperLeavesCellHeaderAlone) {
  auto rng = std::make_shared<Rng>(2);
  auto counter = std::make_shared<InjectionCounter>();
  auto corrupt = MakeCellBitFlipper(rng, counter, 1.0);
  for (int i = 0; i < 200; ++i) {
    auto cell = MakeCellBytes(i);
    const auto orig = cell;
    corrupt(cell);
    for (size_t b = 0; b < kAtmCellHeaderBytes; ++b) {
      EXPECT_EQ(cell[b], orig[b]) << "HEC-protected header must not be touched";
    }
  }
}

TEST(Injector, BitFlipIsCaughtByCellCrc) {
  auto rng = std::make_shared<Rng>(3);
  auto counter = std::make_shared<InjectionCounter>();
  auto corrupt = MakeCellBitFlipper(rng, counter, 1.0);
  for (int i = 0; i < 100; ++i) {
    auto cell = MakeCellBytes(i);
    corrupt(cell);
    bool crc_ok = true;
    auto parsed = ParseCell(cell, &crc_ok);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(crc_ok) << "single flips are always CRC-visible";
  }
}

TEST(Injector, CrcDefeatingCorruptionPassesCellCrc) {
  auto rng = std::make_shared<Rng>(4);
  auto counter = std::make_shared<InjectionCounter>();
  auto corrupt = MakeCrc10DefeatingCorruptor(rng, counter, 1.0);
  int corrupted = 0;
  for (int i = 0; i < 100; ++i) {
    auto cell = MakeCellBytes(i);
    const auto orig = cell;
    corrupt(cell);
    if (cell == orig) {
      continue;
    }
    ++corrupted;
    bool crc_ok = false;
    auto parsed = ParseCell(cell, &crc_ok);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(crc_ok) << "the whole point: the CRC cannot see this damage";
  }
  EXPECT_EQ(corrupted, 100);
}

TEST(Injector, ControllerCorruptorOnlyTouchesPayload) {
  auto rng = std::make_shared<Rng>(5);
  auto counter = std::make_shared<InjectionCounter>();
  auto corrupt = MakeControllerCorruptor(rng, counter, 1.0);
  for (int i = 0; i < 100; ++i) {
    Rng fill(i);
    std::vector<uint8_t> pdu(200);
    for (auto& b : pdu) {
      b = static_cast<uint8_t>(fill.Next());
    }
    auto orig = pdu;
    corrupt(pdu);
    EXPECT_NE(pdu, orig);
    for (size_t b = 0; b < 40; ++b) {
      EXPECT_EQ(pdu[b], orig[b]) << "IP+TCP headers are spared so the stream survives";
    }
  }
}

TEST(ErrorExperiment, RandomNoiseCaughtByAalCrc) {
  ErrorExperimentConfig cfg;
  cfg.source = ErrorSource::kLinkBitFlip;
  cfg.checksum = ChecksumMode::kStandard;
  cfg.probability = 0.005;
  cfg.iterations = 100;
  const auto r = RunErrorExperiment(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.injected, 0u);
  EXPECT_EQ(r.caught_cell_crc, r.injected);
  EXPECT_EQ(r.caught_tcp_checksum, 0u);
  EXPECT_EQ(r.app_mismatches, 0u);
}

TEST(ErrorExperiment, CrcDefeatingErrorsNeedTheTcpChecksum) {
  ErrorExperimentConfig cfg;
  cfg.source = ErrorSource::kLinkCrcDefeating;
  cfg.checksum = ChecksumMode::kStandard;
  cfg.probability = 0.003;
  cfg.iterations = 100;
  const auto with = RunErrorExperiment(cfg);
  EXPECT_GT(with.injected, 0u);
  EXPECT_EQ(with.caught_cell_crc, 0u);
  EXPECT_GT(with.caught_tcp_checksum, 0u);
  EXPECT_EQ(with.app_mismatches, 0u);

  cfg.checksum = ChecksumMode::kNone;
  const auto without = RunErrorExperiment(cfg);
  EXPECT_GT(without.injected, 0u);
  EXPECT_EQ(without.caught_tcp_checksum, 0u);
  EXPECT_GT(without.app_mismatches, 0u) << "with no checksum the damage reaches the app";
}

TEST(ErrorExperiment, ControllerErrorsInvisibleToIntegratedChecksum) {
  ErrorExperimentConfig cfg;
  cfg.source = ErrorSource::kControllerCopy;
  cfg.probability = 0.05;
  cfg.iterations = 100;

  cfg.checksum = ChecksumMode::kStandard;
  const auto standard = RunErrorExperiment(cfg);
  EXPECT_GT(standard.injected, 0u);
  EXPECT_GT(standard.caught_tcp_checksum, 0u)
      << "in_cksum reads the corrupted kernel memory and notices";
  EXPECT_EQ(standard.app_mismatches, 0u);

  cfg.checksum = ChecksumMode::kCombined;
  const auto combined = RunErrorExperiment(cfg);
  EXPECT_GT(combined.injected, 0u);
  EXPECT_EQ(combined.caught_tcp_checksum, 0u)
      << "the integrated copy sums the words it reads, not what lands in memory";
  EXPECT_GT(combined.app_mismatches, 0u);
}

TEST(ErrorExperiment, SourceNamesAreHuman) {
  EXPECT_EQ(ErrorSourceName(ErrorSource::kLinkBitFlip), "link bit flip");
  EXPECT_FALSE(ErrorSourceName(ErrorSource::kControllerCopy).empty());
}

}  // namespace
}  // namespace tcplat
