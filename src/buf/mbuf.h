// BSD-style mbuf buffer management.
//
// The paper attributes several latency artifacts to this layer (§2.2.1):
// transfers under 1 KB ride in chains of small 108-byte mbufs, larger
// transfers in 4 KB page-sized *cluster* mbufs; copying a small-mbuf chain
// (m_copym) really copies the data, while copying a cluster mbuf only bumps
// a reference count. This module reproduces those mechanics with real byte
// storage, and charges each operation's calibrated cost to the owning
// host's CPU.

#ifndef SRC_BUF_MBUF_H_
#define SRC_BUF_MBUF_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/net/checksum.h"

namespace tcplat {

// Geometry of the ULTRIX 4.2A / BSD mbuf world on the DECstation.
inline constexpr size_t kMbufSize = 128;       // MSIZE
inline constexpr size_t kMbufDataBytes = 108;  // MLEN: data bytes in a small mbuf
inline constexpr size_t kMbufHdrDataBytes = 100;  // MHLEN: packet-header mbuf
inline constexpr size_t kClusterBytes = 4096;  // MCLBYTES: one memory page
// sosend switches from small mbufs to clusters above this size (§2.2.1:
// "Once the data transfer size grows above 1 KB, ULTRIX uses cluster
// mbufs").
inline constexpr size_t kClusterThreshold = 1024;
// Leading space reserved in packet-header mbufs for link-layer headers.
inline constexpr size_t kMaxLinkHeader = 16;

class Mbuf;
using MbufPtr = std::unique_ptr<Mbuf>;

// One mbuf: either inline small storage or a view onto a shared cluster.
class Mbuf {
 public:
  // Use MbufPool to allocate; constructors are public only for the pool.
  Mbuf() = default;

  bool is_cluster() const { return cluster_ != nullptr; }
  // Number of other mbufs sharing this cluster (1 = exclusive).
  long cluster_refs() const { return cluster_ ? cluster_.use_count() : 0; }

  const uint8_t* data() const;
  uint8_t* data();
  size_t len() const { return len_; }

  std::span<const uint8_t> bytes() const { return {data(), len_}; }
  std::span<uint8_t> bytes() { return {data(), len_}; }

  size_t capacity() const { return cluster_ ? kClusterBytes : storage_.size(); }
  size_t leading_space() const { return offset_; }
  size_t trailing_space() const { return capacity() - offset_ - len_; }

  // Extends the data region `n` bytes backwards into leading space and
  // returns a span over the newly exposed bytes. Requires leading_space >= n.
  std::span<uint8_t> Prepend(size_t n);

  // Extends the data region `n` bytes forwards; returns the new bytes.
  std::span<uint8_t> Append(size_t n);

  // Drops `n` bytes from the front / back of this mbuf's data.
  void TrimFront(size_t n);
  void TrimBack(size_t n);

  Mbuf* next() { return next_.get(); }
  const Mbuf* next() const { return next_.get(); }
  MbufPtr TakeNext() { return std::move(next_); }
  void SetNext(MbufPtr next) { next_ = std::move(next); }

  // Partial checksum of this mbuf's current data, if one was computed when
  // the data was copied in (the §4.1.1 combined copy+checksum path).
  const std::optional<PartialChecksum>& partial_cksum() const { return partial_cksum_; }
  void set_partial_cksum(std::optional<PartialChecksum> p) { partial_cksum_ = std::move(p); }

 private:
  friend class MbufPool;

  // Returns the mbuf to freshly-allocated state, keeping storage_ capacity
  // so a recycled mbuf does not touch the allocator.
  void ResetForReuse();

  MbufPtr next_;  // next mbuf in this chain
  std::vector<uint8_t> storage_;                      // small mbuf storage
  std::shared_ptr<std::vector<uint8_t>> cluster_;     // or shared cluster
  size_t offset_ = 0;  // data start within storage/cluster
  size_t len_ = 0;     // valid data bytes
  std::optional<PartialChecksum> partial_cksum_;
};

struct MbufStats {
  uint64_t small_allocs = 0;
  uint64_t cluster_allocs = 0;
  uint64_t cluster_refs = 0;  // reference-count "copies"
  uint64_t frees = 0;
  uint64_t copym_calls = 0;
  uint64_t bytes_copied = 0;  // data actually moved by chain copies
  int64_t in_use = 0;
  int64_t peak_in_use = 0;
  // Wall-clock freelist effectiveness (simulated costs are unaffected).
  uint64_t mbuf_freelist_hits = 0;
  uint64_t cluster_freelist_hits = 0;
};

// Allocator + chain operations, bound to one host CPU for cost charging.
//
// Freed mbuf headers and exclusively-owned cluster pages are recycled on
// per-pool freelists, so the alloc/free storm of a long benchmark run stops
// hitting the global allocator. Recycled storage is re-zeroed, making a
// recycled mbuf indistinguishable from a fresh one (runs stay byte-for-byte
// reproducible); the *simulated* costs charged to the host CPU are identical
// either way — only wall-clock time improves.
class MbufPool {
 public:
  explicit MbufPool(Cpu* cpu);
  ~MbufPool();

  // MGET: a small mbuf with no leading space reserved.
  MbufPtr Get();
  // MGETHDR: a small packet-header mbuf with `leading` bytes reserved at the
  // front for lower-layer headers (TCP passes link + IP header room).
  MbufPtr GetHeader(size_t leading = kMaxLinkHeader);
  // MGET + MCLGET: a cluster mbuf.
  MbufPtr GetCluster();

  // m_free/m_freem: charges per-mbuf free cost and destroys the chain.
  void FreeChain(MbufPtr chain);

  // m_copym: copies `len` bytes starting `off` bytes into `chain` into a new
  // chain. Small mbufs are deep-copied (alloc + bcopy); cluster mbufs are
  // reference-shared. Requires off+len <= chain length.
  MbufPtr CopyRange(const Mbuf* chain, size_t off, size_t len);

  const MbufStats& stats() const { return stats_; }
  Cpu& cpu() { return *cpu_; }

 private:
  MbufPtr NewSmall(size_t leading);
  // Takes a recycled mbuf header (or allocates one); clean state, no cost
  // charged — callers charge the operation they model.
  MbufPtr TakeMbuf();
  // Takes a recycled (re-zeroed) cluster page or allocates a fresh one.
  std::shared_ptr<std::vector<uint8_t>> TakeCluster();

  Cpu* cpu_;
  MbufStats stats_;
  std::vector<Mbuf*> free_mbufs_;
  std::vector<std::shared_ptr<std::vector<uint8_t>>> free_clusters_;
};

// --- chain utilities (no cost charged; bookkeeping only) ---

// Total data bytes in the chain.
size_t ChainLength(const Mbuf* chain);
// Number of mbufs in the chain.
size_t ChainCount(const Mbuf* chain);
// Copies chain data [off, off+out.size()) into `out`.
void ChainCopyOut(const Mbuf* chain, size_t off, std::span<uint8_t> out);
// Flattens the whole chain into a vector (test/diagnostic helper).
std::vector<uint8_t> ChainToVector(const Mbuf* chain);
// Appends `tail` to the end of `head` (head must be non-null).
void ChainAppend(MbufPtr* head, MbufPtr tail);
// Drops `n` bytes from the front of the chain, returning fully-consumed
// mbufs to `pool` (charging frees). Used by sbdrop.
void ChainAdjHead(MbufPool* pool, MbufPtr* head, size_t n);
// m_pullup: rearranges the chain so its first `n` data bytes are contiguous
// in the head mbuf (allocating a fresh small mbuf when the current head
// cannot hold them). Charges allocation and copy costs. Returns false —
// leaving the chain untouched — if the chain is shorter than `n` or `n`
// exceeds a small mbuf's capacity.
bool ChainPullup(MbufPool* pool, MbufPtr* head, size_t n);

}  // namespace tcplat

#endif  // SRC_BUF_MBUF_H_
