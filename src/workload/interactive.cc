#include "src/workload/interactive.h"

#include <algorithm>
#include <string>

#include "src/base/check.h"
#include "src/core/table.h"

namespace tcplat {

const char* InteractiveKnobName(InteractiveKnob knob) {
  switch (knob) {
    case InteractiveKnob::kPathological:
      return "nagle+delack";
    case InteractiveKnob::kNodelay:
      return "nodelay";
    case InteractiveKnob::kDelackOff:
      return "delack-off";
  }
  return "?";
}

std::vector<FlowSpec> BuildInteractiveFlows(const InteractiveCell& cell, int clients,
                                            int servers) {
  TCPLAT_CHECK_GT(cell.flows, 0);
  TCPLAT_CHECK(!cell.request_chunks.empty());
  std::vector<FlowSpec> specs;
  specs.reserve(static_cast<size_t>(cell.flows));
  for (int f = 0; f < cell.flows; ++f) {
    FlowSpec spec;
    spec.client = f % clients;
    spec.server = f % servers;
    spec.iterations = cell.iterations;
    spec.warmup = cell.warmup;
    spec.think_time = cell.think_time;
    if (cell.keystrokes > 0) {
      spec.keystrokes = cell.keystrokes;
      spec.keystroke_interval = cell.keystroke_interval;
      spec.size = 1;
    } else if (cell.streaming) {
      spec.streaming = true;
      spec.size = cell.request_chunks[0];
      spec.stream_interval = cell.stream_interval;
    } else {
      spec.request_chunks = cell.request_chunks;
      spec.response_size = cell.response_size;
      spec.pipeline_depth = cell.pipeline_depth;
    }
    if (f < cell.clean_flows && !cell.streaming && cell.keystrokes == 0) {
      // Well-behaved control population: the whole request in one write,
      // sent immediately. These flows dominate p50 in mixed cells.
      size_t total = 0;
      for (const size_t chunk : cell.request_chunks) {
        total += chunk;
      }
      spec.request_chunks = {total};
      spec.client_nodelay = true;
    }
    switch (cell.knob) {
      case InteractiveKnob::kPathological:
        break;
      case InteractiveKnob::kNodelay:
        spec.client_nodelay = true;
        break;
      case InteractiveKnob::kDelackOff:
        spec.server_delack = false;
        break;
    }
    if (cell.impairment.active()) {
      spec.tolerate_errors = true;
    }
    specs.push_back(spec);
  }
  return specs;
}

InteractiveOutcome RunInteractiveCell(const InteractiveCell& cell) {
  return RunInteractiveCell(cell, nullptr);
}

InteractiveOutcome RunInteractiveCell(const InteractiveCell& cell, Tracer* tracer) {
  TCPLAT_CHECK_GT(cell.flows, 0);
  StarTestbedConfig config;
  config.network = cell.network;
  config.clients = std::min(cell.clients, cell.flows);
  config.servers = std::min(cell.servers, cell.flows);
  config.seed = cell.seed;
  config.shards = cell.shards;
  config.shard_threads = cell.shard_threads;
  if (cell.delack_timeout.nanos() > 0) {
    config.tcp.delack_timeout = cell.delack_timeout;
  }
  StarTestbed testbed(config);
  if (tracer != nullptr) {
    testbed.AttachTracer(tracer);
  }
  if (cell.server_rcv_clamp > 0) {
    // Clamp only the server side: the echoed response still flows through
    // the client's full window, so the scenario converges on the
    // delayed-ACK clock instead of wedging both directions.
    for (int j = 0; j < config.servers; ++j) {
      testbed.server_tcp(j).config().rcv_window_clamp = cell.server_rcv_clamp;
    }
  }
  ImpairmentPolicy policy(cell.impairment);
  if (cell.impairment.active()) {
    testbed.atm_switch()->set_output_impairment(&policy);
  }

  const std::vector<FlowSpec> specs =
      BuildInteractiveFlows(cell, config.clients, config.servers);
  const WorkloadResult result = RunWorkload(testbed, specs);
  if (cell.impairment.active()) {
    testbed.atm_switch()->set_output_impairment(nullptr);
  }

  InteractiveOutcome out;
  out.samples = result.rtt.count();
  out.mean = result.rtt.Mean();
  if (out.samples > 0) {
    out.p50 = result.rtt.Percentile(50);
    out.p99 = result.rtt.Percentile(99);
  }
  out.completed = result.completed;
  out.aborted = result.aborted;
  for (int idx = 0; idx < config.clients + config.servers; ++idx) {
    const TcpStats& stats = testbed.tcp(idx).stats();
    out.nagle_holds += stats.nagle_holds;
    out.sws_holds += stats.sws_holds;
    out.delayed_acks_fired += stats.delayed_acks_fired;
    out.retransmits += stats.retransmits;
    out.rexmt_timeouts += stats.rexmt_timeouts;
    out.fast_retransmits += stats.fast_retransmits;
  }
  out.drops_injected = policy.stats().dropped;
  out.sim_elapsed = testbed.EndTime() - SimTime();
  out.sim_events = testbed.EventsDispatched();
  return out;
}

std::vector<std::string> InteractiveHeader() {
  return {"knob",  "flows", "req",   "resp",  "delack", "samples", "p50",
          "p99",   "nagle", "sws",   "dacks", "rexmt"};
}

std::vector<std::string> InteractiveRow(const InteractiveCell& cell,
                                        const InteractiveOutcome& out) {
  std::string req;
  for (size_t i = 0; i < cell.request_chunks.size(); ++i) {
    if (i > 0) req += "+";
    req += std::to_string(cell.request_chunks[i]);
  }
  const int64_t timer_ns =
      cell.delack_timeout.nanos() > 0 ? cell.delack_timeout.nanos() : TcpConfig().delack_timeout.nanos();
  return {
      InteractiveKnobName(cell.knob),
      std::to_string(cell.flows),
      req,
      std::to_string(cell.response_size),
      TextTable::Num(static_cast<double>(timer_ns) / 1e6, 0) + " ms",
      std::to_string(out.samples),
      TextTable::Us(static_cast<double>(out.p50.nanos()) / 1e3, 1),
      TextTable::Us(static_cast<double>(out.p99.nanos()) / 1e3, 1),
      std::to_string(out.nagle_holds),
      std::to_string(out.sws_holds),
      std::to_string(out.delayed_acks_fired),
      std::to_string(out.retransmits),
  };
}

}  // namespace tcplat
