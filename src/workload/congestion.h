// Congested-bottleneck cells: many bulk TCP flows funneled into one
// server's output fiber through the cell switch, with finite per-VC buffers
// and a selectable drop policy (tail / EPD / PPD) — the congestion-control
// era grafted onto the paper's testbed.
//
// Each cell fixes {congestion variant, drop policy, buffer size, flow
// count, link profile} and reports per-flow goodput, bottleneck efficiency
// (useful payload over cell-slots actually carried), and Jain's fairness
// index. The classic results this reproduces: tail drop poisons whole AAL
// frames with single-cell losses (low efficiency), EPD refuses frames it
// cannot complete (efficiency recovers), and SACK repairs multi-segment
// losses without timeout stalls that Reno cannot avoid.

#ifndef SRC_WORKLOAD_CONGESTION_H_
#define SRC_WORKLOAD_CONGESTION_H_

#include <string>
#include <vector>

#include "src/link/link_profile.h"
#include "src/tcp/congestion.h"
#include "src/workload/flow_driver.h"
#include "src/workload/star_testbed.h"

namespace tcplat {

struct CongestionCell {
  CongestionVariant variant = CongestionVariant::kReno;
  DropPolicy policy = DropPolicy::kTailDrop;
  // Per-VC output buffer at the switch, in cells. Must be > 0: an infinite
  // buffer never congests and the cell would degenerate to the capacity
  // benchmark.
  size_t buffer_cells = 128;
  size_t epd_threshold = 0;  // 0 = buffer_cells / 2
  int flows = 8;             // one client host per flow, all into one server
  uint64_t bulk_bytes = 96 * 1024;  // payload each flow pushes
  LinkProfileKind profile = LinkProfileKind::kLocalFiber;
  // Rate of the switch output port feeding the server, bits/second. The
  // trunk must be slower than the aggregate the clients can generate (and
  // than what the server's protocol CPU can absorb) so the shared per-VC
  // buffers at the switch — not host CPU or adapter FIFOs — take the
  // overload. 0 = full TAXI rate, which degenerates to the CPU-bound
  // capacity study.
  double trunk_bps = 6e6;
  // Socket buffers sized to keep many flows window-limited rather than
  // sender-starved; the MSS clamp keeps segments Ethernet-sized so one
  // segment spans several cells (what makes frame-level discard matter).
  size_t sndbuf = 32768;
  size_t rcvbuf = 32768;
  size_t mss_clamp = 1460;
  uint64_t seed = 1;
  int shards = 0;
  unsigned shard_threads = 0;
};

// Per-flow view for the tail-blame section: with one client host per flow,
// the host's TCP counters are exactly the flow's.
struct CongestionFlowStats {
  double goodput_bps = 0.0;
  int64_t elapsed_ns = 0;  // bulk start to completion token, -1 if aborted
  uint64_t retransmits = 0;
  uint64_t rexmt_timeouts = 0;
  uint64_t fast_retransmits = 0;
  uint64_t rexmt_stall_ns = 0;  // simulated dead air waiting on fired RTOs
};

struct CongestionOutcome {
  std::vector<double> goodput_bps;  // per flow, bulk_bytes over its transfer time
  std::vector<CongestionFlowStats> flow_stats;  // index = flow = client host
  double aggregate_goodput_mbps = 0.0;  // total payload over the busy interval
  // Useful payload delivered over the payload capacity of every cell the
  // bottleneck VCs actually carried (44 payload bytes per AAL3/4 cell).
  // Retransmitted segments and poisoned frames burn slots without adding
  // payload, so wasteful drop policies push this down.
  double efficiency = 0.0;
  double fairness = 1.0;  // Jain's index over per-flow goodput
  uint64_t completed = 0;
  uint64_t aborted = 0;
  // Summed over every stack after the run.
  uint64_t retransmits = 0;
  uint64_t rexmt_timeouts = 0;
  uint64_t fast_retransmits = 0;
  uint64_t fast_recovery_episodes = 0;
  uint64_t newreno_partial_acks = 0;
  uint64_t sack_blocks_received = 0;
  uint64_t sack_retransmits = 0;
  // Switch-side accounting, bottleneck VCs only (client -> server).
  uint64_t cells_forwarded = 0;
  uint64_t cells_dropped_tail = 0;
  uint64_t cells_dropped_epd = 0;
  uint64_t cells_dropped_ppd = 0;
  uint64_t frames_discarded = 0;
  int64_t occupancy_hiwat = 0;  // max over the bottleneck VCs
  SimDuration sim_elapsed;
  uint64_t sim_events = 0;
};

// Flow specs for the cell: one bulk flow per client, all toward server 0,
// each carrying the cell's congestion variant as a per-flow socket option.
std::vector<FlowSpec> BuildCongestionFlows(const CongestionCell& cell);

// Builds a fresh star (cell.flows clients, 1 server) with the cell's VC
// buffer policy and link profile, runs every bulk flow to completion and
// reduces goodput/efficiency/fairness. The tracer overload attaches
// `tracer` to every host and the switch first.
CongestionOutcome RunCongestionCell(const CongestionCell& cell);
CongestionOutcome RunCongestionCell(const CongestionCell& cell, Tracer* tracer);

// Table formatting (simulated quantities only — byte-identical across
// TCPLAT_JOBS and shard counts at a fixed seed).
std::vector<std::string> CongestionHeader();
std::vector<std::string> CongestionRow(const CongestionCell& cell,
                                       const CongestionOutcome& out);

}  // namespace tcplat

#endif  // SRC_WORKLOAD_CONGESTION_H_
