file(REMOVE_RECURSE
  "liblat_sock.a"
)
