# Empty dependencies file for lat_rpc.
# This may be replaced when dependencies are built.
