# Empty dependencies file for lat_udp.
# This may be replaced when dependencies are built.
