// Load generators: builders that turn a traffic intent into FlowSpecs.
//
// Two arrival disciplines:
//  * Closed-loop — a fixed population of flows, each running its echo loop
//    back-to-back with an optional think time. Offered load self-limits to
//    the system's completion rate (the classic interactive-users model).
//  * Open-loop — flows arrive by a deterministic seeded Poisson process
//    (exponential interarrivals from src/base/random); offered load is set
//    by the arrival rate regardless of how the system keeps up.
//
// Plus composable mixes: incast fan-in (every client hammers one server),
// all-to-all, and background bulk under a foreground latency probe (the
// many-flow version of bench/ablation_crosstraffic).

#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/workload/flow_driver.h"

namespace tcplat {

struct ClosedLoopConfig {
  int flows = 1;
  int clients = 1;  // flows round-robin over client hosts...
  int servers = 1;  // ...and server hosts
  size_t size = 4;
  int iterations = 200;
  int warmup = 32;
  SimDuration think_time;
};

// Fixed-population flows, round-robining flow i onto client i%K and server
// i%M, all starting at time zero.
std::vector<FlowSpec> BuildClosedLoop(const ClosedLoopConfig& config);

struct OpenLoopConfig {
  int flows = 16;
  int clients = 1;
  int servers = 1;
  size_t size = 4;
  int iterations = 20;
  int warmup = 4;
  // Mean interarrival time of the Poisson process (its rate sets offered
  // load); draws are seeded, so a seed fully determines every arrival.
  SimDuration mean_interarrival = SimDuration::FromMicros(500);
  uint64_t seed = 1;
};

// Poisson arrivals: flow i connects after the sum of i exponential draws.
std::vector<FlowSpec> BuildOpenLoop(const OpenLoopConfig& config);

// Incast fan-in: `flows` closed-loop flows from `clients` client hosts all
// converging on server 0.
std::vector<FlowSpec> BuildIncast(int flows, int clients, size_t size, int iterations,
                                  int warmup);

// All-to-all: one closed-loop flow for every (client, server) pair.
std::vector<FlowSpec> BuildAllToAll(int clients, int servers, size_t size, int iterations,
                                    int warmup);

struct ProbeMixConfig {
  int bulk_flows = 4;
  int clients = 1;
  int servers = 1;
  size_t bulk_size = 8000;  // background bulk echo size
  int bulk_iterations = 100;
  size_t probe_size = 4;  // foreground latency probe
  int probe_iterations = 200;
  int probe_warmup = 32;
};

// Background bulk cross-traffic under a foreground latency probe. The probe
// is flow 0 (so it owns the measured region and the classic echo port);
// the bulk flows run unwarmed and untimed-by-convention alongside it.
std::vector<FlowSpec> BuildProbeMix(const ProbeMixConfig& config);

}  // namespace tcplat

#endif  // SRC_WORKLOAD_GENERATOR_H_
