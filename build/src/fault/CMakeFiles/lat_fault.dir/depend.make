# Empty dependencies file for lat_fault.
# This may be replaced when dependencies are built.
