// The Ethernet baseline: a 10 Mbit/s shared segment with LANCE-style
// drivers, used for the paper's Table 1 ATM-vs-Ethernet comparison.
//
// The LANCE on the DECstation 5000/200 stages every packet through a
// dedicated buffer memory, which is why the paper finds ~919 us of the
// 4-byte round trip attributable to "the network driver, adapter, and
// physical link". The calibrated ether_tx/ether_rx costs model that
// staging; frames carry a real CRC-32 checked (in adapter hardware) on
// receive.
//
// Address resolution is real ARP (src/ether/arp.h): unknown destinations
// trigger a broadcast who-has with the outbound packet queued until the
// unicast reply arrives; AddRoute pre-seeds the cache the way the paper's
// fixed two-host testbed would have had its entries warm.
//
// Frames are delivered to every station on the segment; each station
// filters by destination MAC (or broadcast). Collisions are not modeled —
// the measured workload is a strict request/response alternation on a
// private segment.

#ifndef SRC_ETHER_ETHER_NETIF_H_
#define SRC_ETHER_ETHER_NETIF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ether/arp.h"
#include "src/ip/ip_stack.h"
#include "src/ip/netif.h"
#include "src/link/wire.h"
#include "src/net/wire.h"
#include "src/os/host.h"

namespace tcplat {

inline constexpr double kEtherBitsPerSecond = 10e6;

class EtherNetIf;

// One shared 10 Mbit/s medium.
class EtherSegment {
 public:
  EtherSegment(Simulator* sim, SimDuration propagation);

  void Attach(EtherNetIf* station);

  // Serializes a frame onto the bus (preamble + IFG included as gap bytes)
  // and delivers it to every attached station.
  SimTime Transmit(SimTime earliest, std::vector<uint8_t> frame);

  void set_corrupt_hook(CorruptFn hook) { bus_.set_corrupt_hook(std::move(hook)); }
  void set_drop_hook(DropFn hook) { bus_.set_drop_hook(std::move(hook)); }
  void set_impairment(LinkImpairment* impairment) { bus_.set_impairment(impairment); }
  uint64_t frames_sent() const { return bus_.units_sent(); }
  uint64_t frames_dropped() const { return bus_.units_dropped(); }

 private:
  SharedBus bus_;
  std::vector<EtherNetIf*> stations_;
};

struct EtherNetIfStats {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t crc_errors = 0;
  uint64_t not_for_us = 0;
  uint64_t too_short = 0;
};

class EtherNetIf : public NetIf {
 public:
  EtherNetIf(IpStack* ip, Host* host, EtherSegment* segment, MacAddr mac);

  // Pre-seeds the ARP cache (static binding; never times out).
  void AddRoute(Ipv4Addr addr, MacAddr mac);

  std::string name() const override { return "ln0"; }
  size_t mtu() const override { return kEtherMtu; }
  void Output(MbufPtr packet, Ipv4Addr next_hop) override;

  const MacAddr& mac() const { return mac_; }
  const EtherNetIfStats& stats() const { return stats_; }
  const ArpStats& arp_stats() const { return arp_stats_; }
  Host& host() { return *host_; }

  // How long an unanswered resolution holds its queued packets.
  void set_arp_timeout(SimDuration timeout) { arp_timeout_ = timeout; }

 private:
  friend class EtherSegment;
  void OnFrameArrival(SimTime arrival, std::vector<uint8_t> frame);
  void RxInterrupt(SimTime arrival, std::vector<uint8_t> frame);
  void HandleArp(std::span<const uint8_t> payload);

  // Builds header + payload (padded) + FCS and puts it on the bus,
  // charging driver costs. Returns the frame length.
  size_t TransmitFrame(uint16_t ethertype, std::span<const uint8_t> payload,
                       const MacAddr& dst);
  void SendArpRequest(Ipv4Addr target);

  IpStack* ip_;
  Host* host_;
  EtherSegment* segment_;
  MacAddr mac_;
  ArpCache arp_;
  ArpStats arp_stats_;
  SimDuration arp_timeout_ = SimDuration::FromSeconds(1);
  EtherNetIfStats stats_;
};

}  // namespace tcplat

#endif  // SRC_ETHER_ETHER_NETIF_H_
