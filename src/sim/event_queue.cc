#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/base/check.h"

namespace tcplat {

namespace {
// Compaction triggers only past this many dead entries, so small queues
// never pay for it; above it, compaction runs when dead entries outnumber
// live ones, which keeps the heap within 2x the peak live count while
// amortizing the O(n) sweep over at least n/2 cancellations.
constexpr size_t kCompactMinDead = 64;
// The freelist tracks the working set but is capped so a transient burst of
// pending events cannot pin memory forever.
constexpr size_t kMaxFreeEntries = 4096;
}  // namespace

EventQueue::~EventQueue() {
  for (Entry* e : heap_) {
    delete e;
  }
  for (Entry* e : free_) {
    delete e;
  }
}

EventQueue::Entry* EventQueue::AllocEntry(SimTime when, Callback fn) {
  Entry* e;
  if (!free_.empty()) {
    e = free_.back();
    free_.pop_back();
  } else {
    e = new Entry;
  }
  e->time = when;
  e->seq = next_seq_++;
  e->id = next_id_++;
  e->fn = std::move(fn);
  e->cancelled = false;
  return e;
}

void EventQueue::RecycleEntry(Entry* e) {
  e->fn = nullptr;  // release captured state eagerly
  if (free_.size() < kMaxFreeEntries) {
    free_.push_back(e);
  } else {
    delete e;
  }
}

EventId EventQueue::ScheduleAt(SimTime when, Callback fn) {
  TCPLAT_CHECK(fn != nullptr);
  Entry* entry = AllocEntry(when, std::move(fn));
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), EntryGreater{});
  live_.emplace(entry->id, entry);
  return entry->id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return false;
  }
  Entry* entry = it->second;
  live_.erase(it);
  entry->cancelled = true;
  entry->fn = nullptr;  // the captured state dies now, not at pop time
  ++dead_in_heap_;
  CompactIfWorthIt();
  return true;
}

void EventQueue::DropDeadHead() {
  while (!heap_.empty() && heap_.front()->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
    RecycleEntry(heap_.back());
    heap_.pop_back();
    --dead_in_heap_;
  }
}

void EventQueue::CompactIfWorthIt() {
  if (dead_in_heap_ < kCompactMinDead || dead_in_heap_ * 2 < heap_.size()) {
    return;
  }
  auto first_dead = std::partition(heap_.begin(), heap_.end(),
                                   [](const Entry* e) { return !e->cancelled; });
  for (auto it = first_dead; it != heap_.end(); ++it) {
    RecycleEntry(*it);
  }
  heap_.erase(first_dead, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), EntryGreater{});
  dead_in_heap_ = 0;
}

SimTime EventQueue::NextTime() {
  DropDeadHead();
  TCPLAT_CHECK(!heap_.empty());
  return heap_.front()->time;
}

EventQueue::Dispatched EventQueue::PopNext() {
  DropDeadHead();
  TCPLAT_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
  Entry* entry = heap_.back();
  heap_.pop_back();
  Dispatched out{entry->time, std::move(entry->fn)};
  live_.erase(entry->id);
  RecycleEntry(entry);
  return out;
}

}  // namespace tcplat
