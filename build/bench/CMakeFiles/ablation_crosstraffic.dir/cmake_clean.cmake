file(REMOVE_RECURSE
  "CMakeFiles/ablation_crosstraffic.dir/ablation_crosstraffic.cc.o"
  "CMakeFiles/ablation_crosstraffic.dir/ablation_crosstraffic.cc.o.d"
  "ablation_crosstraffic"
  "ablation_crosstraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crosstraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
