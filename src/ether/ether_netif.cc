#include "src/ether/ether_netif.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"
#include "src/net/byte_order.h"
#include "src/net/crc.h"

namespace tcplat {

EtherSegment::EtherSegment(Simulator* sim, SimDuration propagation)
    : bus_(sim, kEtherBitsPerSecond, propagation, kEtherPreambleBytes + kEtherIfgBytes) {}

void EtherSegment::Attach(EtherNetIf* station) {
  TCPLAT_CHECK(station != nullptr);
  stations_.push_back(station);
}

SimTime EtherSegment::Transmit(SimTime earliest, std::vector<uint8_t> frame) {
  auto stations = stations_;  // stable copy for the delivery lambda
  return bus_.Transmit(earliest, std::move(frame),
                       [stations](SimTime arrival, std::vector<uint8_t> data) {
                         for (size_t i = 0; i < stations.size(); ++i) {
                           if (i + 1 == stations.size()) {
                             stations[i]->OnFrameArrival(arrival, std::move(data));
                           } else {
                             stations[i]->OnFrameArrival(arrival, data);
                           }
                         }
                       });
}

EtherNetIf::EtherNetIf(IpStack* ip, Host* host, EtherSegment* segment, MacAddr mac)
    : ip_(ip), host_(host), segment_(segment), mac_(mac) {
  TCPLAT_CHECK(ip != nullptr);
  TCPLAT_CHECK(host != nullptr);
  TCPLAT_CHECK(segment != nullptr);
  ip_->AttachNetIf(this);
  segment_->Attach(this);

  // First interface wins: multi-homed hosts (gateways) expose their first
  // NIC's counters under the plain names.
  MetricsRegistry& m = host_->metrics();
  if (!m.contains("ether.frames_sent")) {
    m.AddCounterView("ether.frames_sent", &stats_.frames_sent);
    m.AddCounterView("ether.frames_received", &stats_.frames_received);
    m.AddCounterView("ether.crc_errors", &stats_.crc_errors);
    m.AddCounterView("ether.not_for_us", &stats_.not_for_us);
    m.AddCounterView("ether.too_short", &stats_.too_short);
  }
}

void EtherNetIf::AddRoute(Ipv4Addr addr, MacAddr mac) { arp_.Insert(addr, mac); }

size_t EtherNetIf::TransmitFrame(uint16_t ethertype, std::span<const uint8_t> payload,
                                 const MacAddr& dst) {
  Cpu& cpu = host_->cpu();
  const size_t payload_len = std::max(payload.size(), kEtherMinPayload);
  std::vector<uint8_t> frame(kEtherHeaderBytes + payload_len + kEtherCrcBytes, 0);
  EtherHeader eh;
  eh.dst = dst;
  eh.src = mac_;
  eh.ethertype = ethertype;
  eh.Serialize(frame);
  std::memcpy(frame.data() + kEtherHeaderBytes, payload.data(), payload.size());
  const uint32_t fcs = Crc32({frame.data(), kEtherHeaderBytes + payload_len});
  StoreBe32(frame.data() + kEtherHeaderBytes + payload_len, fcs);

  const size_t frame_len = frame.size();
  // The LANCE copy through its buffer memory is the dominant driver cost.
  cpu.Charge(cpu.profile().ether_tx, frame_len);
  segment_->Transmit(cpu.cursor(), std::move(frame));
  ++stats_.frames_sent;
  host_->TracePacket(TraceLayer::kEther, TraceEventKind::kFrameTx, ethertype, stats_.frames_sent,
                     frame_len);
  return frame_len;
}

void EtherNetIf::SendArpRequest(Ipv4Addr target) {
  ArpPacket req;
  req.op = ArpOp::kRequest;
  req.sender_mac = mac_;
  req.sender_ip = ip_->addr();
  req.target_mac = MacAddr{};
  req.target_ip = target;
  ++arp_stats_.requests_sent;
  TransmitFrame(kEtherTypeArp, req.Serialize(), kBroadcastMac);

  // If nothing answers, release the queued packets.
  host_->After(arp_timeout_, [this, target] {
    const auto dropped = arp_.TakePending(target);
    arp_stats_.timeouts += dropped.size();
  });
}

void EtherNetIf::Output(MbufPtr packet, Ipv4Addr next_hop) {
  const size_t len = ChainLength(packet.get());
  TCPLAT_CHECK_LE(len, mtu()) << "packet exceeds Ethernet MTU";

  ScopedSpan mute(&host_->tracker(), SpanId::kMuted);
  const SimTime t0 = host_->cpu().cursor();

  const auto resolved = arp_.Lookup(next_hop);
  if (!resolved.has_value()) {
    // Unresolved: park the packet and ask the segment who has it. Only the
    // first packet of a burst sends a request.
    const bool first = !arp_.HasPending(next_hop);
    std::vector<uint8_t> flat = ChainToVector(packet.get());
    host_->pool().FreeChain(std::move(packet));
    if (!arp_.Enqueue(next_hop, std::move(flat))) {
      ++arp_stats_.queue_drops;
    }
    if (first) {
      SendArpRequest(next_hop);
    }
    host_->tracker().AddInterval(SpanId::kTxDriver, host_->cpu().cursor() - t0);
    return;
  }

  std::vector<uint8_t> flat = ChainToVector(packet.get());
  host_->pool().FreeChain(std::move(packet));
  TransmitFrame(kEtherTypeIpv4, flat, *resolved);
  host_->tracker().AddInterval(SpanId::kTxDriver, host_->cpu().cursor() - t0);
}

void EtherNetIf::OnFrameArrival(SimTime arrival, std::vector<uint8_t> frame) {
  if (frame.size() < kEtherHeaderBytes + kEtherMinPayload + kEtherCrcBytes) {
    ++stats_.too_short;
    host_->TracePacket(TraceLayer::kEther, TraceEventKind::kDrop, 0, 0, frame.size());
    return;
  }
  auto hdr = EtherHeader::Parse(frame);
  TCPLAT_CHECK(hdr.has_value());
  if (hdr->src == mac_) {
    return;  // our own transmission echoing on the bus
  }
  if (hdr->dst != mac_ && hdr->dst != kBroadcastMac) {
    ++stats_.not_for_us;
    host_->TracePacket(TraceLayer::kEther, TraceEventKind::kDrop, hdr->ethertype, 0,
                       frame.size());
    return;
  }
  // The adapter verifies the FCS in hardware before interrupting.
  const size_t fcs_off = frame.size() - kEtherCrcBytes;
  const uint32_t want = LoadBe32(frame.data() + fcs_off);
  if (Crc32({frame.data(), fcs_off}) != want) {
    ++stats_.crc_errors;
    host_->TracePacket(TraceLayer::kEther, TraceEventKind::kDrop, hdr->ethertype, 0,
                       frame.size());
    return;
  }
  host_->RunAsInterrupt([this, arrival, &frame] { RxInterrupt(arrival, std::move(frame)); });
}

void EtherNetIf::HandleArp(std::span<const uint8_t> payload) {
  Cpu& cpu = host_->cpu();
  cpu.Charge(cpu.profile().arp_proc);
  auto arp = ArpPacket::Parse(payload);
  if (!arp.has_value()) {
    return;
  }
  switch (arp->op) {
    case ArpOp::kRequest: {
      ++arp_stats_.requests_received;
      if (arp->target_ip != ip_->addr()) {
        return;  // someone else's question
      }
      // Learn the asker and answer directly.
      arp_.Insert(arp->sender_ip, arp->sender_mac);
      ArpPacket reply;
      reply.op = ArpOp::kReply;
      reply.sender_mac = mac_;
      reply.sender_ip = ip_->addr();
      reply.target_mac = arp->sender_mac;
      reply.target_ip = arp->sender_ip;
      ++arp_stats_.replies_sent;
      TransmitFrame(kEtherTypeArp, reply.Serialize(), arp->sender_mac);
      return;
    }
    case ArpOp::kReply: {
      ++arp_stats_.replies_received;
      arp_.Insert(arp->sender_ip, arp->sender_mac);
      ++arp_stats_.resolutions;
      // Release everything that was waiting on this resolution.
      for (auto& flat : arp_.TakePending(arp->sender_ip)) {
        TransmitFrame(kEtherTypeIpv4, flat, arp->sender_mac);
      }
      return;
    }
  }
}

void EtherNetIf::RxInterrupt(SimTime arrival, std::vector<uint8_t> frame) {
  Cpu& cpu = host_->cpu();
  ScopedSpan mute(&host_->tracker(), SpanId::kMuted);
  cpu.Charge(cpu.profile().ether_rx, frame.size());
  ++stats_.frames_received;
  host_->TracePacket(TraceLayer::kEther, TraceEventKind::kFrameRx, 0, stats_.frames_received,
                     frame.size());

  auto hdr = EtherHeader::Parse(frame);
  const std::span<const uint8_t> payload(frame.data() + kEtherHeaderBytes,
                                         frame.size() - kEtherHeaderBytes - kEtherCrcBytes);
  if (hdr->ethertype == kEtherTypeArp) {
    HandleArp(payload);
    return;
  }
  if (hdr->ethertype != kEtherTypeIpv4) {
    return;
  }

  // IP header into a small leading mbuf, payload into small mbufs or
  // clusters (same policy as the ATM driver). Ethernet padding is trimmed
  // later by ip_input using the IP total length.
  if (payload.size() < kIpv4HeaderBytes) {
    ++stats_.too_short;
    host_->TracePacket(TraceLayer::kEther, TraceEventKind::kDrop, hdr->ethertype, 0,
                       frame.size());
    return;
  }
  MbufPtr head = host_->pool().GetHeader();
  std::memcpy(head->Append(kIpv4HeaderBytes).data(), payload.data(), kIpv4HeaderBytes);
  const bool use_clusters = payload.size() - kIpv4HeaderBytes > kClusterThreshold;
  size_t off = kIpv4HeaderBytes;
  while (off < payload.size()) {
    MbufPtr m = use_clusters ? host_->pool().GetCluster() : host_->pool().Get();
    const size_t chunk = std::min(m->capacity(), payload.size() - off);
    std::memcpy(m->Append(chunk).data(), payload.data() + off, chunk);
    off += chunk;
    ChainAppend(&head, std::move(m));
  }
  ip_->InputFromDriver(std::move(head));
  host_->tracker().AddInterval(SpanId::kRxDriver, cpu.cursor() - arrival);
}

}  // namespace tcplat
