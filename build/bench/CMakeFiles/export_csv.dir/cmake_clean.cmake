file(REMOVE_RECURSE
  "CMakeFiles/export_csv.dir/export_csv.cc.o"
  "CMakeFiles/export_csv.dir/export_csv.cc.o.d"
  "export_csv"
  "export_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
