// Time-series telemetry plane: deterministic counter timelines over
// simulated time.
//
// Producers (TcpConnection, AtmSwitch, FlowDriver) push samples whenever a
// tracked value changes; the sampler thins them to at most one point per
// track per sampling period, so a timeline costs O(run length / period) per
// track instead of O(events). Discontinuities bypass the thinning as "edge"
// samples (loss-episode entry/exit, EPD frame refusal, RTO fire, and the
// peak/valley pair of a cwnd sawtooth corner), so the corners of every
// sawtooth are exact rather than aliased by the sampling clock.
//
// Everything is driven by simulated time: there are no self-rescheduling
// sampling events (which would keep the event queue alive forever), and a
// sharded run keeps one sampler per shard with no cross-shard
// synchronization. Timelines are finalized by a stable sort on
// (ts_ns, host): each host lives on exactly one shard and its push stream
// is simulated-deterministic, so the sorted timeline is byte-identical
// across TCPLAT_JOBS, shard counts, and serial-vs-sharded execution — the
// same guarantee the TLBT event pipeline gives, delivered by value order
// instead of shard order.

#ifndef SRC_TRACE_TIMESERIES_H_
#define SRC_TRACE_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/time.h"

namespace tcplat {

// One track per (host, metric, key): key is the flow id for TCP/flow
// metrics and the VCI for switch metrics.
enum class TsMetric : uint8_t {
  // Periodic (change-driven, thinned to the sampling period).
  kTcpCwnd = 0,
  kTcpSsthresh,
  kTcpPipe,          // snd_max - snd_una, bytes outstanding
  kTcpSrttUs,
  kTcpRtoUs,
  kVcOccupancy,      // switch per-VC output buffer, in cells
  kVcHiwat,
  kVcDropsCum,       // cumulative per-VC cells dropped
  kFlowGoodputBps,
  kFlowInflightBytes,
  // Edge-only (never thinned; mark discontinuities exactly).
  kTcpLossEnter,     // value = cwnd at the peak, before the halving
  kTcpLossExit,      // value = cwnd after recovery deflation
  kTcpRtoFire,       // value = the fired RTO in ns (the dead-air length)
  kVcEpdRefusal,     // value = occupancy that refused the frame
  kCount,
};

const char* TsMetricName(TsMetric m);

struct TimeseriesPoint {
  int64_t ts_ns = 0;
  int64_t value = 0;
  uint64_t key = 0;   // flow id or VCI
  uint8_t host = 0;   // Tracer::RegisterHost id
  uint8_t metric = 0; // TsMetric
  bool edge = false;
};

struct TimeseriesConfig {
  // Sampling period. At most one non-edge point per track per period.
  // <= 0 disables recording entirely while leaving the producer hooks
  // live — the configuration the `timeseries_overhead_pct` gate measures.
  int64_t period_ns = 1'000'000;
};

class TimeseriesSampler {
 public:
  explicit TimeseriesSampler(const TimeseriesConfig& config)
      : period_ns_(config.period_ns) {}

  bool active() const { return period_ns_ > 0; }
  int64_t period_ns() const { return period_ns_; }

  // Change-driven sample: recorded if this track has no point yet, or if
  // the value differs from the last recorded point and at least one full
  // period has elapsed since it. Values that change and settle within one
  // period are folded into the next recorded point.
  void Push(uint8_t host, TsMetric metric, uint64_t key, SimTime ts, int64_t value);

  // Discontinuity: always recorded (subject only to active()).
  void PushEdge(uint8_t host, TsMetric metric, uint64_t key, SimTime ts, int64_t value);

  // Merge input from another sampler (a shard's): no thinning, the source
  // already thinned.
  void Append(const TimeseriesPoint& p) {
    if (active()) {
      points_.push_back(p);
    }
  }

  const std::vector<TimeseriesPoint>& points() const { return points_; }
  void Clear();
  size_t ApproxMemoryBytes() const;

 private:
  struct TrackState {
    int64_t last_bucket = 0;
    int64_t last_value = 0;
    bool dirty = false;  // a change was thinned away since the last point
  };

  int64_t period_ns_;
  std::unordered_map<uint64_t, TrackState> tracks_;
  std::vector<TimeseriesPoint> points_;
};

// Finalizes a timeline: stable sort on (ts_ns, host). Per-host sub-order
// (the push order) is preserved, which is what makes the result invariant
// across shard layouts.
void SortTimeseriesPoints(std::vector<TimeseriesPoint>* points);

// Long-format timeline CSV. `host_names` indexes by TimeseriesPoint::host.
const char* TimeseriesCsvHeader();
void AppendTimeseriesCsvRow(std::string* out, const TimeseriesPoint& p,
                            const std::vector<std::string>& host_names);
std::string TimeseriesToCsv(const std::vector<TimeseriesPoint>& points,
                            const std::vector<std::string>& host_names);

}  // namespace tcplat

#endif  // SRC_TRACE_TIMESERIES_H_
