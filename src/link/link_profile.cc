#include "src/link/link_profile.h"

namespace tcplat {

const LinkProfile& GetLinkProfile(LinkProfileKind kind) {
  // 5 ns/m in fiber. Local: ~60 m of lab fiber (the testbed's 300 ns).
  // Campus: 10 km. Satellite: 35786 km up and back down at c, ~119 ms toward
  // the conventional ~130 ms one-way budget with ground segments.
  static const LinkProfile kLocalFiber{"local-fiber", SimDuration::FromNanos(300)};
  static const LinkProfile kCampus{"campus", SimDuration::FromMicros(50)};
  static const LinkProfile kGeoSatellite{"geo-satellite", SimDuration::FromMillis(130)};
  switch (kind) {
    case LinkProfileKind::kLocalFiber:
      return kLocalFiber;
    case LinkProfileKind::kCampus:
      return kCampus;
    case LinkProfileKind::kGeoSatellite:
      return kGeoSatellite;
  }
  return kLocalFiber;
}

}  // namespace tcplat
