file(REMOVE_RECURSE
  "liblat_link.a"
)
