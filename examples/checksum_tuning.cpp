// Checksum strategy tuner — §4's engineering question as a tool: given your
// message size, which checksum strategy should the stack use? Measures all
// three (standard in_cksum, the integrated copy+checksum kernel, and the
// negotiated-off option) across a size sweep and prints the decision curve
// with the break-even points.
//
//   $ ./checksum_tuning

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"

using namespace tcplat;

namespace {

double MeasureRtt(ChecksumMode mode, size_t size) {
  TestbedConfig cfg;
  cfg.tcp.checksum = mode;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 200;
  return RunRpcBenchmark(tb, opt).MeanRtt().micros();
}

}  // namespace

int main() {
  std::printf("TCP checksum strategies vs message size (round-trip us over ATM)\n\n");
  const std::vector<size_t> sizes = {4,   20,   80,   200,  350,  500,  800,
                                     1100, 1400, 2000, 4000, 6000, 8000};
  TextTable t({"Size", "Standard", "Combined copy+cksum", "Eliminated", "Best choice"});
  size_t combined_break_even = 0;
  for (size_t size : sizes) {
    const double std_us = MeasureRtt(ChecksumMode::kStandard, size);
    const double comb_us = MeasureRtt(ChecksumMode::kCombined, size);
    const double none_us = MeasureRtt(ChecksumMode::kNone, size);
    if (combined_break_even == 0 && comb_us < std_us) {
      combined_break_even = size;
    }
    const char* best = "standard";
    if (none_us < std_us && none_us < comb_us) {
      best = comb_us < std_us ? "eliminate (else combined)" : "eliminate (else standard)";
    } else if (comb_us < std_us) {
      best = "combined";
    }
    t.AddRow({std::to_string(size), TextTable::Us(std_us), TextTable::Us(comb_us),
              TextTable::Us(none_us), best});
  }
  t.Print();

  std::printf("\nFindings (matching the paper's §4):\n");
  std::printf(" * Eliminating the checksum always wins on latency, but it is only\n"
              "   defensible on local links where the AAL3/4 CRC-10 guards the fiber\n"
              "   and a higher layer checks end-to-end (see ./error_injection).\n");
  if (combined_break_even != 0) {
    std::printf(" * If the checksum must stay, integrate it with the copy for messages\n"
                "   of ~%zu bytes and up; below that the per-packet bookkeeping of the\n"
                "   combined kernel costs more than it saves (paper: break-even between\n"
                "   500 and 1400 bytes).\n",
                combined_break_even);
  }
  return 0;
}
