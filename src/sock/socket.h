// The socket layer: sosend/soreceive, socket buffers, and the user/kernel
// boundary.
//
// This layer owns two latency behaviors the paper analyzes:
//
//  * The mbuf policy (§2.2.1): writes of more than 1 KB go into 4 KB cluster
//    mbufs, smaller writes into chains of 108-byte mbufs — the cause of the
//    nonlinearity between the 500- and 1400-byte rows of Table 2.
//  * sosend hands data to the protocol one chunk (mbuf or cluster) at a
//    time, each chunk triggering a protocol send. This is why an 8000-byte
//    write leaves as two segments even on a 9 KB-MTU network.
//
// The transmit half of the §4.1.1 combined copy+checksum also lives here:
// with integrated_copyin enabled, the user-to-kernel copy simultaneously
// computes a per-mbuf partial checksum stored in the mbuf for TCP output to
// combine later.

#ifndef SRC_SOCK_SOCKET_H_
#define SRC_SOCK_SOCKET_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>

#include "src/buf/mbuf.h"
#include "src/os/host.h"
#include "src/trace/span.h"

namespace tcplat {

// Defined in src/tcp/congestion.h; opaque here so the socket layer stays
// below the TCP layer.
enum class CongestionVariant : uint8_t;

// Protocol entry points the socket layer calls (PRU_* requests); implemented
// by TcpConnection.
class ProtocolOps {
 public:
  virtual ~ProtocolOps() = default;
  virtual void UsrSend() = 0;   // new data appended to the send buffer
  virtual void UsrRcvd() = 0;   // user consumed receive-buffer data
  virtual void UsrClose() = 0;  // user closed the socket
};

// One direction's socket buffer (struct sockbuf).
class SockBuf {
 public:
  explicit SockBuf(size_t hiwat) : hiwat_(hiwat) {}

  size_t cc() const { return cc_; }
  size_t hiwat() const { return hiwat_; }
  size_t space() const { return cc_ >= hiwat_ ? 0 : hiwat_ - cc_; }
  void set_hiwat(size_t hiwat) { hiwat_ = hiwat; }

  const Mbuf* chain() const { return chain_.get(); }

  // sbappend: links `m` (charging per-mbuf append cost to `pool`'s CPU).
  void Append(MbufPool* pool, MbufPtr m);
  // sbdrop: releases `n` bytes from the front.
  void Drop(MbufPool* pool, size_t n);
  // Takes up to out.size() bytes into `out`, charging copyout costs, and
  // drops them. Returns bytes taken.
  size_t CopyOutAndDrop(MbufPool* pool, std::span<uint8_t> out);

  WaitChannel& channel() { return chan_; }

 private:
  size_t cc_ = 0;
  size_t hiwat_;
  MbufPtr chain_;
  WaitChannel chan_;
};

enum class SocketState { kIdle, kListening, kConnecting, kConnected, kClosed };

// Default listen backlog (queued + embryonic connections per listener).
inline constexpr size_t kDefaultAcceptBacklog = 128;

struct SocketStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
};

class Socket {
 public:
  Socket(Host* host, size_t sndbuf, size_t rcvbuf);

  Host& host() { return *host_; }
  SockBuf& snd() { return snd_; }
  SockBuf& rcv() { return rcv_; }

  void BindOps(ProtocolOps* ops) { ops_ = ops; }

  // Enables the integrated user-to-kernel copy + checksum (Table 6 kernel).
  void set_integrated_copyin(bool enabled) { integrated_copyin_ = enabled; }
  bool integrated_copyin() const { return integrated_copyin_; }

  // sosend's small-mbuf/cluster switchover point (§2.2.1).
  void set_cluster_threshold(size_t bytes) { cluster_threshold_ = bytes; }
  size_t cluster_threshold() const { return cluster_threshold_; }

  // Per-socket TCP_NODELAY (overrides the stack-wide default when set).
  void SetNodelay(bool enabled) { nodelay_ = enabled; }
  const std::optional<bool>& nodelay_option() const { return nodelay_; }

  // Per-socket congestion-control variant (overrides the stack-wide default
  // when set). On a listener it is inherited by accepted connections.
  void SetCongestion(CongestionVariant variant) { congestion_ = variant; }
  const std::optional<CongestionVariant>& congestion_option() const { return congestion_; }

  // Per-socket delayed-ACK controls (override the stack-wide defaults when
  // set): enable/disable the delayed-ACK machinery and its timer value.
  void SetDelackEnabled(bool enabled) { delack_ = enabled; }
  const std::optional<bool>& delack_option() const { return delack_; }
  void SetDelackTimeout(SimDuration timeout) { delack_timeout_ = timeout; }
  const std::optional<SimDuration>& delack_timeout_option() const {
    return delack_timeout_;
  }

  // --- user "system calls" (called from process coroutines) ---

  // sosend: copies as much of `data` as fits into the send buffer, chunk by
  // chunk, invoking the protocol's send after each chunk. Returns bytes
  // accepted (0 when the buffer is full — wait on WaitWritable and retry).
  size_t Write(std::span<const uint8_t> data);

  // soreceive: copies up to out.size() buffered bytes to the user. Returns
  // bytes delivered (0 when the buffer is empty — wait on WaitReadable).
  size_t Read(std::span<uint8_t> out);

  // Begins an orderly close of the send side.
  void Close();

  // Dequeues a connection accepted by a listening socket, or null.
  Socket* Accept();

  // --- wait conditions (each returns an awaitable; callers loop, as
  // wakeups can be spurious) ---
  auto WaitReadable();
  auto WaitWritable();
  auto WaitConnected();
  auto WaitAcceptable();

  // --- state, managed by the protocol ---
  SocketState state() const { return state_; }
  bool connected() const { return state_ == SocketState::kConnected; }
  bool eof() const { return eof_ && rcv_.cc() == 0; }
  bool has_error() const { return error_; }

  // Accept backlog: counts connections queued for Accept() plus embryonic
  // (handshake in flight) ones, like BSD's so_qlen + so_q0len vs so_qlimit.
  void set_accept_backlog(size_t backlog) { accept_backlog_ = backlog; }
  size_t accept_backlog() const { return accept_backlog_; }
  bool AcceptBacklogFull() const {
    return accept_queue_.size() + embryonic_ >= accept_backlog_;
  }
  void EmbryonicStarted() { ++embryonic_; }
  void EmbryonicEnded() {
    if (embryonic_ > 0) {
      --embryonic_;
    }
  }

  void MarkListening() { state_ = SocketState::kListening; }
  void MarkConnecting() { state_ = SocketState::kConnecting; }
  void MarkConnected();
  void MarkEof();
  void MarkError();
  void MarkClosed();
  void EnqueueAccepted(Socket* s);

  // Protocol-side wakeups (sorwakeup / sowwakeup): charge the wakeup cost
  // and wake any sleeping reader/writer.
  void ReadWakeup();
  void WriteWakeup();

  const SocketStats& stats() const { return stats_; }

  // Flow id stamped on this socket's trace events (kUserWrite/kUserRead/
  // kWakeup). The owning TCP connection sets it to its (local<<16)|remote
  // port pair once known, so socket-layer events can be tied back to the
  // connection that caused them.
  void set_trace_flow(uint64_t flow) { trace_flow_ = flow; }
  uint64_t trace_flow() const { return trace_flow_; }

 private:
  Host* host_;
  SockBuf snd_;
  SockBuf rcv_;
  ProtocolOps* ops_ = nullptr;
  SocketState state_ = SocketState::kIdle;
  bool eof_ = false;
  bool error_ = false;
  bool integrated_copyin_ = false;
  size_t cluster_threshold_ = kClusterThreshold;
  std::optional<bool> nodelay_;
  std::optional<CongestionVariant> congestion_;
  std::optional<bool> delack_;
  std::optional<SimDuration> delack_timeout_;
  WaitChannel state_chan_;
  std::deque<Socket*> accept_queue_;
  size_t accept_backlog_ = kDefaultAcceptBacklog;
  size_t embryonic_ = 0;  // accepted SYNs whose handshake has not completed
  SocketStats stats_;
  uint64_t trace_flow_ = 0;
};

// Awaiter blocking the current process on `chan` unless `Ready()` already
// holds. Wakeups may be spurious; callers re-test their condition.
struct SockAwaiter {
  Host* host;
  WaitChannel* chan;
  bool ready;
  bool await_ready() const noexcept { return ready; }
  void await_suspend(std::coroutine_handle<> h) {
    BlockAwaiter inner{host, chan};
    inner.await_suspend(h);
  }
  void await_resume() const noexcept {}
};

inline auto Socket::WaitReadable() {
  return SockAwaiter{host_, &rcv_.channel(), rcv_.cc() > 0 || eof_ || error_};
}
inline auto Socket::WaitWritable() {
  return SockAwaiter{host_, &snd_.channel(),
                     (snd_.space() > 0 && state_ == SocketState::kConnected) || error_};
}
inline auto Socket::WaitConnected() {
  return SockAwaiter{host_, &state_chan_, state_ == SocketState::kConnected || error_};
}
inline auto Socket::WaitAcceptable() {
  return SockAwaiter{host_, &state_chan_, !accept_queue_.empty() || error_};
}

}  // namespace tcplat

#endif  // SRC_SOCK_SOCKET_H_
