// ICMP — the control-message substrate of the IP layer.
//
// Enough of RFC 792 for a working internetwork: echo request/reply (ping),
// and the two error messages the forwarding path generates — time exceeded
// and destination unreachable — each quoting the offending packet's IP
// header plus eight payload bytes, as the RFC requires. The ICMP checksum
// is the same ones'-complement sum as TCP's, computed over the whole
// message (no pseudo header).

#ifndef SRC_ICMP_ICMP_H_
#define SRC_ICMP_ICMP_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "src/ip/ip_stack.h"
#include "src/os/host.h"

namespace tcplat {

inline constexpr uint8_t kIpProtoIcmp = 1;
inline constexpr size_t kIcmpHeaderBytes = 8;

enum class IcmpType : uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

struct IcmpMessage {
  IcmpType type = IcmpType::kEchoRequest;
  uint8_t code = 0;
  uint16_t id = 0;    // echo id      (errors: unused)
  uint16_t seq = 0;   // echo seq     (errors: unused)
  std::vector<uint8_t> payload;

  // Serializes header + payload with a valid checksum.
  std::vector<uint8_t> Serialize() const;
  static std::optional<IcmpMessage> Parse(std::span<const uint8_t> in, bool* checksum_ok);
};

struct IcmpStats {
  uint64_t echo_requests_sent = 0;
  uint64_t echo_requests_received = 0;
  uint64_t echo_replies_sent = 0;
  uint64_t echo_replies_received = 0;
  uint64_t errors_sent = 0;
  uint64_t errors_received = 0;
  uint64_t checksum_errors = 0;
  uint64_t truncated = 0;
};

// One ICMP endpoint per host. Construction registers protocol 1 with the
// IP stack and installs the error generator the forwarding path calls.
class IcmpStack : public IpProtocolHandler {
 public:
  explicit IcmpStack(IpStack* ip);

  // A received echo reply or error message, with its sender.
  struct Event {
    Ipv4Addr from = 0;
    IcmpMessage message;
    SimTime received_at;
  };

  // Sends an echo request ("ping"). Returns the sequence number used.
  uint16_t SendEcho(Ipv4Addr dst, uint16_t id, std::span<const uint8_t> payload = {},
                    uint8_t ttl = 64);

  // Pops the next received reply/error event, if any.
  bool PollEvent(Event* out);
  size_t pending_events() const { return events_.size(); }

  auto WaitReadable() {
    return Awaiter{&ip_->host(), &chan_, !events_.empty()};
  }

  void IpInput(MbufPtr packet, const Ipv4Header& hdr) override;

  const IcmpStats& stats() const { return stats_; }

 private:
  struct Awaiter {
    Host* host;
    WaitChannel* chan;
    bool ready;
    bool await_ready() const noexcept { return ready; }
    void await_suspend(std::coroutine_handle<> h) {
      BlockAwaiter inner{host, chan};
      inner.await_suspend(h);
    }
    void await_resume() const noexcept {}
  };

  // Builds and sends an ICMP error quoting `original` (IP header + 8 bytes),
  // unless the original is itself an ICMP message (no errors about errors).
  void SendError(IcmpType type, uint8_t code, std::span<const uint8_t> original);
  void Transmit(const IcmpMessage& msg, Ipv4Addr dst, uint8_t ttl);

  IpStack* ip_;
  uint16_t next_seq_ = 1;
  std::deque<Event> events_;
  WaitChannel chan_;
  IcmpStats stats_;
};

}  // namespace tcplat

#endif  // SRC_ICMP_ICMP_H_
