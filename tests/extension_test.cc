// Tests for the extension features and configuration cross-products: the
// DMA adapter, mismatched checksum negotiation, the combined copy+checksum
// kernel on Ethernet (chunk/segment mismatch), and duplicate-delivery
// handling.

#include <gtest/gtest.h>

#include "src/base/random.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"

namespace tcplat {
namespace {

RpcResult RunEcho(Testbed& tb, size_t size, int iterations = 60) {
  RpcOptions opt;
  opt.size = size;
  opt.iterations = iterations;
  opt.warmup = 8;
  return RunRpcBenchmark(tb, opt);
}

TEST(DmaAdapter, PreservesDataAndCutsLatency) {
  TestbedConfig cfg;
  Testbed pio(cfg);
  const RpcResult pio_r = RunEcho(pio, 4000);

  Testbed dma(cfg);
  dma.client_atm()->set_dma(true);
  dma.server_atm()->set_dma(true);
  const RpcResult dma_r = RunEcho(dma, 4000);

  EXPECT_EQ(dma_r.data_mismatches, 0u);
  // DMA removes the per-cell driver copies on both sides: a 4000-byte
  // round trip sheds over a millisecond.
  EXPECT_LT(dma_r.MeanRtt().micros(), pio_r.MeanRtt().micros() - 1000.0);
}

TEST(DmaAdapter, DriverSpansCollapse) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  tb.client_atm()->set_dma(true);
  tb.server_atm()->set_dma(true);
  const RpcResult r = RunEcho(tb, 4000);
  // The Table 2/3 driver rows (hundreds of microseconds under programmed
  // I/O at this size) drop to interrupt + descriptor bookkeeping.
  EXPECT_LT(r.SpanMean(SpanId::kTxDriver).micros(), 40.0);
  EXPECT_LT(r.SpanMean(SpanId::kRxDriver).micros(), 60.0);
}

TEST(DmaAdapter, ComposesWithChecksumElimination) {
  TestbedConfig cfg;
  cfg.tcp.checksum = ChecksumMode::kNone;
  Testbed tb(cfg);
  tb.client_atm()->set_dma(true);
  tb.server_atm()->set_dma(true);
  const RpcResult r = RunEcho(tb, 8000);
  EXPECT_EQ(r.data_mismatches, 0u);
  // §4.2's projection: with both copies and the checksum gone, the large-
  // transfer round trip approaches wire + protocol costs.
  EXPECT_LT(r.MeanRtt().micros(), 5200.0);
}

TEST(ChecksumNegotiation, MismatchFallsBackToStandard) {
  // Client asks for no-checksum; the server stack does not permit it. The
  // connection must come up with checksums on and work.
  TestbedConfig cfg;
  Testbed tb(cfg);
  tb.client_tcp().config().checksum = ChecksumMode::kNone;
  // server stays kStandard
  const RpcResult r = RunEcho(tb, 1400);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_EQ(r.client_tcp.checksum_errors, 0u);
  EXPECT_EQ(r.server_tcp.checksum_errors, 0u);

  // And the segments really carry checksums: corrupt one CRC-invisibly and
  // TCP must catch it.
  int countdown = 30;
  tb.atm_link()->dir(0).set_corrupt_hook([&countdown](std::vector<uint8_t>& cell) {
    if (--countdown == 0) {
      constexpr uint32_t kGen = 0x633;
      for (int i = 0; i < 11; ++i) {
        if ((kGen >> (10 - i)) & 1) {
          const size_t bit = 160 + static_cast<size_t>(i);
          cell[5 + bit / 8] ^= static_cast<uint8_t>(0x80u >> (bit % 8));
        }
      }
    }
  });
  const RpcResult r2 = RunEcho(tb, 1400);
  EXPECT_EQ(r2.data_mismatches, 0u);
  EXPECT_EQ(r2.client_tcp.checksum_errors + r2.server_tcp.checksum_errors, 1u);
}

TEST(CombinedChecksum, EthernetChunkSegmentMismatchFallsBack) {
  // §4.1.1: the socket layer checksums per mbuf "independent of the current
  // TCP segment size". On Ethernet the MSS (1460) never matches the 4 KB
  // cluster chunks, so TCP output must recompute every time — the combined
  // kernel degenerates to standard-plus-overhead, but stays correct.
  TestbedConfig cfg;
  cfg.network = NetworkKind::kEthernet;
  cfg.tcp.checksum = ChecksumMode::kCombined;
  Testbed tb(cfg);
  const RpcResult r = RunEcho(tb, 4000);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GT(r.client_tcp.checksum_fallbacks, r.iterations)
      << "every multi-segment chunk forces a full recompute on tx";

  TestbedConfig std_cfg;
  std_cfg.network = NetworkKind::kEthernet;
  Testbed std_tb(std_cfg);
  const RpcResult std_r = RunEcho(std_tb, 4000);
  EXPECT_GE(r.MeanRtt().micros(), std_r.MeanRtt().micros())
      << "no benefit without chunk/segment alignment";
}

TEST(DuplicateDelivery, ReAckedWithoutCorruption) {
  // Black-hole the ACK direction briefly so the server's reply is acked
  // late and the client's retransmitted request arrives as a duplicate.
  TestbedConfig cfg;
  Testbed tb(cfg);
  int kill_from = 40;
  int kill_count = 3;
  tb.atm_link()->dir(1).set_corrupt_hook(
      [&kill_from, &kill_count](std::vector<uint8_t>& cell) {
        if (--kill_from <= 0 && kill_count > 0) {
          cell[20] ^= 0xFF;  // CRC-visible: the cell (and its PDU) dies
          --kill_count;
        }
      });
  const RpcResult r = RunEcho(tb, 500, 40);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GT(r.client_tcp.retransmits + r.server_tcp.retransmits, 0u);
}

TEST(Determinism, IdenticalConfigsProduceIdenticalRuns) {
  TestbedConfig cfg;
  cfg.seed = 1234;
  Testbed a(cfg);
  Testbed b(cfg);
  const RpcResult ra = RunEcho(a, 1400);
  const RpcResult rb = RunEcho(b, 1400);
  EXPECT_EQ(ra.MeanRtt().nanos(), rb.MeanRtt().nanos());
  EXPECT_EQ(ra.client_tcp.segs_sent, rb.client_tcp.segs_sent);
  EXPECT_EQ(a.sim().events_dispatched(), b.sim().events_dispatched());
}

}  // namespace
}  // namespace tcplat
