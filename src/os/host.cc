#include "src/os/host.h"

#include <algorithm>

#include "src/base/check.h"

namespace tcplat {

Host::Host(Simulator* sim, std::string name, CostProfile profile)
    : sim_(sim), name_(std::move(name)), cpu_(sim, std::move(profile)), pool_(&cpu_) {
  cpu_.set_charge_listener(&tracker_);
  tracker_.set_clock(&cpu_);
  // The mbuf pool predates the registry and belongs to a layer below it, so
  // the host registers the views on its behalf.
  const MbufStats& mb = pool_.stats();
  metrics_.AddCounterView("mbuf.small_allocs", &mb.small_allocs);
  metrics_.AddCounterView("mbuf.cluster_allocs", &mb.cluster_allocs);
  metrics_.AddCounterView("mbuf.cluster_refs", &mb.cluster_refs);
  metrics_.AddCounterView("mbuf.frees", &mb.frees);
  metrics_.AddCounterView("mbuf.copym_calls", &mb.copym_calls);
  metrics_.AddCounterView("mbuf.bytes_copied", &mb.bytes_copied);
  metrics_.AddGaugeView("mbuf.in_use", &mb.in_use);
  metrics_.AddGaugeView("mbuf.peak_in_use", &mb.peak_in_use);
  metrics_.AddCounterView("mbuf.freelist_hits", &mb.mbuf_freelist_hits);
  metrics_.AddCounterView("mbuf.cluster_freelist_hits", &mb.cluster_freelist_hits);
}

void Host::AttachTracer(Tracer* tracer) {
  if (tracer != nullptr) {
    trace_id_ = tracer->RegisterHost(name_);
  }
  tracer_ = tracer;
  tracker_.AttachTracer(tracer, trace_id_);
}

SimTime Host::CurrentTime() const {
  return cpu_.running() ? cpu_.cursor() : sim_->Now();
}

Process* Host::Spawn(std::string name, SimTask task) {
  TCPLAT_CHECK(task.valid());
  auto proc = std::unique_ptr<Process>(new Process(this, std::move(name), std::move(task)));
  Process* p = proc.get();
  p->continuation_ = p->task_.handle();
  p->state_ = ProcessState::kRunnable;
  processes_.push_back(std::move(proc));
  ScheduleResume(p, CurrentTime(), /*charge_wakeup=*/false);
  return p;
}

void Host::Wakeup(WaitChannel& chan) {
  const SimTime now = CurrentTime();
  for (Process* p : chan.waiters_) {
    TCPLAT_CHECK(p->state_ == ProcessState::kBlocked);
    p->state_ = ProcessState::kRunnable;
    p->wakeup_issued_at_ = now;
    TracePacket(TraceLayer::kSched, TraceEventKind::kWakeup);
    ScheduleResume(p, now, /*charge_wakeup=*/true);
  }
  chan.waiters_.clear();
}

void Host::ScheduleResume(Process* p, SimTime at, bool charge_wakeup) {
  p->charge_wakeup_ = charge_wakeup;
  sim_->ScheduleAt(at, [this, p, at] { ResumeProcess(p, at); });
}

void Host::ResumeProcess(Process* p, SimTime request_time) {
  TCPLAT_CHECK(p->state_ == ProcessState::kRunnable);
  CpuRun run(cpu_, request_time);
  if (p->charge_wakeup_) {
    // Run-queue removal + context switch: the paper's "Wakeup" span is the
    // wall interval from wakeup() to the process actually running.
    cpu_.Charge(cpu_.profile().wakeup_ctx_switch);
    tracker_.AddInterval(SpanId::kRxWakeup, cpu_.cursor() - p->wakeup_issued_at_);
    p->charge_wakeup_ = false;
  }
  p->state_ = ProcessState::kRunning;
  current_ = p;
  auto cont = p->continuation_;
  p->continuation_ = nullptr;
  cont.resume();
  current_ = nullptr;
  if (p->task_.done()) {
    p->state_ = ProcessState::kDone;
  } else {
    TCPLAT_CHECK(p->state_ == ProcessState::kBlocked)
        << "process " << p->name_ << " suspended without blocking";
  }
}

void Host::RegisterNetisr(std::function<void()> handler) {
  TCPLAT_CHECK(netisr_ == nullptr) << "netisr already registered";
  netisr_ = std::move(handler);
}

void Host::RaiseNetisr() {
  TCPLAT_CHECK(netisr_ != nullptr);
  if (netisr_pending_) {
    return;
  }
  netisr_pending_ = true;
  netisr_raised_at_ = CurrentTime();
  sim_->ScheduleAt(netisr_raised_at_, [this] {
    CpuRun run(cpu_, netisr_raised_at_);
    cpu_.Charge(cpu_.profile().softint_dispatch);
    netisr_();
    // Cleared after the handler: anything enqueued while it ran was drained
    // by the handler's own loop, so a re-raise is unnecessary.
    netisr_pending_ = false;
  });
}

EventId Host::After(SimDuration d, std::function<void()> fn) {
  const SimTime when = CurrentTime() + d;
  return sim_->ScheduleAt(when, [this, when, fn = std::move(fn)] {
    CpuRun run(cpu_, when);
    fn();
  });
}

bool Host::CancelCallout(EventId id) { return sim_->Cancel(id); }

void Host::RunAsInterrupt(const std::function<void()>& fn) {
  CpuRun run(cpu_, sim_->Now());
  cpu_.Charge(cpu_.profile().intr_entry);
  fn();
}

void BlockAwaiter::await_suspend(std::coroutine_handle<> h) {
  Process* p = host->current_process();
  TCPLAT_CHECK(p != nullptr) << "Block() outside process context";
  p->continuation_ = h;
  p->state_ = ProcessState::kBlocked;
  chan->waiters_.push_back(p);
}

void SleepAwaiter::await_suspend(std::coroutine_handle<> h) {
  Process* p = host->current_process();
  TCPLAT_CHECK(p != nullptr) << "SleepFor() outside process context";
  p->continuation_ = h;
  p->state_ = ProcessState::kBlocked;
  const SimTime at = host->CurrentTime() + delay;
  host->sim().ScheduleAt(at, [host = host, p, at] {
    TCPLAT_CHECK(p->state_ == ProcessState::kBlocked);
    p->state_ = ProcessState::kRunnable;
    host->ResumeProcess(p, at);
  });
}

}  // namespace tcplat
