#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/base/check.h"

namespace tcplat {

EventQueue::~EventQueue() {
  while (!heap_.empty()) {
    delete heap_.top();
    heap_.pop();
  }
  for (Entry* e : graveyard_) {
    delete e;
  }
}

EventId EventQueue::ScheduleAt(SimTime when, Callback fn) {
  TCPLAT_CHECK(fn != nullptr);
  auto* entry = new Entry{when, next_seq_++, next_id_++, std::move(fn), false};
  heap_.push(entry);
  live_.emplace_back(entry->id, entry);
  ++live_count_;
  return entry->id;
}

EventQueue::Entry* EventQueue::FindLive(EventId id) {
  auto it = std::find_if(live_.begin(), live_.end(),
                         [id](const auto& p) { return p.first == id; });
  return it == live_.end() ? nullptr : it->second;
}

void EventQueue::EraseLive(EventId id) {
  auto it = std::find_if(live_.begin(), live_.end(),
                         [id](const auto& p) { return p.first == id; });
  if (it != live_.end()) {
    live_.erase(it);
  }
}

bool EventQueue::Cancel(EventId id) {
  Entry* entry = FindLive(id);
  if (entry == nullptr || entry->cancelled) {
    return false;
  }
  entry->cancelled = true;
  entry->fn = nullptr;
  EraseLive(id);
  --live_count_;
  return true;
}

void EventQueue::DropDeadHead() const {
  while (!heap_.empty() && heap_.top()->cancelled) {
    graveyard_.push_back(heap_.top());
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  DropDeadHead();
  TCPLAT_CHECK(!heap_.empty());
  return heap_.top()->time;
}

EventQueue::Dispatched EventQueue::PopNext() {
  DropDeadHead();
  TCPLAT_CHECK(!heap_.empty());
  Entry* entry = heap_.top();
  heap_.pop();
  Dispatched out{entry->time, std::move(entry->fn)};
  EraseLive(entry->id);
  --live_count_;
  delete entry;
  // Reclaim cancelled entries opportunistically.
  for (Entry* e : graveyard_) {
    delete e;
  }
  graveyard_.clear();
  return out;
}

}  // namespace tcplat
