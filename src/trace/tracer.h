// Per-packet lifecycle tracing.
//
// The paper's methodology is aggregate: read a 40 ns clock at layer
// boundaries and accumulate per-layer totals (SpanTracker). A Tracer keeps
// the individual readings instead — every span entry/exit, every interval,
// and discrete packet-lifecycle events (segment tx/rx, retransmit, drop,
// ACK, queue hand-off, wakeup) — each stamped with the simulated time, the
// host it happened on, the stack layer, and a flow/packet id. The result
// answers "where did *this* packet's time go", not just "where did the
// microseconds go on average".
//
// Design constraints:
//  * Deterministic. Events carry only simulated time and protocol state, so
//    a fixed seed produces a byte-identical trace — including when the run
//    executes inside the src/exec/ parallel grid runner, because a Tracer is
//    owned by one Testbed and shares nothing global.
//  * Zero-cost when disabled. Hook sites go through Host::TracePacket,
//    which is a single pointer test when no tracer is attached and compiles
//    away entirely under -DTCPLAT_NO_TRACE_HOOKS.
//  * Exact. Span-end events carry the charge-attributed self time
//    accumulated by SpanTracker for that instance, so per-layer sums over a
//    trace reproduce the tracker's totals to the nanosecond.
//
// Exporters: Chrome/Perfetto trace_event JSON (load at ui.perfetto.dev or
// chrome://tracing) and a flat CSV, one row per event.

#ifndef SRC_TRACE_TRACER_H_
#define SRC_TRACE_TRACER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/time.h"
#include "src/trace/span.h"
#include "src/trace/timeseries.h"

namespace tcplat {

class BinaryTraceWriter;

// Which layer of the simulated stack emitted an event.
enum class TraceLayer : uint8_t {
  kSock,   // socket layer (sosend/soreceive, wakeups)
  kTcp,    // TCP input/output
  kIp,     // ip_input/ip_output and the ipintrq
  kAtm,    // AAL3/4 + TCA-100 adapter + cell switch
  kEther,  // Ethernet driver
  kLink,   // physical links (impairment policies: loss/dup/reorder/jitter)
  kSched,  // span bookkeeping (begin/end/interval/reset markers)
  kCount,  // sentinel — keep last
};

enum class TraceEventKind : uint8_t {
  // Span events, emitted by SpanTracker (layer kSched).
  kSpanBegin,     // span = id
  kSpanEnd,       // span = id, self_ns = charge-attributed self time
  kSpanInterval,  // span = id, dur_ns = wall interval (ts is interval end)
  kSpanReset,     // tracker totals zeroed (measurement region boundary)
  // Socket layer.
  kUserWrite,  // write() accepted `bytes` from the user
  kUserRead,   // read() returned `bytes` to the user
  kWakeup,     // sowakeup: a blocked process was made runnable
  // TCP.
  kSegTx,          // segment emitted; packet = seq, bytes = payload length
  kSegRx,          // segment arrived at tcp_input
  kRetransmit,      // segment tx was a retransmission
  kAck,             // ACK advanced snd_una; bytes = newly acked
  kDelayedAck,      // delayed-ACK timer fired and forced an ACK out
  kListenOverflow,  // SYN dropped: listen backlog full; packet = backlog limit
  kChecksumError,   // inbound segment failed checksum verification
  kDrop,            // packet/segment/frame discarded (any layer)
  // IP.
  kEnqueue,  // driver appended a packet to the ipintrq; packet = queue depth
  kDequeue,  // ipintr picked it up; dur_ns = queue wait
  kPktTx,    // ip_output handed a datagram to a driver; flow = (src<<32)|dst,
             // packet = header id (matches the destination's kPktRx)
  kPktRx,    // ip_input delivered a datagram to a protocol; same keying
  // ATM (AAL3/4 + TCA-100 + switch).
  kPduTx,       // AAL3/4 PDU segmented and handed to the adapter; packet = cells
  kPduRx,       // EOM interrupt reassembled a PDU; packet = cells
  kCellDrop,    // receive FIFO overflow dropped a cell
  kTxStall,     // transmit FIFO full: cell DMA stalled; dur_ns = stall time
  kCellSwitch,  // switch forwarded a cell; flow = VCI
  // Ethernet.
  kFrameTx,
  kFrameRx,
  // Link impairment (layer kLink; packet = unit ordinal on that link).
  kImpairDrop,   // unit discarded in flight
  kImpairDup,    // a second copy will be delivered; dur_ns = duplicate lag
  kImpairDelay,  // arrival delayed (reorder hold or jitter); dur_ns = delay
  // TCP, appended after the impairment block so existing binary kind tags
  // keep their values.
  kNagleHold,  // tcp_output left data unsent (Nagle / silly-window
               // avoidance); packet = relative seq, bytes = held length
  // Congestion-control era (appended so existing binary kind tags keep
  // their values).
  kCwndChange,      // loss event / recovery transition; packet = new cwnd,
                    // bytes = ssthresh
  kFastRetransmit,  // Reno/NewReno/SACK fast retransmit decision;
                    // packet = relative seq being resent
  kSackBlock,       // SACK blocks arrived on an ACK; packet = first block
                    // start (relative), bytes = newly sacked bytes
  kCount,           // sentinel — keep last
};

std::string_view TraceLayerName(TraceLayer layer);
std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent;

// The flat-CSV export schema, shared by Tracer::ToCsv and the streaming
// binary-trace exporter (bench/export_csv --from-binary) so both emit
// byte-identical rows. Header includes the trailing newline.
std::string_view TraceCsvHeader();
void AppendTraceCsvRow(const TraceEvent& ev, const std::vector<std::string>& host_names,
                       std::string* out);

struct TraceEvent {
  int64_t ts_ns = 0;    // simulated timestamp
  int64_t dur_ns = 0;   // kSpanInterval / kTxStall
  int64_t self_ns = 0;  // kSpanEnd: charge-attributed self time
  uint64_t flow = 0;    // flow id (TCP: local<<16|remote port; ATM: VCI)
  uint64_t packet = 0;  // packet id (TCP: seq; IP: header id; ATM: cells)
  uint64_t bytes = 0;
  TraceEventKind kind = TraceEventKind::kSpanBegin;
  TraceLayer layer = TraceLayer::kSched;
  SpanId span = SpanId::kOther;  // span events only
  uint8_t host = 0;
};

// Deterministic per-flow sampling: a flow is kept iff a seeded hash of its
// canonical (port-order-independent) id lands in the 1-in-`one_in` bucket.
// Both connection endpoints — and every shard — reach the same verdict with
// no coordination, so sampled sharded traces stay byte-identical across
// TCPLAT_JOBS.
struct FlowSampleConfig {
  uint32_t one_in = 8;  // expected fraction of flows kept = 1/one_in
  uint64_t seed = 0;    // varies which flows land in the kept bucket
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Registers a participant and returns its id (Perfetto pid). Hosts call
  // this once when the tracer is attached.
  uint8_t RegisterHost(std::string name);

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void RecordSpanBegin(uint8_t host, SpanId id, SimTime ts) {
    if (!enabled_) return;
    TraceEvent ev;
    ev.ts_ns = ts.nanos();
    ev.kind = TraceEventKind::kSpanBegin;
    ev.span = id;
    ev.host = host;
    Commit(ev);
  }
  void RecordSpanEnd(uint8_t host, SpanId id, SimTime ts, SimDuration self) {
    if (!enabled_) return;
    TraceEvent ev;
    ev.ts_ns = ts.nanos();
    ev.self_ns = self.nanos();
    ev.kind = TraceEventKind::kSpanEnd;
    ev.span = id;
    ev.host = host;
    Commit(ev);
  }
  void RecordSpanInterval(uint8_t host, SpanId id, SimTime end, SimDuration dur) {
    if (!enabled_) return;
    TraceEvent ev;
    ev.ts_ns = end.nanos();
    ev.dur_ns = dur.nanos();
    ev.kind = TraceEventKind::kSpanInterval;
    ev.span = id;
    ev.host = host;
    Commit(ev);
  }
  void RecordSpanReset(uint8_t host, SimTime ts) {
    if (!enabled_) return;
    TraceEvent ev;
    ev.ts_ns = ts.nanos();
    ev.kind = TraceEventKind::kSpanReset;
    ev.host = host;
    Commit(ev);
  }
  void RecordPacket(uint8_t host, TraceLayer layer, TraceEventKind kind, SimTime ts,
                    uint64_t flow, uint64_t packet, uint64_t bytes,
                    SimDuration dur = SimDuration()) {
    if (!enabled_) return;
    TraceEvent ev;
    ev.ts_ns = ts.nanos();
    ev.dur_ns = dur.nanos();
    ev.flow = flow;
    ev.packet = packet;
    ev.bytes = bytes;
    ev.kind = kind;
    ev.layer = layer;
    ev.host = host;
    Commit(ev);
  }

  // Commits an already-built event, bypassing the flow sampler (merge input
  // from shard tracers is already sampled). Used by the sharded workload
  // engine and the binary decoder to rebuild a canonical stream; the caller
  // is responsible for remapping `ev.host` first.
  void Append(const TraceEvent& ev) {
    if (!enabled_) return;
    Emit(ev);
  }

  // ---- Time-series telemetry plane (src/trace/timeseries.h) -------------
  //
  // Orthogonal to event recording: producers push counter samples through
  // Host::TraceSample into a per-tracer sampler (per-shard in sharded runs,
  // no cross-shard sync). Disabled-tracer cost is the same single pointer
  // test as TracePacket; attached-but-not-enabled cost is one extra null
  // test here.

  void EnableTimeseries(const TimeseriesConfig& config);
  bool timeseries_enabled() const { return timeseries_ != nullptr; }
  const TimeseriesConfig& timeseries_config() const { return timeseries_config_; }
  TimeseriesSampler* timeseries() { return timeseries_.get(); }
  const TimeseriesSampler* timeseries() const { return timeseries_.get(); }

  void RecordSample(uint8_t host, TsMetric metric, uint64_t key, SimTime ts,
                    int64_t value) {
    if (!enabled_ || timeseries_ == nullptr) return;
    timeseries_->Push(host, metric, key, ts, value);
  }
  void RecordSampleEdge(uint8_t host, TsMetric metric, uint64_t key, SimTime ts,
                        int64_t value) {
    if (!enabled_ || timeseries_ == nullptr) return;
    timeseries_->PushEdge(host, metric, key, ts, value);
  }

  // The finalized timeline: points stable-sorted on (ts_ns, host), which is
  // byte-identical across TCPLAT_JOBS, shard counts, and serial-vs-sharded
  // execution. Empty when the plane is off.
  std::vector<TimeseriesPoint> SortedTimeseriesPoints() const;
  // Long-format timeline CSV over the finalized points.
  std::string TimelineCsv() const;

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<std::string>& host_names() const { return host_names_; }

  // ---- Binary recording --------------------------------------------------
  //
  // Events encode straight into a compact append-only byte stream (see
  // src/trace/binary_trace.h) instead of the events() vector; exporters and
  // the causal-graph consumers reach the events by decoding the stream.
  // Must be selected before anything is recorded; mutually exclusive with
  // flight-recorder mode (checked).

  void EnableBinaryRecording();
  bool binary_recording() const { return binary_ != nullptr; }
  // The raw record stream (CHECKs binary mode). Exposed for the shard merge.
  const BinaryTraceWriter& binary_records() const;
  BinaryTraceWriter* mutable_binary_records();

  // ---- Flow sampling -----------------------------------------------------
  //
  // Keeps full lifecycle detail for the 1-in-N sampled flows and drops
  // per-flow events of the rest, while retaining the flow-agnostic events
  // the causal linker needs for exact anchor pairing (ipintrq enqueue/
  // dequeue, reassembly completions, drops/anomalies). Because a host's CPU
  // runs each activation chain to completion, events between a chain start
  // and the first flow-identifying event are buffered and then kept or
  // discarded wholesale with the chain's verdict. Span self-time totals are
  // NOT preserved for unsampled flows; sampled traces feed attribution, not
  // the exact span accounting. Must be selected before anything is
  // recorded; mutually exclusive with flight-recorder mode (checked).

  void EnableFlowSampling(const FlowSampleConfig& config);
  bool flow_sampling() const { return sampling_; }
  uint32_t sample_one_in() const { return sampling_ ? sample_.one_in : 1; }
  const FlowSampleConfig& sample_config() const { return sample_; }

  // Reservoir variant for open-ended flow populations: keeps the K flows
  // whose seeded canonical-flow hash ranks lowest (a bottom-K sketch — the
  // deterministic equivalent of reservoir sampling, sharing the 1-in-N
  // sampler's verdict machinery). Verdicts are transient while the run is
  // live (a better-ranked late flow evicts a worse one); FinalizeReservoir
  // prunes evicted flows' events so the surviving capture covers exactly
  // the final bottom-K set, which is a pure function of the flows seen —
  // deterministic across runs, thread counts, and shard layouts. In-memory
  // event recording only (excludes binary and flight-recorder modes).
  void EnableFlowReservoir(uint32_t k, uint64_t seed);
  bool flow_reservoir() const { return reservoir_k_ > 0; }
  uint32_t reservoir_k() const { return reservoir_k_; }
  void FinalizeReservoir();
  // Canonical flow ids observed on flow-identifying events / kept by the
  // sampler. seen/kept sizes give the blame scale factor.
  const std::set<uint64_t>& flows_seen() const { return flows_seen_; }
  const std::set<uint64_t>& flows_kept() const { return flows_kept_; }
  // Unions another tracer's seen/kept sets into this one (shard merge).
  void MergeSampleSets(const Tracer& other);

  // ---- Memory accounting -------------------------------------------------
  //
  // Recording-buffer footprint by content (event payload bytes held right
  // now), deliberately excluding allocator capacity so the number is
  // identical across platforms and can be gated. peak additionally covers
  // transient sampler buffering and, after a shard merge, the per-shard
  // recorders' peaks.

  size_t ApproxMemoryBytes() const;
  size_t peak_memory_bytes() const;
  void AddChildPeakBytes(size_t bytes) { child_peak_bytes_ += bytes; }

  // Drops recorded events (full-trace, binary, sampler and flight-recorder
  // state); registered hosts and the recording mode are kept.
  void Clear();

  // ---- Anomaly flight recorder ------------------------------------------
  //
  // Production-style alternative to full recording: committed events go to a
  // bounded ring instead of events(), and whenever a trigger event commits
  // (retransmit, cell drop, FIFO stall over a threshold, listen-queue
  // overflow, impairment drop) the tail of the ring is snapped into an
  // AnomalyRecord. Memory stays O(ring_capacity + captured anomalies)
  // however long the run is, and since everything captured is pure
  // simulated-time state the dumps are byte-identical across TCPLAT_JOBS
  // at a fixed seed.

  struct FlightRecorderConfig {
    size_t ring_capacity = 4096;  // events retained while armed
    size_t context_events = 64;   // events per anomaly dump (incl. trigger)
    size_t max_anomalies = 64;    // later triggers count but are not captured
    int64_t tx_stall_threshold_ns = 0;  // kTxStall triggers when dur_ns >= this
    bool on_retransmit = true;
    bool on_cell_drop = true;
    bool on_tx_stall = true;
    bool on_listen_overflow = true;
    bool on_impair_drop = false;
  };

  struct AnomalyRecord {
    uint64_t trigger_seq = 0;         // ordinal among all committed events
    TraceEvent trigger;
    std::vector<TraceEvent> context;  // ring tail, oldest first, ends at trigger
  };

  // Switches this tracer into flight-recorder mode. Mutually exclusive with
  // full recording: committed events feed the ring, not events(), so it must
  // be selected before anything is recorded and cannot be combined with
  // binary recording or flow sampling (all checked — a tracer that silently
  // split its stream between events() and the ring would corrupt both).
  void EnableFlightRecorder(const FlightRecorderConfig& config);
  bool flight_recorder_enabled() const { return flight_enabled_; }
  const std::vector<AnomalyRecord>& anomalies() const { return anomalies_; }
  // Total trigger events observed, including ones past max_anomalies.
  uint64_t anomalies_seen() const { return anomalies_seen_; }

  // Chrome trace_event JSON for the captured anomalies: one instant marker
  // per trigger plus the surrounding context events (de-duplicated across
  // overlapping windows).
  std::string AnomaliesToPerfettoJson() const;

  // Per-span self-time sums for `host`, in nanoseconds, counting only events
  // after that host's last kSpanReset marker: kSpanEnd contributes self_ns,
  // kSpanInterval contributes dur_ns. By construction these equal the
  // SpanTracker totals for the same measurement region exactly.
  std::array<int64_t, static_cast<size_t>(SpanId::kCount)> SpanSelfTotalsNanos(
      uint8_t host) const;

  // Chrome trace_event JSON: one process per host, with separate tracks for
  // nested spans (B/E), interval spans (X) and packet events (instants).
  std::string ToPerfettoJson() const;

  // Flat CSV, one row per event.
  std::string ToCsv() const;

 private:
  // Every Record* method funnels here so the sampler / binary encoder /
  // flight recorder can divert the stream without touching the hook sites.
  // The plain full-recording path stays a single branch + push_back.
  void Commit(const TraceEvent& ev) {
    if (!sampling_ && !flight_enabled_ && binary_ == nullptr) {
      events_.push_back(ev);
      return;
    }
    CommitSlow(ev);
  }
  void CommitSlow(const TraceEvent& ev);
  // Writes `ev` to the active sink (events() / binary stream / ring),
  // after any sampling verdict has been applied.
  void Emit(const TraceEvent& ev);
  void CommitToRing(const TraceEvent& ev);
  bool IsTrigger(const TraceEvent& ev) const;

  bool KeepFlow(uint64_t raw_flow);
  void ResolveDeferred(size_t host, bool keep);
  void NotePeak();

  bool enabled_ = true;
  std::vector<TraceEvent> events_;
  std::vector<std::string> host_names_;

  std::unique_ptr<BinaryTraceWriter> binary_;

  // Flow-sampler state: per-host chain verdict plus the events buffered
  // between a chain start and the chain's first flow-identifying event.
  struct SampleHostState {
    int8_t keep = -1;  // -1 undecided, 0 drop, 1 keep
    std::deque<TraceEvent> deferred;
  };
  bool sampling_ = false;
  FlowSampleConfig sample_;
  std::vector<SampleHostState> sample_hosts_;
  size_t deferred_events_ = 0;  // total queued across sample_hosts_
  std::set<uint64_t> flows_seen_;
  std::set<uint64_t> flows_kept_;

  // Reservoir (bottom-K) state: the kept set ordered by hash rank, so the
  // worst-ranked member is O(log K) to evict.
  uint32_t reservoir_k_ = 0;
  std::set<std::pair<uint64_t, uint64_t>> reservoir_;  // (rank, canonical)

  std::unique_ptr<TimeseriesSampler> timeseries_;
  TimeseriesConfig timeseries_config_;

  size_t peak_bytes_ = 0;
  size_t child_peak_bytes_ = 0;

  bool flight_enabled_ = false;
  FlightRecorderConfig flight_;
  std::deque<TraceEvent> ring_;
  uint64_t commit_seq_ = 0;
  uint64_t anomalies_seen_ = 0;
  std::vector<AnomalyRecord> anomalies_;
};

// Writes `contents` to `path`; returns false (after perror) on failure.
bool WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace tcplat

#endif  // SRC_TRACE_TRACER_H_
