// TCP sequence-number arithmetic (modular 32-bit comparisons).

#ifndef SRC_TCP_TCP_SEQ_H_
#define SRC_TCP_TCP_SEQ_H_

#include <cstdint>

namespace tcplat {

using TcpSeq = uint32_t;

constexpr bool SeqLt(TcpSeq a, TcpSeq b) { return static_cast<int32_t>(a - b) < 0; }
constexpr bool SeqLeq(TcpSeq a, TcpSeq b) { return static_cast<int32_t>(a - b) <= 0; }
constexpr bool SeqGt(TcpSeq a, TcpSeq b) { return static_cast<int32_t>(a - b) > 0; }
constexpr bool SeqGeq(TcpSeq a, TcpSeq b) { return static_cast<int32_t>(a - b) >= 0; }

constexpr TcpSeq SeqMax(TcpSeq a, TcpSeq b) { return SeqGt(a, b) ? a : b; }
constexpr TcpSeq SeqMin(TcpSeq a, TcpSeq b) { return SeqLt(a, b) ? a : b; }

}  // namespace tcplat

#endif  // SRC_TCP_TCP_SEQ_H_
