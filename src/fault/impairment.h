// Seeded per-link network impairment.
//
// The paper's §4.2.1 argument for eliminating the TCP checksum rests on the
// local ATM link being nearly error-free; the testbed never exercises the
// regime where TCP's recovery machinery earns its keep. An ImpairmentPolicy
// makes that regime reachable: attached to a Wire (or SharedBus, DuplexLink
// direction, or ATM switch output) it applies deterministic, seeded cell or
// frame loss — uniform or Gilbert-Elliott bursty — plus duplication,
// reorder-by-delay, and uniform jitter. Every decision comes from the
// policy's own xoshiro stream, so a fixed seed reproduces the exact drop
// schedule, including inside the parallel grid runner.
//
// Observability: per-link counters register as MetricsRegistry views
// ("link.<name>.*") and each drop/dup/delay emits a TraceLayer::kLink event
// when a Tracer is attached, so impaired runs stay fully inspectable.

#ifndef SRC_FAULT_IMPAIRMENT_H_
#define SRC_FAULT_IMPAIRMENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/random.h"
#include "src/link/wire.h"
#include "src/trace/metrics.h"
#include "src/trace/tracer.h"

namespace tcplat {

struct ImpairmentConfig {
  // Uniform per-unit loss probability.
  double drop_prob = 0.0;

  // Gilbert-Elliott bursty loss, enabled when ge_bad_loss > 0. The chain
  // advances one step per unit: good->bad with ge_good_to_bad, bad->good
  // with ge_bad_to_good; the unit is then lost with the state's loss
  // probability. Mean burst length is 1 / ge_bad_to_good units.
  double ge_good_to_bad = 0.0;
  double ge_bad_to_good = 0.25;
  double ge_good_loss = 0.0;
  double ge_bad_loss = 0.0;

  // Per-unit duplication: a second copy arrives duplicate_lag after the
  // original.
  double duplicate_prob = 0.0;
  SimDuration duplicate_lag = SimDuration::FromMicros(5);

  // Reordering: hold the selected unit back by reorder_hold so that units
  // serialized after it can overtake it in flight.
  double reorder_prob = 0.0;
  SimDuration reorder_hold = SimDuration::FromMicros(10);

  // Uniform extra delay in [0, jitter_max) added to every unit.
  SimDuration jitter_max;

  uint64_t seed = 1;

  // True when any impairment can actually fire.
  bool active() const {
    return drop_prob > 0.0 || ge_bad_loss > 0.0 || duplicate_prob > 0.0 ||
           reorder_prob > 0.0 || jitter_max.nanos() > 0;
  }
};

// All counters are per-link. Invariant: delivered + dropped == offered
// (duplicates are extra copies and counted separately).
struct ImpairmentStats {
  uint64_t offered = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t jittered = 0;
  uint64_t ge_bursts = 0;  // entries into the Gilbert-Elliott bad state
  uint64_t bytes_offered = 0;
  uint64_t bytes_dropped = 0;

  ImpairmentStats& operator+=(const ImpairmentStats& o);
};

class ImpairmentPolicy : public LinkImpairment {
 public:
  explicit ImpairmentPolicy(const ImpairmentConfig& config);

  // LinkImpairment.
  Verdict OnTransmit(SimTime departure, const std::vector<uint8_t>& data) override;

  const ImpairmentConfig& config() const { return config_; }
  const ImpairmentStats& stats() const { return stats_; }

  // Registers counter views under "link.<prefix>.*" (e.g. "link.tx.offered").
  // Skipped quietly if the names are already taken (a second policy on the
  // same host keeps its stats reachable through stats()).
  void RegisterMetrics(MetricsRegistry& metrics, std::string_view prefix = "tx");

  // Emits kImpair* events as participant `trace_id` (from
  // Tracer::RegisterHost). Pass nullptr to detach.
  void AttachTracer(Tracer* tracer, uint8_t trace_id) {
    tracer_ = tracer;
    trace_id_ = trace_id;
  }

 private:
  ImpairmentConfig config_;
  Rng rng_;
  ImpairmentStats stats_;
  bool ge_bad_ = false;
  Tracer* tracer_ = nullptr;
  uint8_t trace_id_ = 0;
};

}  // namespace tcplat

#endif  // SRC_FAULT_IMPAIRMENT_H_
