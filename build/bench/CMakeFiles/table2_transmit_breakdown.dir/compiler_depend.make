# Empty compiler generated dependencies file for table2_transmit_breakdown.
# This may be replaced when dependencies are built.
