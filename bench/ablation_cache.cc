// Ablation A6: cache effects on the data-touching costs.
//
// §1.2: "One disadvantage of this approach, however, is that our
// measurements include cache effects" — the paper's 40000-iteration loops
// ran warm. This ablation scales only the per-byte (data-touching) costs —
// checksums and copies — to ask how the headline results shift if the
// caches had been colder or warmer, leaving per-packet bookkeeping alone.

#include <cstdio>

#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"

namespace tcplat {
namespace {

double Rtt(double cache_factor, ChecksumMode mode, size_t size) {
  TestbedConfig cfg;
  cfg.profile = CostProfile::Decstation5000_200().WithCacheFactor(cache_factor);
  cfg.tcp.checksum = mode;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 100;
  return RunRpcBenchmark(tb, opt).MeanRtt().micros();
}

void Run() {
  std::printf("Ablation A6: cache factor on data-touching costs (calibrated = 1.0x, warm)\n\n");
  TextTable t({"Cache factor", "4B RTT", "1400B RTT", "8000B RTT", "8000B cksum-elim saving"});
  for (double f : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    const double r8000 = Rtt(f, ChecksumMode::kStandard, 8000);
    const double n8000 = Rtt(f, ChecksumMode::kNone, 8000);
    t.AddRow({TextTable::Num(f, 1) + "x", TextTable::Us(Rtt(f, ChecksumMode::kStandard, 4)),
              TextTable::Us(Rtt(f, ChecksumMode::kStandard, 1400)), TextTable::Us(r8000),
              TextTable::Pct(100.0 * (r8000 - n8000) / r8000, 1)});
  }
  t.Print();
  std::printf("\nReadings: small-message latency is nearly cache-insensitive (per-packet\n"
              "bookkeeping dominates), while the large-transfer rows and the checksum-\n"
              "elimination saving both scale with memory-system speed — colder caches\n"
              "would have *strengthened* the paper's §4 argument. The calibrated 1.0x\n"
              "profile embeds the warm-loop behavior the paper measured.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
