#include "src/tcp/pcb.h"

#include <algorithm>

#include "src/base/check.h"

namespace tcplat {

PcbTable::PcbTable(Cpu* cpu) : cpu_(cpu), buckets_(kBuckets) { TCPLAT_CHECK(cpu != nullptr); }

void PcbTable::set_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) {
    cache_ = nullptr;
  }
}

void PcbTable::Insert(Pcb* pcb) {
  TCPLAT_CHECK(pcb != nullptr);
  list_.insert(list_.begin(), pcb);  // head insertion (in_pcbinsert)
  if (pcb->remote.addr == 0) {
    wildcards_.push_back(pcb);
  } else {
    buckets_[Bucket(pcb->remote, pcb->local)].push_back(pcb);
  }
}

void PcbTable::Remove(Pcb* pcb) {
  auto erase_from = [pcb](std::vector<Pcb*>& v) {
    v.erase(std::remove(v.begin(), v.end(), pcb), v.end());
  };
  erase_from(list_);
  erase_from(wildcards_);
  for (auto& bucket : buckets_) {
    erase_from(bucket);
  }
  if (cache_ == pcb) {
    cache_ = nullptr;
  }
}

size_t PcbTable::Bucket(const SockAddr& remote, const SockAddr& local) {
  const uint64_t h = (static_cast<uint64_t>(remote.addr) * 0x9e3779b97f4a7c15ULL) ^
                     (static_cast<uint64_t>(remote.port) << 32) ^
                     (static_cast<uint64_t>(local.port) << 16);
  return static_cast<size_t>((h >> 7) % kBuckets);
}

Pcb* PcbTable::Lookup(const SockAddr& remote, const SockAddr& local) {
  ++stats_.lookups;

  if (cache_enabled_) {
    // The single-entry PCB cache: if the incoming packet is from the same
    // connection as the previous one, the lookup routine is never called.
    cpu_->Charge(cpu_->profile().pcb_cache_check);
    if (cache_ != nullptr && cache_->remote == remote && cache_->local == local) {
      ++stats_.cache_hits;
      return cache_;
    }
    ++stats_.cache_misses;
  }

  size_t examined = 0;
  Pcb* found = mode_ == PcbLookupMode::kLinearList ? LookupLinear(remote, local, &examined)
                                                   : LookupHash(remote, local, &examined);
  cpu_->Charge(cpu_->profile().pcb_lookup, 0, examined);
  if (found == nullptr) {
    ++stats_.not_found;
  } else if (cache_enabled_ && found->remote.addr != 0) {
    cache_ = found;
  }
  stats_.entries_examined += examined;
  return found;
}

bool PcbTable::LocalPortInUse(uint16_t port) const {
  for (const Pcb* pcb : list_) {
    if (pcb->local.port == port) {
      return true;
    }
  }
  return false;
}

Pcb* PcbTable::LookupLinear(const SockAddr& remote, const SockAddr& local, size_t* examined) {
  // BSD in_pcblookup: walk the whole list, preferring an exact match but
  // remembering the best wildcard match. An exact match ends the search.
  Pcb* wildcard = nullptr;
  for (Pcb* pcb : list_) {
    ++*examined;
    if (pcb->local.port != local.port) {
      continue;
    }
    if (pcb->remote == remote && pcb->local.addr == local.addr) {
      return pcb;
    }
    if (pcb->remote.addr == 0 && wildcard == nullptr) {
      wildcard = pcb;
    }
  }
  return wildcard;
}

Pcb* PcbTable::LookupHash(const SockAddr& remote, const SockAddr& local, size_t* examined) {
  for (Pcb* pcb : buckets_[Bucket(remote, local)]) {
    ++*examined;
    if (pcb->remote == remote && pcb->local.port == local.port &&
        pcb->local.addr == local.addr) {
      return pcb;
    }
  }
  for (Pcb* pcb : wildcards_) {
    ++*examined;
    if (pcb->local.port == local.port) {
      return pcb;
    }
  }
  return nullptr;
}

}  // namespace tcplat
