// Cost of one machine primitive, as an affine model in data size and chunk
// count.
//
// Every data-touching or bookkeeping operation in the simulated stack is
// assigned a named CostParams in the machine's CostProfile. The model is
//
//     cost(bytes, chunks) = fixed + per_byte * bytes + per_chunk * chunks
//
// in microseconds. Chunks are operation-specific units: mbufs for a chain
// walk, cells for a SAR loop, PCB entries for a list search.

#ifndef SRC_CPU_COST_PARAMS_H_
#define SRC_CPU_COST_PARAMS_H_

#include <cstddef>

#include "src/sim/time.h"

namespace tcplat {

struct CostParams {
  double fixed_us = 0.0;
  double per_byte_us = 0.0;
  double per_chunk_us = 0.0;

  constexpr SimDuration Eval(size_t bytes = 0, size_t chunks = 0) const {
    const double us = fixed_us + per_byte_us * static_cast<double>(bytes) +
                      per_chunk_us * static_cast<double>(chunks);
    return SimDuration::FromMicros(us);
  }
};

}  // namespace tcplat

#endif  // SRC_CPU_COST_PARAMS_H_
