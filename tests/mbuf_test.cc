// Tests for the mbuf subsystem: allocation, chain geometry, the
// deep-copy-vs-refcount m_copym semantics of §2.2.1, and cost charging.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "src/buf/mbuf.h"
#include "src/cpu/cpu.h"
#include "src/sim/simulator.h"

namespace tcplat {
namespace {

class MbufTest : public ::testing::Test {
 protected:
  MbufTest() : cpu_(&sim_, CostProfile::Decstation5000_200()), pool_(&cpu_) {
    cpu_.BeginRun(sim_.Now());
  }
  ~MbufTest() override { cpu_.EndRun(); }

  MbufPtr FilledChain(const std::vector<size_t>& lens, bool clusters, uint8_t seed = 1) {
    MbufPtr head;
    uint8_t v = seed;
    for (size_t len : lens) {
      MbufPtr m = clusters ? pool_.GetCluster() : pool_.Get();
      for (uint8_t& b : m->Append(len)) {
        b = v++;
      }
      ChainAppend(&head, std::move(m));
    }
    return head;
  }

  Simulator sim_;
  Cpu cpu_;
  MbufPool pool_;
};

TEST_F(MbufTest, SmallMbufGeometry) {
  MbufPtr m = pool_.Get();
  EXPECT_FALSE(m->is_cluster());
  EXPECT_EQ(m->capacity(), kMbufDataBytes);
  EXPECT_EQ(m->len(), 0u);
  EXPECT_EQ(m->leading_space(), 0u);
  EXPECT_EQ(m->trailing_space(), kMbufDataBytes);
}

TEST_F(MbufTest, HeaderMbufReservesLeadingSpace) {
  MbufPtr m = pool_.GetHeader();
  EXPECT_EQ(m->leading_space(), kMaxLinkHeader);
  EXPECT_EQ(m->capacity(), kMbufHdrDataBytes);
  EXPECT_EQ(m->trailing_space(), kMbufHdrDataBytes - kMaxLinkHeader);
  MbufPtr t = pool_.GetHeader(36);
  EXPECT_EQ(t->leading_space(), 36u);
  EXPECT_EQ(t->trailing_space(), kMbufHdrDataBytes - 36);
}

TEST_F(MbufTest, ClusterGeometry) {
  MbufPtr m = pool_.GetCluster();
  EXPECT_TRUE(m->is_cluster());
  EXPECT_EQ(m->capacity(), kClusterBytes);
  EXPECT_EQ(m->cluster_refs(), 1);
}

TEST_F(MbufTest, PrependConsumesLeadingSpace) {
  MbufPtr m = pool_.GetHeader(40);
  m->Append(10);
  auto hdr = m->Prepend(20);
  EXPECT_EQ(hdr.size(), 20u);
  EXPECT_EQ(m->len(), 30u);
  EXPECT_EQ(m->leading_space(), 20u);
  EXPECT_EQ(hdr.data(), m->data());
}

TEST_F(MbufTest, TrimFrontAndBack) {
  MbufPtr m = pool_.Get();
  auto span = m->Append(50);
  std::iota(span.begin(), span.end(), 0);
  m->TrimFront(10);
  EXPECT_EQ(m->len(), 40u);
  EXPECT_EQ(m->data()[0], 10);
  m->TrimBack(5);
  EXPECT_EQ(m->len(), 35u);
  EXPECT_EQ(m->data()[34], 44);
}

TEST_F(MbufTest, AllocFreeStatsBalance) {
  MbufPtr a = pool_.Get();
  MbufPtr b = pool_.GetCluster();
  ChainAppend(&a, std::move(b));
  EXPECT_EQ(pool_.stats().in_use, 2);
  pool_.FreeChain(std::move(a));
  EXPECT_EQ(pool_.stats().in_use, 0);
  EXPECT_EQ(pool_.stats().frees, 2u);
  EXPECT_EQ(pool_.stats().peak_in_use, 2);
}

TEST_F(MbufTest, AllocAndFreeChargeCalibratedCost) {
  const SimTime before = cpu_.cursor();
  MbufPtr m = pool_.Get();
  pool_.FreeChain(std::move(m));
  // §2.2.1: "allocate and free an mbuf ... just over 7 us".
  const double us = (cpu_.cursor() - before).micros();
  EXPECT_NEAR(us, 7.2, 0.3);
}

TEST_F(MbufTest, ChainLengthAndCount) {
  MbufPtr chain = FilledChain({10, 108, 44}, false);
  EXPECT_EQ(ChainLength(chain.get()), 162u);
  EXPECT_EQ(ChainCount(chain.get()), 3u);
  pool_.FreeChain(std::move(chain));
}

TEST_F(MbufTest, ChainCopyOutCrossesMbufs) {
  MbufPtr chain = FilledChain({10, 20, 30}, false);
  const std::vector<uint8_t> all = ChainToVector(chain.get());
  ASSERT_EQ(all.size(), 60u);
  for (size_t off : {0u, 5u, 9u, 10u, 29u, 31u}) {
    std::vector<uint8_t> out(60 - off);
    ChainCopyOut(chain.get(), off, out);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), all.begin() + off)) << "off=" << off;
  }
  pool_.FreeChain(std::move(chain));
}

TEST_F(MbufTest, CopyRangeDeepCopiesSmallMbufs) {
  MbufPtr chain = FilledChain({100, 100, 100}, false);
  const auto before = pool_.stats().bytes_copied;
  MbufPtr copy = pool_.CopyRange(chain.get(), 50, 200);
  EXPECT_EQ(ChainLength(copy.get()), 200u);
  EXPECT_GT(pool_.stats().bytes_copied, before);

  std::vector<uint8_t> want(200);
  ChainCopyOut(chain.get(), 50, want);
  EXPECT_EQ(ChainToVector(copy.get()), want);

  // Deep copy: mutating the copy must not affect the original.
  copy->data()[0] ^= 0xFF;
  std::vector<uint8_t> orig(200);
  ChainCopyOut(chain.get(), 50, orig);
  EXPECT_EQ(orig, want);

  pool_.FreeChain(std::move(chain));
  pool_.FreeChain(std::move(copy));
}

TEST_F(MbufTest, CopyRangeSharesClusters) {
  MbufPtr chain = FilledChain({3000, 2000}, true);
  const auto copied_before = pool_.stats().bytes_copied;
  const auto refs_before = pool_.stats().cluster_refs;
  MbufPtr copy = pool_.CopyRange(chain.get(), 0, 5000);
  // §2.2.1: "cluster mbufs use reference counts for copying; no storage is
  // allocated or data copied."
  EXPECT_EQ(pool_.stats().bytes_copied, copied_before);
  EXPECT_EQ(pool_.stats().cluster_refs, refs_before + 2);
  EXPECT_EQ(chain->cluster_refs(), 2);
  EXPECT_EQ(ChainToVector(copy.get()), ChainToVector(chain.get()));
  pool_.FreeChain(std::move(chain));
  // The shared storage survives while the copy lives.
  EXPECT_EQ(ChainLength(copy.get()), 5000u);
  EXPECT_EQ(copy->cluster_refs(), 1);
  pool_.FreeChain(std::move(copy));
}

TEST_F(MbufTest, CopyRangeClusterSliceViewsSameBytes) {
  MbufPtr chain = FilledChain({4096}, true);
  MbufPtr copy = pool_.CopyRange(chain.get(), 1000, 500);
  std::vector<uint8_t> want(500);
  ChainCopyOut(chain.get(), 1000, want);
  EXPECT_EQ(ChainToVector(copy.get()), want);
  pool_.FreeChain(std::move(chain));
  pool_.FreeChain(std::move(copy));
}

class CopyRangeSweep : public MbufTest,
                       public ::testing::WithParamInterface<std::pair<size_t, size_t>> {};

TEST_P(CopyRangeSweep, OffsetsAndLengths) {
  const auto [off, len] = GetParam();
  MbufPtr chain = FilledChain({40, 108, 7, 108, 60}, false);
  ASSERT_GE(ChainLength(chain.get()), off + len);
  MbufPtr copy = pool_.CopyRange(chain.get(), off, len);
  std::vector<uint8_t> want(len);
  ChainCopyOut(chain.get(), off, want);
  EXPECT_EQ(ChainToVector(copy.get()), want);
  pool_.FreeChain(std::move(chain));
  pool_.FreeChain(std::move(copy));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CopyRangeSweep,
                         ::testing::Values(std::pair<size_t, size_t>{0, 1},
                                           std::pair<size_t, size_t>{0, 323},
                                           std::pair<size_t, size_t>{39, 2},
                                           std::pair<size_t, size_t>{40, 108},
                                           std::pair<size_t, size_t>{100, 150},
                                           std::pair<size_t, size_t>{154, 10},
                                           std::pair<size_t, size_t>{155, 168},
                                           std::pair<size_t, size_t>{322, 1}));

TEST_F(MbufTest, ChainAdjHeadDropsAndFrees) {
  MbufPtr chain = FilledChain({10, 20, 30}, false);
  const std::vector<uint8_t> all = ChainToVector(chain.get());
  ChainAdjHead(&pool_, &chain, 25);
  EXPECT_EQ(ChainLength(chain.get()), 35u);
  EXPECT_EQ(ChainCount(chain.get()), 2u);  // first mbuf freed, second trimmed
  std::vector<uint8_t> rest = ChainToVector(chain.get());
  EXPECT_TRUE(std::equal(rest.begin(), rest.end(), all.begin() + 25));
  ChainAdjHead(&pool_, &chain, 35);
  EXPECT_EQ(chain, nullptr);
  EXPECT_EQ(pool_.stats().in_use, 0);
}

TEST_F(MbufTest, PartialChecksumPropagatesOnWholeMbufCopyOnly) {
  MbufPtr chain = FilledChain({4096}, true);
  chain->set_partial_cksum(ComputePartial(chain->bytes()));

  MbufPtr whole = pool_.CopyRange(chain.get(), 0, 4096);
  EXPECT_TRUE(whole->partial_cksum().has_value());

  MbufPtr slice = pool_.CopyRange(chain.get(), 1, 100);
  EXPECT_FALSE(slice->partial_cksum().has_value());

  pool_.FreeChain(std::move(chain));
  pool_.FreeChain(std::move(whole));
  pool_.FreeChain(std::move(slice));
}

TEST_F(MbufTest, MutationResetsPartialChecksum) {
  MbufPtr m = pool_.Get();
  m->Append(50);
  m->set_partial_cksum(ComputePartial(m->bytes()));
  m->TrimFront(1);
  EXPECT_FALSE(m->partial_cksum().has_value());

  m->set_partial_cksum(ComputePartial(m->bytes()));
  m->TrimBack(1);
  EXPECT_FALSE(m->partial_cksum().has_value());

  MbufPtr h = pool_.GetHeader();
  h->Append(10);
  h->set_partial_cksum(ComputePartial(h->bytes()));
  h->Prepend(4);
  EXPECT_FALSE(h->partial_cksum().has_value());
  pool_.FreeChain(std::move(m));
  pool_.FreeChain(std::move(h));
}

TEST_F(MbufTest, PullupInPlaceWhenHeadHasRoom) {
  MbufPtr chain = FilledChain({10, 20, 30}, false);
  const auto before = ChainToVector(chain.get());
  ASSERT_TRUE(ChainPullup(&pool_, &chain, 25));
  EXPECT_GE(chain->len(), 25u);
  EXPECT_EQ(ChainToVector(chain.get()), before) << "pullup must not change the byte stream";
  pool_.FreeChain(std::move(chain));
}

TEST_F(MbufTest, PullupAllocatesWhenHeadIsCluster) {
  MbufPtr chain = FilledChain({30}, true);  // cluster head
  MbufPtr tail = FilledChain({40}, false, 77);
  ChainAppend(&chain, std::move(tail));
  const auto before = ChainToVector(chain.get());
  ASSERT_TRUE(ChainPullup(&pool_, &chain, 50));
  EXPECT_FALSE(chain->is_cluster());
  EXPECT_GE(chain->len(), 50u);
  EXPECT_EQ(ChainToVector(chain.get()), before);
  pool_.FreeChain(std::move(chain));
}

TEST_F(MbufTest, PullupAlreadyContiguousIsNoop) {
  MbufPtr chain = FilledChain({60, 10}, false);
  const auto allocs = pool_.stats().small_allocs;
  ASSERT_TRUE(ChainPullup(&pool_, &chain, 40));
  EXPECT_EQ(pool_.stats().small_allocs, allocs);
  pool_.FreeChain(std::move(chain));
}

TEST_F(MbufTest, PullupFailsBeyondChainOrMbufCapacity) {
  MbufPtr chain = FilledChain({10, 10}, false);
  EXPECT_FALSE(ChainPullup(&pool_, &chain, 21));   // longer than the chain
  EXPECT_FALSE(ChainPullup(&pool_, &chain, 200));  // larger than MLEN
  EXPECT_EQ(ChainLength(chain.get()), 20u);
  pool_.FreeChain(std::move(chain));
}

TEST_F(MbufTest, DeathOnOverfullPrepend) {
  MbufPtr m = pool_.Get();  // no leading space
  EXPECT_DEATH(m->Prepend(1), "leading space");
  pool_.FreeChain(std::move(m));
}

TEST_F(MbufTest, FreelistRecyclesHeadersAndClusters) {
  // Alloc/free cycles after the first should be served from the pool's
  // freelists instead of the global allocator.
  for (int round = 0; round < 10; ++round) {
    MbufPtr small = pool_.Get();
    MbufPtr cluster = pool_.GetCluster();
    pool_.FreeChain(std::move(small));
    pool_.FreeChain(std::move(cluster));
  }
  EXPECT_GE(pool_.stats().mbuf_freelist_hits, 18u);
  EXPECT_GE(pool_.stats().cluster_freelist_hits, 9u);
  // Accounting semantics are unchanged by recycling.
  EXPECT_EQ(pool_.stats().small_allocs, 10u);
  EXPECT_EQ(pool_.stats().cluster_allocs, 10u);
  EXPECT_EQ(pool_.stats().frees, 20u);
  EXPECT_EQ(pool_.stats().in_use, 0);
}

TEST_F(MbufTest, RecycledMbufIsIndistinguishableFromFresh) {
  // Dirty a small mbuf and a cluster, free them, and check the recycled
  // allocations come back zeroed with fresh geometry.
  MbufPtr small = pool_.Get();
  for (uint8_t& b : small->Append(50)) {
    b = 0xAB;
  }
  MbufPtr cluster = pool_.GetCluster();
  for (uint8_t& b : cluster->Append(1000)) {
    b = 0xCD;
  }
  pool_.FreeChain(std::move(small));
  pool_.FreeChain(std::move(cluster));

  MbufPtr s2 = pool_.Get();
  EXPECT_EQ(s2->len(), 0u);
  EXPECT_EQ(s2->leading_space(), 0u);
  auto sbytes = s2->Append(kMbufDataBytes);
  EXPECT_TRUE(std::all_of(sbytes.begin(), sbytes.end(), [](uint8_t b) { return b == 0; }));

  MbufPtr c2 = pool_.GetCluster();
  EXPECT_TRUE(c2->is_cluster());
  EXPECT_EQ(c2->len(), 0u);
  auto cbytes = c2->Append(kClusterBytes);
  EXPECT_TRUE(std::all_of(cbytes.begin(), cbytes.end(), [](uint8_t b) { return b == 0; }));
  pool_.FreeChain(std::move(s2));
  pool_.FreeChain(std::move(c2));
}

TEST_F(MbufTest, SharedClusterPageIsNotRecycledUntilLastRef) {
  // A cluster "copy" shares the page; freeing one ref must not hand the
  // page to the freelist while the other ref still reads it.
  MbufPtr orig = FilledChain({2000}, /*clusters=*/true);
  MbufPtr copy = pool_.CopyRange(orig.get(), 0, 2000);
  const uint64_t hits_before = pool_.stats().cluster_freelist_hits;
  pool_.FreeChain(std::move(orig));
  // Page still referenced by `copy`: a fresh GetCluster cannot be a
  // freelist hit on that page.
  MbufPtr fresh = pool_.GetCluster();
  EXPECT_EQ(pool_.stats().cluster_freelist_hits, hits_before);
  EXPECT_EQ(ChainToVector(copy.get()).size(), 2000u);
  EXPECT_EQ(ChainToVector(copy.get())[0], 1);  // data intact
  pool_.FreeChain(std::move(copy));
  pool_.FreeChain(std::move(fresh));
}

}  // namespace
}  // namespace tcplat
