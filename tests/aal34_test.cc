// Tests for the AAL3/4 adaptation layer: CPCS framing, SAR segmentation,
// cell wire images, and the receive-side reassembly state machine.

#include <gtest/gtest.h>

#include <vector>

#include "src/atm/aal34.h"
#include "src/base/random.h"

namespace tcplat {
namespace {

std::vector<uint8_t> RandomPayload(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<uint8_t> buf(n);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return buf;
}

TEST(Cpcs, BuildParseRoundTrip) {
  const auto payload = RandomPayload(1400);
  const auto pdu = BuildCpcsPdu(payload, 0x42);
  EXPECT_EQ(pdu.size() % 4, 0u);
  std::string err;
  auto parsed = ParseCpcsPdu(pdu, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, payload);
}

TEST(Cpcs, PaddingToFourByteMultiple) {
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 44u, 45u}) {
    const auto pdu = BuildCpcsPdu(RandomPayload(n), 1);
    EXPECT_EQ(pdu.size() % 4, 0u);
    EXPECT_GE(pdu.size(), n + kCpcsHeaderBytes + kCpcsTrailerBytes);
  }
}

TEST(Cpcs, DetectsTagMismatch) {
  auto pdu = BuildCpcsPdu(RandomPayload(100), 7);
  pdu[1] ^= 0xFF;  // Btag
  std::string err;
  EXPECT_FALSE(ParseCpcsPdu(pdu, &err).has_value());
  EXPECT_NE(err.find("btag"), std::string::npos);
}

TEST(Cpcs, DetectsLengthCorruption) {
  auto pdu = BuildCpcsPdu(RandomPayload(100), 7);
  pdu[pdu.size() - 1] ^= 0x40;  // Length field low byte
  std::string err;
  EXPECT_FALSE(ParseCpcsPdu(pdu, &err).has_value());
}

TEST(Cpcs, RejectsTooShort) {
  std::string err;
  EXPECT_FALSE(ParseCpcsPdu(std::vector<uint8_t>(4, 0), &err).has_value());
}

class SarSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SarSizeTest, SegmentAndReassembleRoundTrip) {
  const size_t n = GetParam();
  const auto payload = RandomPayload(n, n);
  const auto cpcs = BuildCpcsPdu(payload, static_cast<uint8_t>(n));
  uint8_t sn = 3;
  const auto cells = SegmentCpcsPdu(cpcs, /*vci=*/42, /*mid=*/5, &sn);

  const size_t want_cells = (cpcs.size() + kSarPayloadBytes - 1) / kSarPayloadBytes;
  ASSERT_EQ(cells.size(), want_cells);
  if (cells.size() == 1) {
    EXPECT_EQ(cells[0].st, SegmentType::kSsm);
  } else {
    EXPECT_EQ(cells.front().st, SegmentType::kBom);
    EXPECT_EQ(cells.back().st, SegmentType::kEom);
    for (size_t i = 1; i + 1 < cells.size(); ++i) {
      EXPECT_EQ(cells[i].st, SegmentType::kCom);
    }
  }

  SarReassembler reasm;
  std::optional<std::vector<uint8_t>> done;
  for (const AtmCell& cell : cells) {
    // Through the wire image, so CRC generation/checking is exercised.
    bool crc_ok = false;
    auto parsed = ParseCell(SerializeCell(cell), &crc_ok);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(crc_ok);
    EXPECT_EQ(parsed->vci, 42);
    EXPECT_EQ(parsed->mid, 5);
    auto out = reasm.Feed(*parsed, crc_ok);
    if (out.has_value()) {
      EXPECT_FALSE(done.has_value());
      done = std::move(out);
    }
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, payload);
  EXPECT_EQ(reasm.stats().pdus_ok, 1u);
  EXPECT_EQ(reasm.stats().pdus_dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SarSizeTest,
                         ::testing::Values(1, 4, 35, 36, 37, 44, 88, 100, 500, 1400, 4000,
                                           8040, 9188),
                         [](const auto& inst) { return "n" + std::to_string(inst.param); });

TEST(Sar, SequenceNumbersWrapModulo16) {
  const auto cpcs = BuildCpcsPdu(RandomPayload(44 * 20), 1);
  uint8_t sn = 14;
  const auto cells = SegmentCpcsPdu(cpcs, 1, 1, &sn);
  EXPECT_EQ(cells[0].sn, 14);
  EXPECT_EQ(cells[1].sn, 15);
  EXPECT_EQ(cells[2].sn, 0);
  EXPECT_EQ(cells[3].sn, 1);
}

TEST(Sar, LastCellLengthIndicator) {
  const auto payload = RandomPayload(50);  // CPCS = 4+52+4 = 60 -> 44 + 16
  const auto cpcs = BuildCpcsPdu(payload, 1);
  uint8_t sn = 0;
  const auto cells = SegmentCpcsPdu(cpcs, 1, 1, &sn);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].li, kSarPayloadBytes);
  EXPECT_EQ(cells[1].li, cpcs.size() - kSarPayloadBytes);
}

TEST(Reassembler, DroppedMiddleCellDetectedBySequence) {
  const auto cpcs = BuildCpcsPdu(RandomPayload(300), 9);
  uint8_t sn = 0;
  const auto cells = SegmentCpcsPdu(cpcs, 1, 1, &sn);
  ASSERT_GE(cells.size(), 3u);

  SarReassembler reasm;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i == 1) {
      continue;  // lost cell
    }
    auto out = reasm.Feed(cells[i], true);
    EXPECT_FALSE(out.has_value());
  }
  EXPECT_EQ(reasm.stats().sequence_errors, 1u);
  EXPECT_EQ(reasm.stats().pdus_ok, 0u);
  EXPECT_GE(reasm.stats().pdus_dropped, 1u);
}

TEST(Reassembler, CrcErrorPoisonsPdu) {
  const auto cpcs = BuildCpcsPdu(RandomPayload(300), 9);
  uint8_t sn = 0;
  const auto cells = SegmentCpcsPdu(cpcs, 1, 1, &sn);

  SarReassembler reasm;
  for (size_t i = 0; i < cells.size(); ++i) {
    auto out = reasm.Feed(cells[i], /*crc_ok=*/i != 1);
    EXPECT_FALSE(out.has_value());
  }
  EXPECT_EQ(reasm.stats().crc_errors, 1u);
  EXPECT_EQ(reasm.stats().pdus_ok, 0u);
}

TEST(Reassembler, RecoversAfterDamagedPdu) {
  const auto payload = RandomPayload(500);
  const auto cpcs = BuildCpcsPdu(payload, 3);
  uint8_t sn = 0;
  auto bad = SegmentCpcsPdu(cpcs, 1, 1, &sn);
  auto good = SegmentCpcsPdu(cpcs, 1, 1, &sn);

  SarReassembler reasm;
  for (size_t i = 0; i < bad.size(); ++i) {
    reasm.Feed(bad[i], /*crc_ok=*/i != 0);
  }
  std::optional<std::vector<uint8_t>> done;
  for (const auto& cell : good) {
    auto out = reasm.Feed(cell, true);
    if (out.has_value()) {
      done = std::move(out);
    }
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, payload);
}

TEST(Reassembler, BomWhileInProgressDropsOldPdu) {
  const auto cpcs = BuildCpcsPdu(RandomPayload(300), 9);
  uint8_t sn = 0;
  const auto first = SegmentCpcsPdu(cpcs, 1, 1, &sn);
  const auto payload2 = RandomPayload(100, 2);
  const auto cpcs2 = BuildCpcsPdu(payload2, 10);
  const auto second = SegmentCpcsPdu(cpcs2, 1, 1, &sn);

  SarReassembler reasm;
  reasm.Feed(first[0], true);  // BOM, then the rest never arrives
  std::optional<std::vector<uint8_t>> done;
  for (const auto& cell : second) {
    auto out = reasm.Feed(cell, true);
    if (out.has_value()) {
      done = std::move(out);
    }
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, payload2);
  EXPECT_EQ(reasm.stats().protocol_errors, 1u);
}

TEST(Reassembler, ComWithoutBomIsProtocolError) {
  const auto cpcs = BuildCpcsPdu(RandomPayload(300), 9);
  uint8_t sn = 0;
  const auto cells = SegmentCpcsPdu(cpcs, 1, 1, &sn);
  SarReassembler reasm;
  EXPECT_FALSE(reasm.Feed(cells[1], true).has_value());
  EXPECT_EQ(reasm.stats().protocol_errors, 1u);
}

TEST(Cell, WireImageIs53Bytes) {
  const auto cpcs = BuildCpcsPdu(RandomPayload(10), 1);
  uint8_t sn = 0;
  const auto cells = SegmentCpcsPdu(cpcs, 7, 3, &sn);
  const auto wire = SerializeCell(cells[0]);
  EXPECT_EQ(wire.size(), kAtmCellBytes);
}

TEST(Cell, CorruptedPayloadFailsCrc) {
  const auto cpcs = BuildCpcsPdu(RandomPayload(10), 1);
  uint8_t sn = 0;
  const auto cells = SegmentCpcsPdu(cpcs, 7, 3, &sn);
  auto wire = SerializeCell(cells[0]);
  wire[20] ^= 0x10;
  bool crc_ok = true;
  auto parsed = ParseCell(wire, &crc_ok);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(crc_ok);
}

TEST(Cell, RejectsWrongSize) {
  bool crc_ok = false;
  EXPECT_FALSE(ParseCell(std::vector<uint8_t>(52, 0), &crc_ok).has_value());
  EXPECT_FALSE(ParseCell(std::vector<uint8_t>(54, 0), &crc_ok).has_value());
}

}  // namespace
}  // namespace tcplat
