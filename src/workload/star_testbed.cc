#include "src/workload/star_testbed.h"

#include <algorithm>
#include <string>

#include "src/atm/aal34.h"
#include "src/base/check.h"
#include "src/exec/executor.h"
#include "src/trace/binary_trace.h"

namespace tcplat {
namespace {

// Ordered-pair virtual circuits: src host i sending to dst host j uses VCI
// 64 + i*N + j. The block below 64 stays clear of the two-host testbed's
// 42/43 and any well-known VCs.
uint16_t PairVci(int src, int dst, int n) {
  return static_cast<uint16_t>(64 + src * n + dst);
}

}  // namespace

StarTestbed::StarTestbed(StarTestbedConfig config) : config_(std::move(config)) {
  TCPLAT_CHECK_GT(config_.clients, 0);
  TCPLAT_CHECK_GT(config_.servers, 0);
  const int n = host_count();
  TCPLAT_CHECK_LE(n, 250) << "star exceeds the address/VCI plan";

  // Sharding needs cross-shard edges with positive lookahead, which only the
  // ATM fibers provide (the Ethernet SharedBus is one global serializer),
  // and at least two hosts so there is parallel work to find.
  const bool sharded_run =
      config_.shards > 0 && config_.network == NetworkKind::kAtm && n >= 2;
  if (sharded_run) {
    host_shards_ = std::min(config_.shards, n);
    const unsigned threads =
        config_.shard_threads != 0 ? config_.shard_threads : DefaultExecutorJobs();
    engine_ = std::make_unique<ShardEngine>(config_.seed, 1 + host_shards_, threads);
  } else {
    serial_sim_ = std::make_unique<Simulator>(config_.seed);
  }
  const auto host_sim = [&](int idx) {
    return sharded() ? &engine_->sim(shard_of_host(idx)) : serial_sim_.get();
  };
  Simulator* const hub_sim = sharded() ? &engine_->sim(0) : serial_sim_.get();

  for (int idx = 0; idx < n; ++idx) {
    const bool is_client = idx < config_.clients;
    const std::string name = (is_client ? "client" : "server") +
                             std::to_string(is_client ? idx : idx - config_.clients);
    hosts_.push_back(std::make_unique<Host>(host_sim(idx), name, config_.profile));
    const Ipv4Addr addr =
        is_client ? StarClientAddr(idx) : StarServerAddr(idx - config_.clients);
    ips_.push_back(std::make_unique<IpStack>(hosts_.back().get(), addr));
  }

  if (config_.network == NetworkKind::kAtm) {
    atm_switch_ = std::make_unique<AtmSwitch>(hub_sim, kTaxiBitsPerSecond, config_.propagation,
                                              config_.switch_latency);
    if (config_.vc_buffers.buffer_cells > 0) {
      atm_switch_->ConfigureVcBuffers(config_.vc_buffers);
    }
    const bool integrated = config_.tcp.checksum == ChecksumMode::kCombined;
    for (int idx = 0; idx < n; ++idx) {
      // Each host owns a private fiber into the switch; the switch creates
      // the return fiber in AttachOutput. Port number = host index.
      fibers_.push_back(
          std::make_unique<Wire>(host_sim(idx), kTaxiBitsPerSecond, config_.propagation));
      adapters_.push_back(std::make_unique<Tca100>(hosts_[static_cast<size_t>(idx)].get(),
                                                   fibers_.back().get()));
      const bool server_port = idx >= config_.clients;
      atm_switch_->AttachOutput(idx, adapters_.back().get(),
                                server_port ? config_.server_trunk_bps : 0);
      adapters_.back()->ConnectSink(atm_switch_->input(idx));
      if (sharded()) {
        // A cell transmitted "now" cannot arrive before one cell time plus
        // the propagation delay, so that sum is the fiber's lookahead in
        // both directions. Channel creation order (per host: uplink then
        // downlink) is part of the deterministic message tie-break.
        const SimDuration lookahead =
            fibers_.back()->SerializationDelay(kAtmCellBytes) + config_.propagation;
        fibers_.back()->set_shard_channel(
            engine_->CreateChannel(shard_of_host(idx), 0, lookahead));
        atm_switch_->SetOutputChannel(
            idx, engine_->CreateChannel(0, shard_of_host(idx), lookahead));
      }
      atm_ifs_.push_back(std::make_unique<AtmNetIf>(ips_[static_cast<size_t>(idx)].get(),
                                                    adapters_.back().get(),
                                                    PairVci(idx, idx, n)));
      atm_ifs_.back()->set_rx_integrated_checksum(integrated);
    }
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        if (src == dst) {
          continue;
        }
        const uint16_t vci = PairVci(src, dst, n);
        const Ipv4Addr dst_addr = dst < config_.clients
                                      ? StarClientAddr(dst)
                                      : StarServerAddr(dst - config_.clients);
        atm_ifs_[static_cast<size_t>(src)]->AddVc(dst_addr, vci);
        atm_switch_->AddRoute(vci, dst);
      }
    }
  } else {
    ether_segment_ = std::make_unique<EtherSegment>(serial_sim_.get(), config_.propagation);
    for (int idx = 0; idx < n; ++idx) {
      const MacAddr mac{0x02, 0, 0, 0, 0, static_cast<uint8_t>(idx + 1)};
      ether_ifs_.push_back(std::make_unique<EtherNetIf>(ips_[static_cast<size_t>(idx)].get(),
                                                        hosts_[static_cast<size_t>(idx)].get(),
                                                        ether_segment_.get(), mac));
    }
    // Static all-to-all ARP, as the paper's warm two-host cache generalizes.
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a == b) {
          continue;
        }
        const Ipv4Addr b_addr =
            b < config_.clients ? StarClientAddr(b) : StarServerAddr(b - config_.clients);
        ether_ifs_[static_cast<size_t>(a)]->AddRoute(b_addr, ether_ifs_[static_cast<size_t>(b)]->mac());
      }
    }
  }

  for (int idx = 0; idx < n; ++idx) {
    tcps_.push_back(std::make_unique<TcpStack>(ips_[static_cast<size_t>(idx)].get(), config_.tcp));
    tcps_.back()->AddBackgroundPcbs(config_.background_pcbs);
  }
}

Simulator& StarTestbed::sim() {
  TCPLAT_CHECK(!sharded()) << "no single simulator in sharded mode; use "
                              "RunToCompletion/EndTime/EventsDispatched";
  return *serial_sim_;
}

void StarTestbed::RunToCompletion() {
  if (sharded()) {
    engine_->Run();
    MergeShardTraces();
    return;
  }
  serial_sim_->RunToCompletion();
}

SimTime StarTestbed::EndTime() const {
  return sharded() ? engine_->EndTime() : serial_sim_->Now();
}

uint64_t StarTestbed::EventsDispatched() const {
  return sharded() ? engine_->events_dispatched() : serial_sim_->events_dispatched();
}

void StarTestbed::AttachTracer(Tracer* tracer) {
  if (!sharded()) {
    for (auto& host : hosts_) {
      host->AttachTracer(tracer);
    }
    if (atm_switch_ != nullptr) {
      if (tracer != nullptr) {
        atm_switch_->AttachTracer(tracer, tracer->RegisterHost("switch"));
      } else {
        atm_switch_->AttachTracer(nullptr, 0);
      }
    }
    return;
  }

  user_tracer_ = tracer;
  shard_tracers_.clear();
  trace_remap_.clear();
  if (tracer == nullptr) {
    for (auto& host : hosts_) {
      host->AttachTracer(nullptr);
    }
    atm_switch_->AttachTracer(nullptr, 0);
    return;
  }

  // Flight-recorder mode cannot shard: the ring and its anomaly triggers
  // are properties of the merged global stream, so the per-shard recorders
  // below would each full-record the whole run (defeating the recorder's
  // bounded memory) only to trigger at merge time. Run captures serially.
  TCPLAT_CHECK(!tracer->flight_recorder_enabled())
      << "flight-recorder tracers are unsupported in sharded mode; run with "
         "shards = 0 to capture anomalies";

  // One private recorder per shard (a shared one would race across worker
  // threads), remapped to canonical ids registered on the user's tracer in
  // the serial order: hosts 0..N-1, then the switch.
  const size_t shards = static_cast<size_t>(engine_->shard_count());
  shard_tracers_.resize(shards);
  trace_remap_.assign(shards, {});
  for (auto& shard_tracer : shard_tracers_) {
    shard_tracer = std::make_unique<Tracer>();
    shard_tracer->set_enabled(tracer->enabled());
    // The shard recorders inherit the user tracer's recording mode, so each
    // worker encodes (and samples) locally with no cross-shard
    // synchronization; the flow sampler's hash verdicts agree across shards
    // by construction.
    if (tracer->binary_recording()) {
      shard_tracer->EnableBinaryRecording();
    }
    if (tracer->flow_reservoir()) {
      // Reservoir before plain sampling: a reservoir tracer reports
      // flow_sampling() too (it shares the sampler machinery).
      shard_tracer->EnableFlowReservoir(tracer->reservoir_k(), tracer->sample_config().seed);
    } else if (tracer->flow_sampling()) {
      shard_tracer->EnableFlowSampling(tracer->sample_config());
    }
    if (tracer->timeseries_enabled()) {
      shard_tracer->EnableTimeseries(tracer->timeseries_config());
    }
  }
  const auto remap = [&](size_t shard, uint8_t local, uint8_t canonical) {
    auto& table = trace_remap_[shard];
    if (table.size() <= local) {
      table.resize(static_cast<size_t>(local) + 1, 0);
    }
    table[local] = canonical;
  };
  for (int idx = 0; idx < host_count(); ++idx) {
    const auto shard = static_cast<size_t>(shard_of_host(idx));
    hosts_[static_cast<size_t>(idx)]->AttachTracer(shard_tracers_[shard].get());
    remap(shard, hosts_[static_cast<size_t>(idx)]->trace_id(),
          tracer->RegisterHost(hosts_[static_cast<size_t>(idx)]->name()));
  }
  const uint8_t local_switch = shard_tracers_[0]->RegisterHost("switch");
  atm_switch_->AttachTracer(shard_tracers_[0].get(), local_switch);
  remap(0, local_switch, tracer->RegisterHost("switch"));
}

void StarTestbed::MergeShardTraces() {
  if (user_tracer_ == nullptr || shard_tracers_.empty()) {
    return;
  }
  // Head-to-head merge in (timestamp, shard index, per-shard sequence)
  // order. For the ordinary timestamp-monotonic shard streams this is
  // exactly the old stable sort on timestamp (ties keep shard order); under
  // flow sampling a shard stream can emit a buffered chain prefix behind a
  // flow-agnostic anchor, and unlike a re-sort this merge preserves each
  // shard's within-chain order, which the causal-graph consumers rely on.
  // Either way the result is a pure function of the shard streams — never
  // of worker scheduling — so it is byte-identical across TCPLAT_JOBS.
  if (user_tracer_->binary_recording()) {
    std::vector<BinaryShardStream> streams;
    streams.reserve(shard_tracers_.size());
    for (size_t shard = 0; shard < shard_tracers_.size(); ++shard) {
      streams.push_back(
          BinaryShardStream{&shard_tracers_[shard]->binary_records(), &trace_remap_[shard]});
    }
    TCPLAT_CHECK(MergeBinaryShards(streams, user_tracer_->mutable_binary_records()))
        << "corrupt shard trace stream";
  } else {
    struct Head {
      const std::vector<TraceEvent>* events;
      size_t pos = 0;
    };
    std::vector<Head> heads;
    heads.reserve(shard_tracers_.size());
    for (const auto& shard_tracer : shard_tracers_) {
      heads.push_back(Head{&shard_tracer->events(), 0});
    }
    for (;;) {
      size_t best = heads.size();
      for (size_t shard = 0; shard < heads.size(); ++shard) {
        if (heads[shard].pos >= heads[shard].events->size()) {
          continue;
        }
        if (best == heads.size() ||
            (*heads[shard].events)[heads[shard].pos].ts_ns <
                (*heads[best].events)[heads[best].pos].ts_ns) {
          best = shard;
        }
      }
      if (best == heads.size()) {
        break;
      }
      TraceEvent ev = (*heads[best].events)[heads[best].pos++];
      ev.host = trace_remap_[best][ev.host];
      user_tracer_->Append(ev);
    }
  }
  // Timeseries points concatenate in shard order with hosts remapped; the
  // export-time stable sort on (ts, host) makes the result independent of
  // the shard layout, because a host's points stay contiguous and in push
  // order whatever shard it lived on.
  if (user_tracer_->timeseries_enabled()) {
    TimeseriesSampler* merged = user_tracer_->timeseries();
    for (size_t shard = 0; shard < shard_tracers_.size(); ++shard) {
      const TimeseriesSampler* src = shard_tracers_[shard]->timeseries();
      if (src == nullptr) {
        continue;
      }
      for (TimeseriesPoint p : src->points()) {
        p.host = trace_remap_[shard][p.host];
        merged->Append(p);
      }
    }
  }
  for (auto& shard_tracer : shard_tracers_) {
    user_tracer_->MergeSampleSets(*shard_tracer);
    user_tracer_->AddChildPeakBytes(shard_tracer->peak_memory_bytes());
    shard_tracer->Clear();
  }
  // Under reservoir sampling the shard merge can carry events of flows the
  // global bottom-K evicted (each shard keeps its local bottom-K, a superset
  // of the global set restricted to its flows); prune them now that the
  // merged kept set is final.
  user_tracer_->FinalizeReservoir();
}

void StarTestbed::ResetTrackers() {
  for (auto& host : hosts_) {
    host->tracker().Reset();
  }
}

SimDuration StarTestbed::SpanTotal(SpanId id) const {
  SimDuration total;
  for (const auto& host : hosts_) {
    total += host->tracker().total(id);
  }
  return total;
}

}  // namespace tcplat
