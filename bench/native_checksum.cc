// Host-native (google-benchmark) measurement of the four real copy/checksum
// routines the paper studies. The simulated benches report calibrated
// DECstation microseconds; this binary answers the modern question the
// paper's §4.1 raises — does integrating the checksum with the copy still
// beat separate passes on current hardware?

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/base/random.h"
#include "src/net/checksum.h"
#include "src/net/crc.h"

namespace tcplat {
namespace {

std::vector<uint8_t> MakeBuffer(size_t n) {
  Rng rng(12345);
  std::vector<uint8_t> buf(n);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return buf;
}

void BM_UltrixChecksum(benchmark::State& state) {
  const auto buf = MakeBuffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(UltrixChecksum(buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_OptimizedChecksum(benchmark::State& state) {
  const auto buf = MakeBuffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizedChecksum(buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_Memcpy(benchmark::State& state) {
  const auto src = MakeBuffer(static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> dst(src.size());
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), src.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_MemcpyThenChecksum(benchmark::State& state) {
  const auto src = MakeBuffer(static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> dst(src.size());
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), src.size());
    benchmark::DoNotOptimize(OptimizedChecksum(dst));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_IntegratedCopyChecksum(benchmark::State& state) {
  const auto src = MakeBuffer(static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> dst(src.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntegratedCopyChecksum(dst, src));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_Crc10(benchmark::State& state) {
  const auto buf = MakeBuffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc10(buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_Crc32(benchmark::State& state) {
  const auto buf = MakeBuffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

constexpr int64_t kSizes[] = {4, 20, 80, 200, 500, 1400, 4000, 8000};

void ApplySizes(benchmark::internal::Benchmark* b) {
  for (int64_t s : kSizes) {
    b->Arg(s);
  }
}

BENCHMARK(BM_UltrixChecksum)->Apply(ApplySizes);
BENCHMARK(BM_OptimizedChecksum)->Apply(ApplySizes);
BENCHMARK(BM_Memcpy)->Apply(ApplySizes);
BENCHMARK(BM_MemcpyThenChecksum)->Apply(ApplySizes);
BENCHMARK(BM_IntegratedCopyChecksum)->Apply(ApplySizes);
BENCHMARK(BM_Crc10)->Apply(ApplySizes);
BENCHMARK(BM_Crc32)->Apply(ApplySizes);

}  // namespace
}  // namespace tcplat

BENCHMARK_MAIN();
