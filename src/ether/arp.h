// ARP (RFC 826) — address resolution for the Ethernet baseline.
//
// The drivers ship with static bindings (the paper's two-host testbed needs
// nothing more), but a real 1994 segment resolved addresses dynamically:
// a broadcast who-has request, a unicast reply, a cache, and a short queue
// of packets waiting on resolution. EtherNetIf uses this module whenever a
// destination has no static binding.

#ifndef SRC_ETHER_ARP_H_
#define SRC_ETHER_ARP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "src/net/wire.h"

namespace tcplat {

inline constexpr uint16_t kEtherTypeArp = 0x0806;
inline constexpr size_t kArpPacketBytes = 28;
inline constexpr MacAddr kBroadcastMac = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};

enum class ArpOp : uint16_t { kRequest = 1, kReply = 2 };

struct ArpPacket {
  ArpOp op = ArpOp::kRequest;
  MacAddr sender_mac{};
  Ipv4Addr sender_ip = 0;
  MacAddr target_mac{};
  Ipv4Addr target_ip = 0;

  std::vector<uint8_t> Serialize() const;
  static std::optional<ArpPacket> Parse(std::span<const uint8_t> in);
};

struct ArpStats {
  uint64_t requests_sent = 0;
  uint64_t requests_received = 0;
  uint64_t replies_sent = 0;
  uint64_t replies_received = 0;
  uint64_t resolutions = 0;
  uint64_t timeouts = 0;       // pending packets dropped unresolved
  uint64_t queue_drops = 0;    // pending queue overflow
};

// Resolution cache plus the per-destination pending-packet queues. The
// driver owns one and supplies the wire I/O.
class ArpCache {
 public:
  static constexpr size_t kMaxPendingPerAddr = 8;

  // Static or learned binding.
  void Insert(Ipv4Addr ip, const MacAddr& mac) { entries_[ip] = mac; }
  std::optional<MacAddr> Lookup(Ipv4Addr ip) const;
  bool Contains(Ipv4Addr ip) const { return entries_.count(ip) != 0; }

  // Queues a packet (flat bytes) awaiting resolution of `ip`. Returns false
  // (dropping is the caller's job) when the queue is full.
  bool Enqueue(Ipv4Addr ip, std::vector<uint8_t> packet);
  // Removes and returns everything queued for `ip`.
  std::vector<std::vector<uint8_t>> TakePending(Ipv4Addr ip);
  bool HasPending(Ipv4Addr ip) const { return pending_.count(ip) != 0; }
  size_t PendingCount(Ipv4Addr ip) const;

 private:
  std::map<Ipv4Addr, MacAddr> entries_;
  std::map<Ipv4Addr, std::deque<std::vector<uint8_t>>> pending_;
};

}  // namespace tcplat

#endif  // SRC_ETHER_ARP_H_
