#include "src/fault/scenario.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"

namespace tcplat {
namespace {

// Golden-ratio mixing keeps per-direction streams decorrelated even for
// adjacent scenario seeds.
constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;

}  // namespace

TestbedImpairment::TestbedImpairment(Testbed& testbed, const ImpairmentConfig& config)
    : testbed_(&testbed) {
  auto make = [&](const char* name, uint64_t salt) {
    ImpairmentConfig c = config;
    c.seed = config.seed + salt * kSeedMix;
    links_.push_back({name, std::make_unique<ImpairmentPolicy>(c)});
    return links_.back().policy.get();
  };

  if (testbed.config().network == NetworkKind::kAtm) {
    testbed.atm_link()->dir(0).set_impairment(make("c2s", 1));
    testbed.atm_link()->dir(1).set_impairment(make("s2c", 2));
    link("c2s")->RegisterMetrics(testbed.client_host().metrics(), "c2s");
    link("s2c")->RegisterMetrics(testbed.server_host().metrics(), "s2c");
    if (testbed.atm_switch() != nullptr) {
      testbed.atm_switch()->set_output_impairment(make("fabric", 3));
      // The switch has no host; its counters ride on the client's registry.
      link("fabric")->RegisterMetrics(testbed.client_host().metrics(), "fabric");
    }
  } else {
    testbed.ether_segment()->set_impairment(make("bus", 1));
    link("bus")->RegisterMetrics(testbed.client_host().metrics(), "bus");
  }
}

TestbedImpairment::~TestbedImpairment() {
  if (testbed_->config().network == NetworkKind::kAtm) {
    testbed_->atm_link()->dir(0).set_impairment(nullptr);
    testbed_->atm_link()->dir(1).set_impairment(nullptr);
    if (testbed_->atm_switch() != nullptr) {
      testbed_->atm_switch()->set_output_impairment(nullptr);
    }
  } else {
    testbed_->ether_segment()->set_impairment(nullptr);
  }
}

ImpairmentPolicy* TestbedImpairment::link(std::string_view name) {
  for (auto& l : links_) {
    if (l.name == name) {
      return l.policy.get();
    }
  }
  return nullptr;
}

void TestbedImpairment::AttachTracer(Tracer* tracer) {
  for (auto& l : links_) {
    if (tracer != nullptr) {
      l.policy->AttachTracer(tracer, tracer->RegisterHost("link:" + l.name));
    } else {
      l.policy->AttachTracer(nullptr, 0);
    }
  }
}

ImpairmentStats TestbedImpairment::TotalStats() const {
  ImpairmentStats total;
  for (const auto& l : links_) {
    total += l.policy->stats();
  }
  return total;
}

LossScenarioResult RunLossScenario(const LossScenarioConfig& config) {
  TestbedConfig tb_cfg;
  tb_cfg.network = config.network;
  tb_cfg.switched = config.switched;
  tb_cfg.tcp.checksum = config.checksum;
  tb_cfg.seed = config.seed;
  Testbed tb(tb_cfg);

  ImpairmentConfig imp_cfg = config.impairment;
  imp_cfg.seed = config.seed * 1000003ull + config.impairment.seed;
  TestbedImpairment impairment(tb, imp_cfg);

  Tracer tracer;
  if (config.capture_observability) {
    tb.AttachTracer(&tracer);
    impairment.AttachTracer(&tracer);
  }

  RpcOptions rpc;
  rpc.size = config.size;
  rpc.iterations = config.iterations;
  rpc.warmup = config.warmup;
  rpc.verify_data = true;
  rpc.tolerate_errors = true;

  LossScenarioResult out;
  out.rpc = RunRpcBenchmark(tb, rpc);
  out.link = impairment.TotalStats();
  out.retransmits = out.rpc.client_tcp.retransmits + out.rpc.server_tcp.retransmits;
  out.rexmt_timeouts = out.rpc.client_tcp.rexmt_timeouts + out.rpc.server_tcp.rexmt_timeouts;
  out.completed = !out.rpc.aborted &&
                  out.rpc.rtt.count() == static_cast<uint64_t>(config.iterations);
  out.mean_rtt_us = out.rpc.MeanRtt().micros();
  out.p99_rtt_us = out.rpc.rtt.Percentile(99).micros();
  const double measured_s = out.rpc.rtt.sum().micros() / 1e6;
  if (measured_s > 0) {
    // Application payload crosses the network twice per echo.
    const double bits =
        static_cast<double>(out.rpc.rtt.count()) * static_cast<double>(config.size) * 8.0 * 2.0;
    out.goodput_mbps = bits / measured_s / 1e6;
  }

  if (config.capture_observability) {
    out.trace_csv = tracer.ToCsv();
    out.metrics_json = "{\"client\":" + tb.client_host().metrics().ToJson() +
                       ",\"server\":" + tb.server_host().metrics().ToJson() + "}";
  }
  if (config.capture_observability) {
    tb.AttachTracer(nullptr);
    impairment.AttachTracer(nullptr);
  }
  return out;
}

std::string LossScenarioRow(const LossScenarioConfig& config, const LossScenarioResult& result,
                            double baseline_rtt_us) {
  const double drop_pct =
      result.link.offered == 0
          ? 0.0
          : 100.0 * static_cast<double>(result.link.dropped) /
                static_cast<double>(result.link.offered);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%7zu  %10" PRIu64 "  %8" PRIu64 " (%6.3f%%)  %6" PRIu64 "  %8" PRIu64
                "  %9.3f  %10.1f  %10.1f",
                config.size, result.link.offered, result.link.dropped, drop_pct,
                result.retransmits, result.rexmt_timeouts, result.goodput_mbps,
                result.mean_rtt_us, result.p99_rtt_us);
  std::string row = buf;
  if (baseline_rtt_us > 0) {
    std::snprintf(buf, sizeof(buf), "  %7.2fx", result.mean_rtt_us / baseline_rtt_us);
    row += buf;
  }
  row += result.completed ? "  ok" : "  DEAD";
  return row;
}

}  // namespace tcplat
