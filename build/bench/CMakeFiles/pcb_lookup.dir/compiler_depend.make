# Empty compiler generated dependencies file for pcb_lookup.
# This may be replaced when dependencies are built.
