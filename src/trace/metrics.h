// Named metrics: counters, gauges, and log-bucketed histograms.
//
// Every per-layer stats struct in the stack (TcpStats, IpStats, MbufStats,
// ...) is a plain value type so benchmarks can snapshot and reset it by
// assignment. A MetricsRegistry overlays a flat, enumerable namespace on
// those live structs: each field is registered once, by name, as a *view*
// (a pointer into the struct), and the registry can also own standalone
// counters/gauges/histograms for quantities no struct records (queue wait
// distributions, payload size distributions). One registry per host; export
// is a deterministic name-sorted snapshot in JSON or CSV.
//
// Naming convention: lowercase dotted paths, "<layer>.<metric>", e.g.
// "tcp.segs_sent", "ip.ipq_wait_ns", "mbuf.cluster_allocs". Histogram
// metrics that record durations end in "_ns".

#ifndef SRC_TRACE_METRICS_H_
#define SRC_TRACE_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tcplat {

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t d) { value_ += d; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

// Power-of-two bucketed histogram for non-negative samples. Bucket 0 holds
// value 0; bucket i (i >= 1) holds values in [2^(i-1), 2^i). 64 buckets
// cover the full int64 range.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  static int BucketIndex(int64_t v);
  // Inclusive lower bound of bucket i.
  static int64_t BucketLowerBound(int i);

  void Add(int64_t v);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  uint64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }
  // Upper bound (exclusive) of the bucket containing the nearest-rank
  // p-th percentile sample; 0 when empty. Resolution is the bucket width.
  int64_t PercentileUpperBound(double p) const;

  void Reset();

 private:
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Owned metrics, created on first use. The returned reference is stable
  // for the registry's lifetime; hot paths should cache it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Views over fields of live stats structs. The pointee must outlive the
  // registry (stats structs are members of their stack objects, which they
  // do). Registering a name twice is a CHECK failure.
  void AddCounterView(std::string_view name, const uint64_t* value);
  void AddGaugeView(std::string_view name, const int64_t* value);

  struct Sample {
    std::string_view name;
    std::string_view type;  // "counter" | "gauge" | "histogram"
    int64_t value = 0;      // counter/gauge value; histogram count
    const Histogram* hist = nullptr;
  };
  // Name-sorted (deterministic) snapshot of every registered metric.
  std::vector<Sample> Snapshot() const;

  std::string ToJson() const;
  std::string ToCsv() const;

  size_t size() const { return entries_.size(); }
  bool contains(std::string_view name) const { return entries_.find(name) != entries_.end(); }

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    const uint64_t* counter_view = nullptr;
    const int64_t* gauge_view = nullptr;
  };
  Entry& NewEntry(std::string_view name);

  // std::map: iteration order is the export order, so it must be sorted.
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace tcplat

#endif  // SRC_TRACE_METRICS_H_
