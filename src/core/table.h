// Minimal fixed-width table printer for the bench binaries, so every
// regenerated table looks like the paper's.

#ifndef SRC_CORE_TABLE_H_
#define SRC_CORE_TABLE_H_

#include <string>
#include <vector>

namespace tcplat {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Renders with columns padded to their widest cell, a rule under the
  // header, and two spaces between columns.
  std::string ToString() const;
  void Print() const;  // ToString() to stdout

  // Comma-separated rendering (header row first) for plotting pipelines.
  // Cells containing commas or quotes are quoted per RFC 4180.
  std::string ToCsv() const;

  // Formatting helpers.
  static std::string Us(double microseconds, int precision = 0);
  static std::string Pct(double percent, int precision = 0);
  static std::string Num(double v, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcplat

#endif  // SRC_CORE_TABLE_H_
