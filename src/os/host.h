// The simulated host operating system.
//
// A Host bundles one CPU (with its cost profile and span tracker), an mbuf
// pool, and a small ULTRIX-shaped kernel: user processes with sleep/wakeup,
// a software-interrupt level for network input (netisr), and callout timers.
//
// Execution model (see src/cpu/cpu.h): every activity — process resumption,
// softint, device interrupt handler, callout — runs to completion on the
// host CPU, charging calibrated virtual time. The scheduler's contribution
// to latency is explicit: waking a process costs wakeup_ctx_switch (the
// paper's Wakeup row) and dispatching the netisr costs softint_dispatch
// (the floor of the paper's IPQ row).

#ifndef SRC_OS_HOST_H_
#define SRC_OS_HOST_H_

#include <coroutine>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/buf/mbuf.h"
#include "src/cpu/cpu.h"
#include "src/os/task.h"
#include "src/sim/simulator.h"
#include "src/trace/metrics.h"
#include "src/trace/span.h"
#include "src/trace/tracer.h"

namespace tcplat {

class Host;

// A queue of processes sleeping on some condition (a BSD sleep channel).
class WaitChannel {
 public:
  bool empty() const { return waiters_.empty(); }

 private:
  friend class Host;
  friend struct BlockAwaiter;
  std::vector<class Process*> waiters_;
};

enum class ProcessState { kNew, kRunnable, kRunning, kBlocked, kDone };

class Process {
 public:
  const std::string& name() const { return name_; }
  ProcessState state() const { return state_; }
  Host& host() { return *host_; }

 private:
  friend class Host;
  friend struct BlockAwaiter;
  friend struct SleepAwaiter;
  Process(Host* host, std::string name, SimTask task)
      : host_(host), name_(std::move(name)), task_(std::move(task)) {}

  Host* host_;
  std::string name_;
  SimTask task_;
  std::coroutine_handle<> continuation_;
  ProcessState state_ = ProcessState::kNew;
  SimTime wakeup_issued_at_;
  bool charge_wakeup_ = false;
};

class Host {
 public:
  Host(Simulator* sim, std::string name, CostProfile profile);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  Simulator& sim() { return *sim_; }
  Cpu& cpu() { return cpu_; }
  MbufPool& pool() { return pool_; }
  SpanTracker& tracker() { return tracker_; }
  MetricsRegistry& metrics() { return metrics_; }

  // --- packet-lifecycle tracing ---

  // Registers this host with `tracer` and mirrors span tracking plus every
  // TracePacket call into it. Pass nullptr to detach.
  void AttachTracer(Tracer* tracer);
  Tracer* tracer() const {
#ifdef TCPLAT_NO_TRACE_HOOKS
    return nullptr;  // folds every hook site to dead code
#else
    return tracer_;
#endif
  }
  uint8_t trace_id() const { return trace_id_; }

  // The one-line hook used by the protocol layers: a single pointer test
  // when no tracer is attached.
  void TracePacket(TraceLayer layer, TraceEventKind kind, uint64_t flow = 0,
                   uint64_t packet = 0, uint64_t bytes = 0, SimDuration dur = SimDuration()) {
    if (Tracer* t = tracer(); t != nullptr) [[unlikely]] {
      t->RecordPacket(trace_id_, layer, kind, CurrentTime(), flow, packet, bytes, dur);
    }
  }

  // Timeseries hooks (src/trace/timeseries.h), same cost model as
  // TracePacket: one pointer test when no tracer is attached, one extra
  // null test when the attached tracer has no timeseries plane.
  void TraceSample(TsMetric metric, uint64_t key, int64_t value) {
    if (Tracer* t = tracer(); t != nullptr) [[unlikely]] {
      t->RecordSample(trace_id_, metric, key, CurrentTime(), value);
    }
  }
  void TraceSampleEdge(TsMetric metric, uint64_t key, int64_t value) {
    if (Tracer* t = tracer(); t != nullptr) [[unlikely]] {
      t->RecordSampleEdge(trace_id_, metric, key, CurrentTime(), value);
    }
  }

  // The current time as visible to code on this host: the CPU cursor during
  // a run, the global simulation clock otherwise.
  SimTime CurrentTime() const;

  // --- processes ---

  // Creates a process around `task` and schedules its first run at the
  // current time. The Host owns the Process.
  Process* Spawn(std::string name, SimTask task);

  // The process currently executing on this host's CPU (null outside
  // process context).
  Process* current_process() const { return current_; }

  // Wakes every process sleeping on `chan` (BSD wakeup()); each will resume
  // after the wakeup_ctx_switch cost. Safe to call from any context.
  void Wakeup(WaitChannel& chan);

  // Awaitable: block the current process on `chan` until Wakeup.
  auto Block(WaitChannel& chan);

  // Awaitable: block the current process for `d` of virtual time.
  auto SleepFor(SimDuration d);

  // --- software interrupts ---

  // Installs the network software-interrupt handler (ipintr).
  void RegisterNetisr(std::function<void()> handler);

  // Requests a netisr dispatch (schednetisr). Idempotent while one is
  // pending.
  void RaiseNetisr();

  // --- callouts ---

  // Runs `fn` (inside a CPU run) after `d` of virtual time. Returns an id
  // that CancelCallout accepts.
  EventId After(SimDuration d, std::function<void()> fn);
  bool CancelCallout(EventId id);

  // Runs `fn` inside a CPU run as a device interrupt handler at the current
  // simulation time, charging interrupt entry cost first. Must be called
  // from event context (not during another run on this host).
  void RunAsInterrupt(const std::function<void()>& fn);

 private:
  friend struct BlockAwaiter;
  friend struct SleepAwaiter;

  void ScheduleResume(Process* p, SimTime at, bool charge_wakeup);
  void ResumeProcess(Process* p, SimTime request_time);

  Simulator* sim_;
  std::string name_;
  Cpu cpu_;
  MbufPool pool_;
  SpanTracker tracker_;
  MetricsRegistry metrics_;
  Tracer* tracer_ = nullptr;
  uint8_t trace_id_ = 0;

  std::vector<std::unique_ptr<Process>> processes_;
  Process* current_ = nullptr;

  std::function<void()> netisr_;
  bool netisr_pending_ = false;
  SimTime netisr_raised_at_;
};

// --- awaitable implementations (must be visible to co_await sites) ---

struct BlockAwaiter {
  Host* host;
  WaitChannel* chan;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

struct SleepAwaiter {
  Host* host;
  SimDuration delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

inline auto Host::Block(WaitChannel& chan) { return BlockAwaiter{this, &chan}; }
inline auto Host::SleepFor(SimDuration d) { return SleepAwaiter{this, d}; }

}  // namespace tcplat

#endif  // SRC_OS_HOST_H_
