#include "src/trace/tracer.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/check.h"

namespace tcplat {
namespace {

// Perfetto timestamps are microseconds; emit them as exact fixed-point
// strings (ns resolution) so traces are byte-stable across platforms.
void AppendMicros(std::string* out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
  out->append(buf);
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

// Track (Perfetto tid) layout within each host's process.
constexpr int kTidSpans = 0;      // nested B/E charge-attributed spans
constexpr int kTidIntervals = 1;  // wall-interval spans (X events)
constexpr int kTidPackets = 2;    // packet-lifecycle instants

}  // namespace

std::string_view TraceLayerName(TraceLayer layer) {
  switch (layer) {
    case TraceLayer::kSock:
      return "sock";
    case TraceLayer::kTcp:
      return "tcp";
    case TraceLayer::kIp:
      return "ip";
    case TraceLayer::kAtm:
      return "atm";
    case TraceLayer::kEther:
      return "ether";
    case TraceLayer::kLink:
      return "link";
    case TraceLayer::kSched:
      return "sched";
  }
  return "?";
}

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSpanBegin:
      return "span.begin";
    case TraceEventKind::kSpanEnd:
      return "span.end";
    case TraceEventKind::kSpanInterval:
      return "span.interval";
    case TraceEventKind::kSpanReset:
      return "span.reset";
    case TraceEventKind::kUserWrite:
      return "user.write";
    case TraceEventKind::kUserRead:
      return "user.read";
    case TraceEventKind::kWakeup:
      return "wakeup";
    case TraceEventKind::kSegTx:
      return "seg.tx";
    case TraceEventKind::kSegRx:
      return "seg.rx";
    case TraceEventKind::kRetransmit:
      return "retransmit";
    case TraceEventKind::kAck:
      return "ack";
    case TraceEventKind::kChecksumError:
      return "checksum.error";
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kEnqueue:
      return "enqueue";
    case TraceEventKind::kDequeue:
      return "dequeue";
    case TraceEventKind::kPktTx:
      return "pkt.tx";
    case TraceEventKind::kPktRx:
      return "pkt.rx";
    case TraceEventKind::kPduTx:
      return "pdu.tx";
    case TraceEventKind::kPduRx:
      return "pdu.rx";
    case TraceEventKind::kCellDrop:
      return "cell.drop";
    case TraceEventKind::kTxStall:
      return "tx.stall";
    case TraceEventKind::kCellSwitch:
      return "cell.switch";
    case TraceEventKind::kFrameTx:
      return "frame.tx";
    case TraceEventKind::kFrameRx:
      return "frame.rx";
    case TraceEventKind::kImpairDrop:
      return "impair.drop";
    case TraceEventKind::kImpairDup:
      return "impair.dup";
    case TraceEventKind::kImpairDelay:
      return "impair.delay";
  }
  return "?";
}

uint8_t Tracer::RegisterHost(std::string name) {
  TCPLAT_CHECK_LT(host_names_.size(), 255u) << "too many traced hosts";
  host_names_.push_back(std::move(name));
  return static_cast<uint8_t>(host_names_.size() - 1);
}

std::array<int64_t, static_cast<size_t>(SpanId::kCount)> Tracer::SpanSelfTotalsNanos(
    uint8_t host) const {
  std::array<int64_t, static_cast<size_t>(SpanId::kCount)> totals{};
  for (const TraceEvent& ev : events_) {
    if (ev.host != host) {
      continue;
    }
    switch (ev.kind) {
      case TraceEventKind::kSpanReset:
        totals.fill(0);
        break;
      case TraceEventKind::kSpanEnd:
        totals[static_cast<size_t>(ev.span)] += ev.self_ns;
        break;
      case TraceEventKind::kSpanInterval:
        totals[static_cast<size_t>(ev.span)] += ev.dur_ns;
        break;
      default:
        break;
    }
  }
  return totals;
}

std::string Tracer::ToPerfettoJson() const {
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

  char buf[256];
  bool first = true;
  auto comma = [&] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };

  for (size_t pid = 0; pid < host_names_.size(); ++pid) {
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"args\":{\"name\":\"";
    AppendEscaped(&out, host_names_[pid]);
    out += "\"}}";
    static constexpr std::string_view kTrackNames[] = {"spans", "intervals", "packets"};
    for (int tid = 0; tid < 3; ++tid) {
      comma();
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%zu,\"tid\":%d,"
                    "\"args\":{\"name\":\"%s\"}}",
                    pid, tid, std::string(kTrackNames[tid]).c_str());
      out += buf;
    }
  }

  for (const TraceEvent& ev : events_) {
    comma();
    const int pid = ev.host;
    switch (ev.kind) {
      case TraceEventKind::kSpanBegin:
        std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":",
                      std::string(SpanName(ev.span)).c_str(), pid, kTidSpans);
        out += buf;
        AppendMicros(&out, ev.ts_ns);
        out += "}";
        break;
      case TraceEventKind::kSpanEnd:
        std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":",
                      std::string(SpanName(ev.span)).c_str(), pid, kTidSpans);
        out += buf;
        AppendMicros(&out, ev.ts_ns);
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"self_ns\":%" PRId64 "}}", ev.self_ns);
        out += buf;
        break;
      case TraceEventKind::kSpanInterval:
        std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":",
                      std::string(SpanName(ev.span)).c_str(), pid, kTidIntervals);
        out += buf;
        AppendMicros(&out, ev.ts_ns - ev.dur_ns);
        out += ",\"dur\":";
        AppendMicros(&out, ev.dur_ns);
        out += "}";
        break;
      case TraceEventKind::kSpanReset:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"span.reset\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                      "\"ts\":",
                      pid, kTidSpans);
        out += buf;
        AppendMicros(&out, ev.ts_ns);
        out += "}";
        break;
      default:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s.%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":",
                      std::string(TraceLayerName(ev.layer)).c_str(),
                      std::string(TraceEventKindName(ev.kind)).c_str(), pid, kTidPackets);
        out += buf;
        AppendMicros(&out, ev.ts_ns);
        std::snprintf(buf, sizeof(buf),
                      ",\"args\":{\"flow\":%" PRIu64 ",\"packet\":%" PRIu64 ",\"bytes\":%" PRIu64
                      ",\"dur_ns\":%" PRId64 "}}",
                      ev.flow, ev.packet, ev.bytes, ev.dur_ns);
        out += buf;
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::ToCsv() const {
  std::string out = "ts_ns,host,layer,kind,span,dur_ns,self_ns,flow,packet,bytes\n";
  out.reserve(out.size() + events_.size() * 64);
  char buf[256];
  for (const TraceEvent& ev : events_) {
    const bool is_span = ev.kind == TraceEventKind::kSpanBegin ||
                         ev.kind == TraceEventKind::kSpanEnd ||
                         ev.kind == TraceEventKind::kSpanInterval;
    std::snprintf(buf, sizeof(buf),
                  "%" PRId64 ",%s,%s,%s,%s,%" PRId64 ",%" PRId64 ",%" PRIu64 ",%" PRIu64
                  ",%" PRIu64 "\n",
                  ev.ts_ns,
                  ev.host < host_names_.size() ? host_names_[ev.host].c_str() : "?",
                  std::string(TraceLayerName(ev.layer)).c_str(),
                  std::string(TraceEventKindName(ev.kind)).c_str(),
                  is_span ? std::string(SpanName(ev.span)).c_str() : "",
                  ev.dur_ns, ev.self_ns, ev.flow, ev.packet, ev.bytes);
    out += buf;
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(path.c_str());
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "short write: %s\n", path.c_str());
  }
  return ok;
}

}  // namespace tcplat
