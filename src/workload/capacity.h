// Capacity-curve cells: one (topology × discipline × flow count × stack
// config) point, run on a fresh StarTestbed. Shared by bench/capacity and
// the workload determinism tests so both format byte-identical rows.

#ifndef SRC_WORKLOAD_CAPACITY_H_
#define SRC_WORKLOAD_CAPACITY_H_

#include <string>
#include <vector>

#include "src/workload/flow_driver.h"
#include "src/workload/generator.h"
#include "src/workload/star_testbed.h"

namespace tcplat {

enum class LoadDiscipline { kClosedLoop, kOpenLoop, kIncast };

struct CapacityCell {
  NetworkKind network = NetworkKind::kAtm;
  int clients = 4;
  int servers = 2;
  int flows = 1;
  size_t size = 200;
  int iterations = 50;
  int warmup = 8;
  bool header_prediction = true;
  ChecksumMode checksum = ChecksumMode::kStandard;
  LoadDiscipline discipline = LoadDiscipline::kClosedLoop;
  SimDuration think_time;         // closed-loop only
  SimDuration mean_interarrival;  // open-loop only (zero = 500 us default)
  uint64_t seed = 1;
  // Host shards for the conservative-lookahead parallel engine; 0 = serial
  // (see StarTestbedConfig::shards). Thread count comes from TCPLAT_JOBS
  // unless shard_threads pins it; neither ever changes the row bytes.
  int shards = 0;
  unsigned shard_threads = 0;
};

struct CapacityOutcome {
  uint64_t samples = 0;  // measured round trips across all flows
  SimDuration mean;
  SimDuration p50;
  SimDuration p99;
  uint64_t completed = 0;
  uint64_t aborted = 0;
  size_t max_concurrent = 0;
  double goodput_mbps = 0;  // echoed payload bits per simulated second
  SimDuration sim_elapsed;  // simulated time the whole run took
  uint64_t sim_events = 0;  // events the simulator dispatched
};

// Builds a fresh star testbed for the cell, runs its workload to
// completion, and reduces the per-flow stats. The second overload attaches
// `tracer` to every host and the switch before running, so the cell's full
// event stream is available for causal-graph attribution afterwards.
CapacityOutcome RunCapacityCell(const CapacityCell& cell);
CapacityOutcome RunCapacityCell(const CapacityCell& cell, Tracer* tracer);

// Table formatting shared by the bench binary and the determinism tests.
// Only simulated quantities appear — never wall-clock — so the rows are
// byte-identical across job counts and repeated runs.
std::vector<std::string> CapacityHeader();
std::vector<std::string> CapacityRow(const CapacityCell& cell, const CapacityOutcome& out);

}  // namespace tcplat

#endif  // SRC_WORKLOAD_CAPACITY_H_
