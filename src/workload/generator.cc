#include "src/workload/generator.h"

#include <cmath>

#include "src/base/check.h"
#include "src/base/random.h"

namespace tcplat {

std::vector<FlowSpec> BuildClosedLoop(const ClosedLoopConfig& config) {
  TCPLAT_CHECK_GT(config.flows, 0);
  TCPLAT_CHECK_GT(config.clients, 0);
  TCPLAT_CHECK_GT(config.servers, 0);
  std::vector<FlowSpec> specs;
  specs.reserve(static_cast<size_t>(config.flows));
  for (int f = 0; f < config.flows; ++f) {
    FlowSpec spec;
    spec.client = f % config.clients;
    spec.server = f % config.servers;
    spec.size = config.size;
    spec.iterations = config.iterations;
    spec.warmup = config.warmup;
    spec.think_time = config.think_time;
    specs.push_back(spec);
  }
  return specs;
}

std::vector<FlowSpec> BuildOpenLoop(const OpenLoopConfig& config) {
  TCPLAT_CHECK_GT(config.flows, 0);
  TCPLAT_CHECK_GT(config.mean_interarrival.nanos(), 0);
  Rng rng(config.seed);
  std::vector<FlowSpec> specs;
  specs.reserve(static_cast<size_t>(config.flows));
  int64_t arrival_ns = 0;
  for (int f = 0; f < config.flows; ++f) {
    arrival_ns += static_cast<int64_t>(std::llround(
        rng.NextExponential(static_cast<double>(config.mean_interarrival.nanos()))));
    FlowSpec spec;
    spec.client = f % config.clients;
    spec.server = f % config.servers;
    spec.size = config.size;
    spec.iterations = config.iterations;
    spec.warmup = config.warmup;
    spec.start_delay = SimDuration::FromNanos(arrival_ns);
    specs.push_back(spec);
  }
  return specs;
}

std::vector<FlowSpec> BuildIncast(int flows, int clients, size_t size, int iterations,
                                  int warmup) {
  ClosedLoopConfig config;
  config.flows = flows;
  config.clients = clients;
  config.servers = 1;
  config.size = size;
  config.iterations = iterations;
  config.warmup = warmup;
  return BuildClosedLoop(config);
}

std::vector<FlowSpec> BuildAllToAll(int clients, int servers, size_t size, int iterations,
                                    int warmup) {
  TCPLAT_CHECK_GT(clients, 0);
  TCPLAT_CHECK_GT(servers, 0);
  std::vector<FlowSpec> specs;
  specs.reserve(static_cast<size_t>(clients) * static_cast<size_t>(servers));
  for (int c = 0; c < clients; ++c) {
    for (int s = 0; s < servers; ++s) {
      FlowSpec spec;
      spec.client = c;
      spec.server = s;
      spec.size = size;
      spec.iterations = iterations;
      spec.warmup = warmup;
      specs.push_back(spec);
    }
  }
  return specs;
}

std::vector<FlowSpec> BuildProbeMix(const ProbeMixConfig& config) {
  TCPLAT_CHECK_GE(config.bulk_flows, 0);
  std::vector<FlowSpec> specs;
  FlowSpec probe;
  probe.client = 0;
  probe.server = 0;
  probe.size = config.probe_size;
  probe.iterations = config.probe_iterations;
  probe.warmup = config.probe_warmup;
  specs.push_back(probe);
  for (int f = 0; f < config.bulk_flows; ++f) {
    FlowSpec bulk;
    bulk.client = f % config.clients;
    bulk.server = f % config.servers;
    bulk.size = config.bulk_size;
    bulk.iterations = config.bulk_iterations;
    bulk.warmup = 0;
    bulk.verify_data = false;
    specs.push_back(bulk);
  }
  return specs;
}

}  // namespace tcplat
