// Human-readable renderings of the per-layer statistics structs — netstat
// for the simulated stack. Used by examples and by post-mortem debugging;
// each Dump* returns a compact multi-line block and omits all-zero rows.

#ifndef SRC_CORE_STATS_REPORT_H_
#define SRC_CORE_STATS_REPORT_H_

#include <string>

#include "src/buf/mbuf.h"
#include "src/core/testbed.h"
#include "src/ip/ip_stack.h"
#include "src/tcp/tcp_stack.h"
#include "src/udp/udp.h"

namespace tcplat {

std::string DumpTcpStats(const TcpStats& s);
std::string DumpIpStats(const IpStats& s);
std::string DumpUdpStats(const UdpStats& s);
std::string DumpMbufStats(const MbufStats& s);

// Everything about one host's stack, netstat-style.
std::string DumpHostReport(const std::string& name, const TcpStats& tcp, const IpStats& ip,
                           const UdpStats& udp, const MbufStats& mbufs);

// Both hosts of a testbed.
std::string DumpTestbedReport(Testbed& testbed);

}  // namespace tcplat

#endif  // SRC_CORE_STATS_REPORT_H_
