// Physical link models.
//
// A Wire serializes transmission units (ATM cells, Ethernet frames) at a
// fixed bit rate with a fixed propagation delay, delivering the actual bytes
// to the receiver's callback. An optional corruption hook lets the fault
// module flip bits in flight (§4.2.1 error-source experiments).
//
// Two topologies are provided:
//  * Duplex  — two independent directions (the point-to-point TAXI fiber
//              between the FORE adapters).
//  * SharedBus — one half-duplex medium with an enforced inter-unit gap
//              (the 10 Mbit/s Ethernet baseline).

#ifndef SRC_LINK_WIRE_H_
#define SRC_LINK_WIRE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace tcplat {

// Invoked at arrival time with the (possibly corrupted) unit bytes.
using DeliverFn = std::function<void(SimTime arrival, std::vector<uint8_t> data)>;
// May mutate the bytes of a unit in flight.
using CorruptFn = std::function<void(std::vector<uint8_t>& data)>;
// Pre-delivery fate hook: return true to discard the unit in flight. Runs
// after the corruption hook (corrupt-then-drop), so fault injectors compose
// without hand-rolled plumbing in each owner.
using DropFn = std::function<bool(const std::vector<uint8_t>& data)>;

// Per-link impairment policy: consulted once per transmitted unit, after the
// corrupt/drop hooks, to decide loss, duplication, and added delay. The
// concrete seeded policy lives in src/fault/impairment.h; this interface
// keeps the link layer free of any dependency on the fault module.
class LinkImpairment {
 public:
  struct Verdict {
    bool drop = false;       // discard the unit in flight
    bool duplicate = false;  // deliver a second copy
    SimDuration extra_delay;      // added to this unit's arrival time
    SimDuration duplicate_lag;    // duplicate arrives this much after the original
  };

  virtual ~LinkImpairment() = default;

  // `departure` is the time the last bit leaves the sender.
  virtual Verdict OnTransmit(SimTime departure, const std::vector<uint8_t>& data) = 0;
};

// One direction of a serial medium.
class Wire {
 public:
  // `gap_bytes` is per-unit wire overhead serialized but not delivered
  // (preamble, interframe gap, HEC idle...).
  Wire(Simulator* sim, double bits_per_second, SimDuration propagation, size_t gap_bytes = 0);

  // Queues `data` for transmission no earlier than `earliest` (and not
  // before previously queued units finish). Returns the time the last bit
  // leaves the sender; the receiver callback fires at that time plus the
  // propagation delay.
  SimTime Transmit(SimTime earliest, std::vector<uint8_t> data, DeliverFn deliver);

  // Time the medium becomes free.
  SimTime free_at() const { return busy_until_; }

  SimDuration SerializationDelay(size_t bytes) const;

  void set_corrupt_hook(CorruptFn hook) { corrupt_ = std::move(hook); }
  void set_drop_hook(DropFn hook) { drop_ = std::move(hook); }

  // `impairment` must outlive the wire (or be detached with nullptr). A null
  // policy costs one pointer test per unit — zero-overhead when off.
  void set_impairment(LinkImpairment* impairment) { impairment_ = impairment; }
  LinkImpairment* impairment() const { return impairment_; }

  // When set, this wire crosses a shard boundary: deliveries are posted to
  // `channel` (buffered until the engine's next window barrier) instead of
  // being scheduled on the local simulator. Serialization, hooks, and
  // impairment all still run on the sending side — only the final delivery
  // callback crosses. The channel must outlive the wire.
  void set_shard_channel(DeliveryChannel* channel) { shard_channel_ = channel; }
  DeliveryChannel* shard_channel() const { return shard_channel_; }

  uint64_t units_sent() const { return units_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  // Units consumed in flight by the drop hook or the impairment policy.
  uint64_t units_dropped() const { return units_dropped_; }

 private:
  // Schedules the delivery callback locally or posts it across the shard
  // boundary, depending on whether a shard channel is attached.
  void ScheduleDelivery(SimTime arrival, std::vector<uint8_t> data, DeliverFn deliver);

  Simulator* sim_;
  double bits_per_second_;
  SimDuration propagation_;
  size_t gap_bytes_;
  SimTime busy_until_;
  CorruptFn corrupt_;
  DropFn drop_;
  LinkImpairment* impairment_ = nullptr;
  DeliveryChannel* shard_channel_ = nullptr;
  uint64_t units_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t units_dropped_ = 0;
};

// A full-duplex point-to-point link: direction 0 is a->b, 1 is b->a.
class DuplexLink {
 public:
  DuplexLink(Simulator* sim, double bits_per_second, SimDuration propagation,
             size_t gap_bytes = 0)
      : dirs_{Wire(sim, bits_per_second, propagation, gap_bytes),
              Wire(sim, bits_per_second, propagation, gap_bytes)} {}

  Wire& dir(int d) { return dirs_[d]; }

 private:
  Wire dirs_[2];
};

// A half-duplex shared medium (Ethernet). All stations contend for one
// serializer; collisions are not modeled (the paper's workload is a strict
// request/response alternation on an otherwise idle private segment).
class SharedBus {
 public:
  SharedBus(Simulator* sim, double bits_per_second, SimDuration propagation, size_t gap_bytes);

  SimTime Transmit(SimTime earliest, std::vector<uint8_t> data, DeliverFn deliver);
  SimTime free_at() const { return wire_.free_at(); }
  SimDuration SerializationDelay(size_t bytes) const { return wire_.SerializationDelay(bytes); }
  void set_corrupt_hook(CorruptFn hook) { wire_.set_corrupt_hook(std::move(hook)); }
  void set_drop_hook(DropFn hook) { wire_.set_drop_hook(std::move(hook)); }
  void set_impairment(LinkImpairment* impairment) { wire_.set_impairment(impairment); }
  uint64_t units_sent() const { return wire_.units_sent(); }
  uint64_t units_dropped() const { return wire_.units_dropped(); }

 private:
  Wire wire_;
};

}  // namespace tcplat

#endif  // SRC_LINK_WIRE_H_
