// Ablation A7: the paper's processes "ran on otherwise idle machines" —
// this ablation un-idles them. A background bulk transfer shares the same
// hosts and fiber with the RPC workload; run-to-completion CPUs and the
// shared link turn the quiet-testbed numbers into loaded-system numbers,
// showing how much of the paper's latency story depends on idleness.

#include <cstdio>
#include <vector>

#include <array>

#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

constexpr uint16_t kBulkPort = 7000;

// Long (but bounded — the simulator runs the event queue dry) bulk
// sender/sink between the same two hosts, sharing everything.
SimTask BulkSink(Testbed* tb) {
  Socket* listener = tb->server_tcp().Listen(kBulkPort);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  std::vector<uint8_t> buf(16384);
  while (!s->eof() && !s->has_error()) {
    if (s->Read(buf) == 0) {
      co_await s->WaitReadable();
    }
  }
}

SimTask BulkSender(Testbed* tb, size_t total_bytes) {
  Socket* s = tb->client_tcp().Connect(SockAddr{kServerAddr, kBulkPort});
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  std::vector<uint8_t> block(8192, 0xB5);
  size_t sent = 0;
  while (sent < total_bytes && !s->has_error()) {
    const size_t n = s->Write(block);
    sent += n;
    if (n == 0) {
      co_await s->WaitWritable();
    }
  }
  s->Close();
}

double MeasureRtt(size_t size, bool with_cross_traffic) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  if (with_cross_traffic) {
    // ~10 s of 2 MB/s bulk: comfortably outlasts the measured region.
    tb.server_host().Spawn("bulk-sink", BulkSink(&tb));
    tb.client_host().Spawn("bulk-sender", BulkSender(&tb, 20u << 20));
  }
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 150;
  const RpcResult r = RunRpcBenchmark(tb, opt);
  return r.MeanRtt().micros();
}

void Run() {
  std::printf("Ablation A7: RPC latency with a competing bulk transfer on the same\n"
              "hosts and fiber (the paper measured idle machines)\n\n");
  TextTable t({"Size", "Idle testbed (us)", "With cross-traffic (us)", "Inflation"});
  const std::array<size_t, 4> sizes = {4u, 200u, 1400u, 4000u};
  struct Pair {
    double idle;
    double loaded;
  };
  const std::vector<Pair> rows = ParallelMap<Pair>(sizes.size(), [&sizes](size_t i) {
    return Pair{MeasureRtt(sizes[i], false), MeasureRtt(sizes[i], true)};
  });
  for (size_t i = 0; i < sizes.size(); ++i) {
    const auto& [idle, loaded] = rows[i];
    t.AddRow({std::to_string(sizes[i]), TextTable::Us(idle), TextTable::Us(loaded),
              TextTable::Pct(100.0 * (loaded - idle) / idle)});
  }
  t.Print();
  std::printf(
      "\nReadings: the bulk stream's per-cell driver work and checksum passes\n"
      "occupy the same CPUs the RPC needs, and its 4 KB segments occupy the\n"
      "fiber — small-RPC latency inflates far more than proportionally. The\n"
      "paper's clean per-layer accounting (Tables 2/3) is an idle-system\n"
      "property; production latency budgets must add contention.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
