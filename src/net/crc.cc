#include "src/net/crc.h"

#include <array>

namespace tcplat {
namespace {

// CRC-10 generator x^10 + x^9 + x^5 + x^4 + x + 1; as a 10-bit mask (the
// implicit x^10 term dropped): bits 9, 5, 4, 1, 0 -> 0x233.
constexpr uint16_t kCrc10Poly = 0x233;

std::array<uint16_t, 256> MakeCrc10Table() {
  std::array<uint16_t, 256> table{};
  for (uint32_t byte = 0; byte < 256; ++byte) {
    uint16_t crc = static_cast<uint16_t>(byte << 2);  // align byte to bit 9
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x200) {
        crc = static_cast<uint16_t>(((crc << 1) ^ kCrc10Poly) & 0x3FF);
      } else {
        crc = static_cast<uint16_t>((crc << 1) & 0x3FF);
      }
    }
    table[byte] = crc;
  }
  return table;
}

// Reflected IEEE 802.3 polynomial.
constexpr uint32_t kCrc32Poly = 0xEDB88320u;

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t byte = 0; byte < 256; ++byte) {
    uint32_t crc = byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrc32Poly : crc >> 1;
    }
    table[byte] = crc;
  }
  return table;
}

}  // namespace

uint16_t Crc10(std::span<const uint8_t> data) {
  static const std::array<uint16_t, 256> table = MakeCrc10Table();
  uint16_t crc = 0;
  for (uint8_t b : data) {
    crc = static_cast<uint16_t>(((crc << 8) ^ table[((crc >> 2) ^ b) & 0xFF]) & 0x3FF);
  }
  return crc;
}

uint16_t Crc10Reference(std::span<const uint8_t> data) {
  // Bit-serial: shift each message bit (MSB first) into a 10-bit register.
  uint16_t crc = 0;
  for (uint8_t byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      const uint16_t in = static_cast<uint16_t>((byte >> bit) & 1);
      const uint16_t top = static_cast<uint16_t>((crc >> 9) & 1);
      crc = static_cast<uint16_t>((crc << 1) & 0x3FF);
      if (top ^ in) {
        crc = static_cast<uint16_t>(crc ^ kCrc10Poly);
      }
    }
  }
  return crc;
}

uint32_t Crc32(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t b : data) {
    crc = (crc >> 8) ^ table[(crc ^ b) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32Reference(std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kCrc32Poly : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace tcplat
