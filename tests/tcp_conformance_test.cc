// Protocol-conformance tests: hand-crafted segments injected below IP
// against a live server stack, with the server's responses observed through
// a SegmentTap — the simulated equivalent of a conformance tester on the
// wire.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/net/byte_order.h"
#include "src/net/checksum.h"
#include "src/os/task.h"
#include "src/tcp/segment_tap.h"

namespace tcplat {
namespace {

// Builds a full IP packet carrying one TCP segment with a valid checksum.
std::vector<uint8_t> BuildSegment(Ipv4Addr src, Ipv4Addr dst, const TcpHeader& th_in,
                                  std::span<const uint8_t> payload) {
  TcpHeader th = th_in;
  const size_t hdrlen = th.HeaderLength();
  std::vector<uint8_t> tcp_bytes(hdrlen + payload.size());
  th.checksum = 0;
  th.Serialize(tcp_bytes);
  std::memcpy(tcp_bytes.data() + hdrlen, payload.data(), payload.size());

  TcpPseudoHeader ph;
  ph.src = src;
  ph.dst = dst;
  ph.tcp_length = static_cast<uint16_t>(tcp_bytes.size());
  ChecksumAccumulator acc;
  acc.Add(ph.Serialize());
  acc.Add(tcp_bytes);
  StoreBe16(&tcp_bytes[16], acc.Finalize());

  std::vector<uint8_t> pkt(kIpv4HeaderBytes + tcp_bytes.size());
  Ipv4Header iph;
  iph.total_length = static_cast<uint16_t>(pkt.size());
  iph.protocol = kIpProtoTcp;
  iph.src = src;
  iph.dst = dst;
  iph.FillChecksum();
  iph.Serialize(pkt);
  std::memcpy(pkt.data() + kIpv4HeaderBytes, tcp_bytes.data(), tcp_bytes.size());
  return pkt;
}

// Injects raw packet bytes at the server's driver/IP boundary.
void Inject(Testbed& tb, const std::vector<uint8_t>& bytes) {
  Host& h = tb.server_host();
  CpuRun run(h.cpu(), tb.sim().Now());
  MbufPtr head = h.pool().GetHeader();
  const size_t first = std::min<size_t>(kIpv4HeaderBytes, bytes.size());
  std::memcpy(head->Append(first).data(), bytes.data(), first);
  size_t off = first;
  while (off < bytes.size()) {
    MbufPtr m = bytes.size() - off > kClusterThreshold ? h.pool().GetCluster() : h.pool().Get();
    const size_t take = std::min(bytes.size() - off, m->capacity());
    std::memcpy(m->Append(take).data(), bytes.data() + off, take);
    off += take;
    ChainAppend(&head, std::move(m));
  }
  tb.server_ip().InputFromDriver(std::move(head));
}

// The server's outbound segments since the last call.
std::vector<SegmentTap::Record> TakeOutbound(SegmentTap& tap) {
  std::vector<SegmentTap::Record> out;
  for (const auto& r : tap.records()) {
    if (r.outbound) {
      out.push_back(r);
    }
  }
  tap.Clear();
  return out;
}

class Conformance : public ::testing::Test {
 protected:
  // The forged client address must not belong to the real client stack:
  // its replies land on the client host's IP layer and are dropped as
  // not-for-us instead of drawing RSTs from a live TCP.
  static constexpr Ipv4Addr kFakeClient = MakeAddr(10, 0, 0, 77);

  Conformance() : tb_(TestbedConfig{}) {
    tb_.server_tcp().set_tap(&tap_);
    tb_.server_tcp().Listen(kEchoPort);
  }

  // Advances bounded virtual time (the injected peer never ACKs, so running
  // to completion would spin through retransmission exhaustion).
  void Step(double ms) { tb_.sim().RunUntil(tb_.sim().Now() + SimDuration::FromMillis(ms)); }

  TcpHeader Syn(uint32_t iss) {
    TcpHeader th;
    th.src_port = 33333;
    th.dst_port = kEchoPort;
    th.seq = iss;
    th.flags.syn = true;
    th.window = 8192;
    th.options.mss = 1460;
    return th;
  }

  // Completes a handshake as a fake client; returns the server's ISS.
  uint32_t Handshake(uint32_t iss) {
    Inject(tb_, BuildSegment(kFakeClient, kServerAddr, Syn(iss), {}));
    Step(50);
    auto out = TakeOutbound(tap_);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].header.flags.syn);
    EXPECT_TRUE(out[0].header.flags.ack);
    EXPECT_EQ(out[0].header.ack, iss + 1);
    const uint32_t server_iss = out[0].header.seq;

    TcpHeader ack;
    ack.src_port = 33333;
    ack.dst_port = kEchoPort;
    ack.seq = iss + 1;
    ack.ack = server_iss + 1;
    ack.flags.ack = true;
    ack.window = 8192;
    Inject(tb_, BuildSegment(kFakeClient, kServerAddr, ack, {}));
    Step(50);
    TakeOutbound(tap_);
    return server_iss;
  }

  Testbed tb_;
  SegmentTap tap_;
};

TEST_F(Conformance, SynGetsSynAckWithMssOption) {
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, Syn(1000), {}));
  tb_.sim().RunUntil(tb_.sim().Now() + SimDuration::FromMillis(10));
  auto out = TakeOutbound(tap_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].header.flags.syn);
  EXPECT_TRUE(out[0].header.flags.ack);
  EXPECT_EQ(out[0].header.ack, 1001u);
  ASSERT_TRUE(out[0].header.options.mss.has_value());
  EXPECT_EQ(*out[0].header.options.mss, kAtmMtu - kIpv4HeaderBytes - kTcpMinHeaderBytes);
}

TEST_F(Conformance, AckToListenerDrawsRst) {
  TcpHeader stray;
  stray.src_port = 44444;
  stray.dst_port = 9999;  // nothing listens here
  stray.seq = 5;
  stray.ack = 77;
  stray.flags.ack = true;
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, stray, {}));
  Step(10);
  auto out = TakeOutbound(tap_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].header.flags.rst);
  EXPECT_EQ(out[0].header.seq, 77u) << "RST takes its seq from the offending ACK";
}

TEST_F(Conformance, LostSynAckIsRetransmittedByServer) {
  // Drop the first SYN|ACK on the wire: the embryonic connection's
  // retransmission timer must resend it and the handshake completes.
  TestbedConfig cfg;
  cfg.tcp.rexmt_min = SimDuration::FromMillis(50);
  Testbed tb(cfg);
  int kill = 1;
  tb.atm_link()->dir(1).set_corrupt_hook([&kill](std::vector<uint8_t>& cell) {
    if (kill > 0) {
      cell[10] ^= 0xFF;
      --kill;
    }
  });
  RpcOptions opt;
  opt.size = 100;
  opt.iterations = 3;
  opt.warmup = 0;
  const RpcResult r = RunRpcBenchmark(tb, opt);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GE(tb.server_tcp().stats().rexmt_timeouts, 1u);
}

TEST_F(Conformance, InWindowDataAcceptedAndAckedOnTimer) {
  const uint32_t iss = 50000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  const std::vector<uint8_t> data = {'h', 'e', 'l', 'l', 'o'};
  TcpHeader th;
  th.src_port = 33333;
  th.dst_port = kEchoPort;
  th.seq = iss + 1;
  th.ack = server_iss + 1;
  th.flags.ack = true;
  th.window = 8192;
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, th, data));
  Step(250);  // the 200 ms delayed ACK fires
  auto out = TakeOutbound(tap_);
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(out.back().header.ack, iss + 1 + data.size());
}

TEST_F(Conformance, StaleSegmentReAcked) {
  const uint32_t iss = 60000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  // A segment entirely below rcv_nxt (e.g. a spurious retransmission).
  TcpHeader th;
  th.src_port = 33333;
  th.dst_port = kEchoPort;
  th.seq = iss - 300;
  th.ack = server_iss + 1;
  th.flags.ack = true;
  th.window = 8192;
  const std::vector<uint8_t> stale(100, 0xAA);
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, th, stale));
  Step(10);
  auto out = TakeOutbound(tap_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.ack, iss + 1) << "immediate re-ACK with the true rcv_nxt";
  EXPECT_EQ(out[0].payload_len, 0u);
}

TEST_F(Conformance, BeyondWindowFloodDoesNotGrowState) {
  const uint32_t iss = 70000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  const int64_t mbufs_before = tb_.server_host().pool().stats().in_use;
  // 50 segments far beyond the 8 KB window.
  for (int i = 0; i < 50; ++i) {
    TcpHeader th;
    th.src_port = 33333;
    th.dst_port = kEchoPort;
    th.seq = iss + 1 + 100000 + static_cast<uint32_t>(i) * 1000;
    th.ack = server_iss + 1;
    th.flags.ack = true;
    th.window = 8192;
    const std::vector<uint8_t> junk(500, 0x55);
    Inject(tb_, BuildSegment(kFakeClient, kServerAddr, th, junk));
    Step(5);
  }
  // Dropped, not stashed: the reassembly queue holds no mbufs for them.
  EXPECT_LE(tb_.server_host().pool().stats().in_use, mbufs_before);
}

TEST_F(Conformance, RstTearsDownEstablishedConnection) {
  const uint32_t iss = 80000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  EXPECT_EQ(tb_.server_tcp().stats().conns_established, 1u);
  TcpHeader rst;
  rst.src_port = 33333;
  rst.dst_port = kEchoPort;
  rst.seq = iss + 1;
  rst.ack = server_iss + 1;
  rst.flags.rst = true;
  rst.flags.ack = true;
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, rst, {}));
  Step(10);
  EXPECT_EQ(tb_.server_tcp().stats().rst_received, 1u);
  EXPECT_EQ(tb_.server_tcp().stats().conns_dropped, 1u);
}

TEST_F(Conformance, BadChecksumSegmentIgnoredSilently) {
  const uint32_t iss = 90000;
  const uint32_t server_iss = Handshake(iss);
  (void)server_iss;
  TcpHeader th;
  th.src_port = 33333;
  th.dst_port = kEchoPort;
  th.seq = iss + 1;
  th.ack = server_iss + 1;
  th.flags.ack = true;
  th.window = 8192;
  auto pkt = BuildSegment(kFakeClient, kServerAddr, th, std::vector<uint8_t>(32, 1));
  pkt[45] ^= 0xFF;  // damage the TCP payload; checksum now wrong
  Inject(tb_, pkt);
  Step(10);
  EXPECT_EQ(tb_.server_tcp().stats().checksum_errors, 1u);
  EXPECT_TRUE(TakeOutbound(tap_).empty()) << "corrupt segments draw no response";
}

// --- Nagle / delayed-ACK cadence conformance ---

// Completes a fake-client handshake against `tb`'s server listener, with
// the tap already attached; returns the server's ISS. (The fixture's
// Handshake() bound to tb_; this one works on any testbed, so tests can
// reconfigure the stack under test.)
uint32_t HandshakeOn(Testbed& tb, SegmentTap& tap, uint32_t iss) {
  constexpr Ipv4Addr kFake = MakeAddr(10, 0, 0, 77);
  TcpHeader syn;
  syn.src_port = 33333;
  syn.dst_port = kEchoPort;
  syn.seq = iss;
  syn.flags.syn = true;
  syn.window = 8192;
  syn.options.mss = 1460;
  Inject(tb, BuildSegment(kFake, kServerAddr, syn, {}));
  tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(50));
  auto out = TakeOutbound(tap);
  EXPECT_EQ(out.size(), 1u);
  const uint32_t server_iss = out.empty() ? 0 : out[0].header.seq;

  TcpHeader ack;
  ack.src_port = 33333;
  ack.dst_port = kEchoPort;
  ack.seq = iss + 1;
  ack.ack = server_iss + 1;
  ack.flags.ack = true;
  ack.window = 8192;
  Inject(tb, BuildSegment(kFake, kServerAddr, ack, {}));
  tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(50));
  TakeOutbound(tap);
  return server_iss;
}

TcpHeader DataHeader(uint32_t seq, uint32_t ack) {
  TcpHeader th;
  th.src_port = 33333;
  th.dst_port = kEchoPort;
  th.seq = seq;
  th.ack = ack;
  th.flags.ack = true;
  th.window = 8192;
  return th;
}

// The 4.3BSD receiver acks every *other* in-sequence data segment: the
// first arms the delayed-ACK timer, the second forces the ACK out
// immediately — long before the 200 ms timer.
TEST_F(Conformance, DelackAcksEveryOtherSegmentImmediately) {
  const uint32_t iss = 110000;
  const uint32_t server_iss = Handshake(iss);
  const std::vector<uint8_t> data(500, 0x33);
  Inject(tb_, BuildSegment(kFakeClient, kServerAddr, DataHeader(iss + 1, server_iss + 1), data));
  Step(2);
  EXPECT_TRUE(TakeOutbound(tap_).empty()) << "first segment only arms the timer";
  Inject(tb_,
         BuildSegment(kFakeClient, kServerAddr, DataHeader(iss + 501, server_iss + 1), data));
  Step(2);
  auto out = TakeOutbound(tap_);
  ASSERT_EQ(out.size(), 1u) << "second segment forces the ACK";
  EXPECT_EQ(out[0].header.ack, iss + 1001);
  EXPECT_EQ(out[0].payload_len, 0u);
  EXPECT_EQ(tb_.server_tcp().stats().delayed_acks_fired, 0u);
}

// The delayed-ACK timer honors the configured value: with a 50 ms timer a
// lone segment is still unacked at 40 ms and acked by 60 ms.
TEST_F(Conformance, DelackTimerHonorsConfiguredValue) {
  TestbedConfig cfg;
  cfg.tcp.delack_timeout = SimDuration::FromMillis(50);
  Testbed tb(cfg);
  SegmentTap tap;
  tb.server_tcp().set_tap(&tap);
  tb.server_tcp().Listen(kEchoPort);
  const uint32_t iss = 120000;
  const uint32_t server_iss = HandshakeOn(tb, tap, iss);
  const std::vector<uint8_t> data(500, 0x44);
  Inject(tb, BuildSegment(MakeAddr(10, 0, 0, 77), kServerAddr,
                          DataHeader(iss + 1, server_iss + 1), data));
  tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(40));
  EXPECT_TRUE(TakeOutbound(tap).empty()) << "no ACK before the configured timer";
  tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(20));
  auto out = TakeOutbound(tap);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.ack, iss + 501);
  EXPECT_EQ(tb.server_tcp().stats().delayed_acks_fired, 1u);
}

// With delayed ACKs disabled, every in-sequence data segment draws an
// immediate ACK and the timer never fires.
TEST_F(Conformance, DelackDisabledAcksEverySegmentImmediately) {
  TestbedConfig cfg;
  cfg.tcp.delack = false;
  Testbed tb(cfg);
  SegmentTap tap;
  tb.server_tcp().set_tap(&tap);
  tb.server_tcp().Listen(kEchoPort);
  const uint32_t iss = 130000;
  const uint32_t server_iss = HandshakeOn(tb, tap, iss);
  const std::vector<uint8_t> data(500, 0x55);
  for (int i = 0; i < 2; ++i) {
    Inject(tb, BuildSegment(MakeAddr(10, 0, 0, 77), kServerAddr,
                            DataHeader(iss + 1 + static_cast<uint32_t>(i) * 500, server_iss + 1),
                            data));
    tb.sim().RunUntil(tb.sim().Now() + SimDuration::FromMillis(2));
    auto out = TakeOutbound(tap);
    ASSERT_EQ(out.size(), 1u) << "segment " << i << " must be acked at once";
    EXPECT_EQ(out[0].header.ack, iss + 1 + static_cast<uint32_t>(i + 1) * 500);
  }
  EXPECT_EQ(tb.server_tcp().stats().delayed_acks_fired, 0u);
}

// Sender-side Nagle rule: at most one small segment may be outstanding.
// Three back-to-back small writes must leave as the first chunk alone plus
// one coalesced remainder, and no small data segment may depart while a
// previous one is still unacknowledged.
TEST_F(Conformance, NagleAllowsOneOutstandingSmallSegment) {
  Testbed tb{TestbedConfig{}};
  SegmentTap tap;
  tb.client_tcp().set_tap(&tap);
  tb.server_tcp().Listen(kEchoPort);
  struct Writer {
    static SimTask Run(Testbed* t) {
      Socket* s = t->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
      while (!s->connected()) {
        co_await s->WaitConnected();
      }
      const std::vector<uint8_t> msg(300, 0x5A);
      s->Write(msg);
      s->Write(msg);
      s->Write(msg);
    }
  };
  tb.client_host().Spawn("writer", Writer::Run(&tb));
  tb.sim().RunUntil(SimTime::FromMillis(500));

  int data_segments = 0;
  bool small_outstanding = false;
  for (const auto& r : tap.records()) {
    if (r.outbound && r.payload_len > 0) {
      EXPECT_FALSE(small_outstanding)
          << "second small segment sent before the first was acked";
      small_outstanding = true;
      ++data_segments;
    } else if (!r.outbound && r.header.flags.ack) {
      small_outstanding = false;
    }
  }
  EXPECT_EQ(data_segments, 2) << "chunk 1 alone, chunks 2+3 coalesced";
  EXPECT_GE(tb.client_tcp().stats().nagle_holds, 1u);
}

// --- Congestion-control era conformance ---
//
// The CongestionControl state machine is exercised directly (it is pure
// state + actions), plus the SACK option's wire round trip and two
// end-to-end runs over the testbed: SYN-time SACK negotiation and a single
// mid-stream cell loss repaired by fast retransmit instead of a timeout.

constexpr uint32_t kMss = 1000;

// RFC 5681: the third duplicate ACK halves the pipe (ssthresh = flight/2),
// retransmits the hole, and enters fast recovery with cwnd = ssthresh + 3.
TEST(CongestionReno, ThirdDupAckHalvesWindowAndRetransmits) {
  CongestionControl cc;
  cc.Reset(CongestionVariant::kReno, kMss);
  for (int i = 0; i < 20; ++i) {
    cc.OnNewAck(0, 0, 0, 20 * kMss);  // grow cwnd well past the loss point
  }
  const uint32_t una = 5000;
  const uint32_t snd_max = una + 12 * kMss;
  auto a1 = cc.OnDupAck(una, snd_max, 12 * kMss);
  auto a2 = cc.OnDupAck(una, snd_max, 12 * kMss);
  EXPECT_FALSE(a1.fast_retransmit);
  EXPECT_FALSE(a2.fast_retransmit);
  EXPECT_FALSE(cc.in_recovery());

  auto a3 = cc.OnDupAck(una, snd_max, 12 * kMss);
  ASSERT_TRUE(a3.fast_retransmit);
  EXPECT_EQ(a3.rexmt_seq, una) << "the hole is the unacked head";
  EXPECT_TRUE(cc.in_recovery());
  EXPECT_EQ(cc.ssthresh(), 6 * kMss) << "half the 12-segment flight";
  EXPECT_EQ(cc.cwnd(), cc.ssthresh() + 3 * kMss) << "inflated by the 3 dup ACKs";

  // Each further duplicate ACK inflates by one segment (it proves a packet
  // left the network) and asks for more output.
  auto a4 = cc.OnDupAck(una, snd_max, 12 * kMss);
  EXPECT_FALSE(a4.fast_retransmit);
  EXPECT_TRUE(a4.send_more);
  EXPECT_EQ(cc.cwnd(), cc.ssthresh() + 4 * kMss);

  // The full ACK deflates to ssthresh and leaves recovery.
  auto full = cc.OnNewAck(una, snd_max, snd_max, 12 * kMss);
  EXPECT_TRUE(full.exited_recovery);
  EXPECT_FALSE(cc.in_recovery());
  EXPECT_EQ(cc.cwnd(), cc.ssthresh());
}

// RFC 6582: a partial ACK (below `recover`) repairs the next hole and stays
// in recovery under NewReno; classic Reno bails out on the first new ACK.
TEST(CongestionNewReno, PartialAckRepairsAndStaysInRecovery) {
  const uint32_t una = 10000;
  const uint32_t snd_max = una + 10 * kMss;
  for (const CongestionVariant v : {CongestionVariant::kReno, CongestionVariant::kNewReno}) {
    CongestionControl cc;
    cc.Reset(v, kMss);
    cc.OnDupAck(una, snd_max, 10 * kMss);
    cc.OnDupAck(una, snd_max, 10 * kMss);
    auto a3 = cc.OnDupAck(una, snd_max, 10 * kMss);
    ASSERT_TRUE(a3.fast_retransmit);
    EXPECT_EQ(cc.recover(), snd_max);

    // The retransmission is acked, but a second hole remains 3 segments up.
    const uint32_t partial = una + 3 * kMss;
    auto ack = cc.OnNewAck(una, partial, snd_max, 10 * kMss);
    if (v == CongestionVariant::kNewReno) {
      EXPECT_TRUE(ack.partial_retransmit) << "NewReno repairs the next hole at once";
      EXPECT_EQ(ack.rexmt_seq, partial);
      EXPECT_TRUE(cc.in_recovery()) << "recovery persists until snd_una reaches recover";
    } else {
      EXPECT_FALSE(ack.partial_retransmit) << "plain Reno has no partial-ACK repair";
      EXPECT_TRUE(ack.exited_recovery);
      EXPECT_FALSE(cc.in_recovery());
    }
  }
}

// The scoreboard keeps sorted, disjoint blocks, merges overlap/adjacency,
// walks holes in order, and drops acked blocks.
TEST(CongestionSack, ScoreboardTracksHoles) {
  SackScoreboard sb;
  const uint32_t una = 1000;
  sb.Add(una, 3000, 4000);
  sb.Add(una, 6000, 7000);
  EXPECT_EQ(sb.blocks().size(), 2u);
  EXPECT_EQ(sb.NextHole(una, 8000), una) << "first hole is at snd_una";
  EXPECT_EQ(sb.NextHole(3000, 8000), 4000u) << "walk jumps past the sacked block";
  EXPECT_EQ(sb.NextHole(6000, 8000), 7000u);
  EXPECT_TRUE(sb.Covers(3500));
  EXPECT_FALSE(sb.Covers(4500));

  sb.Add(una, 4000, 6000);  // bridges the two blocks
  ASSERT_EQ(sb.blocks().size(), 1u);
  EXPECT_EQ(sb.blocks()[0].start, 3000u);
  EXPECT_EQ(sb.blocks()[0].end, 7000u);
  EXPECT_EQ(sb.sacked_bytes(), 4000u);
  EXPECT_EQ(sb.highest_end(), 7000u);

  sb.AdvanceTo(7000);
  EXPECT_TRUE(sb.empty());
}

// RFC 6675: in SACK recovery, cwnd collapses to ssthresh, repairs are gated
// by the pipe estimate, and only holes below the highest sacked block are
// retransmitted.
TEST(CongestionSack, PipeGatedRepairsStopAtHighestSackedBlock) {
  CongestionControl cc;
  cc.Reset(CongestionVariant::kSack, kMss);
  for (int i = 0; i < 20; ++i) {
    cc.OnNewAck(0, 0, 0, 20 * kMss);
  }
  const uint32_t una = 0;
  const uint32_t snd_max = 12 * kMss;
  // The receiver holds [2,3) and [5,6) segments; segments 0,1 and 3,4 are
  // the provable holes, everything >= 6 may still be in flight.
  cc.scoreboard().Add(una, 2 * kMss, 3 * kMss);
  cc.scoreboard().Add(una, 5 * kMss, 6 * kMss);
  cc.OnDupAck(una, snd_max, 12 * kMss);
  cc.OnDupAck(una, snd_max, 12 * kMss);
  auto a3 = cc.OnDupAck(una, snd_max, 12 * kMss);
  ASSERT_TRUE(a3.fast_retransmit);
  EXPECT_EQ(a3.rexmt_seq, una);
  EXPECT_EQ(cc.cwnd(), cc.ssthresh()) << "no +3 inflation under RFC 6675";

  // Further dup ACKs drain the pipe; each repair must land on a hole below
  // highest_end, never on un-sacked in-flight data above it.
  std::vector<uint32_t> repaired;
  for (int i = 0; i < 12; ++i) {
    auto a = cc.OnDupAck(una, snd_max, 12 * kMss);
    if (a.fast_retransmit) {
      repaired.push_back(a.rexmt_seq);
    }
  }
  ASSERT_FALSE(repaired.empty());
  for (const uint32_t seq : repaired) {
    EXPECT_LT(seq, 6 * kMss) << "RFC 3517 bound: no repair above the highest sacked block";
    EXPECT_FALSE(cc.scoreboard().Covers(seq)) << "never resend sacked data";
  }
}

// A timeout abandons recovery entirely: back to one-segment slow start with
// a cleared scoreboard.
TEST(CongestionSack, TimeoutCollapsesToSlowStart) {
  CongestionControl cc;
  cc.Reset(CongestionVariant::kSack, kMss);
  cc.scoreboard().Add(0, 2 * kMss, 3 * kMss);
  cc.OnDupAck(0, 10 * kMss, 10 * kMss);
  cc.OnDupAck(0, 10 * kMss, 10 * kMss);
  cc.OnDupAck(0, 10 * kMss, 10 * kMss);
  ASSERT_TRUE(cc.in_recovery());
  cc.OnTimeout(10 * kMss);
  EXPECT_EQ(cc.cwnd(), kMss);
  EXPECT_FALSE(cc.in_recovery());
  EXPECT_TRUE(cc.scoreboard().empty());
}

// RFC 2018 wire format: SACK-permitted (kind 4) on the SYN and up to three
// 8-byte blocks (kind 5) must survive a serialize/parse round trip.
TEST(CongestionSack, OptionsRoundTripOnTheWire) {
  TcpHeader syn;
  syn.flags.syn = true;
  syn.options.mss = 1460;
  syn.options.sack_permitted = true;
  std::vector<uint8_t> bytes(syn.HeaderLength());
  syn.Serialize(bytes);
  const std::optional<TcpHeader> parsed = TcpHeader::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->options.sack_permitted);
  ASSERT_TRUE(parsed->options.mss.has_value());
  EXPECT_EQ(*parsed->options.mss, 1460u);

  TcpHeader ack;
  ack.flags.ack = true;
  ack.options.sack = {{1000, 2000}, {5000, 6000}, {9000, 9500}};
  std::vector<uint8_t> ack_bytes(ack.HeaderLength());
  ack.Serialize(ack_bytes);
  const std::optional<TcpHeader> parsed_ack = TcpHeader::Parse(ack_bytes);
  ASSERT_TRUE(parsed_ack.has_value());
  ASSERT_EQ(parsed_ack->options.sack.size(), 3u);
  EXPECT_EQ(parsed_ack->options.sack[0].start, 1000u);
  EXPECT_EQ(parsed_ack->options.sack[0].end, 2000u);
  EXPECT_EQ(parsed_ack->options.sack[2].start, 9000u);
  EXPECT_EQ(parsed_ack->options.sack[2].end, 9500u);
  EXPECT_FALSE(parsed_ack->options.sack_permitted) << "kind 4 is SYN-only";
}

// End to end: with both stacks configured for SACK, the client's SYN offers
// kind 4, the server's SYN|ACK agrees, and the transfer completes.
TEST(CongestionE2E, SackNegotiatedOnTheSyn) {
  TestbedConfig cfg;
  cfg.tcp.congestion = CongestionVariant::kSack;
  Testbed tb(cfg);
  SegmentTap tap;
  tb.client_tcp().set_tap(&tap);
  RpcOptions opt;
  opt.size = 100;
  opt.iterations = 2;
  opt.warmup = 0;
  const RpcResult r = RunRpcBenchmark(tb, opt);
  EXPECT_EQ(r.data_mismatches, 0u);
  bool syn_offered = false;
  bool synack_agreed = false;
  for (const auto& rec : tap.records()) {
    if (rec.header.flags.syn && !rec.header.flags.ack && rec.outbound) {
      syn_offered = rec.header.options.sack_permitted;
    }
    if (rec.header.flags.syn && rec.header.flags.ack && !rec.outbound) {
      synack_agreed = rec.header.options.sack_permitted;
    }
  }
  EXPECT_TRUE(syn_offered) << "client SYN must carry SACK-permitted";
  EXPECT_TRUE(synack_agreed) << "server SYN|ACK must agree";
}

// A legacy peer never offers SACK, so a SACK-configured server must not
// enable it either (negotiation is bilateral).
TEST(CongestionE2E, LegacyClientGetsNoSackOption) {
  TestbedConfig cfg;  // both stacks default to kLegacy
  Testbed tb(cfg);
  SegmentTap tap;
  tb.client_tcp().set_tap(&tap);
  RpcOptions opt;
  opt.size = 100;
  opt.iterations = 2;
  opt.warmup = 0;
  RunRpcBenchmark(tb, opt);
  for (const auto& rec : tap.records()) {
    EXPECT_FALSE(rec.header.options.sack_permitted);
    EXPECT_TRUE(rec.header.options.sack.empty());
  }
}

// One mid-stream data cell killed on the client->server fiber: a Reno
// client repairs it with a fast retransmit triggered by duplicate ACKs —
// no retransmission timeout — while the seed's timer floor would otherwise
// stall the transfer.
TEST(CongestionE2E, SingleLossRepairedByFastRetransmitNotTimeout) {
  TestbedConfig cfg;
  cfg.tcp.congestion = CongestionVariant::kReno;
  // Ethernet-sized segments and windows holding many of them — over the
  // 9180-byte ATM MTU with 8 KB buffers a "window" is barely two segments,
  // which can never produce three duplicate ACKs.
  cfg.tcp.mss_clamp = 1460;
  cfg.tcp.sndbuf = 32768;
  cfg.tcp.rcvbuf = 32768;
  Testbed tb(cfg);
  int countdown = 400;  // one cell of roughly the 11th data segment: past
                        // slow start's opening, with a full window behind it
  tb.atm_link()->dir(0).set_corrupt_hook([&countdown](std::vector<uint8_t>& cell) {
    if (--countdown == 0) {
      cell[10] ^= 0xFF;
    }
  });
  RpcOptions opt;
  opt.size = 30000;  // ~21 MSS-sized segments: plenty of dup-ACK fuel
  opt.iterations = 2;
  opt.warmup = 0;
  const RpcResult r = RunRpcBenchmark(tb, opt);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GE(tb.client_tcp().stats().fast_retransmits, 1u);
  EXPECT_EQ(tb.client_tcp().stats().rexmt_timeouts, 0u)
      << "a single loss must not cost the retransmission timer";
}

}  // namespace
}  // namespace tcplat
