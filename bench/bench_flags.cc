#include "bench/bench_flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tcplat {
namespace {

// Matches `--name=value` or `--name value`. Returns the value, or nullptr
// when argv[*i] is not this flag. Advances *i past a detached value.
const char* FlagValue(int argc, char** argv, int* i, const char* name) {
  const size_t len = std::strlen(name);
  if (std::strncmp(argv[*i], name, len) != 0) {
    return nullptr;
  }
  const char* rest = argv[*i] + len;
  if (*rest == '=') {
    return rest + 1;
  }
  if (*rest == '\0' && *i + 1 < argc) {
    return argv[++*i];
  }
  return nullptr;
}

}  // namespace

bool ParseBenchFlags(int argc, char** argv, BenchFlags* flags, const char* accepted) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      flags->quick = true;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--trace-sample-flows")) {
      flags->trace_sample_flows = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--trace-sample-reservoir")) {
      flags->trace_sample_reservoir = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--trace-spill")) {
      flags->trace_spill_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--trace-spill-segment")) {
      flags->trace_spill_segment = static_cast<size_t>(std::strtoull(v, nullptr, 10));
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--timeline-csv")) {
      flags->timeline_csv_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--timeline-period-us")) {
      flags->timeline_period_us = std::strtoll(v, nullptr, 10);
      continue;
    }
    if (std::strcmp(argv[i], "--timeline") == 0) {
      flags->timeline = true;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--bin-out")) {
      flags->bin_out_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--from-binary")) {
      flags->from_binary_path = v;
      continue;
    }
    if (std::strncmp(argv[i], "--trace", 7) == 0 &&
        (argv[i][7] == '\0' || argv[i][7] == '=')) {
      flags->trace = true;
      if (argv[i][7] == '=') {
        flags->trace_path = argv[i] + 8;
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        // Bare `--trace` is a valid toggle, so only a non-flag successor is
        // taken as its path.
        flags->trace_path = argv[++i];
      }
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--seed")) {
      flags->seed = std::strtoull(v, nullptr, 10);
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--jobs")) {
      flags->jobs = static_cast<int>(std::strtol(v, nullptr, 10));
      if (flags->jobs > 0) {
        ::setenv("TCPLAT_JOBS", v, /*overwrite=*/1);
      }
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--out")) {
      flags->out_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--size")) {
      flags->size = static_cast<size_t>(std::strtoull(v, nullptr, 10));
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--flows")) {
      flags->flows = static_cast<int>(std::strtol(v, nullptr, 10));
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--csv")) {
      flags->csv_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--perf")) {
      flags->perf_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--congestion")) {
      flags->congestion_path = v;
      continue;
    }
    if (const char* v = FlagValue(argc, argv, &i, "--baseline-dir")) {
      flags->baseline_dir = v;
      continue;
    }
    if (std::strcmp(argv[i], "--write-baseline") == 0) {
      flags->write_baseline = true;
      continue;
    }
    if (std::strcmp(argv[i], "--selftest") == 0) {
      flags->selftest = true;
      continue;
    }
    std::fprintf(stderr, "usage: %s %s\n", argv[0], accepted);
    return false;
  }
  return true;
}

}  // namespace tcplat
