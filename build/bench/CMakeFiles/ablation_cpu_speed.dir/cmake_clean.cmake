file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpu_speed.dir/ablation_cpu_speed.cc.o"
  "CMakeFiles/ablation_cpu_speed.dir/ablation_cpu_speed.cc.o.d"
  "ablation_cpu_speed"
  "ablation_cpu_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
