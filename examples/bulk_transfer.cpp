// Bulk (throughput-style) transfer — the unidirectional workload the BSD
// header-prediction fast path was actually optimized for (§3: "a single
// sender, high throughput style of communication"). Streams a buffer one
// way, reports throughput, and shows the fast path earning its keep —
// contrast with the RPC workload where it almost never fires.
//
//   $ ./bulk_transfer [megabytes]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/base/random.h"
#include "src/core/testbed.h"
#include "src/os/task.h"

using namespace tcplat;

namespace {

struct Transfer {
  size_t bytes = 0;
  std::vector<uint8_t> received;
  SimTime started;
  SimTime finished;
  bool ok = false;
};

SimTask Sender(Testbed* tb, Transfer* xfer) {
  Socket* s = tb->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  Rng rng(1234);
  std::vector<uint8_t> block(64 * 1024);
  for (auto& b : block) {
    b = static_cast<uint8_t>(rng.Next());
  }
  xfer->started = tb->client_host().CurrentTime();
  size_t sent = 0;
  while (sent < xfer->bytes) {
    const size_t want = std::min(block.size(), xfer->bytes - sent);
    size_t off = 0;
    while (off < want) {
      const size_t n = s->Write({block.data() + off, want - off});
      off += n;
      if (n == 0) {
        co_await s->WaitWritable();
      }
    }
    sent += want;
  }
  s->Close();
}

SimTask Receiver(Testbed* tb, Transfer* xfer) {
  Socket* listener = tb->server_tcp().Listen(kEchoPort);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  std::vector<uint8_t> buf(64 * 1024);
  size_t got = 0;
  while (got < xfer->bytes) {
    const size_t n = s->Read({buf.data(), buf.size()});
    if (n > 0) {
      got += n;
    } else {
      if (s->eof() || s->has_error()) {
        break;
      }
      co_await s->WaitReadable();
    }
  }
  xfer->finished = tb->server_host().CurrentTime();
  xfer->ok = got == xfer->bytes;
}

void RunOne(NetworkKind net, const char* label, size_t bytes) {
  TestbedConfig cfg;
  cfg.network = net;
  Testbed tb(cfg);
  Transfer xfer;
  xfer.bytes = bytes;
  tb.server_host().Spawn("rx", Receiver(&tb, &xfer));
  tb.client_host().Spawn("tx", Sender(&tb, &xfer));
  tb.sim().RunToCompletion();
  if (!xfer.ok) {
    std::printf("%s: transfer failed!\n", label);
    return;
  }
  const double secs = (xfer.finished - xfer.started).seconds();
  const TcpStats& snd = tb.client_tcp().stats();
  const TcpStats& rcv = tb.server_tcp().stats();
  std::printf("%-10s %6.2f Mbit/s  (%llu segments, %.1f%% of receives took the TCP fast\n"
              "           path, %.1f%% of the sender's ACKs did)\n",
              label, static_cast<double>(bytes) * 8.0 / secs / 1e6,
              static_cast<unsigned long long>(snd.data_segs_sent),
              100.0 * static_cast<double>(rcv.predict_data_hits) /
                  static_cast<double>(rcv.segs_received),
              100.0 * static_cast<double>(snd.predict_ack_hits) /
                  static_cast<double>(snd.segs_received));
}

}  // namespace

int main(int argc, char** argv) {
  const size_t mb = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 4;
  const size_t bytes = mb * 1024 * 1024;
  std::printf("One-way bulk transfer of %zu MiB (simulated 1994 hardware):\n\n", mb);
  RunOne(NetworkKind::kAtm, "ATM:", bytes);
  RunOne(NetworkKind::kEthernet, "Ethernet:", bytes);
  std::printf("\nCompare with the RPC workload (examples/rpc_latency), where the paper\n"
              "found the same fast path almost never fires: it was built for this\n"
              "workload, not for request/response traffic.\n");
  return 0;
}
