file(REMOVE_RECURSE
  "liblat_os.a"
)
