# Empty dependencies file for ablation_crosstraffic.
# This may be replaced when dependencies are built.
