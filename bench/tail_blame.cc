// Tail blame: why is p99 slower than p50?
//
// Runs the 8-flow capacity cell where PR 4's grids showed the PCB-cache
// inversion (header prediction on vs off, 4 clients x 2 servers, 200-byte
// closed-loop echo), records a full trace, reconstructs every round trip's
// causal chain, and prints which stage of the critical path accounts for
// the p99-p50 gap — queue wait, retransmit stall, FIFO stall, delayed ACK,
// reassembly wait — instead of leaving the tail as one opaque number.
//
// Every printed quantity is simulated, so output is byte-identical across
// TCPLAT_JOBS settings and repeated runs at a fixed --seed (the attribution
// tests pin this). The binary fails (exit 1) if any window's stages do not
// telescope exactly to its RTT or if less than 95% of the p99-p50 gap is
// attributed — so running it under ctest doubles as an acceptance check.
//
// --trace-sample-flows N records only a deterministic 1-in-N flow sample
// (src/trace/tracer.h FlowSampleConfig); the report then covers the kept
// flows' round trips, each standing for N real flows, and the
// full-attribution check tightens to "every kept flow fully attributed".

#include <array>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "src/core/table.h"
#include "src/exec/executor.h"
#include "src/trace/attribution.h"
#include "src/trace/causal_graph.h"
#include "src/trace/tracer.h"
#include "src/workload/capacity.h"
#include "src/workload/interactive.h"

namespace tcplat {
namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) {
    ++g_failures;
  }
}

struct CellBlame {
  CapacityCell cell;
  CapacityOutcome outcome;
  size_t windows = 0;
  size_t linked_journeys = 0;
  bool stages_telescope = true;  // every window: sum(stages) == rtt
  BlameReport blame;
  // Flow sampling (--trace-sample-flows): one kept flow stands for
  // sample_one_in real flows when histograms are scaled up.
  uint32_t sample_one_in = 1;
  size_t flows_seen = 0;
  size_t flows_kept = 0;
};

CellBlame RunCell(const CapacityCell& cell, uint32_t sample_one_in) {
  CellBlame result;
  result.cell = cell;

  Tracer tracer;
  if (sample_one_in > 1) {
    FlowSampleConfig sample;
    sample.one_in = sample_one_in;
    sample.seed = cell.seed;
    tracer.EnableFlowSampling(sample);
  }
  result.outcome = RunCapacityCell(cell, &tracer);
  result.sample_one_in = tracer.sample_one_in();
  result.flows_seen = tracer.flows_seen().size();
  result.flows_kept = tracer.flows_kept().size();

  const CausalGraph graph = CausalGraph::Build(tracer);
  result.linked_journeys = graph.linked_count();

  AttributionOptions options;
  options.message_bytes = cell.size;
  options.warmup_windows = cell.warmup;
  const AttributionResult attribution = AttributeRtts(tracer, graph, options);
  result.windows = attribution.windows.size();
  for (const RttWindow& w : attribution.windows) {
    int64_t sum = 0;
    for (int64_t stage : w.stage_ns) {
      sum += stage;
    }
    if (sum != w.rtt_ns()) {
      result.stages_telescope = false;
    }
  }
  result.blame = BuildBlame(attribution.windows, 50.0, 99.0);
  return result;
}

void PrintBlameTable(const BlameReport& blame) {
  TextTable table({"stage", "p50", "p99", "delta", "share"});
  for (size_t s = 0; s < kBlameStageCount; ++s) {
    const int64_t lo = blame.lo_stage_ns[s];
    const int64_t hi = blame.hi_stage_ns[s];
    const int64_t delta = hi - lo;
    const double share = blame.gap_ns() > 0 ? 100.0 * static_cast<double>(delta) /
                                                  static_cast<double>(blame.gap_ns())
                                            : 0.0;
    table.AddRow({std::string(BlameStageName(static_cast<BlameStage>(s))),
                  TextTable::Us(static_cast<double>(lo) / 1e3, 2),
                  TextTable::Us(static_cast<double>(hi) / 1e3, 2),
                  TextTable::Us(static_cast<double>(delta) / 1e3, 2),
                  TextTable::Num(share, 1) + "%"});
  }
  table.Print();
  std::printf("\nevents in the p50/p99 windows: retransmits %d/%d, delayed ACKs %d/%d, "
              "FIFO stalls %s/%s\n\n",
              blame.lo_retransmits, blame.hi_retransmits, blame.lo_delayed_acks,
              blame.hi_delayed_acks,
              TextTable::Us(static_cast<double>(blame.lo_tx_stall_ns) / 1e3, 2).c_str(),
              TextTable::Us(static_cast<double>(blame.hi_tx_stall_ns) / 1e3, 2).c_str());
}

void PrintCell(const CellBlame& r) {
  std::printf("--- 8-flow cell, header prediction %s ---\n",
              r.cell.header_prediction ? "on" : "off");
  std::printf("round trips attributed : %zu (of %" PRIu64 " measured)\n", r.windows,
              r.outcome.samples);
  if (r.sample_one_in > 1) {
    std::printf("flow sampling          : 1-in-%u kept %zu of %zu flows "
                "(each kept window stands for %u)\n",
                r.sample_one_in, r.flows_kept, r.flows_seen, r.sample_one_in);
  }
  std::printf("linked packet journeys : %zu\n", r.linked_journeys);
  std::printf("p50 RTT %s  p99 RTT %s  gap %s\n\n",
              TextTable::Us(static_cast<double>(r.blame.lo_rtt_ns) / 1e3, 1).c_str(),
              TextTable::Us(static_cast<double>(r.blame.hi_rtt_ns) / 1e3, 1).c_str(),
              TextTable::Us(static_cast<double>(r.blame.gap_ns()) / 1e3, 1).c_str());
  PrintBlameTable(r.blame);
}

// --- Interactive scenario cells: the Nagle × delayed-ACK pathology in a
// mixed population. Six well-behaved flows (single-write requests,
// TCP_NODELAY) own the p50; two knob-shaped flows own the p99, so the
// p99-p50 gap *is* whatever latency mode the knob arms, and the blame
// report must pin it on the ACK-wait stages — or on nothing, for the
// nodelay / delack-off controls where the mode must vanish.

struct InteractiveBlame {
  const char* scenario = "";
  InteractiveCell cell;
  InteractiveOutcome outcome;
  size_t windows = 0;
  size_t linked_journeys = 0;
  bool stages_telescope = true;
  BlameReport blame;
  // kCliAckWait + kSrvAckWait, in the p50 and p99 windows.
  int64_t ack_wait_lo_ns = 0;
  int64_t ack_wait_hi_ns = 0;
};

int64_t AckWait(const std::array<int64_t, kBlameStageCount>& stage_ns) {
  return stage_ns[static_cast<size_t>(BlameStage::kCliAckWait)] +
         stage_ns[static_cast<size_t>(BlameStage::kSrvAckWait)];
}

InteractiveBlame RunInteractiveScenario(const char* scenario, InteractiveKnob knob,
                                        uint64_t seed, bool quick) {
  InteractiveBlame result;
  result.scenario = scenario;

  InteractiveCell cell;
  cell.flows = 8;
  cell.clients = 4;
  cell.servers = 2;
  cell.clean_flows = 6;
  cell.knob = knob;
  cell.iterations = quick ? 16 : 48;
  cell.warmup = 4;
  cell.seed = seed;
  result.cell = cell;

  Tracer tracer;
  result.outcome = RunInteractiveCell(cell, &tracer);

  const CausalGraph graph = CausalGraph::Build(tracer);
  result.linked_journeys = graph.linked_count();

  AttributionOptions options;
  options.message_bytes = cell.response_size;  // 200 bytes each way
  options.warmup_windows = cell.warmup;
  const AttributionResult attribution = AttributeRtts(tracer, graph, options);
  result.windows = attribution.windows.size();
  for (const RttWindow& w : attribution.windows) {
    int64_t sum = 0;
    for (int64_t stage : w.stage_ns) {
      sum += stage;
    }
    if (sum != w.rtt_ns()) {
      result.stages_telescope = false;
    }
  }
  result.blame = BuildBlame(attribution.windows, 50.0, 99.0);
  result.ack_wait_lo_ns = AckWait(result.blame.lo_stage_ns);
  result.ack_wait_hi_ns = AckWait(result.blame.hi_stage_ns);
  return result;
}

void PrintInteractiveCell(const InteractiveBlame& r) {
  std::printf("--- interactive %s: 6 clean + 2 %s flows, 100+100B requests ---\n",
              r.scenario, InteractiveKnobName(r.cell.knob));
  std::printf("round trips attributed : %zu (of %" PRIu64 " measured)\n", r.windows,
              r.outcome.samples);
  std::printf("linked packet journeys : %zu\n", r.linked_journeys);
  std::printf("p50 RTT %s  p99 RTT %s  gap %s  ack-wait delta %s\n\n",
              TextTable::Us(static_cast<double>(r.blame.lo_rtt_ns) / 1e3, 1).c_str(),
              TextTable::Us(static_cast<double>(r.blame.hi_rtt_ns) / 1e3, 1).c_str(),
              TextTable::Us(static_cast<double>(r.blame.gap_ns()) / 1e3, 1).c_str(),
              TextTable::Us(
                  static_cast<double>(r.ack_wait_hi_ns - r.ack_wait_lo_ns) / 1e3, 1)
                  .c_str());
  PrintBlameTable(r.blame);
}

void AppendBlameCsv(std::string* out, const char* scenario, const char* hp, int flows,
                    size_t size, const BlameReport& blame) {
  char buf[256];
  auto row = [&](const char* stage, int64_t lo, int64_t hi, double share) {
    std::snprintf(buf, sizeof(buf),
                  "%s,%s,%d,%zu,%s,%" PRId64 ",%" PRId64 ",%" PRId64 ",%.2f\n", scenario, hp,
                  flows, size, stage, lo, hi, hi - lo, share);
    *out += buf;
  };
  row("rtt.total", blame.lo_rtt_ns, blame.hi_rtt_ns, 100.0);
  for (size_t s = 0; s < kBlameStageCount; ++s) {
    const int64_t lo = blame.lo_stage_ns[s];
    const int64_t hi = blame.hi_stage_ns[s];
    const double share = blame.gap_ns() > 0 ? 100.0 * static_cast<double>(hi - lo) /
                                                  static_cast<double>(blame.gap_ns())
                                            : 0.0;
    row(std::string(BlameStageName(static_cast<BlameStage>(s))).c_str(), lo, hi, share);
  }
  row("retransmits", blame.lo_retransmits, blame.hi_retransmits, 0.0);
  row("delayed_acks", blame.lo_delayed_acks, blame.hi_delayed_acks, 0.0);
  row("tx_stall_ns", blame.lo_tx_stall_ns, blame.hi_tx_stall_ns, 0.0);
}

std::string ToCsv(const std::vector<CellBlame>& results,
                  const std::vector<InteractiveBlame>& interactive) {
  std::string out = "scenario,hp,flows,size,stage,p50_ns,p99_ns,delta_ns,share_of_gap_pct\n";
  for (const CellBlame& r : results) {
    AppendBlameCsv(&out, "capacity", r.cell.header_prediction ? "on" : "off", r.cell.flows,
                   r.cell.size, r.blame);
  }
  for (const InteractiveBlame& r : interactive) {
    AppendBlameCsv(&out, r.scenario, "on", r.cell.flows, r.cell.response_size, r.blame);
  }
  return out;
}

std::string ToJson(const std::vector<CellBlame>& results,
                   const std::vector<InteractiveBlame>& interactive) {
  std::string out = "{\n  \"cells\": [\n";
  char buf[256];
  auto stages = [&](const BlameReport& blame) {
    for (size_t s = 0; s < kBlameStageCount; ++s) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\": [%" PRId64 ", %" PRId64 "]", s > 0 ? ", " : "",
                    std::string(BlameStageName(static_cast<BlameStage>(s))).c_str(),
                    blame.lo_stage_ns[s], blame.hi_stage_ns[s]);
      out += buf;
    }
  };
  const size_t total = results.size() + interactive.size();
  size_t emitted = 0;
  for (const CellBlame& r : results) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"scenario\": \"capacity\", \"hp\": %s, \"flows\": %d, \"size\": %zu, "
                  "\"windows\": %zu,\n"
                  "     \"p50_rtt_ns\": %" PRId64 ", \"p99_rtt_ns\": %" PRId64
                  ", \"explained_pct\": %.2f,\n     \"stages\": {",
                  r.cell.header_prediction ? "true" : "false", r.cell.flows, r.cell.size,
                  r.windows, r.blame.lo_rtt_ns, r.blame.hi_rtt_ns, r.blame.explained_pct);
    out += buf;
    stages(r.blame);
    out += "}}";
    out += ++emitted < total ? ",\n" : "\n";
  }
  for (const InteractiveBlame& r : interactive) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"scenario\": \"%s\", \"hp\": true, \"flows\": %d, \"size\": %zu, "
                  "\"windows\": %zu,\n"
                  "     \"p50_rtt_ns\": %" PRId64 ", \"p99_rtt_ns\": %" PRId64
                  ", \"explained_pct\": %.2f,\n     \"ack_wait_delta_ns\": %" PRId64
                  ",\n     \"stages\": {",
                  r.scenario, r.cell.flows, r.cell.response_size, r.windows, r.blame.lo_rtt_ns,
                  r.blame.hi_rtt_ns, r.blame.explained_pct,
                  r.ack_wait_hi_ns - r.ack_wait_lo_ns);
    out += buf;
    stages(r.blame);
    out += "}}";
    out += ++emitted < total ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

int Run(const BenchFlags& flags) {
  std::printf("Tail blame report (seed %llu, %s mode)\n"
              "p50 vs p99 round trips on the 8-flow capacity cell, decomposed along\n"
              "the causal critical path. All quantities simulated; byte-identical\n"
              "across TCPLAT_JOBS at a fixed --seed.\n\n",
              static_cast<unsigned long long>(flags.seed), flags.quick ? "quick" : "full");

  std::vector<CapacityCell> cells;
  for (bool hp : {true, false}) {
    CapacityCell cell;
    cell.clients = 4;
    cell.servers = 2;
    cell.flows = flags.flows;
    cell.size = flags.size;
    cell.iterations = flags.quick ? 40 : 200;
    cell.warmup = 8;
    cell.seed = flags.seed;
    cell.header_prediction = hp;
    cells.push_back(cell);
  }

  const std::vector<CellBlame> results = ParallelMap<CellBlame>(
      cells.size(), [&](size_t i) { return RunCell(cells[i], flags.trace_sample_flows); });

  for (const CellBlame& r : results) {
    PrintCell(r);
  }

  // The interactive scenarios: same mixed cell, one knob turned per run.
  struct Scenario {
    const char* name;
    InteractiveKnob knob;
  };
  const std::array<Scenario, 3> scenarios = {{{"delack", InteractiveKnob::kPathological},
                                              {"nodelay", InteractiveKnob::kNodelay},
                                              {"delack-off", InteractiveKnob::kDelackOff}}};
  const std::vector<InteractiveBlame> interactive = ParallelMap<InteractiveBlame>(
      scenarios.size(), [&](size_t i) {
        return RunInteractiveScenario(scenarios[i].name, scenarios[i].knob, flags.seed,
                                      flags.quick);
      });

  for (const InteractiveBlame& r : interactive) {
    PrintInteractiveCell(r);
  }

  std::printf("checks:\n");
  for (const CellBlame& r : results) {
    char what[160];
    if (r.sample_one_in > 1) {
      // Under sampling, only the kept flows' round trips can be attributed;
      // each kept flow must still contribute every one of its windows.
      const size_t expected =
          r.flows_kept * static_cast<size_t>(r.cell.iterations);
      std::snprintf(what, sizeof(what),
                    "hp=%s: every kept flow fully attributed (%zu of %zu, %zu/%zu flows)",
                    r.cell.header_prediction ? "on" : "off", r.windows, expected, r.flows_kept,
                    r.flows_seen);
      Check(r.windows == expected && r.flows_kept > 0, what);
    } else {
      std::snprintf(what, sizeof(what),
                    "hp=%s: every round trip attributed (%zu of %" PRIu64 ")",
                    r.cell.header_prediction ? "on" : "off", r.windows, r.outcome.samples);
      Check(r.windows == r.outcome.samples, what);
    }
    std::snprintf(what, sizeof(what), "hp=%s: stages telescope exactly to each RTT",
                  r.cell.header_prediction ? "on" : "off");
    Check(r.stages_telescope, what);
    std::snprintf(what, sizeof(what), "hp=%s: >=95%% of the p99-p50 gap attributed (%.2f%%)",
                  r.cell.header_prediction ? "on" : "off", r.blame.explained_pct);
    Check(r.blame.explained_pct >= 95.0, what);
  }
  for (const InteractiveBlame& r : interactive) {
    char what[200];
    std::snprintf(what, sizeof(what), "%s: every round trip attributed (%zu of %" PRIu64 ")",
                  r.scenario, r.windows, r.outcome.samples);
    Check(r.windows == r.outcome.samples, what);
    std::snprintf(what, sizeof(what), "%s: stages telescope exactly to each RTT", r.scenario);
    Check(r.stages_telescope, what);
    const int64_t gap = r.blame.gap_ns();
    const int64_t ack_wait_delta = r.ack_wait_hi_ns - r.ack_wait_lo_ns;
    if (r.cell.knob == InteractiveKnob::kPathological) {
      // The delayed-ACK mode: the mixed cell's tail is the 200 ms timer,
      // and the blame must land on the ACK-wait stages at the sender.
      std::snprintf(what, sizeof(what),
                    "%s: p99-p50 gap shows the delack mode (gap %.1f ms >= 100 ms)",
                    r.scenario, static_cast<double>(gap) / 1e6);
      Check(gap >= 100'000'000, what);
      std::snprintf(what, sizeof(what),
                    "%s: >=80%% of the gap is ACK-wait at the sender (%.1f%%)", r.scenario,
                    gap > 0 ? 100.0 * static_cast<double>(ack_wait_delta) /
                                  static_cast<double>(gap)
                            : 0.0);
      Check(gap > 0 && ack_wait_delta * 5 >= gap * 4, what);
    } else {
      // Either knob removes one leg of the interaction: the mode vanishes.
      std::snprintf(what, sizeof(what), "%s: the delack mode vanishes (gap %.2f ms < 5 ms)",
                    r.scenario, static_cast<double>(gap) / 1e6);
      Check(gap < 5'000'000, what);
    }
    if (r.cell.knob == InteractiveKnob::kNodelay) {
      std::snprintf(what, sizeof(what), "%s: no ACK-wait blame at all (delta %" PRId64 " ns)",
                    r.scenario, ack_wait_delta);
      Check(r.ack_wait_lo_ns == 0 && r.ack_wait_hi_ns == 0, what);
    }
  }

  if (!flags.csv_path.empty()) {
    if (!WriteTextFile(flags.csv_path, ToCsv(results, interactive))) {
      return 1;
    }
    std::printf("\nwrote %s\n", flags.csv_path.c_str());
  }
  if (!flags.out_path.empty()) {
    if (!WriteTextFile(flags.out_path, ToJson(results, interactive))) {
      return 1;
    }
    std::printf("wrote %s\n", flags.out_path.c_str());
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tcplat

int main(int argc, char** argv) {
  tcplat::BenchFlags flags;
  flags.size = 200;
  flags.flows = 8;
  if (!tcplat::ParseBenchFlags(argc, argv, &flags,
                               "[--seed N] [--jobs N] [--quick] [--flows N] [--size N] "
                               "[--trace-sample-flows N] [--csv PATH] [--out PATH]")) {
    return 2;
  }
  return tcplat::Run(flags);
}
