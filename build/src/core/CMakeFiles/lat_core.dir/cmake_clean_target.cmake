file(REMOVE_RECURSE
  "liblat_core.a"
)
