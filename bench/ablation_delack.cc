// Ablation A5: delayed-ACK timeout and Nagle interactions.
//
// The RPC workload the paper measures never waits on the delayed-ACK timer —
// every ACK rides a reply (§2.2 shows no 200 ms cliffs anywhere). This
// ablation demonstrates how delicately that depends on the traffic shape:
// the echo RTT is flat across delack settings, while a request whose
// response comes from a *different* connection (or no response at all)
// pays the full timer, and the 8000-byte case's Nagle-held second segment
// is released by the window update, not the timer.

#include <array>
#include <cstdio>

#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"
#include "src/os/task.h"
#include "src/workload/interactive.h"

namespace tcplat {
namespace {

double EchoRtt(SimDuration delack, size_t size) {
  TestbedConfig cfg;
  cfg.tcp.delack_timeout = delack;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 100;
  return RunRpcBenchmark(tb, opt).MeanRtt().micros();
}

// One-way request/no-response: how long until the sender's buffer is
// acknowledged (and a second Nagle-held write can leave)?
struct OneWay {
  double second_write_delay_us = 0;
  bool done = false;
};

SimTask OneWaySender(Testbed* tb, OneWay* out) {
  Socket* s = tb->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  std::vector<uint8_t> msg(600, 1);
  s->Write(msg);  // goes out immediately (idle)
  const SimTime t0 = tb->client_host().CurrentTime();
  s->Write(msg);  // Nagle-held until the first is ACKed
  // Wait until everything is acknowledged (send buffer drains).
  while (s->snd().cc() > 0) {
    co_await tb->client_host().SleepFor(SimDuration::FromMillis(1));
  }
  out->second_write_delay_us = (tb->client_host().CurrentTime() - t0).micros();
  out->done = true;
}

SimTask OneWaySink(Testbed* tb, size_t expect) {
  Socket* listener = tb->server_tcp().Listen(kEchoPort);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  std::vector<uint8_t> buf(4096);
  size_t got = 0;
  while (got < expect) {
    const size_t n = s->Read(buf);
    if (n > 0) {
      got += n;
    } else {
      co_await s->WaitReadable();
    }
  }
}

double OneWayDelay(SimDuration delack) {
  TestbedConfig cfg;
  cfg.tcp.delack_timeout = delack;
  Testbed tb(cfg);
  OneWay result;
  tb.server_host().Spawn("sink", OneWaySink(&tb, 1200));
  tb.client_host().Spawn("sender", OneWaySender(&tb, &result));
  tb.sim().RunToCompletion();
  return result.done ? result.second_write_delay_us : -1;
}

void Run() {
  std::printf("Ablation A5: delayed-ACK timeout vs workload shape\n\n");
  TextTable t({"delack timeout", "200B echo RTT (us)", "8000B echo RTT (us)",
               "one-way Nagle release (us)"});
  const std::array<double, 4> timeouts_ms = {50.0, 100.0, 200.0, 500.0};
  struct Row {
    double echo200;
    double echo8000;
    double oneway;
  };
  const std::vector<Row> rows = ParallelMap<Row>(timeouts_ms.size(), [&timeouts_ms](size_t i) {
    const SimDuration d = SimDuration::FromMillis(timeouts_ms[i]);
    return Row{EchoRtt(d, 200), EchoRtt(d, 8000), OneWayDelay(d)};
  });
  for (size_t i = 0; i < timeouts_ms.size(); ++i) {
    const auto& [echo200, echo8000, oneway] = rows[i];
    t.AddRow({TextTable::Num(timeouts_ms[i], 0) + " ms", TextTable::Us(echo200),
              TextTable::Us(echo8000), TextTable::Us(oneway)});
  }
  t.Print();
  std::printf(
      "\nReadings: the echo RTT is independent of the timer — replies (and, at\n"
      "8000 bytes, the half-buffer window update) carry every ACK, which is why\n"
      "the paper's tables show no delayed-ACK cliffs. A sender with no reverse\n"
      "traffic waits the full timer before Nagle releases its second small\n"
      "write: request/response protocols got this right by construction.\n");
}

// The pathological interactive matrix: the two-chunk request workload where
// the timer *does* set the round trip. Each row is one (timer, knob) cell
// from src/workload/interactive.h; with both defaults on, p50 pins to the
// timer value, and either TCP_NODELAY or delack-off makes the mode vanish.
void RunInteractiveMatrix() {
  std::printf("\nInteractive pathological matrix: two-chunk 100+100B requests\n\n");
  const std::array<double, 3> timeouts_ms = {50.0, 100.0, 200.0};
  const std::array<InteractiveKnob, 3> knobs = {InteractiveKnob::kPathological,
                                                InteractiveKnob::kNodelay,
                                                InteractiveKnob::kDelackOff};
  std::vector<InteractiveCell> cells;
  for (const double timeout_ms : timeouts_ms) {
    for (const InteractiveKnob knob : knobs) {
      InteractiveCell cell;
      cell.delack_timeout = SimDuration::FromMillis(timeout_ms);
      cell.knob = knob;
      cells.push_back(cell);
    }
  }
  const std::vector<InteractiveOutcome> outcomes =
      ParallelMap<InteractiveOutcome>(cells.size(), [&cells](size_t i) {
        return RunInteractiveCell(cells[i]);
      });
  TextTable t(InteractiveHeader());
  for (size_t i = 0; i < cells.size(); ++i) {
    t.AddRow(InteractiveRow(cells[i], outcomes[i]));
  }
  t.Print();
  std::printf(
      "\nReadings: with Nagle and delayed ACKs both on, p50 tracks the timer\n"
      "exactly — the held second chunk waits for the timer-released ACK, and\n"
      "the server cannot reply until it has the whole request. TCP_NODELAY\n"
      "rows drop to wire latency with zero Nagle holds; delack-off rows keep\n"
      "the holds (Nagle still queues chunk 2) but the immediate ACK releases\n"
      "them after one wire round trip, so the timer mode vanishes either way.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  tcplat::RunInteractiveMatrix();
  return 0;
}
