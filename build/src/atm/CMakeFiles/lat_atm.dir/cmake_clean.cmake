file(REMOVE_RECURSE
  "CMakeFiles/lat_atm.dir/aal34.cc.o"
  "CMakeFiles/lat_atm.dir/aal34.cc.o.d"
  "CMakeFiles/lat_atm.dir/atm_netif.cc.o"
  "CMakeFiles/lat_atm.dir/atm_netif.cc.o.d"
  "CMakeFiles/lat_atm.dir/atm_switch.cc.o"
  "CMakeFiles/lat_atm.dir/atm_switch.cc.o.d"
  "CMakeFiles/lat_atm.dir/tca100.cc.o"
  "CMakeFiles/lat_atm.dir/tca100.cc.o.d"
  "liblat_atm.a"
  "liblat_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
