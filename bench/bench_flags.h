// Shared argv parsing for the bench binaries, replacing the per-binary
// strcmp loops. Each flag takes either `--flag=value` or `--flag value`
// form; `--trace` may also stand alone (trace to stdout / default sink).

#ifndef BENCH_BENCH_FLAGS_H_
#define BENCH_BENCH_FLAGS_H_

#include <cstdint>
#include <string>

namespace tcplat {

struct BenchFlags {
  uint64_t seed = 1;
  bool quick = false;
  bool trace = false;      // --trace was given (with or without a path)
  std::string trace_path;  // optional path following --trace
  std::string out_path;    // --out; pre-set the default before parsing
  size_t size = 0;         // --size; pre-set the default before parsing
  int jobs = 0;            // --jobs; 0 = inherit TCPLAT_JOBS / core count
  int flows = 0;           // --flows; pre-set the default before parsing
  std::string csv_path;    // --csv; empty = no CSV export
  std::string perf_path;   // --perf; a fresh BENCH_perf.json to gate on
  std::string congestion_path;  // --congestion; a fresh BENCH_congestion.json
  std::string baseline_dir;       // --baseline-dir; committed baselines
  bool write_baseline = false;    // --write-baseline: refresh the baselines
  bool selftest = false;          // --selftest: pure-logic self-verification
  // Binary trace pipeline (src/trace/binary_trace.h).
  uint32_t trace_sample_flows = 0;  // --trace-sample-flows N: keep 1-in-N flows
  std::string bin_out_path;         // --bin-out PATH: write the sealed binary trace
  std::string from_binary_path;     // --from-binary PATH: read a sealed binary trace
  // Reservoir sampling and TLBT disk spill (PR 10).
  uint32_t trace_sample_reservoir = 0;  // --trace-sample-reservoir K: bottom-K flows
  std::string trace_spill_path;     // --trace-spill PATH: TLBT mid-run spill file
  size_t trace_spill_segment = 0;   // --trace-spill-segment BYTES; 0 = default
  // Timeseries telemetry plane (src/trace/timeseries.h).
  bool timeline = false;                // --timeline: enable / select timeline mode
  std::string timeline_csv_path;        // --timeline-csv PATH: long-format CSV out
  int64_t timeline_period_us = 0;       // --timeline-period-us N; 0 = default
};

// Parses argv into `flags` (whose pre-set values are the defaults). On an
// unknown flag prints a usage line mentioning `accepted` and returns false.
// `--jobs N` also exports TCPLAT_JOBS=N so the global executor pool — which
// is sized on first use — picks it up; pass it before any parallel work.
bool ParseBenchFlags(int argc, char** argv, BenchFlags* flags,
                     const char* accepted =
                         "[--seed N] [--jobs N] [--quick] [--trace [PATH]] "
                         "[--out PATH] [--size N]");

}  // namespace tcplat

#endif  // BENCH_BENCH_FLAGS_H_
