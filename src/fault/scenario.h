// Deterministic loss/recovery scenarios.
//
// The paper eliminates the TCP checksum on the strength of a clean local
// link (§4.2.1); this engine opens the complementary question — what does
// the recovery machinery cost when the link is *not* clean? A scenario
// builds a testbed, attaches seeded ImpairmentPolicy instances to every
// link, runs the echo workload, and reports goodput, retransmission
// activity, and RTT inflation. Scenarios are pure functions of their config,
// so grids of them run on the parallel executor with byte-identical output.

#ifndef SRC_FAULT_SCENARIO_H_
#define SRC_FAULT_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/fault/impairment.h"

namespace tcplat {

// Owns one seeded ImpairmentPolicy per link of a testbed and wires them in:
//  * ATM point-to-point — one policy per fiber direction;
//  * ATM switched      — one per host uplink fiber plus one for the switch
//                        output fibers (the downlinks);
//  * Ethernet          — one for the shared bus.
// Per-direction seeds are derived from config.seed so the directions see
// independent schedules. Must outlive the testbed's traffic.
class TestbedImpairment {
 public:
  TestbedImpairment(Testbed& testbed, const ImpairmentConfig& config);
  TestbedImpairment(const TestbedImpairment&) = delete;
  TestbedImpairment& operator=(const TestbedImpairment&) = delete;
  ~TestbedImpairment();

  struct Link {
    std::string name;  // "c2s" | "s2c" | "fabric" | "bus"
    std::unique_ptr<ImpairmentPolicy> policy;
  };
  const std::vector<Link>& links() const { return links_; }
  ImpairmentPolicy* link(std::string_view name);

  // Registers each policy with `tracer` as participant "link:<name>".
  void AttachTracer(Tracer* tracer);

  // Sum over every link; delivered + dropped == offered holds per link and
  // therefore for the total.
  ImpairmentStats TotalStats() const;

 private:
  Testbed* testbed_;
  std::vector<Link> links_;
};

struct LossScenarioConfig {
  NetworkKind network = NetworkKind::kAtm;
  bool switched = false;
  ImpairmentConfig impairment;  // applied per link, seeds derived per direction
  ChecksumMode checksum = ChecksumMode::kStandard;
  size_t size = 1024;  // echo payload bytes per direction per round trip
  int iterations = 100;
  int warmup = 8;
  uint64_t seed = 1;
  // Capture trace CSV + metrics JSON into the result (the determinism
  // tests compare these byte-for-byte).
  bool capture_observability = false;
};

struct LossScenarioResult {
  bool completed = false;  // every iteration echoed; connection survived
  RpcResult rpc;
  ImpairmentStats link;          // summed across all links
  uint64_t retransmits = 0;      // client + server
  uint64_t rexmt_timeouts = 0;   // client + server
  double goodput_mbps = 0;       // app payload bits echoed / measured time
  double mean_rtt_us = 0;
  double p99_rtt_us = 0;
  std::string trace_csv;     // only with capture_observability
  std::string metrics_json;  // only with capture_observability
};

LossScenarioResult RunLossScenario(const LossScenarioConfig& config);

// One stable report row: integers and fixed-decimal fields only, so output
// is byte-identical across runs and thread counts. `baseline_rtt_us` is the
// clean-link mean RTT for the same size (pass 0 to suppress the inflation
// column).
std::string LossScenarioRow(const LossScenarioConfig& config, const LossScenarioResult& result,
                            double baseline_rtt_us);

}  // namespace tcplat

#endif  // SRC_FAULT_SCENARIO_H_
