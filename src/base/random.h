// Deterministic pseudo-random number generation for simulation use.
//
// Simulations must be reproducible run-to-run, so all randomness flows
// through an explicitly seeded xoshiro256** generator rather than
// std::random_device or rand().

#ifndef SRC_BASE_RANDOM_H_
#define SRC_BASE_RANDOM_H_

#include <cstdint>

namespace tcplat {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
// seeded via splitmix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t Next();

  // Uniform in [0, bound). bound must be nonzero. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

 private:
  uint64_t state_[4];
};

}  // namespace tcplat

#endif  // SRC_BASE_RANDOM_H_
