// Tests for the IP layer: output header construction, input validation and
// dispatch, the ipintrq/softint path, and fragmentation/reassembly.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/random.h"
#include "src/ip/ip_stack.h"
#include "src/net/checksum.h"

namespace tcplat {
namespace {

constexpr Ipv4Addr kA = MakeAddr(10, 0, 0, 1);
constexpr Ipv4Addr kB = MakeAddr(10, 0, 0, 2);
constexpr uint8_t kTestProto = 250;

class CaptureNetIf : public NetIf {
 public:
  CaptureNetIf(IpStack* ip, size_t mtu) : ip_(ip), mtu_(mtu) { ip->AttachNetIf(this); }

  std::string name() const override { return "cap0"; }
  size_t mtu() const override { return mtu_; }
  void Output(MbufPtr packet, Ipv4Addr next_hop) override {
    sent.push_back(ChainToVector(packet.get()));
    next_hops.push_back(next_hop);
    ip_->host().pool().FreeChain(std::move(packet));
  }

  std::vector<std::vector<uint8_t>> sent;
  std::vector<Ipv4Addr> next_hops;

 private:
  IpStack* ip_;
  size_t mtu_;
};

class CaptureProto : public IpProtocolHandler {
 public:
  explicit CaptureProto(Host* host) : host_(host) {}
  void IpInput(MbufPtr packet, const Ipv4Header& hdr) override {
    received.push_back(ChainToVector(packet.get()));
    headers.push_back(hdr);
    host_->pool().FreeChain(std::move(packet));
  }
  std::vector<std::vector<uint8_t>> received;
  std::vector<Ipv4Header> headers;

 private:
  Host* host_;
};

class IpTest : public ::testing::Test {
 protected:
  IpTest()
      : host_(&sim_, "h", CostProfile::Decstation5000_200()),
        ip_(&host_, kA),
        nif_(&ip_, /*mtu=*/1500),
        proto_(&host_) {
    ip_.RegisterProtocol(kTestProto, &proto_);
  }

  MbufPtr PayloadChain(std::span<const uint8_t> data, size_t leading = 40) {
    CpuRun run(host_.cpu(), sim_.Now());
    MbufPtr m = host_.pool().GetHeader(leading);
    size_t off = std::min(data.size(), m->trailing_space());
    std::memcpy(m->Append(off).data(), data.data(), off);
    while (off < data.size()) {
      MbufPtr c = host_.pool().GetCluster();
      const size_t take = std::min(data.size() - off, c->capacity());
      std::memcpy(c->Append(take).data(), data.data() + off, take);
      off += take;
      ChainAppend(&m, std::move(c));
    }
    return m;
  }

  void SendPayload(std::span<const uint8_t> data) {
    MbufPtr chain = PayloadChain(data);
    CpuRun run(host_.cpu(), sim_.Now());
    ip_.Output(std::move(chain), kA, kB, kTestProto);
  }

  // Delivers raw packet bytes up through the driver boundary and runs the
  // softint.
  void Deliver(const std::vector<uint8_t>& packet_bytes) {
    CpuRun run(host_.cpu(), sim_.Now());
    MbufPtr head = host_.pool().GetHeader();
    const size_t hdr = std::min<size_t>(kIpv4HeaderBytes, packet_bytes.size());
    std::memcpy(head->Append(hdr).data(), packet_bytes.data(), hdr);
    size_t off = hdr;
    while (off < packet_bytes.size()) {
      MbufPtr m = host_.pool().GetCluster();
      const size_t take = std::min(packet_bytes.size() - off, m->capacity());
      std::memcpy(m->Append(take).data(), packet_bytes.data() + off, take);
      off += take;
      ChainAppend(&head, std::move(m));
    }
    ip_.InputFromDriver(std::move(head));
  }

  std::vector<uint8_t> RandomData(size_t n) {
    Rng rng(n + 7);
    std::vector<uint8_t> buf(n);
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    return buf;
  }

  Simulator sim_;
  Host host_;
  IpStack ip_;
  CaptureNetIf nif_;
  CaptureProto proto_;
};

TEST_F(IpTest, OutputBuildsValidHeader) {
  const auto data = RandomData(100);
  SendPayload(data);
  ASSERT_EQ(nif_.sent.size(), 1u);
  const auto& pkt = nif_.sent[0];
  ASSERT_EQ(pkt.size(), 120u);
  auto hdr = Ipv4Header::Parse(pkt);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->total_length, 120);
  EXPECT_EQ(hdr->protocol, kTestProto);
  EXPECT_EQ(hdr->src, kA);
  EXPECT_EQ(hdr->dst, kB);
  EXPECT_TRUE(Ipv4Header::VerifyChecksum(pkt));
  EXPECT_TRUE(std::equal(data.begin(), data.end(), pkt.begin() + kIpv4HeaderBytes));
  EXPECT_EQ(nif_.next_hops[0], kB);
}

TEST_F(IpTest, OutputIdsIncrement) {
  SendPayload(RandomData(10));
  SendPayload(RandomData(10));
  const auto h0 = Ipv4Header::Parse(nif_.sent[0]);
  const auto h1 = Ipv4Header::Parse(nif_.sent[1]);
  EXPECT_NE(h0->id, h1->id);
}

TEST_F(IpTest, OutputWithoutLeadingSpacePrependsHeaderMbuf) {
  const auto data = RandomData(50);
  MbufPtr chain = PayloadChain(data, /*leading=*/0);
  {
    CpuRun run(host_.cpu(), sim_.Now());
    ip_.Output(std::move(chain), kA, kB, kTestProto);
  }
  ASSERT_EQ(nif_.sent.size(), 1u);
  EXPECT_EQ(nif_.sent[0].size(), 70u);
  EXPECT_TRUE(Ipv4Header::VerifyChecksum(nif_.sent[0]));
}

TEST_F(IpTest, InputDispatchesToProtocol) {
  const auto data = RandomData(200);
  {
    MbufPtr chain = PayloadChain(data);
    CpuRun run(host_.cpu(), sim_.Now());
    ip_.Output(std::move(chain), kA, kA, kTestProto);  // addressed to ourselves
  }
  Deliver(nif_.sent[0]);
  sim_.RunToCompletion();
  ASSERT_EQ(proto_.received.size(), 1u);
  // The handler sees the whole packet (header still present).
  EXPECT_EQ(proto_.received[0], nif_.sent[0]);
  EXPECT_EQ(proto_.headers[0].protocol, kTestProto);
  EXPECT_EQ(ip_.stats().packets_received, 1u);
}

TEST_F(IpTest, InputDropsBadHeaderChecksum) {
  SendPayload(RandomData(50));
  auto pkt = nif_.sent[0];
  pkt[12] ^= 0xFF;  // src address byte
  Deliver(pkt);
  sim_.RunToCompletion();
  EXPECT_TRUE(proto_.received.empty());
  EXPECT_EQ(ip_.stats().header_checksum_errors, 1u);
}

TEST_F(IpTest, InputDropsWrongDestination) {
  // Build a packet addressed elsewhere (swap src/dst: dst=kB != our kA...
  // our stack is kA, so a packet to kB must be dropped).
  SendPayload(RandomData(50));
  Deliver(nif_.sent[0]);  // dst is kB, we are kA
  sim_.RunToCompletion();
  EXPECT_TRUE(proto_.received.empty());
  EXPECT_EQ(ip_.stats().not_for_us, 1u);
}

TEST_F(IpTest, InputDropsUnknownProtocol) {
  const auto data = RandomData(30);
  MbufPtr chain = PayloadChain(data);
  {
    CpuRun run(host_.cpu(), sim_.Now());
    ip_.Output(std::move(chain), kA, kA, 99);  // to ourselves, proto 99
  }
  Deliver(nif_.sent[0]);
  sim_.RunToCompletion();
  EXPECT_TRUE(proto_.received.empty());
  EXPECT_EQ(ip_.stats().no_protocol, 1u);
}

// A packet addressed to ourselves, as the receive tests need.
class IpLoopTest : public IpTest {
 protected:
  void SendToSelf(std::span<const uint8_t> data) {
    MbufPtr chain = PayloadChain(data);
    CpuRun run(host_.cpu(), sim_.Now());
    ip_.Output(std::move(chain), kA, kA, kTestProto);
  }
};

TEST_F(IpLoopTest, LinkPaddingIsTrimmedByTotalLength) {
  const auto data = RandomData(20);
  SendToSelf(data);
  auto pkt = nif_.sent[0];
  pkt.resize(pkt.size() + 6, 0xEE);  // Ethernet-style minimum-frame padding
  Deliver(pkt);
  sim_.RunToCompletion();
  ASSERT_EQ(proto_.received.size(), 1u);
  EXPECT_EQ(proto_.received[0].size(), 40u);  // header + 20, padding gone
}

TEST_F(IpLoopTest, IpqIntervalIsMeasured) {
  SendToSelf(RandomData(10));
  Deliver(nif_.sent[0]);
  sim_.RunToCompletion();
  EXPECT_EQ(host_.tracker().count(SpanId::kRxIpq), 1u);
  // At least the softint dispatch latency.
  EXPECT_GE(host_.tracker().total(SpanId::kRxIpq).micros(),
            host_.cpu().profile().softint_dispatch.fixed_us - 0.01);
}

TEST_F(IpLoopTest, FragmentsLargePacketCorrectly) {
  const auto data = RandomData(3000);
  SendToSelf(data);
  // MTU 1500: fragment payload cap = 1480 -> 1480 + 1480 + 40.
  ASSERT_EQ(nif_.sent.size(), 3u);
  EXPECT_EQ(ip_.stats().fragments_sent, 3u);
  size_t reassembled_bytes = 0;
  uint16_t common_id = Ipv4Header::Parse(nif_.sent[0])->id;
  for (size_t i = 0; i < 3; ++i) {
    auto h = Ipv4Header::Parse(nif_.sent[i]);
    ASSERT_TRUE(h.has_value());
    EXPECT_LE(h->total_length, 1500);
    EXPECT_EQ(h->id, common_id);
    EXPECT_EQ(h->more_fragments, i != 2);
    EXPECT_EQ(h->frag_offset * 8, reassembled_bytes);
    reassembled_bytes += h->total_length - kIpv4HeaderBytes;
  }
  EXPECT_EQ(reassembled_bytes, 3000u);
}

TEST_F(IpLoopTest, ReassemblesInOrderFragments) {
  const auto data = RandomData(3000);
  SendToSelf(data);
  for (const auto& frag : nif_.sent) {
    Deliver(frag);
  }
  sim_.RunToCompletion();
  ASSERT_EQ(proto_.received.size(), 1u);
  EXPECT_EQ(ip_.stats().reassembled, 1u);
  const auto& pkt = proto_.received[0];
  ASSERT_EQ(pkt.size(), 3020u);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), pkt.begin() + kIpv4HeaderBytes));
  EXPECT_EQ(ip_.pending_reassemblies(), 0u);
}

TEST_F(IpLoopTest, ReassemblesOutOfOrderFragments) {
  const auto data = RandomData(4000);
  SendToSelf(data);
  ASSERT_EQ(nif_.sent.size(), 3u);
  Deliver(nif_.sent[2]);
  Deliver(nif_.sent[0]);
  Deliver(nif_.sent[1]);
  sim_.RunToCompletion();
  ASSERT_EQ(proto_.received.size(), 1u);
  const auto& pkt = proto_.received[0];
  EXPECT_TRUE(std::equal(data.begin(), data.end(), pkt.begin() + kIpv4HeaderBytes));
}

TEST_F(IpLoopTest, MissingFragmentHoldsReassembly) {
  SendToSelf(RandomData(3000));
  Deliver(nif_.sent[0]);
  Deliver(nif_.sent[2]);
  sim_.RunToCompletion();
  EXPECT_TRUE(proto_.received.empty());
  EXPECT_EQ(ip_.pending_reassemblies(), 1u);
}

class IpFragSizeTest : public IpLoopTest, public ::testing::WithParamInterface<size_t> {};

TEST_P(IpFragSizeTest, RoundTripsThroughFragmentation) {
  const auto data = RandomData(GetParam());
  SendToSelf(data);
  for (const auto& frag : nif_.sent) {
    Deliver(frag);
  }
  sim_.RunToCompletion();
  ASSERT_EQ(proto_.received.size(), 1u);
  const auto& pkt = proto_.received[0];
  ASSERT_EQ(pkt.size(), data.size() + kIpv4HeaderBytes);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), pkt.begin() + kIpv4HeaderBytes));
}

INSTANTIATE_TEST_SUITE_P(Sizes, IpFragSizeTest,
                         ::testing::Values(100, 1480, 1481, 2960, 2961, 5000, 8000),
                         [](const auto& inst) { return "n" + std::to_string(inst.param); });

}  // namespace
}  // namespace tcplat
