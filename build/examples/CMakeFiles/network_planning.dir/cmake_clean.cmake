file(REMOVE_RECURSE
  "CMakeFiles/network_planning.dir/network_planning.cpp.o"
  "CMakeFiles/network_planning.dir/network_planning.cpp.o.d"
  "network_planning"
  "network_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
