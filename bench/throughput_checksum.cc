// Throughput under the three checksum strategies — §4.2's closing claim:
// "with proper support ... eliminating the TCP checksum can also benefit
// throughput oriented applications", while "even an integrated copy and
// checksum routine limits bandwidth to about 9% of the bus bandwidth on the
// DECstation 5000/200". Streams bulk data one way and reports goodput,
// plus the per-byte data-touching budget that explains it.

#include <array>
#include <cstdio>
#include <vector>

#include "src/base/random.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

struct Transfer {
  size_t bytes = 0;
  SimTime start;
  SimTime end;
  bool ok = false;
};

SimTask Sender(Testbed* tb, Transfer* x) {
  Socket* s = tb->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  Rng rng(7);
  std::vector<uint8_t> block(32 * 1024);
  for (auto& b : block) {
    b = static_cast<uint8_t>(rng.Next());
  }
  x->start = tb->client_host().CurrentTime();
  size_t sent = 0;
  while (sent < x->bytes) {
    const size_t want = std::min(block.size(), x->bytes - sent);
    size_t off = 0;
    while (off < want) {
      const size_t n = s->Write({block.data() + off, want - off});
      off += n;
      if (n == 0) {
        co_await s->WaitWritable();
      }
    }
    sent += want;
  }
  s->Close();
}

SimTask Receiver(Testbed* tb, Transfer* x) {
  Socket* listener = tb->server_tcp().Listen(kEchoPort);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  std::vector<uint8_t> buf(32 * 1024);
  size_t got = 0;
  while (got < x->bytes) {
    const size_t n = s->Read(buf);
    if (n > 0) {
      got += n;
    } else {
      if (s->eof() || s->has_error()) {
        break;
      }
      co_await s->WaitReadable();
    }
  }
  x->end = tb->server_host().CurrentTime();
  x->ok = got == x->bytes;
}

double MeasureMbps(ChecksumMode mode, size_t window) {
  TestbedConfig cfg;
  cfg.tcp.checksum = mode;
  cfg.tcp.sndbuf = window;
  cfg.tcp.rcvbuf = window;
  Testbed tb(cfg);
  Transfer x;
  x.bytes = 4 * 1024 * 1024;
  tb.server_host().Spawn("rx", Receiver(&tb, &x));
  tb.client_host().Spawn("tx", Sender(&tb, &x));
  tb.sim().RunToCompletion();
  if (!x.ok) {
    return -1;
  }
  return static_cast<double>(x.bytes) * 8.0 / (x.end - x.start).seconds() / 1e6;
}

void Run() {
  std::printf("Bulk TCP throughput over ATM by checksum strategy (4 MiB one way)\n\n");
  TextTable t({"Socket buffers", "Standard (Mbit/s)", "Combined (Mbit/s)", "None (Mbit/s)",
               "None vs Standard"});
  const std::array<size_t, 4> windows = {8192u, 16384u, 32768u, 65535u};
  struct Row {
    double std_mbps;
    double comb_mbps;
    double none_mbps;
  };
  const std::vector<Row> rows = ParallelMap<Row>(windows.size(), [&windows](size_t i) {
    return Row{MeasureMbps(ChecksumMode::kStandard, windows[i]),
               MeasureMbps(ChecksumMode::kCombined, windows[i]),
               MeasureMbps(ChecksumMode::kNone, windows[i])};
  });
  for (size_t i = 0; i < windows.size(); ++i) {
    const auto& [std_mbps, comb_mbps, none_mbps] = rows[i];
    t.AddRow({std::to_string(windows[i]), TextTable::Num(std_mbps, 2),
              TextTable::Num(comb_mbps, 2), TextTable::Num(none_mbps, 2),
              TextTable::Pct(100.0 * (none_mbps - std_mbps) / std_mbps, 1)});
  }
  t.Print();

  const CostProfile p = CostProfile::Decstation5000_200();
  std::printf("\nPer-byte data-touching budget on the DECstation (us/KB, from the\n"
              "calibrated profile): checksum %.0f, copyin %.0f, driver rx %.0f —\n"
              "the integrated copy+checksum loop alone caps memory throughput at\n"
              "%.1f MB/s, the paper's '9%% of the bus bandwidth' observation.\n",
              p.in_cksum.per_byte_us * 1024, p.copyin_cluster.per_byte_us * 1024,
              (p.atm_rx_per_cell.fixed_us / 44.0) * 1024,
              1.0 / p.integrated_copy_cksum.per_byte_us);
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
