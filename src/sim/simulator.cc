#include "src/sim/simulator.h"

#include "src/base/check.h"

namespace tcplat {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::Schedule(SimDuration delay, EventQueue::Callback fn) {
  TCPLAT_CHECK_GE(delay.nanos(), 0) << "cannot schedule into the past";
  return events_.ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, EventQueue::Callback fn) {
  TCPLAT_CHECK_GE(when.nanos(), now_.nanos()) << "cannot schedule into the past";
  return events_.ScheduleAt(when, std::move(fn));
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  uint64_t n = 0;
  while (!events_.empty() && events_.NextTime() <= deadline) {
    auto ev = events_.PopNext();
    TCPLAT_CHECK_GE(ev.time.nanos(), now_.nanos());
    now_ = ev.time;
    ev.fn();
    ++n;
    ++dispatched_;
  }
  if (events_.empty() || events_.NextTime() > deadline) {
    if (deadline > now_ && deadline != SimTime::Max()) {
      now_ = deadline;
    }
  }
  return n;
}

SimTime Simulator::NextEventTime() {
  return events_.empty() ? SimTime::Max() : events_.NextTime();
}

uint64_t Simulator::RunWhileBefore(SimTime limit) {
  uint64_t n = 0;
  while (!events_.empty() && events_.NextTime() < limit) {
    auto ev = events_.PopNext();
    TCPLAT_CHECK_GE(ev.time.nanos(), now_.nanos());
    now_ = ev.time;
    ev.fn();
    ++n;
    ++dispatched_;
  }
  return n;
}

uint64_t Simulator::RunToCompletion() {
  uint64_t n = 0;
  while (Step()) {
    ++n;
  }
  return n;
}

bool Simulator::Step() {
  if (events_.empty()) {
    return false;
  }
  auto ev = events_.PopNext();
  TCPLAT_CHECK_GE(ev.time.nanos(), now_.nanos());
  now_ = ev.time;
  ev.fn();
  ++dispatched_;
  return true;
}

}  // namespace tcplat
