// Regenerates Table 7: round-trip latency with and without the TCP checksum
// (negotiated off via the alternate-checksum option, §4.2). The paper finds
// savings growing from ~0% at 4 bytes to ~41% at 8000.

#include <cstdio>
#include <vector>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"

namespace tcplat {
namespace {

RpcResult Measure(ChecksumMode mode, size_t size) {
  TestbedConfig cfg;
  cfg.tcp.checksum = mode;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  return RunRpcBenchmark(tb, opt);
}

struct Pair {
  RpcResult with;
  RpcResult without;
};

void Run() {
  std::printf("Table 7: round-trip latency with and without the TCP checksum (us)\n\n");
  const std::vector<Pair> grid = ParallelMap<Pair>(paper::kSizes.size(), [](size_t i) {
    return Pair{Measure(ChecksumMode::kStandard, paper::kSizes[i]),
                Measure(ChecksumMode::kNone, paper::kSizes[i])};
  });
  TextTable t({"Size (bytes)", "Checksum", "No Checksum", "Saving (%)", "paper Cksum",
               "paper NoCksum", "paper Saving (%)"});
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    const size_t size = paper::kSizes[i];
    const RpcResult& with = grid[i].with;
    const RpcResult& without = grid[i].without;
    const double with_us = with.MeanRtt().micros();
    const double without_us = without.MeanRtt().micros();
    t.AddRow({std::to_string(size), TextTable::Us(with_us), TextTable::Us(without_us),
              TextTable::Pct(100.0 * (with_us - without_us) / with_us, 1),
              TextTable::Us(paper::kTable7Checksum[i]),
              TextTable::Us(paper::kTable7NoChecksum[i]),
              TextTable::Pct(100.0 * (paper::kTable7Checksum[i] - paper::kTable7NoChecksum[i]) /
                                 paper::kTable7Checksum[i],
                             1)});
  }
  t.Print();
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
