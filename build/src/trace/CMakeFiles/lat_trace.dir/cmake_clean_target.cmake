file(REMOVE_RECURSE
  "liblat_trace.a"
)
