#include "src/atm/atm_switch.h"

#include <algorithm>
#include <string>

#include "src/atm/aal34.h"
#include "src/base/check.h"
#include "src/net/byte_order.h"

namespace tcplat {

const char* DropPolicyName(DropPolicy p) {
  switch (p) {
    case DropPolicy::kTailDrop:
      return "tail";
    case DropPolicy::kEpd:
      return "epd";
    case DropPolicy::kPpd:
      return "ppd";
  }
  return "?";
}

AtmSwitch::AtmSwitch(Simulator* sim, double bits_per_second, SimDuration propagation,
                     SimDuration per_cell_latency)
    : sim_(sim), bits_per_second_(bits_per_second), propagation_(propagation),
      per_cell_latency_(per_cell_latency) {
  TCPLAT_CHECK(sim != nullptr);
}

void AtmSwitch::AttachOutput(int port, CellSink* sink, double bits_per_second) {
  TCPLAT_CHECK(sink != nullptr);
  TCPLAT_CHECK(outputs_.find(port) == outputs_.end()) << "output port in use";
  OutputPort out;
  const double rate = bits_per_second > 0 ? bits_per_second : bits_per_second_;
  out.wire = std::make_unique<Wire>(sim_, rate, propagation_);
  out.wire->set_impairment(output_impairment_);
  out.sink = sink;
  outputs_[port] = std::move(out);
}

void AtmSwitch::set_output_impairment(LinkImpairment* impairment) {
  output_impairment_ = impairment;
  for (auto& [port, out] : outputs_) {
    out.wire->set_impairment(impairment);
  }
}

CellSink* AtmSwitch::input(int port) {
  auto it = inputs_.find(port);
  if (it == inputs_.end()) {
    it = inputs_.emplace(port, std::make_unique<InputPort>(this, port)).first;
  }
  return it->second.get();
}

void AtmSwitch::AddRoute(uint16_t vci, int out_port) {
  TCPLAT_CHECK(outputs_.find(out_port) != outputs_.end()) << "route to unattached port";
  routes_[vci] = out_port;
}

void AtmSwitch::SwitchCell(int /*in_port*/, SimTime arrival, std::vector<uint8_t> wire_bytes) {
  TCPLAT_CHECK_EQ(wire_bytes.size(), kAtmCellBytes);
  const uint16_t vci = LoadBe16(&wire_bytes[1]);
  auto route = routes_.find(vci);
  if (route == routes_.end()) {
    ++stats_.no_route;
    if (tracer_ != nullptr) {
      tracer_->RecordPacket(trace_id_, TraceLayer::kAtm, TraceEventKind::kDrop, arrival, vci,
                            0, wire_bytes.size());
    }
    return;
  }
  OutputPort& out = outputs_.at(route->second);
  const bool buffered = vc_config_.buffer_cells > 0;
  if (buffered && !AdmitCell(vci, arrival, wire_bytes)) {
    return;  // discarded by the VC buffer policy
  }
  ++stats_.cells_switched;
  if (tracer_ != nullptr) {
    tracer_->RecordPacket(trace_id_, TraceLayer::kAtm, TraceEventKind::kCellSwitch, arrival,
                          vci, static_cast<uint64_t>(route->second), wire_bytes.size());
  }

  if (fabric_corrupt_) {
    fabric_corrupt_(wire_bytes);
  }

  // Hardware pipeline: no host CPU involved. The cell re-serializes on the
  // output fiber after the fabric latency (the wire handles head-of-line
  // queueing when cells from several inputs converge on one output). A
  // buffered cell holds its VC's occupancy slot until its last bit leaves;
  // the drain is scheduled on the switch's own simulator, which is also
  // where serialization is accounted, so sharded runs stay deterministic.
  CellSink* sink = out.sink;
  Wire* wire = out.wire.get();
  const SimTime ready = arrival + per_cell_latency_;
  sim_->ScheduleAt(ready, [this, wire, sink, ready, vci, buffered,
                           bytes = std::move(wire_bytes)]() mutable {
    const SimTime done =
        wire->Transmit(ready, std::move(bytes),
                       [sink](SimTime t, std::vector<uint8_t> data) {
                         sink->DeliverCell(t, std::move(data));
                       });
    if (buffered) {
      sim_->ScheduleAt(done, [this, vci] {
        VcState& vc = vc_states_[vci];
        --vc.occupancy;
        Sample(TsMetric::kVcOccupancy, vci, sim_->Now(), vc.occupancy);
      });
    }
  });
}

AtmSwitch::VcState& AtmSwitch::EnsureVc(uint16_t vci) {
  auto it = vc_states_.find(vci);
  if (it == vc_states_.end()) {
    it = vc_states_.emplace(vci, VcState{}).first;
    const std::string prefix = "switch.vc" + std::to_string(vci);
    metrics_.AddGaugeView(prefix + ".occupancy", &it->second.occupancy);
    metrics_.AddGaugeView(prefix + ".hiwat", &it->second.hiwat);
    metrics_.AddCounterView(prefix + ".cells_forwarded", &it->second.cells_forwarded);
    metrics_.AddCounterView(prefix + ".cells_dropped", &it->second.cells_dropped);
    if (!metrics_.contains("switch.cells_dropped_tail")) {
      metrics_.AddCounterView("switch.cells_dropped_tail", &stats_.cells_dropped_tail);
      metrics_.AddCounterView("switch.cells_dropped_epd", &stats_.cells_dropped_epd);
      metrics_.AddCounterView("switch.cells_dropped_ppd", &stats_.cells_dropped_ppd);
      metrics_.AddCounterView("switch.frames_discarded", &stats_.frames_discarded);
    }
  }
  return it->second;
}

bool AtmSwitch::AdmitCell(uint16_t vci, SimTime arrival,
                          const std::vector<uint8_t>& wire_bytes) {
  VcState& vc = EnsureVc(vci);
  // The AAL3/4 segment type rides in the top two bits of the SAR header
  // (wire byte 5); it is what lets the switch see frame boundaries.
  const auto st = static_cast<SegmentType>(wire_bytes[5] >> 6);
  const bool frame_start = st == SegmentType::kBom || st == SegmentType::kSsm;
  const bool frame_end = st == SegmentType::kEom || st == SegmentType::kSsm;
  const DropPolicy policy = vc_config_.policy;

  bool drop = false;
  bool epd = false;

  if (frame_start) {
    vc.dropping_frame = false;  // a new frame resets any discard-in-progress
    vc.early_discard = false;
    if (policy == DropPolicy::kEpd) {
      size_t threshold = vc_config_.epd_threshold;
      if (threshold == 0) {
        // Default: one max-size AAL frame of headroom (a 1500-byte MTU
        // segments into ~35 cells), floored at half the buffer so tiny
        // buffers still admit something. A threshold much lower than this
        // just shrinks the effective buffer and trades frame integrity for
        // extra timeout stalls.
        constexpr size_t kFrameHeadroomCells = 36;
        const size_t cap = vc_config_.buffer_cells;
        threshold = std::max(cap / 2, cap > kFrameHeadroomCells ? cap - kFrameHeadroomCells : 0);
      }
      if (vc.occupancy >= static_cast<int64_t>(threshold)) {
        // Early discard: refuse the whole frame while there is still room,
        // rather than truncating one mid-stream later.
        vc.dropping_frame = true;
        vc.early_discard = true;
        ++vc.frames_discarded;
        ++stats_.frames_discarded;
        SampleEdge(TsMetric::kVcEpdRefusal, vci, arrival, vc.occupancy);
      }
    }
  }

  if (vc.dropping_frame) {
    if (!vc.early_discard && frame_end) {
      // Late (overflow-initiated) discard spares the EOM so the reassembler
      // sees the frame boundary; EPD's early discard eats the whole frame.
      vc.dropping_frame = false;
    } else {
      drop = true;
      epd = vc.early_discard;
      if (frame_end) {
        vc.dropping_frame = false;
        vc.early_discard = false;
      }
    }
  }

  if (!drop && vc.occupancy >= static_cast<int64_t>(vc_config_.buffer_cells)) {
    // Overflow. Tail drop loses just this cell; EPD/PPD also give up on the
    // rest of the frame (an incomplete frame is useless to AAL anyway).
    drop = true;
    if (policy != DropPolicy::kTailDrop && !frame_end) {
      vc.dropping_frame = true;
      ++vc.frames_discarded;
      ++stats_.frames_discarded;
    }
  }

  if (drop) {
    ++vc.cells_dropped;
    switch (policy) {
      case DropPolicy::kTailDrop:
        ++stats_.cells_dropped_tail;
        break;
      case DropPolicy::kEpd:
        if (epd) {
          ++stats_.cells_dropped_epd;
        } else {
          ++stats_.cells_dropped_ppd;  // mid-frame overflow: PPD-style tail
        }
        break;
      case DropPolicy::kPpd:
        ++stats_.cells_dropped_ppd;
        break;
    }
    if (tracer_ != nullptr) {
      tracer_->RecordPacket(trace_id_, TraceLayer::kAtm, TraceEventKind::kDrop, arrival, vci,
                            static_cast<uint64_t>(vc.occupancy), wire_bytes.size());
    }
    Sample(TsMetric::kVcDropsCum, vci, arrival, static_cast<int64_t>(vc.cells_dropped));
    return false;
  }

  ++vc.occupancy;
  vc.hiwat = std::max(vc.hiwat, vc.occupancy);
  ++vc.cells_forwarded;
  Sample(TsMetric::kVcOccupancy, vci, arrival, vc.occupancy);
  Sample(TsMetric::kVcHiwat, vci, arrival, vc.hiwat);
  return true;
}

}  // namespace tcplat
