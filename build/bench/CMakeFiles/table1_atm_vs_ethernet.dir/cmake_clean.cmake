file(REMOVE_RECURSE
  "CMakeFiles/table1_atm_vs_ethernet.dir/table1_atm_vs_ethernet.cc.o"
  "CMakeFiles/table1_atm_vs_ethernet.dir/table1_atm_vs_ethernet.cc.o.d"
  "table1_atm_vs_ethernet"
  "table1_atm_vs_ethernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_atm_vs_ethernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
