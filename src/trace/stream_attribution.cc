#include "src/trace/stream_attribution.h"

#include <algorithm>

namespace tcplat {
namespace {

// The client end of a flow is the one with the higher port: ephemeral ports
// sit above every listen port in this simulator (same rule as the batch
// attribution pass).
bool IsClientRaw(uint64_t raw_flow) {
  return ((raw_flow >> 16) & 0xFFFF) > (raw_flow & 0xFFFF);
}

int CountInDeque(const std::deque<int64_t>& ts, int64_t lo, int64_t hi) {
  int n = 0;
  for (int64_t t : ts) {
    if (t > hi) break;
    if (t >= lo) ++n;
  }
  return n;
}

void PruneThrough(std::deque<int64_t>* ts, int64_t hi) {
  while (!ts->empty() && ts->front() <= hi) {
    ts->pop_front();
  }
}

// First timestamp in [lo, hi], or -1 (same rule as the batch FirstIn; the
// deque is in timestamp order).
int64_t FirstInDeque(const std::deque<int64_t>& ts, int64_t lo, int64_t hi) {
  for (int64_t t : ts) {
    if (t > hi) break;
    if (t >= lo) return t;
  }
  return -1;
}

}  // namespace

StreamingAttribution::StreamingAttribution(const AttributionOptions& options)
    : options_(options) {}

size_t StreamingAttribution::AllocJourney() {
  size_t idx;
  if (!free_list_.empty()) {
    idx = free_list_.back();
    free_list_.pop_back();
  } else {
    idx = arena_.size();
    arena_.emplace_back();
    refs_.push_back(0);
  }
  arena_[idx] = Journey{};
  refs_[idx] = 1;
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  return idx;
}

void StreamingAttribution::Release(size_t idx) {
  if (idx == kNone) {
    return;
  }
  if (--refs_[idx] == 0) {
    free_list_.push_back(idx);
    --live_;
  }
}

StreamingAttribution::HostState& StreamingAttribution::HostAt(size_t host) {
  if (host >= hosts_.size()) {
    hosts_.resize(host + 1);
  }
  return hosts_[host];
}

void StreamingAttribution::OnEvent(const TraceEvent& ev) {
  HostState& st = HostAt(ev.host);
  const uint64_t message = options_.message_bytes;
  switch (ev.kind) {
    // ---- Attribution user-boundary records (batch pass 1) ----------------
    case TraceEventKind::kSpanBegin:
      if (ev.span == SpanId::kTxUser && st.pending_begin < 0) {
        st.pending_begin = ev.ts_ns;
      }
      break;

    case TraceEventKind::kUserWrite: {
      const int64_t begin = st.pending_begin >= 0 ? st.pending_begin : ev.ts_ns;
      st.pending_begin = -1;
      if (message == 0 || ev.flow == 0 || ev.bytes == 0) {
        break;
      }
      FlowState& fs = flows_[CanonicalFlow(ev.flow)];
      if (IsClientRaw(ev.flow)) {
        if (fs.client_host < 0) {
          fs.client_host = ev.host;
        }
        if (fs.cum_client_write % message == 0) {
          fs.starts.push_back(begin);
        }
        fs.cum_client_write += ev.bytes;
      } else {
        if (fs.server_host < 0) {
          fs.server_host = ev.host;
        }
        if (fs.cum_server_write % message == 0) {
          fs.srv_starts.push_back(begin);
        }
        fs.cum_server_write += ev.bytes;
      }
      break;
    }

    case TraceEventKind::kUserRead:
      if (message != 0 && ev.flow != 0 && ev.bytes != 0 && IsClientRaw(ev.flow)) {
        OnClientRead(&flows_[CanonicalFlow(ev.flow)], ev);
      }
      break;

    case TraceEventKind::kDelayedAck:
      if (ev.flow != 0) {
        flows_[CanonicalFlow(ev.flow)].delack_ts.push_back(ev.ts_ns);
      }
      break;

    case TraceEventKind::kNagleHold:
      if (ev.flow != 0) {
        FlowState& fs = flows_[CanonicalFlow(ev.flow)];
        (IsClientRaw(ev.flow) ? fs.client_hold_ts : fs.server_hold_ts)
            .push_back(ev.ts_ns);
      }
      break;

    // ---- Causal chain state machines (CausalGraph::Build, arena slots) ---
    case TraceEventKind::kRetransmit:
      st.retransmit_pending = true;
      if (ev.flow != 0) {
        flows_[CanonicalFlow(ev.flow)].retransmit_ts.push_back(ev.ts_ns);
      }
      break;

    case TraceEventKind::kSegTx: {
      Release(st.tx_open);
      const size_t idx = AllocJourney();
      Journey& j = arena_[idx];
      j.tx_host = ev.host;
      j.seg_tx_ns = ev.ts_ns;
      j.seg_flow = ev.flow;
      j.seg_seq = ev.packet;
      j.seg_bytes = ev.bytes;
      j.retransmit = st.retransmit_pending;
      st.retransmit_pending = false;
      st.tx_open = idx;
      if (ev.flow != 0 && ev.bytes > 0) {
        // Only data journeys can anchor a window; keeping bare ACKs out of
        // the candidate list is what lets them retire with their chain.
        flows_[CanonicalFlow(ev.flow)].candidates.push_back(idx);
        AddRef(idx);
      }
      break;
    }

    case TraceEventKind::kPktTx: {
      size_t idx;
      if (st.tx_open != kNone && arena_[st.tx_open].pkt_tx_ns < 0) {
        idx = st.tx_open;
      } else {
        Release(st.tx_open);
        idx = AllocJourney();
        arena_[idx].tx_host = ev.host;
        st.tx_open = idx;
      }
      Journey& j = arena_[idx];
      j.pkt_tx_ns = ev.ts_ns;
      j.ip_key = ev.flow;
      j.ip_id = ev.packet;
      in_flight_[{ev.flow, ev.packet}].push_back(idx);
      AddRef(idx);
      break;
    }

    case TraceEventKind::kTxStall:
      if (st.tx_open != kNone) {
        arena_[st.tx_open].tx_stall_ns += ev.dur_ns;
      }
      break;

    case TraceEventKind::kPduTx:
    case TraceEventKind::kFrameTx:
      if (st.tx_open != kNone && arena_[st.tx_open].link_tx_ns < 0) {
        arena_[st.tx_open].link_tx_ns = ev.ts_ns;
        Release(st.tx_open);
        st.tx_open = kNone;
      }
      break;

    case TraceEventKind::kPduRx:
    case TraceEventKind::kFrameRx:
      st.pending_link_rx = ev.ts_ns;
      break;

    case TraceEventKind::kEnqueue:
      if (ev.layer == TraceLayer::kIp) {
        st.ipq.emplace_back(st.pending_link_rx, ev.ts_ns);
        st.pending_link_rx = -1;
      }
      break;

    case TraceEventKind::kDequeue:
      if (ev.layer == TraceLayer::kIp) {
        if (!st.ipq.empty()) {
          st.cur_link_rx = st.ipq.front().first;
          st.cur_enqueue = st.ipq.front().second;
          st.ipq.pop_front();
        } else {
          st.cur_link_rx = st.cur_enqueue = -1;
        }
        st.cur_dequeue = ev.ts_ns;
        st.cur_ipq_wait = ev.dur_ns;
        Release(st.rx_open);
        st.rx_open = kNone;
      }
      break;

    case TraceEventKind::kPktRx: {
      size_t idx = kNone;
      auto it = in_flight_.find({ev.flow, ev.packet});
      if (it != in_flight_.end() && !it->second.empty()) {
        // The in-flight reference becomes the rx_open pin: no net change.
        idx = it->second.front();
        it->second.pop_front();
        if (it->second.empty()) {
          in_flight_.erase(it);
        }
      } else {
        // Receive side with no observed transmit.
        idx = AllocJourney();
        arena_[idx].ip_key = ev.flow;
        arena_[idx].ip_id = ev.packet;
      }
      Release(st.rx_open);
      Journey& j = arena_[idx];
      j.rx_host = ev.host;
      j.link_rx_ns = st.cur_link_rx;
      j.enqueue_ns = st.cur_enqueue;
      j.dequeue_ns = st.cur_dequeue;
      j.ipq_wait_ns = st.cur_ipq_wait;
      j.pkt_rx_ns = ev.ts_ns;
      st.rx_open = idx;
      st.cur_link_rx = st.cur_enqueue = -1;
      break;
    }

    case TraceEventKind::kSegRx:
      if (st.rx_open != kNone && arena_[st.rx_open].seg_rx_ns < 0) {
        arena_[st.rx_open].seg_rx_ns = ev.ts_ns;
        arena_[st.rx_open].rx_seg_flow = ev.flow;
      }
      break;

    case TraceEventKind::kWakeup:
      if (ev.layer == TraceLayer::kSock && st.rx_open != kNone) {
        Journey& j = arena_[st.rx_open];
        if (j.seg_rx_ns >= 0 && j.wakeup_ns < 0 && ev.flow == j.rx_seg_flow) {
          j.wakeup_ns = ev.ts_ns;
        }
      }
      break;

    default:
      break;
  }
}

void StreamingAttribution::OnClientRead(FlowState* flow, const TraceEvent& ev) {
  flow->cum_client_read += ev.bytes;
  // Same boundary rule as the batch MessageEnds: one window per crossed
  // message multiple, all stamped with this read's timestamp.
  while (flow->cum_client_read >= (flow->windows_closed + 1) * options_.message_bytes) {
    CloseWindow(CanonicalFlow(ev.flow), flow, ev.ts_ns);
  }
}

void StreamingAttribution::CloseWindow(uint64_t canonical_flow, FlowState* flow, int64_t end_ns) {
  const uint64_t i = flow->windows_closed++;

  const bool have_start =
      i >= flow->starts_base && i - flow->starts_base < flow->starts.size();
  if (have_start && flow->client_host >= 0) {
    RttWindow w;
    w.flow = canonical_flow;
    w.client_host = flow->client_host;
    w.server_host = flow->server_host;
    w.start_ns = flow->starts[i - flow->starts_base];
    w.end_ns = end_ns;

    // Last delivered data journey of each direction with seg_tx inside the
    // window — candidates are in seg_tx order, so later hits overwrite.
    const Journey* req = nullptr;
    const Journey* rsp = nullptr;
    for (size_t idx : flow->candidates) {
      const Journey& j = arena_[idx];
      if (j.seg_tx_ns > w.end_ns) {
        break;
      }
      if (j.seg_tx_ns < w.start_ns || !j.data() || !j.delivered()) {
        continue;
      }
      if (j.tx_host == flow->client_host) {
        req = &j;
      } else if (j.tx_host == flow->server_host) {
        rsp = &j;
      }
    }
    const bool have_srv =
        i >= flow->srv_starts_base && i - flow->srv_starts_base < flow->srv_starts.size();
    const int64_t srv_begin = have_srv ? flow->srv_starts[i - flow->srv_starts_base] : -1;
    const int64_t cli_hold =
        req != nullptr ? FirstInDeque(flow->client_hold_ts, w.start_ns, req->seg_tx_ns) : -1;
    const int64_t srv_hold =
        rsp != nullptr ? FirstInDeque(flow->server_hold_ts, w.start_ns, rsp->seg_tx_ns) : -1;

    DecomposeWindow(req, rsp, srv_begin, cli_hold, srv_hold, &w);
    w.retransmits = CountInDeque(flow->retransmit_ts, w.start_ns, w.end_ns);
    w.delayed_acks = CountInDeque(flow->delack_ts, w.start_ns, w.end_ns);
    if (i >= static_cast<uint64_t>(std::max(options_.warmup_windows, 0))) {
      windows_.push_back(w);
    }
  }

  // Retire state nothing after this window can reference: consumed message
  // starts, candidate journeys sent at or before the close (the next window
  // starts strictly later on a closed-loop flow), and annotation timestamps.
  while (!flow->starts.empty() && flow->starts_base <= i) {
    flow->starts.pop_front();
    ++flow->starts_base;
  }
  while (!flow->srv_starts.empty() && flow->srv_starts_base <= i) {
    flow->srv_starts.pop_front();
    ++flow->srv_starts_base;
  }
  while (!flow->candidates.empty() && arena_[flow->candidates.front()].seg_tx_ns <= end_ns) {
    Release(flow->candidates.front());
    flow->candidates.pop_front();
  }
  PruneThrough(&flow->retransmit_ts, end_ns);
  PruneThrough(&flow->delack_ts, end_ns);
  PruneThrough(&flow->client_hold_ts, end_ns);
  PruneThrough(&flow->server_hold_ts, end_ns);

  // Datagrams of this flow transmitted at or before the previous close that
  // still await a kPktRx were lost in flight (a one-way traversal cannot
  // outlast a full round-trip window): drop their in-flight pins so lossy
  // runs stay O(in-flight packets). A pruned datagram that does straggle in
  // later falls back to the receive-side-only journey path.
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    std::deque<size_t>& pins = it->second;
    for (size_t k = 0; k < pins.size();) {
      const Journey& j = arena_[pins[k]];
      if (j.seg_flow != 0 && CanonicalFlow(j.seg_flow) == canonical_flow &&
          j.pkt_tx_ns <= flow->prev_close_end_ns) {
        Release(pins[k]);
        pins.erase(pins.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        ++k;
      }
    }
    it = pins.empty() ? in_flight_.erase(it) : std::next(it);
  }
  flow->prev_close_end_ns = end_ns;
}

}  // namespace tcplat
