#include "src/tcp/tcp_stack.h"

#include "src/base/check.h"
#include "src/net/byte_order.h"
#include "src/net/checksum.h"

namespace tcplat {

TcpStack::TcpStack(IpStack* ip, TcpConfig config)
    : ip_(ip), config_(config), pcbs_(&ip->host().cpu()) {
  TCPLAT_CHECK(ip != nullptr);
  ip_->RegisterProtocol(kIpProtoTcp, this);
  pcbs_.set_cache_enabled(config_.header_prediction);

  // Expose the stats struct through the host's metrics registry. The guard
  // keeps the first stack's registration if a test builds more than one TCP
  // stack on a host.
  MetricsRegistry& m = host().metrics();
  if (!m.contains("tcp.segs_sent")) {
    m.AddCounterView("tcp.segs_sent", &stats_.segs_sent);
    m.AddCounterView("tcp.segs_received", &stats_.segs_received);
    m.AddCounterView("tcp.data_segs_sent", &stats_.data_segs_sent);
    m.AddCounterView("tcp.bytes_sent", &stats_.bytes_sent);
    m.AddCounterView("tcp.predict_ack_hits", &stats_.predict_ack_hits);
    m.AddCounterView("tcp.predict_data_hits", &stats_.predict_data_hits);
    m.AddCounterView("tcp.predict_misses", &stats_.predict_misses);
    m.AddCounterView("tcp.checksum_errors", &stats_.checksum_errors);
    m.AddCounterView("tcp.checksum_fallbacks", &stats_.checksum_fallbacks);
    m.AddCounterView("tcp.retransmits", &stats_.retransmits);
    m.AddCounterView("tcp.rexmt_timeouts", &stats_.rexmt_timeouts);
    m.AddCounterView("tcp.dup_acks_received", &stats_.dup_acks_received);
    m.AddCounterView("tcp.fast_retransmits", &stats_.fast_retransmits);
    m.AddCounterView("tcp.fast_recovery_episodes", &stats_.fast_recovery_episodes);
    m.AddCounterView("tcp.newreno_partial_acks", &stats_.newreno_partial_acks);
    m.AddCounterView("tcp.sack_blocks_received", &stats_.sack_blocks_received);
    m.AddCounterView("tcp.sack_retransmits", &stats_.sack_retransmits);
    m.AddGaugeView("tcp.cwnd_last", &cwnd_last_);
    m.AddGaugeView("tcp.ssthresh_last", &ssthresh_last_);
    m.AddCounterView("tcp.zero_window_probes", &stats_.zero_window_probes);
    m.AddCounterView("tcp.delayed_acks_fired", &stats_.delayed_acks_fired);
    m.AddCounterView("tcp.nagle_holds", &stats_.nagle_holds);
    m.AddCounterView("tcp.sws_holds", &stats_.sws_holds);
    m.AddCounterView("tcp.keepalive_probes_sent", &stats_.keepalive_probes_sent);
    m.AddCounterView("tcp.keepalive_drops", &stats_.keepalive_drops);
    m.AddCounterView("tcp.out_of_order_segs", &stats_.out_of_order_segs);
    m.AddCounterView("tcp.dropped_no_pcb", &stats_.dropped_no_pcb);
    m.AddCounterView("tcp.listen_overflows", &stats_.listen_overflows);
    m.AddCounterView("tcp.rst_sent", &stats_.rst_sent);
    m.AddCounterView("tcp.rst_received", &stats_.rst_received);
    m.AddCounterView("tcp.conns_established", &stats_.conns_established);
    m.AddCounterView("tcp.conns_dropped", &stats_.conns_dropped);
    tx_bytes_hist_ = &m.histogram("tcp.tx.segment_bytes");
  }
}

TcpStack::~TcpStack() = default;

Socket* TcpStack::CreateSocket() {
  auto socket = std::make_unique<Socket>(&host(), config_.sndbuf, config_.rcvbuf);
  socket->set_integrated_copyin(config_.checksum == ChecksumMode::kCombined);
  socket->set_cluster_threshold(config_.cluster_threshold);
  auto conn = std::make_unique<TcpConnection>(this, socket.get());
  socket->BindOps(conn.get());
  Socket* s = socket.get();
  sockets_.push_back(std::move(socket));
  conns_.push_back(std::move(conn));
  return s;
}

Socket* TcpStack::Listen(uint16_t port, size_t backlog) {
  Socket* s = CreateSocket();
  s->set_accept_backlog(backlog);
  auto* conn = static_cast<TcpConnection*>(conns_.back().get());
  conn->Listen(SockAddr{ip_->addr(), port});
  return s;
}

Socket* TcpStack::Connect(SockAddr remote) {
  Socket* s = CreateSocket();
  auto* conn = static_cast<TcpConnection*>(conns_.back().get());
  conn->Connect(SockAddr{ip_->addr(), NextEphemeralPort()}, remote);
  return s;
}

Socket* TcpStack::Connect(SockAddr remote, CongestionVariant congestion) {
  Socket* s = CreateSocket();
  s->SetCongestion(congestion);
  auto* conn = static_cast<TcpConnection*>(conns_.back().get());
  conn->Connect(SockAddr{ip_->addr(), NextEphemeralPort()}, remote);
  return s;
}

void TcpStack::AddBackgroundPcbs(size_t n) {
  for (size_t i = 0; i < n; ++i) {
    auto pcb = std::make_unique<Pcb>();
    pcb->local = SockAddr{ip_->addr(), static_cast<uint16_t>(512 + background_pcbs_.size())};
    pcb->remote = SockAddr{};
    pcb->conn = nullptr;
    pcbs_.Insert(pcb.get());
    background_pcbs_.push_back(std::move(pcb));
  }
}

uint16_t TcpStack::NextEphemeralPort() {
  constexpr uint16_t kFirst = 20000;
  constexpr uint32_t kSpan = 65535 - kFirst + 1;
  for (uint32_t attempt = 0; attempt < kSpan; ++attempt) {
    const uint16_t port = next_port_;
    next_port_ = port == 65535 ? kFirst : static_cast<uint16_t>(port + 1);
    if (!pcbs_.LocalPortInUse(port)) {
      return port;
    }
  }
  TCPLAT_CHECK(false) << "ephemeral port space exhausted";
  return 0;
}

TcpConnection* TcpStack::SpawnPassive() {
  CreateSocket();
  return conns_.back().get();
}

void TcpStack::SendRst(const TcpHeader& in, const Ipv4Header& iph, size_t data_len) {
  Host& h = host();
  Cpu& cpu = h.cpu();
  ScopedSpan other(&h.tracker(), SpanId::kOther);
  cpu.Charge(cpu.profile().tcp_output_fixed);

  TcpHeader th;
  th.src_port = in.dst_port;
  th.dst_port = in.src_port;
  th.flags.rst = true;
  if (in.flags.ack) {
    th.seq = in.ack;
  } else {
    th.flags.ack = true;
    th.ack = in.seq + static_cast<uint32_t>(data_len) + (in.flags.syn ? 1 : 0) +
             (in.flags.fin ? 1 : 0);
  }
  th.window = 0;

  MbufPtr hm = h.pool().GetHeader(kMaxLinkHeader + kIpv4HeaderBytes);
  th.checksum = 0;
  th.Serialize(hm->Append(th.HeaderLength()));

  TcpPseudoHeader ph;
  ph.src = iph.dst;
  ph.dst = iph.src;
  ph.tcp_length = static_cast<uint16_t>(th.HeaderLength());
  ChecksumAccumulator acc;
  acc.Add(ph.Serialize());
  acc.Add(hm->bytes());
  StoreBe16(hm->data() + 16, acc.Finalize());

  ++stats_.rst_sent;
  ++stats_.segs_sent;
  if (tap_ != nullptr) {
    tap_->OnSegment({h.CurrentTime(), /*outbound=*/true, SockAddr{iph.dst, th.src_port},
                     SockAddr{iph.src, th.dst_port}, th, 0});
  }
  ip_->Output(std::move(hm), iph.dst, iph.src, kIpProtoTcp);
}

void TcpStack::IpInput(MbufPtr packet, const Ipv4Header& hdr) {
  Host& h = host();
  ScopedSpan seg(&h.tracker(), SpanId::kRxTcpSegment);
  ++stats_.segs_received;

  // Locate the TCP header: it must be contiguous at chain offset 20. The
  // drivers put the IP header in its own leading mbuf, so the TCP header
  // starts the second mbuf; test paths may pack everything into one mbuf.
  const Mbuf* m = packet.get();
  size_t off = kIpv4HeaderBytes;
  while (m != nullptr && off >= m->len()) {
    off -= m->len();
    m = m->next();
  }
  if (m == nullptr || m->len() - off < kTcpMinHeaderBytes) {
    h.pool().FreeChain(std::move(packet));
    return;
  }
  auto th = TcpHeader::Parse(m->bytes().subspan(off));
  if (!th.has_value() ||
      hdr.total_length < kIpv4HeaderBytes + th->HeaderLength() ||
      m->len() - off < th->HeaderLength()) {
    h.pool().FreeChain(std::move(packet));
    return;
  }

  const SockAddr remote{hdr.src, th->src_port};
  const SockAddr local{hdr.dst, th->dst_port};
  if (tap_ != nullptr) {
    tap_->OnSegment({h.CurrentTime(), /*outbound=*/false, remote, local, *th,
                     hdr.total_length - kIpv4HeaderBytes - th->HeaderLength()});
  }
  h.TracePacket(TraceLayer::kTcp, TraceEventKind::kSegRx,
                (static_cast<uint64_t>(th->dst_port) << 16) | th->src_port, th->seq,
                hdr.total_length - kIpv4HeaderBytes - th->HeaderLength());
  Pcb* pcb = pcbs_.Lookup(remote, local);
  if (pcb == nullptr || pcb->conn == nullptr) {
    ++stats_.dropped_no_pcb;
    h.TracePacket(TraceLayer::kTcp, TraceEventKind::kDrop,
                  (static_cast<uint64_t>(th->dst_port) << 16) | th->src_port, th->seq);
    const size_t data_len =
        hdr.total_length - kIpv4HeaderBytes - th->HeaderLength();
    if (!th->flags.rst) {
      SendRst(*th, hdr, data_len);
    }
    h.pool().FreeChain(std::move(packet));
    return;
  }

  TcpConnection* conn = pcb->conn;
  if (conn->state() == TcpState::kListen) {
    if (th->flags.syn && !th->flags.ack && !th->flags.rst) {
      if (conn->socket()->AcceptBacklogFull()) {
        // sonewconn fails: the SYN is silently dropped and the client's
        // connection timer retransmits it.
        ++stats_.listen_overflows;
        h.TracePacket(TraceLayer::kTcp, TraceEventKind::kListenOverflow,
                      (static_cast<uint64_t>(th->dst_port) << 16) | th->src_port,
                      conn->socket()->accept_backlog());
      } else {
        TcpConnection* child = SpawnPassive();
        child->AcceptSyn(local, remote, conn->socket(), *th);
      }
    }
    h.pool().FreeChain(std::move(packet));
    return;
  }
  conn->Input(std::move(packet), *th, hdr);
}

}  // namespace tcplat
