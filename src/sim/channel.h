// Cross-shard delivery indirection.
//
// A sharded simulation (src/sim/shard_engine.h) partitions components across
// several Simulators. Anything that hands an event to a component in another
// shard — a Wire delivering bytes to a receiver owned by a different event
// queue — must not call ScheduleAt on the foreign simulator directly (that
// queue may be executing concurrently). Instead it posts the callback to a
// DeliveryChannel, which buffers it until the engine's next window barrier
// and then inserts it into the destination shard in a deterministic order.
//
// The interface is deliberately tiny so that the link layer can depend on it
// without pulling in the engine (or any threading machinery): a Wire holds an
// optional DeliveryChannel* and is otherwise unchanged.

#ifndef SRC_SIM_CHANNEL_H_
#define SRC_SIM_CHANNEL_H_

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace tcplat {

class DeliveryChannel {
 public:
  virtual ~DeliveryChannel() = default;

  // Queues `fn` to run at `arrival` in the destination shard. Must be called
  // from the source shard's execution context, and `arrival` must respect
  // the channel's lookahead: arrival >= (source shard's current time) +
  // lookahead. The conservative window synchronization depends on it.
  virtual void Post(SimTime arrival, EventQueue::Callback fn) = 0;
};

}  // namespace tcplat

#endif  // SRC_SIM_CHANNEL_H_
