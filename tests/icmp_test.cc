// Tests for ICMP: message framing and checksum, ping over the ATM testbed,
// and the forwarding path's error generation (time exceeded, destination
// unreachable) on the routed topology.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/routed_testbed.h"
#include "src/core/testbed.h"
#include "src/icmp/icmp.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

TEST(IcmpMessage, SerializeParseRoundTrip) {
  IcmpMessage msg;
  msg.type = IcmpType::kEchoRequest;
  msg.id = 0x1234;
  msg.seq = 7;
  msg.payload = {1, 2, 3, 4, 5};
  const auto wire = msg.Serialize();
  ASSERT_EQ(wire.size(), kIcmpHeaderBytes + 5);

  bool checksum_ok = false;
  auto parsed = IcmpMessage::Parse(wire, &checksum_ok);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(checksum_ok);
  EXPECT_EQ(parsed->type, IcmpType::kEchoRequest);
  EXPECT_EQ(parsed->id, 0x1234);
  EXPECT_EQ(parsed->seq, 7);
  EXPECT_EQ(parsed->payload, msg.payload);
}

TEST(IcmpMessage, ChecksumCatchesDamage) {
  IcmpMessage msg;
  msg.payload = {9, 9, 9, 9};
  auto wire = msg.Serialize();
  wire[9] ^= 0x01;
  bool checksum_ok = true;
  IcmpMessage::Parse(wire, &checksum_ok);
  EXPECT_FALSE(checksum_ok);
}

struct PingResult {
  std::vector<IcmpStack::Event> events;
  std::vector<double> rtts_us;
  bool done = false;
};

SimTask Pinger(Host* host, IcmpStack* icmp, Ipv4Addr dst, int count, uint8_t ttl,
               PingResult* out) {
  std::vector<uint8_t> payload(56, 0xA5);  // the classic default ping size
  for (int i = 0; i < count; ++i) {
    const SimTime t0 = host->CurrentTime();
    icmp->SendEcho(dst, /*id=*/1, payload, ttl);
    IcmpStack::Event ev;
    while (!icmp->PollEvent(&ev)) {
      co_await icmp->WaitReadable();
    }
    out->rtts_us.push_back((host->CurrentTime() - t0).micros());
    out->events.push_back(std::move(ev));
  }
  out->done = true;
}

TEST(Icmp, PingOverAtm) {
  Testbed tb{TestbedConfig{}};
  IcmpStack client_icmp(&tb.client_ip());
  IcmpStack server_icmp(&tb.server_ip());

  PingResult result;
  tb.client_host().Spawn("ping",
                         Pinger(&tb.client_host(), &client_icmp, kServerAddr, 4, 64, &result));
  tb.sim().RunToCompletion();
  ASSERT_TRUE(result.done);
  ASSERT_EQ(result.events.size(), 4u);
  for (const auto& ev : result.events) {
    EXPECT_EQ(ev.message.type, IcmpType::kEchoReply);
    EXPECT_EQ(ev.from, kServerAddr);
    EXPECT_EQ(ev.message.payload.size(), 56u);
  }
  EXPECT_EQ(server_icmp.stats().echo_requests_received, 4u);
  // Ping skips the transport layer entirely: it should beat the TCP echo
  // RTT for a similar size (paper Table 1: ~1100 us at this scale).
  EXPECT_LT(result.rtts_us.back(), 1100.0);
  EXPECT_GT(result.rtts_us.back(), 300.0);
}

TEST(Icmp, PingThroughGateway) {
  RoutedTestbed net;
  IcmpStack client_icmp(&net.client_ip());
  IcmpStack gw_icmp(&net.gateway_ip());
  IcmpStack server_icmp(&net.server_ip());

  PingResult result;
  net.client_host().Spawn(
      "ping", Pinger(&net.client_host(), &client_icmp, kRoutedServerAddr, 3, 64, &result));
  net.sim().RunToCompletion();
  ASSERT_TRUE(result.done);
  ASSERT_EQ(result.events.size(), 3u);
  EXPECT_EQ(result.events[0].message.type, IcmpType::kEchoReply);
  EXPECT_EQ(result.events[0].from, kRoutedServerAddr);
  EXPECT_GE(net.gateway_ip().stats().forwarded, 6u);  // both directions
}

TEST(Icmp, TtlExpiryYieldsTimeExceededFromGateway) {
  RoutedTestbed net;
  IcmpStack client_icmp(&net.client_ip());
  IcmpStack gw_icmp(&net.gateway_ip());
  IcmpStack server_icmp(&net.server_ip());

  PingResult result;
  net.client_host().Spawn(
      "ping-ttl1",
      Pinger(&net.client_host(), &client_icmp, kRoutedServerAddr, 1, /*ttl=*/1, &result));
  net.sim().RunToCompletion();
  ASSERT_TRUE(result.done);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].message.type, IcmpType::kTimeExceeded);
  EXPECT_EQ(result.events[0].from, kRoutedGatewayLeft) << "the gateway must identify itself";
  // The error quotes the offending packet's header.
  ASSERT_GE(result.events[0].message.payload.size(), kIpv4HeaderBytes);
  auto quoted = Ipv4Header::Parse(result.events[0].message.payload);
  ASSERT_TRUE(quoted.has_value());
  EXPECT_EQ(quoted->dst, kRoutedServerAddr);
  EXPECT_EQ(quoted->ttl, 1);
}

TEST(Icmp, UnroutableYieldsDestinationUnreachable) {
  RoutedTestbed net;
  IcmpStack client_icmp(&net.client_ip());
  IcmpStack gw_icmp(&net.gateway_ip());

  PingResult result;
  net.client_host().Spawn(
      "ping-nowhere",
      Pinger(&net.client_host(), &client_icmp, MakeAddr(10, 0, 9, 9), 1, 64, &result));
  net.sim().RunToCompletion();
  ASSERT_TRUE(result.done);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_EQ(result.events[0].message.type, IcmpType::kDestUnreachable);
  EXPECT_EQ(net.gateway_ip().stats().no_route, 1u);
}

TEST(Icmp, NoErrorsAboutIcmpErrorMessages) {
  // RFC 1122 discipline: when an ICMP *error* message dies in transit (here
  // a destination-unreachable with TTL 1), the gateway must not generate a
  // time-exceeded about it. Echo requests, by contrast, do elicit errors —
  // that is how traceroute works (covered above).
  RoutedTestbed net;
  IcmpStack client_icmp(&net.client_ip());
  IcmpStack gw_icmp(&net.gateway_ip());

  bool sent = false;
  net.client_host().Spawn("raw", [](RoutedTestbed* n, bool* flag) -> SimTask {
    // Hand-built ICMP destination-unreachable, TTL 1.
    IcmpMessage err;
    err.type = IcmpType::kDestUnreachable;
    err.payload.assign(28, 0);
    const auto wire = err.Serialize();
    MbufPtr m = n->client_host().pool().GetHeader(40);
    std::memcpy(m->Append(wire.size()).data(), wire.data(), wire.size());
    n->client_ip().Output(std::move(m), kRoutedClientAddr, kRoutedServerAddr, kIpProtoIcmp,
                          /*ttl=*/1);
    *flag = true;
    co_return;
  }(&net, &sent));
  net.sim().RunToCompletion();
  ASSERT_TRUE(sent);
  EXPECT_EQ(net.gateway_ip().stats().ttl_expired, 1u);
  EXPECT_EQ(gw_icmp.stats().errors_sent, 0u)
      << "no time-exceeded about a dying error message";
  EXPECT_EQ(client_icmp.stats().errors_received, 0u);
}

}  // namespace
}  // namespace tcplat
