file(REMOVE_RECURSE
  "CMakeFiles/future_dma.dir/future_dma.cc.o"
  "CMakeFiles/future_dma.dir/future_dma.cc.o.d"
  "future_dma"
  "future_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
