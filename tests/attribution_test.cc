// Critical-path attribution contract tests.
//
//  * A traced 1x1 star run decomposes every round trip into stages that
//    telescope exactly to the RTT, the percentile picks match LatencyStats,
//    and PartitionSpans reproduces SpanSelfTotalsNanos to the nanosecond.
//  * The flight recorder fires exactly once per injected impairment drop.
//  * Anomaly dumps and blame reports are byte-identical serial vs 4 workers.
//  * LatencyStats::Percentiles()/PercentileGap() match a hand-computed
//    distribution.

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/fault/impairment.h"
#include "src/trace/attribution.h"
#include "src/trace/binary_trace.h"
#include "src/trace/causal_graph.h"
#include "src/trace/latency_stats.h"
#include "src/trace/stream_attribution.h"
#include "src/trace/tracer.h"
#include "src/workload/capacity.h"
#include "src/workload/flow_driver.h"
#include "src/workload/generator.h"
#include "src/workload/interactive.h"
#include "src/workload/star_testbed.h"

namespace tcplat {
namespace {

CapacityCell OneFlowCell(size_t size) {
  CapacityCell cell;
  cell.clients = 1;
  cell.servers = 1;
  cell.flows = 1;
  cell.size = size;
  cell.iterations = 40;
  cell.warmup = 8;
  cell.seed = 1;
  return cell;
}

// One closed-loop flow on the 1x1 star: the causal graph must anchor every
// measured round trip, every window's stages must telescope exactly to its
// RTT, and the blame report's percentile picks must equal what LatencyStats
// computed over the same samples (CapacityOutcome's p50/p99).
TEST(Attribution, OneFlowStagesTelescopeAndMatchLatencyStats) {
  for (size_t size : {size_t{200}, size_t{1400}}) {
    const CapacityCell cell = OneFlowCell(size);
    Tracer tracer;
    const CapacityOutcome outcome = RunCapacityCell(cell, &tracer);
    ASSERT_EQ(outcome.samples, 40u) << "size " << size;

    const CausalGraph graph = CausalGraph::Build(tracer);
    EXPECT_GT(graph.linked_count(), 0u);

    AttributionOptions options;
    options.message_bytes = cell.size;
    options.warmup_windows = cell.warmup;
    const AttributionResult result = AttributeRtts(tracer, graph, options);
    ASSERT_EQ(result.windows.size(), outcome.samples) << "size " << size;

    for (size_t i = 0; i < result.windows.size(); ++i) {
      const RttWindow& w = result.windows[i];
      int64_t sum = 0;
      for (int64_t stage : w.stage_ns) {
        sum += stage;
      }
      EXPECT_EQ(sum, w.rtt_ns()) << "window " << i << " does not telescope";
      EXPECT_EQ(w.stage_ns[static_cast<size_t>(BlameStage::kUnattributed)], 0)
          << "window " << i << " on a clean 1x1 run should anchor fully";
      EXPECT_GT(w.rtt_ns(), 0) << "window " << i;
    }

    // The driver quantizes both RTT endpoints to the 40 ns paper clock and
    // reads t1 only after the PRU_RCVD window update, which runs after the
    // traced kUserRead event — so the trace-derived RTT may sit within one
    // clock tick of the driver's sample, never more.
    const BlameReport blame = BuildBlame(result.windows, 50.0, 99.0);
    EXPECT_LE(std::abs(blame.lo_rtt_ns - outcome.p50.nanos()), 40) << "size " << size;
    EXPECT_LE(std::abs(blame.hi_rtt_ns - outcome.p99.nanos()), 40) << "size " << size;
    EXPECT_EQ(blame.explained_pct, 100.0);
  }
}

// PartitionSpans is a partition of the exact event set SpanSelfTotalsNanos
// sums, so residual + per-window contributions must equal it to 0 ns for
// every span on every host.
TEST(Attribution, SpanPartitionReproducesSpanTotalsExactly) {
  const CapacityCell cell = OneFlowCell(1400);
  Tracer tracer;
  RunCapacityCell(cell, &tracer);

  const CausalGraph graph = CausalGraph::Build(tracer);
  AttributionOptions options;
  options.message_bytes = cell.size;
  options.warmup_windows = cell.warmup;
  const AttributionResult result = AttributeRtts(tracer, graph, options);
  ASSERT_FALSE(result.windows.empty());

  for (uint8_t host = 0; host < tracer.host_names().size(); ++host) {
    const auto totals = tracer.SpanSelfTotalsNanos(host);
    const SpanWindowPartition partition = PartitionSpans(tracer, host, result.windows);
    ASSERT_EQ(partition.per_window.size(), result.windows.size());
    for (size_t s = 0; s < static_cast<size_t>(SpanId::kCount); ++s) {
      int64_t sum = partition.residual[s];
      for (const auto& per_window : partition.per_window) {
        sum += per_window[s];
      }
      EXPECT_EQ(sum, totals[s]) << tracer.host_names()[host] << " span " << s;
    }
  }
}

TEST(Attribution, MeasuredSpanTimeLandsInsideTheWindows) {
  const CapacityCell cell = OneFlowCell(1400);
  Tracer tracer;
  RunCapacityCell(cell, &tracer);
  const CausalGraph graph = CausalGraph::Build(tracer);
  AttributionOptions options;
  options.message_bytes = cell.size;
  options.warmup_windows = cell.warmup;
  const AttributionResult result = AttributeRtts(tracer, graph, options);

  // The client's TCP output work happens while a round trip is open, so a
  // healthy share of it must land inside windows rather than the residual.
  const SpanWindowPartition partition = PartitionSpans(tracer, 0, result.windows);
  const size_t tx_tcp = static_cast<size_t>(SpanId::kTxTcpSegment);
  int64_t in_windows = 0;
  for (const auto& per_window : partition.per_window) {
    in_windows += per_window[tx_tcp];
  }
  EXPECT_GT(in_windows, 0);
}

// --- Flight recorder ------------------------------------------------------

struct ImpairedRunArtifacts {
  uint64_t anomalies_seen = 0;
  uint64_t drops_injected = 0;
  size_t captured = 0;
  std::string anomaly_json;
};

ImpairedRunArtifacts RunImpairedFlightRecorder() {
  StarTestbedConfig star_cfg;
  star_cfg.clients = 2;
  star_cfg.servers = 1;
  StarTestbed star(star_cfg);

  Tracer tracer;
  star.AttachTracer(&tracer);
  const uint8_t link_id = tracer.RegisterHost("switch-link");

  Tracer::FlightRecorderConfig frc;
  frc.context_events = 32;
  frc.on_retransmit = false;  // count ONLY the injected drops
  frc.on_cell_drop = false;
  frc.on_tx_stall = false;
  frc.on_listen_overflow = false;
  frc.on_impair_drop = true;
  tracer.EnableFlightRecorder(frc);

  ImpairmentConfig imp;
  imp.drop_prob = 2e-3;
  imp.seed = 11;
  ImpairmentPolicy policy(imp);
  policy.AttachTracer(&tracer, link_id);
  star.atm_switch()->set_output_impairment(&policy);

  ClosedLoopConfig cfg;
  cfg.flows = 4;
  cfg.clients = 2;
  cfg.servers = 1;
  cfg.size = 512;
  cfg.iterations = 8;
  cfg.warmup = 1;
  std::vector<FlowSpec> specs = BuildClosedLoop(cfg);
  for (FlowSpec& s : specs) {
    s.tolerate_errors = true;
  }
  RunWorkload(star, specs);
  star.atm_switch()->set_output_impairment(nullptr);

  ImpairedRunArtifacts out;
  out.anomalies_seen = tracer.anomalies_seen();
  out.drops_injected = policy.stats().dropped;
  out.captured = tracer.anomalies().size();
  out.anomaly_json = tracer.AnomaliesToPerfettoJson();
  return out;
}

// With only the impair-drop trigger armed, the recorder must fire exactly
// once per drop the policy injected — no misses, no double counting.
TEST(FlightRecorder, FiresExactlyOncePerInjectedDrop) {
  const ImpairedRunArtifacts run = RunImpairedFlightRecorder();
  ASSERT_GT(run.drops_injected, 0u) << "impairment config injected nothing; test is vacuous";
  EXPECT_EQ(run.anomalies_seen, run.drops_injected);
  EXPECT_EQ(run.captured, run.anomalies_seen);  // under max_anomalies here
  for (uint64_t i = 0; i < run.captured; ++i) {
    EXPECT_NE(run.anomaly_json.find("anomaly.link.impair.drop"), std::string::npos);
  }
}

// The anomaly dump is pure simulated-time state: running the same scenario
// under a serial and a 4-worker executor must give byte-identical JSON.
TEST(FlightRecorder, AnomalyDumpByteIdenticalSerialVsParallel) {
  auto run_on = [](Executor& exec) {
    std::vector<std::function<std::string()>> thunks;
    for (int i = 0; i < 3; ++i) {
      thunks.emplace_back([] { return RunImpairedFlightRecorder().anomaly_json; });
    }
    std::vector<std::string> out;
    for (auto& outcome : exec.Run<std::string>(thunks)) {
      EXPECT_TRUE(outcome.ok()) << outcome.error;
      out.push_back(outcome.ok() ? *outcome.value : outcome.error);
    }
    return out;
  };
  Executor serial(1);
  Executor parallel(4);
  const std::vector<std::string> a = run_on(serial);
  const std::vector<std::string> b = run_on(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FALSE(a[i].empty());
    EXPECT_EQ(a[i], b[i]) << "anomaly dump " << i << " diverged between 1 and 4 workers";
  }
}

// --- Blame determinism ----------------------------------------------------

std::string BlameFingerprint(const CapacityCell& cell) {
  Tracer tracer;
  RunCapacityCell(cell, &tracer);
  const CausalGraph graph = CausalGraph::Build(tracer);
  AttributionOptions options;
  options.message_bytes = cell.size;
  options.warmup_windows = cell.warmup;
  const AttributionResult result = AttributeRtts(tracer, graph, options);
  const BlameReport blame = BuildBlame(result.windows, 50.0, 99.0);

  char buf[64];
  std::string out;
  std::snprintf(buf, sizeof(buf), "windows=%zu lo=%" PRId64 " hi=%" PRId64 "\n",
                result.windows.size(), blame.lo_rtt_ns, blame.hi_rtt_ns);
  out += buf;
  for (size_t s = 0; s < kBlameStageCount; ++s) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 ",%" PRId64 "\n", blame.lo_stage_ns[s],
                  blame.hi_stage_ns[s]);
    out += buf;
  }
  for (const RttWindow& w : result.windows) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%" PRId64 "-%" PRId64 "\n", w.flow, w.start_ns,
                  w.end_ns);
    out += buf;
  }
  return out;
}

// The full blame report for the 8-flow cell — window boundaries included —
// must be byte-identical between serial and 4-worker execution.
TEST(BlameDeterminism, ReportsByteIdenticalSerialVsParallel) {
  std::vector<CapacityCell> cells;
  for (bool hp : {true, false}) {
    CapacityCell cell;
    cell.clients = 4;
    cell.servers = 2;
    cell.flows = 8;
    cell.size = 200;
    cell.iterations = 12;
    cell.warmup = 4;
    cell.seed = 1;
    cell.header_prediction = hp;
    cells.push_back(cell);
  }
  auto run_on = [&](Executor& exec) {
    std::vector<std::function<std::string()>> thunks;
    for (const CapacityCell& cell : cells) {
      thunks.emplace_back([cell] { return BlameFingerprint(cell); });
    }
    std::vector<std::string> out;
    for (auto& outcome : exec.Run<std::string>(thunks)) {
      EXPECT_TRUE(outcome.ok()) << outcome.error;
      out.push_back(outcome.ok() ? *outcome.value : outcome.error);
    }
    return out;
  };
  Executor serial(1);
  Executor parallel(4);
  const std::vector<std::string> a = run_on(serial);
  const std::vector<std::string> b = run_on(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "blame report " << i << " diverged between 1 and 4 workers";
  }
}

// Multi-flow: every measured sample must still be attributed, and every
// window must telescope even when flows share hosts and interleave.
TEST(Attribution, EightFlowWindowsAllTelescope) {
  CapacityCell cell;
  cell.clients = 4;
  cell.servers = 2;
  cell.flows = 8;
  cell.size = 200;
  cell.iterations = 12;
  cell.warmup = 4;
  cell.seed = 1;
  Tracer tracer;
  const CapacityOutcome outcome = RunCapacityCell(cell, &tracer);
  const CausalGraph graph = CausalGraph::Build(tracer);
  AttributionOptions options;
  options.message_bytes = cell.size;
  options.warmup_windows = cell.warmup;
  const AttributionResult result = AttributeRtts(tracer, graph, options);
  EXPECT_EQ(result.windows.size(), outcome.samples);
  for (const RttWindow& w : result.windows) {
    int64_t sum = 0;
    for (int64_t stage : w.stage_ns) {
      sum += stage;
    }
    EXPECT_EQ(sum, w.rtt_ns());
  }
  const BlameReport blame = BuildBlame(result.windows, 50.0, 99.0);
  EXPECT_GE(blame.explained_pct, 95.0);
}

// --- Streaming attribution and the binary trace pipeline ------------------

CapacityCell EightFlowCell() {
  CapacityCell cell;
  cell.clients = 4;
  cell.servers = 2;
  cell.flows = 8;
  cell.size = 200;
  cell.iterations = 12;
  cell.warmup = 4;
  cell.seed = 1;
  return cell;
}

bool SameWindow(const RttWindow& a, const RttWindow& b) {
  if (a.flow != b.flow || a.client_host != b.client_host || a.server_host != b.server_host ||
      a.start_ns != b.start_ns || a.end_ns != b.end_ns || a.retransmits != b.retransmits ||
      a.delayed_acks != b.delayed_acks || a.tx_stall_ns != b.tx_stall_ns) {
    return false;
  }
  for (size_t s = 0; s < kBlameStageCount; ++s) {
    if (a.stage_ns[s] != b.stage_ns[s]) return false;
  }
  return true;
}

std::vector<RttWindow> SortedWindows(std::vector<RttWindow> windows) {
  std::sort(windows.begin(), windows.end(), [](const RttWindow& a, const RttWindow& b) {
    return a.flow != b.flow ? a.flow < b.flow : a.start_ns < b.start_ns;
  });
  return windows;
}

// The streaming reconstruction must produce the exact window set the batch
// CausalGraph path produces — same boundaries, same stage decomposition to
// the nanosecond — while holding only in-flight journeys.
TEST(StreamingAttribution, MatchesBatchOnEightFlowCell) {
  const CapacityCell cell = EightFlowCell();
  Tracer tracer;
  const CapacityOutcome outcome = RunCapacityCell(cell, &tracer);

  AttributionOptions options;
  options.message_bytes = cell.size;
  options.warmup_windows = cell.warmup;
  const CausalGraph graph = CausalGraph::Build(tracer);
  const AttributionResult batch = AttributeRtts(tracer, graph, options);
  ASSERT_EQ(batch.windows.size(), outcome.samples);

  StreamingAttribution streaming(options);
  for (const TraceEvent& ev : tracer.events()) {
    streaming.OnEvent(ev);
  }
  const std::vector<RttWindow> a = SortedWindows(batch.windows);
  const std::vector<RttWindow> b = SortedWindows(streaming.windows());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(SameWindow(a[i], b[i])) << "window " << i << " diverged from batch";
  }
  // Memory stays proportional to concurrently open round trips, not to the
  // trace: 8 closed-loop flows can't hold more than a few journeys each.
  EXPECT_GT(streaming.peak_live_journeys(), 0u);
  EXPECT_LE(streaming.peak_live_journeys(), 64u);
}

// A datagram dropped in flight never sees its kPktRx, so its journey's
// in-flight pin can only be retired by the window-close prune (anything of
// the flow transmitted at or before the previous close is lost). Live slots
// must stay O(in-flight packets) on a lossy stream, not O(total drops).
TEST(StreamingAttribution, LostDatagramsAreRetiredAtWindowClose) {
  AttributionOptions options;
  options.message_bytes = 100;
  options.warmup_windows = 0;
  StreamingAttribution streaming(options);

  const uint64_t client_flow = (2000ull << 16) | 80ull;  // client port > server port
  const uint64_t server_flow = (80ull << 16) | 2000ull;
  const uint64_t ip_c2s = (1ull << 32) | 2ull;
  const uint64_t ip_s2c = (2ull << 32) | 1ull;
  const auto ev = [](TraceEventKind kind, uint8_t host, int64_t ts, uint64_t flow,
                     uint64_t packet, uint64_t bytes) {
    TraceEvent e;
    e.kind = kind;
    e.host = host;
    e.ts_ns = ts;
    e.flow = flow;
    e.packet = packet;
    e.bytes = bytes;
    return e;
  };

  int64_t t = 0;
  uint64_t ip_id = 0;
  constexpr int kWindows = 50;
  for (int i = 0; i < kWindows; ++i) {
    // Request: the first copy is lost in flight (no kPktRx, ever), the
    // second copy delivers and completes the echo round trip.
    streaming.OnEvent(ev(TraceEventKind::kUserWrite, 0, ++t, client_flow, 0, 100));
    streaming.OnEvent(ev(TraceEventKind::kSegTx, 0, ++t, client_flow, static_cast<uint64_t>(i), 100));
    streaming.OnEvent(ev(TraceEventKind::kPktTx, 0, ++t, ip_c2s, ++ip_id, 100));  // lost
    streaming.OnEvent(ev(TraceEventKind::kSegTx, 0, ++t, client_flow, static_cast<uint64_t>(i), 100));
    streaming.OnEvent(ev(TraceEventKind::kPktTx, 0, ++t, ip_c2s, ++ip_id, 100));
    streaming.OnEvent(ev(TraceEventKind::kPktRx, 1, ++t, ip_c2s, ip_id, 100));
    streaming.OnEvent(ev(TraceEventKind::kSegRx, 1, ++t, server_flow, static_cast<uint64_t>(i), 100));
    // Response.
    streaming.OnEvent(ev(TraceEventKind::kUserWrite, 1, ++t, server_flow, 0, 100));
    streaming.OnEvent(ev(TraceEventKind::kSegTx, 1, ++t, server_flow, static_cast<uint64_t>(i), 100));
    streaming.OnEvent(ev(TraceEventKind::kPktTx, 1, ++t, ip_s2c, ++ip_id, 100));
    streaming.OnEvent(ev(TraceEventKind::kPktRx, 0, ++t, ip_s2c, ip_id, 100));
    streaming.OnEvent(ev(TraceEventKind::kSegRx, 0, ++t, client_flow, static_cast<uint64_t>(i), 100));
    streaming.OnEvent(ev(TraceEventKind::kUserRead, 0, ++t, client_flow, 0, 100));
  }

  EXPECT_EQ(streaming.windows().size(), static_cast<size_t>(kWindows));
  // One datagram is lost per window; all but the most recent must have been
  // retired. Without the prune, live slots grow by one per window (~50).
  EXPECT_LE(streaming.live_journeys(), 8u);
  EXPECT_LE(streaming.peak_live_journeys(), 16u);
}

// Routing the same run through the binary stream (encode during the run,
// decode post hoc) must leave the attribution result untouched.
TEST(Attribution, BinaryRoundTripPreservesWindows) {
  const CapacityCell cell = EightFlowCell();
  AttributionOptions options;
  options.message_bytes = cell.size;
  options.warmup_windows = cell.warmup;

  Tracer vector_mode;
  RunCapacityCell(cell, &vector_mode);
  const CausalGraph vector_graph = CausalGraph::Build(vector_mode);
  const AttributionResult from_vector = AttributeRtts(vector_mode, vector_graph, options);

  Tracer binary_mode;
  binary_mode.EnableBinaryRecording();
  RunCapacityCell(cell, &binary_mode);
  EXPECT_TRUE(binary_mode.events().empty());
  const std::string blob = SealBinaryTrace(binary_mode.host_names(), binary_mode.binary_records());
  Tracer decoded;
  ASSERT_TRUE(DecodeBinaryTrace(blob, &decoded));
  ASSERT_EQ(decoded.events().size(), vector_mode.events().size());
  const CausalGraph decoded_graph = CausalGraph::Build(decoded);
  const AttributionResult from_binary = AttributeRtts(decoded, decoded_graph, options);

  ASSERT_EQ(from_binary.windows.size(), from_vector.windows.size());
  for (size_t i = 0; i < from_vector.windows.size(); ++i) {
    EXPECT_TRUE(SameWindow(from_vector.windows[i], from_binary.windows[i])) << "window " << i;
  }
}

// --- interactive Nagle × delayed-ACK blame --------------------------------

int64_t AckWaitNanos(const RttWindow& w) {
  return w.stage_ns[static_cast<size_t>(BlameStage::kCliAckWait)] +
         w.stage_ns[static_cast<size_t>(BlameStage::kSrvAckWait)];
}

AttributionResult AttributeInteractive(const InteractiveCell& cell, Tracer& tracer) {
  const CausalGraph graph = CausalGraph::Build(tracer);
  AttributionOptions options;
  options.message_bytes = 200;  // two 100-byte chunks up, 200 bytes back
  options.warmup_windows = cell.warmup;
  return AttributeRtts(tracer, graph, options);
}

// The pathological cell's round trips are the delayed-ACK timer: the
// sender-side ACK-wait stage (anchored by the kNagleHold event) must own
// at least 80% of every window — in particular the p99 one — and the
// windows must still telescope exactly.
TEST(InteractiveBlame, DelackCellBlamesAckWaitAtTheSender) {
  InteractiveCell cell;
  cell.iterations = 16;
  cell.warmup = 2;
  Tracer tracer;
  const InteractiveOutcome outcome = RunInteractiveCell(cell, &tracer);
  ASSERT_EQ(outcome.samples, 16u);
  const AttributionResult result = AttributeInteractive(cell, tracer);
  ASSERT_EQ(result.windows.size(), 16u);

  const RttWindow* p99 = &result.windows[0];
  for (const RttWindow& w : result.windows) {
    int64_t sum = 0;
    for (int64_t stage : w.stage_ns) {
      sum += stage;
    }
    EXPECT_EQ(sum, w.rtt_ns()) << "window does not telescope";
    EXPECT_GE(AckWaitNanos(w), static_cast<int64_t>(0.8 * static_cast<double>(w.rtt_ns())));
    if (w.rtt_ns() > p99->rtt_ns()) {
      p99 = &w;
    }
  }
  EXPECT_GE(p99->rtt_ns(), 200 * 1'000'000);
  EXPECT_GE(AckWaitNanos(*p99),
            static_cast<int64_t>(0.8 * static_cast<double>(p99->rtt_ns())));
}

// Under TCP_NODELAY no segment is ever held, no kNagleHold event exists,
// and the ACK-wait stages collapse to exactly zero in every window: the
// blame mode vanishes along with the latency mode.
TEST(InteractiveBlame, NodelayCellHasNoAckWaitBlame) {
  InteractiveCell cell;
  cell.knob = InteractiveKnob::kNodelay;
  cell.iterations = 16;
  cell.warmup = 2;
  Tracer tracer;
  const InteractiveOutcome outcome = RunInteractiveCell(cell, &tracer);
  ASSERT_EQ(outcome.samples, 16u);
  const AttributionResult result = AttributeInteractive(cell, tracer);
  ASSERT_EQ(result.windows.size(), 16u);
  for (const RttWindow& w : result.windows) {
    int64_t sum = 0;
    for (int64_t stage : w.stage_ns) {
      sum += stage;
    }
    EXPECT_EQ(sum, w.rtt_ns());
    EXPECT_EQ(AckWaitNanos(w), 0);
    EXPECT_LT(w.rtt_ns(), 5 * 1'000'000);
  }
}

// The streaming consumer must close byte-identical windows on the
// pathological cell too — the hold-anchor rule is shared code, and this
// pins it stays that way (the delack cell is the one workload where the
// anchors actually move).
TEST(InteractiveBlame, StreamingMatchesBatchOnDelackCell) {
  InteractiveCell cell;
  cell.iterations = 12;
  cell.warmup = 2;
  Tracer tracer;
  RunInteractiveCell(cell, &tracer);
  const AttributionResult batch = AttributeInteractive(cell, tracer);
  ASSERT_GT(batch.windows.size(), 0u);

  AttributionOptions options;
  options.message_bytes = 200;
  options.warmup_windows = cell.warmup;
  StreamingAttribution streaming(options);
  for (const TraceEvent& ev : tracer.events()) {
    streaming.OnEvent(ev);
  }
  const std::vector<RttWindow> a = SortedWindows(batch.windows);
  const std::vector<RttWindow> b = SortedWindows(streaming.windows());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(SameWindow(a[i], b[i])) << "window " << i;
  }
}

// --- LatencyStats percentile helpers -------------------------------------

TEST(LatencyStats, SummaryAndGapMatchHandComputedDistribution) {
  // 100 samples: 1000, 2000, ..., 100000 ns. Nearest rank (ceil(p/100*n)):
  // p50 -> rank 50 -> 50000; p90 -> 90000; p99 -> 99000; p99.9 -> 100000.
  LatencyStats stats;
  for (int i = 100; i >= 1; --i) {  // insertion order must not matter
    stats.Add(SimDuration::FromNanos(i * 1000));
  }
  const LatencyStats::Summary summary = stats.Percentiles();
  EXPECT_EQ(summary.p50.nanos(), 50000);
  EXPECT_EQ(summary.p90.nanos(), 90000);
  EXPECT_EQ(summary.p99.nanos(), 99000);
  EXPECT_EQ(summary.p999.nanos(), 100000);
  EXPECT_EQ(summary.p50.nanos(), stats.Percentile(50).nanos());
  EXPECT_EQ(summary.p999.nanos(), stats.Percentile(99.9).nanos());

  EXPECT_EQ(stats.PercentileGap(50, 99).nanos(), 49000);
  EXPECT_EQ(stats.PercentileGap(99, 99).nanos(), 0);
  EXPECT_EQ(stats.PercentileGap(0, 100).nanos(),
            stats.Max().nanos() - stats.Min().nanos());
}

TEST(LatencyStats, SummaryOnTinySets) {
  LatencyStats one;
  one.Add(SimDuration::FromNanos(42));
  const LatencyStats::Summary summary = one.Percentiles();
  EXPECT_EQ(summary.p50.nanos(), 42);
  EXPECT_EQ(summary.p999.nanos(), 42);
  EXPECT_EQ(one.PercentileGap(50, 99.9).nanos(), 0);

  LatencyStats empty;
  EXPECT_EQ(empty.Percentiles().p99.nanos(), 0);
  EXPECT_EQ(empty.PercentileGap(50, 99).nanos(), 0);
}

}  // namespace
}  // namespace tcplat
