# Empty dependencies file for rpc_benchmark_test.
# This may be replaced when dependencies are built.
