// Pluggable per-connection congestion control.
//
// The seed stack carried a 4.3BSD-era loss response inlined in
// TcpConnection: slow start, congestion avoidance, and a fast retransmit on
// the third duplicate ACK that simply deflates cwnd to ssthresh and rewinds
// snd_nxt — no fast *recovery*, no partial-ACK handling, no selective
// acknowledgment. That behavior is preserved bit-for-bit as
// CongestionVariant::kLegacy (the default), and three loss-recovery eras
// are layered on top of the same state machine:
//
//  * kReno    — RFC 5681 fast retransmit + fast recovery: on the third
//               duplicate ACK halve the pipe, retransmit the hole, inflate
//               cwnd by one segment per further duplicate ACK (each one
//               proves a packet left the network), deflate to ssthresh when
//               the recovery ACK arrives.
//  * kNewReno — RFC 6582 partial-ACK recovery: a new ACK that does not
//               reach `recover_` (snd_max at loss time) retransmits the
//               *next* hole immediately and stays in recovery, repairing
//               one loss per round trip without waiting for a timeout.
//  * kSack    — RFC 2018 selective acknowledgments: negotiated on the SYN
//               (kTcpOptSackPermitted), the receiver reports received
//               out-of-order blocks (kTcpOptSack), the sender keeps a
//               scoreboard and retransmits only the bytes the scoreboard
//               proves missing — multiple holes per round trip, none of
//               the sacked data resent.
//
// The class owns cwnd / ssthresh / dup-ack / recovery state and returns
// *actions* (retransmit this sequence, call tcp_output, trace a cwnd
// change); TcpConnection executes them so all socket-buffer, stats, and
// trace side effects stay in one place.

#ifndef SRC_TCP_CONGESTION_H_
#define SRC_TCP_CONGESTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/wire.h"
#include "src/tcp/tcp_seq.h"

namespace tcplat {

enum class CongestionVariant : uint8_t {
  kLegacy = 0,  // seed behavior: fast retransmit without fast recovery
  kReno,
  kNewReno,
  kSack,
};

const char* CongestionVariantName(CongestionVariant v);

// The sender-side SACK scoreboard: sorted, disjoint [start, end) blocks the
// peer has reported holding above snd_una. All comparisons are mod-2^32
// sequence arithmetic relative to the caller-supplied `una`.
class SackScoreboard {
 public:
  void Reset();
  // Merges one reported block (ignores blocks at/below `una`).
  void Add(uint32_t una, uint32_t start, uint32_t end);
  // Drops blocks cumulatively acked at/below `una`.
  void AdvanceTo(uint32_t una);
  // True if byte `seq` lies inside a sacked block.
  bool Covers(uint32_t seq) const;
  // First sequence in [from, limit) not covered by any block; returns
  // `limit` when everything in range is sacked.
  uint32_t NextHole(uint32_t from, uint32_t limit) const;
  uint64_t sacked_bytes() const;
  bool empty() const { return blocks_.empty(); }
  // One past the highest sacked byte; only holes *below* this are provably
  // lost (RFC 3517's retransmission bound). 0 when the board is empty.
  uint32_t highest_end() const { return blocks_.empty() ? 0 : blocks_.back().end; }
  const std::vector<TcpSackBlock>& blocks() const { return blocks_; }

 private:
  std::vector<TcpSackBlock> blocks_;  // sorted by start, disjoint
};

class CongestionControl {
 public:
  // What the connection must do after a duplicate ACK.
  struct LossAction {
    bool fast_retransmit = false;  // rewind-retransmit one segment at rexmt_seq
    uint32_t rexmt_seq = 0;
    bool send_more = false;   // window inflation may have opened room: Output()
    bool cwnd_changed = false;  // trace kCwndChange
  };
  // What the connection must do after an ACK that advances snd_una.
  struct AckAction {
    bool partial_retransmit = false;  // NewReno/SACK hole repair at rexmt_seq
    uint32_t rexmt_seq = 0;
    bool exited_recovery = false;
    bool cwnd_changed = false;
  };

  // (Re)initializes for a (re)negotiated MSS at connection setup. Keeps the
  // seed's constants: cwnd = 1 MSS, ssthresh = 65535.
  void Reset(CongestionVariant variant, uint32_t maxseg);
  // MSS renegotiated by the SYN exchange without restarting the connection.
  void SetMss(uint32_t maxseg);

  CongestionVariant variant() const { return variant_; }
  uint32_t cwnd() const { return cwnd_; }
  uint32_t ssthresh() const { return ssthresh_; }
  int dup_acks() const { return dup_acks_; }
  bool in_recovery() const { return in_recovery_; }
  uint32_t recover() const { return recover_; }
  SackScoreboard& scoreboard() { return scoreboard_; }
  const SackScoreboard& scoreboard() const { return scoreboard_; }

  // A duplicate ACK arrived (ack == snd_una, data outstanding).
  LossAction OnDupAck(uint32_t snd_una, uint32_t snd_max, uint32_t snd_wnd);
  // An ACK advanced snd_una from `old_una` to `ack`. Handles window growth
  // (slow start / congestion avoidance) and recovery exit/partial-ACK.
  AckAction OnNewAck(uint32_t old_una, uint32_t ack, uint32_t snd_max, uint32_t snd_wnd);
  // The retransmission timer fired: collapse to slow start.
  void OnTimeout(uint32_t snd_wnd);

 private:
  uint32_t HalvedPipe(uint32_t snd_wnd) const;
  void Grow();

  CongestionVariant variant_ = CongestionVariant::kLegacy;
  uint32_t maxseg_ = 512;
  uint32_t cwnd_ = 512;
  uint32_t ssthresh_ = 65535;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  uint32_t recover_ = 0;        // snd_max when recovery was entered
  uint32_t sack_rexmt_next_ = 0;  // next hole the SACK repair walk considers
  uint32_t pipe_ = 0;  // SACK recovery: estimated bytes still in the network
  SackScoreboard scoreboard_;
};

}  // namespace tcplat

#endif  // SRC_TCP_CONGESTION_H_
