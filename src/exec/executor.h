// Deterministic parallel experiment executor.
//
// Every bench binary walks an experiment grid — transfer sizes x network
// kinds x protocol configs — where each cell builds its own Testbed (its own
// Simulator, clock, RNG, hosts) and runs it to completion. Cells share no
// mutable state, so they are embarrassingly parallel; what must NOT change
// is the output: tables and CSV exports have to stay byte-identical to a
// serial run.
//
// The executor delivers exactly that contract:
//  * a fixed pool of std::jthread workers (default: hardware_concurrency,
//    overridable with the TCPLAT_JOBS environment variable); with one job —
//    or a one-element batch — it runs inline on the submitting thread, so a
//    one-core machine never pays thread handoffs for zero parallelism,
//  * each job runs in isolation and its result is stored at its submission
//    index, so results always come back in submission order regardless of
//    completion order,
//  * a job that throws poisons only its own slot (crash isolation): the
//    outcome records the error text and every sibling still completes.
//
// Simulations are pure functions of their config (no global mutable state,
// all randomness from per-simulator seeded RNGs, all time integer
// nanoseconds), so a parallel run computes bit-identical values to a serial
// one; printing happens after the merge, on the submitting thread.

#ifndef SRC_EXEC_EXECUTOR_H_
#define SRC_EXEC_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace tcplat {

// Worker count for new executors: TCPLAT_JOBS if set to a positive integer,
// else std::thread::hardware_concurrency(), else 1.
unsigned DefaultExecutorJobs();

// Outcome of one submitted experiment: a value, or the error text of the
// exception that killed it.
template <typename T>
struct JobOutcome {
  std::optional<T> value;
  std::string error;

  bool ok() const { return value.has_value(); }
};

class Executor {
 public:
  explicit Executor(unsigned jobs = DefaultExecutorJobs());
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  ~Executor();

  unsigned jobs() const { return jobs_; }

  // Runs body(0) .. body(n-1) across the pool and blocks until all have
  // finished. Exceptions escaping `body` are fatal (the bench-facing
  // entry points below wrap per-job try/catch around it); `body` must be
  // safe to call concurrently from multiple workers. Concurrent submitters
  // are serialized; submitting from inside a job (nesting) deadlocks and is
  // not supported.
  void RunIndexed(size_t n, const std::function<void(size_t)>& body);

  // Runs every thunk, capturing each job's value or error at its submission
  // index (crash isolation: one failure never poisons a sibling).
  template <typename T>
  std::vector<JobOutcome<T>> Run(const std::vector<std::function<T()>>& thunks) {
    std::vector<JobOutcome<T>> out(thunks.size());
    RunIndexed(thunks.size(), [&](size_t i) {
      try {
        out[i].value = thunks[i]();
      } catch (const std::exception& e) {
        out[i].error = e.what();
      } catch (...) {
        out[i].error = "unknown exception";
      }
    });
    return out;
  }

 private:
  void WorkerLoop(const std::stop_token& stop);

  const unsigned jobs_;

  std::mutex submit_mu_;  // serializes RunIndexed callers
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a batch
  std::condition_variable done_cv_;   // the submitter waits here
  const std::function<void(size_t)>* body_ = nullptr;  // current batch
  size_t batch_size_ = 0;
  size_t next_index_ = 0;
  size_t completed_ = 0;
  uint64_t generation_ = 0;  // bumped per batch so workers never re-enter one

  std::vector<std::jthread> threads_;  // last member: joined before the rest dies
};

// The process-wide executor the bench binaries share (one fixed pool per
// process, created on first use with DefaultExecutorJobs()).
Executor& GlobalExecutor();

// Runs fn(0) .. fn(n-1) on the global executor and returns the results in
// index order. The first failed job's error is rethrown as std::runtime_error
// after all jobs finished. This is the bench-facing entry point: build the
// grid, ParallelMap it, then print — output is byte-identical to a serial
// loop over fn.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, Fn&& fn) {
  std::vector<std::function<T()>> thunks;
  thunks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    thunks.emplace_back([&fn, i] { return fn(i); });
  }
  std::vector<JobOutcome<T>> outcomes = GlobalExecutor().Run<T>(thunks);
  std::vector<T> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!outcomes[i].ok()) {
      throw std::runtime_error("experiment " + std::to_string(i) +
                               " failed: " + outcomes[i].error);
    }
    out.push_back(std::move(*outcomes[i].value));
  }
  return out;
}

}  // namespace tcplat

#endif  // SRC_EXEC_EXECUTOR_H_
