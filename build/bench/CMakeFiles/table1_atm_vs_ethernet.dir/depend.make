# Empty dependencies file for table1_atm_vs_ethernet.
# This may be replaced when dependencies are built.
