// Configuration-matrix smoke: every combination of the experiment axes must
// deliver data intact — no configuration interaction may break the stack.

#include <gtest/gtest.h>

#include <string>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"

namespace tcplat {
namespace {

struct MatrixParam {
  NetworkKind network;
  ChecksumMode checksum;
  bool prediction;
  bool nodelay;
  bool switched;
  bool dma;

  std::string Name() const {
    std::string n = network == NetworkKind::kAtm ? "atm" : "eth";
    n += checksum == ChecksumMode::kStandard ? "_std"
         : checksum == ChecksumMode::kCombined ? "_comb"
                                               : "_none";
    n += prediction ? "_pred" : "_nopred";
    n += nodelay ? "_nodelay" : "";
    n += switched ? "_switched" : "";
    n += dma ? "_dma" : "";
    return n;
  }
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ConfigMatrix, EchoSurvivesEveryConfiguration) {
  const MatrixParam& p = GetParam();
  TestbedConfig cfg;
  cfg.network = p.network;
  cfg.tcp.checksum = p.checksum;
  cfg.tcp.header_prediction = p.prediction;
  cfg.tcp.nodelay = p.nodelay;
  cfg.switched = p.switched;
  Testbed tb(cfg);
  if (p.dma && p.network == NetworkKind::kAtm) {
    tb.client_atm()->set_dma(true);
    tb.server_atm()->set_dma(true);
  }
  for (size_t size : {size_t{4}, size_t{1400}, size_t{8000}}) {
    RpcOptions opt;
    opt.size = size;
    opt.iterations = 12;
    opt.warmup = 4;
    const RpcResult r = RunRpcBenchmark(tb, opt);
    EXPECT_EQ(r.data_mismatches, 0u) << p.Name() << " size " << size;
    EXPECT_EQ(r.rtt.count(), 12u) << p.Name() << " size " << size;
  }
  EXPECT_EQ(tb.client_host().pool().stats().in_use, 0) << p.Name() << " leaked";
  EXPECT_EQ(tb.server_host().pool().stats().in_use, 0) << p.Name() << " leaked";
}

std::vector<MatrixParam> AllConfigs() {
  std::vector<MatrixParam> out;
  for (NetworkKind net : {NetworkKind::kAtm, NetworkKind::kEthernet}) {
    for (ChecksumMode mode :
         {ChecksumMode::kStandard, ChecksumMode::kCombined, ChecksumMode::kNone}) {
      for (bool prediction : {true, false}) {
        for (bool nodelay : {true, false}) {
          out.push_back({net, mode, prediction, nodelay, false, false});
        }
      }
    }
  }
  // The ATM-only axes, on top of the default TCP settings.
  out.push_back({NetworkKind::kAtm, ChecksumMode::kStandard, true, false, true, false});
  out.push_back({NetworkKind::kAtm, ChecksumMode::kNone, true, false, true, false});
  out.push_back({NetworkKind::kAtm, ChecksumMode::kStandard, true, false, false, true});
  out.push_back({NetworkKind::kAtm, ChecksumMode::kCombined, true, false, true, true});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllAxes, ConfigMatrix, ::testing::ValuesIn(AllConfigs()),
                         [](const auto& inst) { return inst.param.Name(); });

}  // namespace
}  // namespace tcplat
