# Empty compiler generated dependencies file for udp_vs_tcp.
# This may be replaced when dependencies are built.
