#include "src/fault/injector.h"

#include "src/atm/aal34.h"
#include "src/base/check.h"

namespace tcplat {
namespace {

void FlipRandomBits(Rng& rng, std::vector<uint8_t>& data, size_t lo, size_t hi, int bits) {
  for (int i = 0; i < bits; ++i) {
    const size_t byte = lo + static_cast<size_t>(rng.NextBelow(hi - lo));
    const int bit = static_cast<int>(rng.NextBelow(8));
    data[byte] = static_cast<uint8_t>(data[byte] ^ (1u << bit));
  }
}

}  // namespace

CorruptFn MakeCellBitFlipper(std::shared_ptr<Rng> rng, std::shared_ptr<InjectionCounter> counter,
                             double prob, int bits) {
  return [rng = std::move(rng), counter = std::move(counter), prob,
          bits](std::vector<uint8_t>& data) {
    if (data.size() != kAtmCellBytes || !rng->NextBool(prob)) {
      return;
    }
    FlipRandomBits(*rng, data, kAtmCellHeaderBytes, data.size(), bits);
    ++counter->injected;
  };
}

CorruptFn MakeFrameBitFlipper(std::shared_ptr<Rng> rng,
                              std::shared_ptr<InjectionCounter> counter, double prob, int bits) {
  return [rng = std::move(rng), counter = std::move(counter), prob,
          bits](std::vector<uint8_t>& data) {
    if (data.empty() || !rng->NextBool(prob)) {
      return;
    }
    FlipRandomBits(*rng, data, 0, data.size(), bits);
    ++counter->injected;
  };
}

CorruptFn MakeCrc10DefeatingCorruptor(std::shared_ptr<Rng> rng,
                                      std::shared_ptr<InjectionCounter> counter, double prob) {
  // The generator (with the x^10 term) is an 11-bit pattern; XORing it into
  // the message at any bit offset adds a multiple of the generator, which
  // the CRC cannot see.
  constexpr uint32_t kGeneratorBits = 0x633;  // x^10+x^9+x^5+x^4+x+1
  return [rng = std::move(rng), counter = std::move(counter), prob](std::vector<uint8_t>& data) {
    if (data.size() != kAtmCellBytes || !rng->NextBool(prob)) {
      return;
    }
    // Keep the pattern inside the 44 data bytes of the SAR-PDU (after the
    // 2-byte SAR header, before the LI/CRC trailer): the corrupted bits are
    // all CRC-covered message bits, so the residue is unchanged.
    const size_t first_bit = kSarHeaderBytes * 8;
    const size_t last_bit = (kSarHeaderBytes + kSarPayloadBytes) * 8 - 11;
    const size_t bit_off =
        first_bit + static_cast<size_t>(rng->NextBelow(last_bit - first_bit));
    for (int i = 0; i < 11; ++i) {
      if ((kGeneratorBits >> (10 - i)) & 1) {
        const size_t bit = bit_off + static_cast<size_t>(i);
        const size_t byte = kAtmCellHeaderBytes + bit / 8;
        data[byte] = static_cast<uint8_t>(data[byte] ^ (0x80u >> (bit % 8)));
      }
    }
    ++counter->injected;
  };
}

DropFn MakeUniformDropper(std::shared_ptr<Rng> rng, std::shared_ptr<InjectionCounter> counter,
                          double prob) {
  return [rng = std::move(rng), counter = std::move(counter),
          prob](const std::vector<uint8_t>&) {
    if (!rng->NextBool(prob)) {
      return false;
    }
    ++counter->injected;
    return true;
  };
}

std::function<void(std::vector<uint8_t>&)> MakeControllerCorruptor(
    std::shared_ptr<Rng> rng, std::shared_ptr<InjectionCounter> counter, double prob) {
  return [rng = std::move(rng), counter = std::move(counter), prob](std::vector<uint8_t>& pdu) {
    // Only damage transport payload bytes (past IP + TCP headers) so the
    // stream survives to exercise the end-to-end check.
    constexpr size_t kSkip = 40;
    if (pdu.size() <= kSkip + 1 || !rng->NextBool(prob)) {
      return;
    }
    FlipRandomBits(*rng, pdu, kSkip, pdu.size(), 1);
    ++counter->injected;
  };
}

}  // namespace tcplat
