// Simulated time.
//
// All virtual time in the simulator is carried as a strongly-typed count of
// nanoseconds. The paper measured with a free-running clock of 40 ns period
// (the AN-1 controller clock); QuantizeToClockTick() reproduces that
// measurement granularity for code that wants to mimic the paper's
// instrumentation exactly.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <compare>
#include <cstdint>
#include <string>

namespace tcplat {

// Period of the real-time clock the paper used for instrumentation (the
// AN-1 TurboChannel controller clock, 40 ns).
inline constexpr int64_t kPaperClockPeriodNs = 40;

// A point in simulated time, in nanoseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}

  static constexpr SimTime FromNanos(int64_t ns) { return SimTime(ns); }
  static constexpr SimTime FromMicros(double us) {
    return SimTime(static_cast<int64_t>(us * 1000.0 + 0.5));
  }
  static constexpr SimTime FromMillis(double ms) {
    return SimTime(static_cast<int64_t>(ms * 1e6 + 0.5));
  }
  static constexpr SimTime FromSeconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e9 + 0.5));
  }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1000.0; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  // Rounds down to the 40 ns tick grid of the paper's measurement clock.
  constexpr SimTime QuantizeToClockTick() const {
    return SimTime(ns_ - ns_ % kPaperClockPeriodNs);
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  std::string ToString() const;  // e.g. "123.456us"

 private:
  explicit constexpr SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

// A span of simulated time, also in nanoseconds. Kept distinct from SimTime
// so that nonsense like time-point + time-point does not compile.
class SimDuration {
 public:
  constexpr SimDuration() : ns_(0) {}

  static constexpr SimDuration FromNanos(int64_t ns) { return SimDuration(ns); }
  static constexpr SimDuration FromMicros(double us) {
    return SimDuration(static_cast<int64_t>(us * 1000.0 + 0.5));
  }
  static constexpr SimDuration FromMillis(double ms) {
    return SimDuration(static_cast<int64_t>(ms * 1e6 + 0.5));
  }
  static constexpr SimDuration FromSeconds(double s) {
    return SimDuration(static_cast<int64_t>(s * 1e9 + 0.5));
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1000.0; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  constexpr SimDuration& operator+=(SimDuration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration other) {
    ns_ -= other.ns_;
    return *this;
  }

  std::string ToString() const;

 private:
  explicit constexpr SimDuration(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

constexpr SimTime operator+(SimTime t, SimDuration d) {
  return SimTime::FromNanos(t.nanos() + d.nanos());
}
constexpr SimTime operator-(SimTime t, SimDuration d) {
  return SimTime::FromNanos(t.nanos() - d.nanos());
}
constexpr SimDuration operator-(SimTime a, SimTime b) {
  return SimDuration::FromNanos(a.nanos() - b.nanos());
}
constexpr SimDuration operator+(SimDuration a, SimDuration b) {
  return SimDuration::FromNanos(a.nanos() + b.nanos());
}
constexpr SimDuration operator-(SimDuration a, SimDuration b) {
  return SimDuration::FromNanos(a.nanos() - b.nanos());
}
constexpr SimDuration operator*(SimDuration d, int64_t k) {
  return SimDuration::FromNanos(d.nanos() * k);
}
constexpr SimDuration operator*(int64_t k, SimDuration d) { return d * k; }
constexpr SimDuration operator/(SimDuration d, int64_t k) {
  return SimDuration::FromNanos(d.nanos() / k);
}

}  // namespace tcplat

#endif  // SRC_SIM_TIME_H_
