// ATM Adaptation Layer 3/4 framing (ITU-T I.363 Class 3/4, as implemented by
// the FORE TCA-100 driver/adapter pair in the paper).
//
// Encapsulation of one datagram:
//
//   CPCS-PDU:  [CPI|Btag|BAsize] payload ... pad-to-4 [AL|Etag|Length]
//                 1    1     2                           1    1     2
//   SAR:       the CPCS-PDU is sliced into 44-byte SAR payloads, each
//              wrapped as [ST:2 SN:4 MID:10] payload[44] [LI:6 CRC10:10]
//              = 48 bytes, carried in one 53-byte ATM cell (5-byte header).
//
// Segment types: BOM begins a PDU, COM continues, EOM ends, SSM is a
// single-segment PDU. The per-cell CRC-10 covers the entire 48-byte SAR-PDU
// with the CRC field taken as zero.

#ifndef SRC_ATM_AAL34_H_
#define SRC_ATM_AAL34_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tcplat {

inline constexpr size_t kAtmCellBytes = 53;
inline constexpr size_t kAtmCellHeaderBytes = 5;
inline constexpr size_t kAtmCellPayloadBytes = 48;
inline constexpr size_t kSarHeaderBytes = 2;
inline constexpr size_t kSarTrailerBytes = 2;
inline constexpr size_t kSarPayloadBytes = 44;
inline constexpr size_t kCpcsHeaderBytes = 4;
inline constexpr size_t kCpcsTrailerBytes = 4;

// The FORE interface presents a ~9 KB MTU to IP ("our ATM MTU of 9K").
inline constexpr size_t kAtmMtu = 9188;

enum class SegmentType : uint8_t {
  kCom = 0,  // continuation of message
  kEom = 1,  // end of message
  kBom = 2,  // beginning of message
  kSsm = 3,  // single-segment message
};

struct AtmCell {
  uint16_t vci = 0;
  SegmentType st = SegmentType::kCom;
  uint8_t sn = 0;     // 4-bit sequence number
  uint16_t mid = 0;   // 10-bit multiplexing id
  uint8_t li = 0;     // 6-bit length indicator (valid SAR payload bytes)
  std::vector<uint8_t> payload;  // exactly kSarPayloadBytes
};

// Builds the CPCS-PDU envelope around a datagram.
std::vector<uint8_t> BuildCpcsPdu(std::span<const uint8_t> payload, uint8_t btag);

// Validates a CPCS-PDU and extracts the datagram; on failure returns nullopt
// and, if non-null, sets *error to a reason string.
std::optional<std::vector<uint8_t>> ParseCpcsPdu(std::span<const uint8_t> pdu,
                                                 std::string* error);

// Slices a CPCS-PDU into SAR cells. `sn` is the per-VC 4-bit sequence
// counter, advanced in place.
std::vector<AtmCell> SegmentCpcsPdu(std::span<const uint8_t> cpcs, uint16_t vci, uint16_t mid,
                                    uint8_t* sn);

// Serializes one cell to its 53-byte wire image (computes CRC-10).
std::vector<uint8_t> SerializeCell(const AtmCell& cell);

// Parses a 53-byte wire image. `crc_ok` reports the per-cell CRC-10 check
// (the TCA-100 performs this in hardware). Returns nullopt for malformed
// sizes only.
std::optional<AtmCell> ParseCell(std::span<const uint8_t> wire, bool* crc_ok);

struct SarReassemblerStats {
  uint64_t cells = 0;
  uint64_t crc_errors = 0;
  uint64_t sequence_errors = 0;
  uint64_t protocol_errors = 0;  // unexpected BOM/COM/EOM state
  uint64_t cpcs_errors = 0;      // tag/length/checksum trouble at CPCS level
  uint64_t pdus_ok = 0;
  uint64_t pdus_dropped = 0;

  SarReassemblerStats& operator+=(const SarReassemblerStats& o);
};

// Receive-side SAR state machine for one VC. Feed cells in arrival order;
// a completed, validated datagram is returned on the EOM/SSM cell.
class SarReassembler {
 public:
  std::optional<std::vector<uint8_t>> Feed(const AtmCell& cell, bool crc_ok);

  const SarReassemblerStats& stats() const { return stats_; }
  bool mid_assembly_in_progress() const { return in_progress_; }

 private:
  void AbortPdu();

  bool in_progress_ = false;
  bool poisoned_ = false;  // error seen; discard until next BOM
  uint8_t expect_sn_ = 0;
  std::vector<uint8_t> buffer_;
  SarReassemblerStats stats_;
};

}  // namespace tcplat

#endif  // SRC_ATM_AAL34_H_
