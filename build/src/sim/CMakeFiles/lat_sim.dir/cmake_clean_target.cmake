file(REMOVE_RECURSE
  "liblat_sim.a"
)
