# Empty compiler generated dependencies file for gateway_path.
# This may be replaced when dependencies are built.
