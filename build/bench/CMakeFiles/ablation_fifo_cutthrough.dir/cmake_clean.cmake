file(REMOVE_RECURSE
  "CMakeFiles/ablation_fifo_cutthrough.dir/ablation_fifo_cutthrough.cc.o"
  "CMakeFiles/ablation_fifo_cutthrough.dir/ablation_fifo_cutthrough.cc.o.d"
  "ablation_fifo_cutthrough"
  "ablation_fifo_cutthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fifo_cutthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
