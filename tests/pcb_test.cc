// Tests for the PCB table: BSD head insertion, wildcard matching, the
// single-entry cache, the hash alternative, and the calibrated lookup cost.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/base/random.h"
#include "src/sim/simulator.h"
#include "src/tcp/pcb.h"

namespace tcplat {
namespace {

constexpr Ipv4Addr kLocalAddr = MakeAddr(10, 0, 0, 1);
constexpr Ipv4Addr kRemoteAddr = MakeAddr(10, 0, 0, 2);

class PcbTest : public ::testing::Test {
 protected:
  PcbTest() : cpu_(&sim_, CostProfile::Decstation5000_200()), table_(&cpu_) {
    cpu_.BeginRun(sim_.Now());
  }
  ~PcbTest() override { cpu_.EndRun(); }

  Pcb* AddConnected(uint16_t lport, uint16_t rport) {
    auto pcb = std::make_unique<Pcb>();
    pcb->local = SockAddr{kLocalAddr, lport};
    pcb->remote = SockAddr{kRemoteAddr, rport};
    table_.Insert(pcb.get());
    owned_.push_back(std::move(pcb));
    return owned_.back().get();
  }

  Pcb* AddListener(uint16_t lport) {
    auto pcb = std::make_unique<Pcb>();
    pcb->local = SockAddr{kLocalAddr, lport};
    pcb->remote = SockAddr{};
    table_.Insert(pcb.get());
    owned_.push_back(std::move(pcb));
    return owned_.back().get();
  }

  double LookupCostUs(const SockAddr& remote, const SockAddr& local) {
    const SimTime before = cpu_.cursor();
    table_.Lookup(remote, local);
    return (cpu_.cursor() - before).micros();
  }

  Simulator sim_;
  Cpu cpu_;
  PcbTable table_;
  std::vector<std::unique_ptr<Pcb>> owned_;
};

TEST_F(PcbTest, ExactMatchWins) {
  table_.set_cache_enabled(false);
  AddListener(5001);
  Pcb* conn = AddConnected(5001, 7777);
  Pcb* found = table_.Lookup(SockAddr{kRemoteAddr, 7777}, SockAddr{kLocalAddr, 5001});
  EXPECT_EQ(found, conn);
}

TEST_F(PcbTest, WildcardCatchesNewConnections) {
  table_.set_cache_enabled(false);
  Pcb* listener = AddListener(5001);
  AddConnected(5001, 7777);
  // Different remote port: no exact match, the listener should catch it.
  Pcb* found = table_.Lookup(SockAddr{kRemoteAddr, 8888}, SockAddr{kLocalAddr, 5001});
  EXPECT_EQ(found, listener);
}

TEST_F(PcbTest, MissReturnsNull) {
  table_.set_cache_enabled(false);
  AddConnected(5001, 7777);
  EXPECT_EQ(table_.Lookup(SockAddr{kRemoteAddr, 7777}, SockAddr{kLocalAddr, 9}), nullptr);
  EXPECT_EQ(table_.stats().not_found, 1u);
}

TEST_F(PcbTest, HeadInsertionMakesNewestCheapest) {
  table_.set_cache_enabled(false);
  for (uint16_t i = 0; i < 50; ++i) {
    AddConnected(5001, static_cast<uint16_t>(1000 + i));
  }
  // The most recently inserted is found after examining 1 entry; the first
  // inserted requires walking all 50.
  const double newest = LookupCostUs(SockAddr{kRemoteAddr, 1049}, SockAddr{kLocalAddr, 5001});
  const double oldest = LookupCostUs(SockAddr{kRemoteAddr, 1000}, SockAddr{kLocalAddr, 5001});
  EXPECT_LT(newest, oldest);
  EXPECT_NEAR(oldest - newest, 49 * 1.3, 1.0);
}

TEST_F(PcbTest, LinearCostMatchesPaperCalibration) {
  table_.set_cache_enabled(false);
  for (uint16_t i = 0; i < 20; ++i) {
    AddConnected(5001, static_cast<uint16_t>(1000 + i));
  }
  // §3: a 20-entry search took 26 us.
  const double cost = LookupCostUs(SockAddr{kRemoteAddr, 1000}, SockAddr{kLocalAddr, 5001});
  EXPECT_NEAR(cost, 26.0, 5.0);
}

TEST_F(PcbTest, CacheHitSkipsSearch) {
  table_.set_cache_enabled(true);
  for (uint16_t i = 0; i < 100; ++i) {
    AddConnected(5001, static_cast<uint16_t>(1000 + i));
  }
  const SockAddr remote{kRemoteAddr, 1000};
  const SockAddr local{kLocalAddr, 5001};
  const double first = LookupCostUs(remote, local);   // miss: full search
  const double second = LookupCostUs(remote, local);  // hit: cache probe only
  EXPECT_EQ(table_.stats().cache_hits, 1u);
  EXPECT_EQ(table_.stats().cache_misses, 1u);
  EXPECT_GT(first, 100 * 1.3 * 0.9);
  EXPECT_NEAR(second, cpu_.profile().pcb_cache_check.fixed_us, 0.01);
}

TEST_F(PcbTest, CacheInvalidatedOnRemove) {
  table_.set_cache_enabled(true);
  Pcb* a = AddConnected(5001, 1000);
  const SockAddr remote{kRemoteAddr, 1000};
  const SockAddr local{kLocalAddr, 5001};
  EXPECT_EQ(table_.Lookup(remote, local), a);
  table_.Remove(a);
  EXPECT_EQ(table_.Lookup(remote, local), nullptr);
}

TEST_F(PcbTest, HashModeFindsSameResultsAsLinear) {
  table_.set_cache_enabled(false);
  Rng rng(21);
  std::vector<std::pair<SockAddr, SockAddr>> keys;
  AddListener(5001);
  for (int i = 0; i < 200; ++i) {
    const uint16_t lport = static_cast<uint16_t>(4000 + rng.NextBelow(8));
    const uint16_t rport = static_cast<uint16_t>(10000 + i);
    AddConnected(lport, rport);
    keys.emplace_back(SockAddr{kRemoteAddr, rport}, SockAddr{kLocalAddr, lport});
  }
  keys.emplace_back(SockAddr{kRemoteAddr, 60000}, SockAddr{kLocalAddr, 5001});  // wildcard hit
  keys.emplace_back(SockAddr{kRemoteAddr, 60000}, SockAddr{kLocalAddr, 60000});  // miss

  for (const auto& [remote, local] : keys) {
    table_.set_mode(PcbLookupMode::kLinearList);
    Pcb* linear = table_.Lookup(remote, local);
    table_.set_mode(PcbLookupMode::kHashTable);
    Pcb* hashed = table_.Lookup(remote, local);
    EXPECT_EQ(linear, hashed) << remote.ToString() << " -> " << local.ToString();
  }
}

TEST_F(PcbTest, HashModeIsFlatCost) {
  table_.set_cache_enabled(false);
  table_.set_mode(PcbLookupMode::kHashTable);
  for (uint16_t i = 0; i < 1000; ++i) {
    AddConnected(5001, static_cast<uint16_t>(1000 + i));
  }
  const double cost = LookupCostUs(SockAddr{kRemoteAddr, 1000}, SockAddr{kLocalAddr, 5001});
  // "A simple hash table implementation could eliminate the lookup problem
  // entirely" — cost stays near the fixed overhead regardless of 1000
  // entries.
  EXPECT_LT(cost, 25.0);
}

TEST_F(PcbTest, StatsCountExaminedEntries) {
  table_.set_cache_enabled(false);
  for (uint16_t i = 0; i < 10; ++i) {
    AddConnected(5001, static_cast<uint16_t>(1000 + i));
  }
  table_.ResetStats();
  table_.Lookup(SockAddr{kRemoteAddr, 1000}, SockAddr{kLocalAddr, 5001});  // tail: 10 examined
  EXPECT_EQ(table_.stats().entries_examined, 10u);
  EXPECT_EQ(table_.stats().lookups, 1u);
}

}  // namespace
}  // namespace tcplat
