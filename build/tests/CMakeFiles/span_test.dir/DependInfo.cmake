
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/span_test.cc" "tests/CMakeFiles/span_test.dir/span_test.cc.o" "gcc" "tests/CMakeFiles/span_test.dir/span_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lat_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lat_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lat_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
