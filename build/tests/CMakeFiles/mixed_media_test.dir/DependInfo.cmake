
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mixed_media_test.cc" "tests/CMakeFiles/mixed_media_test.dir/mixed_media_test.cc.o" "gcc" "tests/CMakeFiles/mixed_media_test.dir/mixed_media_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/icmp/CMakeFiles/lat_icmp.dir/DependInfo.cmake"
  "/root/repo/build/src/udp/CMakeFiles/lat_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/lat_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/ether/CMakeFiles/lat_ether.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/lat_link.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/lat_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sock/CMakeFiles/lat_sock.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/lat_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/lat_os.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lat_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/buf/CMakeFiles/lat_buf.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lat_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lat_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
