file(REMOVE_RECURSE
  "liblat_rpc.a"
)
