// The cost of leaving the LAN — §4.2's "local-area traffic" boundary made
// quantitative. Compares round trips on a private segment against the same
// exchange through an IP gateway (two Ethernet hops + forwarding), and
// demonstrates why the paper restricts checksum elimination to the local
// case: a flaky gateway memory corrupts routed traffic invisibly to every
// link CRC.

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/base/random.h"
#include "src/core/routed_testbed.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

struct RoutedRun {
  LatencyStats rtt;
  uint64_t mismatches = 0;
  bool done = false;
};

SimTask RoutedServer(RoutedTestbed* net, size_t size, int total) {
  Socket* listener = net->server_tcp().Listen(5001);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  std::vector<uint8_t> buf(size);
  for (int i = 0; i < total; ++i) {
    size_t got = 0;
    while (got < size) {
      const size_t n = s->Read({buf.data() + got, size - got});
      got += n;
      if (n == 0) {
        if (s->eof() || s->has_error()) {
          co_return;
        }
        co_await s->WaitReadable();
      }
    }
    size_t sent = 0;
    while (sent < size) {
      const size_t w = s->Write({buf.data() + sent, size - sent});
      sent += w;
      if (w == 0) {
        co_await s->WaitWritable();
      }
    }
  }
}

SimTask RoutedClient(RoutedTestbed* net, size_t size, int warmup, int iters, RoutedRun* out) {
  Socket* s = net->client_tcp().Connect(SockAddr{kRoutedServerAddr, 5001});
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  std::vector<uint8_t> msg(size);
  std::vector<uint8_t> in(size);
  for (int i = 0; i < warmup + iters; ++i) {
    for (size_t b = 0; b < size; ++b) {
      msg[b] = static_cast<uint8_t>(b * 131 + i);
    }
    const SimTime t0 = net->client_host().CurrentTime();
    size_t sent = 0;
    while (sent < size) {
      const size_t w = s->Write({msg.data() + sent, size - sent});
      sent += w;
      if (w == 0) {
        co_await s->WaitWritable();
      }
    }
    size_t got = 0;
    while (got < size) {
      const size_t n = s->Read({in.data() + got, size - got});
      got += n;
      if (n == 0) {
        if (s->eof() || s->has_error()) {
          co_return;
        }
        co_await s->WaitReadable();
      }
    }
    if (i >= warmup) {
      out->rtt.Add(net->client_host().CurrentTime() - t0);
      if (std::memcmp(in.data(), msg.data(), size) != 0) {
        ++out->mismatches;
      }
    }
  }
  s->Close();
  out->done = true;
}

RoutedRun MeasureRouted(size_t size, ChecksumMode mode, double gw_corrupt_prob) {
  RoutedTestbedConfig cfg;
  cfg.tcp.checksum = mode;
  RoutedTestbed net(cfg);
  auto rng = std::make_shared<Rng>(33);
  if (gw_corrupt_prob > 0) {
    net.gateway_ip().set_forward_corrupt_hook(
        [rng, gw_corrupt_prob](std::vector<uint8_t>& pkt) {
          if (pkt.size() > 60 && rng->NextBool(gw_corrupt_prob)) {
            pkt[48] ^= 0x11;
          }
        });
  }
  RoutedRun run;
  constexpr int kWarmup = 8;
  constexpr int kIters = 120;
  net.server_host().Spawn("gw-server", RoutedServer(&net, size, kWarmup + kIters));
  net.client_host().Spawn("gw-client", RoutedClient(&net, size, kWarmup, kIters, &run));
  net.sim().RunToCompletion();
  return run;
}

double MeasureLocal(size_t size) {
  TestbedConfig cfg;
  cfg.network = NetworkKind::kEthernet;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 120;
  return RunRpcBenchmark(tb, opt).MeanRtt().micros();
}

void Run() {
  std::printf("Local segment vs routed path (Ethernet hops, round-trip us)\n\n");
  TextTable t({"Size", "Local segment", "Via gateway", "Gateway tax"});
  for (size_t size : {4u, 200u, 1400u, 4000u}) {
    const double local = MeasureLocal(size);
    const RoutedRun routed = MeasureRouted(size, ChecksumMode::kStandard, 0);
    t.AddRow({std::to_string(size), TextTable::Us(local),
              TextTable::Us(routed.rtt.Mean().micros()),
              TextTable::Pct(100.0 * (routed.rtt.Mean().micros() - local) / local)});
  }
  t.Print();

  std::printf("\nA gateway with flaky memory (0.5%% of forwarded packets corrupted):\n\n");
  TextTable t2({"TCP checksum", "Mean RTT (us)", "App-visible corruption"});
  const RoutedRun on = MeasureRouted(1400, ChecksumMode::kStandard, 0.005);
  const RoutedRun off = MeasureRouted(1400, ChecksumMode::kNone, 0.005);
  t2.AddRow({"on", TextTable::Us(on.rtt.Mean().micros()), std::to_string(on.mismatches)});
  t2.AddRow({"off (negotiated away)", TextTable::Us(off.rtt.Mean().micros()),
             std::to_string(off.mismatches)});
  t2.Print();
  std::printf("\nThis is §4.2's boundary condition in numbers: the no-checksum option is\n"
              "safe only for \"packets that go from source host to destination host\n"
              "without passing through any IP routers\" — past a gateway, the TCP\n"
              "checksum is the only thing standing between router memory and your data.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
