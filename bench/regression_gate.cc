// Perf regression gate: diffs a fresh BENCH_perf.json / BENCH_trace.json
// against committed baselines (bench/baselines/) with per-metric noise
// tolerances, and exits non-zero on a regression so CI can fail the build.
//
// Tolerance policy, per metric class:
//  * Deterministic facts (quick, grid_configs, grid_iterations,
//    capacity_flows, grid_results_identical, and any unclassified key)
//    must match the baseline exactly.
//  * Wall-clock rates (keys ending in _per_sec) vary wildly across CI
//    hardware, so they only gate on collapse: fresh must be at least
//    kMinRateRatio of the baseline. A 10x regression trips; scheduler
//    noise does not.
//  * Wall-clock raw seconds and machine facts (hardware_concurrency,
//    grid_jobs, grid_serial_sec, grid_parallel_sec, grid_speedup,
//    shard_threads, shard_speedup) are reported but never gate.
//  * trace_disabled_overhead_pct gates on an absolute ceiling: detached-
//    tracer hooks must stay under kMaxTraceOverheadPct.
//  * Interactive latency metrics (interactive_*_us) are pure simulated
//    quantities but gate on a 1.10x growth ceiling rather than exact
//    equality: they exist to catch a protocol change that re-arms (or
//    widens) the Nagle x delayed-ACK pathology, while letting small
//    timing shifts from unrelated stack work through. Getting faster is
//    always fine.
//  * The trace metrics file (written by observability_selfcheck: reference
//    trace bytes/event-count/FNV-1a hash, binary-pipeline and sampling
//    results) must match the committed baseline exactly — the values are
//    pure simulated data, so any drift is a real behavior change — except
//    the capacity-class metrics binary_trace_bytes_per_event,
//    streaming_graph_peak_nodes, and timeseries_points_per_flow, which
//    gate on a 1.10x growth ceiling (encoding, arena, or sampler-frugality
//    regressions trip, small drifts from new events do not, and shrinking
//    is always fine), and timeseries_overhead_pct, which is wall-clock and
//    gates on an absolute ceiling like trace_disabled_overhead_pct: the
//    timeseries hooks must stay cheap when no sampler records.
//
// Modes: default gates; --write-baseline refreshes the committed files;
// --selftest runs the gate logic on synthetic data (pass + perturbed-fail)
// with no file dependencies, for ctest.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "src/trace/tracer.h"

namespace tcplat {
namespace {

constexpr double kMinRateRatio = 0.10;
constexpr double kMaxTraceOverheadPct = 10.0;
constexpr double kMaxTraceGrowthRatio = 1.10;
constexpr double kMaxInteractiveGrowthRatio = 1.10;
constexpr double kMinCongestionRatio = 0.90;

int g_failures = 0;
int g_warnings = 0;

void Result(const char* status, const std::string& key, const std::string& detail) {
  std::printf("  [%s] %-40s %s\n", status, key.c_str(), detail.c_str());
  if (std::strcmp(status, "FAIL") == 0) {
    ++g_failures;
  } else if (std::strcmp(status, "warn") == 0) {
    ++g_warnings;
  }
}

bool ReadFile(const std::string& path, std::string* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::perror(path.c_str());
    return false;
  }
  char buf[4096];
  size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

// Minimal parser for the flat one-level JSON objects the bench binaries
// write: "key": value pairs, values being numbers, booleans, or strings.
// Returns key -> raw value token (quotes stripped for strings).
std::map<std::string, std::string> ParseFlatJson(const std::string& text) {
  std::map<std::string, std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    const size_t key_open = text.find('"', i);
    if (key_open == std::string::npos) {
      break;
    }
    const size_t key_close = text.find('"', key_open + 1);
    if (key_close == std::string::npos) {
      break;
    }
    const std::string key = text.substr(key_open + 1, key_close - key_open - 1);
    size_t colon = key_close + 1;
    while (colon < text.size() && (text[colon] == ' ' || text[colon] == '\t')) {
      ++colon;
    }
    if (colon >= text.size() || text[colon] != ':') {
      i = key_close + 1;  // a bare string (not a key); skip it
      continue;
    }
    size_t v = colon + 1;
    while (v < text.size() && (text[v] == ' ' || text[v] == '\t')) {
      ++v;
    }
    std::string value;
    if (v < text.size() && text[v] == '"') {
      const size_t end = text.find('"', v + 1);
      if (end == std::string::npos) {
        break;
      }
      value = text.substr(v + 1, end - v - 1);
      i = end + 1;
    } else {
      size_t end = v;
      while (end < text.size() && text[end] != ',' && text[end] != '}' && text[end] != '\n') {
        ++end;
      }
      value = text.substr(v, end - v);
      while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) {
        value.pop_back();
      }
      i = end;
    }
    out[key] = value;
  }
  return out;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Interactive pathological latencies (perf_selfcheck 2d): simulated, so
// deterministic, but gated on a growth ceiling — the metric's job is to
// catch the latency mode widening, not to pin every nanosecond.
bool IsInteractiveLatency(const std::string& key) {
  return key.rfind("interactive_", 0) == 0 && EndsWith(key, "_us");
}

bool IsIgnored(const std::string& key) {
  // shard_threads and shard_speedup join the machine facts: both follow the
  // runner's core count (the sharded *rate* is still gated by the generic
  // _per_sec floor, and shard_results_identical by exact match).
  static const char* kIgnored[] = {"hardware_concurrency", "grid_jobs", "grid_serial_sec",
                                   "grid_parallel_sec", "grid_speedup", "shard_threads",
                                   "shard_speedup"};
  for (const char* k : kIgnored) {
    if (key == k) {
      return true;
    }
  }
  return false;
}

// Applies the tolerance policy to one fresh/baseline pair of flat maps.
void GatePerf(const std::map<std::string, std::string>& fresh,
              const std::map<std::string, std::string>& baseline) {
  for (const auto& [key, base_value] : baseline) {
    auto it = fresh.find(key);
    if (it == fresh.end()) {
      Result("FAIL", key, "missing from fresh results");
      continue;
    }
    const std::string& fresh_value = it->second;
    char detail[160];
    if (IsIgnored(key)) {
      std::snprintf(detail, sizeof(detail), "%s (machine-dependent, not gated)",
                    fresh_value.c_str());
      Result("ok", key, detail);
    } else if (EndsWith(key, "_per_sec")) {
      const double fresh_rate = std::strtod(fresh_value.c_str(), nullptr);
      const double base_rate = std::strtod(base_value.c_str(), nullptr);
      const double floor = base_rate * kMinRateRatio;
      std::snprintf(detail, sizeof(detail), "%.0f vs baseline %.0f (floor %.0f)", fresh_rate,
                    base_rate, floor);
      Result(fresh_rate >= floor ? "ok" : "FAIL", key, detail);
    } else if (key == "trace_disabled_overhead_pct") {
      const double pct = std::strtod(fresh_value.c_str(), nullptr);
      std::snprintf(detail, sizeof(detail), "%.2f%% (ceiling %.1f%%)", pct,
                    kMaxTraceOverheadPct);
      Result(pct <= kMaxTraceOverheadPct ? "ok" : "FAIL", key, detail);
    } else if (IsInteractiveLatency(key)) {
      const double fresh_us = std::strtod(fresh_value.c_str(), nullptr);
      const double ceiling = std::strtod(base_value.c_str(), nullptr) *
                             kMaxInteractiveGrowthRatio;
      std::snprintf(detail, sizeof(detail), "%.1f us vs baseline %s (ceiling %.1f)", fresh_us,
                    base_value.c_str(), ceiling);
      Result(fresh_us <= ceiling ? "ok" : "FAIL", key, detail);
    } else {
      std::snprintf(detail, sizeof(detail), "%s vs baseline %s", fresh_value.c_str(),
                    base_value.c_str());
      Result(fresh_value == base_value ? "ok" : "FAIL", key, detail);
    }
  }
  for (const auto& [key, value] : fresh) {
    if (baseline.find(key) == baseline.end()) {
      Result("warn", key, "new metric (no baseline yet): " + value);
    }
  }
}

// Trace metrics gating on a growth ceiling rather than exact equality:
// binary stream density, the streaming arena's high-water mark, and the
// timeline's point budget may creep as event kinds are added, but a >10%
// jump is an encoding, retention, or sampler-thinning regression.
bool IsCeilinged(const std::string& key) {
  return key == "binary_trace_bytes_per_event" || key == "streaming_graph_peak_nodes" ||
         key == "timeseries_points_per_flow";
}

void GateTrace(const std::map<std::string, std::string>& fresh,
               const std::map<std::string, std::string>& baseline) {
  for (const auto& [key, base_value] : baseline) {
    auto it = fresh.find(key);
    if (it == fresh.end()) {
      Result("FAIL", key, "missing from fresh trace metrics");
      continue;
    }
    if (key == "timeseries_overhead_pct") {
      // Wall-clock, so never exact: the hooks with no recording sampler
      // must stay under the same absolute ceiling as the detached-tracer
      // hooks.
      const double pct = std::strtod(it->second.c_str(), nullptr);
      char detail[160];
      std::snprintf(detail, sizeof(detail), "%.2f%% (ceiling %.1f%%)", pct,
                    kMaxTraceOverheadPct);
      Result(pct <= kMaxTraceOverheadPct ? "ok" : "FAIL", key, detail);
      continue;
    }
    if (IsCeilinged(key)) {
      const double fresh_value = std::strtod(it->second.c_str(), nullptr);
      const double ceiling = std::strtod(base_value.c_str(), nullptr) * kMaxTraceGrowthRatio;
      char detail[160];
      std::snprintf(detail, sizeof(detail), "%s vs baseline %s (ceiling %.3f)",
                    it->second.c_str(), base_value.c_str(), ceiling);
      Result(fresh_value <= ceiling ? "ok" : "FAIL", key, detail);
      continue;
    }
    Result(it->second == base_value ? "ok" : "FAIL", key,
           it->second + " vs baseline " + base_value);
  }
  for (const auto& [key, value] : fresh) {
    if (baseline.find(key) == baseline.end()) {
      Result("warn", key, "new metric (no baseline yet): " + value);
    }
  }
}

// Congestion goodput-grid metrics (bench/congestion): everything is
// simulated and deterministic, but the goodput/efficiency/fairness numbers
// may legitimately drift as the protocol stack evolves — the gate's job is
// to stop them *collapsing*, so they gate on a 0.90x floor of baseline
// (improvement always passes). Counters and the acceptance booleans
// (sack_epd_beats_reno_tail, gap_shrinks_with_buffer, all_flows_completed)
// stay exact.
bool IsCongestionFloored(const std::string& key) {
  return EndsWith(key, "_goodput_mbps") || EndsWith(key, "_efficiency") ||
         EndsWith(key, "_fairness");
}

void GateCongestion(const std::map<std::string, std::string>& fresh,
                    const std::map<std::string, std::string>& baseline) {
  for (const auto& [key, base_value] : baseline) {
    auto it = fresh.find(key);
    if (it == fresh.end()) {
      Result("FAIL", key, "missing from fresh congestion results");
      continue;
    }
    if (IsCongestionFloored(key)) {
      const double fresh_value = std::strtod(it->second.c_str(), nullptr);
      const double floor = std::strtod(base_value.c_str(), nullptr) * kMinCongestionRatio;
      char detail[160];
      std::snprintf(detail, sizeof(detail), "%s vs baseline %s (floor %.3f)",
                    it->second.c_str(), base_value.c_str(), floor);
      Result(fresh_value >= floor ? "ok" : "FAIL", key, detail);
      continue;
    }
    Result(it->second == base_value ? "ok" : "FAIL", key,
           it->second + " vs baseline " + base_value);
  }
  for (const auto& [key, value] : fresh) {
    if (baseline.find(key) == baseline.end()) {
      Result("warn", key, "new metric (no baseline yet): " + value);
    }
  }
}

// Pure-logic verification: the gate must pass on identical data and fail on
// a perturbed baseline, with no files involved.
int SelfTest() {
  std::map<std::string, std::string> perf = {
      {"quick", "true"},
      {"hardware_concurrency", "8"},
      {"rpc_round_trips_per_sec", "100000"},
      {"capacity_sharded_sim_events_per_sec", "2000000"},
      {"shard_count", "4"},
      {"shard_threads", "8"},
      {"shard_speedup", "2.400"},
      {"shard_results_identical", "true"},
      {"trace_disabled_overhead_pct", "1.50"},
      {"grid_results_identical", "true"},
      {"interactive_delack_p50_us", "202160.9"},
      {"interactive_nodelay_p99_us", "1938.2"},
  };
  const std::map<std::string, std::string> trace = {
      {"trace_bytes", "12345"},
      {"trace_events", "678"},
      {"trace_fnv64", "00deadbeef00cafe"},
      {"binary_trace_bytes_per_event", "12.790"},
      {"binary_roundtrip_identical", "true"},
      {"binary_jobs_identical", "true"},
      {"streaming_matches_batch", "true"},
      {"streaming_graph_peak_nodes", "20"},
      {"trace_sampled_flows", "20"},
      {"sampled_blame_within_tolerance", "true"},
      {"spill_roundtrip_identical", "true"},
      {"reservoir_deterministic", "true"},
      {"timeseries_overhead_pct", "1.20"},
      {"timeseries_points_per_flow", "113.0"},
  };

  const std::map<std::string, std::string> congestion = {
      {"quick", "true"},
      {"flows", "8"},
      {"congestion_sack_epd_256_goodput_mbps", "3.670"},
      {"congestion_sack_epd_256_efficiency", "0.9440"},
      {"congestion_sack_epd_256_fairness", "1.0000"},
      {"congestion_sack_epd_256_retransmits", "56"},
      {"congestion_sack_epd_256_timeouts", "0"},
      {"congestion_sack_epd_beats_reno_tail", "true"},
      {"congestion_gap_shrinks_with_buffer", "true"},
      {"congestion_all_flows_completed", "true"},
  };

  std::printf("selftest: identical data must pass\n");
  GatePerf(perf, perf);
  GateTrace(trace, trace);
  GateCongestion(congestion, congestion);
  if (g_failures != 0) {
    std::printf("selftest FAILED: clean comparison reported %d failure(s)\n", g_failures);
    return 1;
  }

  std::printf("selftest: perturbed data must fail\n");
  int expected = 0;

  std::map<std::string, std::string> slow = perf;
  slow["rpc_round_trips_per_sec"] = "100";  // 1000x collapse, below the ratio floor
  g_failures = 0;
  GatePerf(slow, perf);
  expected += g_failures == 1 ? 0 : 1;

  std::map<std::string, std::string> diverged = perf;
  diverged["grid_results_identical"] = "false";
  g_failures = 0;
  GatePerf(diverged, perf);
  expected += g_failures == 1 ? 0 : 1;

  // A sharded-rate collapse past the floor must fail...
  std::map<std::string, std::string> shard_slow = perf;
  shard_slow["capacity_sharded_sim_events_per_sec"] = "1000";
  g_failures = 0;
  GatePerf(shard_slow, perf);
  expected += g_failures == 1 ? 0 : 1;

  // ...thread-count divergence in sharded results must fail...
  std::map<std::string, std::string> shard_diverged = perf;
  shard_diverged["shard_results_identical"] = "false";
  g_failures = 0;
  GatePerf(shard_diverged, perf);
  expected += g_failures == 1 ? 0 : 1;

  // ...but a different speedup on different hardware must not.
  std::map<std::string, std::string> shard_other = perf;
  shard_other["shard_threads"] = "1";
  shard_other["shard_speedup"] = "0.900";
  g_failures = 0;
  GatePerf(shard_other, perf);
  expected += g_failures == 0 ? 0 : 1;

  std::map<std::string, std::string> heavy = perf;
  heavy["trace_disabled_overhead_pct"] = "25.00";
  g_failures = 0;
  GatePerf(heavy, perf);
  expected += g_failures == 1 ? 0 : 1;

  // Interactive latency ceilings: drift within 10% (or any improvement)
  // passes...
  std::map<std::string, std::string> interactive_drift = perf;
  interactive_drift["interactive_delack_p50_us"] = "210000.0";  // +3.9%
  interactive_drift["interactive_nodelay_p99_us"] = "900.0";    // faster
  g_failures = 0;
  GatePerf(interactive_drift, perf);
  expected += g_failures == 0 ? 0 : 1;

  // ...but a widened pathology (the mode re-arming in a "fixed" cell, or
  // the timer cliff growing) trips the ceiling.
  std::map<std::string, std::string> interactive_worse = perf;
  interactive_worse["interactive_delack_p50_us"] = "402000.0";  // 2x the mode
  interactive_worse["interactive_nodelay_p99_us"] = "202000.0";  // mode re-armed
  g_failures = 0;
  GatePerf(interactive_worse, perf);
  expected += g_failures == 2 ? 0 : 1;

  std::map<std::string, std::string> drifted = trace;
  drifted["trace_fnv64"] = "0123456789abcdef";
  g_failures = 0;
  GateTrace(drifted, trace);
  expected += g_failures == 1 ? 0 : 1;

  // Ceiling metrics: growth within 10% of baseline passes...
  std::map<std::string, std::string> creep = trace;
  creep["binary_trace_bytes_per_event"] = "13.900";
  creep["streaming_graph_peak_nodes"] = "21";
  g_failures = 0;
  GateTrace(creep, trace);
  expected += g_failures == 0 ? 0 : 1;

  // ...growth past it is an encoding/retention regression...
  std::map<std::string, std::string> bloated = trace;
  bloated["binary_trace_bytes_per_event"] = "15.100";
  bloated["streaming_graph_peak_nodes"] = "40";
  g_failures = 0;
  GateTrace(bloated, trace);
  expected += g_failures == 2 ? 0 : 1;

  // ...and a lost pipeline property fails exactly.
  std::map<std::string, std::string> broken = trace;
  broken["binary_jobs_identical"] = "false";
  broken["trace_sampled_flows"] = "3";
  g_failures = 0;
  GateTrace(broken, trace);
  expected += g_failures == 2 ? 0 : 1;

  // Timeseries: wall-clock overhead drift under the absolute ceiling
  // passes, and the deterministic point budget may shrink freely...
  std::map<std::string, std::string> ts_drift = trace;
  ts_drift["timeseries_overhead_pct"] = "7.80";
  ts_drift["timeseries_points_per_flow"] = "90.0";
  g_failures = 0;
  GateTrace(ts_drift, trace);
  expected += g_failures == 0 ? 0 : 1;

  // ...but hooks past the ceiling, a bloated point budget, or a lost spill
  // or reservoir property all fail.
  std::map<std::string, std::string> ts_broken = trace;
  ts_broken["timeseries_overhead_pct"] = "25.00";
  ts_broken["timeseries_points_per_flow"] = "140.0";
  ts_broken["spill_roundtrip_identical"] = "false";
  ts_broken["reservoir_deterministic"] = "false";
  g_failures = 0;
  GateTrace(ts_broken, trace);
  expected += g_failures == 4 ? 0 : 1;

  // Congestion floors: goodput/efficiency/fairness within 10% of baseline
  // (or better) pass...
  std::map<std::string, std::string> cong_drift = congestion;
  cong_drift["congestion_sack_epd_256_goodput_mbps"] = "3.400";  // -7.4%
  cong_drift["congestion_sack_epd_256_efficiency"] = "0.9600";   // better
  g_failures = 0;
  GateCongestion(cong_drift, congestion);
  expected += g_failures == 0 ? 0 : 1;

  // ...a goodput collapse past the floor fails...
  std::map<std::string, std::string> cong_collapse = congestion;
  cong_collapse["congestion_sack_epd_256_goodput_mbps"] = "1.800";
  cong_collapse["congestion_sack_epd_256_fairness"] = "0.5000";
  g_failures = 0;
  GateCongestion(cong_collapse, congestion);
  expected += g_failures == 2 ? 0 : 1;

  // ...and a lost ordering or determinism boolean fails exactly, as does a
  // drifted deterministic counter.
  std::map<std::string, std::string> cong_broken = congestion;
  cong_broken["congestion_sack_epd_beats_reno_tail"] = "false";
  cong_broken["congestion_sack_epd_256_timeouts"] = "12";
  g_failures = 0;
  GateCongestion(cong_broken, congestion);
  expected += g_failures == 2 ? 0 : 1;

  // A hardware difference alone must NOT fail.
  std::map<std::string, std::string> other_machine = perf;
  other_machine["hardware_concurrency"] = "128";
  other_machine["rpc_round_trips_per_sec"] = "20000";  // 5x slower: within ratio
  g_failures = 0;
  GatePerf(other_machine, perf);
  expected += g_failures == 0 ? 0 : 1;

  if (expected != 0) {
    std::printf("selftest FAILED: %d scenario(s) did not gate as expected\n", expected);
    return 1;
  }
  std::printf("selftest passed\n");
  return 0;
}

int Run(const BenchFlags& flags) {
  if (flags.selftest) {
    return SelfTest();
  }
  if (flags.perf_path.empty() || flags.trace_path.empty()) {
    std::fprintf(stderr, "regression_gate: --perf and --trace are required (or --selftest)\n");
    return 2;
  }
  const std::string dir = flags.baseline_dir.empty() ? "bench/baselines" : flags.baseline_dir;
  const std::string perf_baseline_path = dir + "/BENCH_perf.json";
  const std::string trace_baseline_path = dir + "/BENCH_trace.json";
  const std::string congestion_baseline_path = dir + "/BENCH_congestion.json";

  std::string fresh_perf_text;
  std::string fresh_trace_text;
  std::string fresh_congestion_text;
  if (!ReadFile(flags.perf_path, &fresh_perf_text) ||
      !ReadFile(flags.trace_path, &fresh_trace_text)) {
    return 2;
  }
  // The congestion grid file is optional so pre-existing two-file
  // invocations keep working; CI passes all three.
  if (!flags.congestion_path.empty() &&
      !ReadFile(flags.congestion_path, &fresh_congestion_text)) {
    return 2;
  }
  const std::map<std::string, std::string> fresh_perf = ParseFlatJson(fresh_perf_text);
  const std::map<std::string, std::string> fresh_trace = ParseFlatJson(fresh_trace_text);

  if (flags.write_baseline) {
    if (!WriteTextFile(perf_baseline_path, fresh_perf_text) ||
        !WriteTextFile(trace_baseline_path, fresh_trace_text)) {
      return 2;
    }
    if (!flags.congestion_path.empty() &&
        !WriteTextFile(congestion_baseline_path, fresh_congestion_text)) {
      return 2;
    }
    std::printf("wrote %s and %s\n", perf_baseline_path.c_str(), trace_baseline_path.c_str());
    return 0;
  }

  std::string perf_baseline_text;
  std::string trace_baseline_text;
  if (!ReadFile(perf_baseline_path, &perf_baseline_text) ||
      !ReadFile(trace_baseline_path, &trace_baseline_text)) {
    std::fprintf(stderr, "regression_gate: no baselines in %s (run --write-baseline first)\n",
                 dir.c_str());
    return 2;
  }

  std::printf("perf metrics (%s vs %s):\n", flags.perf_path.c_str(), perf_baseline_path.c_str());
  GatePerf(fresh_perf, ParseFlatJson(perf_baseline_text));
  std::printf("trace metrics (%s vs %s):\n", flags.trace_path.c_str(),
              trace_baseline_path.c_str());
  GateTrace(fresh_trace, ParseFlatJson(trace_baseline_text));

  if (!flags.congestion_path.empty()) {
    std::string congestion_baseline_text;
    if (!ReadFile(congestion_baseline_path, &congestion_baseline_text)) {
      std::fprintf(stderr,
                   "regression_gate: no congestion baseline in %s (run --write-baseline)\n",
                   dir.c_str());
      return 2;
    }
    std::printf("congestion metrics (%s vs %s):\n", flags.congestion_path.c_str(),
                congestion_baseline_path.c_str());
    GateCongestion(ParseFlatJson(fresh_congestion_text),
                   ParseFlatJson(congestion_baseline_text));
  }

  std::printf("%d failure(s), %d warning(s)\n", g_failures, g_warnings);
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tcplat

int main(int argc, char** argv) {
  tcplat::BenchFlags flags;
  if (!tcplat::ParseBenchFlags(argc, argv, &flags,
                               "[--quick] [--perf PATH] [--trace PATH] [--congestion PATH] "
                               "[--baseline-dir DIR] [--write-baseline] [--selftest]")) {
    return 2;
  }
  return tcplat::Run(flags);
}
