# Empty compiler generated dependencies file for pcb_test.
# This may be replaced when dependencies are built.
