#include "src/tcp/congestion.h"

#include <algorithm>

namespace tcplat {

namespace {
// The seed's hard window ceiling (no window scaling).
constexpr uint32_t kMaxWindow = 65535;
}  // namespace

const char* CongestionVariantName(CongestionVariant v) {
  switch (v) {
    case CongestionVariant::kLegacy:
      return "legacy";
    case CongestionVariant::kReno:
      return "reno";
    case CongestionVariant::kNewReno:
      return "newreno";
    case CongestionVariant::kSack:
      return "sack";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// SackScoreboard
// ---------------------------------------------------------------------------

void SackScoreboard::Reset() { blocks_.clear(); }

void SackScoreboard::Add(uint32_t una, uint32_t start, uint32_t end) {
  if (SeqGeq(start, end)) {
    return;  // empty or inverted block
  }
  if (SeqLeq(end, una)) {
    return;  // entirely below the cumulative ACK point
  }
  start = SeqMax(start, una);
  // Merge with any overlapping or adjacent blocks, keeping the list sorted
  // and disjoint. Linear scan: the receiver reports at most 3 blocks and the
  // scoreboard stays small (one entry per hole in flight).
  std::vector<TcpSackBlock> merged;
  merged.reserve(blocks_.size() + 1);
  bool inserted = false;
  for (const TcpSackBlock& b : blocks_) {
    if (SeqLt(b.end, start) || (b.end == start && SeqLt(b.start, start))) {
      if (b.end == start) {
        start = b.start;  // adjacent below: absorb
        continue;
      }
      merged.push_back(b);
    } else if (SeqGt(b.start, end) || (b.start == end && SeqGt(b.end, end))) {
      if (b.start == end) {
        end = b.end;  // adjacent above: absorb
        continue;
      }
      if (!inserted) {
        merged.push_back({start, end});
        inserted = true;
      }
      merged.push_back(b);
    } else {
      // Overlap: widen the incoming block.
      start = SeqMin(start, b.start);
      end = SeqMax(end, b.end);
    }
  }
  if (!inserted) {
    merged.push_back({start, end});
  }
  std::sort(merged.begin(), merged.end(),
            [](const TcpSackBlock& a, const TcpSackBlock& b) { return SeqLt(a.start, b.start); });
  blocks_ = std::move(merged);
}

void SackScoreboard::AdvanceTo(uint32_t una) {
  std::vector<TcpSackBlock> kept;
  kept.reserve(blocks_.size());
  for (TcpSackBlock& b : blocks_) {
    if (SeqLeq(b.end, una)) {
      continue;
    }
    b.start = SeqMax(b.start, una);
    kept.push_back(b);
  }
  blocks_ = std::move(kept);
}

bool SackScoreboard::Covers(uint32_t seq) const {
  for (const TcpSackBlock& b : blocks_) {
    if (SeqGeq(seq, b.start) && SeqLt(seq, b.end)) {
      return true;
    }
  }
  return false;
}

uint32_t SackScoreboard::NextHole(uint32_t from, uint32_t limit) const {
  uint32_t seq = from;
  while (SeqLt(seq, limit)) {
    bool covered = false;
    for (const TcpSackBlock& b : blocks_) {
      if (SeqGeq(seq, b.start) && SeqLt(seq, b.end)) {
        seq = b.end;  // jump past the sacked block
        covered = true;
        break;
      }
    }
    if (!covered) {
      return seq;
    }
  }
  return limit;
}

uint64_t SackScoreboard::sacked_bytes() const {
  uint64_t total = 0;
  for (const TcpSackBlock& b : blocks_) {
    total += b.end - b.start;
  }
  return total;
}

// ---------------------------------------------------------------------------
// CongestionControl
// ---------------------------------------------------------------------------

void CongestionControl::Reset(CongestionVariant variant, uint32_t maxseg) {
  variant_ = variant;
  maxseg_ = maxseg;
  cwnd_ = maxseg;
  ssthresh_ = kMaxWindow;
  dup_acks_ = 0;
  in_recovery_ = false;
  recover_ = 0;
  sack_rexmt_next_ = 0;
  pipe_ = 0;
  scoreboard_.Reset();
}

void CongestionControl::SetMss(uint32_t maxseg) {
  maxseg_ = maxseg;
  cwnd_ = maxseg;  // seed behavior: cwnd re-seeded when the SYN fixes the MSS
}

uint32_t CongestionControl::HalvedPipe(uint32_t snd_wnd) const {
  // The 4.3BSD formula the seed used: half the effective window, floored at
  // two segments.
  return std::max<uint32_t>(2 * maxseg_, std::min(snd_wnd, cwnd_) / 2);
}

void CongestionControl::Grow() {
  if (cwnd_ < ssthresh_) {
    cwnd_ += maxseg_;  // slow start: one MSS per ACK
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += std::max<uint32_t>(1, maxseg_ * maxseg_ / std::max<uint32_t>(cwnd_, 1));
  }
  cwnd_ = std::min(cwnd_, kMaxWindow);
}

CongestionControl::LossAction CongestionControl::OnDupAck(uint32_t snd_una, uint32_t snd_max,
                                                          uint32_t snd_wnd) {
  LossAction action;
  if (variant_ == CongestionVariant::kLegacy) {
    // Seed behavior, preserved exactly: deflate to ssthresh and rewind. No
    // recovery state is kept, so a burst of losses costs a timeout.
    if (++dup_acks_ == 3) {
      ssthresh_ = HalvedPipe(snd_wnd);
      cwnd_ = ssthresh_;
      action.fast_retransmit = true;
      action.rexmt_seq = snd_una;
      action.cwnd_changed = true;
    }
    return action;
  }

  if (in_recovery_) {
    if (variant_ == CongestionVariant::kSack) {
      // RFC 6675 pipe gating: each duplicate ACK proves one more segment
      // left the network, but a repair only goes out once the pipe estimate
      // has drained below cwnd. Without this the repairs burst out in the
      // same RTT the loss was detected — straight into the still-full
      // bottleneck buffer — and get discarded again. Only holes *below* the
      // highest sacked block are provably lost (RFC 3517); everything above
      // may simply still be in flight.
      pipe_ = pipe_ > maxseg_ ? pipe_ - maxseg_ : 0;
      if (!scoreboard_.empty() && pipe_ + maxseg_ <= cwnd_) {
        const uint32_t limit = SeqMin(scoreboard_.highest_end(), snd_max);
        const uint32_t hole = scoreboard_.NextHole(sack_rexmt_next_, limit);
        if (SeqLt(hole, limit)) {
          action.fast_retransmit = true;
          action.rexmt_seq = hole;
          sack_rexmt_next_ = hole + maxseg_;
          pipe_ += maxseg_;
        }
      }
      return action;
    }
    // Reno/NewReno: inflate so new data can be clocked out (RFC 5681
    // step 4) — each duplicate ACK licenses one segment.
    cwnd_ = std::min(cwnd_ + maxseg_, kMaxWindow + 3 * maxseg_);
    action.send_more = true;
    return action;
  }

  if (++dup_acks_ == 3) {
    in_recovery_ = true;
    recover_ = snd_max;
    ssthresh_ = HalvedPipe(snd_wnd);
    // Fast recovery: ssthresh plus the three segments the dup ACKs buffered.
    cwnd_ = ssthresh_ + 3 * maxseg_;
    action.fast_retransmit = true;
    action.rexmt_seq = snd_una;
    action.cwnd_changed = true;
    if (variant_ == CongestionVariant::kSack) {
      // RFC 6675: cwnd collapses to ssthresh (no +3 inflation) and the pipe
      // estimate gates every transmission for the rest of the recovery. The
      // three duplicate ACKs already proved three departures, and the
      // immediate fast retransmit puts one segment back.
      cwnd_ = ssthresh_;
      const uint32_t flight = snd_max - snd_una;
      pipe_ = flight > 3 * maxseg_ ? flight - 3 * maxseg_ : 0;
      pipe_ += maxseg_;
      // snd_una is the first hole by definition; the walk resumes above it.
      sack_rexmt_next_ = action.rexmt_seq + maxseg_;
    }
  }
  return action;
}

CongestionControl::AckAction CongestionControl::OnNewAck(uint32_t old_una, uint32_t ack,
                                                         uint32_t snd_max, uint32_t snd_wnd) {
  (void)old_una;
  (void)snd_wnd;
  AckAction action;
  scoreboard_.AdvanceTo(ack);

  if (variant_ == CongestionVariant::kLegacy) {
    dup_acks_ = 0;
    Grow();
    return action;
  }

  if (in_recovery_) {
    if (SeqLt(ack, recover_) && variant_ != CongestionVariant::kReno) {
      // Partial ACK (RFC 6582): the retransmission was received but another
      // hole remains. Retransmit it now and stay in recovery. Plain Reno
      // has no partial-ACK logic and must wait for timeouts instead.
      uint32_t hole = ack;
      if (variant_ == CongestionVariant::kSack && !scoreboard_.empty()) {
        const uint32_t limit = SeqMin(scoreboard_.highest_end(), snd_max);
        hole = scoreboard_.NextHole(ack, limit);
        if (SeqGeq(hole, limit)) {
          hole = ack;  // everything below the board is sacked: repair at ack
        }
        // The walk never moves backward inside one recovery: a partial ACK
        // below holes already repaired must not make the dup-ACK walk
        // re-retransmit them.
        sack_rexmt_next_ = SeqMax(sack_rexmt_next_, hole + maxseg_);
      }
      action.partial_retransmit = true;
      action.rexmt_seq = hole;
      const uint32_t acked = ack - old_una;
      if (variant_ == CongestionVariant::kSack) {
        // cwnd stays at ssthresh; the acked bytes leave the pipe estimate
        // and the repair puts one segment back (RFC 6675 section 5).
        pipe_ = pipe_ > acked ? pipe_ - acked : 0;
        pipe_ += maxseg_;
      } else {
        // Deflate by the amount acked; re-inflate one MSS so the retransmit
        // itself fits (RFC 6582 section 3.2 step 3).
        cwnd_ = (cwnd_ > acked) ? cwnd_ - acked : 0;
        cwnd_ = std::max(cwnd_ + maxseg_, maxseg_);
        action.cwnd_changed = true;
      }
      return action;
    }
    if (SeqLt(ack, recover_)) {
      // Reno partial ACK: leave recovery anyway (classic Reno deflates on
      // the first new ACK), taking the goodput hit NewReno repairs.
      in_recovery_ = false;
      dup_acks_ = 0;
      cwnd_ = ssthresh_;
      action.exited_recovery = true;
      action.cwnd_changed = true;
      return action;
    }
    // Full ACK: recovery complete, deflate to ssthresh.
    in_recovery_ = false;
    dup_acks_ = 0;
    pipe_ = 0;
    cwnd_ = std::min(ssthresh_, kMaxWindow);
    action.exited_recovery = true;
    action.cwnd_changed = true;
    return action;
  }

  dup_acks_ = 0;
  Grow();
  return action;
}

void CongestionControl::OnTimeout(uint32_t snd_wnd) {
  ssthresh_ = HalvedPipe(snd_wnd);
  cwnd_ = maxseg_;
  if (variant_ != CongestionVariant::kLegacy) {
    // The seed left the dup-ACK counter alone across timeouts; keep that
    // quirk for kLegacy so its packet timing stays bit-identical.
    dup_acks_ = 0;
    in_recovery_ = false;
    recover_ = 0;
    sack_rexmt_next_ = 0;
    pipe_ = 0;
    scoreboard_.Reset();
  }
}

}  // namespace tcplat
