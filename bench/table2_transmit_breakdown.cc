// Regenerates Table 2: breakdown of BSD 4.4 alpha transmit-side latency over
// ATM (User / TCP{checksum,mcopy,segment} / IP / ATM), per transfer size.

#include <cstdio>
#include <vector>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"

namespace tcplat {
namespace {

void Run() {
  std::printf("Table 2: Breakdown of Transmit Side Latency (us per transfer)\n\n");

  struct Row {
    const char* label;
    SpanId span;
    const std::array<double, 8>* paper;
  };
  const std::vector<Row> rows = {
      {"User", SpanId::kTxUser, &paper::kTable2User},
      {"TCP checksum", SpanId::kTxTcpChecksum, &paper::kTable2Checksum},
      {"TCP mcopy", SpanId::kTxTcpMcopy, &paper::kTable2Mcopy},
      {"TCP segment", SpanId::kTxTcpSegment, &paper::kTable2Segment},
      {"IP", SpanId::kTxIp, &paper::kTable2Ip},
      {"ATM", SpanId::kTxDriver, &paper::kTable2Atm},
  };

  std::vector<std::string> header = {"Layer"};
  for (size_t size : paper::kSizes) {
    header.push_back(std::to_string(size));
  }
  TextTable t(header);

  std::array<RpcResult, 8> results;
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    TestbedConfig cfg;
    Testbed tb(cfg);
    RpcOptions opt;
    opt.size = paper::kSizes[i];
    results[i] = RunRpcBenchmark(tb, opt);
  }

  std::array<double, 8> totals{};
  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.label};
    std::vector<std::string> ref = {std::string("  (paper ") + row.label + ")"};
    for (size_t i = 0; i < paper::kSizes.size(); ++i) {
      const double us = results[i].SpanMean(row.span).micros();
      totals[i] += us;
      cells.push_back(TextTable::Us(us, 1));
      ref.push_back(TextTable::Us((*row.paper)[i], 1));
    }
    t.AddRow(cells);
    t.AddRow(ref);
  }
  std::vector<std::string> total_row = {"Total"};
  std::vector<std::string> total_ref = {"  (paper Total)"};
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    total_row.push_back(TextTable::Us(totals[i], 1));
    total_ref.push_back(TextTable::Us(paper::kTable2Total[i], 1));
  }
  t.AddRow(total_row);
  t.AddRow(total_ref);
  t.Print();
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
