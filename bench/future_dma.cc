// The paper's endgame (§2.2.3, §4.2): "Eliminating the checksum ... opens
// the possibility of eliminating these data copying costs given a network
// adapter that supports DMA", allowing "data to be moved at near bus
// bandwidth speeds to the application layer". This bench walks that path:
// the 1994 baseline, checksum elimination alone, a hypothetical DMA adapter
// alone, and both together — per size, with the remaining latency floor.

#include <cstdio>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"

namespace tcplat {
namespace {

double MeasureRtt(bool dma, ChecksumMode mode, size_t size) {
  TestbedConfig cfg;
  cfg.tcp.checksum = mode;
  Testbed tb(cfg);
  tb.client_atm()->set_dma(dma);
  tb.server_atm()->set_dma(dma);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = 150;
  return RunRpcBenchmark(tb, opt).MeanRtt().micros();
}

void Run() {
  std::printf("Future-work endpoint: DMA adapter + checksum elimination (RTT, us)\n\n");
  TextTable t({"Size", "Baseline (PIO+cksum)", "No cksum", "DMA adapter", "DMA + no cksum",
               "Total saving"});
  for (size_t size : paper::kSizes) {
    const double base = MeasureRtt(false, ChecksumMode::kStandard, size);
    const double nock = MeasureRtt(false, ChecksumMode::kNone, size);
    const double dma = MeasureRtt(true, ChecksumMode::kStandard, size);
    const double both = MeasureRtt(true, ChecksumMode::kNone, size);
    t.AddRow({std::to_string(size), TextTable::Us(base), TextTable::Us(nock),
              TextTable::Us(dma), TextTable::Us(both),
              TextTable::Pct(100.0 * (base - both) / base)});
  }
  t.Print();
  std::printf(
      "\nReadings: the two optimizations attack different copies — the checksum\n"
      "pass and the programmed-I/O device copy — so their savings compose. At\n"
      "8000 bytes the pair removes most data-touching work and the round trip\n"
      "approaches protocol processing + wire time, the paper's 'near bus\n"
      "bandwidth' projection. Neither helps the 4-byte case much: small-\n"
      "message latency was already dominated by per-packet software costs,\n"
      "the other half of the paper's story.\n");
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
