#include "src/trace/causal_graph.h"

#include <deque>
#include <map>
#include <utility>

namespace tcplat {
namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

// Per-host linking state. Sound because each simulated host is a single CPU
// running synchronous call chains to completion: the events of one chain are
// adjacent in the trace, so "the currently open tx/rx chain" is unambiguous.
struct HostState {
  size_t tx_open = kNone;            // journey awaiting its link handoff
  bool retransmit_pending = false;   // kRetransmit seen, kSegTx not yet
  int64_t pending_link_rx = -1;      // kPduRx/kFrameRx ts awaiting kEnqueue
  std::deque<std::pair<int64_t, int64_t>> ipq;  // (link_rx_ns, enqueue_ns)
  int64_t cur_link_rx = -1;          // ipq slot of the chain being processed
  int64_t cur_enqueue = -1;
  int64_t cur_dequeue = -1;
  int64_t cur_ipq_wait = 0;
  size_t rx_open = kNone;            // journey of the current input chain
};

}  // namespace

CausalGraph CausalGraph::Build(const Tracer& tracer) {
  CausalGraph graph;
  std::vector<Journey>& journeys = graph.journeys_;
  std::vector<HostState> hosts(tracer.host_names().size());
  // (ip_key, ip_id) -> tx journeys whose datagram is still in flight.
  std::map<std::pair<uint64_t, uint64_t>, std::deque<size_t>> in_flight;

  for (const TraceEvent& ev : tracer.events()) {
    if (ev.host >= hosts.size()) {
      hosts.resize(ev.host + 1);
    }
    HostState& st = hosts[ev.host];
    switch (ev.kind) {
      case TraceEventKind::kRetransmit:
        st.retransmit_pending = true;
        break;

      case TraceEventKind::kSegTx: {
        Journey j;
        j.tx_host = ev.host;
        j.seg_tx_ns = ev.ts_ns;
        j.seg_flow = ev.flow;
        j.seg_seq = ev.packet;
        j.seg_bytes = ev.bytes;
        j.retransmit = st.retransmit_pending;
        st.retransmit_pending = false;
        journeys.push_back(j);
        st.tx_open = journeys.size() - 1;
        break;
      }

      case TraceEventKind::kPktTx: {
        size_t idx;
        if (st.tx_open != kNone && journeys[st.tx_open].pkt_tx_ns < 0) {
          idx = st.tx_open;
        } else {
          // Segment-less datagram (RST, UDP, ICMP, IP fragment tail).
          Journey j;
          j.tx_host = ev.host;
          journeys.push_back(j);
          idx = journeys.size() - 1;
          st.tx_open = idx;
        }
        journeys[idx].pkt_tx_ns = ev.ts_ns;
        journeys[idx].ip_key = ev.flow;
        journeys[idx].ip_id = ev.packet;
        in_flight[{ev.flow, ev.packet}].push_back(idx);
        break;
      }

      case TraceEventKind::kTxStall:
        if (st.tx_open != kNone) {
          journeys[st.tx_open].tx_stall_ns += ev.dur_ns;
        }
        break;

      case TraceEventKind::kPduTx:
      case TraceEventKind::kFrameTx:
        if (st.tx_open != kNone && journeys[st.tx_open].link_tx_ns < 0) {
          journeys[st.tx_open].link_tx_ns = ev.ts_ns;
          st.tx_open = kNone;
        }
        break;

      case TraceEventKind::kPduRx:
      case TraceEventKind::kFrameRx:
        st.pending_link_rx = ev.ts_ns;
        break;

      case TraceEventKind::kEnqueue:
        if (ev.layer == TraceLayer::kIp) {
          st.ipq.emplace_back(st.pending_link_rx, ev.ts_ns);
          st.pending_link_rx = -1;
        }
        break;

      case TraceEventKind::kDequeue:
        if (ev.layer == TraceLayer::kIp) {
          if (!st.ipq.empty()) {
            st.cur_link_rx = st.ipq.front().first;
            st.cur_enqueue = st.ipq.front().second;
            st.ipq.pop_front();
          } else {
            st.cur_link_rx = st.cur_enqueue = -1;
          }
          st.cur_dequeue = ev.ts_ns;
          st.cur_ipq_wait = ev.dur_ns;
          st.rx_open = kNone;
        }
        break;

      case TraceEventKind::kPktRx: {
        size_t idx = kNone;
        auto it = in_flight.find({ev.flow, ev.packet});
        if (it != in_flight.end() && !it->second.empty()) {
          idx = it->second.front();
          it->second.pop_front();
          if (it->second.empty()) {
            in_flight.erase(it);
          }
        } else {
          // Receive side with no observed transmit (trace started late, or
          // a unit test injected the packet directly).
          Journey j;
          j.ip_key = ev.flow;
          j.ip_id = ev.packet;
          journeys.push_back(j);
          idx = journeys.size() - 1;
        }
        Journey& j = journeys[idx];
        j.rx_host = ev.host;
        j.link_rx_ns = st.cur_link_rx;
        j.enqueue_ns = st.cur_enqueue;
        j.dequeue_ns = st.cur_dequeue;
        j.ipq_wait_ns = st.cur_ipq_wait;
        j.pkt_rx_ns = ev.ts_ns;
        st.rx_open = idx;
        st.cur_link_rx = st.cur_enqueue = -1;
        break;
      }

      case TraceEventKind::kSegRx:
        if (st.rx_open != kNone && journeys[st.rx_open].seg_rx_ns < 0) {
          journeys[st.rx_open].seg_rx_ns = ev.ts_ns;
          journeys[st.rx_open].rx_seg_flow = ev.flow;
        }
        break;

      case TraceEventKind::kWakeup:
        // Socket-layer sorwakeup inside the current input chain; the sched-
        // layer kWakeup (runnable-queue bookkeeping) is not a delivery.
        if (ev.layer == TraceLayer::kSock && st.rx_open != kNone) {
          Journey& j = journeys[st.rx_open];
          if (j.seg_rx_ns >= 0 && j.wakeup_ns < 0 && ev.flow == j.rx_seg_flow) {
            j.wakeup_ns = ev.ts_ns;
          }
        }
        break;

      default:
        break;
    }
  }
  return graph;
}

std::vector<const Journey*> CausalGraph::FlowJourneys(uint64_t canonical_flow) const {
  std::vector<const Journey*> out;
  for (const Journey& j : journeys_) {
    if (j.seg_flow != 0 && CanonicalFlow(j.seg_flow) == canonical_flow) {
      out.push_back(&j);
    }
  }
  return out;
}

size_t CausalGraph::linked_count() const {
  size_t n = 0;
  for (const Journey& j : journeys_) {
    if (j.tx_host >= 0 && j.rx_host >= 0) {
      ++n;
    }
  }
  return n;
}

}  // namespace tcplat
