# Empty compiler generated dependencies file for checksum_tuning.
# This may be replaced when dependencies are built.
