# Empty dependencies file for lat_trace.
# This may be replaced when dependencies are built.
