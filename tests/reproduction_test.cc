// Reproduction invariants: the paper's qualitative claims, asserted as
// tests so regressions in the model or calibration are caught. These are
// the "shape" checks from DESIGN.md §2 — who wins, by roughly what factor,
// where crossovers fall.

#include <gtest/gtest.h>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"

namespace tcplat {
namespace {

RpcResult Measure(const TestbedConfig& cfg, size_t size, int iterations = 60) {
  TestbedConfig c = cfg;
  Testbed tb(c);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = iterations;
  opt.warmup = 16;
  return RunRpcBenchmark(tb, opt);
}

double RttUs(const TestbedConfig& cfg, size_t size) {
  return Measure(cfg, size).MeanRtt().micros();
}

TEST(Reproduction, Table1AtmBeatsEthernetAtEverySize) {
  TestbedConfig atm;
  TestbedConfig ether;
  ether.network = NetworkKind::kEthernet;
  for (size_t size : paper::kSizes) {
    const double a = RttUs(atm, size);
    const double e = RttUs(ether, size);
    EXPECT_LT(a, e) << size;
    // The paper's decrease is 45-56%; require at least 25% everywhere.
    EXPECT_GT((e - a) / e, 0.25) << size;
  }
}

TEST(Reproduction, Table1AbsoluteRttsNearPaper) {
  TestbedConfig atm;
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    const double us = RttUs(atm, paper::kSizes[i]);
    // Within 25% of the published ATM round-trip times.
    EXPECT_NEAR(us, paper::kTable1Atm[i], 0.25 * paper::kTable1Atm[i]) << paper::kSizes[i];
  }
}

TEST(Reproduction, RttMonotoneInSize) {
  TestbedConfig cfg;
  double prev = 0;
  for (size_t size : paper::kSizes) {
    const double us = RttUs(cfg, size);
    EXPECT_GT(us, prev) << size;
    prev = us;
  }
}

TEST(Reproduction, Table2BreakdownNearPaper) {
  TestbedConfig cfg;
  const struct {
    SpanId id;
    const std::array<double, 8>* paper;
    double tolerance;  // relative
  } rows[] = {
      {SpanId::kTxUser, &paper::kTable2User, 0.30},
      {SpanId::kTxTcpChecksum, &paper::kTable2Checksum, 0.20},
      {SpanId::kTxIp, &paper::kTable2Ip, 0.30},
  };
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    if (paper::kSizes[i] == 8000) {
      continue;  // two-segment case: per-row accounting differs (see docs)
    }
    const RpcResult r = Measure(cfg, paper::kSizes[i]);
    for (const auto& row : rows) {
      const double got = r.SpanMean(row.id).micros();
      const double want = (*row.paper)[i];
      EXPECT_NEAR(got, want, row.tolerance * want + 3.0)
          << SpanName(row.id) << " @ " << paper::kSizes[i];
    }
  }
}

TEST(Reproduction, ChecksumDominatesLargeTransfers) {
  // §2.3: "for large transfers, the checksumming and copying data
  // operations dominate the round trip times."
  const RpcResult r = Measure(TestbedConfig{}, 8000);
  const double checksum = r.SpanMean(SpanId::kTxTcpChecksum).micros() +
                          r.SpanMean(SpanId::kRxTcpChecksum).micros();
  const double rtt = r.MeanRtt().micros();
  EXPECT_GT(2 * checksum / rtt, 0.30);
}

TEST(Reproduction, SchedulingVisibleOnlyForSmallTransfers) {
  // §2.2.4: scheduling is ~6.7% of the 4-byte RTT, negligible at 8000.
  const RpcResult small = Measure(TestbedConfig{}, 4);
  const RpcResult large = Measure(TestbedConfig{}, 8000);
  const double small_share = (small.SpanMean(SpanId::kRxIpq).micros() +
                              small.SpanMean(SpanId::kRxWakeup).micros()) /
                             small.MeanRtt().micros();
  const double large_share = (large.SpanMean(SpanId::kRxIpq).micros() +
                              large.SpanMean(SpanId::kRxWakeup).micros()) /
                             large.MeanRtt().micros();
  EXPECT_GT(small_share, 0.04);
  EXPECT_LT(small_share, 0.10);
  EXPECT_LT(large_share, 0.04);
}

TEST(Reproduction, Table4PredictionHelpsMostAt8000) {
  TestbedConfig on;
  TestbedConfig off;
  off.tcp.header_prediction = false;
  double delta_small = 0;
  for (size_t size : {size_t{4}, size_t{200}}) {
    delta_small = std::max(delta_small, RttUs(off, size) - RttUs(on, size));
  }
  const double delta_8000 = RttUs(off, 8000) - RttUs(on, 8000);
  EXPECT_GT(delta_8000, delta_small)
      << "the fast path only fires in the two-packet 8000-byte case";
  // And prediction never hurts.
  for (size_t size : paper::kSizes) {
    EXPECT_LE(RttUs(on, size), RttUs(off, size) + 1.0) << size;
  }
}

TEST(Reproduction, PredictionHitsOnlyAt8000InRpcWorkload) {
  TestbedConfig cfg;
  for (size_t size : {size_t{4}, size_t{500}, size_t{4000}}) {
    const RpcResult r = Measure(cfg, size);
    // The very first request of a connection predicts successfully (the
    // server has never sent data, so the ACK field is trivially old); in
    // steady state the RPC pattern never hits below 8000 bytes.
    EXPECT_LE(r.client_tcp.predict_ack_hits + r.client_tcp.predict_data_hits +
                  r.server_tcp.predict_ack_hits + r.server_tcp.predict_data_hits,
              1u)
        << size;
  }
  const RpcResult r8000 = Measure(cfg, 8000);
  EXPECT_GT(r8000.server_tcp.predict_data_hits, r8000.iterations / 2)
      << "the second packet of the 8000-byte case takes the fast path";
}

TEST(Reproduction, Table6CombinedChecksumCrossover) {
  TestbedConfig std_cfg;
  TestbedConfig comb_cfg;
  comb_cfg.tcp.checksum = ChecksumMode::kCombined;
  // Small transfers regress...
  EXPECT_GT(RttUs(comb_cfg, 4), RttUs(std_cfg, 4) * 1.05);
  // ...large transfers gain ~20-25%...
  const double std8000 = RttUs(std_cfg, 8000);
  const double comb8000 = RttUs(comb_cfg, 8000);
  EXPECT_LT(comb8000, std8000 * 0.85);
  // ...with the break-even between 500 and 1400 bytes (paper §4.1.1).
  EXPECT_LT(RttUs(comb_cfg, 1400), RttUs(std_cfg, 1400));
}

TEST(Reproduction, Table7ChecksumEliminationSavings) {
  TestbedConfig std_cfg;
  TestbedConfig none_cfg;
  none_cfg.tcp.checksum = ChecksumMode::kNone;
  // Negligible at 4 bytes...
  const double s4 = (RttUs(std_cfg, 4) - RttUs(none_cfg, 4)) / RttUs(std_cfg, 4);
  EXPECT_LT(s4, 0.08);
  // ...large at 8000 (the paper reports 41%).
  const double s8000 = (RttUs(std_cfg, 8000) - RttUs(none_cfg, 8000)) / RttUs(std_cfg, 8000);
  EXPECT_GT(s8000, 0.30);
  // Savings grow monotonically with size.
  double prev = -1;
  for (size_t size : paper::kSizes) {
    const double s = (RttUs(std_cfg, size) - RttUs(none_cfg, size)) / RttUs(std_cfg, size);
    EXPECT_GE(s, prev - 0.02) << size;
    prev = s;
  }
}

TEST(Reproduction, EightThousandBytesGoAsTwoSegments) {
  // Stats cover warmup + measured (Measure uses warmup = 16).
  const RpcResult r = Measure(TestbedConfig{}, 8000);
  const double rounds = static_cast<double>(r.iterations + 16);
  EXPECT_NEAR(static_cast<double>(r.client_tcp.data_segs_sent) / rounds, 2.0, 0.1);
  // And 4000 bytes go as one.
  const RpcResult r4 = Measure(TestbedConfig{}, 4000);
  EXPECT_NEAR(static_cast<double>(r4.client_tcp.data_segs_sent) / rounds, 1.0, 0.1);
}

}  // namespace
}  // namespace tcplat
