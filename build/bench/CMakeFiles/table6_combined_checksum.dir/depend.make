# Empty dependencies file for table6_combined_checksum.
# This may be replaced when dependencies are built.
