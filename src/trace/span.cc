#include "src/trace/span.h"

#include "src/base/check.h"
#include "src/trace/tracer.h"

namespace tcplat {

std::string_view SpanName(SpanId id) {
  switch (id) {
    case SpanId::kTxUser:
      return "tx.user";
    case SpanId::kTxTcpChecksum:
      return "tx.tcp.checksum";
    case SpanId::kTxTcpMcopy:
      return "tx.tcp.mcopy";
    case SpanId::kTxTcpSegment:
      return "tx.tcp.segment";
    case SpanId::kTxIp:
      return "tx.ip";
    case SpanId::kTxDriver:
      return "tx.driver";
    case SpanId::kRxDriver:
      return "rx.driver";
    case SpanId::kRxIpq:
      return "rx.ipq";
    case SpanId::kRxIp:
      return "rx.ip";
    case SpanId::kRxTcpChecksum:
      return "rx.tcp.checksum";
    case SpanId::kRxTcpSegment:
      return "rx.tcp.segment";
    case SpanId::kRxWakeup:
      return "rx.wakeup";
    case SpanId::kRxUser:
      return "rx.user";
    case SpanId::kOther:
      return "other";
    case SpanId::kMuted:
      return "muted";
    case SpanId::kCount:
      break;
  }
  return "?";
}

void SpanTracker::AttachTracer(Tracer* tracer, uint8_t host) {
  if (tracer != nullptr) {
    TCPLAT_CHECK(clock_ != nullptr) << "AttachTracer requires set_clock";
  }
  tracer_ = tracer;
  trace_host_ = host;
}

SimTime SpanTracker::TraceNow() const {
  return clock_->running() ? clock_->cursor() : clock_->sim().Now();
}

void SpanTracker::OnCharge(SimDuration amount) {
  if (!enabled_ || depth_ == 0) {
    return;
  }
  const SpanId top = stack_[depth_ - 1];
  if (top == SpanId::kMuted) {
    return;
  }
  totals_[static_cast<size_t>(top)] += amount;
  if (tracer_ != nullptr) {
    scope_self_ns_[depth_ - 1] += amount.nanos();
  }
}

void SpanTracker::Push(SpanId id) {
  if (!enabled_) {
    return;
  }
  TCPLAT_CHECK_LT(depth_, static_cast<int>(stack_.size())) << "span stack overflow";
  stack_[depth_] = id;
  if (tracer_ != nullptr) {
    scope_self_ns_[depth_] = 0;
    tracer_->RecordSpanBegin(trace_host_, id, TraceNow());
  }
  ++depth_;
  ++counts_[static_cast<size_t>(id)];
}

void SpanTracker::Pop(SpanId id) {
  if (!enabled_) {
    return;
  }
  TCPLAT_CHECK_GT(depth_, 0) << "span stack underflow";
  TCPLAT_CHECK(stack_[depth_ - 1] == id) << "unbalanced span pop";
  --depth_;
  if (tracer_ != nullptr) {
    tracer_->RecordSpanEnd(trace_host_, id, TraceNow(),
                           SimDuration::FromNanos(scope_self_ns_[depth_]));
  }
}

void SpanTracker::AddInterval(SpanId id, SimDuration amount) {
  if (!enabled_) {
    return;
  }
  TCPLAT_CHECK_GE(amount.nanos(), 0);
  totals_[static_cast<size_t>(id)] += amount;
  ++counts_[static_cast<size_t>(id)];
  if (tracer_ != nullptr) {
    tracer_->RecordSpanInterval(trace_host_, id, TraceNow(), amount);
  }
}

void SpanTracker::Reset() {
  totals_.fill(SimDuration());
  counts_.fill(0);
  depth_ = 0;
  if (tracer_ != nullptr) {
    tracer_->RecordSpanReset(trace_host_, TraceNow());
  }
}

}  // namespace tcplat
