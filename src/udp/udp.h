// UDP — the datagram substrate of the studies the paper builds on.
//
// §4.2 opens from the observation that "it is already common practice to
// eliminate the UDP checksum for local area NFS traffic", and the paper's
// baseline comparisons (Kay & Pasquale [8][9], the DEC OSF/1 study [3]) are
// UDP/IP measurements on the same DECstation hardware. This module provides
// that substrate: connectionless sockets over the same IP layer, with the
// classic per-socket checksum toggle, so UDP-vs-TCP latency and the
// checksum's cost on a datagram path are measurable (bench/udp_vs_tcp).

#ifndef SRC_UDP_UDP_H_
#define SRC_UDP_UDP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/ip/ip_stack.h"
#include "src/os/host.h"

namespace tcplat {

inline constexpr uint8_t kIpProtoUdp = 17;
inline constexpr size_t kUdpHeaderBytes = 8;

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;    // header + payload
  uint16_t checksum = 0;  // 0 on the wire = "not computed"

  void Serialize(std::span<uint8_t> out) const;
  static std::optional<UdpHeader> Parse(std::span<const uint8_t> in);
};

struct UdpStats {
  uint64_t datagrams_sent = 0;
  uint64_t datagrams_received = 0;
  uint64_t checksum_errors = 0;
  uint64_t no_port = 0;
  uint64_t truncated = 0;
  uint64_t queue_drops = 0;
};

class UdpStack;

// A bound datagram socket. Non-blocking API in the style of the stream
// Socket: RecvFrom returns 0 when empty; block with WaitReadable.
class UdpSocket {
 public:
  uint16_t port() const { return port_; }
  Host& host();

  // Sends one datagram (IP fragments it if it exceeds the MTU). Returns
  // false if the payload cannot fit a UDP datagram at all.
  bool SendTo(std::span<const uint8_t> data, SockAddr dst);

  // Receives one whole datagram (truncating to out.size() like recvfrom).
  // Returns the payload length consumed, 0 when the queue is empty.
  size_t RecvFrom(std::span<uint8_t> out, SockAddr* from = nullptr);

  size_t pending() const { return queue_.size(); }

  // The BSD udpcksum toggle, per socket: when off, datagrams are sent with
  // checksum 0 ("not computed") and inbound checksums are only verified
  // when present.
  void set_checksum_enabled(bool enabled) { checksum_enabled_ = enabled; }
  bool checksum_enabled() const { return checksum_enabled_; }

  auto WaitReadable() {
    return SockAwaiterLite{host_, &chan_, !queue_.empty()};
  }

 private:
  friend class UdpStack;
  struct Datagram {
    std::vector<uint8_t> payload;
    SockAddr from;
  };
  struct SockAwaiterLite {
    Host* host;
    WaitChannel* chan;
    bool ready;
    bool await_ready() const noexcept { return ready; }
    void await_suspend(std::coroutine_handle<> h) {
      BlockAwaiter inner{host, chan};
      inner.await_suspend(h);
    }
    void await_resume() const noexcept {}
  };

  UdpSocket(UdpStack* stack, Host* host, uint16_t port)
      : stack_(stack), host_(host), port_(port) {}

  UdpStack* stack_;
  Host* host_;
  uint16_t port_;
  bool checksum_enabled_ = true;
  std::deque<Datagram> queue_;
  WaitChannel chan_;
  // Bound queue like BSD's sb_max on the UDP receive buffer.
  static constexpr size_t kMaxQueued = 64;
};

class UdpStack : public IpProtocolHandler {
 public:
  explicit UdpStack(IpStack* ip);

  Host& host() { return ip_->host(); }
  IpStack& ip() { return *ip_; }

  // Binds a socket to `port` (0 picks an ephemeral port). The stack owns
  // the socket; the pointer stays valid for the stack's lifetime.
  UdpSocket* CreateSocket(uint16_t port = 0);

  void IpInput(MbufPtr packet, const Ipv4Header& hdr) override;

  const UdpStats& stats() const { return stats_; }

 private:
  friend class UdpSocket;
  void Output(UdpSocket* sock, std::span<const uint8_t> data, SockAddr dst);

  IpStack* ip_;
  std::map<uint16_t, std::unique_ptr<UdpSocket>> ports_;
  uint16_t next_ephemeral_ = 30000;
  UdpStats stats_;
};

}  // namespace tcplat

#endif  // SRC_UDP_UDP_H_
