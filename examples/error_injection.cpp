// End-to-end argument, live — §4.2.1 as a demonstration. Runs the echo
// workload over a deliberately dirty fiber and a buggy network controller,
// and shows which layer catches each class of damage under each checksum
// policy, including the one case where eliminating (or integrating) the TCP
// checksum lets corruption reach the application.
//
//   $ ./error_injection

#include <cstdio>

#include "src/core/table.h"
#include "src/fault/error_experiment.h"

using namespace tcplat;

namespace {

void Report(const char* headline, const ErrorExperimentConfig& cfg) {
  const ErrorExperimentResult r = RunErrorExperiment(cfg);
  std::printf("%s\n", headline);
  std::printf("   injected %llu | AAL CRC caught %llu | TCP checksum caught %llu | "
              "reached app %llu | RTT %.0f us\n\n",
              static_cast<unsigned long long>(r.injected),
              static_cast<unsigned long long>(r.caught_cell_crc + r.caught_sar),
              static_cast<unsigned long long>(r.caught_tcp_checksum),
              static_cast<unsigned long long>(r.app_mismatches), r.mean_rtt_us);
}

}  // namespace

int main() {
  std::printf("The end-to-end argument on a simulated ATM link (1400-byte echoes)\n"
              "==================================================================\n\n");

  ErrorExperimentConfig cfg;
  cfg.size = 1400;
  cfg.iterations = 300;

  std::printf("1) Ordinary fiber noise (random bit flips in cells)\n");
  cfg.source = ErrorSource::kLinkBitFlip;
  cfg.probability = 0.002;
  cfg.checksum = ChecksumMode::kStandard;
  Report("   with the TCP checksum:", cfg);
  cfg.checksum = ChecksumMode::kNone;
  Report("   without it (negotiated off):", cfg);
  std::printf("   => The per-cell CRC-10 catches everything either way; on a clean\n"
              "      local link the TCP checksum adds latency, not protection.\n\n");

  std::printf("2) Pathological errors the CRC cannot see (generator-multiple bursts)\n");
  cfg.source = ErrorSource::kLinkCrcDefeating;
  cfg.probability = 0.002;
  cfg.checksum = ChecksumMode::kStandard;
  Report("   with the TCP checksum:", cfg);
  cfg.checksum = ChecksumMode::kNone;
  Report("   without it:", cfg);
  std::printf("   => Here the TCP checksum is the last line of defense; without it the\n"
              "      corrupted bytes land in the application's buffers. If you turn the\n"
              "      checksum off, something above TCP must check (the paper's\n"
              "      condition for eliminating it).\n\n");

  std::printf("3) A buggy controller corrupting the device-to-host copy\n");
  cfg.source = ErrorSource::kControllerCopy;
  cfg.probability = 0.02;
  cfg.checksum = ChecksumMode::kStandard;
  Report("   standard kernel (checksum after the copy):", cfg);
  cfg.checksum = ChecksumMode::kCombined;
  Report("   combined copy+checksum kernel:", cfg);
  std::printf("   => The integrated loop sums the words it READS, so damage introduced\n"
              "      by the copy itself verifies clean — a subtlety of §4.1.1: fusing\n"
              "      the checksum into the copy silently narrows what it protects.\n");
  return 0;
}
