# Empty compiler generated dependencies file for lat_os.
# This may be replaced when dependencies are built.
