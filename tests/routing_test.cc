// Tests for IP forwarding: a three-host topology (client — gateway —
// server) across two Ethernet segments, exercising route lookup, TTL
// handling, and the §4.2.1 source-(3) argument — errors introduced inside
// a gateway are invisible to every link-level CRC, so traffic that crosses
// a router must keep the TCP checksum ("eliminate ... only for local-area
// traffic").

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/random.h"
#include "src/core/routed_testbed.h"
#include "src/ether/ether_netif.h"
#include "src/os/task.h"
#include "src/tcp/tcp_stack.h"

namespace tcplat {
namespace {

constexpr Ipv4Addr kClientIp = kRoutedClientAddr;
constexpr Ipv4Addr kServerIp = kRoutedServerAddr;
constexpr uint16_t kPort = 5001;

using RoutedNet = RoutedTestbed;

struct EchoResult {
  std::vector<uint8_t> received;
  bool client_done = false;
  bool server_done = false;
  bool client_error = false;
};

SimTask EchoServer(RoutedNet* net, EchoResult* out, size_t bytes) {
  Socket* listener = net->server_tcp().Listen(kPort);
  Socket* s = nullptr;
  while (s == nullptr) {
    s = listener->Accept();
    if (s == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
  std::vector<uint8_t> buf(8192);
  size_t got = 0;
  while (got < bytes) {
    const size_t n = s->Read(buf);
    if (n > 0) {
      size_t sent = 0;
      while (sent < n) {
        const size_t w = s->Write({buf.data() + sent, n - sent});
        sent += w;
        if (w == 0) {
          co_await s->WaitWritable();
        }
      }
      got += n;
    } else {
      if (s->eof() || s->has_error()) {
        break;
      }
      co_await s->WaitReadable();
    }
  }
  out->server_done = got == bytes;
}

SimTask EchoClient(RoutedNet* net, EchoResult* out, std::vector<uint8_t> data) {
  Socket* s = net->client_tcp().Connect(SockAddr{kServerIp, kPort});
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  if (s->has_error()) {
    out->client_error = true;
    out->client_done = true;
    co_return;
  }
  size_t sent = 0;
  while (sent < data.size()) {
    const size_t n = s->Write({data.data() + sent, data.size() - sent});
    sent += n;
    if (n == 0) {
      co_await s->WaitWritable();
    }
  }
  std::vector<uint8_t> buf(8192);
  while (out->received.size() < data.size()) {
    const size_t n = s->Read(buf);
    if (n > 0) {
      out->received.insert(out->received.end(), buf.begin(), buf.begin() + n);
    } else {
      if (s->eof() || s->has_error()) {
        out->client_error = true;
        break;
      }
      co_await s->WaitReadable();
    }
  }
  s->Close();
  out->client_done = true;
}

std::vector<uint8_t> Payload(size_t n, uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<uint8_t> buf(n);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return buf;
}

TEST(Routing, TcpEchoAcrossGateway) {
  RoutedNet net;
  EchoResult result;
  const auto data = Payload(2000);
  net.server_host().Spawn("server", EchoServer(&net, &result, data.size()));
  net.client_host().Spawn("client", EchoClient(&net, &result, data));
  net.sim().RunToCompletion();
  ASSERT_TRUE(result.client_done);
  EXPECT_FALSE(result.client_error);
  EXPECT_EQ(result.received, data);
  EXPECT_GT(net.gateway_ip().stats().forwarded, 4u);
  EXPECT_EQ(net.gateway_ip().stats().no_route, 0u);
}

TEST(Routing, TtlDecrementedByGateway) {
  RoutedNet net;
  // Capture a frame on the right segment and inspect its TTL.
  uint8_t seen_ttl = 0;
  net.right_segment().set_corrupt_hook([&seen_ttl](std::vector<uint8_t>& frame) {
    if (seen_ttl == 0) {
      seen_ttl = frame[kEtherHeaderBytes + 8];
    }
  });
  EchoResult result;
  const auto data = Payload(100);
  net.server_host().Spawn("server", EchoServer(&net, &result, data.size()));
  net.client_host().Spawn("client", EchoClient(&net, &result, data));
  net.sim().RunToCompletion();
  EXPECT_EQ(result.received, data);
  EXPECT_EQ(seen_ttl, 63) << "TCP sends TTL 64; one hop must cost one";
}

TEST(Routing, TtlExpiryDropsAtGateway) {
  RoutedNet net;
  Host& h = net.client_host();
  bool done = false;
  // Hand-build a TTL-1 packet and push it out the client interface.
  h.Spawn("raw", [](RoutedNet* n, bool* flag) -> SimTask {
    MbufPtr m = n->client_host().pool().GetHeader(40);
    std::memset(m->Append(30).data(), 0xEE, 30);
    n->client_ip().Output(std::move(m), kClientIp, kServerIp, 250, /*ttl=*/1);
    *flag = true;
    co_return;
  }(&net, &done));
  net.sim().RunToCompletion();
  ASSERT_TRUE(done);
  EXPECT_EQ(net.gateway_ip().stats().ttl_expired, 1u);
  EXPECT_EQ(net.server_ip().stats().packets_received, 0u);
}

TEST(Routing, GatewayMemoryCorruptionNeedsTheTcpChecksum) {
  // §4.2.1 source (3): damage inside the gateway is re-CRCed by the
  // outbound link, so only an end-to-end check can see it. With the TCP
  // checksum on, the stream survives via retransmission...
  RoutedNet with_cksum;
  auto rng = std::make_shared<Rng>(17);
  int corruptions = 0;
  with_cksum.gateway_ip().set_forward_corrupt_hook(
      [rng, &corruptions](std::vector<uint8_t>& pkt) {
        if (pkt.size() > 60 && rng->NextBool(0.4)) {
          pkt[45] ^= 0x20;  // payload byte, past IP+TCP headers
          ++corruptions;
        }
      });
  EchoResult result;
  const auto data = Payload(16000);
  with_cksum.server_host().Spawn("server", EchoServer(&with_cksum, &result, data.size()));
  with_cksum.client_host().Spawn("client", EchoClient(&with_cksum, &result, data));
  with_cksum.sim().RunToCompletion();
  EXPECT_GT(corruptions, 0);
  EXPECT_EQ(result.received, data) << "TCP checksum + retransmission must mask the gateway";
  EXPECT_GT(with_cksum.client_tcp().stats().checksum_errors +
                with_cksum.server_tcp().stats().checksum_errors,
            0u);

  // ...with it negotiated off, the corruption lands in the application:
  // the paper's rule is precisely that the no-checksum option is for
  // traffic that crosses no IP routers.
  TcpConfig no_cksum;
  no_cksum.checksum = ChecksumMode::kNone;
  RoutedTestbedConfig no_cksum_cfg;
  no_cksum_cfg.tcp = no_cksum;
  RoutedNet without(no_cksum_cfg);
  auto rng2 = std::make_shared<Rng>(17);
  without.gateway_ip().set_forward_corrupt_hook([rng2](std::vector<uint8_t>& pkt) {
    if (pkt.size() > 60 && rng2->NextBool(0.4)) {
      pkt[45] ^= 0x20;
    }
  });
  EchoResult result2;
  without.server_host().Spawn("server", EchoServer(&without, &result2, data.size()));
  without.client_host().Spawn("client", EchoClient(&without, &result2, data));
  without.sim().RunToCompletion();
  ASSERT_TRUE(result2.client_done);
  EXPECT_EQ(result2.received.size(), data.size());
  EXPECT_NE(result2.received, data) << "without the checksum the damage goes through";
}

TEST(Routing, GatewayDropsUnroutableDestinations) {
  RoutedNet net;
  bool done = false;
  net.client_host().Spawn("raw", [](RoutedNet* n, bool* flag) -> SimTask {
    MbufPtr m = n->client_host().pool().GetHeader(40);
    std::memset(m->Append(30).data(), 0xEE, 30);
    // 10.0.9.9 matches no gateway route.
    n->client_ip().Output(std::move(m), kClientIp, MakeAddr(10, 0, 9, 9), 250);
    *flag = true;
    co_return;
  }(&net, &done));
  net.sim().RunToCompletion();
  ASSERT_TRUE(done);
  EXPECT_EQ(net.gateway_ip().stats().no_route, 1u);
}

}  // namespace
}  // namespace tcplat
