#include "src/trace/tracer.h"

#include <algorithm>
#include <cinttypes>
#include <cstddef>
#include <cstdio>
#include <map>
#include <utility>

#include "src/base/check.h"
#include "src/trace/binary_trace.h"
#include "src/trace/causal_graph.h"

namespace tcplat {
namespace {

// Chains buffered past this while awaiting a flow verdict spill their oldest
// events; ordinary syscall/softint chains decide within a few dozen events.
constexpr size_t kMaxDeferredPerHost = 512;

// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation, so flow ids
// that differ in one bit land in independent sample buckets.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Perfetto timestamps are microseconds; emit them as exact fixed-point
// strings (ns resolution) so traces are byte-stable across platforms.
void AppendMicros(std::string* out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
  out->append(buf);
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

// Track (Perfetto tid) layout within each host's process.
constexpr int kTidSpans = 0;      // nested B/E charge-attributed spans
constexpr int kTidIntervals = 1;  // wall-interval spans (X events)
constexpr int kTidPackets = 2;    // packet-lifecycle instants
constexpr int kTidFlowBase = 3;   // per-flow tracks, first-appearance order

// Congestion-era kinds render on their owning flow's track (one tid per
// (host, flow), allocated past the reserved tracks) so a flow's cwnd
// changes, fast retransmits and SACK arrivals line up on one timeline.
bool IsFlowTrackKind(TraceEventKind kind) {
  return kind == TraceEventKind::kCwndChange || kind == TraceEventKind::kFastRetransmit ||
         kind == TraceEventKind::kSackBlock;
}

// Name tables are indexed by enum value, one entry per enumerator, so a new
// layer/kind without a name is a compile error instead of an empty string in
// CSV/Perfetto exports.
constexpr std::array<std::string_view, static_cast<size_t>(TraceLayer::kCount)> kLayerNames = {
    "sock", "tcp", "ip", "atm", "ether", "link", "sched"};

constexpr std::array<std::string_view, static_cast<size_t>(TraceEventKind::kCount)> kKindNames = {
    "span.begin", "span.end", "span.interval", "span.reset",
    "user.write", "user.read", "wakeup",
    "seg.tx", "seg.rx", "retransmit", "ack", "delayed.ack", "listen.overflow",
    "checksum.error", "drop",
    "enqueue", "dequeue", "pkt.tx", "pkt.rx",
    "pdu.tx", "pdu.rx", "cell.drop", "tx.stall", "cell.switch",
    "frame.tx", "frame.rx",
    "impair.drop", "impair.dup", "impair.delay",
    "nagle.hold",
    "cwnd.change", "fast.retransmit", "sack.block"};

template <size_t N>
constexpr bool AllDistinctNonEmpty(const std::array<std::string_view, N>& names) {
  for (size_t i = 0; i < N; ++i) {
    if (names[i].empty()) return false;
    for (size_t j = i + 1; j < N; ++j) {
      if (names[i] == names[j]) return false;
    }
  }
  return true;
}
static_assert(AllDistinctNonEmpty(kLayerNames), "every TraceLayer needs a unique name");
static_assert(AllDistinctNonEmpty(kKindNames), "every TraceEventKind needs a unique name");

// One trace_event object for `ev`, no separators — shared by the full-trace
// and anomaly exporters so both stay byte-stable and format-identical.
// `packet_tid` places instant events (the default case): the shared packets
// track normally, a per-flow track for congestion-era kinds.
void AppendEventJson(std::string* out, const TraceEvent& ev, int packet_tid = kTidPackets) {
  char buf[256];
  const int pid = ev.host;
  switch (ev.kind) {
    case TraceEventKind::kSpanBegin:
      std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":",
                    std::string(SpanName(ev.span)).c_str(), pid, kTidSpans);
      *out += buf;
      AppendMicros(out, ev.ts_ns);
      *out += "}";
      break;
    case TraceEventKind::kSpanEnd:
      std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":",
                    std::string(SpanName(ev.span)).c_str(), pid, kTidSpans);
      *out += buf;
      AppendMicros(out, ev.ts_ns);
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"self_ns\":%" PRId64 "}}", ev.self_ns);
      *out += buf;
      break;
    case TraceEventKind::kSpanInterval:
      std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":",
                    std::string(SpanName(ev.span)).c_str(), pid, kTidIntervals);
      *out += buf;
      AppendMicros(out, ev.ts_ns - ev.dur_ns);
      *out += ",\"dur\":";
      AppendMicros(out, ev.dur_ns);
      *out += "}";
      break;
    case TraceEventKind::kSpanReset:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"span.reset\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                    "\"ts\":",
                    pid, kTidSpans);
      *out += buf;
      AppendMicros(out, ev.ts_ns);
      *out += "}";
      break;
    default:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s.%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":",
                    std::string(TraceLayerName(ev.layer)).c_str(),
                    std::string(TraceEventKindName(ev.kind)).c_str(), pid, packet_tid);
      *out += buf;
      AppendMicros(out, ev.ts_ns);
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"flow\":%" PRIu64 ",\"packet\":%" PRIu64 ",\"bytes\":%" PRIu64
                    ",\"dur_ns\":%" PRId64 "}}",
                    ev.flow, ev.packet, ev.bytes, ev.dur_ns);
      *out += buf;
      break;
  }
}

// Shared process/track-name metadata prologue for both exporters.
void AppendProcessMetadata(std::string* out, const std::vector<std::string>& host_names,
                           bool* first) {
  char buf[256];
  for (size_t pid = 0; pid < host_names.size(); ++pid) {
    if (!*first) *out += ",\n";
    *first = false;
    *out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    *out += std::to_string(pid);
    *out += ",\"args\":{\"name\":\"";
    AppendEscaped(out, host_names[pid]);
    *out += "\"}}";
    static constexpr std::string_view kTrackNames[] = {"spans", "intervals", "packets"};
    for (int tid = 0; tid < 3; ++tid) {
      if (!*first) *out += ",\n";
      *first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%zu,\"tid\":%d,"
                    "\"args\":{\"name\":\"%s\"}}",
                    pid, tid, std::string(kTrackNames[tid]).c_str());
      *out += buf;
    }
  }
}

}  // namespace

std::string_view TraceLayerName(TraceLayer layer) {
  const auto i = static_cast<size_t>(layer);
  return i < kLayerNames.size() ? kLayerNames[i] : "?";
}

std::string_view TraceEventKindName(TraceEventKind kind) {
  const auto i = static_cast<size_t>(kind);
  return i < kKindNames.size() ? kKindNames[i] : "?";
}

Tracer::Tracer() = default;
Tracer::~Tracer() = default;

uint8_t Tracer::RegisterHost(std::string name) {
  TCPLAT_CHECK_LT(host_names_.size(), 255u) << "too many traced hosts";
  host_names_.push_back(std::move(name));
  return static_cast<uint8_t>(host_names_.size() - 1);
}

void Tracer::EnableBinaryRecording() {
  if (binary_ != nullptr) {
    return;
  }
  TCPLAT_CHECK(!flight_enabled_) << "binary recording excludes flight-recorder mode";
  TCPLAT_CHECK(events_.empty()) << "binary recording must be enabled before recording starts";
  binary_ = std::make_unique<BinaryTraceWriter>();
}

const BinaryTraceWriter& Tracer::binary_records() const {
  TCPLAT_CHECK(binary_ != nullptr) << "tracer is not in binary recording mode";
  return *binary_;
}

BinaryTraceWriter* Tracer::mutable_binary_records() {
  TCPLAT_CHECK(binary_ != nullptr) << "tracer is not in binary recording mode";
  return binary_.get();
}

void Tracer::EnableFlowSampling(const FlowSampleConfig& config) {
  TCPLAT_CHECK(!flight_enabled_) << "flow sampling excludes flight-recorder mode";
  TCPLAT_CHECK(events_.empty() && (binary_ == nullptr || binary_->count() == 0))
      << "flow sampling must be enabled before recording starts";
  TCPLAT_CHECK_GE(config.one_in, 1u);
  sampling_ = true;
  sample_ = config;
}

void Tracer::EnableFlowReservoir(uint32_t k, uint64_t seed) {
  TCPLAT_CHECK(!flight_enabled_) << "reservoir sampling excludes flight-recorder mode";
  TCPLAT_CHECK(binary_ == nullptr)
      << "reservoir sampling keeps in-memory events (FinalizeReservoir prunes them)";
  TCPLAT_CHECK(!sampling_) << "reservoir and 1-in-N flow sampling are mutually exclusive";
  TCPLAT_CHECK(events_.empty()) << "reservoir must be enabled before recording starts";
  TCPLAT_CHECK_GE(k, 1u);
  sampling_ = true;  // routes commits through the chain-verdict machinery
  reservoir_k_ = k;
  sample_.one_in = 1;  // KeepFlow decides via the reservoir, not the bucket
  sample_.seed = seed;
}

void Tracer::EnableTimeseries(const TimeseriesConfig& config) {
  timeseries_config_ = config;
  timeseries_ = std::make_unique<TimeseriesSampler>(config);
}

std::vector<TimeseriesPoint> Tracer::SortedTimeseriesPoints() const {
  if (timeseries_ == nullptr) {
    return {};
  }
  std::vector<TimeseriesPoint> points = timeseries_->points();
  SortTimeseriesPoints(&points);
  return points;
}

std::string Tracer::TimelineCsv() const {
  return TimeseriesToCsv(SortedTimeseriesPoints(), host_names_);
}

void Tracer::EnableFlightRecorder(const FlightRecorderConfig& config) {
  TCPLAT_CHECK(binary_ == nullptr) << "flight-recorder mode excludes binary recording";
  TCPLAT_CHECK(!sampling_) << "flight-recorder mode excludes flow sampling";
  TCPLAT_CHECK(events_.empty())
      << "flight-recorder mode must be selected before recording starts";
  flight_enabled_ = true;
  flight_ = config;
}

void Tracer::MergeSampleSets(const Tracer& other) {
  flows_seen_.insert(other.flows_seen_.begin(), other.flows_seen_.end());
  flows_kept_.insert(other.flows_kept_.begin(), other.flows_kept_.end());
  if (reservoir_k_ > 0) {
    // Re-select the bottom-K over the merged population. A shard's local
    // bottom-K is a superset of the global bottom-K restricted to the flows
    // that shard saw (anything globally kept has fewer than K better-ranked
    // flows anywhere, so also locally), so re-selection never needs events
    // a shard already dropped.
    reservoir_.clear();
    for (uint64_t canonical : flows_seen_) {
      reservoir_.insert({Mix64(canonical ^ Mix64(sample_.seed)), canonical});
    }
    while (reservoir_.size() > reservoir_k_) {
      reservoir_.erase(std::prev(reservoir_.end()));
    }
    flows_kept_.clear();
    for (const auto& [rank, canonical] : reservoir_) {
      flows_kept_.insert(canonical);
    }
  }
}

size_t Tracer::ApproxMemoryBytes() const {
  size_t bytes = events_.size() * sizeof(TraceEvent) + deferred_events_ * sizeof(TraceEvent);
  if (binary_ != nullptr) {
    bytes += binary_->SizeBytes();
  }
  if (timeseries_ != nullptr) {
    bytes += timeseries_->ApproxMemoryBytes();
  }
  return bytes;
}

size_t Tracer::peak_memory_bytes() const {
  return std::max(peak_bytes_, ApproxMemoryBytes()) + child_peak_bytes_;
}

void Tracer::NotePeak() { peak_bytes_ = std::max(peak_bytes_, ApproxMemoryBytes()); }

void Tracer::Clear() {
  events_.clear();
  if (binary_ != nullptr) {
    binary_->Clear();
  }
  sample_hosts_.clear();
  deferred_events_ = 0;
  flows_seen_.clear();
  flows_kept_.clear();
  reservoir_.clear();
  if (timeseries_ != nullptr) {
    timeseries_->Clear();
  }
  peak_bytes_ = 0;
  child_peak_bytes_ = 0;
  ring_.clear();
  anomalies_.clear();
  anomalies_seen_ = 0;
  commit_seq_ = 0;
}

void Tracer::Emit(const TraceEvent& ev) {
  if (flight_enabled_) {
    CommitToRing(ev);
  } else if (binary_ != nullptr) {
    binary_->Append(ev);
  } else {
    events_.push_back(ev);
  }
}

bool Tracer::KeepFlow(uint64_t raw_flow) {
  const uint64_t canonical = CanonicalFlow(raw_flow);
  flows_seen_.insert(canonical);
  if (reservoir_k_ > 0) {
    // Bottom-K sketch: a flow is kept while its seeded hash rank is among
    // the K smallest seen so far. Once the reservoir is full, every insert
    // evicts the worst rank; evicted flows' events are pruned at finalize.
    const std::pair<uint64_t, uint64_t> entry = {Mix64(canonical ^ Mix64(sample_.seed)),
                                                 canonical};
    const auto [it, inserted] = reservoir_.insert(entry);
    if (reservoir_.size() > reservoir_k_) {
      const auto worst = std::prev(reservoir_.end());
      flows_kept_.erase(worst->second);
      const bool rejected_self = worst == it;
      reservoir_.erase(worst);
      if (rejected_self) {
        return false;
      }
    }
    flows_kept_.insert(canonical);
    return true;
  }
  const bool keep =
      sample_.one_in <= 1 || Mix64(canonical ^ Mix64(sample_.seed)) % sample_.one_in == 0;
  if (keep) {
    flows_kept_.insert(canonical);
  }
  return keep;
}

void Tracer::FinalizeReservoir() {
  if (reservoir_k_ == 0) {
    return;
  }
  // Evicted flows were captured while they transiently held a reservoir
  // slot; prune their flow-identified events so the surviving capture
  // covers exactly the final bottom-K set. Flow-agnostic causal anchors
  // (queue hand-offs, reassembly, drops) are kept for every packet, same
  // as 1-in-N sampling.
  const auto pruned = [this](const TraceEvent& ev) {
    const bool flow_kind =
        IsFlowTrackKind(ev.kind) || ev.kind == TraceEventKind::kUserWrite ||
        ev.kind == TraceEventKind::kUserRead || ev.kind == TraceEventKind::kSegTx ||
        ev.kind == TraceEventKind::kSegRx || ev.kind == TraceEventKind::kRetransmit ||
        ev.kind == TraceEventKind::kAck || ev.kind == TraceEventKind::kDelayedAck ||
        ev.kind == TraceEventKind::kNagleHold ||
        (ev.kind == TraceEventKind::kWakeup && ev.layer == TraceLayer::kSock);
    if (!flow_kind || ev.flow == 0) {
      return false;
    }
    return flows_kept_.count(CanonicalFlow(ev.flow)) == 0;
  };
  events_.erase(std::remove_if(events_.begin(), events_.end(), pruned), events_.end());
}

void Tracer::ResolveDeferred(size_t host, bool keep) {
  SampleHostState& st = sample_hosts_[host];
  if (st.deferred.empty()) {
    return;
  }
  NotePeak();  // the buffered events are about to drain; record them first
  for (const TraceEvent& deferred : st.deferred) {
    if (keep) {
      Emit(deferred);
    }
  }
  deferred_events_ -= st.deferred.size();
  st.deferred.clear();
}

void Tracer::CommitSlow(const TraceEvent& ev) {
  if (!sampling_) {
    Emit(ev);
    return;
  }

  // Flow sampling. Per-host chain machine: a chain start resets the verdict
  // to undecided and buffering begins; the chain's first flow-identifying
  // event settles keep/drop for the buffered prefix and the rest of the
  // chain. Sound for the same reason the causal graph is: a host's CPU runs
  // each activation chain to completion, so buffered events can only belong
  // to the chain being decided.
  if (ev.host >= sample_hosts_.size()) {
    sample_hosts_.resize(static_cast<size_t>(ev.host) + 1);
  }
  SampleHostState& st = sample_hosts_[ev.host];

  switch (ev.kind) {
    // Flow-agnostic chain anchors and anomalies, kept for every packet so
    // the causal linker's FIFO pairing (reassembly -> ipintrq -> dequeue)
    // stays exact and drop diagnostics stay complete. kDequeue/kPduRx/
    // kFrameRx also start a receive chain: the verdict resets to undecided.
    case TraceEventKind::kDequeue:
      Emit(ev);
      if (ev.layer == TraceLayer::kIp) {
        ResolveDeferred(ev.host, false);
        st.keep = -1;
      }
      return;
    case TraceEventKind::kPduRx:
    case TraceEventKind::kFrameRx:
      Emit(ev);
      ResolveDeferred(ev.host, false);
      st.keep = -1;
      return;
    case TraceEventKind::kSpanReset:
    case TraceEventKind::kEnqueue:
    case TraceEventKind::kCellDrop:
    case TraceEventKind::kListenOverflow:
    case TraceEventKind::kChecksumError:
    case TraceEventKind::kDrop:
    case TraceEventKind::kImpairDrop:
    case TraceEventKind::kImpairDup:
    case TraceEventKind::kImpairDelay:
      Emit(ev);
      return;

    // Per-cell switch hops identify host pairs (VCI), not flows, and no
    // consumer reads them; they are the bulk of a trace, so sampled runs
    // shed them entirely.
    case TraceEventKind::kCellSwitch:
      return;

    // Flow-identifying events: settle the chain verdict.
    case TraceEventKind::kUserWrite:
    case TraceEventKind::kUserRead:
    case TraceEventKind::kSegTx:
    case TraceEventKind::kSegRx:
    case TraceEventKind::kRetransmit:
    case TraceEventKind::kAck:
    case TraceEventKind::kDelayedAck:
    case TraceEventKind::kNagleHold:
    case TraceEventKind::kCwndChange:
    case TraceEventKind::kFastRetransmit:
    case TraceEventKind::kSackBlock:
      if (ev.flow != 0) {
        const bool keep = KeepFlow(ev.flow);
        st.keep = keep ? 1 : 0;
        ResolveDeferred(ev.host, keep);
        if (keep) {
          Emit(ev);
        }
        return;
      }
      break;
    case TraceEventKind::kWakeup:
      if (ev.layer == TraceLayer::kSock && ev.flow != 0) {
        const bool keep = KeepFlow(ev.flow);
        st.keep = keep ? 1 : 0;
        ResolveDeferred(ev.host, keep);
        if (keep) {
          Emit(ev);
        }
        return;
      }
      break;

    // Top-level syscall entries start a transmit/receive chain.
    case TraceEventKind::kSpanBegin:
      if (ev.span == SpanId::kTxUser || ev.span == SpanId::kRxUser) {
        ResolveDeferred(ev.host, false);  // prior chain ended undecided
        st.keep = -1;
      }
      break;

    default:
      break;
  }

  // Chain-follow events ride the current verdict; undecided chains buffer.
  if (st.keep == 1) {
    Emit(ev);
  } else if (st.keep == -1) {
    if (st.deferred.size() >= kMaxDeferredPerHost) {
      st.deferred.pop_front();
      --deferred_events_;
    }
    st.deferred.push_back(ev);
    ++deferred_events_;
  }
}

std::array<int64_t, static_cast<size_t>(SpanId::kCount)> Tracer::SpanSelfTotalsNanos(
    uint8_t host) const {
  std::array<int64_t, static_cast<size_t>(SpanId::kCount)> totals{};
  for (const TraceEvent& ev : events_) {
    if (ev.host != host) {
      continue;
    }
    switch (ev.kind) {
      case TraceEventKind::kSpanReset:
        totals.fill(0);
        break;
      case TraceEventKind::kSpanEnd:
        totals[static_cast<size_t>(ev.span)] += ev.self_ns;
        break;
      case TraceEventKind::kSpanInterval:
        totals[static_cast<size_t>(ev.span)] += ev.dur_ns;
        break;
      default:
        break;
    }
  }
  return totals;
}

std::string Tracer::ToPerfettoJson() const {
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  char buf[256];
  AppendProcessMetadata(&out, host_names_, &first);

  // Per-flow tracks for the congestion-era kinds: tids allocated per host in
  // first-appearance order (deterministic — events_ is already in canonical
  // order), named after the flow's port pair.
  std::map<std::pair<uint8_t, uint64_t>, int> flow_tids;
  std::vector<int> next_tid(host_names_.size(), kTidFlowBase);
  for (const TraceEvent& ev : events_) {
    if (!IsFlowTrackKind(ev.kind) || ev.flow == 0 || ev.host >= next_tid.size()) {
      continue;
    }
    if (flow_tids.emplace(std::make_pair(ev.host, ev.flow), next_tid[ev.host]).second) {
      if (!first) out += ",\n";
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                    "\"args\":{\"name\":\"flow %u:%u\"}}",
                    static_cast<int>(ev.host), next_tid[ev.host],
                    static_cast<unsigned>((ev.flow >> 16) & 0xffff),
                    static_cast<unsigned>(ev.flow & 0xffff));
      out += buf;
      ++next_tid[ev.host];
    }
  }

  for (const TraceEvent& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    int tid = kTidPackets;
    if (IsFlowTrackKind(ev.kind) && ev.flow != 0) {
      const auto it = flow_tids.find(std::make_pair(ev.host, ev.flow));
      if (it != flow_tids.end()) {
        tid = it->second;
      }
    }
    AppendEventJson(&out, ev, tid);
  }

  // Timeseries plane: periodic points become Perfetto counter tracks ("C",
  // one counter per (host, metric, key)); edge-only points become instants,
  // landing on the owning flow's track when one exists (RTO fires and loss
  // transitions line up under the flow's cwnd changes).
  for (const TimeseriesPoint& p : SortedTimeseriesPoints()) {
    if (!first) out += ",\n";
    first = false;
    const TsMetric metric = static_cast<TsMetric>(p.metric);
    char key_label[48];
    if (metric >= TsMetric::kVcOccupancy && metric <= TsMetric::kVcDropsCum) {
      std::snprintf(key_label, sizeof(key_label), "vc%" PRIu64, p.key);
    } else if (metric == TsMetric::kFlowGoodputBps || metric == TsMetric::kFlowInflightBytes) {
      std::snprintf(key_label, sizeof(key_label), "flow%" PRIu64, p.key);
    } else {
      std::snprintf(key_label, sizeof(key_label), "f%u:%u",
                    static_cast<unsigned>((p.key >> 16) & 0xffff),
                    static_cast<unsigned>(p.key & 0xffff));
    }
    const bool instant = metric >= TsMetric::kTcpLossEnter;
    if (instant) {
      int tid = kTidPackets;
      const auto it = flow_tids.find(std::make_pair(p.host, p.key));
      if (it != flow_tids.end()) {
        tid = it->second;
      }
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s %s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                    "\"ts\":",
                    TsMetricName(metric), key_label, static_cast<int>(p.host), tid);
      out += buf;
      AppendMicros(&out, p.ts_ns);
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%" PRId64 "}}", p.value);
      out += buf;
    } else {
      std::snprintf(buf, sizeof(buf), "{\"name\":\"%s %s\",\"ph\":\"C\",\"pid\":%d,\"ts\":",
                    TsMetricName(metric), key_label, static_cast<int>(p.host));
      out += buf;
      AppendMicros(&out, p.ts_ns);
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%" PRId64 "}}", p.value);
      out += buf;
    }
  }

  out += "\n]}\n";
  return out;
}

bool Tracer::IsTrigger(const TraceEvent& ev) const {
  switch (ev.kind) {
    case TraceEventKind::kRetransmit:
      return flight_.on_retransmit;
    case TraceEventKind::kCellDrop:
      return flight_.on_cell_drop;
    case TraceEventKind::kTxStall:
      return flight_.on_tx_stall && ev.dur_ns >= flight_.tx_stall_threshold_ns;
    case TraceEventKind::kListenOverflow:
      return flight_.on_listen_overflow;
    case TraceEventKind::kImpairDrop:
      return flight_.on_impair_drop;
    default:
      return false;
  }
}

void Tracer::CommitToRing(const TraceEvent& ev) {
  ++commit_seq_;
  ring_.push_back(ev);
  while (ring_.size() > flight_.ring_capacity) {
    ring_.pop_front();
  }
  if (!IsTrigger(ev)) {
    return;
  }
  ++anomalies_seen_;
  if (anomalies_.size() >= flight_.max_anomalies) {
    return;
  }
  AnomalyRecord rec;
  rec.trigger_seq = commit_seq_;
  rec.trigger = ev;
  const size_t n = std::min(ring_.size(), flight_.context_events);
  rec.context.assign(ring_.end() - static_cast<ptrdiff_t>(n), ring_.end());
  anomalies_.push_back(std::move(rec));
}

std::string Tracer::AnomaliesToPerfettoJson() const {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  AppendProcessMetadata(&out, host_names_, &first);
  char buf[256];
  // Overlapping context windows would repeat events; track the last emitted
  // commit ordinal and skip duplicates (context seqs are contiguous and end
  // at the trigger's).
  uint64_t emitted_through = 0;
  for (const AnomalyRecord& rec : anomalies_) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"anomaly.%s.%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":",
                  std::string(TraceLayerName(rec.trigger.layer)).c_str(),
                  std::string(TraceEventKindName(rec.trigger.kind)).c_str(),
                  static_cast<int>(rec.trigger.host), kTidPackets);
    out += buf;
    AppendMicros(&out, rec.trigger.ts_ns);
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"seq\":%" PRIu64 "}}", rec.trigger_seq);
    out += buf;
    const uint64_t first_seq = rec.trigger_seq - rec.context.size() + 1;
    for (size_t i = 0; i < rec.context.size(); ++i) {
      const uint64_t seq = first_seq + i;
      if (seq <= emitted_through) {
        continue;
      }
      out += ",\n";
      AppendEventJson(&out, rec.context[i]);
    }
    emitted_through = rec.trigger_seq;
  }
  out += "\n]}\n";
  return out;
}

std::string_view TraceCsvHeader() {
  return "ts_ns,host,layer,kind,span,dur_ns,self_ns,flow,packet,bytes\n";
}

void AppendTraceCsvRow(const TraceEvent& ev, const std::vector<std::string>& host_names,
                       std::string* out) {
  char buf[256];
  const bool is_span = ev.kind == TraceEventKind::kSpanBegin ||
                       ev.kind == TraceEventKind::kSpanEnd ||
                       ev.kind == TraceEventKind::kSpanInterval;
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 ",%s,%s,%s,%s,%" PRId64 ",%" PRId64 ",%" PRIu64 ",%" PRIu64
                ",%" PRIu64 "\n",
                ev.ts_ns, ev.host < host_names.size() ? host_names[ev.host].c_str() : "?",
                std::string(TraceLayerName(ev.layer)).c_str(),
                std::string(TraceEventKindName(ev.kind)).c_str(),
                is_span ? std::string(SpanName(ev.span)).c_str() : "",
                ev.dur_ns, ev.self_ns, ev.flow, ev.packet, ev.bytes);
  *out += buf;
}

std::string Tracer::ToCsv() const {
  std::string out(TraceCsvHeader());
  out.reserve(out.size() + events_.size() * 64);
  for (const TraceEvent& ev : events_) {
    AppendTraceCsvRow(ev, host_names_, &out);
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(path.c_str());
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "short write: %s\n", path.c_str());
  }
  return ok;
}

}  // namespace tcplat
