# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("cpu")
subdirs("net")
subdirs("buf")
subdirs("os")
subdirs("link")
subdirs("trace")
subdirs("atm")
subdirs("ether")
subdirs("ip")
subdirs("sock")
subdirs("tcp")
subdirs("udp")
subdirs("rpc")
subdirs("icmp")
subdirs("core")
subdirs("fault")
