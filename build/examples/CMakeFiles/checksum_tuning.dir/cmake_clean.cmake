file(REMOVE_RECURSE
  "CMakeFiles/checksum_tuning.dir/checksum_tuning.cpp.o"
  "CMakeFiles/checksum_tuning.dir/checksum_tuning.cpp.o.d"
  "checksum_tuning"
  "checksum_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checksum_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
