# Empty compiler generated dependencies file for lat_ether.
# This may be replaced when dependencies are built.
