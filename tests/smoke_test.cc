// End-to-end smoke: a 4-byte echo over the simulated ATM testbed completes
// and produces a plausible round-trip time.

#include <gtest/gtest.h>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"

namespace tcplat {
namespace {

TEST(Smoke, FourByteEchoOverAtm) {
  TestbedConfig cfg;
  Testbed tb(cfg);

  RpcOptions opt;
  opt.size = 4;
  opt.iterations = 50;
  opt.warmup = 8;
  const RpcResult r = RunRpcBenchmark(tb, opt);

  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_EQ(r.rtt.count(), 50u);
  // The paper measures 1021 us; anything in the broad vicinity proves the
  // whole stack is alive. Tighter comparisons live in the table tests.
  EXPECT_GT(r.MeanRtt().micros(), 300.0);
  EXPECT_LT(r.MeanRtt().micros(), 3000.0);
}

}  // namespace
}  // namespace tcplat
