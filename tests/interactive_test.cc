// The pathological interactive suite's contract: with Nagle and delayed
// ACKs both on, a two-chunk small-write request/response flow's round trip
// collapses to the receiver's delayed-ACK timer (chunk 2 waits for the
// timer-released ACK); the mode tracks the timer value, and vanishes when
// either leg is removed (TCP_NODELAY on the sender, or delack disabled on
// the receiver). The silly-window and retransmit-storm scenarios are
// self-verifying: sws_holds moves only under an artificial window clamp,
// and burst loss never snowballs retransmits past a small multiple of the
// injected drops. Every cell is byte-identical across shard/thread counts
// and deterministic per seed.

#include <gtest/gtest.h>

#include <vector>

#include "src/fault/impairment.h"
#include "src/workload/flow_driver.h"
#include "src/workload/interactive.h"
#include "src/workload/star_testbed.h"

namespace tcplat {
namespace {

constexpr int64_t kMs = 1'000'000;

// With Nagle + delayed ACK on (the defaults), the two-chunk request's
// round trip is pinned to the server's delayed-ACK timer: chunk 1 leaves
// idle, chunk 2 waits behind it, and the server — short of a full request —
// only acks when the timer fires. p50 must sit just above the timer, for
// two different timer values (the "latency ≈ timer" signature).
TEST(InteractivePathology, DelackModeTracksTimerValue) {
  for (const int64_t timer_ms : {int64_t{200}, int64_t{60}}) {
    InteractiveCell cell;
    cell.iterations = 16;
    cell.warmup = 2;
    if (timer_ms != 200) {
      cell.delack_timeout = SimDuration::FromMillis(timer_ms);
    }
    const InteractiveOutcome out = RunInteractiveCell(cell);
    EXPECT_EQ(out.completed, 1u) << "timer " << timer_ms;
    EXPECT_EQ(out.samples, 16u);
    EXPECT_GE(out.p50.nanos(), timer_ms * kMs) << "timer " << timer_ms;
    EXPECT_LE(out.p50.nanos(), timer_ms * kMs + 5 * kMs) << "timer " << timer_ms;
    // One held chunk and one timer-released ACK per round trip.
    EXPECT_GE(out.nagle_holds, 16u);
    EXPECT_GE(out.delayed_acks_fired, 16u);
    EXPECT_EQ(out.sws_holds, 0u);
  }
}

// TCP_NODELAY on the client sends chunk 2 immediately: the delack timer
// never gates the request, and the round trip drops to wire scale.
TEST(InteractivePathology, ModeVanishesUnderNodelay) {
  InteractiveCell cell;
  cell.knob = InteractiveKnob::kNodelay;
  cell.iterations = 16;
  cell.warmup = 2;
  const InteractiveOutcome out = RunInteractiveCell(cell);
  EXPECT_EQ(out.completed, 1u);
  EXPECT_EQ(out.samples, 16u);
  EXPECT_LT(out.p99.nanos(), 5 * kMs);
  EXPECT_EQ(out.nagle_holds, 0u);
}

// Disabling delayed ACKs on the server acks chunk 1 immediately, releasing
// chunk 2 after one wire round trip: Nagle still holds (nagle_holds moves)
// but the 200 ms mode is gone and the timer never fires for request data.
TEST(InteractivePathology, ModeVanishesWithDelackDisabled) {
  InteractiveCell cell;
  cell.knob = InteractiveKnob::kDelackOff;
  cell.iterations = 16;
  cell.warmup = 2;
  const InteractiveOutcome out = RunInteractiveCell(cell);
  EXPECT_EQ(out.completed, 1u);
  EXPECT_EQ(out.samples, 16u);
  EXPECT_LT(out.p99.nanos(), 5 * kMs);
  EXPECT_GE(out.nagle_holds, 16u);
}

// The per-socket timer option must override the stack config: a 40 ms
// socket-level delack timer under the default 200 ms config pins p50 near
// 40 ms.
TEST(InteractivePathology, PerSocketDelackTimerOverridesConfig) {
  InteractiveCell cell;
  cell.iterations = 8;
  cell.warmup = 2;
  StarTestbedConfig config;
  StarTestbed testbed(config);
  std::vector<FlowSpec> specs = BuildInteractiveFlows(cell, 1, 1);
  specs[0].server_delack_timeout = SimDuration::FromMillis(40);
  const WorkloadResult result = RunWorkload(testbed, specs);
  EXPECT_EQ(result.completed, 1u);
  ASSERT_GT(result.rtt.count(), 0u);
  EXPECT_GE(result.rtt.Percentile(50).nanos(), 40 * kMs);
  EXPECT_LE(result.rtt.Percentile(50).nanos(), 45 * kMs);
}

InteractiveCell ShardableCell(uint64_t seed, int shards, unsigned threads) {
  InteractiveCell cell;
  cell.flows = 4;
  cell.clients = 2;
  cell.servers = 2;
  cell.iterations = 10;
  cell.warmup = 2;
  cell.seed = seed;
  cell.shards = shards;
  cell.shard_threads = threads;
  return cell;
}

void ExpectSameOutcome(const InteractiveOutcome& a, const InteractiveOutcome& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.mean.nanos(), b.mean.nanos());
  EXPECT_EQ(a.p50.nanos(), b.p50.nanos());
  EXPECT_EQ(a.p99.nanos(), b.p99.nanos());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.nagle_holds, b.nagle_holds);
  EXPECT_EQ(a.sws_holds, b.sws_holds);
  EXPECT_EQ(a.delayed_acks_fired, b.delayed_acks_fired);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

// All three knob cells must produce byte-identical outcomes whether run
// serially, sharded on one worker, or sharded on four workers — across two
// seeds. (CI re-runs this binary under TCPLAT_JOBS=1 and =4; any
// wall-clock leak into the results shows up as a diff there too.)
TEST(InteractiveDeterminism, CellsAreByteIdenticalAcrossShardsAndSeeds) {
  for (const uint64_t seed : {uint64_t{1}, uint64_t{7}}) {
    for (const InteractiveKnob knob :
         {InteractiveKnob::kPathological, InteractiveKnob::kNodelay,
          InteractiveKnob::kDelackOff}) {
      InteractiveCell serial = ShardableCell(seed, 0, 0);
      serial.knob = knob;
      InteractiveCell sharded1 = ShardableCell(seed, 2, 1);
      sharded1.knob = knob;
      InteractiveCell sharded4 = ShardableCell(seed, 2, 4);
      sharded4.knob = knob;
      const InteractiveOutcome a = RunInteractiveCell(serial);
      const InteractiveOutcome b = RunInteractiveCell(sharded1);
      const InteractiveOutcome c = RunInteractiveCell(sharded4);
      SCOPED_TRACE(InteractiveKnobName(knob));
      ExpectSameOutcome(a, b);
      ExpectSameOutcome(a, c);
    }
  }
}

// Silly-window scenario: clamping the server's announced window below the
// request size makes chunk 2's hold *window-limited* — tcp.sws_holds must
// move, once per round trip — while the unclamped control counts zero
// (its holds are pure Nagle). Both converge on the delayed-ACK clock.
TEST(InteractiveScenarios, SillyWindowHoldsCountOnlyUnderClamp) {
  InteractiveCell clamped;
  clamped.iterations = 6;
  clamped.warmup = 1;
  clamped.server_rcv_clamp = 150;
  const InteractiveOutcome clamped_out = RunInteractiveCell(clamped);
  EXPECT_EQ(clamped_out.completed, 1u);
  EXPECT_GE(clamped_out.sws_holds, 6u);

  InteractiveCell control = clamped;
  control.server_rcv_clamp = 0;
  const InteractiveOutcome control_out = RunInteractiveCell(control);
  EXPECT_EQ(control_out.completed, 1u);
  EXPECT_EQ(control_out.sws_holds, 0u);
  EXPECT_GE(control_out.nagle_holds, 6u);
}

InteractiveCell StormCell() {
  InteractiveCell cell;
  cell.flows = 8;
  cell.clients = 4;
  cell.servers = 2;
  cell.iterations = 12;
  cell.warmup = 2;
  cell.knob = InteractiveKnob::kNodelay;  // wire-speed flows; loss dominates
  cell.impairment.ge_good_to_bad = 0.02;
  cell.impairment.ge_bad_to_good = 0.25;
  cell.impairment.ge_bad_loss = 0.3;
  cell.impairment.seed = 23;
  return cell;
}

// Retransmit storm: Gilbert-Elliott burst loss on every switch output
// under eight small flows. The run must complete, and recovery must stay
// proportional to the injected loss — a retransmit count far above the
// drop count would mean timer-driven retransmissions snowballing (the
// storm the fixture guards against). Identical reruns pin determinism of
// the fault seed.
TEST(InteractiveScenarios, RetransmitStormStaysBoundedAndDeterministic) {
  const InteractiveOutcome a = RunInteractiveCell(StormCell());
  EXPECT_GT(a.drops_injected, 0u);
  EXPECT_EQ(a.completed + a.aborted, 8u);
  EXPECT_GE(a.completed, 7u);
  EXPECT_GE(a.retransmits, 1u);
  EXPECT_LE(a.retransmits, a.drops_injected * 3 + 8);

  const InteractiveOutcome b = RunInteractiveCell(StormCell());
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.drops_injected, b.drops_injected);
  EXPECT_EQ(a.p99.nanos(), b.p99.nanos());
  EXPECT_EQ(a.sim_events, b.sim_events);
}

// Streaming variant (steady 100-byte appends every 2 ms): with Nagle on,
// only the first append leaves immediately — the rest batch up until the
// sink's delayed-ACK timer releases them, so delivery latency rides the
// timer (p99 ≈ timer, p50 ≈ timer/2 for a 10 ms clock against a 2 ms
// append cadence). With TCP_NODELAY each append is delivered at wire
// latency and the timer never fires against held data.
TEST(InteractiveScenarios, StreamingAppendsGatedByDelackUnlessNodelay) {
  InteractiveCell cell;
  cell.streaming = true;
  cell.request_chunks = {100};
  cell.stream_interval = SimDuration::FromMillis(2);
  cell.iterations = 40;
  cell.warmup = 2;
  cell.delack_timeout = SimDuration::FromMillis(10);
  const InteractiveOutcome gated = RunInteractiveCell(cell);
  EXPECT_EQ(gated.completed, 1u);
  EXPECT_EQ(gated.samples, 40u);
  EXPECT_GE(gated.p50.nanos(), 2 * kMs);
  EXPECT_GE(gated.p99.nanos(), 8 * kMs);
  EXPECT_LE(gated.p99.nanos(), 15 * kMs);
  EXPECT_GE(gated.delayed_acks_fired, 5u);

  InteractiveCell nodelay = cell;
  nodelay.knob = InteractiveKnob::kNodelay;
  const InteractiveOutcome fast = RunInteractiveCell(nodelay);
  EXPECT_EQ(fast.completed, 1u);
  EXPECT_EQ(fast.samples, 40u);
  EXPECT_LT(fast.p50.nanos(), 1 * kMs);
}

// Pipelined clients keep several requests in flight; the run must still
// complete with every response accounted for, and deeper pipelines must
// not deadlock against Nagle (responses keep the ACK clock running).
TEST(InteractiveScenarios, PipelinedRequestsComplete) {
  InteractiveCell cell;
  cell.pipeline_depth = 3;
  cell.knob = InteractiveKnob::kNodelay;
  cell.iterations = 12;
  cell.warmup = 2;
  const InteractiveOutcome out = RunInteractiveCell(cell);
  EXPECT_EQ(out.completed, 1u);
  EXPECT_EQ(out.samples, 12u);
  EXPECT_LT(out.p99.nanos(), 5 * kMs);
}

// --- keystroke/echo (telnet shape) -----------------------------------------

// A human typing one character every 150 ms against a per-byte echo server:
// each keystroke finds the connection idle, so Nagle lets it out at once
// and the echo returns at wire scale — two orders of magnitude below the
// typing clock. This is the satellite-era telnet baseline the paper's
// interactive discussion assumes.
TEST(InteractiveKeystroke, SlowTypingEchoesAtWireScale) {
  InteractiveCell cell;
  cell.keystrokes = 24;
  cell.warmup = 4;
  const InteractiveOutcome out = RunInteractiveCell(cell);
  EXPECT_EQ(out.completed, 1u);
  EXPECT_EQ(out.samples, 20u);
  // Two orders of magnitude under the 150 ms typing clock.
  EXPECT_LT(out.p99.nanos(), 5 * kMs);
  EXPECT_GT(out.p50.nanos(), 0);
}

// Paste-speed typing (no inter-key gap): byte 1 leaves alone, bytes 2..N
// pile up behind the client's Nagle rule until its ACK returns, then travel
// as one coalesced segment — so the echoes coalesce too and the burst
// clears at wire scale. TCP_NODELAY on the *client* does not rescue the
// burst: it moves the holds to the echo direction, where the server's
// Nagle rule collides with the client's delayed ACK and the tail collapses
// to the 200 ms timer. Shrinking the timer shrinks the tail in lockstep —
// the latency ≈ timer signature, now in the echo path.
TEST(InteractiveKeystroke, BurstTypingShiftsNagleHoldsToTheEchoUnderNodelay) {
  InteractiveCell cell;
  cell.keystrokes = 32;
  cell.warmup = 0;
  cell.keystroke_interval = SimDuration();
  const InteractiveOutcome nagle = RunInteractiveCell(cell);
  EXPECT_EQ(nagle.completed, 1u);
  EXPECT_EQ(nagle.samples, 32u);
  EXPECT_GE(nagle.nagle_holds, 31u);  // every byte behind the first is held
  EXPECT_LT(nagle.p99.nanos(), 10 * kMs);

  InteractiveCell nodelay = cell;
  nodelay.knob = InteractiveKnob::kNodelay;
  const InteractiveOutcome echo_held = RunInteractiveCell(nodelay);
  EXPECT_EQ(echo_held.completed, 1u);
  EXPECT_EQ(echo_held.samples, 32u);
  // Far fewer holds (echo side only), but each one now waits on the
  // client's delayed-ACK timer instead of a wire-scale ACK.
  EXPECT_LT(echo_held.nagle_holds, nagle.nagle_holds);
  EXPECT_GE(echo_held.p99.nanos(), 150 * kMs);
  EXPECT_LE(echo_held.p99.nanos(), 260 * kMs);

  InteractiveCell short_timer = nodelay;
  short_timer.delack_timeout = SimDuration::FromMillis(20);
  const InteractiveOutcome tracked = RunInteractiveCell(short_timer);
  EXPECT_EQ(tracked.completed, 1u);
  EXPECT_GE(tracked.p99.nanos(), 10 * kMs);
  EXPECT_LE(tracked.p99.nanos(), 40 * kMs);
}

// Keystroke cells obey the same determinism contract as every other cell:
// byte-identical rows across repeats and across shard/thread counts.
TEST(InteractiveKeystroke, CellsAreByteIdenticalAcrossShards) {
  InteractiveCell cell;
  cell.keystrokes = 16;
  cell.warmup = 2;
  cell.flows = 2;
  cell.clients = 2;
  const std::vector<std::string> serial = InteractiveRow(cell, RunInteractiveCell(cell));
  EXPECT_EQ(serial, InteractiveRow(cell, RunInteractiveCell(cell)));
  InteractiveCell sharded = cell;
  sharded.shards = 2;
  sharded.shard_threads = 2;
  EXPECT_EQ(serial, InteractiveRow(sharded, RunInteractiveCell(sharded)));
}

}  // namespace
}  // namespace tcplat
