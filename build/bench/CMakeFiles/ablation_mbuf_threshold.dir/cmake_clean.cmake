file(REMOVE_RECURSE
  "CMakeFiles/ablation_mbuf_threshold.dir/ablation_mbuf_threshold.cc.o"
  "CMakeFiles/ablation_mbuf_threshold.dir/ablation_mbuf_threshold.cc.o.d"
  "ablation_mbuf_threshold"
  "ablation_mbuf_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mbuf_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
