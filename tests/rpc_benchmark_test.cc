// Tests for the measurement harness itself: warmup/measured-region
// handling, span accounting, determinism, and the table formatter.

#include <gtest/gtest.h>

#include "src/core/rpc_benchmark.h"
#include "src/core/stats_report.h"
#include "src/core/table.h"
#include "src/core/testbed.h"

namespace tcplat {
namespace {

RpcResult RunBench(size_t size, int iterations = 50, uint64_t seed = 1) {
  TestbedConfig cfg;
  cfg.seed = seed;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = iterations;
  opt.warmup = 8;
  return RunRpcBenchmark(tb, opt);
}

TEST(RpcBenchmark, CollectsRequestedIterations) {
  const RpcResult r = RunBench(80, 37);
  EXPECT_EQ(r.rtt.count(), 37u);
  EXPECT_EQ(r.iterations, 37u);
  EXPECT_EQ(r.data_mismatches, 0u);
}

TEST(RpcBenchmark, DeterministicAcrossRuns) {
  const RpcResult a = RunBench(500, 40, 9);
  const RpcResult b = RunBench(500, 40, 9);
  EXPECT_EQ(a.MeanRtt().nanos(), b.MeanRtt().nanos());
  EXPECT_EQ(a.rtt.Min().nanos(), b.rtt.Min().nanos());
  for (size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].nanos(), b.spans[i].nanos());
  }
}

TEST(RpcBenchmark, SteadyStateIsStable) {
  // Post-warmup, the deterministic simulator should produce near-identical
  // round trips (TIME_WAIT teardown noise aside).
  const RpcResult r = RunBench(200, 100);
  EXPECT_LT((r.rtt.Max() - r.rtt.Min()).micros(), 0.05 * r.MeanRtt().micros());
}

TEST(RpcBenchmark, SpansScaleWithIterations) {
  const RpcResult a = RunBench(200, 40);
  const RpcResult b = RunBench(200, 80);
  // Per-transfer means are iteration-independent; totals scale.
  EXPECT_NEAR(a.SpanMean(SpanId::kTxTcpChecksum).micros(),
              b.SpanMean(SpanId::kTxTcpChecksum).micros(), 1.0);
  EXPECT_GT(b.spans[static_cast<size_t>(SpanId::kTxTcpChecksum)].nanos(),
            1.7 * a.spans[static_cast<size_t>(SpanId::kTxTcpChecksum)].nanos());
}

TEST(RpcBenchmark, ChecksumSpanGrowsWithSize) {
  const RpcResult small = RunBench(4);
  const RpcResult large = RunBench(4000);
  EXPECT_GT(large.SpanMean(SpanId::kRxTcpChecksum).micros(),
            10 * small.SpanMean(SpanId::kRxTcpChecksum).micros());
}

TEST(RpcBenchmark, RttQuantizedToPaperClock) {
  const RpcResult r = RunBench(4, 10);
  EXPECT_EQ(r.rtt.Min().nanos() % kPaperClockPeriodNs, 0);
}

TEST(RpcBenchmark, SpanRowsRoughlyPartitionTheRoundTrip) {
  const RpcResult r = RunBench(500);
  double row_sum_us = 0;
  for (SpanId id : {SpanId::kTxUser, SpanId::kTxTcpChecksum, SpanId::kTxTcpMcopy,
                    SpanId::kTxTcpSegment, SpanId::kTxIp, SpanId::kTxDriver, SpanId::kRxDriver,
                    SpanId::kRxIpq, SpanId::kRxIp, SpanId::kRxTcpChecksum,
                    SpanId::kRxTcpSegment, SpanId::kRxWakeup, SpanId::kRxUser}) {
    row_sum_us += r.SpanMean(id).micros();
  }
  // Two transfers per round trip; the rows cover most of the RTT (wire
  // time and untabulated odds and ends account for the rest).
  const double rtt = r.MeanRtt().micros();
  EXPECT_GT(2 * row_sum_us, 0.80 * rtt);
  EXPECT_LT(2 * row_sum_us, 1.05 * rtt);
}

TEST(StatsReport, RendersNonZeroRowsOnly) {
  TcpStats s;
  s.segs_sent = 42;
  s.checksum_errors = 0;
  const std::string out = DumpTcpStats(s);
  EXPECT_NE(out.find("segments sent"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(out.find("bad checksum"), std::string::npos) << "zero rows are omitted";
}

TEST(StatsReport, TestbedReportCoversBothHosts) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = 100;
  opt.iterations = 10;
  RunRpcBenchmark(tb, opt);
  const std::string report = DumpTestbedReport(tb);
  EXPECT_NE(report.find("=== client ==="), std::string::npos);
  EXPECT_NE(report.find("=== server ==="), std::string::npos);
  EXPECT_NE(report.find("tcp:"), std::string::npos);
  EXPECT_NE(report.find("connections established"), std::string::npos);
  EXPECT_EQ(report.find("leak?"), std::string::npos) << "clean run leaks nothing";
}

TEST(StatsReport, MbufLeakFlagged) {
  MbufStats s;
  s.small_allocs = 5;
  s.frees = 3;
  s.in_use = 2;
  EXPECT_NE(DumpMbufStats(s).find("leak?"), std::string::npos);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"A", "Bee", "C"});
  t.AddRow({"1", "2", "3"});
  t.AddRow({"100", "20000", "3"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("  A    Bee  C"), std::string::npos);
  EXPECT_NE(s.find("100  20000  3"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"size", "rtt"});
  t.AddRow({"4", "1095"});
  t.AddRow({"has,comma", "has\"quote"});
  EXPECT_EQ(t.ToCsv(), "size,rtt\n4,1095\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::Us(1234.56), "1235");
  EXPECT_EQ(TextTable::Us(1234.56, 1), "1234.6");
  EXPECT_EQ(TextTable::Pct(41.4, 1), "41.4%");
  EXPECT_EQ(TextTable::Num(1.25, 2), "1.25");
}

}  // namespace
}  // namespace tcplat
