// Unit tests for the TLBT compact binary trace format: encode/decode round
// trips (including backward timestamp deltas), header and record
// validation on truncated/corrupt streams, and the deterministic shard
// merge.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/trace/binary_trace.h"
#include "src/trace/tracer.h"

namespace tcplat {
namespace {

TraceEvent Make(int64_t ts, TraceEventKind kind, TraceLayer layer, uint8_t host,
                uint64_t flow = 0, uint64_t packet = 0, uint64_t bytes = 0, int64_t dur = 0,
                int64_t self = 0) {
  TraceEvent ev;
  ev.ts_ns = ts;
  ev.dur_ns = dur;
  ev.self_ns = self;
  ev.flow = flow;
  ev.packet = packet;
  ev.bytes = bytes;
  ev.kind = kind;
  ev.layer = layer;
  ev.host = host;
  return ev;
}

bool Same(const TraceEvent& a, const TraceEvent& b) {
  return a.ts_ns == b.ts_ns && a.dur_ns == b.dur_ns && a.self_ns == b.self_ns &&
         a.flow == b.flow && a.packet == b.packet && a.bytes == b.bytes && a.kind == b.kind &&
         a.layer == b.layer && a.span == b.span && a.host == b.host;
}

// A corpus touching every field: big values, zero values, span events,
// and a timestamp that goes backwards (a sampled stream emits deferred
// chain prefixes behind flow-agnostic anchors).
std::vector<TraceEvent> Corpus() {
  std::vector<TraceEvent> events;
  events.push_back(Make(0, TraceEventKind::kSpanReset, TraceLayer::kSched, 0));
  TraceEvent begin = Make(120, TraceEventKind::kSpanBegin, TraceLayer::kSched, 0);
  begin.span = SpanId::kTxUser;
  events.push_back(begin);
  events.push_back(Make(1'000'000'000'000LL, TraceEventKind::kSegTx, TraceLayer::kTcp, 1,
                        /*flow=*/0xDEADBEEFCAFELL, /*packet=*/0xFFFFFFFFFFFFFFFFULL,
                        /*bytes=*/1400));
  events.push_back(Make(999'999'999'000LL, TraceEventKind::kPktRx, TraceLayer::kIp, 2,
                        /*flow=*/1, /*packet=*/2, /*bytes=*/3));  // ts goes backwards
  TraceEvent end = Make(999'999'999'500LL, TraceEventKind::kSpanEnd, TraceLayer::kSched, 1);
  end.span = SpanId::kOther;
  end.self_ns = -250;  // zigzag must survive negative self/dur too
  end.dur_ns = 40;
  events.push_back(end);
  events.push_back(Make(999'999'999'500LL, TraceEventKind::kImpairDelay, TraceLayer::kLink, 2,
                        /*flow=*/7, /*packet=*/8, /*bytes=*/0, /*dur=*/123456));
  return events;
}

const std::vector<std::string> kHosts = {"client", "server", "switch"};

std::string SealCorpus(const std::vector<TraceEvent>& events) {
  BinaryTraceWriter writer;
  for (const TraceEvent& ev : events) {
    writer.Append(ev);
  }
  return SealBinaryTrace(kHosts, writer);
}

TEST(BinaryTrace, RoundTripPreservesEveryField) {
  const std::vector<TraceEvent> events = Corpus();
  const std::string blob = SealCorpus(events);

  BinaryTraceReader reader(blob);
  ASSERT_TRUE(reader.ok()) << reader.error_message();
  EXPECT_EQ(reader.host_names(), kHosts);
  ASSERT_EQ(reader.record_count(), events.size());
  TraceEvent ev;
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(reader.Next(&ev)) << "record " << i << ": " << reader.error_message();
    EXPECT_TRUE(Same(ev, events[i])) << "record " << i << " diverged";
  }
  EXPECT_FALSE(reader.Next(&ev));
  EXPECT_FALSE(reader.error());
}

TEST(BinaryTrace, DecodeIntoTracerMatchesOriginal) {
  const std::vector<TraceEvent> events = Corpus();
  Tracer decoded;
  ASSERT_TRUE(DecodeBinaryTrace(SealCorpus(events), &decoded));
  EXPECT_EQ(decoded.host_names(), kHosts);
  ASSERT_EQ(decoded.events().size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(Same(decoded.events()[i], events[i])) << "event " << i;
  }
}

TEST(BinaryTrace, EncodingIsAPureFunctionOfTheSequence) {
  const std::vector<TraceEvent> events = Corpus();
  EXPECT_EQ(SealCorpus(events), SealCorpus(events));
}

TEST(BinaryTrace, RejectsBadMagicAndVersion) {
  std::string blob = SealCorpus(Corpus());
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(BinaryTraceReader(bad_magic).ok());

  std::string bad_version = blob;
  bad_version[4] = static_cast<char>(0xFF);
  EXPECT_FALSE(BinaryTraceReader(bad_version).ok());

  EXPECT_FALSE(BinaryTraceReader(std::string_view("TLB")).ok());
  EXPECT_FALSE(BinaryTraceReader(std::string_view()).ok());
}

TEST(BinaryTrace, TruncatedStreamFailsGracefully) {
  const std::string blob = SealCorpus(Corpus());
  // Every proper prefix must either fail header validation or decode some
  // records and then flag an error — never crash, never fabricate records.
  for (size_t len = 0; len < blob.size(); ++len) {
    BinaryTraceReader reader(blob.substr(0, len));
    if (!reader.ok()) {
      continue;
    }
    TraceEvent ev;
    uint64_t decoded = 0;
    while (reader.Next(&ev)) {
      ++decoded;
    }
    EXPECT_TRUE(reader.error()) << "prefix " << len << " decoded " << decoded
                                << " records and reported clean EOF";
    EXPECT_LT(decoded, reader.record_count());
  }
}

TEST(BinaryTrace, CorruptTagBytesAreRangeChecked) {
  // Append a record with kind/layer/span bytes past the enum sentinels by
  // hand-corrupting an encoded single-record stream.
  BinaryTraceWriter writer;
  writer.Append(Make(5, TraceEventKind::kSegTx, TraceLayer::kTcp, 0, 1, 2, 3));
  const std::string good = SealBinaryTrace({"h"}, writer);

  // The record is the stream tail: varint delta (1 byte), four tag bytes
  // kind/layer/span/host, then five 1-byte varints (flow/packet/bytes/dur/self).
  const size_t tag0 = good.size() - 9;
  ASSERT_EQ(static_cast<uint8_t>(good[tag0]), static_cast<uint8_t>(TraceEventKind::kSegTx));

  for (size_t tag = 0; tag < 4; ++tag) {
    std::string bad = good;
    bad[tag0 + tag] = static_cast<char>(0xEE);
    BinaryTraceReader reader(bad);
    ASSERT_TRUE(reader.ok());
    TraceEvent ev;
    EXPECT_FALSE(reader.Next(&ev)) << "corrupt tag " << tag << " decoded";
    EXPECT_TRUE(reader.error());
    Tracer out;
    EXPECT_FALSE(DecodeBinaryTrace(bad, &out));
  }
}

TEST(BinaryTrace, MergeOrdersByTimestampThenShardAndRemapsHosts) {
  BinaryTraceWriter shard_a;  // local host 0 -> canonical 2
  shard_a.Append(Make(10, TraceEventKind::kSegTx, TraceLayer::kTcp, 0, 1));
  shard_a.Append(Make(30, TraceEventKind::kSegRx, TraceLayer::kTcp, 0, 1));
  BinaryTraceWriter shard_b;  // local host 0 -> canonical 0
  shard_b.Append(Make(10, TraceEventKind::kPktTx, TraceLayer::kIp, 0, 2));
  shard_b.Append(Make(20, TraceEventKind::kPktRx, TraceLayer::kIp, 0, 2));

  const std::vector<uint8_t> remap_a = {2};
  const std::vector<uint8_t> remap_b = {0};
  BinaryTraceWriter merged;
  ASSERT_TRUE(MergeBinaryShards({{&shard_a, &remap_a}, {&shard_b, &remap_b}}, &merged));
  EXPECT_EQ(merged.count(), 4u);

  BinaryRecordCursor cursor(merged.data(), merged.count());
  TraceEvent ev;
  // ts 10 tie resolves to shard 0 first; hosts remapped to canonical ids.
  ASSERT_TRUE(cursor.Next(&ev));
  EXPECT_EQ(ev.ts_ns, 10);
  EXPECT_EQ(ev.kind, TraceEventKind::kSegTx);
  EXPECT_EQ(ev.host, 2);
  ASSERT_TRUE(cursor.Next(&ev));
  EXPECT_EQ(ev.ts_ns, 10);
  EXPECT_EQ(ev.kind, TraceEventKind::kPktTx);
  EXPECT_EQ(ev.host, 0);
  ASSERT_TRUE(cursor.Next(&ev));
  EXPECT_EQ(ev.ts_ns, 20);
  ASSERT_TRUE(cursor.Next(&ev));
  EXPECT_EQ(ev.ts_ns, 30);
  EXPECT_FALSE(cursor.Next(&ev));
  EXPECT_FALSE(cursor.error());
}

TEST(BinaryTrace, MergePreservesWithinShardOrderForBackwardDeltas) {
  // A sampled shard stream may emit ts 50 then ts 40 (deferred chain
  // prefix); the merge must keep that pair adjacent and in order, not
  // re-sort it behind another shard's ts 45.
  BinaryTraceWriter shard_a;
  shard_a.Append(Make(50, TraceEventKind::kEnqueue, TraceLayer::kIp, 0, 0, 1));
  shard_a.Append(Make(40, TraceEventKind::kPduRx, TraceLayer::kAtm, 0, 0, 1));
  BinaryTraceWriter shard_b;
  shard_b.Append(Make(45, TraceEventKind::kCellSwitch, TraceLayer::kAtm, 0, 3));

  BinaryTraceWriter merged;
  ASSERT_TRUE(MergeBinaryShards({{&shard_a, nullptr}, {&shard_b, nullptr}}, &merged));
  BinaryRecordCursor cursor(merged.data(), merged.count());
  TraceEvent ev;
  ASSERT_TRUE(cursor.Next(&ev));
  EXPECT_EQ(ev.ts_ns, 45);  // shard b's head was earliest
  ASSERT_TRUE(cursor.Next(&ev));
  EXPECT_EQ(ev.ts_ns, 50);
  ASSERT_TRUE(cursor.Next(&ev));
  EXPECT_EQ(ev.ts_ns, 40);  // stayed glued behind its chain's anchor
}

TEST(BinaryTrace, MergeRejectsHostWithoutRemapEntry) {
  BinaryTraceWriter shard;
  shard.Append(Make(10, TraceEventKind::kSegTx, TraceLayer::kTcp, /*host=*/1));
  BinaryTraceWriter merged;
  const std::vector<uint8_t> short_remap = {0};  // only local host 0 is mapped
  EXPECT_FALSE(MergeBinaryShards({{&shard, &short_remap}}, &merged));
}

TEST(BinaryTrace, WriterClearResetsDeltaState) {
  BinaryTraceWriter writer;
  writer.Append(Make(100, TraceEventKind::kSegTx, TraceLayer::kTcp, 0));
  writer.Clear();
  EXPECT_EQ(writer.count(), 0u);
  EXPECT_EQ(writer.SizeBytes(), 0u);
  writer.Append(Make(100, TraceEventKind::kSegTx, TraceLayer::kTcp, 0));
  BinaryRecordCursor cursor(writer.data(), writer.count());
  TraceEvent ev;
  ASSERT_TRUE(cursor.Next(&ev));
  EXPECT_EQ(ev.ts_ns, 100);  // delta is against 0 again, not the old 100
}

}  // namespace
}  // namespace tcplat
