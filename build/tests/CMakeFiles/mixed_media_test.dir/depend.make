# Empty dependencies file for mixed_media_test.
# This may be replaced when dependencies are built.
