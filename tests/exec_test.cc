// Tests for the parallel experiment executor: submission-order merging,
// byte-identical determinism vs the serial path, crash isolation, and
// TCPLAT_JOBS handling.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"

namespace tcplat {
namespace {

TEST(Executor, ResultsComeBackInSubmissionOrder) {
  Executor ex(4);
  std::vector<std::function<int()>> thunks;
  for (int i = 0; i < 64; ++i) {
    // Uneven work so completion order scrambles under real parallelism.
    thunks.emplace_back([i] {
      volatile int sink = 0;
      for (int k = 0; k < (64 - i) * 1000; ++k) {
        sink += k;
      }
      return i;
    });
  }
  const auto outcomes = ex.Run<int>(thunks);
  ASSERT_EQ(outcomes.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_EQ(*outcomes[i].value, i);
  }
}

TEST(Executor, ReusableAcrossBatches) {
  Executor ex(2);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::function<int()>> thunks;
    for (int i = 0; i < 8; ++i) {
      thunks.emplace_back([i, round] { return i * round; });
    }
    const auto outcomes = ex.Run<int>(thunks);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(outcomes[i].ok());
      EXPECT_EQ(*outcomes[i].value, i * round);
    }
  }
}

TEST(Executor, CrashIsolationOneFailingConfigDoesNotPoisonSiblings) {
  Executor ex(4);
  std::atomic<int> completed{0};
  std::vector<std::function<int()>> thunks;
  for (int i = 0; i < 16; ++i) {
    thunks.emplace_back([i, &completed]() -> int {
      if (i == 5) {
        throw std::runtime_error("config 5 exploded");
      }
      ++completed;
      return i;
    });
  }
  const auto outcomes = ex.Run<int>(thunks);
  EXPECT_EQ(completed.load(), 15);
  for (int i = 0; i < 16; ++i) {
    if (i == 5) {
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_EQ(outcomes[i].error, "config 5 exploded");
    } else {
      ASSERT_TRUE(outcomes[i].ok()) << "sibling " << i << " was poisoned";
      EXPECT_EQ(*outcomes[i].value, i);
    }
  }
  // The executor survives a failing batch and keeps working.
  const auto again = ex.Run<int>({[]() { return 42; }});
  ASSERT_TRUE(again[0].ok());
  EXPECT_EQ(*again[0].value, 42);
}

TEST(Executor, EmptyBatchReturnsImmediately) {
  Executor ex(2);
  EXPECT_TRUE(ex.Run<int>({}).empty());
}

TEST(Executor, DefaultJobsRespectsEnvOverride) {
  ASSERT_EQ(setenv("TCPLAT_JOBS", "3", 1), 0);
  EXPECT_EQ(DefaultExecutorJobs(), 3u);
  ASSERT_EQ(setenv("TCPLAT_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(DefaultExecutorJobs(), 1u);  // malformed value falls back
  ASSERT_EQ(setenv("TCPLAT_JOBS", "0", 1), 0);
  EXPECT_GE(DefaultExecutorJobs(), 1u);  // zero is not a pool size
  ASSERT_EQ(unsetenv("TCPLAT_JOBS"), 0);
  EXPECT_GE(DefaultExecutorJobs(), 1u);
}

// The tentpole guarantee: an experiment grid pushed through the parallel
// executor renders the exact same table, byte for byte, as the serial loop.
TEST(Executor, GridRunIsByteIdenticalToSerial) {
  const std::array<size_t, 4> sizes = {4, 200, 1400, 8000};
  const auto measure = [&](size_t i) {
    TestbedConfig cfg;
    cfg.network = (i % 2 == 0) ? NetworkKind::kAtm : NetworkKind::kEthernet;
    Testbed tb(cfg);
    RpcOptions opt;
    opt.size = sizes[i % sizes.size()];
    opt.iterations = 20;
    opt.warmup = 4;
    return RunRpcBenchmark(tb, opt);
  };
  const auto render = [&](const std::vector<RpcResult>& results) {
    TextTable t({"Config", "RTT (us)", "Iterations"});
    for (size_t i = 0; i < results.size(); ++i) {
      t.AddRow({std::to_string(i), TextTable::Us(results[i].MeanRtt().micros(), 3),
                std::to_string(results[i].iterations)});
    }
    return t.ToString() + t.ToCsv();
  };

  // Serial reference: a plain loop on this thread.
  std::vector<RpcResult> serial;
  for (size_t i = 0; i < 8; ++i) {
    serial.push_back(measure(i));
  }

  // Parallel: same grid through a 4-worker pool, twice (reproducible).
  Executor ex(4);
  std::vector<std::function<RpcResult()>> thunks;
  for (size_t i = 0; i < 8; ++i) {
    thunks.emplace_back([&, i] { return measure(i); });
  }
  for (int round = 0; round < 2; ++round) {
    const auto outcomes = ex.Run<RpcResult>(thunks);
    std::vector<RpcResult> parallel;
    for (const auto& o : outcomes) {
      ASSERT_TRUE(o.ok()) << o.error;
      parallel.push_back(*o.value);
    }
    EXPECT_EQ(render(serial), render(parallel));
    // Not just the rendering: the underlying virtual-time measurements are
    // bit-identical too.
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(serial[i].MeanRtt().nanos(), parallel[i].MeanRtt().nanos());
      EXPECT_EQ(serial[i].rtt.count(), parallel[i].rtt.count());
    }
  }
}

TEST(Executor, ParallelMapPropagatesFirstError) {
  EXPECT_THROW(
      ParallelMap<int>(4,
                       [](size_t i) -> int {
                         if (i == 2) {
                           throw std::runtime_error("boom");
                         }
                         return static_cast<int>(i);
                       }),
      std::runtime_error);
  const auto ok = ParallelMap<int>(4, [](size_t i) { return static_cast<int>(i * 2); });
  EXPECT_EQ(ok, (std::vector<int>{0, 2, 4, 6}));
}

}  // namespace
}  // namespace tcplat
