#include "src/trace/binary_trace.h"

#include <cstddef>

#include "src/base/check.h"

namespace tcplat {
namespace {

// LEB128: 7 payload bits per byte, high bit = continuation.
void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Zigzag folds sign into bit 0 so small negative deltas stay short.
uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutZigzag(std::string* out, int64_t v) { PutVarint(out, ZigzagEncode(v)); }

bool GetVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size()) {
    const uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    if (shift >= 63 && byte > 1) {
      return false;  // would overflow 64 bits
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated
}

bool GetZigzag(std::string_view data, size_t* pos, int64_t* out) {
  uint64_t raw = 0;
  if (!GetVarint(data, pos, &raw)) return false;
  *out = ZigzagDecode(raw);
  return true;
}

bool GetByte(std::string_view data, size_t* pos, uint8_t* out) {
  if (*pos >= data.size()) return false;
  *out = static_cast<uint8_t>(data[*pos]);
  ++*pos;
  return true;
}

}  // namespace

BinaryTraceWriter::~BinaryTraceWriter() {
  if (spill_file_ != nullptr) {
    std::fclose(spill_file_);
  }
}

void BinaryTraceWriter::Append(const TraceEvent& ev) {
  PutZigzag(&data_, ev.ts_ns - prev_ts_);
  prev_ts_ = ev.ts_ns;
  data_.push_back(static_cast<char>(ev.kind));
  data_.push_back(static_cast<char>(ev.layer));
  data_.push_back(static_cast<char>(ev.span));
  data_.push_back(static_cast<char>(ev.host));
  PutVarint(&data_, ev.flow);
  PutVarint(&data_, ev.packet);
  PutVarint(&data_, ev.bytes);
  PutZigzag(&data_, ev.dur_ns);
  PutZigzag(&data_, ev.self_ns);
  ++count_;
  MaybeSpill();
}

void BinaryTraceWriter::Clear() {
  std::string().swap(data_);
  prev_ts_ = 0;
  count_ = 0;
  if (spill_file_ != nullptr) {
    // Truncate the spill file so the writer restarts from an empty capture.
    std::FILE* reopened = std::freopen(spill_path_.c_str(), "wb", spill_file_);
    TCPLAT_CHECK(reopened != nullptr);
    spill_file_ = reopened;
    spilled_bytes_ = 0;
    spill_segments_ = 0;
  }
}

bool BinaryTraceWriter::EnableSpill(const std::string& path, size_t segment_bytes) {
  TCPLAT_CHECK(spill_file_ == nullptr);
  TCPLAT_CHECK(segment_bytes > 0);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  spill_file_ = file;
  spill_path_ = path;
  spill_segment_bytes_ = segment_bytes;
  MaybeSpill();  // the buffer may already be over the threshold
  return true;
}

void BinaryTraceWriter::MaybeSpill() {
  if (spill_file_ == nullptr || data_.size() < spill_segment_bytes_) {
    return;
  }
  const size_t written = std::fwrite(data_.data(), 1, data_.size(), spill_file_);
  TCPLAT_CHECK(written == data_.size());
  spilled_bytes_ += data_.size();
  ++spill_segments_;
  // swap with a fresh string (rather than clear()) so the capacity is
  // actually released — bounding memory is the whole point of spilling.
  std::string().swap(data_);
}

std::string BinaryTraceWriter::ConsolidatedRecords() const {
  if (spill_file_ == nullptr) {
    return data_;
  }
  TCPLAT_CHECK(std::fflush(spill_file_) == 0);
  std::string out;
  out.reserve(spilled_bytes_ + data_.size());
  std::FILE* in = std::fopen(spill_path_.c_str(), "rb");
  TCPLAT_CHECK(in != nullptr);
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    out.append(buf, n);
  }
  std::fclose(in);
  TCPLAT_CHECK(out.size() == spilled_bytes_);
  out += data_;
  return out;
}

std::string SealBinaryTrace(const std::vector<std::string>& host_names,
                            const BinaryTraceWriter& records) {
  std::string out;
  out.reserve(32 + records.TotalBytes());
  out.append(kBinaryTraceMagic, sizeof(kBinaryTraceMagic));
  out.push_back(static_cast<char>(kBinaryTraceVersion & 0xff));
  out.push_back(static_cast<char>(kBinaryTraceVersion >> 8));
  PutVarint(&out, host_names.size());
  for (const std::string& name : host_names) {
    PutVarint(&out, name.size());
    out += name;
  }
  PutVarint(&out, records.count());
  out += records.ConsolidatedRecords();
  return out;
}

bool BinaryRecordCursor::Next(TraceEvent* ev) {
  if (error_ != nullptr || remaining_ == 0) {
    return false;
  }
  int64_t ts_delta = 0;
  if (!GetZigzag(data_, &pos_, &ts_delta)) {
    error_ = "truncated timestamp delta";
    return false;
  }
  uint8_t kind = 0, layer = 0, span = 0, host = 0;
  if (!GetByte(data_, &pos_, &kind) || !GetByte(data_, &pos_, &layer) ||
      !GetByte(data_, &pos_, &span) || !GetByte(data_, &pos_, &host)) {
    error_ = "truncated tag block";
    return false;
  }
  if (kind >= static_cast<uint8_t>(TraceEventKind::kCount)) {
    error_ = "event kind out of range";
    return false;
  }
  if (layer >= static_cast<uint8_t>(TraceLayer::kCount)) {
    error_ = "layer out of range";
    return false;
  }
  if (span >= static_cast<uint8_t>(SpanId::kCount)) {
    error_ = "span id out of range";
    return false;
  }
  uint64_t flow = 0, packet = 0, bytes = 0;
  int64_t dur = 0, self = 0;
  if (!GetVarint(data_, &pos_, &flow) || !GetVarint(data_, &pos_, &packet) ||
      !GetVarint(data_, &pos_, &bytes) || !GetZigzag(data_, &pos_, &dur) ||
      !GetZigzag(data_, &pos_, &self)) {
    error_ = "truncated record payload";
    return false;
  }
  prev_ts_ += ts_delta;
  ev->ts_ns = prev_ts_;
  ev->dur_ns = dur;
  ev->self_ns = self;
  ev->flow = flow;
  ev->packet = packet;
  ev->bytes = bytes;
  ev->kind = static_cast<TraceEventKind>(kind);
  ev->layer = static_cast<TraceLayer>(layer);
  ev->span = static_cast<SpanId>(span);
  ev->host = host;
  --remaining_;
  return true;
}

BinaryTraceReader::BinaryTraceReader(std::string_view blob) {
  size_t pos = 0;
  if (blob.size() < sizeof(kBinaryTraceMagic) + 2) {
    header_error_ = "stream shorter than header";
    return;
  }
  if (blob.compare(0, sizeof(kBinaryTraceMagic),
                   std::string_view(kBinaryTraceMagic, sizeof(kBinaryTraceMagic))) != 0) {
    header_error_ = "bad magic";
    return;
  }
  pos = sizeof(kBinaryTraceMagic);
  const uint16_t version = static_cast<uint16_t>(static_cast<uint8_t>(blob[pos])) |
                           static_cast<uint16_t>(static_cast<uint8_t>(blob[pos + 1]) << 8);
  pos += 2;
  if (version != kBinaryTraceVersion) {
    header_error_ = "unsupported version";
    return;
  }
  uint64_t host_count = 0;
  if (!GetVarint(blob, &pos, &host_count) || host_count > 255) {
    header_error_ = "bad host table";
    return;
  }
  host_names_.reserve(host_count);
  for (uint64_t i = 0; i < host_count; ++i) {
    uint64_t len = 0;
    if (!GetVarint(blob, &pos, &len) || len > blob.size() - pos) {
      header_error_ = "truncated host name";
      host_names_.clear();
      return;
    }
    host_names_.emplace_back(blob.substr(pos, len));
    pos += len;
  }
  if (!GetVarint(blob, &pos, &record_count_)) {
    header_error_ = "truncated record count";
    return;
  }
  ok_ = true;
  cursor_ = BinaryRecordCursor(blob.substr(pos), record_count_);
}

const char* BinaryTraceReader::error_message() const {
  if (header_error_ != nullptr) return header_error_;
  return cursor_.error_message();
}

bool BinaryTraceReader::Next(TraceEvent* ev) {
  if (!ok_) return false;
  if (!cursor_.Next(ev)) return false;
  if (ev->host >= host_names_.size()) {
    // No cursor-level range check covers hosts (the record section has no
    // host table); enforce it here so a corrupt stream can't index past the
    // registered names downstream.
    cursor_ = BinaryRecordCursor(std::string_view(), 0);
    header_error_ = "host id out of range";
    ok_ = false;
    return false;
  }
  return true;
}

bool MergeBinaryShards(const std::vector<BinaryShardStream>& shards, BinaryTraceWriter* out) {
  struct Head {
    BinaryRecordCursor cursor;
    TraceEvent ev;
    bool live = false;
  };
  std::vector<Head> heads;
  heads.reserve(shards.size());
  // Spilled shards are consolidated (spill file + resident bytes) into
  // backing storage that must outlive the cursors; unspilled shards are
  // cursored in place.
  std::vector<std::string> consolidated(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    const BinaryShardStream& s = shards[i];
    TCPLAT_CHECK(s.records != nullptr);
    std::string_view records = s.records->data();
    if (s.records->spilling()) {
      consolidated[i] = s.records->ConsolidatedRecords();
      records = consolidated[i];
    }
    Head h{BinaryRecordCursor(records, s.records->count()), TraceEvent{}, false};
    h.live = h.cursor.Next(&h.ev);
    if (!h.live && h.cursor.error()) return false;
    heads.push_back(std::move(h));
  }
  for (;;) {
    // Linear scan beats a heap here: shard counts are single digits, and the
    // "earliest timestamp, lowest shard index" scan is trivially the same
    // tie-break the serial stable-sort produced.
    size_t best = heads.size();
    for (size_t i = 0; i < heads.size(); ++i) {
      if (!heads[i].live) continue;
      if (best == heads.size() || heads[i].ev.ts_ns < heads[best].ev.ts_ns) {
        best = i;
      }
    }
    if (best == heads.size()) break;
    TraceEvent ev = heads[best].ev;
    const std::vector<uint8_t>* remap = shards[best].host_remap;
    if (remap != nullptr) {
      if (ev.host >= remap->size()) return false;
      ev.host = (*remap)[ev.host];
    }
    out->Append(ev);
    heads[best].live = heads[best].cursor.Next(&heads[best].ev);
    if (!heads[best].live && heads[best].cursor.error()) return false;
  }
  return true;
}

bool DecodeBinaryTrace(std::string_view blob, Tracer* out) {
  BinaryTraceReader reader(blob);
  if (!reader.ok()) return false;
  for (const std::string& name : reader.host_names()) {
    out->RegisterHost(name);
  }
  TraceEvent ev;
  while (reader.Next(&ev)) {
    out->Append(ev);
  }
  return !reader.error();
}

}  // namespace tcplat
