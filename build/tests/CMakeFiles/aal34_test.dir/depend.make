# Empty dependencies file for aal34_test.
# This may be replaced when dependencies are built.
