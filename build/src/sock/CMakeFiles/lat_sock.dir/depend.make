# Empty dependencies file for lat_sock.
# This may be replaced when dependencies are built.
