// Quickstart: bring up the simulated two-DECstation ATM testbed, run a small
// RPC-style echo, and print the round-trip latency with its per-layer
// breakdown — the paper's core measurement in ~30 lines of user code.
//
//   $ ./quickstart            # the measurement
//   $ ./quickstart --trace    # plus a tcpdump-style capture of one echo
//   $ ./quickstart --stats    # plus netstat-style per-layer counters
//
// See examples/rpc_latency.cpp for the configurable version.

#include <cstdio>
#include <cstring>

#include "src/core/rpc_benchmark.h"
#include "src/core/stats_report.h"
#include "src/core/testbed.h"
#include "src/tcp/segment_tap.h"

using namespace tcplat;

int main(int argc, char** argv) {
  const bool trace = argc > 1 && std::strcmp(argv[1], "--trace") == 0;
  const bool stats = argc > 1 && std::strcmp(argv[1], "--stats") == 0;
  // Two DECstation 5000/200s on a private TAXI fiber with FORE TCA-100s.
  TestbedConfig config;
  Testbed testbed(config);

  // The paper's workload: the client sends `size` bytes, the server echoes
  // them, 40000 times (a few hundred suffice in a deterministic simulator).
  RpcOptions options;
  options.size = 200;
  options.iterations = 500;
  const RpcResult result = RunRpcBenchmark(testbed, options);

  std::printf("TCP round-trip for %zu-byte echoes over ATM\n", options.size);
  std::printf("  mean RTT: %.0f us   (paper, Table 1: 1520 us)\n",
              result.MeanRtt().micros());
  std::printf("  min/max:  %.0f / %.0f us over %llu iterations\n\n",
              result.rtt.Min().micros(), result.rtt.Max().micros(),
              static_cast<unsigned long long>(result.rtt.count()));

  std::printf("Where one transfer's time goes (us):\n");
  const struct {
    const char* label;
    SpanId id;
  } rows[] = {
      {"  send:    user/socket layer ", SpanId::kTxUser},
      {"  send:    TCP checksum      ", SpanId::kTxTcpChecksum},
      {"  send:    TCP copy (rexmit) ", SpanId::kTxTcpMcopy},
      {"  send:    TCP protocol      ", SpanId::kTxTcpSegment},
      {"  send:    IP                ", SpanId::kTxIp},
      {"  send:    ATM driver+FIFO   ", SpanId::kTxDriver},
      {"  receive: ATM reassembly    ", SpanId::kRxDriver},
      {"  receive: IP queue wait     ", SpanId::kRxIpq},
      {"  receive: IP                ", SpanId::kRxIp},
      {"  receive: TCP checksum      ", SpanId::kRxTcpChecksum},
      {"  receive: TCP protocol      ", SpanId::kRxTcpSegment},
      {"  receive: process wakeup    ", SpanId::kRxWakeup},
      {"  receive: read()/copyout    ", SpanId::kRxUser},
  };
  for (const auto& row : rows) {
    std::printf("%s %7.1f\n", row.label, result.SpanMean(row.id).micros());
  }

  if (stats) {
    std::printf("\n%s", DumpTestbedReport(testbed).c_str());
  }

  if (trace) {
    // Watch one echo on the wire, tcpdump style.
    Testbed tb{TestbedConfig{}};
    SegmentTap tap;
    tb.client_tcp().set_tap(&tap);
    RpcOptions one;
    one.size = options.size;
    one.iterations = 1;
    one.warmup = 0;
    RunRpcBenchmark(tb, one);
    std::printf("\nOne %zu-byte echo as the client's TCP saw it:\n%s", options.size,
                tap.Dump().c_str());
  }
  return 0;
}
