# Empty dependencies file for rpc_latency.
# This may be replaced when dependencies are built.
