#include "src/udp/udp.h"

#include <cstring>

#include "src/base/check.h"
#include "src/net/byte_order.h"
#include "src/net/checksum.h"

namespace tcplat {

void UdpHeader::Serialize(std::span<uint8_t> out) const {
  TCPLAT_CHECK_GE(out.size(), kUdpHeaderBytes);
  StoreBe16(&out[0], src_port);
  StoreBe16(&out[2], dst_port);
  StoreBe16(&out[4], length);
  StoreBe16(&out[6], checksum);
}

std::optional<UdpHeader> UdpHeader::Parse(std::span<const uint8_t> in) {
  if (in.size() < kUdpHeaderBytes) {
    return std::nullopt;
  }
  UdpHeader h;
  h.src_port = LoadBe16(&in[0]);
  h.dst_port = LoadBe16(&in[2]);
  h.length = LoadBe16(&in[4]);
  h.checksum = LoadBe16(&in[6]);
  return h;
}

Host& UdpSocket::host() { return *host_; }

bool UdpSocket::SendTo(std::span<const uint8_t> data, SockAddr dst) {
  if (data.size() + kUdpHeaderBytes > 65535) {
    return false;
  }
  stack_->Output(this, data, dst);
  return true;
}

size_t UdpSocket::RecvFrom(std::span<uint8_t> out, SockAddr* from) {
  if (queue_.empty()) {
    return 0;  // blocking entry overlaps the wait; uncharged, like Socket
  }
  Cpu& cpu = host_->cpu();
  ScopedSpan user(&host_->tracker(), SpanId::kRxUser);
  cpu.Charge(cpu.profile().syscall_entry);
  cpu.Charge(cpu.profile().soreceive_fixed);

  Datagram d = std::move(queue_.front());
  queue_.pop_front();
  const size_t take = std::min(out.size(), d.payload.size());
  std::memcpy(out.data(), d.payload.data(), take);
  cpu.Charge(d.payload.size() > kClusterThreshold ? cpu.profile().copyout_cluster
                                                  : cpu.profile().copyout_small,
             take);
  if (from != nullptr) {
    *from = d.from;
  }
  cpu.Charge(cpu.profile().syscall_exit);
  return take;
}

UdpStack::UdpStack(IpStack* ip) : ip_(ip) {
  TCPLAT_CHECK(ip != nullptr);
  ip_->RegisterProtocol(kIpProtoUdp, this);

  MetricsRegistry& m = host().metrics();
  if (!m.contains("udp.datagrams_sent")) {
    m.AddCounterView("udp.datagrams_sent", &stats_.datagrams_sent);
    m.AddCounterView("udp.datagrams_received", &stats_.datagrams_received);
    m.AddCounterView("udp.checksum_errors", &stats_.checksum_errors);
    m.AddCounterView("udp.no_port", &stats_.no_port);
    m.AddCounterView("udp.truncated", &stats_.truncated);
    m.AddCounterView("udp.queue_drops", &stats_.queue_drops);
  }
}

UdpSocket* UdpStack::CreateSocket(uint16_t port) {
  if (port == 0) {
    while (ports_.count(next_ephemeral_) != 0) {
      ++next_ephemeral_;
    }
    port = next_ephemeral_++;
  }
  TCPLAT_CHECK(ports_.count(port) == 0) << "UDP port " << port << " already bound";
  auto sock = std::unique_ptr<UdpSocket>(new UdpSocket(this, &host(), port));
  UdpSocket* raw = sock.get();
  ports_[port] = std::move(sock);
  return raw;
}

void UdpStack::Output(UdpSocket* sock, std::span<const uint8_t> data, SockAddr dst) {
  Host& h = host();
  Cpu& cpu = h.cpu();
  MbufPool& pool = h.pool();

  MbufPtr head;
  {
    // sendto(): syscall + copy from user space, as in sosend.
    ScopedSpan user(&h.tracker(), SpanId::kTxUser);
    cpu.Charge(cpu.profile().syscall_entry);
    cpu.Charge(cpu.profile().sosend_fixed);
    head = pool.GetHeader(kMaxLinkHeader + kIpv4HeaderBytes);
    head->Append(kUdpHeaderBytes);  // header filled below
    size_t off = 0;
    const bool clusters = data.size() > kClusterThreshold;
    Mbuf* tail = head.get();
    while (off < data.size()) {
      const size_t tail_space = tail->trailing_space();
      if (tail_space == 0) {
        MbufPtr m = clusters ? pool.GetCluster() : pool.Get();
        tail = m.get();
        ChainAppend(&head, std::move(m));
        continue;
      }
      const size_t take = std::min(tail_space, data.size() - off);
      std::memcpy(tail->Append(take).data(), data.data() + off, take);
      cpu.Charge(tail->is_cluster() ? cpu.profile().copyin_cluster
                                    : cpu.profile().copyin_small,
                 take);
      off += take;
    }
  }

  ScopedSpan proto(&h.tracker(), SpanId::kOther);
  cpu.Charge(cpu.profile().udp_output);
  UdpHeader uh;
  uh.src_port = sock->port();
  uh.dst_port = dst.port;
  uh.length = static_cast<uint16_t>(kUdpHeaderBytes + data.size());
  uh.checksum = 0;
  uh.Serialize(head->bytes());

  if (sock->checksum_enabled()) {
    ScopedSpan cs(&h.tracker(), SpanId::kTxTcpChecksum);
    cpu.Charge(cpu.profile().in_cksum, data.size() + 28, ChainCount(head.get()));
    TcpPseudoHeader ph;  // same layout; protocol differs
    ph.src = ip_->addr();
    ph.dst = dst.addr;
    ph.tcp_length = uh.length;
    auto pseudo = ph.Serialize();
    pseudo[9] = kIpProtoUdp;
    ChecksumAccumulator acc;
    acc.Add(pseudo);
    for (const Mbuf* m = head.get(); m != nullptr; m = m->next()) {
      acc.Add(m->bytes());
    }
    uint16_t ck = acc.Finalize();
    if (ck == 0) {
      ck = 0xFFFF;  // RFC 768: transmitted 0 means "no checksum"
    }
    StoreBe16(head->data() + 6, ck);
  }

  ++stats_.datagrams_sent;
  ip_->Output(std::move(head), ip_->addr(), dst.addr, kIpProtoUdp);
  {
    ScopedSpan exit_span(&h.tracker(), SpanId::kOther);
    cpu.Charge(cpu.profile().syscall_exit);
  }
}

void UdpStack::IpInput(MbufPtr packet, const Ipv4Header& hdr) {
  Host& h = host();
  Cpu& cpu = h.cpu();
  MbufPool& pool = h.pool();
  ScopedSpan proto(&h.tracker(), SpanId::kOther);
  cpu.Charge(cpu.profile().udp_input);

  const size_t udp_len = hdr.total_length - kIpv4HeaderBytes;
  if (udp_len < kUdpHeaderBytes) {
    ++stats_.truncated;
    pool.FreeChain(std::move(packet));
    return;
  }
  // Locate the UDP header past the IP header.
  std::array<uint8_t, kUdpHeaderBytes> hdr_bytes;
  ChainCopyOut(packet.get(), kIpv4HeaderBytes, hdr_bytes);
  auto uh = UdpHeader::Parse(hdr_bytes);
  TCPLAT_CHECK(uh.has_value());
  if (uh->length < kUdpHeaderBytes || uh->length > udp_len) {
    ++stats_.truncated;
    pool.FreeChain(std::move(packet));
    return;
  }

  if (uh->checksum != 0) {
    // Verify only when the sender computed one (checksum 0 = "off").
    ScopedSpan cs(&h.tracker(), SpanId::kRxTcpChecksum);
    cpu.Charge(cpu.profile().in_cksum, uh->length - kUdpHeaderBytes + 28,
               ChainCount(packet.get()));
    TcpPseudoHeader ph;
    ph.src = hdr.src;
    ph.dst = hdr.dst;
    ph.tcp_length = uh->length;
    auto pseudo = ph.Serialize();
    pseudo[9] = kIpProtoUdp;
    ChecksumAccumulator acc;
    acc.Add(pseudo);
    size_t skip = kIpv4HeaderBytes;
    size_t remain = uh->length;
    for (const Mbuf* m = packet.get(); m != nullptr && remain > 0; m = m->next()) {
      if (skip >= m->len()) {
        skip -= m->len();
        continue;
      }
      const size_t take = std::min(m->len() - skip, remain);
      acc.Add(m->bytes().subspan(skip, take));
      skip = 0;
      remain -= take;
    }
    if (acc.Finalize() != 0) {
      ++stats_.checksum_errors;
      pool.FreeChain(std::move(packet));
      return;
    }
  }

  auto it = ports_.find(uh->dst_port);
  if (it == ports_.end()) {
    ++stats_.no_port;
    pool.FreeChain(std::move(packet));
    return;
  }
  UdpSocket* sock = it->second.get();
  if (sock->queue_.size() >= UdpSocket::kMaxQueued) {
    ++stats_.queue_drops;
    pool.FreeChain(std::move(packet));
    return;
  }

  UdpSocket::Datagram d;
  d.from = SockAddr{hdr.src, uh->src_port};
  d.payload.resize(uh->length - kUdpHeaderBytes);
  ChainCopyOut(packet.get(), kIpv4HeaderBytes + kUdpHeaderBytes, d.payload);
  pool.FreeChain(std::move(packet));
  sock->queue_.push_back(std::move(d));
  ++stats_.datagrams_received;
  cpu.Charge(cpu.profile().sorwakeup);
  h.Wakeup(sock->chan_);
}

}  // namespace tcplat
