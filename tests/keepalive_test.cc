// Tests for TCP keepalive: probes keep a live-but-idle connection open,
// a vanished peer is detected and dropped, and the feature stays inert
// when disabled.

#include <gtest/gtest.h>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/os/task.h"

namespace tcplat {
namespace {

struct IdlePair {
  Socket* client = nullptr;
  Socket* server = nullptr;
  bool established = false;
};

// Connects and then both sides simply hold the socket open, forever idle.
SimTask IdleServer(Testbed* tb, IdlePair* pair) {
  Socket* listener = tb->server_tcp().Listen(kEchoPort);
  while (pair->server == nullptr) {
    pair->server = listener->Accept();
    if (pair->server == nullptr) {
      co_await listener->WaitAcceptable();
    }
  }
}

SimTask IdleClient(Testbed* tb, IdlePair* pair) {
  Socket* s = tb->client_tcp().Connect(SockAddr{kServerAddr, kEchoPort});
  pair->client = s;
  while (!s->connected() && !s->has_error()) {
    co_await s->WaitConnected();
  }
  pair->established = s->connected();
}

TestbedConfig KeepaliveConfig() {
  TestbedConfig cfg;
  cfg.tcp.keepalive = true;
  cfg.tcp.keepalive_idle = SimDuration::FromSeconds(2);
  cfg.tcp.keepalive_interval = SimDuration::FromSeconds(1);
  cfg.tcp.keepalive_probes = 3;
  return cfg;
}

TEST(Keepalive, IdleConnectionSurvivesWhenPeerAnswers) {
  Testbed tb(KeepaliveConfig());
  IdlePair pair;
  tb.server_host().Spawn("idle-server", IdleServer(&tb, &pair));
  tb.client_host().Spawn("idle-client", IdleClient(&tb, &pair));
  // Let a minute of idle time pass: many probe rounds.
  tb.sim().RunUntil(SimTime::FromSeconds(60));
  ASSERT_TRUE(pair.established);
  EXPECT_GT(tb.client_tcp().stats().keepalive_probes_sent +
                tb.server_tcp().stats().keepalive_probes_sent,
            10u);
  EXPECT_EQ(tb.client_tcp().stats().keepalive_drops, 0u);
  EXPECT_EQ(tb.server_tcp().stats().keepalive_drops, 0u);
  EXPECT_TRUE(pair.client->connected()) << "answered probes must not kill the connection";
  EXPECT_FALSE(pair.client->has_error());
}

TEST(Keepalive, VanishedPeerIsDetectedAndDropped) {
  Testbed tb(KeepaliveConfig());
  IdlePair pair;
  tb.server_host().Spawn("idle-server", IdleServer(&tb, &pair));
  tb.client_host().Spawn("idle-client", IdleClient(&tb, &pair));
  tb.sim().RunUntil(SimTime::FromMillis(100));  // handshake completes
  ASSERT_TRUE(pair.established);

  // The fiber goes dark in both directions: every cell is destroyed.
  tb.atm_link()->dir(0).set_corrupt_hook([](std::vector<uint8_t>& c) { c[10] ^= 0xFF; });
  tb.atm_link()->dir(1).set_corrupt_hook([](std::vector<uint8_t>& c) { c[10] ^= 0xFF; });

  tb.sim().RunUntil(SimTime::FromSeconds(60));
  EXPECT_GE(tb.client_tcp().stats().keepalive_probes_sent, 3u);
  EXPECT_GE(tb.client_tcp().stats().keepalive_drops, 1u);
  EXPECT_TRUE(pair.client->has_error()) << "the dead connection must be reported";
}

TEST(Keepalive, DisabledMeansForeverIdle) {
  TestbedConfig cfg;  // keepalive off by default
  Testbed tb(cfg);
  IdlePair pair;
  tb.server_host().Spawn("idle-server", IdleServer(&tb, &pair));
  tb.client_host().Spawn("idle-client", IdleClient(&tb, &pair));
  tb.sim().RunUntil(SimTime::FromSeconds(120));
  ASSERT_TRUE(pair.established);
  EXPECT_EQ(tb.client_tcp().stats().keepalive_probes_sent, 0u);
  EXPECT_TRUE(pair.client->connected());
  // Nothing is pending: a fully idle connection generates no events at all.
  EXPECT_EQ(tb.sim().pending_events(), 0u);
}

TEST(Keepalive, ProbesDoNotDisturbActiveTraffic) {
  Testbed tb(KeepaliveConfig());
  RpcOptions opt;
  opt.size = 500;
  opt.iterations = 100;
  const RpcResult r = RunRpcBenchmark(tb, opt);
  EXPECT_EQ(r.data_mismatches, 0u);
  // Active exchanges reset the idle timer continuously: no probes fire
  // while the echo loop runs (the iterations are microseconds apart).
  EXPECT_EQ(tb.client_tcp().stats().keepalive_probes_sent, 0u);
}

}  // namespace
}  // namespace tcplat
