#include "src/trace/tracer.h"

#include <algorithm>
#include <cinttypes>
#include <cstddef>
#include <cstdio>

#include "src/base/check.h"

namespace tcplat {
namespace {

// Perfetto timestamps are microseconds; emit them as exact fixed-point
// strings (ns resolution) so traces are byte-stable across platforms.
void AppendMicros(std::string* out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
  out->append(buf);
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

// Track (Perfetto tid) layout within each host's process.
constexpr int kTidSpans = 0;      // nested B/E charge-attributed spans
constexpr int kTidIntervals = 1;  // wall-interval spans (X events)
constexpr int kTidPackets = 2;    // packet-lifecycle instants

// Name tables are indexed by enum value, one entry per enumerator, so a new
// layer/kind without a name is a compile error instead of an empty string in
// CSV/Perfetto exports.
constexpr std::array<std::string_view, static_cast<size_t>(TraceLayer::kCount)> kLayerNames = {
    "sock", "tcp", "ip", "atm", "ether", "link", "sched"};

constexpr std::array<std::string_view, static_cast<size_t>(TraceEventKind::kCount)> kKindNames = {
    "span.begin", "span.end", "span.interval", "span.reset",
    "user.write", "user.read", "wakeup",
    "seg.tx", "seg.rx", "retransmit", "ack", "delayed.ack", "listen.overflow",
    "checksum.error", "drop",
    "enqueue", "dequeue", "pkt.tx", "pkt.rx",
    "pdu.tx", "pdu.rx", "cell.drop", "tx.stall", "cell.switch",
    "frame.tx", "frame.rx",
    "impair.drop", "impair.dup", "impair.delay"};

template <size_t N>
constexpr bool AllDistinctNonEmpty(const std::array<std::string_view, N>& names) {
  for (size_t i = 0; i < N; ++i) {
    if (names[i].empty()) return false;
    for (size_t j = i + 1; j < N; ++j) {
      if (names[i] == names[j]) return false;
    }
  }
  return true;
}
static_assert(AllDistinctNonEmpty(kLayerNames), "every TraceLayer needs a unique name");
static_assert(AllDistinctNonEmpty(kKindNames), "every TraceEventKind needs a unique name");

// One trace_event object for `ev`, no separators — shared by the full-trace
// and anomaly exporters so both stay byte-stable and format-identical.
void AppendEventJson(std::string* out, const TraceEvent& ev) {
  char buf[256];
  const int pid = ev.host;
  switch (ev.kind) {
    case TraceEventKind::kSpanBegin:
      std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":",
                    std::string(SpanName(ev.span)).c_str(), pid, kTidSpans);
      *out += buf;
      AppendMicros(out, ev.ts_ns);
      *out += "}";
      break;
    case TraceEventKind::kSpanEnd:
      std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":",
                    std::string(SpanName(ev.span)).c_str(), pid, kTidSpans);
      *out += buf;
      AppendMicros(out, ev.ts_ns);
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"self_ns\":%" PRId64 "}}", ev.self_ns);
      *out += buf;
      break;
    case TraceEventKind::kSpanInterval:
      std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":",
                    std::string(SpanName(ev.span)).c_str(), pid, kTidIntervals);
      *out += buf;
      AppendMicros(out, ev.ts_ns - ev.dur_ns);
      *out += ",\"dur\":";
      AppendMicros(out, ev.dur_ns);
      *out += "}";
      break;
    case TraceEventKind::kSpanReset:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"span.reset\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                    "\"ts\":",
                    pid, kTidSpans);
      *out += buf;
      AppendMicros(out, ev.ts_ns);
      *out += "}";
      break;
    default:
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s.%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":",
                    std::string(TraceLayerName(ev.layer)).c_str(),
                    std::string(TraceEventKindName(ev.kind)).c_str(), pid, kTidPackets);
      *out += buf;
      AppendMicros(out, ev.ts_ns);
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"flow\":%" PRIu64 ",\"packet\":%" PRIu64 ",\"bytes\":%" PRIu64
                    ",\"dur_ns\":%" PRId64 "}}",
                    ev.flow, ev.packet, ev.bytes, ev.dur_ns);
      *out += buf;
      break;
  }
}

// Shared process/track-name metadata prologue for both exporters.
void AppendProcessMetadata(std::string* out, const std::vector<std::string>& host_names,
                           bool* first) {
  char buf[256];
  for (size_t pid = 0; pid < host_names.size(); ++pid) {
    if (!*first) *out += ",\n";
    *first = false;
    *out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    *out += std::to_string(pid);
    *out += ",\"args\":{\"name\":\"";
    AppendEscaped(out, host_names[pid]);
    *out += "\"}}";
    static constexpr std::string_view kTrackNames[] = {"spans", "intervals", "packets"};
    for (int tid = 0; tid < 3; ++tid) {
      if (!*first) *out += ",\n";
      *first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%zu,\"tid\":%d,"
                    "\"args\":{\"name\":\"%s\"}}",
                    pid, tid, std::string(kTrackNames[tid]).c_str());
      *out += buf;
    }
  }
}

}  // namespace

std::string_view TraceLayerName(TraceLayer layer) {
  const auto i = static_cast<size_t>(layer);
  return i < kLayerNames.size() ? kLayerNames[i] : "?";
}

std::string_view TraceEventKindName(TraceEventKind kind) {
  const auto i = static_cast<size_t>(kind);
  return i < kKindNames.size() ? kKindNames[i] : "?";
}

uint8_t Tracer::RegisterHost(std::string name) {
  TCPLAT_CHECK_LT(host_names_.size(), 255u) << "too many traced hosts";
  host_names_.push_back(std::move(name));
  return static_cast<uint8_t>(host_names_.size() - 1);
}

std::array<int64_t, static_cast<size_t>(SpanId::kCount)> Tracer::SpanSelfTotalsNanos(
    uint8_t host) const {
  std::array<int64_t, static_cast<size_t>(SpanId::kCount)> totals{};
  for (const TraceEvent& ev : events_) {
    if (ev.host != host) {
      continue;
    }
    switch (ev.kind) {
      case TraceEventKind::kSpanReset:
        totals.fill(0);
        break;
      case TraceEventKind::kSpanEnd:
        totals[static_cast<size_t>(ev.span)] += ev.self_ns;
        break;
      case TraceEventKind::kSpanInterval:
        totals[static_cast<size_t>(ev.span)] += ev.dur_ns;
        break;
      default:
        break;
    }
  }
  return totals;
}

std::string Tracer::ToPerfettoJson() const {
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  AppendProcessMetadata(&out, host_names_, &first);
  for (const TraceEvent& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    AppendEventJson(&out, ev);
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::IsTrigger(const TraceEvent& ev) const {
  switch (ev.kind) {
    case TraceEventKind::kRetransmit:
      return flight_.on_retransmit;
    case TraceEventKind::kCellDrop:
      return flight_.on_cell_drop;
    case TraceEventKind::kTxStall:
      return flight_.on_tx_stall && ev.dur_ns >= flight_.tx_stall_threshold_ns;
    case TraceEventKind::kListenOverflow:
      return flight_.on_listen_overflow;
    case TraceEventKind::kImpairDrop:
      return flight_.on_impair_drop;
    default:
      return false;
  }
}

void Tracer::CommitToRing(const TraceEvent& ev) {
  ++commit_seq_;
  ring_.push_back(ev);
  while (ring_.size() > flight_.ring_capacity) {
    ring_.pop_front();
  }
  if (!IsTrigger(ev)) {
    return;
  }
  ++anomalies_seen_;
  if (anomalies_.size() >= flight_.max_anomalies) {
    return;
  }
  AnomalyRecord rec;
  rec.trigger_seq = commit_seq_;
  rec.trigger = ev;
  const size_t n = std::min(ring_.size(), flight_.context_events);
  rec.context.assign(ring_.end() - static_cast<ptrdiff_t>(n), ring_.end());
  anomalies_.push_back(std::move(rec));
}

std::string Tracer::AnomaliesToPerfettoJson() const {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  AppendProcessMetadata(&out, host_names_, &first);
  char buf[256];
  // Overlapping context windows would repeat events; track the last emitted
  // commit ordinal and skip duplicates (context seqs are contiguous and end
  // at the trigger's).
  uint64_t emitted_through = 0;
  for (const AnomalyRecord& rec : anomalies_) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"anomaly.%s.%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":",
                  std::string(TraceLayerName(rec.trigger.layer)).c_str(),
                  std::string(TraceEventKindName(rec.trigger.kind)).c_str(),
                  static_cast<int>(rec.trigger.host), kTidPackets);
    out += buf;
    AppendMicros(&out, rec.trigger.ts_ns);
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"seq\":%" PRIu64 "}}", rec.trigger_seq);
    out += buf;
    const uint64_t first_seq = rec.trigger_seq - rec.context.size() + 1;
    for (size_t i = 0; i < rec.context.size(); ++i) {
      const uint64_t seq = first_seq + i;
      if (seq <= emitted_through) {
        continue;
      }
      out += ",\n";
      AppendEventJson(&out, rec.context[i]);
    }
    emitted_through = rec.trigger_seq;
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::ToCsv() const {
  std::string out = "ts_ns,host,layer,kind,span,dur_ns,self_ns,flow,packet,bytes\n";
  out.reserve(out.size() + events_.size() * 64);
  char buf[256];
  for (const TraceEvent& ev : events_) {
    const bool is_span = ev.kind == TraceEventKind::kSpanBegin ||
                         ev.kind == TraceEventKind::kSpanEnd ||
                         ev.kind == TraceEventKind::kSpanInterval;
    std::snprintf(buf, sizeof(buf),
                  "%" PRId64 ",%s,%s,%s,%s,%" PRId64 ",%" PRId64 ",%" PRIu64 ",%" PRIu64
                  ",%" PRIu64 "\n",
                  ev.ts_ns,
                  ev.host < host_names_.size() ? host_names_[ev.host].c_str() : "?",
                  std::string(TraceLayerName(ev.layer)).c_str(),
                  std::string(TraceEventKindName(ev.kind)).c_str(),
                  is_span ? std::string(SpanName(ev.span)).c_str() : "",
                  ev.dur_ns, ev.self_ns, ev.flow, ev.packet, ev.bytes);
    out += buf;
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(path.c_str());
    return false;
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "short write: %s\n", path.c_str());
  }
  return ok;
}

}  // namespace tcplat
