// Tests for the named-metrics registry: counters, gauges, log-bucketed
// histograms, views over live stats structs, and deterministic export.

#include <gtest/gtest.h>

#include <string>

#include "src/trace/metrics.h"

namespace tcplat {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketIndexIsLogBase2) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  for (int i = 1; i < Histogram::kBuckets; ++i) {
    // Lower bound of bucket i lands in bucket i.
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i) << i;
  }
}

TEST(Histogram, MomentsAndBuckets) {
  Histogram h;
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.Add(0);
  h.Add(5);
  h.Add(5);
  h.Add(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1010);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 2u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(1000)), 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
}

TEST(Histogram, PercentileUpperBound) {
  Histogram h;
  EXPECT_EQ(h.PercentileUpperBound(50), 0);
  for (int i = 0; i < 99; ++i) {
    h.Add(10);  // bucket [8,16)
  }
  h.Add(100000);  // bucket [65536,131072)
  EXPECT_EQ(h.PercentileUpperBound(50), 16);
  EXPECT_EQ(h.PercentileUpperBound(99), 16);
  EXPECT_EQ(h.PercentileUpperBound(100), 131072);
}

TEST(MetricsRegistry, OwnedMetricsAreStableAndFindable) {
  MetricsRegistry m;
  Counter& c = m.counter("tcp.test_counter");
  c.Increment(3);
  EXPECT_EQ(m.counter("tcp.test_counter").value(), 3u);
  m.gauge("sock.depth").Set(-2);
  m.histogram("ip.wait_ns").Add(100);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.contains("sock.depth"));
  EXPECT_FALSE(m.contains("sock.missing"));
}

TEST(MetricsRegistry, ViewsTrackTheLiveField) {
  MetricsRegistry m;
  uint64_t sent = 0;
  int64_t in_use = 0;
  m.AddCounterView("tcp.segs_sent", &sent);
  m.AddGaugeView("mbuf.in_use", &in_use);

  sent = 17;
  in_use = -4;
  bool saw_counter = false;
  bool saw_gauge = false;
  for (const MetricsRegistry::Sample& s : m.Snapshot()) {
    if (s.name == "tcp.segs_sent") {
      saw_counter = true;
      EXPECT_EQ(s.type, "counter");
      EXPECT_EQ(s.value, 17);
    }
    if (s.name == "mbuf.in_use") {
      saw_gauge = true;
      EXPECT_EQ(s.type, "gauge");
      EXPECT_EQ(s.value, -4);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry m;
  m.counter("zeta");
  m.counter("alpha");
  m.counter("mid");
  const auto snap = m.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
}

TEST(MetricsRegistry, ExportFormats) {
  MetricsRegistry m;
  m.counter("a.count").Increment(2);
  m.histogram("b.wait_ns").Add(1000);
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"b.wait_ns\""), std::string::npos);
  const std::string csv = m.ToCsv();
  EXPECT_NE(csv.find("a.count"), std::string::npos);
}

using MetricsDeathTest = ::testing::Test;

TEST(MetricsDeathTest, DuplicateNameDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry m;
  uint64_t v = 0;
  m.AddCounterView("dup", &v);
  EXPECT_DEATH(m.AddCounterView("dup", &v), "duplicate metric");
}

TEST(MetricsDeathTest, TypeMismatchDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry m;
  m.counter("x");
  EXPECT_DEATH(m.histogram("x"), "type mismatch");
}

}  // namespace
}  // namespace tcplat
