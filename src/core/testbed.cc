#include "src/core/testbed.h"

namespace tcplat {

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)), sim_(config_.seed) {
  client_host_ = std::make_unique<Host>(&sim_, "client", config_.profile);
  server_host_ = std::make_unique<Host>(&sim_, "server", config_.profile);
  client_ip_ = std::make_unique<IpStack>(client_host_.get(), kClientAddr);
  server_ip_ = std::make_unique<IpStack>(server_host_.get(), kServerAddr);

  if (config_.network == NetworkKind::kAtm) {
    atm_link_ = std::make_unique<DuplexLink>(&sim_, kTaxiBitsPerSecond, config_.propagation);
    client_adapter_ = std::make_unique<Tca100>(client_host_.get(), &atm_link_->dir(0));
    server_adapter_ = std::make_unique<Tca100>(server_host_.get(), &atm_link_->dir(1));
    uint16_t client_vci = 42;
    uint16_t server_vci = 42;
    if (config_.switched) {
      // Host fibers terminate at the switch; per-direction VCs route
      // through it (client sends on 42, server on 43).
      server_vci = 43;
      atm_switch_ = std::make_unique<AtmSwitch>(&sim_, kTaxiBitsPerSecond,
                                                config_.propagation, config_.switch_latency);
      atm_switch_->AttachOutput(0, client_adapter_.get());
      atm_switch_->AttachOutput(1, server_adapter_.get());
      atm_switch_->AddRoute(client_vci, 1);
      atm_switch_->AddRoute(server_vci, 0);
      client_adapter_->ConnectSink(atm_switch_->input(0));
      server_adapter_->ConnectSink(atm_switch_->input(1));
    } else {
      client_adapter_->ConnectPeer(server_adapter_.get());
      server_adapter_->ConnectPeer(client_adapter_.get());
    }
    client_atm_if_ =
        std::make_unique<AtmNetIf>(client_ip_.get(), client_adapter_.get(), client_vci);
    server_atm_if_ =
        std::make_unique<AtmNetIf>(server_ip_.get(), server_adapter_.get(), server_vci);
    const bool integrated = config_.tcp.checksum == ChecksumMode::kCombined;
    client_atm_if_->set_rx_integrated_checksum(integrated);
    server_atm_if_->set_rx_integrated_checksum(integrated);
  } else {
    ether_segment_ = std::make_unique<EtherSegment>(&sim_, config_.propagation);
    const MacAddr client_mac{0x02, 0, 0, 0, 0, 1};
    const MacAddr server_mac{0x02, 0, 0, 0, 0, 2};
    client_ether_if_ =
        std::make_unique<EtherNetIf>(client_ip_.get(), client_host_.get(), ether_segment_.get(),
                                     client_mac);
    server_ether_if_ =
        std::make_unique<EtherNetIf>(server_ip_.get(), server_host_.get(), ether_segment_.get(),
                                     server_mac);
    client_ether_if_->AddRoute(kServerAddr, server_mac);
    server_ether_if_->AddRoute(kClientAddr, client_mac);
  }

  client_tcp_ = std::make_unique<TcpStack>(client_ip_.get(), config_.tcp);
  server_tcp_ = std::make_unique<TcpStack>(server_ip_.get(), config_.tcp);
  client_tcp_->AddBackgroundPcbs(config_.background_pcbs);
  server_tcp_->AddBackgroundPcbs(config_.background_pcbs);
  client_udp_ = std::make_unique<UdpStack>(client_ip_.get());
  server_udp_ = std::make_unique<UdpStack>(server_ip_.get());
}

void Testbed::AttachTracer(Tracer* tracer) {
  client_host_->AttachTracer(tracer);
  server_host_->AttachTracer(tracer);
  if (atm_switch_ != nullptr) {
    if (tracer != nullptr) {
      atm_switch_->AttachTracer(tracer, tracer->RegisterHost("switch"));
    } else {
      atm_switch_->AttachTracer(nullptr, 0);
    }
  }
}

void Testbed::ResetTrackers() {
  client_host_->tracker().Reset();
  server_host_->tracker().Reset();
}

SimDuration Testbed::SpanTotal(SpanId id) const {
  return client_host_->tracker().total(id) + server_host_->tracker().total(id);
}

}  // namespace tcplat
