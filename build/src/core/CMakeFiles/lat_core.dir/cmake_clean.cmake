file(REMOVE_RECURSE
  "CMakeFiles/lat_core.dir/routed_testbed.cc.o"
  "CMakeFiles/lat_core.dir/routed_testbed.cc.o.d"
  "CMakeFiles/lat_core.dir/rpc_benchmark.cc.o"
  "CMakeFiles/lat_core.dir/rpc_benchmark.cc.o.d"
  "CMakeFiles/lat_core.dir/stats_report.cc.o"
  "CMakeFiles/lat_core.dir/stats_report.cc.o.d"
  "CMakeFiles/lat_core.dir/table.cc.o"
  "CMakeFiles/lat_core.dir/table.cc.o.d"
  "CMakeFiles/lat_core.dir/testbed.cc.o"
  "CMakeFiles/lat_core.dir/testbed.cc.o.d"
  "liblat_core.a"
  "liblat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
