// Wall-clock self-benchmark: the perf trajectory of the simulator itself.
//
// The paper is a study of where cycles go; this binary applies the same
// discipline to our own harness. It measures, in real (wall-clock) time:
//
//   1. raw event-queue throughput — dispatched events/sec for a
//      self-rescheduling chain, and schedule+cancel pairs/sec for the
//      TCP-timer-like churn pattern that motivated the O(1) cancel path;
//   2. end-to-end simulator throughput — RPC round-trips/sec and simulated
//      events/sec for a standard 1400-byte ATM echo run;
//   3. experiment-grid throughput — the paper's 8-size sweep run serially
//      vs through the parallel executor, with the speedup and a check that
//      both produce identical measurements.
//
// Results go to BENCH_perf.json (override with --out PATH) so successive
// PRs can track the trend. --quick shrinks iteration counts for the
// `ctest -L perf` smoke; wall-clock numbers are only meaningful from a
// Release (-O2) build on an otherwise idle machine.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_flags.h"
#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"
#include "src/sim/simulator.h"
#include "src/trace/tracer.h"
#include "src/workload/capacity.h"
#include "src/workload/interactive.h"

namespace tcplat {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// 1a. Pure dispatch: one self-rescheduling chain, the event loop's floor.
double MeasureDispatchRate(uint64_t events) {
  Simulator sim;
  uint64_t remaining = events;
  std::function<void()> chain = [&] {
    if (--remaining > 0) {
      sim.Schedule(SimDuration::FromNanos(100), chain);
    }
  };
  sim.Schedule(SimDuration::FromNanos(100), chain);
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunToCompletion();
  return static_cast<double>(events) / SecondsSince(t0);
}

// 1b. Timer churn: every dispatched event schedules a batch of timers far in
// the future and cancels the previous batch — the retransmit/delack pattern
// where almost every scheduled event dies by cancellation.
double MeasureCancelRate(uint64_t pairs) {
  Simulator sim;
  constexpr int kBatch = 8;
  std::vector<EventId> pending;
  uint64_t scheduled = 0;
  std::function<void()> tick = [&] {
    for (EventId id : pending) {
      sim.Cancel(id);
    }
    pending.clear();
    if (scheduled >= pairs) {
      return;
    }
    for (int i = 0; i < kBatch; ++i) {
      pending.push_back(
          sim.Schedule(SimDuration::FromMillis(200 + i), [] {}));
      ++scheduled;
    }
    sim.Schedule(SimDuration::FromMicros(10), tick);
  };
  sim.Schedule(SimDuration::FromMicros(10), tick);
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunToCompletion();
  return static_cast<double>(scheduled) / SecondsSince(t0);
}

struct RpcRate {
  double round_trips_per_sec = 0;
  double sim_events_per_sec = 0;
};

// 2. A full testbed run: protocol stacks, mbuf churn, spans, the lot.
// `tracer` (optional) is attached before the run — pass one with recording
// disabled to price the hook sites themselves.
RpcRate MeasureRpcRate(int iterations, Tracer* tracer = nullptr) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  if (tracer != nullptr) {
    tb.AttachTracer(tracer);
  }
  RpcOptions opt;
  opt.size = 1400;
  opt.iterations = iterations;
  const auto t0 = std::chrono::steady_clock::now();
  RunRpcBenchmark(tb, opt);
  const double wall = SecondsSince(t0);
  RpcRate out;
  out.round_trips_per_sec = static_cast<double>(iterations) / wall;
  out.sim_events_per_sec = static_cast<double>(tb.sim().events_dispatched()) / wall;
  return out;
}

// Tracing must cost nothing when off: every hook is a pointer test in
// Host::TracePacket plus an `enabled_` test in the Tracer. Best-of-3 on
// each side to shave scheduler noise; the acceptance bar is <= 2%.
double MeasureTraceDisabledOverheadPct(int iterations) {
  double base = 0;
  double hooked = 0;
  for (int rep = 0; rep < 3; ++rep) {
    base = std::max(base, MeasureRpcRate(iterations).sim_events_per_sec);
    Tracer tracer;
    tracer.set_enabled(false);
    hooked = std::max(hooked, MeasureRpcRate(iterations, &tracer).sim_events_per_sec);
  }
  return 100.0 * (base - hooked) / base;
}

// 2b. Multi-flow workload throughput: one 64-flow capacity cell (the
// bench/capacity workhorse), timed wall-clock.
struct CapacityRate {
  double flows_per_sec = 0;
  double sim_events_per_sec = 0;
  int flows = 0;
};

CapacityCell StandardCapacityCell(bool quick) {
  CapacityCell cell;
  cell.flows = 64;
  cell.size = 200;
  cell.iterations = quick ? 5 : 25;
  cell.warmup = 2;
  return cell;
}

CapacityRate MeasureCapacityRate(bool quick) {
  const CapacityCell cell = StandardCapacityCell(quick);
  const auto t0 = std::chrono::steady_clock::now();
  const CapacityOutcome out = RunCapacityCell(cell);
  const double wall = SecondsSince(t0);
  CapacityRate rate;
  rate.flows = cell.flows;
  rate.flows_per_sec = static_cast<double>(cell.flows) / wall;
  rate.sim_events_per_sec = static_cast<double>(out.sim_events) / wall;
  return rate;
}

// 2d. Interactive pathological latencies. These are *simulated* quantities
// (identical every run, any thread count), recorded so the regression gate
// can hold a ceiling on them: the delack cell's p50 must stay pinned to the
// 200 ms timer, and the nodelay/delack-off cells must stay at wire scale —
// a protocol change that re-arms (or widens) the pathology moves these
// before any test notices. Iteration count is fixed regardless of --quick
// so the smoke and the baseline refresh produce the same numbers.
struct InteractiveLatencies {
  double delack_p50_us = 0;
  double delack_p99_us = 0;
  double nodelay_p99_us = 0;
  double delackoff_p99_us = 0;
};

InteractiveLatencies MeasureInteractiveLatencies() {
  const auto run = [](InteractiveKnob knob) {
    InteractiveCell cell;
    cell.knob = knob;
    cell.iterations = 16;
    cell.warmup = 2;
    return RunInteractiveCell(cell);
  };
  const InteractiveOutcome delack = run(InteractiveKnob::kPathological);
  const InteractiveOutcome nodelay = run(InteractiveKnob::kNodelay);
  const InteractiveOutcome delackoff = run(InteractiveKnob::kDelackOff);
  InteractiveLatencies out;
  out.delack_p50_us = delack.p50.micros();
  out.delack_p99_us = delack.p99.micros();
  out.nodelay_p99_us = nodelay.p99.micros();
  out.delackoff_p99_us = delackoff.p99.micros();
  return out;
}

// 2c. The same 64-flow cell on the sharded engine: the headline single-run
// parallelism metric. Runs once on one thread and once on `threads`, checks
// the outcomes are bit-identical (thread count must never leak into
// results), and reports the multi-thread rate.
struct ShardedCapacityRate {
  double sim_events_per_sec = 0;
  int shard_count = 0;  // host shards + the switch's own shard
  unsigned threads = 0;
  bool identical = true;
};

ShardedCapacityRate MeasureShardedCapacityRate(bool quick, unsigned threads) {
  constexpr int kHostShards = 3;
  const auto run = [&](unsigned shard_threads, double* wall) {
    CapacityCell cell = StandardCapacityCell(quick);
    cell.shards = kHostShards;
    cell.shard_threads = shard_threads;
    const auto t0 = std::chrono::steady_clock::now();
    const CapacityOutcome out = RunCapacityCell(cell);
    *wall = SecondsSince(t0);
    return out;
  };
  double wall_one = 0;
  double wall_many = 0;
  const CapacityOutcome one = run(1, &wall_one);
  const CapacityOutcome many = run(threads, &wall_many);

  ShardedCapacityRate rate;
  rate.shard_count = kHostShards + 1;
  rate.threads = threads;
  rate.identical = one.samples == many.samples && one.mean == many.mean &&
                   one.p50 == many.p50 && one.p99 == many.p99 &&
                   one.completed == many.completed &&
                   one.max_concurrent == many.max_concurrent &&
                   one.sim_elapsed == many.sim_elapsed && one.sim_events == many.sim_events;
  rate.sim_events_per_sec = static_cast<double>(many.sim_events) / wall_many;
  return rate;
}

// 3. The paper's 8-size sweep, serial vs parallel.
struct GridTiming {
  double serial_sec = 0;
  double parallel_sec = 0;
  unsigned jobs = 0;
  bool identical = true;
};

RpcResult RunGridCell(size_t size, int iterations) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  opt.iterations = iterations;
  return RunRpcBenchmark(tb, opt);
}

GridTiming MeasureGrid(int iterations, unsigned jobs) {
  GridTiming out;
  out.jobs = jobs;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<RpcResult> serial;
  for (size_t size : paper::kSizes) {
    serial.push_back(RunGridCell(size, iterations));
  }
  out.serial_sec = SecondsSince(t0);

  Executor ex(jobs);
  std::vector<std::function<RpcResult()>> thunks;
  for (size_t size : paper::kSizes) {
    thunks.emplace_back([size, iterations] { return RunGridCell(size, iterations); });
  }
  const auto t1 = std::chrono::steady_clock::now();
  const auto outcomes = ex.Run<RpcResult>(thunks);
  out.parallel_sec = SecondsSince(t1);

  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok() ||
        outcomes[i].value->MeanRtt().nanos() != serial[i].MeanRtt().nanos()) {
      out.identical = false;
    }
  }
  return out;
}

int Run(bool quick, const std::string& out_path) {
  const uint64_t chain_events = quick ? 200'000 : 2'000'000;
  const uint64_t cancel_pairs = quick ? 200'000 : 2'000'000;
  const int rpc_iters = quick ? 200 : 2'000;
  const int grid_iters = quick ? 50 : 400;
  // The acceptance grid: 8 configs, on up to 8 workers but never more than
  // the machine has cores — running 8 threads on 1 core measured pure
  // oversubscription (the old baseline's 0.8x "speedup"). The JSON records
  // hardware_concurrency so the number can be read in context.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned jobs = std::min(8u, hw);

  std::printf("perf_selfcheck (%s mode; wall-clock numbers need a Release build)\n\n",
              quick ? "quick" : "full");

  const double dispatch_rate = MeasureDispatchRate(chain_events);
  std::printf("event dispatch      : %12.0f events/sec (%llu-event chain)\n", dispatch_rate,
              static_cast<unsigned long long>(chain_events));

  const double cancel_rate = MeasureCancelRate(cancel_pairs);
  std::printf("schedule+cancel     : %12.0f pairs/sec  (timer churn)\n", cancel_rate);

  const RpcRate rpc = MeasureRpcRate(rpc_iters);
  std::printf("RPC round trips     : %12.0f rt/sec     (1400-byte ATM echo)\n",
              rpc.round_trips_per_sec);
  std::printf("simulated events    : %12.0f events/sec (same run)\n", rpc.sim_events_per_sec);

  const double trace_overhead = MeasureTraceDisabledOverheadPct(rpc_iters);
  std::printf("tracer-off overhead : %12.2f %%         (hooks present, recording off)\n",
              trace_overhead);

  const CapacityRate capacity = MeasureCapacityRate(quick);
  std::printf("capacity flows      : %12.0f flows/sec  (%d-flow star workload)\n",
              capacity.flows_per_sec, capacity.flows);
  std::printf("capacity events     : %12.0f events/sec (same run)\n",
              capacity.sim_events_per_sec);

  const ShardedCapacityRate sharded = MeasureShardedCapacityRate(quick, jobs);
  const double shard_speedup =
      capacity.sim_events_per_sec > 0 ? sharded.sim_events_per_sec / capacity.sim_events_per_sec
                                      : 0;
  std::printf("sharded capacity    : %12.0f events/sec (%d shards, %u threads) "
              "-> %.2fx vs serial\n",
              sharded.sim_events_per_sec, sharded.shard_count, sharded.threads, shard_speedup);
  std::printf("sharded 1 == %u thr  : %s\n", sharded.threads,
              sharded.identical ? "yes (bit-identical)" : "NO");

  const InteractiveLatencies interactive = MeasureInteractiveLatencies();
  std::printf("interactive delack  : %12.1f us p50     (two-chunk request, Nagle+delack)\n",
              interactive.delack_p50_us);
  std::printf("interactive nodelay : %12.1f us p99     (same request, TCP_NODELAY)\n",
              interactive.nodelay_p99_us);
  std::printf("interactive no-dack : %12.1f us p99     (same request, delack off)\n",
              interactive.delackoff_p99_us);

  const GridTiming grid = MeasureGrid(grid_iters, jobs);
  const double speedup = grid.parallel_sec > 0 ? grid.serial_sec / grid.parallel_sec : 0;
  std::printf("8-config grid       : serial %.3fs, parallel %.3fs on %u threads "
              "-> %.2fx speedup\n",
              grid.serial_sec, grid.parallel_sec, grid.jobs, speedup);
  std::printf("parallel == serial  : %s\n", grid.identical ? "yes (bit-identical)" : "NO");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"quick\": %s,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"event_dispatch_per_sec\": %.0f,\n"
               "  \"event_schedule_cancel_pairs_per_sec\": %.0f,\n"
               "  \"rpc_round_trips_per_sec\": %.0f,\n"
               "  \"rpc_sim_events_per_sec\": %.0f,\n"
               "  \"trace_disabled_overhead_pct\": %.2f,\n"
               "  \"capacity_flows\": %d,\n"
               "  \"capacity_flows_per_sec\": %.0f,\n"
               "  \"capacity_sim_events_per_sec\": %.0f,\n"
               "  \"capacity_sharded_sim_events_per_sec\": %.0f,\n"
               "  \"shard_count\": %d,\n"
               "  \"shard_threads\": %u,\n"
               "  \"shard_speedup\": %.3f,\n"
               "  \"shard_results_identical\": %s,\n"
               "  \"interactive_delack_p50_us\": %.1f,\n"
               "  \"interactive_delack_p99_us\": %.1f,\n"
               "  \"interactive_nodelay_p99_us\": %.1f,\n"
               "  \"interactive_delackoff_p99_us\": %.1f,\n"
               "  \"grid_configs\": 8,\n"
               "  \"grid_iterations\": %d,\n"
               "  \"grid_jobs\": %u,\n"
               "  \"grid_serial_sec\": %.4f,\n"
               "  \"grid_parallel_sec\": %.4f,\n"
               "  \"grid_speedup\": %.3f,\n"
               "  \"grid_results_identical\": %s\n"
               "}\n",
               quick ? "true" : "false", std::thread::hardware_concurrency(), dispatch_rate,
               cancel_rate, rpc.round_trips_per_sec, rpc.sim_events_per_sec, trace_overhead,
               capacity.flows, capacity.flows_per_sec, capacity.sim_events_per_sec,
               sharded.sim_events_per_sec, sharded.shard_count, sharded.threads, shard_speedup,
               sharded.identical ? "true" : "false",
               interactive.delack_p50_us, interactive.delack_p99_us,
               interactive.nodelay_p99_us, interactive.delackoff_p99_us,
               grid_iters,
               grid.jobs, grid.serial_sec, grid.parallel_sec, speedup,
               grid.identical ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  // Determinism is a hard failure; wall-clock numbers are reported, not
  // asserted, so the smoke stays green on loaded or single-core hosts.
  return grid.identical && sharded.identical ? 0 : 1;
}

}  // namespace
}  // namespace tcplat

int main(int argc, char** argv) {
  tcplat::BenchFlags flags;
  flags.out_path = "BENCH_perf.json";
  if (!tcplat::ParseBenchFlags(argc, argv, &flags, "[--quick] [--out PATH]")) {
    return 2;
  }
  return tcplat::Run(flags.quick, flags.out_path);
}
