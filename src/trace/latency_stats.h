// Simple latency sample statistics (mean / min / max / percentiles) used by
// the round-trip benchmarks.

#ifndef SRC_TRACE_LATENCY_STATS_H_
#define SRC_TRACE_LATENCY_STATS_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace tcplat {

class LatencyStats {
 public:
  void Add(SimDuration sample);

  uint64_t count() const { return samples_.size(); }
  SimDuration sum() const { return sum_; }
  SimDuration Mean() const;
  SimDuration Min() const;
  SimDuration Max() const;
  // p in [0, 100]; nearest-rank percentile.
  SimDuration Percentile(double p) const;

  void Reset();

 private:
  std::vector<SimDuration> samples_;
  SimDuration sum_;
  mutable bool sorted_ = true;
  mutable std::vector<SimDuration> sorted_samples_;
};

}  // namespace tcplat

#endif  // SRC_TRACE_LATENCY_STATS_H_
