file(REMOVE_RECURSE
  "CMakeFiles/lat_ip.dir/ip_stack.cc.o"
  "CMakeFiles/lat_ip.dir/ip_stack.cc.o.d"
  "liblat_ip.a"
  "liblat_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
