// The ATM network driver: the software half of the Class 3/4 AAL.
//
// Transmit: wraps an IP packet in a CPCS-PDU, segments it into cells, and
// copies them into the TCA-100's transmit FIFO (stalling when it fills).
// The paper's Table 2 "ATM" row is the wall interval from driver entry to
// the last byte being handed to the adapter; operations after that overlap
// network transmission and are excluded.
//
// Receive: on the adapter's per-PDU interrupt, drains the receive FIFO,
// reassembles the CPCS-PDU, builds an mbuf chain (IP header in a leading
// small mbuf so the combined copy+checksum can skip it), and enqueues it on
// the IP input queue. The Table 3 "ATM" row is the interval from the
// EOM cell's arrival to that enqueue.
//
// The §4.1.1 receive-side *combined copy + checksum* lives here: when
// enabled, the device-memory-to-mbuf copy simultaneously computes per-mbuf
// partial checksums that TCP input later combines instead of running
// in_cksum over the data again.

#ifndef SRC_ATM_ATM_NETIF_H_
#define SRC_ATM_ATM_NETIF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/atm/aal34.h"
#include "src/atm/tca100.h"
#include "src/ip/ip_stack.h"
#include "src/ip/netif.h"

namespace tcplat {

struct AtmNetIfStats {
  uint64_t pdus_sent = 0;
  uint64_t pdus_received = 0;
  uint64_t short_pdus = 0;  // reassembled PDU too small to hold an IP header
};

class AtmNetIf : public NetIf {
 public:
  // `vci` is the default transmit VC, used for every destination without an
  // AddVc entry (the two-host testbeds run a single VC this way).
  AtmNetIf(IpStack* ip, Tca100* device, uint16_t vci);

  // Adds a per-destination virtual circuit: packets whose next hop is
  // `next_hop` are segmented onto `vci`. On a switched star each ordered
  // host pair gets its own VC, so cells from different senders converging
  // on one receiver stay separable (SAR state is per VC).
  void AddVc(Ipv4Addr next_hop, uint16_t vci);

  // Enables the receive-side integrated copy + checksum (Table 6 kernel).
  void set_rx_integrated_checksum(bool enabled) { rx_integrated_cksum_ = enabled; }
  bool rx_integrated_checksum() const { return rx_integrated_cksum_; }

  // Enables the hypothetical DMA adapter of §2.2.3/§4.2: data moves between
  // host memory and the adapter without per-cell CPU copies (one descriptor
  // setup per PDU on each side). Combine with ChecksumMode::kNone for the
  // paper's "near bus bandwidth" endpoint.
  void set_dma(bool enabled) { dma_ = enabled; }
  bool dma() const { return dma_; }

  // Fault hook: mutates the reassembled PDU bytes after the per-cell CRC
  // check but before the copy into kernel memory — the "errors introduced
  // by the network controllers in moving data between host and controller
  // memories" source of §4.2.1.
  void set_controller_fault_hook(std::function<void(std::vector<uint8_t>&)> hook) {
    controller_fault_ = std::move(hook);
  }

  std::string name() const override { return "fa0"; }
  size_t mtu() const override { return kAtmMtu; }
  void Output(MbufPtr packet, Ipv4Addr next_hop) override;

  const AtmNetIfStats& stats() const { return stats_; }
  // Aggregate SAR statistics across every receive VC.
  const SarReassemblerStats& sar_stats() const;

 private:
  void RxInterrupt();
  void DeliverPdu(std::vector<uint8_t> payload, uint16_t vci, SimTime eom_arrival);

  IpStack* ip_;
  Tca100* device_;
  uint16_t vci_;
  std::map<Ipv4Addr, uint16_t> tx_vcs_;    // per-destination VC overrides
  std::map<uint16_t, uint8_t> tx_sn_;      // per-VC 4-bit SAR sequence counters
  uint8_t next_btag_ = 0;
  std::map<uint16_t, SarReassembler> reassemblers_;  // per-VC receive state
  mutable SarReassemblerStats agg_sar_stats_;
  bool rx_integrated_cksum_ = false;
  bool dma_ = false;
  std::function<void(std::vector<uint8_t>&)> controller_fault_;
  AtmNetIfStats stats_;
};

}  // namespace tcplat

#endif  // SRC_ATM_ATM_NETIF_H_
