#include "src/workload/congestion.h"

#include <algorithm>
#include <string>

#include "src/atm/aal34.h"
#include "src/base/check.h"
#include "src/core/table.h"

namespace tcplat {
namespace {

// AAL3/4 SAR: 53-byte cell, 48-byte SAR-PDU, 44 bytes of CPCS payload once
// the 2-byte header and trailer are paid. The efficiency denominator.
constexpr uint64_t kCellPayloadBytes = 44;

// Mirrors star_testbed.cc's ordered-pair VC plan (src i -> dst j on VCI
// 64 + i*N + j) so the cell can read the bottleneck VCs' counters.
uint16_t BottleneckVci(int client, int flows) {
  const int n = flows + 1;     // total hosts
  const int server_idx = flows;  // global index of the single server
  return static_cast<uint16_t>(64 + client * n + server_idx);
}

}  // namespace

std::vector<FlowSpec> BuildCongestionFlows(const CongestionCell& cell) {
  TCPLAT_CHECK_GT(cell.flows, 0);
  TCPLAT_CHECK_GT(cell.bulk_bytes, 0u);
  std::vector<FlowSpec> specs;
  specs.reserve(static_cast<size_t>(cell.flows));
  for (int f = 0; f < cell.flows; ++f) {
    FlowSpec spec;
    spec.client = f;
    spec.server = 0;
    spec.bulk_bytes = cell.bulk_bytes;
    spec.congestion = cell.variant;
    // Staggered starts: the flows still overlap almost completely, but the
    // SYN bursts and initial slow starts do not land on the same cell slot,
    // which would synchronize every flow's first loss.
    spec.start_delay = SimDuration::FromMicros(200) * f;
    // Heavy loss can exhaust a connection's retransmit budget; that is an
    // aborted flow to report, not a harness crash.
    spec.tolerate_errors = true;
    specs.push_back(spec);
  }
  return specs;
}

CongestionOutcome RunCongestionCell(const CongestionCell& cell) {
  return RunCongestionCell(cell, nullptr);
}

CongestionOutcome RunCongestionCell(const CongestionCell& cell, Tracer* tracer) {
  TCPLAT_CHECK_GT(cell.flows, 0);
  TCPLAT_CHECK_GT(cell.buffer_cells, 0u) << "an infinite buffer never congests";
  StarTestbedConfig config;
  config.network = NetworkKind::kAtm;
  config.clients = cell.flows;
  config.servers = 1;
  config.seed = cell.seed;
  config.shards = cell.shards;
  config.shard_threads = cell.shard_threads;
  config.propagation = GetLinkProfile(cell.profile).propagation;
  config.vc_buffers.buffer_cells = cell.buffer_cells;
  config.vc_buffers.policy = cell.policy;
  config.vc_buffers.epd_threshold = cell.epd_threshold;
  config.server_trunk_bps = cell.trunk_bps;
  config.tcp.sndbuf = cell.sndbuf;
  config.tcp.rcvbuf = cell.rcvbuf;
  config.tcp.mss_clamp = cell.mss_clamp;
  StarTestbed testbed(config);
  if (tracer != nullptr) {
    testbed.AttachTracer(tracer);
  }

  const std::vector<FlowSpec> specs = BuildCongestionFlows(cell);
  WorkloadOptions options;
  options.reset_trackers_at_warmup = false;  // no warmup region in bulk mode
  const WorkloadResult result = RunWorkload(testbed, specs, options);

  CongestionOutcome out;
  out.completed = result.completed;
  out.aborted = result.aborted;

  int64_t first_start = -1;
  int64_t last_done = -1;
  uint64_t payload_total = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t f = 0; f < result.flows.size(); ++f) {
    const FlowResult& flow = result.flows[f];
    out.goodput_bps.push_back(flow.bulk.goodput_bps());
    CongestionFlowStats fs;
    fs.goodput_bps = flow.bulk.goodput_bps();
    fs.elapsed_ns = (flow.bulk.done_ns >= 0 && flow.bulk.start_ns >= 0)
                        ? flow.bulk.done_ns - flow.bulk.start_ns
                        : -1;
    const TcpStats& client = testbed.tcp(static_cast<int>(f)).stats();
    fs.retransmits = client.retransmits;
    fs.rexmt_timeouts = client.rexmt_timeouts;
    fs.fast_retransmits = client.fast_retransmits;
    fs.rexmt_stall_ns = client.rexmt_stall_ns;
    out.flow_stats.push_back(fs);
    if (flow.bulk.start_ns >= 0) {
      first_start = first_start < 0 ? flow.bulk.start_ns
                                    : std::min(first_start, flow.bulk.start_ns);
    }
    if (flow.bulk.done_ns >= 0) {
      last_done = std::max(last_done, flow.bulk.done_ns);
      payload_total += flow.bulk.bytes;
    }
    sum += out.goodput_bps.back();
    sum_sq += out.goodput_bps.back() * out.goodput_bps.back();
  }
  if (last_done > first_start && first_start >= 0) {
    out.aggregate_goodput_mbps = static_cast<double>(payload_total) * 8e3 /
                                 static_cast<double>(last_done - first_start);
  }
  const size_t n = out.goodput_bps.size();
  if (n > 0 && sum_sq > 0.0) {
    out.fairness = (sum * sum) / (static_cast<double>(n) * sum_sq);
  }

  for (int idx = 0; idx < testbed.host_count(); ++idx) {
    const TcpStats& stats = testbed.tcp(idx).stats();
    out.retransmits += stats.retransmits;
    out.rexmt_timeouts += stats.rexmt_timeouts;
    out.fast_retransmits += stats.fast_retransmits;
    out.fast_recovery_episodes += stats.fast_recovery_episodes;
    out.newreno_partial_acks += stats.newreno_partial_acks;
    out.sack_blocks_received += stats.sack_blocks_received;
    out.sack_retransmits += stats.sack_retransmits;
  }

  AtmSwitch* sw = testbed.atm_switch();
  for (int f = 0; f < cell.flows; ++f) {
    const AtmSwitch::VcState* vc = sw->vc_state(BottleneckVci(f, cell.flows));
    if (vc == nullptr) {
      continue;
    }
    out.cells_forwarded += vc->cells_forwarded;
    out.frames_discarded += vc->frames_discarded;
    out.occupancy_hiwat = std::max(out.occupancy_hiwat, vc->hiwat);
  }
  out.cells_dropped_tail = sw->stats().cells_dropped_tail;
  out.cells_dropped_epd = sw->stats().cells_dropped_epd;
  out.cells_dropped_ppd = sw->stats().cells_dropped_ppd;
  if (out.cells_forwarded > 0) {
    out.efficiency = static_cast<double>(payload_total) /
                     static_cast<double>(out.cells_forwarded * kCellPayloadBytes);
  }
  out.sim_elapsed = testbed.EndTime() - SimTime();
  out.sim_events = testbed.EventsDispatched();
  return out;
}

std::vector<std::string> CongestionHeader() {
  return {"variant", "policy",  "buf",   "flows", "goodput", "effic",
          "fair",    "rexmt",   "timeo", "recov", "drops",   "frames"};
}

std::vector<std::string> CongestionRow(const CongestionCell& cell,
                                       const CongestionOutcome& out) {
  const uint64_t drops =
      out.cells_dropped_tail + out.cells_dropped_epd + out.cells_dropped_ppd;
  return {
      CongestionVariantName(cell.variant),
      DropPolicyName(cell.policy),
      std::to_string(cell.buffer_cells),
      std::to_string(cell.flows),
      TextTable::Num(out.aggregate_goodput_mbps, 2) + " Mb/s",
      TextTable::Num(out.efficiency, 3),
      TextTable::Num(out.fairness, 3),
      std::to_string(out.retransmits),
      std::to_string(out.rexmt_timeouts),
      std::to_string(out.fast_recovery_episodes),
      std::to_string(drops),
      std::to_string(out.frames_discarded),
  };
}

}  // namespace tcplat
