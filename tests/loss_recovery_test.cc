// Recovery-mechanics tests: pin down *how* the stack repairs specific,
// surgically injected losses on the Ethernet testbed. The drop hook parses
// raw frames off the bus, so each test removes exactly the unit it means to
// (first data segment, Nth retransmission, first pure ACK) and then asserts
// the recovery path the BSD code is supposed to take — rexmt timer with
// exponential backoff, cumulative-ACK repair, duplicate/reorder immunity.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/rpc_benchmark.h"
#include "src/core/testbed.h"
#include "src/fault/impairment.h"
#include "src/tcp/segment_tap.h"

namespace tcplat {
namespace {

// Fields of one Ethernet frame as seen by the bus drop hook.
struct FrameView {
  bool is_tcp = false;
  bool from_client = false;
  uint8_t tcp_flags = 0;
  uint32_t seq = 0;
  size_t payload = 0;  // TCP payload bytes
};

constexpr uint8_t kFlagFin = 0x01;
constexpr uint8_t kFlagSyn = 0x02;
constexpr uint8_t kFlagAck = 0x10;

FrameView ParseFrame(const std::vector<uint8_t>& f) {
  FrameView v;
  if (f.size() < 14 + 20) {
    return v;
  }
  const uint16_t ethertype = static_cast<uint16_t>((f[12] << 8) | f[13]);
  if (ethertype != 0x0800) {
    return v;  // ARP and friends pass untouched
  }
  const size_t ip_off = 14;
  const size_t ihl = static_cast<size_t>(f[ip_off] & 0x0F) * 4;
  const uint16_t ip_total = static_cast<uint16_t>((f[ip_off + 2] << 8) | f[ip_off + 3]);
  if (f[ip_off + 9] != 6 || f.size() < ip_off + ihl + 20) {
    return v;  // not TCP
  }
  const size_t tcp_off = ip_off + ihl;
  v.is_tcp = true;
  // Testbed MACs are 02:00:00:00:00:01 (client) / :02 (server).
  v.from_client = f[11] == 0x01;
  v.seq = (static_cast<uint32_t>(f[tcp_off + 4]) << 24) |
          (static_cast<uint32_t>(f[tcp_off + 5]) << 16) |
          (static_cast<uint32_t>(f[tcp_off + 6]) << 8) | f[tcp_off + 7];
  v.tcp_flags = f[tcp_off + 13];
  const size_t tcp_hdr = static_cast<size_t>(f[tcp_off + 12] >> 4) * 4;
  v.payload = ip_total - ihl - tcp_hdr;
  return v;
}

TestbedConfig EtherConfig() {
  TestbedConfig cfg;
  cfg.network = NetworkKind::kEthernet;
  return cfg;
}

RpcOptions EchoOptions(size_t size, int iterations) {
  RpcOptions opt;
  opt.size = size;
  opt.iterations = iterations;
  opt.warmup = 0;  // losses land in the measured region
  opt.verify_data = true;
  return opt;
}

TEST(LossRecovery, SingleDataSegmentLossRecoversByRexmtTimer) {
  Testbed tb(EtherConfig());
  int dropped = 0;
  tb.ether_segment()->set_drop_hook([&](const std::vector<uint8_t>& f) {
    const FrameView v = ParseFrame(f);
    if (v.is_tcp && v.from_client && v.payload > 0 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });

  const RpcResult r = RunRpcBenchmark(tb, EchoOptions(512, 3));
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(r.rtt.count(), 3u);
  EXPECT_EQ(r.data_mismatches, 0u);
  // The lost segment is repaired by the retransmission timer: exactly one
  // timeout, and the first echo pays at least rexmt_min (300 ms) against a
  // clean-link RTT of a few milliseconds.
  EXPECT_EQ(r.client_tcp.rexmt_timeouts, 1u);
  EXPECT_GE(r.client_tcp.retransmits, 1u);
  EXPECT_GT(r.rtt.Max().millis(), 300.0);
  EXPECT_LT(r.rtt.Min().millis(), 50.0);
}

TEST(LossRecovery, RepeatedLossBacksOffExponentially) {
  Testbed tb(EtherConfig());
  SegmentTap tap;
  tb.client_tcp().set_tap(&tap);
  // Swallow the first three transmissions of the first data segment; the
  // fourth attempt goes through.
  int dropped = 0;
  tb.ether_segment()->set_drop_hook([&](const std::vector<uint8_t>& f) {
    const FrameView v = ParseFrame(f);
    if (v.is_tcp && v.from_client && v.payload > 0 && dropped < 3) {
      ++dropped;
      return true;
    }
    return false;
  });

  const RpcResult r = RunRpcBenchmark(tb, EchoOptions(512, 2));
  EXPECT_EQ(dropped, 3);
  EXPECT_EQ(r.rtt.count(), 2u);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GE(r.client_tcp.rexmt_timeouts, 3u);

  // Every transmission of the first data segment, original included, is in
  // the tap; successive gaps are the backed-off RTO and must double.
  std::vector<SimTime> sends;
  bool have_seq = false;
  uint32_t first_seq = 0;
  for (const SegmentTap::Record& rec : tap.records()) {
    if (!rec.outbound || rec.payload_len == 0) {
      continue;
    }
    if (!have_seq) {
      have_seq = true;
      first_seq = rec.header.seq;
    }
    if (rec.header.seq == first_seq) {
      sends.push_back(rec.time);
    }
  }
  ASSERT_GE(sends.size(), 4u);
  const double g1 = (sends[1] - sends[0]).micros();
  const double g2 = (sends[2] - sends[1]).micros();
  const double g3 = (sends[3] - sends[2]).micros();
  EXPECT_GE(g1, 300e3 * 0.9);  // first RTO ~ rexmt_min
  EXPECT_NEAR(g2 / g1, 2.0, 0.5);
  EXPECT_NEAR(g3 / g2, 2.0, 0.5);
}

TEST(LossRecovery, LostAckRepairedByNextCumulativeAck) {
  // The 8000-byte echo return is a multi-segment burst, so the client emits
  // several pure ACKs back to back — each triggered by arriving data, not by
  // its predecessor. Dropping one of those (the third client pure ACK; the
  // first is the handshake ACK) is repaired by the next cumulative ACK: no
  // timer, no retransmission, and the transfer pays essentially nothing.
  // (Dropping a *solitary* ACK — e.g. the very first window ACK — stalls the
  // strictly ACK-clocked sender until RTO; SingleDataSegmentLoss covers the
  // timer path.)
  auto run = [](int drop_index) {
    Testbed tb(EtherConfig());
    int seen = 0;
    int dropped = 0;
    tb.ether_segment()->set_drop_hook([&](const std::vector<uint8_t>& f) {
      const FrameView v = ParseFrame(f);
      if (v.is_tcp && v.from_client && v.payload == 0 && v.tcp_flags == kFlagAck) {
        if (seen++ == drop_index) {
          ++dropped;
          return true;
        }
      }
      return false;
    });
    RpcResult r = RunRpcBenchmark(tb, EchoOptions(8000, 3));
    EXPECT_EQ(dropped, drop_index >= 0 ? 1 : 0);
    return r;
  };

  const RpcResult clean = run(-1);
  const RpcResult r = run(2);
  EXPECT_EQ(r.rtt.count(), 3u);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_EQ(r.client_tcp.retransmits + r.server_tcp.retransmits, 0u);
  EXPECT_EQ(r.client_tcp.rexmt_timeouts + r.server_tcp.rexmt_timeouts, 0u);
  // Cumulative repair costs at most a couple of milliseconds, not an RTO.
  EXPECT_LT(r.rtt.sum().millis() - clean.rtt.sum().millis(), 10.0);
}

TEST(LossRecovery, SynLossRecoversAndConnects) {
  Testbed tb(EtherConfig());
  int dropped = 0;
  tb.ether_segment()->set_drop_hook([&](const std::vector<uint8_t>& f) {
    const FrameView v = ParseFrame(f);
    if (v.is_tcp && v.from_client && (v.tcp_flags & kFlagSyn) != 0 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });

  const RpcResult r = RunRpcBenchmark(tb, EchoOptions(512, 2));
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(r.rtt.count(), 2u);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GE(r.client_tcp.rexmt_timeouts, 1u);
}

TEST(LossRecovery, DuplicatedFramesNeverCorruptTheStream) {
  Testbed tb(EtherConfig());
  ImpairmentConfig imp;
  imp.duplicate_prob = 1.0;  // every frame arrives twice
  imp.duplicate_lag = SimDuration::FromMicros(50);
  ImpairmentPolicy policy(imp);
  tb.ether_segment()->set_impairment(&policy);

  const RpcResult r = RunRpcBenchmark(tb, EchoOptions(1024, 10));
  tb.ether_segment()->set_impairment(nullptr);

  EXPECT_EQ(r.rtt.count(), 10u);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GT(policy.stats().duplicated, 0u);
  EXPECT_EQ(policy.stats().duplicated, policy.stats().offered);
  EXPECT_EQ(policy.stats().delivered + policy.stats().dropped, policy.stats().offered);
  // Duplicates below rcv_nxt provoke immediate ACKs but never bad data, and
  // nothing is lost, so the timer stays quiet.
  EXPECT_EQ(r.client_tcp.rexmt_timeouts, 0u);
  EXPECT_EQ(r.server_tcp.rexmt_timeouts, 0u);
}

TEST(LossRecovery, ReorderedFramesNeverCorruptTheStream) {
  Testbed tb(EtherConfig());
  ImpairmentConfig imp;
  // A 3 ms hold against ~1.2 ms frame serialization lets back-to-back
  // segments of the 8000-byte burst overtake each other on the bus.
  imp.reorder_prob = 0.5;
  imp.reorder_hold = SimDuration::FromMillis(3);
  imp.seed = 5;
  ImpairmentPolicy policy(imp);
  tb.ether_segment()->set_impairment(&policy);

  const RpcResult r = RunRpcBenchmark(tb, EchoOptions(8000, 10));
  tb.ether_segment()->set_impairment(nullptr);

  EXPECT_EQ(r.rtt.count(), 10u);
  EXPECT_EQ(r.data_mismatches, 0u);
  EXPECT_GT(policy.stats().reordered, 0u);
  EXPECT_EQ(policy.stats().dropped, 0u);
  EXPECT_GT(r.client_tcp.out_of_order_segs + r.server_tcp.out_of_order_segs, 0u);
}

}  // namespace
}  // namespace tcplat
