// Regenerates Table 1: round-trip latency of the BSD 4.4 TCP over the ATM
// testbed vs. the Ethernet baseline, for the paper's eight transfer sizes.

#include <cstdio>
#include <vector>

#include "src/core/paper_data.h"
#include "src/core/rpc_benchmark.h"
#include "src/core/table.h"
#include "src/core/testbed.h"
#include "src/exec/executor.h"

namespace tcplat {
namespace {

double MeasureRtt(NetworkKind network, size_t size) {
  TestbedConfig cfg;
  cfg.network = network;
  Testbed tb(cfg);
  RpcOptions opt;
  opt.size = size;
  const RpcResult r = RunRpcBenchmark(tb, opt);
  return r.MeanRtt().micros();
}

struct Row {
  double ether;
  double atm;
};

void Run() {
  std::printf("Table 1: Comparison of ATM versus Ethernet round-trip latencies (us)\n\n");
  // Grid: each (size, network) cell is an isolated testbed; run them through
  // the parallel executor and render in submission order.
  const std::vector<Row> rows = ParallelMap<Row>(paper::kSizes.size(), [](size_t i) {
    return Row{MeasureRtt(NetworkKind::kEthernet, paper::kSizes[i]),
               MeasureRtt(NetworkKind::kAtm, paper::kSizes[i])};
  });
  TextTable t({"Size (bytes)", "Ethernet", "ATM", "Decrease (%)", "paper Ether", "paper ATM",
               "paper Decr (%)"});
  for (size_t i = 0; i < paper::kSizes.size(); ++i) {
    const size_t size = paper::kSizes[i];
    const double ether = rows[i].ether;
    const double atm = rows[i].atm;
    t.AddRow({std::to_string(size), TextTable::Us(ether), TextTable::Us(atm),
              TextTable::Pct(100.0 * (ether - atm) / ether),
              TextTable::Us(paper::kTable1Ethernet[i]), TextTable::Us(paper::kTable1Atm[i]),
              TextTable::Pct(100.0 * (paper::kTable1Ethernet[i] - paper::kTable1Atm[i]) /
                             paper::kTable1Ethernet[i])});
  }
  t.Print();
}

}  // namespace
}  // namespace tcplat

int main() {
  tcplat::Run();
  return 0;
}
