# Empty compiler generated dependencies file for lat_ip.
# This may be replaced when dependencies are built.
