// Contract of the time-series telemetry plane (src/trace/timeseries.h and
// its producers): timelines are a pure function of the seed — byte-identical
// across repeat runs, shard counts, worker threads and TCPLAT_JOBS — edge
// samples land exactly on the discontinuities they mark (summing kTcpRtoFire
// edges reconstructs rexmt_stall_ns to the nanosecond, loss-enter/exit pairs
// carry the exact peak and deflated window), mid-run TLBT disk spill
// reproduces the unspilled stream byte for byte, and reservoir flow sampling
// keeps the same bottom-K set no matter how the run was threaded. The bench
// self-checks (bench/congestion --timeline, bench/observability_selfcheck)
// exercise the same paths at full scale; these tests pin the invariants on
// cells small enough for the tier-1 suite.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/trace/binary_trace.h"
#include "src/trace/timeseries.h"
#include "src/trace/tracer.h"
#include "src/workload/capacity.h"
#include "src/workload/congestion.h"

namespace tcplat {
namespace {

// Congested enough (Reno + tail drop, small per-VC buffers) that the
// timeline contains real loss episodes and fired RTOs, small enough to
// keep the suite fast.
CongestionCell LossyCell() {
  CongestionCell cell;
  cell.flows = 4;
  cell.bulk_bytes = 48 * 1024;
  cell.buffer_cells = 128;
  cell.variant = CongestionVariant::kReno;
  cell.policy = DropPolicy::kTailDrop;
  return cell;
}

struct TimelineRun {
  CongestionOutcome outcome;
  std::vector<TimeseriesPoint> points;  // sorted on (ts, host)
  std::vector<std::string> host_names;
  std::string csv;
};

TimelineRun RunTimeline(const CongestionCell& cell) {
  Tracer tracer;
  tracer.EnableTimeseries(TimeseriesConfig{});
  TimelineRun run;
  run.outcome = RunCongestionCell(cell, &tracer);
  run.points = tracer.SortedTimeseriesPoints();
  run.host_names = tracer.host_names();
  run.csv = tracer.TimelineCsv();
  return run;
}

bool IsClientHost(const TimelineRun& run, uint8_t host) {
  return host < run.host_names.size() &&
         run.host_names[host].compare(0, 6, "client") == 0;
}

TEST(Timeseries, TimelineByteIdenticalAcrossShardsThreadsAndRepeats) {
  for (const uint64_t seed : {uint64_t{1}, uint64_t{7}}) {
    CongestionCell cell = LossyCell();
    cell.seed = seed;
    const TimelineRun serial = RunTimeline(cell);
    ASSERT_FALSE(serial.csv.empty()) << "seed " << seed;
    EXPECT_EQ(serial.csv, RunTimeline(cell).csv)
        << "repeat run diverged, seed " << seed;

    CongestionCell sharded = cell;
    sharded.shards = 2;
    EXPECT_EQ(serial.csv, RunTimeline(sharded).csv)
        << "2-shard run diverged, seed " << seed;

    sharded.shard_threads = 2;
    EXPECT_EQ(serial.csv, RunTimeline(sharded).csv)
        << "threaded 2-shard run diverged, seed " << seed;
  }
}

TEST(Timeseries, TimelineIgnoresTcplatJobs) {
  // Sharded cell with the thread count left to TCPLAT_JOBS: the env var may
  // change how many workers drive the shard engine, never the bytes.
  CongestionCell cell = LossyCell();
  cell.shards = 2;
  setenv("TCPLAT_JOBS", "1", 1);
  const std::string one_job = RunTimeline(cell).csv;
  setenv("TCPLAT_JOBS", "4", 1);
  const std::string four_jobs = RunTimeline(cell).csv;
  unsetenv("TCPLAT_JOBS");
  ASSERT_FALSE(one_job.empty());
  EXPECT_EQ(one_job, four_jobs);
}

// Summing the kTcpRtoFire edge values of one client host reconstructs that
// flow's rexmt_stall_ns exactly: the edge is emitted by the same callback
// that accumulates the stall, carrying the fired RTO's length.
TEST(Timeseries, RtoFireEdgesReconstructRexmtStallExactly) {
  const TimelineRun run = RunTimeline(LossyCell());
  ASSERT_GT(run.outcome.rexmt_timeouts, 0u)
      << "cell no longer fires RTOs; edge-exactness is vacuous";

  std::map<uint8_t, uint64_t> stall_by_host;
  for (const TimeseriesPoint& p : run.points) {
    if (p.edge && p.metric == static_cast<uint8_t>(TsMetric::kTcpRtoFire)) {
      EXPECT_GT(p.value, 0) << "RTO edge with non-positive dead-air length";
      stall_by_host[p.host] += static_cast<uint64_t>(p.value);
    }
  }

  uint64_t edge_total = 0;
  uint64_t expected_total = 0;
  for (const auto& [host, stall] : stall_by_host) {
    EXPECT_TRUE(IsClientHost(run, host))
        << "RTO edge on non-client host " << static_cast<int>(host);
    edge_total += stall;
  }
  for (const CongestionFlowStats& fs : run.outcome.flow_stats) {
    expected_total += fs.rexmt_stall_ns;
  }
  EXPECT_EQ(edge_total, expected_total);
}

// Loss-enter edges carry the exact cwnd peak the window fell from; the
// matching loss-exit edge (same host, next in time) carries the deflated
// post-recovery window — ssthresh, i.e. half the effective window at the
// loss with one MSS of integer-division slack.
TEST(Timeseries, LossEdgePairsCarryExactPeakAndDeflatedWindow) {
  const CongestionCell cell = LossyCell();
  const TimelineRun run = RunTimeline(cell);
  const auto mss = static_cast<int64_t>(cell.mss_clamp);

  int pairs = 0;
  for (size_t i = 0; i < run.points.size(); ++i) {
    const TimeseriesPoint& p = run.points[i];
    if (!p.edge || p.metric != static_cast<uint8_t>(TsMetric::kTcpLossEnter)) {
      continue;
    }
    EXPECT_TRUE(IsClientHost(run, p.host));
    for (size_t j = i + 1; j < run.points.size(); ++j) {
      const TimeseriesPoint& q = run.points[j];
      if (q.host != p.host || q.key != p.key || !q.edge) {
        continue;
      }
      if (q.metric == static_cast<uint8_t>(TsMetric::kTcpLossEnter)) {
        break;  // recovery ended via RTO, no exit edge for this episode
      }
      if (q.metric == static_cast<uint8_t>(TsMetric::kTcpLossExit)) {
        EXPECT_LT(q.value, p.value) << "exit valley not below entry peak";
        EXPECT_LE(2 * q.value, p.value + 2 * mss)
            << "exit valley above half the entry peak";
        ++pairs;
        break;
      }
    }
  }
  EXPECT_GT(pairs, 0) << "no loss enter/exit pairs in a lossy cell";
}

CapacityCell SmallCapacityCell() {
  CapacityCell cell;
  cell.flows = 8;
  cell.clients = 4;
  cell.servers = 2;
  cell.size = 200;
  cell.iterations = 8;
  cell.warmup = 2;
  cell.seed = 3;
  return cell;
}

// A binary capture that spills sealed TLBT segments to disk mid-run must
// reproduce the unspilled stream byte for byte once re-sealed.
TEST(Timeseries, SpilledBinaryTraceMatchesResidentByteForByte) {
  const CapacityCell cell = SmallCapacityCell();

  Tracer resident;
  resident.EnableBinaryRecording();
  RunCapacityCell(cell, &resident);
  const std::string resident_blob =
      SealBinaryTrace(resident.host_names(), resident.binary_records());

  const std::string spill_path =
      testing::TempDir() + "/timeseries_test_spill.tlbt";
  Tracer spilled;
  spilled.EnableBinaryRecording();
  ASSERT_TRUE(spilled.mutable_binary_records()->EnableSpill(spill_path,
                                                            8 * 1024));
  RunCapacityCell(cell, &spilled);
  EXPECT_GE(spilled.binary_records().spill_segments(), 2u)
      << "segment size too large to exercise mid-run spilling";
  const std::string spilled_blob =
      SealBinaryTrace(spilled.host_names(), spilled.binary_records());
  std::remove(spill_path.c_str());

  ASSERT_FALSE(resident_blob.empty());
  EXPECT_EQ(resident_blob, spilled_blob);
}

// Reservoir flow sampling (bottom-K over seeded per-flow hashes) keeps the
// same flows and yields the same pruned event stream across repeat runs and
// across shard-engine thread counts.
TEST(Timeseries, ReservoirKeptSetAndCsvAreDeterministic) {
  auto run_reservoir = [](unsigned shard_threads) {
    CapacityCell cell = SmallCapacityCell();
    cell.shards = 3;
    cell.shard_threads = shard_threads;
    Tracer tracer;
    tracer.EnableFlowReservoir(3, cell.seed);
    RunCapacityCell(cell, &tracer);
    return std::make_pair(
        std::vector<uint64_t>(tracer.flows_kept().begin(),
                              tracer.flows_kept().end()),
        tracer.ToCsv());
  };

  const auto serial = run_reservoir(1);
  EXPECT_EQ(serial.first.size(), 3u);
  ASSERT_FALSE(serial.second.empty());

  const auto repeat = run_reservoir(1);
  EXPECT_EQ(serial.first, repeat.first);
  EXPECT_EQ(serial.second, repeat.second);

  const auto threaded = run_reservoir(4);
  EXPECT_EQ(serial.first, threaded.first);
  EXPECT_EQ(serial.second, threaded.second);
}

}  // namespace
}  // namespace tcplat
