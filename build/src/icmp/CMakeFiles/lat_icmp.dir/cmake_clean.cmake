file(REMOVE_RECURSE
  "CMakeFiles/lat_icmp.dir/icmp.cc.o"
  "CMakeFiles/lat_icmp.dir/icmp.cc.o.d"
  "liblat_icmp.a"
  "liblat_icmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat_icmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
