file(REMOVE_RECURSE
  "liblat_ip.a"
)
