file(REMOVE_RECURSE
  "CMakeFiles/rpc_benchmark_test.dir/rpc_benchmark_test.cc.o"
  "CMakeFiles/rpc_benchmark_test.dir/rpc_benchmark_test.cc.o.d"
  "rpc_benchmark_test"
  "rpc_benchmark_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_benchmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
